package phylo

// Benchmark suite: one benchmark per table/figure of the paper's evaluation
// plus kernel microbenchmarks and the ablations called out in DESIGN.md.
//
// The figure benchmarks run the full analysis of the corresponding paper
// experiment on a geometrically scaled-down dataset (partition COUNT is
// preserved; the load-balance behaviour depends on partition geometry, not
// absolute size) and report, alongside wall time, the quantities the paper's
// analysis is about: synchronization events per run ("regions") and the
// trace-priced virtual runtime on the Nehalem and Barcelona platform models
// ("neh-s", "barc-s"). Run with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"testing"

	"phylo/internal/alignment"
	bsuite "phylo/internal/bench"
	"phylo/internal/core"
	"phylo/internal/model"
	"phylo/internal/opt"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/seqsim"
	"phylo/internal/tree"
)

const benchScale = 0.005 // fraction of the paper's column counts

// runFigureBench executes one paper configuration per iteration.
func runFigureBench(b *testing.B, ds *seqsim.Dataset, strat opt.Strategy, threads int, mode bsuite.Mode, perPartBL bool, partitioned bool) {
	b.Helper()
	var regions int64
	var neh, barc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := bsuite.Run(context.Background(), bsuite.RunSpec{
			Dataset:        ds,
			Partitioned:    partitioned,
			PerPartitionBL: perPartBL,
			Strategy:       strat,
			Threads:        threads,
			Mode:           mode,
			Backend:        bsuite.BackendSim,
			TreeSeed:       1142,
			SearchRounds:   1,
			SearchRadius:   2,
		})
		if err != nil {
			b.Fatal(err)
		}
		regions = m.Stats.Regions
		neh = m.PlatformSeconds["Nehalem"]
		barc = m.PlatformSeconds["Barcelona"]
	}
	b.ReportMetric(float64(regions), "regions")
	b.ReportMetric(neh, "neh-s")
	b.ReportMetric(barc, "barc-s")
}

func gridDS(b *testing.B, taxa, sites, partLen int, seed int64) *seqsim.Dataset {
	b.Helper()
	ds, err := seqsim.GridDataset(taxa, sites, partLen, benchScale, seed)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func realDS(b *testing.B, spec seqsim.RealWorldSpec, seed int64) *seqsim.Dataset {
	b.Helper()
	ds, err := seqsim.RealWorldDataset(spec, benchScale, seed)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// --- Figure 3: d50_50000 p1000, full search, per-partition BL ---

func BenchmarkFig3SearchOld8(b *testing.B) {
	runFigureBench(b, gridDS(b, 50, 50000, 1000, 42), opt.OldPar, 8, bsuite.ModeSearch, true, true)
}
func BenchmarkFig3SearchNew8(b *testing.B) {
	runFigureBench(b, gridDS(b, 50, 50000, 1000, 42), opt.NewPar, 8, bsuite.ModeSearch, true, true)
}
func BenchmarkFig3SearchOld16(b *testing.B) {
	runFigureBench(b, gridDS(b, 50, 50000, 1000, 42), opt.OldPar, 16, bsuite.ModeSearch, true, true)
}
func BenchmarkFig3SearchNew16(b *testing.B) {
	runFigureBench(b, gridDS(b, 50, 50000, 1000, 42), opt.NewPar, 16, bsuite.ModeSearch, true, true)
}

// --- Figure 4: d100_50000 p1000 ---

func BenchmarkFig4SearchOld8(b *testing.B) {
	runFigureBench(b, gridDS(b, 100, 50000, 1000, 43), opt.OldPar, 8, bsuite.ModeSearch, true, true)
}
func BenchmarkFig4SearchNew8(b *testing.B) {
	runFigureBench(b, gridDS(b, 100, 50000, 1000, 43), opt.NewPar, 8, bsuite.ModeSearch, true, true)
}

// --- Figure 5: r125_19839 (mammalian DNA stand-in) ---

func BenchmarkFig5SearchOld8(b *testing.B) {
	runFigureBench(b, realDS(b, seqsim.R125Spec, 44), opt.OldPar, 8, bsuite.ModeSearch, true, true)
}
func BenchmarkFig5SearchNew8(b *testing.B) {
	runFigureBench(b, realDS(b, seqsim.R125Spec, 44), opt.NewPar, 8, bsuite.ModeSearch, true, true)
}

// --- Figure 6: unpartitioned vs new vs old speedup components ---

func BenchmarkFig6Unpartitioned8(b *testing.B) {
	runFigureBench(b, gridDS(b, 50, 50000, 1000, 42), opt.NewPar, 8, bsuite.ModeSearch, false, false)
}
func BenchmarkFig6New8(b *testing.B) {
	runFigureBench(b, gridDS(b, 50, 50000, 1000, 42), opt.NewPar, 8, bsuite.ModeSearch, true, true)
}
func BenchmarkFig6Old8(b *testing.B) {
	runFigureBench(b, gridDS(b, 50, 50000, 1000, 42), opt.OldPar, 8, bsuite.ModeSearch, true, true)
}

// --- Text result T1: joint branch-length estimate (paper: ~5%) ---

func BenchmarkJointBLOld8(b *testing.B) {
	runFigureBench(b, gridDS(b, 50, 20000, 1000, 45), opt.OldPar, 8, bsuite.ModeModelOpt, false, true)
}
func BenchmarkJointBLNew8(b *testing.B) {
	runFigureBench(b, gridDS(b, 50, 20000, 1000, 45), opt.NewPar, 8, bsuite.ModeModelOpt, false, true)
}

// --- Text result T2: model optimization, per-partition BL (paper: 5-10%) ---

func BenchmarkModelOptOld8(b *testing.B) {
	runFigureBench(b, gridDS(b, 50, 20000, 1000, 46), opt.OldPar, 8, bsuite.ModeModelOpt, true, true)
}
func BenchmarkModelOptNew8(b *testing.B) {
	runFigureBench(b, gridDS(b, 50, 20000, 1000, 46), opt.NewPar, 8, bsuite.ModeModelOpt, true, true)
}

// --- Text result T3: protein datasets (paper: 5-10%) ---

func BenchmarkProteinR26Old8(b *testing.B) {
	runFigureBench(b, realDS(b, seqsim.R26Spec, 47), opt.OldPar, 8, bsuite.ModeSearch, true, true)
}
func BenchmarkProteinR26New8(b *testing.B) {
	runFigureBench(b, realDS(b, seqsim.R26Spec, 47), opt.NewPar, 8, bsuite.ModeSearch, true, true)
}

// --- Kernel microbenchmarks ---

type kernelFixture struct {
	eng  *core.Engine
	tr   *tree.Tree
	exec parallel.Executor
}

func kernelBench(b *testing.B, dt alignment.DataType, patterns int, specialize bool) *kernelFixture {
	b.Helper()
	names := make([]string, 20)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	tr, err := tree.Random(names, 1, tree.RandomOptions{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	var m *model.Model
	if dt == alignment.DNA {
		m, err = model.GTR(nil, nil, 4, 0.8)
	} else {
		m, err = model.SYN20(4, 0.8)
	}
	if err != nil {
		b.Fatal(err)
	}
	a, parts, err := seqsim.Simulate(tr, []*model.Model{m}, []int{patterns}, seqsim.Options{Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	d, err := alignment.Compress(a, parts, alignment.CompressOptions{KeepDuplicates: true})
	if err != nil {
		b.Fatal(err)
	}
	exec := parallel.NewSequential()
	eng, err := core.New(d, tr, []*model.Model{m}, exec, core.Options{Specialize: specialize})
	if err != nil {
		b.Fatal(err)
	}
	return &kernelFixture{eng: eng, tr: tr, exec: exec}
}

// BenchmarkNewviewDNAGamma measures one full-tree traversal (18 newviews over
// 2000 patterns x 4 categories) with the unrolled 4-state kernel.
func BenchmarkNewviewDNAGamma(b *testing.B) {
	fx := kernelBench(b, alignment.DNA, 2000, true)
	root := fx.tr.Tips[0].Back
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fx.eng.InvalidateCLVs()
		fx.eng.Traverse(root, false, nil)
	}
	b.ReportMetric(float64(2000*fx.tr.NumInner()), "patterns/op")
}

// BenchmarkNewviewDNAGeneric is the kernel-specialization ablation: the same
// traversal through the generic k-state kernel.
func BenchmarkNewviewDNAGeneric(b *testing.B) {
	fx := kernelBench(b, alignment.DNA, 2000, false)
	root := fx.tr.Tips[0].Back
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fx.eng.InvalidateCLVs()
		fx.eng.Traverse(root, false, nil)
	}
}

// BenchmarkNewviewAAGamma measures the 20-state kernel: ~25x the FLOPs per
// column of the DNA kernel (the paper's protein-data argument).
func BenchmarkNewviewAAGamma(b *testing.B) {
	fx := kernelBench(b, alignment.AA, 400, true)
	root := fx.tr.Tips[0].Back
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fx.eng.InvalidateCLVs()
		fx.eng.Traverse(root, false, nil)
	}
}

// BenchmarkEvaluateDNA measures the log-likelihood reduction at the root.
func BenchmarkEvaluateDNA(b *testing.B) {
	fx := kernelBench(b, alignment.DNA, 2000, true)
	root := fx.tr.Tips[0].Back
	fx.eng.TraverseRoot(root, false, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fx.eng.Evaluate(root, nil)
	}
}

// BenchmarkBranchDerivatives measures one Newton-Raphson derivative
// iteration over a prepared sumtable.
func BenchmarkBranchDerivatives(b *testing.B) {
	fx := kernelBench(b, alignment.DNA, 2000, true)
	root := fx.tr.Tips[0].Back
	fx.eng.TraverseRoot(root, false, nil)
	fx.eng.PrepareSumtable(root, nil)
	z := []float64{0.1}
	d1 := make([]float64, 1)
	d2 := make([]float64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fx.eng.BranchDerivatives(z, nil, d1, d2)
	}
}

// BenchmarkPoolVsSequentialWallClock exercises the real goroutine pool on the
// host (2 threads) against the sequential baseline for a full traversal —
// the honest wall-clock data point on this machine.
func BenchmarkPoolTraversal2Threads(b *testing.B) {
	names := make([]string, 20)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	tr, _ := tree.Random(names, 1, tree.RandomOptions{Seed: 9})
	m, _ := model.GTR(nil, nil, 4, 0.8)
	a, parts, err := seqsim.Simulate(tr, []*model.Model{m}, []int{20000}, seqsim.Options{Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	d, _ := alignment.Compress(a, parts, alignment.CompressOptions{KeepDuplicates: true})
	pool, err := parallel.NewPool(2)
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	eng, err := core.New(d, tr, []*model.Model{m}, pool, core.Options{Specialize: true})
	if err != nil {
		b.Fatal(err)
	}
	root := tr.Tips[0].Back
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.InvalidateCLVs()
		eng.Traverse(root, false, nil)
	}
}

// --- Ablation: the convergence boolean vector (DESIGN.md) ---

func convergenceMaskBench(b *testing.B, disable bool) {
	ds := gridDS(b, 20, 20000, 1000, 48)
	d, err := alignment.Compress(ds.Alignment, ds.Parts, alignment.CompressOptions{})
	if err != nil {
		b.Fatal(err)
	}
	models := make([]*model.Model, len(d.Parts))
	for i, p := range d.Parts {
		models[i], err = model.DefaultFor(p, 4, 1.0)
		if err != nil {
			b.Fatal(err)
		}
	}
	var critical float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sim, _ := parallel.NewSim(8)
		tr, _ := tree.Random(ds.Alignment.Names, len(d.Parts), tree.RandomOptions{Seed: 77})
		eng, err := core.New(d, tr, models, sim, core.Options{Specialize: true})
		if err != nil {
			b.Fatal(err)
		}
		cfg := opt.DefaultConfig(opt.NewPar)
		cfg.DisableConvergenceMask = disable
		o := opt.New(eng, cfg)
		b.StartTimer()
		o.SmoothAll(context.Background())
		critical = sim.Stats().CriticalOps
	}
	b.ReportMetric(critical, "criticalOps")
}

func BenchmarkAblationConvergenceMaskOn(b *testing.B)  { convergenceMaskBench(b, false) }
func BenchmarkAblationConvergenceMaskOff(b *testing.B) { convergenceMaskBench(b, true) }

// --- Ablation: cyclic vs block vs weighted pattern schedule (DESIGN.md) ---

func scheduleBench(b *testing.B, strat schedule.Strategy) {
	// Mixed narrow-region workload: per-partition branch smoothing, where
	// the block schedule concentrates each partition's columns on few
	// workers while cyclic spreads them (the paper's Sec. IV design choice).
	ds := gridDS(b, 20, 20000, 1000, 49)
	d, err := alignment.Compress(ds.Alignment, ds.Parts, alignment.CompressOptions{})
	if err != nil {
		b.Fatal(err)
	}
	models := make([]*model.Model, len(d.Parts))
	for i, p := range d.Parts {
		models[i], err = model.DefaultFor(p, 4, 1.0)
		if err != nil {
			b.Fatal(err)
		}
	}
	var imbal float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sim, _ := parallel.NewSim(8)
		tr, _ := tree.Random(ds.Alignment.Names, len(d.Parts), tree.RandomOptions{Seed: 78})
		eng, err := core.New(d, tr, models, sim, core.Options{Specialize: true, Schedule: strat})
		if err != nil {
			b.Fatal(err)
		}
		cfg := opt.DefaultConfig(opt.OldPar) // narrow regions stress the choice
		o := opt.New(eng, cfg)
		b.StartTimer()
		o.SmoothAll(context.Background())
		imbal = sim.Stats().Imbalance(8)
	}
	b.ReportMetric(imbal, "imbalance")
}

func BenchmarkAblationCyclicSchedule(b *testing.B)   { scheduleBench(b, schedule.Cyclic) }
func BenchmarkAblationBlockSchedule(b *testing.B)    { scheduleBench(b, schedule.Block) }
func BenchmarkAblationWeightedSchedule(b *testing.B) { scheduleBench(b, schedule.Weighted) }
