package phylo

import (
	"errors"
	"fmt"
	"sync"

	"phylo/internal/alignment"
	"phylo/internal/core"
	"phylo/internal/model"
	"phylo/internal/parallel"
)

// Errors returned by closed datasets and analyses. Use errors.Is to test.
var (
	// ErrDatasetClosed is returned when a Dataset (or an Analysis whose
	// Dataset) is used after Close.
	ErrDatasetClosed = errors.New("phylo: dataset used after Close")
	// ErrAnalysisClosed is returned when an Analysis is used after Close.
	ErrAnalysisClosed = errors.New("phylo: analysis used after Close")
)

// DatasetOptions configures the immutable, shareable half of an analysis.
// Everything here is fixed per dataset because the precomputed state depends
// on it: pattern compression, the CLV memory layout, the per-pattern op-cost
// tables, and the pattern-to-worker schedules (which are computed for
// exactly Threads workers).
type DatasetOptions struct {
	// Threads is the worker count (default 1). With Threads > 1 and real
	// goroutines the Dataset owns one shared worker pool that all of its
	// analysis sessions borrow; regions from concurrent sessions are
	// serialized onto the same T workers, so N sessions cost one pool.
	Threads int
	// Schedule selects the pattern-to-worker assignment (default
	// ScheduleCyclic, the paper's distribution). The schedule is precomputed
	// once per dataset and shared read-only by every session.
	Schedule ScheduleStrategy
	// GammaCategories is the discrete-Gamma category count (default 4).
	GammaCategories int
	// VirtualThreads gives every analysis session its own T-worker virtual
	// executor (serial execution on a virtual clock, see Options); sessions
	// then price their traces independently with PlatformSeconds.
	VirtualThreads bool
	// Steal enables intra-region work stealing for every session: each
	// worker's scheduled pattern share is sliced into chunks on a per-worker
	// deque, and a worker that finishes early steals the largest remaining
	// half from the most-loaded victim instead of idling at the region
	// barrier. Results are bit-for-bit identical with stealing on or off
	// (reductions run over per-chunk partials in fixed chunk order); steal
	// activity is reported through SyncStats and ProgressEvent. Stealing
	// composes with every Schedule strategy, including ScheduleMeasured:
	// the schedule remains the locality prior and rebalancing re-prices it
	// between rounds, while stealing absorbs the residual mispricing inside
	// each region. It is a Dataset option because it selects the execution
	// model all sessions share; the chunk granularity is tuned per session
	// via AnalysisOptions.MinChunk.
	Steal bool
	// Backend selects the likelihood kernel backend for every session over
	// this dataset. The zero value (BackendAuto) consults the PLK_BACKEND
	// environment variable and otherwise picks BackendFused — the
	// category-major, state-contiguous CLV layout with unrolled 4-state DNA
	// kernels. BackendGeneric keeps the pattern-major seed path; both produce
	// bit-identical results. It is a Dataset option because the backend fixes
	// the CLV memory layout all sessions share.
	Backend KernelBackend
	// Metrics, if non-nil, receives every observability family of this
	// dataset and its sessions: region counts and duration histograms,
	// per-worker busy/idle/ops/steal counters, kernel pattern/span/scaling
	// counters, and rebalance activity. Instrumentation follows the
	// flush-at-region-boundary design — per-worker scratch accumulates inside
	// regions and folds into the registry after each barrier — so attaching a
	// registry adds zero allocations and no per-pattern work to the hot path.
	// Several datasets may share one registry.
	Metrics *MetricsRegistry
	// Trace, if non-nil, records one Chrome-trace span per worker per
	// parallel region (plus rebalance instants) into the buffer, for offline
	// timeline inspection. Tracing works with or without Metrics and shares
	// the flush-at-region-boundary path, so it adds no hot-path work.
	Trace *Tracer
}

// Dataset is the immutable, shareable result of the per-dataset setup work
// the paper amortizes: compressed alignment patterns and tip encodings,
// per-partition default models (used as templates — each session clones
// them), the CLV/sumtable memory layout, op-cost tables, and precomputed
// worker schedules, plus the shared worker pool. Build it once with
// NewDataset, then open any number of concurrent Analysis sessions with
// NewAnalysis; the Dataset itself is never mutated by a session and is safe
// for concurrent use.
type Dataset struct {
	names  []string
	data   *alignment.CompressedData
	shared *core.Shared
	models []*model.Model // per-partition templates, cloned per session
	pool   *parallel.Pool // shared across sessions; nil when 1 thread or virtual
	opts   DatasetOptions

	// collector folds per-worker region scratch into the metrics registry
	// and trace buffer; nil unless Metrics or Trace was requested. The pool
	// observes it directly; serial/virtual session executors attach to it in
	// newAnalysis.
	collector *parallel.MetricsCollector

	mu     sync.Mutex
	closed bool
	active int // open sessions
}

// NewDataset compresses the alignment, builds the per-partition model
// templates (GTR with empirical frequencies for DNA, the fixed SYN20 matrix
// for protein), precomputes the likelihood memory layout and the
// pattern-to-worker schedule, and starts the shared worker pool. This is all
// of the fixed per-dataset work; opening an additional Analysis session
// afterwards only allocates that session's mutable state.
func NewDataset(al *Alignment, o DatasetOptions) (*Dataset, error) {
	if al == nil {
		return nil, errors.New("phylo: nil alignment")
	}
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.GammaCategories <= 0 {
		o.GammaCategories = 4
	}
	d, err := alignment.Compress(al.raw, al.parts, alignment.CompressOptions{})
	if err != nil {
		return nil, err
	}
	models := make([]*model.Model, len(d.Parts))
	for i, p := range d.Parts {
		m, err := model.DefaultFor(p, o.GammaCategories, 1.0)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	sh, err := core.NewSharedWith(d, o.GammaCategories, o.Threads, o.Backend)
	if err != nil {
		return nil, err
	}
	// Precompute the dataset's default schedule eagerly so the first session
	// doesn't pay for it; other strategies are built lazily on first use.
	if _, err := sh.ScheduleFor(o.Schedule); err != nil {
		return nil, err
	}
	ds := &Dataset{
		names:  append([]string(nil), al.raw.Names...),
		data:   d,
		shared: sh,
		models: models,
		opts:   o,
	}
	if o.Threads > 1 && !o.VirtualThreads {
		ds.pool, err = parallel.NewPool(o.Threads)
		if err != nil {
			return nil, err
		}
	}
	if o.Metrics != nil || o.Trace != nil {
		reg := o.Metrics
		if reg == nil {
			// Trace-only: spans still flow through a collector, just into a
			// private registry nobody scrapes.
			reg = NewMetricsRegistry()
		}
		kind := "sequential"
		switch {
		case o.VirtualThreads:
			kind = "sim"
		case ds.pool != nil:
			kind = "pool"
		}
		ds.collector = parallel.NewMetricsCollector(reg, kind, sh.Backend.String(), o.Threads, o.Trace)
		if ds.pool != nil {
			ds.pool.SetObserver(ds.collector)
		}
	}
	return ds, nil
}

// Close releases the shared worker pool. It is idempotent; closing a dataset
// with open sessions is reported as an error (the pool is released anyway,
// and those sessions return ErrDatasetClosed from then on).
func (ds *Dataset) Close() error {
	ds.mu.Lock()
	if ds.closed {
		ds.mu.Unlock()
		return nil
	}
	ds.closed = true
	open := ds.active
	ds.mu.Unlock()
	if ds.pool != nil {
		ds.pool.Close()
	}
	if open > 0 {
		return fmt.Errorf("phylo: dataset closed with %d analysis session(s) still open", open)
	}
	return nil
}

// isClosed reports whether Close has been called.
func (ds *Dataset) isClosed() bool {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.closed
}

// release retires one session's claim on the dataset.
func (ds *Dataset) release() {
	ds.mu.Lock()
	if ds.active > 0 {
		ds.active--
	}
	ds.mu.Unlock()
}

// NumTaxa returns the sequence count.
func (ds *Dataset) NumTaxa() int { return ds.data.NumTaxa() }

// NumSites returns the (uncompressed) column count.
func (ds *Dataset) NumSites() int { return ds.data.TotalSites }

// NumPatterns returns the compressed pattern count across all partitions —
// the width of every parallel region.
func (ds *Dataset) NumPatterns() int { return ds.data.TotalPatterns }

// NumPartitions returns the partition count.
func (ds *Dataset) NumPartitions() int { return len(ds.data.Parts) }

// Threads returns the worker count the dataset's schedules were computed
// for (and the size of the shared pool).
func (ds *Dataset) Threads() int { return ds.opts.Threads }

// TaxonNames returns the taxon labels.
func (ds *Dataset) TaxonNames() []string { return append([]string(nil), ds.names...) }

// Backend reports the resolved kernel backend every session over this
// dataset runs (never BackendAuto).
func (ds *Dataset) Backend() KernelBackend { return ds.shared.Backend }

// MemoryFootprint is the itemized memory accounting of a Dataset: the
// resident shared state (compressed alignment, schedules, layout) plus the
// estimated allocation of one analysis session over it (CLVs, scaling
// vectors, sumtable, per-worker scratch). See core.MemoryFootprint.
type MemoryFootprint = core.MemoryFootprint

// MemoryFootprint returns the dataset's estimated heap bytes: the resident
// shared state plus one session's buffers — the price of keeping this
// dataset cached and serving it. The likelihood-serving cache (internal/
// server) evicts against this figure; plkbench reports it standalone. The
// schedule term reflects the strategies built so far, so the figure can grow
// slightly as sessions exercise new strategies.
func (ds *Dataset) MemoryFootprint() int64 {
	return ds.shared.MemoryFootprint().TotalBytes()
}

// MemoryBreakdown returns the itemized terms behind MemoryFootprint.
func (ds *Dataset) MemoryBreakdown() MemoryFootprint {
	return ds.shared.MemoryFootprint()
}

// Metrics returns the registry this dataset reports into, or nil when the
// dataset was built without DatasetOptions.Metrics.
func (ds *Dataset) Metrics() *MetricsRegistry { return ds.opts.Metrics }

// Trace returns the trace buffer this dataset records region spans into, or
// nil when the dataset was built without DatasetOptions.Trace.
func (ds *Dataset) Trace() *Tracer { return ds.opts.Trace }
