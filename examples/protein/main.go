// Protein: a partitioned viral-protein analysis in the shape of the paper's
// r26_21451 dataset. The 20-state kernels perform ~25x more floating-point
// work per column than the DNA kernels, so the load-balance gap between
// oldPAR and newPAR is much smaller — the paper's explanation for why the
// protein datasets only improved by 5-10%. Both strategy sessions share one
// Dataset: the 20-state tip encodings and schedules are built once.
package main

import (
	"context"
	"fmt"
	"log"

	"phylo"
)

func main() {
	const scale = 0.02 // 2% of the paper's column count
	ctx := context.Background()

	fmt.Println("dataset: r26_21451 stand-in (viral proteins, 26 taxa, 26 partitions)")
	fmt.Println("analysis: branch-length optimization, per-partition estimates, 8 virtual threads")
	fmt.Println()

	al, err := phylo.SimulateRealWorld("r26_21451", scale, 7)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := phylo.NewDataset(al, phylo.DatasetOptions{
		Threads:        8,
		VirtualThreads: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	times := map[phylo.Strategy]float64{}
	for _, strat := range []phylo.Strategy{phylo.OldPar, phylo.NewPar} {
		an, err := ds.NewAnalysis(phylo.AnalysisOptions{
			Strategy:                  strat,
			PerPartitionBranchLengths: true,
			Seed:                      99,
		})
		if err != nil {
			log.Fatal(err)
		}
		lnl, err := an.OptimizeBranchLengths(ctx)
		if err != nil {
			log.Fatal(err)
		}
		secs, _ := an.PlatformSeconds("Barcelona")
		times[strat] = secs
		st := an.Stats()
		fmt.Printf("%v: lnL %.2f, %d sync events, Barcelona virtual runtime %.3f s\n",
			strat, lnl, st.Regions, secs)
		an.Close()
	}
	imp := 100 * (times[phylo.OldPar] - times[phylo.NewPar]) / times[phylo.OldPar]
	fmt.Printf("\nnewPAR improvement on protein data: %.1f%% (paper: 5-10%%, vs up to 8x on DNA)\n", imp)
}
