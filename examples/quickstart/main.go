// Quickstart: compute and optimize the likelihood of a small DNA alignment,
// then run a short tree search — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"
	"strings"

	"phylo"
)

const smallAlignment = `8 60
human    ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT
chimp    ACGTACGTACGTACGTACGAACGTACGTACGTACGTACGTACGTACTTACGTACGTACGT
gorilla  ACGTACGTACGGACGTACGAACGTACGTACGTACGTACGTACGTACTTACGTACGTACGT
orang    ACGAACGTACGTACGTACGAACGTACCTACGTACGTACGTACGTACTTACGTACGTAGGT
gibbon   ACGAACGTACGTACGTACGAACGTACCTACGTACGAACGTACGTACTTACGTACGTAGGT
macaque  TCGAACGTACGTACGGACGAACGTACCTACGTACGAACGTACGTACTTACGTACCTAGGT
marmoset TCGAACGTACGTACGGACGAACGTACCTACGGACGAACGTAAGTACTTACGTACCTAGGT
lemur    TCGAACTTACGTACGGACGAACGAACCTACGGACGAACGTAAGTACTTAAGTACCTAGGT
`

func main() {
	// 1. Load an alignment (PHYLIP); it starts as a single DNA partition.
	al, err := phylo.ReadPhylip(strings.NewReader(smallAlignment))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alignment: %d taxa, %d sites\n", al.NumTaxa(), al.NumSites())

	// 2. Build an analysis: GTR+Gamma model, random starting tree.
	an, err := phylo.NewAnalysis(al, phylo.Options{Threads: 2, Strategy: phylo.NewPar, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer an.Close()
	fmt.Printf("starting log likelihood: %.4f\n", an.LogLikelihood())

	// 3. Optimize branch lengths, alpha, and GTR rates on the fixed tree.
	lnl, err := an.OptimizeModel()
	if err != nil {
		log.Fatal(err)
	}
	alpha, _ := an.Alpha(0)
	fmt.Printf("after model optimization: %.4f (alpha = %.3f)\n", lnl, alpha)

	// 4. Search for a better topology with SPR moves.
	res, err := an.SearchWith(phylo.SearchOptions{MaxRounds: 3, Radius: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after tree search: %.4f (%d moves applied, %d tried)\n",
		res.LnL, res.MovesApplied, res.MovesTried)
	fmt.Printf("best tree: %s\n", an.TreeNewick())
}
