// Quickstart: compute and optimize the likelihood of a small DNA alignment,
// then run a short tree search — the five-minute tour of the public API:
// build a Dataset once, open an Analysis session over it, and drive the
// long-running phases with a context and a progress stream.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"phylo"
)

const smallAlignment = `8 60
human    ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT
chimp    ACGTACGTACGTACGTACGAACGTACGTACGTACGTACGTACGTACTTACGTACGTACGT
gorilla  ACGTACGTACGGACGTACGAACGTACGTACGTACGTACGTACGTACTTACGTACGTACGT
orang    ACGAACGTACGTACGTACGAACGTACCTACGTACGTACGTACGTACTTACGTACGTAGGT
gibbon   ACGAACGTACGTACGTACGAACGTACCTACGTACGAACGTACGTACTTACGTACGTAGGT
macaque  TCGAACGTACGTACGGACGAACGTACCTACGTACGAACGTACGTACTTACGTACCTAGGT
marmoset TCGAACGTACGTACGGACGAACGTACCTACGGACGAACGTAAGTACTTACGTACCTAGGT
lemur    TCGAACTTACGTACGGACGAACGAACCTACGGACGAACGTAAGTACTTAAGTACCTAGGT
`

func main() {
	ctx := context.Background()

	// 1. Load an alignment (PHYLIP); it starts as a single DNA partition.
	al, err := phylo.ReadPhylip(strings.NewReader(smallAlignment))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alignment: %d taxa, %d sites\n", al.NumTaxa(), al.NumSites())

	// 2. Build the immutable Dataset once: pattern compression, model
	// templates, worker schedules, and the shared 2-worker pool.
	ds, err := phylo.NewDataset(al, phylo.DatasetOptions{Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()
	fmt.Printf("dataset: %d patterns after compression\n", ds.NumPatterns())

	// 3. Open an analysis session: GTR+Gamma model, random starting tree,
	// with a progress stream for the long-running phases.
	an, err := ds.NewAnalysis(phylo.AnalysisOptions{
		Strategy: phylo.NewPar,
		Seed:     7,
		Progress: func(ev phylo.ProgressEvent) {
			fmt.Printf("   ... %s round %d: lnL %.4f\n", ev.Phase, ev.Round, ev.LnL)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer an.Close()
	fmt.Printf("starting log likelihood: %.4f\n", an.LogLikelihood())

	// 4. Optimize branch lengths, alpha, and GTR rates on the fixed tree.
	// The context cancels the run at the next synchronization region.
	lnl, err := an.OptimizeModel(ctx)
	if err != nil {
		log.Fatal(err)
	}
	alpha, _ := an.Alpha(0)
	fmt.Printf("after model optimization: %.4f (alpha = %.3f)\n", lnl, alpha)

	// 5. Search for a better topology with SPR moves.
	res, err := an.SearchWith(ctx, phylo.SearchOptions{MaxRounds: 3, Radius: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after tree search: %.4f (%d moves applied, %d tried)\n",
		res.LnL, res.MovesApplied, res.MovesTried)
	fmt.Printf("best tree: %s\n", an.TreeNewick())
}
