// Bootstrap walkthrough: estimate branch support for an ML tree with a
// batched bootstrap fleet. One Analysis session draws R resampled pattern
// weight vectors over the shared Dataset, scores the ML tree and its full NNI
// neighborhood under all R replicates in a single sweep — newview runs once
// per topology while the batched evaluate reduces every replicate's weighted
// log likelihood at once — and maps the replicate winners back onto the ML
// tree as per-branch support percentages.
package main

import (
	"context"
	"fmt"
	"log"

	"phylo"
)

func main() {
	ctx := context.Background()

	// 1. Simulate a mixed DNA+protein alignment (any PHYLIP file works the
	// same way; see examples/quickstart). The simulation seed fixes the data,
	// the bootstrap seed below independently fixes the replicate draws.
	al, err := phylo.SimulateMixed(12, 2, 1, 400, 1.0, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alignment: %d taxa, %d sites\n", al.NumTaxa(), al.NumSites())

	// 2. Build the shared Dataset once and open one session over it. The
	// whole bootstrap fleet reuses this session's CLV buffers and schedules;
	// no per-replicate state is ever allocated.
	ds, err := phylo.NewDataset(al, phylo.DatasetOptions{Threads: 4, Schedule: phylo.ScheduleWeighted})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()
	an, err := ds.NewAnalysis(phylo.AnalysisOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer an.Close()

	// 3. Get an ML tree: a short SPR search so the session's topology is a
	// local optimum (bootstrapping a random starting tree would just measure
	// how bad it is — its NNI neighbors would win every replicate).
	res0, err := an.SearchWith(ctx, phylo.SearchOptions{MaxRounds: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ML tree log likelihood: %.4f\n", res0.LnL)

	// 4. Run the batched bootstrap: 100 replicate weight vectors, drawn
	// multinomially from the compressed patterns with a fixed seed (replicate
	// r depends only on the data, the seed, and r — growing the fleet never
	// changes replicates already drawn). Each replicate picks its favourite
	// topology among the ML tree and its 2(n-3) NNI neighbors.
	res, err := an.Bootstrap(ctx, 100, 1234)
	if err != nil {
		log.Fatal(err)
	}
	mlWins := 0
	for _, w := range res.ReplicateWinner {
		if w == 0 {
			mlWins++
		}
	}
	fmt.Printf("bootstrap: %d replicates over %d candidate topologies; ML tree won %d\n",
		res.Replicates, res.Candidates, mlWins)

	// 5. Read the support values. Each internal branch of the ML tree gets
	// the fraction of replicates whose winning topology contains the same
	// split; the annotated Newick carries them as integer percents.
	for key, frac := range res.Support {
		fmt.Printf("   split {%s}: %.0f%% support\n", key, 100*frac)
	}
	fmt.Printf("support tree: %s\n", res.TreeNewick)
}
