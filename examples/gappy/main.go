// Gappy: partitioned analysis of a "gappy" phylogenomic alignment (Figure 2
// of the paper): not every gene is sampled for every organism, so entire
// taxon-partition blocks are alignment gaps. Per-partition branch lengths
// are exactly the model the paper argues for on such data — and with them,
// every gene carries its own branch lengths on the shared topology, printed
// here with TreeNewickForPartition.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"phylo"
)

// Two genes, six taxa; taxon C misses gene1 entirely and taxon F gene0.
const gappy = `6 40
A  ACGTACGTACGTACGTACGT ACGTACGTACGTACGTACGT
B  ACGTACGTACTTACGTACGT ACGAACGTACGTACGTACGT
C  ACGTACGGACGTACGTACGT --------------------
D  TCGTACGTACGTACGTACGT ACGAACGTACGTACCTACGT
E  TCGTACGTACGTACGAACGT ACGAACGGACGTACCTACGT
F  -------------------- ACGAACGGACGTACCTAGGT
`

func main() {
	ctx := context.Background()
	al, err := phylo.ReadPhylip(strings.NewReader(gappy))
	if err != nil {
		log.Fatal(err)
	}
	if err := al.SetPartitionsFromReader(strings.NewReader(
		"DNA, gene0 = 1-20\nDNA, gene1 = 21-40\n")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gappy alignment: %d taxa, %d sites, %d partitions\n",
		al.NumTaxa(), al.NumSites(), al.NumPartitions())

	ds, err := phylo.NewDataset(al, phylo.DatasetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()
	an, err := ds.NewAnalysis(phylo.AnalysisOptions{
		Strategy:                  phylo.NewPar,
		PerPartitionBranchLengths: true,
		Seed:                      5,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer an.Close()

	lnl, err := an.OptimizeModel(ctx)
	if err != nil {
		log.Fatal(err)
	}
	total, perPart := an.PartitionLogLikelihoods()
	fmt.Printf("optimized lnL: %.4f (check: %.4f)\n", lnl, total)
	for i, v := range perPart {
		alpha, _ := an.Alpha(i)
		fmt.Printf("  gene%d: lnL %.4f, alpha %.3f\n", i, v, alpha)
	}
	fmt.Println("\nall-gap taxon blocks contribute a constant to the likelihood and")
	fmt.Println("every gene gets its own branch lengths, Q matrix, and alpha:")
	for i := range perPart {
		nwk, err := an.TreeNewickForPartition(i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  gene%d tree: %s\n", i, nwk)
	}
}
