// Phylogenomic: the paper's headline experiment in miniature. A partitioned
// multi-gene DNA alignment (50 genes) is analyzed with per-partition branch
// lengths under both parallelization strategies on 8 virtual cores; the run
// prints the synchronization counts, the load imbalance, and the virtual
// runtime on the paper's four platforms — showing why newPAR wins.
//
// The dataset (pattern compression, model templates, worker schedules) is
// built ONCE and both strategy sessions run over it CONCURRENTLY — each
// session owns only its tree, CLVs, and model copies, and since the virtual
// executors are deterministic the concurrent runs are bit-reproducible.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"phylo"
)

func main() {
	// d50_50000 with 50 partitions of 1000 columns, scaled to 2% of the
	// paper's column count so the example runs in seconds.
	const scale = 0.02
	ctx := context.Background()

	fmt.Println("dataset: d50_50000, 50 partitions x 1000 columns (scaled to 2%)")
	fmt.Println("analysis: ML tree search, per-partition branch lengths, 8 virtual threads")
	fmt.Println()

	al, err := phylo.SimulateGrid(50, 50000, 1000, scale, 42)
	if err != nil {
		log.Fatal(err)
	}
	// One immutable dataset for both strategies (and any number of sessions).
	ds, err := phylo.NewDataset(al, phylo.DatasetOptions{
		Threads:        8,
		VirtualThreads: true, // trace-priced virtual platforms
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	type outcome struct {
		lnl      float64
		regions  int64
		imbal    float64
		platform map[string]float64
	}
	strategies := []phylo.Strategy{phylo.OldPar, phylo.NewPar}
	results := make([]outcome, len(strategies))
	var wg sync.WaitGroup
	for i, strat := range strategies {
		an, err := ds.NewAnalysis(phylo.AnalysisOptions{
			Strategy:                  strat,
			PerPartitionBranchLengths: true,
			Seed:                      142, // the same fixed input tree for both runs
		})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(i int, an *phylo.Analysis) {
			defer wg.Done()
			defer an.Close()
			res, err := an.SearchWith(ctx, phylo.SearchOptions{MaxRounds: 1, Radius: 3})
			if err != nil {
				log.Fatal(err)
			}
			st := an.Stats()
			o := outcome{lnl: res.LnL, regions: st.Regions, imbal: st.Imbalance,
				platform: map[string]float64{}}
			for _, p := range []string{"Nehalem", "Clovertown", "Barcelona", "x4600"} {
				s, _ := an.PlatformSeconds(p)
				o.platform[p] = s
			}
			results[i] = o
		}(i, an)
	}
	wg.Wait()

	for i, strat := range strategies {
		o := results[i]
		fmt.Printf("%v: lnL %.2f, %d synchronization events, imbalance %.2f\n",
			strat, o.lnl, o.regions, o.imbal)
	}
	old, neu := results[0], results[1]
	fmt.Println("\nvirtual runtime [s] on the paper's platforms (8 threads):")
	fmt.Printf("%-12s %10s %10s %12s\n", "platform", "oldPAR", "newPAR", "improvement")
	for _, p := range []string{"Nehalem", "Clovertown", "Barcelona", "x4600"} {
		fmt.Printf("%-12s %10.1f %10.1f %11.2fx\n", p, old.platform[p], neu.platform[p],
			old.platform[p]/neu.platform[p])
	}
	fmt.Println("\nboth strategies converge to the same likelihood; newPAR just")
	fmt.Println("amortizes each barrier over the full alignment width.")
}
