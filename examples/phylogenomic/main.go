// Phylogenomic: the paper's headline experiment in miniature. A partitioned
// multi-gene DNA alignment (50 genes) is analyzed with per-partition branch
// lengths under both parallelization strategies on 8 virtual cores; the run
// prints the synchronization counts, the load imbalance, and the virtual
// runtime on the paper's four platforms — showing why newPAR wins.
package main

import (
	"fmt"
	"log"

	"phylo"
)

func main() {
	// d50_50000 with 50 partitions of 1000 columns, scaled to 2% of the
	// paper's column count so the example runs in seconds.
	const scale = 0.02

	fmt.Println("dataset: d50_50000, 50 partitions x 1000 columns (scaled to 2%)")
	fmt.Println("analysis: ML tree search, per-partition branch lengths, 8 virtual threads")
	fmt.Println()

	type outcome struct {
		lnl      float64
		regions  int64
		imbal    float64
		platform map[string]float64
	}
	results := map[phylo.Strategy]outcome{}
	for _, strat := range []phylo.Strategy{phylo.OldPar, phylo.NewPar} {
		al, err := phylo.SimulateGrid(50, 50000, 1000, scale, 42)
		if err != nil {
			log.Fatal(err)
		}
		an, err := phylo.NewAnalysis(al, phylo.Options{
			Threads:                   8,
			VirtualThreads:            true, // trace-priced virtual platforms
			Strategy:                  strat,
			PerPartitionBranchLengths: true,
			Seed:                      142, // the same fixed input tree for both runs
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := an.SearchWith(phylo.SearchOptions{MaxRounds: 1, Radius: 3})
		if err != nil {
			log.Fatal(err)
		}
		st := an.Stats()
		o := outcome{lnl: res.LnL, regions: st.Regions, imbal: st.Imbalance,
			platform: map[string]float64{}}
		for _, p := range []string{"Nehalem", "Clovertown", "Barcelona", "x4600"} {
			s, _ := an.PlatformSeconds(p)
			o.platform[p] = s
		}
		results[strat] = o
		an.Close()
	}

	for _, strat := range []phylo.Strategy{phylo.OldPar, phylo.NewPar} {
		o := results[strat]
		fmt.Printf("%v: lnL %.2f, %d synchronization events, imbalance %.2f\n",
			strat, o.lnl, o.regions, o.imbal)
	}
	fmt.Println("\nvirtual runtime [s] on the paper's platforms (8 threads):")
	fmt.Printf("%-12s %10s %10s %12s\n", "platform", "oldPAR", "newPAR", "improvement")
	for _, p := range []string{"Nehalem", "Clovertown", "Barcelona", "x4600"} {
		old := results[phylo.OldPar].platform[p]
		neu := results[phylo.NewPar].platform[p]
		fmt.Printf("%-12s %10.1f %10.1f %11.2fx\n", p, old, neu, old/neu)
	}
	fmt.Println("\nboth strategies converge to the same likelihood; newPAR just")
	fmt.Println("amortizes each barrier over the full alignment width.")
}
