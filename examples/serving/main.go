// Serving: run the likelihood daemon in-process and drive it as a client —
// submit an alignment, fire concurrent identical evaluates (and watch them
// coalesce onto one kernel run), start an analysis, stream its progress
// over SSE, then drain. The same traffic works against a standalone daemon
// started with `plkd`; see README.md next to this file for the curl
// version of this walkthrough.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"phylo"
	"phylo/internal/server"
)

func main() {
	// 1. Stand up the daemon in-process: 2 worker threads, a 256 MiB
	// dataset cache, 4 in-flight work items per tenant.
	srv := server.New(server.Config{
		Threads:        2,
		CacheBytes:     256 << 20,
		TenantInflight: 4,
	})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	base := hs.URL
	fmt.Println("daemon listening at", base)

	// 2. Submit an alignment. The handle is a digest: resubmitting the same
	// alignment is a cache hit, and the response prices the dataset's
	// memory footprint — what it costs the cache to keep resident.
	al, err := phylo.SimulateGrid(12, 2000, 1000, 0.5, 42)
	if err != nil {
		log.Fatal(err)
	}
	var phy bytes.Buffer
	if err := al.WritePhylip(&phy); err != nil {
		log.Fatal(err)
	}
	var ds struct {
		ID          string `json:"id"`
		Patterns    int    `json:"patterns"`
		MemoryBytes int64  `json:"memory_bytes"`
		Cached      bool   `json:"cached"`
	}
	postJSON(base+"/v1/datasets", map[string]any{"phylip": phy.String()}, &ds)
	fmt.Printf("dataset %s: %d patterns, %.2f MiB resident\n",
		ds.ID, ds.Patterns, float64(ds.MemoryBytes)/(1<<20))

	// 3. Concurrent identical evaluates coalesce: one kernel run, shared
	// bit-identical answer. Different trees/seeds would each run fresh.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ev struct {
				LnL       float64 `json:"lnl"`
				LnLBits   string  `json:"lnl_bits"`
				Coalesced bool    `json:"coalesced"`
			}
			postJSON(base+"/v1/evaluate", map[string]any{"dataset": ds.ID, "seed": 7}, &ev)
			fmt.Printf("evaluate: lnL %.4f (bits %s, coalesced=%v)\n", ev.LnL, ev.LnLBits, ev.Coalesced)
		}()
	}
	wg.Wait()
	fmt.Printf("kernel executions so far: %d\n", srv.KernelRuns())

	// 4. Start a model-optimization analysis and stream its progress.
	var an struct {
		ID string `json:"id"`
	}
	postJSON(base+"/v1/analyses", map[string]any{"dataset": ds.ID, "mode": "modelopt", "seed": 7}, &an)
	resp, err := http.Get(base + "/v1/analyses/" + an.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			switch event {
			case "progress":
				var e struct {
					Seq int64 `json:"seq"`
					Ev  struct {
						Round int     `json:"Round"`
						LnL   float64 `json:"LnL"`
					} `json:"event"`
				}
				json.Unmarshal([]byte(data), &e)
				fmt.Printf("  round %d: lnL %.4f\n", e.Ev.Round, e.Ev.LnL)
			case "done":
				var st struct {
					State string  `json:"state"`
					LnL   float64 `json:"lnl"`
				}
				json.Unmarshal([]byte(data), &st)
				fmt.Printf("analysis %s: %s, final lnL %.4f\n", an.ID, st.State, st.LnL)
			}
		}
		if event == "done" && strings.HasPrefix(line, "data: ") {
			break
		}
	}
	resp.Body.Close()

	// 5. Drain: in-flight work finishes, new work gets 503.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Fatal("drain:", err)
	}
	fmt.Println("drained cleanly")
}

// postJSON posts v and decodes the response into out, failing hard on any
// error — example-grade plumbing.
func postJSON(url string, v, out any) {
	b, _ := json.Marshal(v)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: HTTP %d: %s", url, resp.StatusCode, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
