package phylo

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

const tinyPhylip = `6 40
t0  ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT
t1  ACGTACGTACTTACGTACGAACGTACGTACGTACGTACGT
t2  ACGAACGTACGTACGTACGTACGTACCTACGTACGTACGT
t3  TCGTACGTACGTACGGACGTACGTACGTACGTACGTACCT
t4  ACGTACGTACGTACGTACGTAGGTACGTACGAACGTACGT
t5  ACGTACCTACGTACGTACGTACGTACGTACGTAAGTACGT
`

func TestReadPhylipAndAnalyze(t *testing.T) {
	al, err := ReadPhylip(strings.NewReader(tinyPhylip))
	if err != nil {
		t.Fatal(err)
	}
	if al.NumTaxa() != 6 || al.NumSites() != 40 || al.NumPartitions() != 1 {
		t.Fatalf("shape: %d taxa %d sites %d parts", al.NumTaxa(), al.NumSites(), al.NumPartitions())
	}
	an, err := NewAnalysis(al, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	lnl := an.LogLikelihood()
	if lnl >= 0 || math.IsNaN(lnl) {
		t.Errorf("lnL = %v", lnl)
	}
	better, err := an.OptimizeModel()
	if err != nil {
		t.Fatal(err)
	}
	if better < lnl {
		t.Errorf("optimization decreased lnL: %v -> %v", lnl, better)
	}
	alpha, err := an.Alpha(0)
	if err != nil || alpha <= 0 {
		t.Errorf("alpha = %v, %v", alpha, err)
	}
	if _, err := an.Alpha(5); err == nil {
		t.Error("expected error for bad partition index")
	}
	nwk := an.TreeNewick()
	if !strings.HasPrefix(nwk, "(") || !strings.HasSuffix(nwk, ";") {
		t.Errorf("newick malformed: %s", nwk)
	}
}

func TestPartitionedAnalysisStrategies(t *testing.T) {
	results := map[Strategy]float64{}
	for _, strat := range []Strategy{OldPar, NewPar} {
		al, err := ReadPhylip(strings.NewReader(tinyPhylip))
		if err != nil {
			t.Fatal(err)
		}
		if err := al.SetUniformPartitions(DNA, 20); err != nil {
			t.Fatal(err)
		}
		an, err := NewAnalysis(al, Options{
			Strategy:                  strat,
			PerPartitionBranchLengths: true,
			Seed:                      7,
		})
		if err != nil {
			t.Fatal(err)
		}
		lnl, err := an.OptimizeModel()
		if err != nil {
			t.Fatal(err)
		}
		results[strat] = lnl
		st := an.Stats()
		if st.Regions == 0 {
			t.Error("no parallel regions recorded")
		}
		an.Close()
	}
	if math.Abs(results[OldPar]-results[NewPar]) > 1e-2*math.Abs(results[OldPar]) {
		t.Errorf("strategies disagree: %v vs %v", results[OldPar], results[NewPar])
	}
}

func TestVirtualThreadsAndPlatformPricing(t *testing.T) {
	al, _ := ReadPhylip(strings.NewReader(tinyPhylip))
	al.SetUniformPartitions(DNA, 10)
	an, err := NewAnalysis(al, Options{
		Threads:                   8,
		VirtualThreads:            true,
		PerPartitionBranchLengths: true,
		Strategy:                  NewPar,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	if _, err := an.OptimizeBranchLengths(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Nehalem", "Clovertown", "Barcelona", "x4600"} {
		s, err := an.PlatformSeconds(name)
		if err != nil || s <= 0 {
			t.Errorf("platform %s: %v, %v", name, s, err)
		}
	}
	if _, err := an.PlatformSeconds("VAX"); err == nil {
		t.Error("expected error for unknown platform")
	}
}

func TestSearchViaFacade(t *testing.T) {
	al, err := SimulateGrid(10, 5000, 1000, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalysis(al, Options{Strategy: NewPar, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	before := an.LogLikelihood()
	res, err := an.SearchWith(SearchOptions{MaxRounds: 1, Radius: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.LnL < before {
		t.Errorf("search decreased lnL %v -> %v", before, res.LnL)
	}
	if res.MovesTried == 0 {
		t.Error("no moves tried")
	}
}

func TestSimulateRealWorldFacade(t *testing.T) {
	al, err := SimulateRealWorld("r125_19839", 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	if al.NumTaxa() != 125 || al.NumPartitions() != 34 {
		t.Errorf("shape %d taxa %d parts", al.NumTaxa(), al.NumPartitions())
	}
	if _, err := SimulateRealWorld("r999", 0.01, 5); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestPartitionFileRoundTripFacade(t *testing.T) {
	al, _ := ReadPhylip(strings.NewReader(tinyPhylip))
	if err := al.SetPartitionsFromReader(strings.NewReader("DNA, g0 = 1-20\nDNA, g1 = 21-40\n")); err != nil {
		t.Fatal(err)
	}
	if al.NumPartitions() != 2 {
		t.Fatalf("partitions = %d", al.NumPartitions())
	}
	var buf bytes.Buffer
	if err := al.WritePartitions(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1-20") {
		t.Errorf("partition output: %s", buf.String())
	}
	var aln bytes.Buffer
	if err := al.WritePhylip(&aln); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPhylip(&aln)
	if err != nil || back.NumTaxa() != 6 {
		t.Errorf("phylip roundtrip failed: %v", err)
	}
}

func TestStartTreeNewickRespected(t *testing.T) {
	al, _ := ReadPhylip(strings.NewReader(tinyPhylip))
	fixed := "(t0:0.1,t1:0.1,(t2:0.1,(t3:0.1,(t4:0.1,t5:0.1):0.1):0.1):0.1);"
	an, err := NewAnalysis(al, Options{StartTreeNewick: fixed})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	if got := an.TreeNewick(); !strings.Contains(got, "t5") {
		t.Errorf("tree lost taxa: %s", got)
	}
	if _, err := NewAnalysis(al, Options{StartTreeNewick: "((bad));"}); err == nil {
		t.Error("expected error for bad newick")
	}
	if _, err := NewAnalysis(nil, Options{}); err == nil {
		t.Error("expected error for nil alignment")
	}
}

func TestRobinsonFouldsFacade(t *testing.T) {
	taxa := []string{"t0", "t1", "t2", "t3"}
	a := "((t0:1,t1:1):1,(t2:1,t3:1):1);"
	b := "((t0:1,t2:1):1,(t1:1,t3:1):1);"
	d, err := RobinsonFoulds(a, a, taxa)
	if err != nil || d != 0 {
		t.Errorf("RF(a,a) = %d, %v", d, err)
	}
	d, err = RobinsonFoulds(a, b, taxa)
	if err != nil || d != 2 {
		t.Errorf("RF(a,b) = %d, %v; want 2", d, err)
	}
	if _, err := RobinsonFoulds("bad", a, taxa); err == nil {
		t.Error("expected parse error")
	}
	if _, err := RobinsonFoulds(a, "bad", taxa); err == nil {
		t.Error("expected parse error")
	}
}
