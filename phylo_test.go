package phylo

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

const tinyPhylip = `6 40
t0  ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT
t1  ACGTACGTACTTACGTACGAACGTACGTACGTACGTACGT
t2  ACGAACGTACGTACGTACGTACGTACCTACGTACGTACGT
t3  TCGTACGTACGTACGGACGTACGTACGTACGTACGTACCT
t4  ACGTACGTACGTACGTACGTAGGTACGTACGAACGTACGT
t5  ACGTACCTACGTACGTACGTACGTACGTACGTAAGTACGT
`

func TestReadPhylipAndAnalyze(t *testing.T) {
	al, err := ReadPhylip(strings.NewReader(tinyPhylip))
	if err != nil {
		t.Fatal(err)
	}
	if al.NumTaxa() != 6 || al.NumSites() != 40 || al.NumPartitions() != 1 {
		t.Fatalf("shape: %d taxa %d sites %d parts", al.NumTaxa(), al.NumSites(), al.NumPartitions())
	}
	an, err := NewAnalysis(al, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	lnl := an.LogLikelihood()
	if lnl >= 0 || math.IsNaN(lnl) {
		t.Errorf("lnL = %v", lnl)
	}
	better, err := an.OptimizeModel(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if better < lnl {
		t.Errorf("optimization decreased lnL: %v -> %v", lnl, better)
	}
	alpha, err := an.Alpha(0)
	if err != nil || alpha <= 0 {
		t.Errorf("alpha = %v, %v", alpha, err)
	}
	if _, err := an.Alpha(5); err == nil {
		t.Error("expected error for bad partition index")
	}
	nwk := an.TreeNewick()
	if !strings.HasPrefix(nwk, "(") || !strings.HasSuffix(nwk, ";") {
		t.Errorf("newick malformed: %s", nwk)
	}
}

func TestPartitionedAnalysisStrategies(t *testing.T) {
	results := map[Strategy]float64{}
	for _, strat := range []Strategy{OldPar, NewPar} {
		al, err := ReadPhylip(strings.NewReader(tinyPhylip))
		if err != nil {
			t.Fatal(err)
		}
		if err := al.SetUniformPartitions(DNA, 20); err != nil {
			t.Fatal(err)
		}
		an, err := NewAnalysis(al, Options{
			Strategy:                  strat,
			PerPartitionBranchLengths: true,
			Seed:                      7,
		})
		if err != nil {
			t.Fatal(err)
		}
		lnl, err := an.OptimizeModel(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		results[strat] = lnl
		st := an.Stats()
		if st.Regions == 0 {
			t.Error("no parallel regions recorded")
		}
		an.Close()
	}
	if math.Abs(results[OldPar]-results[NewPar]) > 1e-2*math.Abs(results[OldPar]) {
		t.Errorf("strategies disagree: %v vs %v", results[OldPar], results[NewPar])
	}
}

func TestVirtualThreadsAndPlatformPricing(t *testing.T) {
	al, _ := ReadPhylip(strings.NewReader(tinyPhylip))
	al.SetUniformPartitions(DNA, 10)
	an, err := NewAnalysis(al, Options{
		Threads:                   8,
		VirtualThreads:            true,
		PerPartitionBranchLengths: true,
		Strategy:                  NewPar,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	if _, err := an.OptimizeBranchLengths(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Nehalem", "Clovertown", "Barcelona", "x4600"} {
		s, err := an.PlatformSeconds(name)
		if err != nil || s <= 0 {
			t.Errorf("platform %s: %v, %v", name, s, err)
		}
	}
	if _, err := an.PlatformSeconds("VAX"); err == nil {
		t.Error("expected error for unknown platform")
	}
}

func TestSearchViaFacade(t *testing.T) {
	al, err := SimulateGrid(10, 5000, 1000, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalysis(al, Options{Strategy: NewPar, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	before := an.LogLikelihood()
	res, err := an.SearchWith(context.Background(), SearchOptions{MaxRounds: 1, Radius: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.LnL < before {
		t.Errorf("search decreased lnL %v -> %v", before, res.LnL)
	}
	if res.MovesTried == 0 {
		t.Error("no moves tried")
	}
}

func TestSimulateRealWorldFacade(t *testing.T) {
	al, err := SimulateRealWorld("r125_19839", 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	if al.NumTaxa() != 125 || al.NumPartitions() != 34 {
		t.Errorf("shape %d taxa %d parts", al.NumTaxa(), al.NumPartitions())
	}
	if _, err := SimulateRealWorld("r999", 0.01, 5); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestPartitionFileRoundTripFacade(t *testing.T) {
	al, _ := ReadPhylip(strings.NewReader(tinyPhylip))
	if err := al.SetPartitionsFromReader(strings.NewReader("DNA, g0 = 1-20\nDNA, g1 = 21-40\n")); err != nil {
		t.Fatal(err)
	}
	if al.NumPartitions() != 2 {
		t.Fatalf("partitions = %d", al.NumPartitions())
	}
	var buf bytes.Buffer
	if err := al.WritePartitions(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1-20") {
		t.Errorf("partition output: %s", buf.String())
	}
	var aln bytes.Buffer
	if err := al.WritePhylip(&aln); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPhylip(&aln)
	if err != nil || back.NumTaxa() != 6 {
		t.Errorf("phylip roundtrip failed: %v", err)
	}
}

func TestStartTreeNewickRespected(t *testing.T) {
	al, _ := ReadPhylip(strings.NewReader(tinyPhylip))
	fixed := "(t0:0.1,t1:0.1,(t2:0.1,(t3:0.1,(t4:0.1,t5:0.1):0.1):0.1):0.1);"
	an, err := NewAnalysis(al, Options{StartTreeNewick: fixed})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	if got := an.TreeNewick(); !strings.Contains(got, "t5") {
		t.Errorf("tree lost taxa: %s", got)
	}
	if _, err := NewAnalysis(al, Options{StartTreeNewick: "((bad));"}); err == nil {
		t.Error("expected error for bad newick")
	}
	if _, err := NewAnalysis(nil, Options{}); err == nil {
		t.Error("expected error for nil alignment")
	}
}

func TestRobinsonFouldsFacade(t *testing.T) {
	taxa := []string{"t0", "t1", "t2", "t3"}
	a := "((t0:1,t1:1):1,(t2:1,t3:1):1);"
	b := "((t0:1,t2:1):1,(t1:1,t3:1):1);"
	d, err := RobinsonFoulds(a, a, taxa)
	if err != nil || d != 0 {
		t.Errorf("RF(a,a) = %d, %v", d, err)
	}
	d, err = RobinsonFoulds(a, b, taxa)
	if err != nil || d != 2 {
		t.Errorf("RF(a,b) = %d, %v; want 2", d, err)
	}
	if _, err := RobinsonFoulds("bad", a, taxa); err == nil {
		t.Error("expected parse error")
	}
	if _, err := RobinsonFoulds(a, "bad", taxa); err == nil {
		t.Error("expected parse error")
	}
}

// --- Dataset / session API ---

// gridAlignment builds a small partitioned DNA alignment for session tests.
func gridAlignment(t *testing.T) *Alignment {
	t.Helper()
	al, err := SimulateGrid(10, 5000, 1000, 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	return al
}

// TestConcurrentSessionsMatchSequential is the acceptance test of the
// Dataset/session split: N concurrent sessions over one Dataset (sharing
// one worker pool) must reproduce the single-session log likelihood
// bit-for-bit, and each session sees only its own statistics. Run under
// -race in CI.
func TestConcurrentSessionsMatchSequential(t *testing.T) {
	al := gridAlignment(t)
	opts := AnalysisOptions{Strategy: NewPar, PerPartitionBranchLengths: true, Seed: 17}

	// Baseline: one session, run alone.
	ds, err := NewDataset(al, DatasetOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base, err := ds.NewAnalysis(opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.OptimizeModel(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	baseRegions := base.Stats().Regions
	if err := base.Close(); err != nil {
		t.Fatal(err)
	}

	// Three concurrent sessions over the same dataset.
	const n = 3
	got := make([]float64, n)
	regions := make([]int64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		an, err := ds.NewAnalysis(opts)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, an *Analysis) {
			defer wg.Done()
			defer an.Close()
			got[i], errs[i] = an.OptimizeModel(context.Background())
			regions[i] = an.Stats().Regions
		}(i, an)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if got[i] != want {
			t.Errorf("session %d lnL = %v, want bit-identical %v", i, got[i], want)
		}
		if regions[i] != baseRegions {
			t.Errorf("session %d saw %d regions, want its own count %d (per-session stats)", i, regions[i], baseRegions)
		}
	}
}

// TestCancelMidSearch cancels a context from inside the progress stream and
// checks that the search returns promptly with a usable partial result and
// a session that is still fully operational.
func TestCancelMidSearch(t *testing.T) {
	al := gridAlignment(t)
	ds, err := NewDataset(al, DatasetOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var events []ProgressEvent
	an, err := ds.NewAnalysis(AnalysisOptions{
		Strategy: NewPar,
		Seed:     11,
		Progress: func(ev ProgressEvent) {
			events = append(events, ev)
			cancel() // cancel after the first completed round
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()

	start := time.Now()
	res, err := an.SearchWith(ctx, SearchOptions{MaxRounds: 50, Radius: 2})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events before cancellation")
	}
	if res.Rounds >= 3 {
		t.Errorf("search kept going for %d rounds after cancellation", res.Rounds)
	}
	if math.IsNaN(res.LnL) || math.IsInf(res.LnL, 0) || res.LnL >= 0 {
		t.Errorf("partial result lnL = %v, want finite negative", res.LnL)
	}
	// The session must remain consistent and usable after cancellation.
	lnl := an.LogLikelihood()
	if math.IsNaN(lnl) || lnl >= 0 {
		t.Errorf("post-cancel LogLikelihood = %v", lnl)
	}
	if lnl != res.LnL {
		t.Errorf("post-cancel evaluation %v != reported partial result %v", lnl, res.LnL)
	}
	if nwk := an.TreeNewick(); !strings.HasSuffix(nwk, ";") {
		t.Errorf("post-cancel tree malformed: %q", nwk)
	}
	_ = elapsed // prompt-return is asserted via the round bound above
}

// TestCancelledBeforeStart: a pre-cancelled context must not run any rounds.
func TestCancelledBeforeStart(t *testing.T) {
	al := gridAlignment(t)
	ds, err := NewDataset(al, DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	an, err := ds.NewAnalysis(AnalysisOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := an.OptimizeModel(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("OptimizeModel err = %v, want Canceled", err)
	}
	if _, err := an.SearchWith(ctx, SearchOptions{MaxRounds: 3}); !errors.Is(err, context.Canceled) {
		t.Errorf("Search err = %v, want Canceled", err)
	}
}

// TestCloseSemantics: Close is idempotent on both layers and use-after-close
// yields clear errors rather than panics.
func TestCloseSemantics(t *testing.T) {
	al, _ := ReadPhylip(strings.NewReader(tinyPhylip))
	ds, err := NewDataset(al, DatasetOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	an, err := ds.NewAnalysis(AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Close(); err != nil {
		t.Fatalf("first analysis close: %v", err)
	}
	if err := an.Close(); err != nil {
		t.Fatalf("second analysis close not idempotent: %v", err)
	}
	if _, err := an.OptimizeModel(context.Background()); !errors.Is(err, ErrAnalysisClosed) {
		t.Errorf("use-after-close err = %v, want ErrAnalysisClosed", err)
	}
	if lnl := an.LogLikelihood(); !math.IsNaN(lnl) {
		t.Errorf("LogLikelihood after close = %v, want NaN", lnl)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("first dataset close: %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("second dataset close not idempotent: %v", err)
	}
	if _, err := ds.NewAnalysis(AnalysisOptions{}); !errors.Is(err, ErrDatasetClosed) {
		t.Errorf("NewAnalysis after close err = %v, want ErrDatasetClosed", err)
	}

	// A dataset closed under a live session: the session reports the
	// dataset error instead of panicking on the dead pool.
	ds2, err := NewDataset(al, DatasetOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	an2, err := ds2.NewAnalysis(AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds2.Close(); err == nil {
		t.Error("closing a dataset with an open session should report it")
	}
	if _, err := an2.OptimizeModel(context.Background()); !errors.Is(err, ErrDatasetClosed) {
		t.Errorf("session after dataset close err = %v, want ErrDatasetClosed", err)
	}
	an2.Close()

	// The legacy shim owns its dataset: closing the analysis closes both.
	an3, err := NewAnalysis(al, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := an3.Close(); err != nil {
		t.Fatalf("legacy close: %v", err)
	}
	if err := an3.Close(); err != nil {
		t.Fatalf("legacy double close: %v", err)
	}
}

// TestCloseDatasetMidAnalysis: closing the dataset while a session is
// mid-optimization must not crash the process — the in-flight run completes
// degraded (serial regions) and subsequent entry points report
// ErrDatasetClosed.
func TestCloseDatasetMidAnalysis(t *testing.T) {
	al := gridAlignment(t)
	ds, err := NewDataset(al, DatasetOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	var once sync.Once
	an, err := ds.NewAnalysis(AnalysisOptions{
		Seed: 13,
		Progress: func(ev ProgressEvent) {
			once.Do(func() {
				// First round done: close the dataset under the running session.
				ds.Close()
				close(closed)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	lnl, err := an.OptimizeModel(context.Background())
	<-closed
	if err != nil {
		t.Fatalf("mid-run close should not fail the in-flight optimization: %v", err)
	}
	if math.IsNaN(lnl) || lnl >= 0 {
		t.Errorf("lnl after mid-run close = %v", lnl)
	}
	if _, err := an.OptimizeModel(context.Background()); !errors.Is(err, ErrDatasetClosed) {
		t.Errorf("next entry point err = %v, want ErrDatasetClosed", err)
	}
}

// TestTreeNewickForPartition: per-partition branch lengths serialize per
// slot; joint estimates collapse every partition onto slot 0.
func TestTreeNewickForPartition(t *testing.T) {
	al, _ := ReadPhylip(strings.NewReader(tinyPhylip))
	if err := al.SetUniformPartitions(DNA, 20); err != nil {
		t.Fatal(err)
	}
	ds, err := NewDataset(al, DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	an, err := ds.NewAnalysis(AnalysisOptions{PerPartitionBranchLengths: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	if _, err := an.OptimizeBranchLengths(context.Background()); err != nil {
		t.Fatal(err)
	}
	nwk0, err := an.TreeNewickForPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	nwk1, err := an.TreeNewickForPartition(1)
	if err != nil {
		t.Fatal(err)
	}
	if nwk0 != an.TreeNewick() {
		t.Error("TreeNewickForPartition(0) should match TreeNewick")
	}
	if nwk0 == nwk1 {
		t.Error("partitions share branch lengths despite per-partition estimation")
	}
	if _, err := an.TreeNewickForPartition(2); err == nil {
		t.Error("expected range error for partition 2")
	}
	if _, err := an.TreeNewickForPartition(-1); err == nil {
		t.Error("expected range error for partition -1")
	}
}

// TestProgressEvents: model optimization streams per-round events carrying
// runtime counters.
func TestProgressEvents(t *testing.T) {
	al, _ := ReadPhylip(strings.NewReader(tinyPhylip))
	ds, err := NewDataset(al, DatasetOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	var events []ProgressEvent
	an, err := ds.NewAnalysis(AnalysisOptions{
		Seed:     3,
		Progress: func(ev ProgressEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	if _, err := an.OptimizeModel(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	for i, ev := range events {
		if ev.Phase != PhaseModelOpt {
			t.Errorf("event %d phase = %q", i, ev.Phase)
		}
		if ev.Round != i+1 {
			t.Errorf("event %d round = %d", i, ev.Round)
		}
		if ev.Regions <= 0 || ev.WorkerImbalance < 1 {
			t.Errorf("event %d counters: regions=%d imbalance=%v", i, ev.Regions, ev.WorkerImbalance)
		}
		if math.IsNaN(ev.LnL) || ev.LnL >= 0 {
			t.Errorf("event %d lnL = %v", i, ev.LnL)
		}
	}
}

// TestDatasetAccessors sanity-checks the dataset surface.
func TestDatasetAccessors(t *testing.T) {
	al, _ := ReadPhylip(strings.NewReader(tinyPhylip))
	ds, err := NewDataset(al, DatasetOptions{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.NumTaxa() != 6 || ds.NumSites() != 40 || ds.NumPartitions() != 1 {
		t.Errorf("shape: %d taxa %d sites %d parts", ds.NumTaxa(), ds.NumSites(), ds.NumPartitions())
	}
	if ds.NumPatterns() <= 0 || ds.NumPatterns() > ds.NumSites() {
		t.Errorf("patterns = %d", ds.NumPatterns())
	}
	if ds.Threads() != 3 {
		t.Errorf("threads = %d", ds.Threads())
	}
	if names := ds.TaxonNames(); len(names) != 6 || names[0] != "t0" {
		t.Errorf("taxon names: %v", names)
	}
	if _, err := NewDataset(nil, DatasetOptions{}); err == nil {
		t.Error("expected error for nil alignment")
	}
	sites, patterns, err := al.CompressionStats()
	if err != nil || sites != 40 || patterns != ds.NumPatterns() {
		t.Errorf("CompressionStats = %d, %d, %v; want 40, %d", sites, patterns, err, ds.NumPatterns())
	}
}
