package phylo

import (
	"context"
	"fmt"

	"phylo/internal/core"
	"phylo/internal/opt"
	"phylo/internal/tree"
)

// PhaseBootstrap events stream from Bootstrap, one per scored candidate
// topology.
const PhaseBootstrap Phase = "bootstrap"

// BootstrapResult reports one bootstrap run: R replicate weight vectors were
// drawn, a fixed candidate topology set was scored under all of them in one
// batched sweep, and the per-replicate winners were folded into split support
// values on the session's tree.
type BootstrapResult struct {
	// Replicates is the number R of bootstrap weight vectors drawn.
	Replicates int
	// Seed is the base seed the replicate weights derive from: replicate r is
	// a pure function of (dataset, Seed, r), independent of R, so growing the
	// fleet never changes the replicates already drawn.
	Seed int64
	// Candidates is the size of the scored topology set: the session's
	// current tree plus its complete nearest-neighbor-interchange
	// neighborhood, 2(n-3)+1 topologies in total.
	Candidates int
	// ReplicateLnL[r] is replicate r's best weighted log likelihood across
	// the candidate set — bit-identical to the score a dedicated
	// single-replicate session computes for the same topology and weights.
	ReplicateLnL []float64
	// ReplicateWinner[r] is the index of replicate r's winning candidate
	// (0 = the session's own tree; ties resolve to the lowest index).
	ReplicateWinner []int
	// Support maps each non-trivial split of the session's tree (canonical
	// split key, see tree.SplitKey) to the fraction of replicates whose
	// winning topology contains it.
	Support map[string]float64
	// TreeNewick is the session's tree annotated with integer-percent
	// support values on its internal nodes (e.g. ")87:0.012").
	TreeNewick string
}

// Bootstrap runs an R-replicate bootstrap over the session's current tree in
// one batched sweep. It draws R multinomial pattern-weight vectors from the
// compressed alignment (seeded, reproducible, each replicate's column total
// equal to the original site count), scores the tree and its full NNI
// neighborhood under all R weight vectors at once — newview runs once per
// candidate while the batched evaluate reduces all replicates in a single
// pass, which is where the batching speedup over R independent sessions comes
// from — and aggregates each replicate's winning topology into per-branch
// support values.
//
// Branch lengths are optimized per candidate in the shared-branch-length mode:
// one smoothing pass against the replicate-aggregate weights (see
// opt.Config.Weights) prices the branch lengths for the whole fleet, then the
// batched evaluate splits the score back into per-replicate terms. For the
// duration of the call the dataset's schedules are repriced for batch width R
// (Shared.SetBatchWidth), so the weighted/measured packs account for the
// per-lane reduction work; width-1 pricing is restored on return.
//
// The session's tree and weights are restored before returning: Bootstrap is
// read-only from the caller's point of view. Cancelling ctx stops the sweep
// at the next candidate boundary and returns the context's error.
func (an *Analysis) Bootstrap(ctx context.Context, replicates int, seed int64) (res *BootstrapResult, err error) {
	ctx = orBackground(ctx)
	if err := an.guard(); err != nil {
		return nil, err
	}
	if replicates < 1 {
		return nil, fmt.Errorf("phylo: bootstrap replicate count %d must be positive", replicates)
	}
	ws, err := core.NewWeightSet(an.ds.data, replicates, seed)
	if err != nil {
		return nil, err
	}

	// Reprice the shared schedules for the live batch width; every session
	// adopts the repriced packs at its next region boundary and the restore
	// swaps them back the same way.
	if err := an.ds.shared.SetBatchWidth(replicates); err != nil {
		return nil, err
	}
	defer an.ds.shared.SetBatchWidth(1)

	// Snapshot the caller's tree (topology and branch lengths) so the session
	// comes back exactly as it went in, whatever happens below.
	original, err := an.tr.Clone()
	if err != nil {
		return nil, err
	}
	defer func() {
		an.eng.SetWeightOverride(nil)
		if restoreErr := an.tr.CopyTopologyFrom(original); restoreErr != nil && err == nil {
			err = restoreErr
		}
		an.eng.InvalidateCLVs()
	}()

	// The candidate set: the session's tree first (so ties favour it), then
	// its complete NNI neighborhood.
	nni, err := an.tr.NNICandidates()
	if err != nil {
		return nil, err
	}
	candidates := append([]*tree.Tree{original}, nni...)

	cfg := an.optConfig()
	cfg.Weights = ws.Aggregate()
	lanes := make([][]float64, len(candidates))
	for i, cand := range candidates {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := an.tr.CopyTopologyFrom(cand); err != nil {
			return nil, err
		}
		an.eng.InvalidateCLVs()
		weighted := opt.New(an.eng, cfg).SmoothAll(ctx)
		ls, err := an.eng.LogLikelihoodBatch(ws)
		if err != nil {
			return nil, err
		}
		lanes[i] = ls
		if an.progress != nil {
			an.emit(ProgressEvent{Phase: PhaseBootstrap, Round: i + 1, LnL: weighted})
		}
	}

	res = &BootstrapResult{
		Replicates:      replicates,
		Seed:            seed,
		Candidates:      len(candidates),
		ReplicateLnL:    make([]float64, replicates),
		ReplicateWinner: make([]int, replicates),
	}
	counter := tree.NewSupportCounter(original.NumTips())
	for r := 0; r < replicates; r++ {
		best := 0
		for i := 1; i < len(candidates); i++ {
			if lanes[i][r] > lanes[best][r] {
				best = i
			}
		}
		res.ReplicateWinner[r] = best
		res.ReplicateLnL[r] = lanes[best][r]
		if err := counter.Add(candidates[best]); err != nil {
			return nil, err
		}
	}
	sup, err := counter.Support(original)
	if err != nil {
		return nil, err
	}
	res.Support = sup
	res.TreeNewick = tree.WriteNewickSupport(original, 0, sup)
	return res, nil
}
