package phylo

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestDocLint is the repo's missing-doc gate for the public facade: every
// exported identifier in package phylo — functions, methods on exported
// types, types, constants, variables, and exported struct fields — must
// carry a doc comment, and top-level doc comments must start with the
// identifier's name (the revive/golint "exported" convention, enforced here
// with go/parser so the gate needs no external linter). CI runs it via the
// ordinary test step; run it alone with:
//
//	go test -run TestDocLint .
func TestDocLint(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["phylo"]
	if !ok {
		t.Fatalf("package phylo not found in %v", pkgs)
	}

	var problems []string
	complain := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	// needDoc flags a missing comment; when the comment exists it must lead
	// with the identifier so godoc reads as prose ("Foo does ...").
	needDoc := func(name string, doc *ast.CommentGroup, pos token.Pos) {
		if !ast.IsExported(name) {
			return
		}
		if doc == nil || strings.TrimSpace(doc.Text()) == "" {
			complain(pos, "exported %s has no doc comment", name)
			return
		}
		first := strings.Fields(doc.Text())[0]
		if !strings.HasPrefix(first, name) && first != "Deprecated:" && first != "A" && first != "An" && first != "The" {
			complain(pos, "doc comment for %s should start with %q, got %q", name, name, first)
		}
	}

	for name, file := range pkg.Files {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				// Methods on unexported receivers are not part of godoc.
				if d.Recv != nil && !exportedRecv(d.Recv) {
					continue
				}
				needDoc(d.Name.Name, d.Doc, d.Pos())
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						doc := s.Doc
						if doc == nil {
							doc = d.Doc // "type Foo ..." with the comment on the decl
						}
						needDoc(s.Name.Name, doc, s.Pos())
						if st, ok := s.Type.(*ast.StructType); ok && ast.IsExported(s.Name.Name) {
							for _, f := range st.Fields.List {
								for _, fn := range f.Names {
									if ast.IsExported(fn.Name) && f.Doc == nil && f.Comment == nil {
										complain(fn.Pos(), "exported field %s.%s has no doc comment", s.Name.Name, fn.Name)
									}
								}
							}
						}
					case *ast.ValueSpec:
						doc := s.Doc
						if doc == nil {
							doc = d.Doc
						}
						for _, n := range s.Names {
							if !ast.IsExported(n.Name) {
								continue
							}
							if doc == nil || strings.TrimSpace(doc.Text()) == "" {
								complain(n.Pos(), "exported %s %s has no doc comment", declKind(d.Tok), n.Name)
							}
						}
					}
				}
			}
		}
	}
	if len(problems) > 0 {
		t.Errorf("doc lint: %d problem(s) in the public phylo facade:\n  %s",
			len(problems), strings.Join(problems, "\n  "))
	}
}

func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (Foo[T]) unwrap to the index expression's base.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && ast.IsExported(id.Name)
}

func declKind(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "constant"
	case token.VAR:
		return "variable"
	}
	return tok.String()
}
