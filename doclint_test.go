package phylo_test

import (
	"testing"

	"phylo/internal/lint"
)

// TestDocLint is the repo's missing-doc gate for the public facade, kept
// reachable through plain `go test .`. The logic lives in the plkvet
// analyzer suite (internal/lint.DocLint, armed by the //plk:documented
// directive in the package doc); this shim runs that one analyzer over the
// facade package and fails on any finding. CI additionally runs the full
// suite via `go run ./cmd/plkvet ./...`.
func TestDocLint(t *testing.T) {
	pkgs, err := lint.Load(".", ".")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, e := range p.Errs {
			t.Errorf("loading %s: %v", p.ImportPath, e)
		}
	}
	for _, d := range lint.Run(pkgs, []*lint.Analyzer{lint.DocLint}) {
		t.Error(d.String())
	}
}
