package phylo

import (
	"context"
	"math"
	"sync"
	"testing"
)

// mixedAlignment builds the mixed DNA+AA workload whose ~25x per-pattern
// cost spread exercises the scheduling strategies.
func mixedAlignment(t *testing.T) *Alignment {
	t.Helper()
	al, err := SimulateMixed(10, 4, 2, 500, 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	return al
}

// TestAdaptiveSessionsAgreeAndSurviveRebalance is the facade acceptance test
// for the measured (adaptive) schedule: concurrent sessions over one
// ScheduleMeasured dataset must agree with a cyclic-schedule reference
// within 1e-9, a mid-analysis rebalance must not change a session's reported
// likelihood, and the whole dance must be race-detector clean (this test is
// in the CI race job's package list).
func TestAdaptiveSessionsAgreeAndSurviveRebalance(t *testing.T) {
	al := mixedAlignment(t)

	// Cyclic reference (the paper's distribution).
	refDs, err := NewDataset(al, DatasetOptions{Threads: 4, Schedule: ScheduleCyclic})
	if err != nil {
		t.Fatal(err)
	}
	defer refDs.Close()
	refAn, err := refDs.NewAnalysis(AnalysisOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	want := refAn.LogLikelihood()
	if math.IsNaN(want) {
		t.Fatal("reference lnL is NaN")
	}
	refAn.Close()

	ds, err := NewDataset(al, DatasetOptions{Threads: 4, Schedule: ScheduleMeasured})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	const n = 3
	var wg sync.WaitGroup
	lnls := make([][2]float64, n)
	rebs := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		an, err := ds.NewAnalysis(AnalysisOptions{Seed: 21, RebalanceThreshold: 1.05})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, an *Analysis) {
			defer wg.Done()
			defer an.Close()
			lnls[i][0] = an.LogLikelihood()
			// Session 0 forces a rebuild mid-analysis; the others keep
			// evaluating concurrently and adopt the published schedule at
			// their own region boundaries.
			if i == 0 {
				did, err := an.Rebalance()
				if err != nil {
					errs[i] = err
					return
				}
				if !did {
					t.Error("forced Rebalance on a measured session reported no-op")
				}
			}
			lnls[i][1] = an.LogLikelihood()
			rebs[i] = an.Rebalances()
			st := an.Stats()
			if st.TimeImbalance < 1 {
				t.Errorf("session %d time imbalance %v below 1", i, st.TimeImbalance)
			}
			for w, sec := range st.WorkerTime {
				if sec < 0 {
					t.Errorf("session %d worker %d measured %v seconds", i, w, sec)
				}
			}
		}(i, an)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		for phase, lnl := range lnls[i] {
			if math.Abs(lnl-want) > 1e-9*math.Abs(want) {
				t.Errorf("session %d phase %d: lnL %v drifted from cyclic reference %v", i, phase, lnl, want)
			}
		}
		if math.Abs(lnls[i][1]-lnls[i][0]) > 1e-9*math.Abs(want) {
			t.Errorf("session %d: rebalance changed reported lnL %v -> %v", i, lnls[i][0], lnls[i][1])
		}
	}
	if rebs[0] < 1 {
		t.Errorf("session 0 rebalance count = %d, want >= 1", rebs[0])
	}

	// Static-schedule sessions report Rebalance as an inert no-op.
	staticAn, err := refDs.NewAnalysis(AnalysisOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer staticAn.Close()
	if did, err := staticAn.Rebalance(); err != nil || did {
		t.Errorf("static Rebalance = %v, %v; want inert no-op", did, err)
	}
}

// TestAdaptiveModelOptRoundHook runs a full model optimization on the
// measured strategy and checks the end-to-end round hook: the optimizer
// completes, the likelihood matches the weighted strategy's within
// reassociation tolerance, and progress events carry the new fields.
func TestAdaptiveModelOptRoundHook(t *testing.T) {
	if testing.Short() {
		t.Skip("full model optimization run")
	}
	al, err := SimulateMixed(8, 2, 1, 400, 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	run := func(strat ScheduleStrategy) (float64, SyncStats) {
		ds, err := NewDataset(al, DatasetOptions{Threads: 4, Schedule: strat})
		if err != nil {
			t.Fatal(err)
		}
		defer ds.Close()
		events := 0
		an, err := ds.NewAnalysis(AnalysisOptions{
			Seed:                      5,
			PerPartitionBranchLengths: true,
			RebalanceThreshold:        1.01, // eager: exercise the hook
			Progress: func(ev ProgressEvent) {
				events++
				if ev.TimeImbalance < 1 {
					t.Errorf("progress event time imbalance %v below 1", ev.TimeImbalance)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer an.Close()
		lnl, err := an.OptimizeModel(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if events == 0 {
			t.Error("no progress events streamed")
		}
		return lnl, an.Stats()
	}
	wtdLnl, _ := run(ScheduleWeighted)
	adpLnl, adpSt := run(ScheduleMeasured)
	if math.Abs(wtdLnl-adpLnl) > 1e-9*math.Abs(wtdLnl) {
		t.Errorf("adaptive lnL %v drifted from weighted %v", adpLnl, wtdLnl)
	}
	t.Logf("adaptive: %d rebalances, time imbalance %.3f, worker imbalance %.3f",
		adpSt.Rebalances, adpSt.TimeImbalance, adpSt.WorkerImbalance)
}
