// Package phylo is a from-scratch Go implementation of the Phylogenetic
// Likelihood Kernel (PLK) with load-balanced fine-grained parallelism for
// partitioned phylogenomic analyses, reproducing Stamatakis & Ott, "Load
// Balance in the Phylogenetic Likelihood Kernel" (ICPP 2009).
//
// The package computes maximum-likelihood scores of unrooted binary
// phylogenies under GTR/Gamma models (DNA) and 20-state models (protein),
// optimizes model parameters (Brent) and branch lengths (Newton-Raphson),
// and runs SPR tree searches. Partitioned (multi-gene) datasets may use a
// separate model — and separate branch lengths — per partition; the iterative
// optimizers can run in the paper's two parallelization strategies:
//
//   - OldPar: partitions optimized one at a time (narrow parallel regions,
//     the load-balance problem the paper describes);
//   - NewPar: all partitions optimized simultaneously with per-partition
//     convergence tracking (the paper's solution).
//
// The API has two layers. A Dataset is the immutable, shareable product of
// the per-dataset setup work the paper amortizes — compressed patterns, tip
// encodings, model templates, precomputed worker schedules, and the shared
// worker pool. An Analysis is one lightweight session over a Dataset: it
// owns only mutable state (tree, CLVs, model copies), so any number of
// sessions can run concurrently over one Dataset — the many-trees /
// one-alignment workload of surrogate-likelihood methods. Long-running
// entry points take a context.Context and cancel at synchronization-region
// boundaries, and an optional Progress callback streams per-round events.
//
// A typical session:
//
//	al, _ := phylo.ReadPhylipFile("data.phy")
//	al.SetUniformPartitions(phylo.DNA, 1000)
//	ds, _ := phylo.NewDataset(al, phylo.DatasetOptions{Threads: 8})
//	defer ds.Close()
//	an, _ := ds.NewAnalysis(phylo.AnalysisOptions{Strategy: phylo.NewPar,
//	    PerPartitionBranchLengths: true})
//	defer an.Close()
//	lnl, _ := an.OptimizeModel(ctx)
//	res, _ := an.Search(ctx)
//	fmt.Println(res.LnL, an.TreeNewick())
//
// As the public facade, every exported identifier in this package must carry
// a doc comment; plkvet's doclint analyzer enforces it.
//
//plk:documented
package phylo

import (
	"fmt"
	"io"
	"os"

	"phylo/internal/alignment"
	"phylo/internal/core"
	"phylo/internal/opt"
	"phylo/internal/schedule"
	"phylo/internal/seqsim"
	"phylo/internal/tree"
)

// DataType selects the character alphabet of a partition.
type DataType = alignment.DataType

// Alphabets.
const (
	// DNA is 4-state nucleotide data.
	DNA = alignment.DNA
	// AA is 20-state protein data.
	AA = alignment.AA
)

// Strategy selects the parallelization of the iterative optimizers.
type Strategy = opt.Strategy

// Parallelization strategies (see the package comment).
const (
	// OldPar optimizes one partition at a time.
	OldPar = opt.OldPar
	// NewPar optimizes all partitions simultaneously (the paper's fix).
	NewPar = opt.NewPar
)

// ScheduleStrategy selects how alignment patterns are assigned to workers
// (see internal/schedule).
type ScheduleStrategy = schedule.Strategy

// Pattern-to-worker assignment strategies.
const (
	// ScheduleCyclic is the paper's distribution: pattern indices modulo the
	// worker count (the default).
	ScheduleCyclic = schedule.Cyclic
	// ScheduleBlock assigns each worker one contiguous slice of the global
	// pattern space (the ablation the paper argues against).
	ScheduleBlock = schedule.Block
	// ScheduleWeighted LPT-bin-packs patterns onto workers by per-pattern op
	// cost, balancing mixed DNA/protein datasets by cost rather than count.
	ScheduleWeighted = schedule.Weighted
	// ScheduleMeasured (CLI name "adaptive") is the feedback-driven strategy:
	// it starts from the weighted pack, measures each worker's wall-clock
	// time per partition while the analysis runs, and rebuilds the assignment
	// from the observed per-pattern costs whenever the measured imbalance
	// exceeds AnalysisOptions.RebalanceThreshold (hysteresis, default 1.1x).
	// Rebalances happen between optimizer/search rounds and swap in atomically
	// at region boundaries, so they never perturb a session's likelihoods.
	ScheduleMeasured = schedule.Measured
)

// ParseScheduleStrategy resolves "cyclic", "block", "weighted", or
// "measured"/"adaptive".
func ParseScheduleStrategy(name string) (ScheduleStrategy, error) { return schedule.Parse(name) }

// KernelBackend selects the likelihood kernel implementation and its CLV
// memory layout (see internal/core). All backends produce bit-identical
// likelihoods, site likelihoods, and branch derivatives.
type KernelBackend = core.Backend

// Kernel backends.
const (
	// BackendAuto resolves to the PLK_BACKEND environment variable when set
	// and to BackendFused otherwise (the default).
	BackendAuto = core.BackendAuto
	// BackendGeneric is the pattern-major reference path — the bit-exactness
	// oracle the fused backend is tested against.
	BackendGeneric = core.BackendGeneric
	// BackendFused uses a category-major, state-contiguous, cache-line-aligned
	// CLV layout with fully unrolled 4-state DNA kernels; 20-state partitions
	// run a layout-aware generic loop.
	BackendFused = core.BackendFused
)

// ParseKernelBackend resolves "auto", "generic", or "fused"/"vectorized".
func ParseKernelBackend(name string) (KernelBackend, error) { return core.ParseBackend(name) }

// Alignment is a multiple sequence alignment plus its partition scheme.
type Alignment struct {
	raw   *alignment.Alignment
	parts []alignment.Partition
}

// ReadPhylip parses a (relaxed sequential or interleaved) PHYLIP alignment.
// The alignment starts with a single DNA partition; call a SetPartitions
// method to change that.
func ReadPhylip(r io.Reader) (*Alignment, error) {
	a, err := alignment.ReadPhylip(r)
	if err != nil {
		return nil, err
	}
	return &Alignment{raw: a, parts: alignment.SinglePartition(a, alignment.DNA, "all")}, nil
}

// ReadPhylipFile parses a PHYLIP file from disk.
func ReadPhylipFile(path string) (*Alignment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPhylip(f)
}

// ReadFasta parses a FASTA alignment (single DNA partition by default).
func ReadFasta(r io.Reader) (*Alignment, error) {
	a, err := alignment.ReadFasta(r)
	if err != nil {
		return nil, err
	}
	return &Alignment{raw: a, parts: alignment.SinglePartition(a, alignment.DNA, "all")}, nil
}

// NumTaxa returns the sequence count.
func (al *Alignment) NumTaxa() int { return al.raw.NumTaxa() }

// NumSites returns the column count.
func (al *Alignment) NumSites() int { return al.raw.NumSites() }

// NumPartitions returns the partition count of the current scheme.
func (al *Alignment) NumPartitions() int { return len(al.parts) }

// TaxonNames returns the taxon labels.
func (al *Alignment) TaxonNames() []string { return append([]string(nil), al.raw.Names...) }

// SetSinglePartition treats the whole alignment as one partition
// (an "unpartitioned analysis" in the paper's vocabulary).
func (al *Alignment) SetSinglePartition(t DataType) {
	al.parts = alignment.SinglePartition(al.raw, t, "all")
}

// SetUniformPartitions splits the alignment into consecutive partitions of
// partLen columns (the paper's p1000/p5000/p10000 schemes).
func (al *Alignment) SetUniformPartitions(t DataType, partLen int) error {
	parts, err := alignment.UniformPartitions(al.raw, t, partLen)
	if err != nil {
		return err
	}
	al.parts = parts
	return nil
}

// SetPartitionsFromReader parses a RAxML-style partition file
// ("DNA, gene0 = 1-1000" ...).
func (al *Alignment) SetPartitionsFromReader(r io.Reader) error {
	parts, err := alignment.ParsePartitionFile(r, al.raw.NumSites())
	if err != nil {
		return err
	}
	al.parts = parts
	return nil
}

// SetPartitionsFromFile parses a RAxML-style partition file from disk.
func (al *Alignment) SetPartitionsFromFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return al.SetPartitionsFromReader(f)
}

// CompressionStats compresses the alignment under the current partition
// scheme and reports the column and unique-pattern counts — the width of
// every parallel region — without building the rest of a Dataset (models,
// schedules, worker pool).
func (al *Alignment) CompressionStats() (sites, patterns int, err error) {
	d, err := alignment.Compress(al.raw, al.parts, alignment.CompressOptions{})
	if err != nil {
		return 0, 0, err
	}
	return d.TotalSites, d.TotalPatterns, nil
}

// WritePhylip serializes the alignment.
func (al *Alignment) WritePhylip(w io.Writer) error { return alignment.WritePhylip(w, al.raw) }

// WritePartitions serializes the partition scheme in RAxML format.
func (al *Alignment) WritePartitions(w io.Writer) error {
	return alignment.WritePartitionFile(w, al.parts)
}

// Options configures the legacy single-shot NewAnalysis constructor. It is
// the union of DatasetOptions and AnalysisOptions from before the
// Dataset/session split.
//
// Deprecated: build a Dataset with NewDataset and open sessions with
// Dataset.NewAnalysis; that amortizes the per-dataset setup across sessions
// and allows concurrent analyses.
type Options struct {
	// Threads is the worker count (default 1).
	Threads int
	// Strategy selects oldPAR or newPAR (default NewPar).
	Strategy Strategy
	// Schedule selects the pattern-to-worker assignment (default
	// ScheduleCyclic, the paper's distribution).
	Schedule ScheduleStrategy
	// PerPartitionBranchLengths estimates a separate branch length per
	// partition (the paper's hardest, most important case); false uses a
	// joint estimate across partitions.
	PerPartitionBranchLengths bool
	// GammaCategories is the discrete-Gamma category count (default 4).
	GammaCategories int
	// VirtualThreads runs the workers serially on a virtual clock instead
	// of real goroutines; numerics are identical and the recorded trace can
	// be priced on the paper's hardware platforms with PlatformSeconds.
	VirtualThreads bool
	// StartTreeNewick fixes the starting topology; empty generates a random
	// tree from Seed (the paper's "fixed input tree for reproducibility").
	StartTreeNewick string
	// Seed drives random-tree generation (default 1).
	Seed int64
}

// NewAnalysis builds a one-off Dataset and opens a single session over it;
// the session owns the dataset and Close releases both.
//
// Deprecated: use NewDataset and Dataset.NewAnalysis, which separate the
// immutable per-dataset setup from cheap per-session state and enable
// concurrent sessions, context cancellation, and progress streaming.
func NewAnalysis(al *Alignment, o Options) (*Analysis, error) {
	ds, err := NewDataset(al, DatasetOptions{
		Threads:         o.Threads,
		Schedule:        o.Schedule,
		GammaCategories: o.GammaCategories,
		VirtualThreads:  o.VirtualThreads,
	})
	if err != nil {
		return nil, err
	}
	an, err := ds.NewAnalysis(AnalysisOptions{
		Strategy:                  o.Strategy,
		PerPartitionBranchLengths: o.PerPartitionBranchLengths,
		StartTreeNewick:           o.StartTreeNewick,
		Seed:                      o.Seed,
	})
	if err != nil {
		ds.Close()
		return nil, err
	}
	an.ownsDataset = true
	return an, nil
}

// RobinsonFoulds computes the Robinson-Foulds topological distance between
// two Newick trees over the same taxon set (0 = identical topologies,
// maximum 2(n-3) for binary trees). Useful for comparing search results.
func RobinsonFoulds(newickA, newickB string, taxa []string) (int, error) {
	a, err := tree.ParseNewick(newickA, taxa, 1)
	if err != nil {
		return 0, err
	}
	b, err := tree.ParseNewick(newickB, taxa, 1)
	if err != nil {
		return 0, err
	}
	return tree.RobinsonFoulds(a, b)
}

// SimulateGrid generates one of the paper's 12 simulated DNA datasets
// (dTAXA_SITES with uniform partitions of partLen columns) at the given
// scale (1.0 = paper scale). The result carries the partition scheme.
func SimulateGrid(taxa, sites, partLen int, scale float64, seed int64) (*Alignment, error) {
	ds, err := seqsim.GridDataset(taxa, sites, partLen, scale, seed)
	if err != nil {
		return nil, err
	}
	return &Alignment{raw: ds.Alignment, parts: ds.Parts}, nil
}

// SimulateMixed generates a partitioned alignment mixing DNA and protein
// partitions of jittered lengths around partLen columns — the workload whose
// ~25x per-pattern cost spread separates the scheduling strategies (see
// ScheduleWeighted and ScheduleMeasured).
func SimulateMixed(taxa, dnaParts, aaParts, partLen int, scale float64, seed int64) (*Alignment, error) {
	ds, err := seqsim.MixedDataset(taxa, dnaParts, aaParts, partLen, scale, seed)
	if err != nil {
		return nil, err
	}
	return &Alignment{raw: ds.Alignment, parts: ds.Parts}, nil
}

// SimulateRealWorld generates a shape-faithful stand-in for one of the
// paper's real-world alignments: "r26_21451", "r24_16916", or "r125_19839".
func SimulateRealWorld(name string, scale float64, seed int64) (*Alignment, error) {
	var spec seqsim.RealWorldSpec
	switch name {
	case seqsim.R26Spec.Name:
		spec = seqsim.R26Spec
	case seqsim.R24Spec.Name:
		spec = seqsim.R24Spec
	case seqsim.R125Spec.Name:
		spec = seqsim.R125Spec
	default:
		return nil, fmt.Errorf("phylo: unknown real-world dataset %q", name)
	}
	ds, err := seqsim.RealWorldDataset(spec, scale, seed)
	if err != nil {
		return nil, err
	}
	return &Alignment{raw: ds.Alignment, parts: ds.Parts}, nil
}
