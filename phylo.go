// Package phylo is a from-scratch Go implementation of the Phylogenetic
// Likelihood Kernel (PLK) with load-balanced fine-grained parallelism for
// partitioned phylogenomic analyses, reproducing Stamatakis & Ott, "Load
// Balance in the Phylogenetic Likelihood Kernel" (ICPP 2009).
//
// The package computes maximum-likelihood scores of unrooted binary
// phylogenies under GTR/Gamma models (DNA) and 20-state models (protein),
// optimizes model parameters (Brent) and branch lengths (Newton-Raphson),
// and runs SPR tree searches. Partitioned (multi-gene) datasets may use a
// separate model — and separate branch lengths — per partition; the iterative
// optimizers can run in the paper's two parallelization strategies:
//
//   - OldPar: partitions optimized one at a time (narrow parallel regions,
//     the load-balance problem the paper describes);
//   - NewPar: all partitions optimized simultaneously with per-partition
//     convergence tracking (the paper's solution).
//
// A typical session:
//
//	al, _ := phylo.ReadPhylipFile("data.phy")
//	al.SetUniformPartitions(phylo.DNA, 1000)
//	an, _ := phylo.NewAnalysis(al, phylo.Options{Threads: 8, Strategy: phylo.NewPar,
//	    PerPartitionBranchLengths: true})
//	defer an.Close()
//	lnl, _ := an.OptimizeModel()
//	res, _ := an.Search()
//	fmt.Println(res.LnL, an.TreeNewick())
package phylo

import (
	"errors"
	"fmt"
	"io"
	"os"

	"phylo/internal/alignment"
	"phylo/internal/core"
	"phylo/internal/model"
	"phylo/internal/opt"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/search"
	"phylo/internal/seqsim"
	"phylo/internal/tree"
)

// DataType selects the character alphabet of a partition.
type DataType = alignment.DataType

// Alphabets.
const (
	// DNA is 4-state nucleotide data.
	DNA = alignment.DNA
	// AA is 20-state protein data.
	AA = alignment.AA
)

// Strategy selects the parallelization of the iterative optimizers.
type Strategy = opt.Strategy

// Parallelization strategies (see the package comment).
const (
	// OldPar optimizes one partition at a time.
	OldPar = opt.OldPar
	// NewPar optimizes all partitions simultaneously (the paper's fix).
	NewPar = opt.NewPar
)

// ScheduleStrategy selects how alignment patterns are assigned to workers
// (see internal/schedule).
type ScheduleStrategy = schedule.Strategy

// Pattern-to-worker assignment strategies.
const (
	// ScheduleCyclic is the paper's distribution: pattern indices modulo the
	// worker count (the default).
	ScheduleCyclic = schedule.Cyclic
	// ScheduleBlock assigns each worker one contiguous slice of the global
	// pattern space (the ablation the paper argues against).
	ScheduleBlock = schedule.Block
	// ScheduleWeighted LPT-bin-packs patterns onto workers by per-pattern op
	// cost, balancing mixed DNA/protein datasets by cost rather than count.
	ScheduleWeighted = schedule.Weighted
)

// ParseScheduleStrategy resolves "cyclic", "block", or "weighted".
func ParseScheduleStrategy(name string) (ScheduleStrategy, error) { return schedule.Parse(name) }

// Alignment is a multiple sequence alignment plus its partition scheme.
type Alignment struct {
	raw   *alignment.Alignment
	parts []alignment.Partition
}

// ReadPhylip parses a (relaxed sequential or interleaved) PHYLIP alignment.
// The alignment starts with a single DNA partition; call a SetPartitions
// method to change that.
func ReadPhylip(r io.Reader) (*Alignment, error) {
	a, err := alignment.ReadPhylip(r)
	if err != nil {
		return nil, err
	}
	return &Alignment{raw: a, parts: alignment.SinglePartition(a, alignment.DNA, "all")}, nil
}

// ReadPhylipFile parses a PHYLIP file from disk.
func ReadPhylipFile(path string) (*Alignment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPhylip(f)
}

// ReadFasta parses a FASTA alignment (single DNA partition by default).
func ReadFasta(r io.Reader) (*Alignment, error) {
	a, err := alignment.ReadFasta(r)
	if err != nil {
		return nil, err
	}
	return &Alignment{raw: a, parts: alignment.SinglePartition(a, alignment.DNA, "all")}, nil
}

// NumTaxa returns the sequence count.
func (al *Alignment) NumTaxa() int { return al.raw.NumTaxa() }

// NumSites returns the column count.
func (al *Alignment) NumSites() int { return al.raw.NumSites() }

// NumPartitions returns the partition count of the current scheme.
func (al *Alignment) NumPartitions() int { return len(al.parts) }

// TaxonNames returns the taxon labels.
func (al *Alignment) TaxonNames() []string { return append([]string(nil), al.raw.Names...) }

// SetSinglePartition treats the whole alignment as one partition
// (an "unpartitioned analysis" in the paper's vocabulary).
func (al *Alignment) SetSinglePartition(t DataType) {
	al.parts = alignment.SinglePartition(al.raw, t, "all")
}

// SetUniformPartitions splits the alignment into consecutive partitions of
// partLen columns (the paper's p1000/p5000/p10000 schemes).
func (al *Alignment) SetUniformPartitions(t DataType, partLen int) error {
	parts, err := alignment.UniformPartitions(al.raw, t, partLen)
	if err != nil {
		return err
	}
	al.parts = parts
	return nil
}

// SetPartitionsFromReader parses a RAxML-style partition file
// ("DNA, gene0 = 1-1000" ...).
func (al *Alignment) SetPartitionsFromReader(r io.Reader) error {
	parts, err := alignment.ParsePartitionFile(r, al.raw.NumSites())
	if err != nil {
		return err
	}
	al.parts = parts
	return nil
}

// SetPartitionsFromFile parses a RAxML-style partition file from disk.
func (al *Alignment) SetPartitionsFromFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return al.SetPartitionsFromReader(f)
}

// WritePhylip serializes the alignment.
func (al *Alignment) WritePhylip(w io.Writer) error { return alignment.WritePhylip(w, al.raw) }

// WritePartitions serializes the partition scheme in RAxML format.
func (al *Alignment) WritePartitions(w io.Writer) error {
	return alignment.WritePartitionFile(w, al.parts)
}

// Options configures an Analysis.
type Options struct {
	// Threads is the worker count (default 1).
	Threads int
	// Strategy selects oldPAR or newPAR (default NewPar).
	Strategy Strategy
	// Schedule selects the pattern-to-worker assignment (default
	// ScheduleCyclic, the paper's distribution).
	Schedule ScheduleStrategy
	// PerPartitionBranchLengths estimates a separate branch length per
	// partition (the paper's hardest, most important case); false uses a
	// joint estimate across partitions.
	PerPartitionBranchLengths bool
	// GammaCategories is the discrete-Gamma category count (default 4).
	GammaCategories int
	// VirtualThreads runs the workers serially on a virtual clock instead
	// of real goroutines; numerics are identical and the recorded trace can
	// be priced on the paper's hardware platforms with PlatformSeconds.
	VirtualThreads bool
	// StartTreeNewick fixes the starting topology; empty generates a random
	// tree from Seed (the paper's "fixed input tree for reproducibility").
	StartTreeNewick string
	// Seed drives random-tree generation (default 1).
	Seed int64
}

// Analysis is a live likelihood engine over one dataset.
type Analysis struct {
	eng  *core.Engine
	exec parallel.Executor
	tr   *tree.Tree
	opts Options
}

// NewAnalysis compresses the alignment, builds per-partition models (GTR
// with empirical frequencies for DNA, the fixed SYN20 matrix for protein),
// constructs the starting tree, and wires up the parallel runtime.
func NewAnalysis(al *Alignment, o Options) (*Analysis, error) {
	if al == nil {
		return nil, errors.New("phylo: nil alignment")
	}
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.GammaCategories <= 0 {
		o.GammaCategories = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	d, err := alignment.Compress(al.raw, al.parts, alignment.CompressOptions{})
	if err != nil {
		return nil, err
	}
	models := make([]*model.Model, len(d.Parts))
	for i, p := range d.Parts {
		m, err := model.DefaultFor(p, o.GammaCategories, 1.0)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	zSlots := 1
	if o.PerPartitionBranchLengths && len(d.Parts) > 1 {
		zSlots = len(d.Parts)
	}
	var tr *tree.Tree
	if o.StartTreeNewick != "" {
		tr, err = tree.ParseNewick(o.StartTreeNewick, al.raw.Names, zSlots)
	} else {
		tr, err = tree.Random(al.raw.Names, zSlots, tree.RandomOptions{Seed: o.Seed})
	}
	if err != nil {
		return nil, err
	}
	var exec parallel.Executor
	if o.VirtualThreads {
		exec, err = parallel.NewSim(o.Threads)
	} else if o.Threads == 1 {
		exec = parallel.NewSequential()
	} else {
		exec, err = parallel.NewPool(o.Threads)
	}
	if err != nil {
		return nil, err
	}
	eng, err := core.New(d, tr, models, exec, core.Options{Specialize: true, Schedule: o.Schedule})
	if err != nil {
		exec.Close()
		return nil, err
	}
	return &Analysis{eng: eng, exec: exec, tr: tr, opts: o}, nil
}

// Close releases the worker pool. The analysis must not be used afterwards.
func (an *Analysis) Close() { an.exec.Close() }

// LogLikelihood evaluates the current tree and model.
func (an *Analysis) LogLikelihood() float64 { return an.eng.LogLikelihood() }

// PartitionLogLikelihoods returns the total and per-partition scores.
func (an *Analysis) PartitionLogLikelihoods() (float64, []float64) {
	return an.eng.PartitionLogLikelihoods()
}

// OptimizeModel optimizes branch lengths, alpha shape parameters, and GTR
// rates on the fixed current topology (the paper's "model parameter
// optimization" phase) and returns the final log likelihood.
func (an *Analysis) OptimizeModel() (float64, error) {
	o := opt.New(an.eng, opt.DefaultConfig(an.opts.Strategy))
	lnl, _ := o.OptimizeModel()
	return lnl, core.CheckFinite(lnl)
}

// OptimizeBranchLengths runs branch-length smoothing only.
func (an *Analysis) OptimizeBranchLengths() (float64, error) {
	o := opt.New(an.eng, opt.DefaultConfig(an.opts.Strategy))
	lnl := o.SmoothAll()
	return lnl, core.CheckFinite(lnl)
}

// SearchResult reports an SPR search.
type SearchResult struct {
	LnL          float64
	Rounds       int
	MovesApplied int
	MovesTried   int
}

// SearchOptions tunes Search; zero values select defaults.
type SearchOptions struct {
	MaxRounds int
	Radius    int
}

// Search runs the SPR maximum-likelihood tree search.
func (an *Analysis) Search() (SearchResult, error) { return an.SearchWith(SearchOptions{}) }

// SearchWith runs the SPR search with explicit settings.
func (an *Analysis) SearchWith(so SearchOptions) (SearchResult, error) {
	cfg := search.DefaultConfig(an.opts.Strategy)
	if so.MaxRounds > 0 {
		cfg.MaxRounds = so.MaxRounds
	}
	if so.Radius > 0 {
		cfg.Radius = so.Radius
	}
	res := search.New(an.eng, cfg).Run()
	out := SearchResult{LnL: res.LnL, Rounds: res.Rounds, MovesApplied: res.MovesApplied, MovesTried: res.MovesTried}
	return out, core.CheckFinite(res.LnL)
}

// TreeNewick serializes the current tree with partition k's branch lengths.
func (an *Analysis) TreeNewick() string { return tree.WriteNewick(an.tr, 0) }

// Alpha returns the optimized Gamma shape parameter of a partition.
func (an *Analysis) Alpha(partition int) (float64, error) {
	if partition < 0 || partition >= an.eng.NumPartitions() {
		return 0, fmt.Errorf("phylo: partition %d out of range", partition)
	}
	return an.eng.Models[partition].Alpha, nil
}

// SyncStats summarizes the parallel runtime behaviour of everything executed
// so far: the synchronization (region/barrier) count and the load imbalance
// of the critical path — the quantities the paper's analysis is about.
type SyncStats struct {
	Regions     int64
	CriticalOps float64
	TotalOps    float64
	Imbalance   float64
	// WorkerImbalance is the max/avg ratio of cumulative per-worker op totals
	// across the whole run — the direct measure of how well the schedule's
	// pattern assignment balanced the work.
	WorkerImbalance float64
}

// Stats returns the accumulated parallel runtime statistics.
func (an *Analysis) Stats() SyncStats {
	s := an.exec.Stats()
	return SyncStats{
		Regions:         s.Regions,
		CriticalOps:     s.CriticalOps,
		TotalOps:        s.TotalOps,
		Imbalance:       s.Imbalance(an.exec.Threads()),
		WorkerImbalance: s.WorkerImbalance(),
	}
}

// PlatformSeconds prices the recorded execution trace on one of the paper's
// four platforms ("Nehalem", "Clovertown", "Barcelona", "x4600") at the
// analysis' thread count. Most meaningful with VirtualThreads enabled.
func (an *Analysis) PlatformSeconds(platform string) (float64, error) {
	p, err := parallel.PlatformByName(platform)
	if err != nil {
		return 0, err
	}
	return p.EvalSeconds(an.exec.Stats(), an.exec.Threads()), nil
}

// RobinsonFoulds computes the Robinson-Foulds topological distance between
// two Newick trees over the same taxon set (0 = identical topologies,
// maximum 2(n-3) for binary trees). Useful for comparing search results.
func RobinsonFoulds(newickA, newickB string, taxa []string) (int, error) {
	a, err := tree.ParseNewick(newickA, taxa, 1)
	if err != nil {
		return 0, err
	}
	b, err := tree.ParseNewick(newickB, taxa, 1)
	if err != nil {
		return 0, err
	}
	return tree.RobinsonFoulds(a, b)
}

// SimulateGrid generates one of the paper's 12 simulated DNA datasets
// (dTAXA_SITES with uniform partitions of partLen columns) at the given
// scale (1.0 = paper scale). The result carries the partition scheme.
func SimulateGrid(taxa, sites, partLen int, scale float64, seed int64) (*Alignment, error) {
	ds, err := seqsim.GridDataset(taxa, sites, partLen, scale, seed)
	if err != nil {
		return nil, err
	}
	return &Alignment{raw: ds.Alignment, parts: ds.Parts}, nil
}

// SimulateRealWorld generates a shape-faithful stand-in for one of the
// paper's real-world alignments: "r26_21451", "r24_16916", or "r125_19839".
func SimulateRealWorld(name string, scale float64, seed int64) (*Alignment, error) {
	var spec seqsim.RealWorldSpec
	switch name {
	case seqsim.R26Spec.Name:
		spec = seqsim.R26Spec
	case seqsim.R24Spec.Name:
		spec = seqsim.R24Spec
	case seqsim.R125Spec.Name:
		spec = seqsim.R125Spec
	default:
		return nil, fmt.Errorf("phylo: unknown real-world dataset %q", name)
	}
	ds, err := seqsim.RealWorldDataset(spec, scale, seed)
	if err != nil {
		return nil, err
	}
	return &Alignment{raw: ds.Alignment, parts: ds.Parts}, nil
}
