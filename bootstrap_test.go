package phylo

import (
	"context"
	"math"
	"strings"
	"testing"
)

// TestBootstrapEndToEnd runs the batched bootstrap through the public API and
// checks the whole result shape: R replicate scores and winners, support
// fractions in [0, 1] for every split of the ML tree, a support-annotated
// Newick that still parses, and a session left exactly as it was found.
func TestBootstrapEndToEnd(t *testing.T) {
	al, err := SimulateMixed(8, 2, 1, 200, 1.0, 17)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDataset(al, DatasetOptions{Threads: 2, Schedule: ScheduleWeighted})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	var events []ProgressEvent
	an, err := ds.NewAnalysis(AnalysisOptions{
		Seed:     5,
		Progress: func(ev ProgressEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	if _, err := an.OptimizeBranchLengths(context.Background()); err != nil {
		t.Fatal(err)
	}
	beforeTree := an.TreeNewick()
	beforeLnL := an.LogLikelihood()

	const R = 12
	res, err := an.Bootstrap(context.Background(), R, 99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicates != R || res.Seed != 99 {
		t.Fatalf("result header %+v", res)
	}
	// 8 taxa: the ML tree plus its 2(n-3) = 10 NNI neighbors.
	if res.Candidates != 11 {
		t.Fatalf("%d candidates, want 11", res.Candidates)
	}
	if len(res.ReplicateLnL) != R || len(res.ReplicateWinner) != R {
		t.Fatalf("replicate slices %d/%d, want %d", len(res.ReplicateLnL), len(res.ReplicateWinner), R)
	}
	for r := 0; r < R; r++ {
		if res.ReplicateLnL[r] >= 0 {
			t.Errorf("replicate %d lnL %v not negative", r, res.ReplicateLnL[r])
		}
		if res.ReplicateWinner[r] < 0 || res.ReplicateWinner[r] >= res.Candidates {
			t.Errorf("replicate %d winner %d out of range", r, res.ReplicateWinner[r])
		}
	}
	// 8-taxon unrooted tree: n-3 = 5 non-trivial splits, each with support in
	// [0, 1].
	if len(res.Support) != 5 {
		t.Fatalf("%d supported splits, want 5", len(res.Support))
	}
	for key, frac := range res.Support {
		if frac < 0 || frac > 1 {
			t.Errorf("split %q support %v outside [0,1]", key, frac)
		}
	}
	if !strings.HasSuffix(res.TreeNewick, ";") {
		t.Fatalf("annotated newick malformed: %q", res.TreeNewick)
	}
	// Progress streamed one bootstrap event per candidate.
	boot := 0
	for _, ev := range events {
		if ev.Phase == PhaseBootstrap {
			boot++
		}
	}
	if boot != res.Candidates {
		t.Errorf("%d bootstrap progress events, want %d", boot, res.Candidates)
	}

	// The session is restored: same tree, bit-identical likelihood, and a
	// follow-up bootstrap with the same seed reproduces the result exactly.
	if after := an.TreeNewick(); after != beforeTree {
		t.Errorf("bootstrap changed the session tree:\n before %s\n after  %s", beforeTree, after)
	}
	if after := an.LogLikelihood(); after != beforeLnL {
		t.Errorf("bootstrap changed the session likelihood: %v -> %v", beforeLnL, after)
	}
	again, err := an.Bootstrap(context.Background(), R, 99)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < R; r++ {
		if again.ReplicateLnL[r] != res.ReplicateLnL[r] || again.ReplicateWinner[r] != res.ReplicateWinner[r] {
			t.Fatalf("replicate %d not reproducible: (%v,%d) vs (%v,%d)", r,
				res.ReplicateLnL[r], res.ReplicateWinner[r], again.ReplicateLnL[r], again.ReplicateWinner[r])
		}
	}
}

// TestBootstrapReplicatesAcrossWidths pins the fleet-growth contract at the
// facade: replicate r's *weight vector* is a pure function of (dataset, seed,
// r), independent of R. Scores are not bit-equal across widths — the
// shared-branch-length mode smooths against the aggregate of all R lanes, so
// branch lengths carry O(1/sqrt(R)) sampling noise — but with the same
// underlying weights the R=4 and R=10 runs must agree tightly, while a
// different seed must move the scores by orders of magnitude more.
func TestBootstrapReplicatesAcrossWidths(t *testing.T) {
	al, err := SimulateMixed(7, 1, 1, 150, 1.0, 23)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDataset(al, DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	an, err := ds.NewAnalysis(AnalysisOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	narrow, err := an.Bootstrap(context.Background(), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := an.Bootstrap(context.Background(), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	other, err := an.Bootstrap(context.Background(), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	seedGap := 0.0
	for r := 0; r < 4; r++ {
		widthGap := math.Abs(narrow.ReplicateLnL[r] - wide.ReplicateLnL[r])
		if widthGap > 1e-4*math.Abs(narrow.ReplicateLnL[r]) {
			t.Fatalf("replicate %d: width changed the score too much: %v vs %v", r, narrow.ReplicateLnL[r], wide.ReplicateLnL[r])
		}
		seedGap = math.Max(seedGap, math.Abs(narrow.ReplicateLnL[r]-other.ReplicateLnL[r]))
	}
	if seedGap < 1e-3 {
		t.Fatalf("different seeds produced near-identical replicate scores (max gap %v)", seedGap)
	}
}

// TestBootstrapValidation covers the error paths: bad replicate count,
// cancelled context, closed session.
func TestBootstrapValidation(t *testing.T) {
	al, err := SimulateMixed(6, 1, 1, 100, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDataset(al, DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	an, err := ds.NewAnalysis(AnalysisOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Bootstrap(context.Background(), 0, 1); err == nil {
		t.Error("replicates=0 accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := an.Bootstrap(ctx, 3, 1); err == nil {
		t.Error("cancelled context not reported")
	}
	// The cancelled run still restored the session.
	if lnl := an.LogLikelihood(); lnl >= 0 {
		t.Errorf("session unusable after cancelled bootstrap: lnL %v", lnl)
	}
	an.Close()
	if _, err := an.Bootstrap(context.Background(), 3, 1); err == nil {
		t.Error("closed session accepted")
	}
}
