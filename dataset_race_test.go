package phylo

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestDatasetCloseRacesSessions hammers Dataset.Close against concurrent
// session traffic — NewAnalysis, LogLikelihood, OptimizeModel, Rebalance —
// and checks the documented contract under the race detector: every call
// either succeeds normally or fails with ErrDatasetClosed/ErrAnalysisClosed;
// nothing panics, deadlocks, or returns a garbage error. This is the serving
// daemon's eviction path in miniature: the cache closes a dataset while
// late requests may still be opening sessions on it.
func TestDatasetCloseRacesSessions(t *testing.T) {
	for iter := 0; iter < 8; iter++ {
		al, err := SimulateGrid(8, 128, 128, 1.0, int64(iter+1))
		if err != nil {
			t.Fatal(err)
		}
		ds, err := NewDataset(al, DatasetOptions{Threads: 2, Schedule: ScheduleMeasured})
		if err != nil {
			t.Fatal(err)
		}

		start := make(chan struct{})
		var wg sync.WaitGroup
		check := func(err error) {
			if err != nil && !errors.Is(err, ErrDatasetClosed) && !errors.Is(err, ErrAnalysisClosed) {
				t.Errorf("unexpected error under Close race: %v", err)
			}
		}

		// Session goroutines: open, evaluate, rebalance, optimize, close.
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				an, err := ds.NewAnalysis(AnalysisOptions{Seed: int64(g + 1)})
				if err != nil {
					check(err)
					return
				}
				defer an.Close()
				// LogLikelihood reports failure as NaN (the dataset may close
				// mid-flight); any finite value must be a real score.
				if lnl := an.LogLikelihood(); !math.IsNaN(lnl) && lnl >= 0 {
					t.Errorf("garbage lnL %v", lnl)
				}
				_, err = an.Rebalance()
				check(err)
				_, err = an.OptimizeModel(context.Background())
				check(err)
			}(g)
		}

		// The closer: fires while the sessions are mid-flight. Close reports
		// still-open sessions as a documented diagnostic; anything else it
		// returns would be a bug.
		checkClose := func(err error) {
			if err != nil && !strings.Contains(err.Error(), "session(s) still open") {
				t.Errorf("unexpected Close error: %v", err)
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			checkClose(ds.Close())
		}()

		close(start)
		wg.Wait()
		checkClose(ds.Close()) // idempotent
	}
}
