package phylo

import (
	"context"
	"math"
	"testing"
)

// TestStealFacadeBitIdentityAndStats drives the work-stealing execution
// model end to end through the public API: a steal-enabled Dataset must
// produce exactly the likelihood of an identically configured steal-enabled
// dataset whose chunk size differs (chunking never changes which patterns
// exist, only the reduction grouping per chunk — so identical MinChunk runs
// are bitwise equal and different MinChunk runs agree to reassociation
// tolerance), steal activity must surface through SyncStats and
// ProgressEvent, and a non-steal dataset must report zero steal counters.
func TestStealFacadeBitIdentityAndStats(t *testing.T) {
	al, err := SimulateMixed(10, 3, 1, 400, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	run := func(steal bool, minChunk int) (float64, SyncStats, []ProgressEvent) {
		ds, err := NewDataset(al, DatasetOptions{Threads: 3, Schedule: ScheduleWeighted, Steal: steal})
		if err != nil {
			t.Fatal(err)
		}
		defer ds.Close()
		var events []ProgressEvent
		an, err := ds.NewAnalysis(AnalysisOptions{
			Strategy: NewPar,
			Seed:     5,
			MinChunk: minChunk,
			Progress: func(ev ProgressEvent) { events = append(events, ev) },
		})
		if err != nil {
			t.Fatal(err)
		}
		defer an.Close()
		lnl, err := an.OptimizeBranchLengths(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return lnl, an.Stats(), events
	}

	lnlSteal, stSteal, _ := run(true, 16)
	lnlSteal2, stSteal2, _ := run(true, 16)
	if lnlSteal != lnlSteal2 {
		t.Errorf("identical steal runs differ: %v != %v (stealing must not leak into results)", lnlSteal, lnlSteal2)
	}
	lnlCoarse, _, _ := run(true, 256)
	if diff := math.Abs(lnlCoarse - lnlSteal); diff > 1e-9*math.Abs(lnlSteal) {
		t.Errorf("MinChunk 256 lnL %v vs 16 %v (diff %v)", lnlCoarse, lnlSteal, diff)
	}
	lnlPlain, stPlain, _ := run(false, 0)
	if diff := math.Abs(lnlPlain - lnlSteal); diff > 1e-9*math.Abs(lnlPlain) {
		t.Errorf("steal lnL %v vs plain %v (diff %v)", lnlSteal, lnlPlain, diff)
	}
	if stPlain.StealCount != 0 || stPlain.StolenPatterns != 0 {
		t.Errorf("non-steal dataset reported steal activity: %+v", stPlain)
	}
	if len(stSteal.WorkerSteals) == 0 && stSteal.StealCount > 0 {
		t.Errorf("steal counters present but per-worker distribution empty: %+v", stSteal)
	}
	// Steal totals must be consistent between the two identical runs' stats
	// shapes (activity itself is scheduling-dependent, so only invariants are
	// checked: totals equal the per-worker sums).
	for _, st := range []SyncStats{stSteal, stSteal2} {
		sum := 0.0
		for _, v := range st.WorkerSteals {
			sum += v
		}
		if math.Abs(sum-st.StealCount) > 1e-9 {
			t.Errorf("per-worker steals %v do not sum to total %v", sum, st.StealCount)
		}
	}
}

// TestStealProgressEventsCarryCounters checks the ProgressEvent plumbing on
// a steal-enabled adaptive session: events stream with monotone steal
// counters and the session still rebalances.
func TestStealProgressEventsCarryCounters(t *testing.T) {
	al, err := SimulateMixed(8, 2, 1, 300, 1.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDataset(al, DatasetOptions{Threads: 3, Schedule: ScheduleMeasured, Steal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	var events []ProgressEvent
	an, err := ds.NewAnalysis(AnalysisOptions{
		Seed:               3,
		RebalanceThreshold: 1.0001,
		Progress:           func(ev ProgressEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	if _, err := an.OptimizeModel(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	prev := -1.0
	for _, ev := range events {
		if ev.StealCount < prev {
			t.Errorf("steal counter regressed: %v after %v", ev.StealCount, prev)
		}
		prev = ev.StealCount
		if ev.StolenPatterns < 0 {
			t.Errorf("negative stolen patterns: %v", ev.StolenPatterns)
		}
	}
}
