package server

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	const n = 8
	gate := make(chan struct{})
	var runs int
	var mu sync.Mutex

	fn := func() (any, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		<-gate
		return "result", nil
	}

	var wg sync.WaitGroup
	results := make([]any, n)
	coalesced := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], coalesced[i], _ = g.Do("k", fn)
		}(i)
	}
	// Deterministic: wait until all n-1 duplicates are parked, then release.
	deadline := time.Now().Add(5 * time.Second)
	for g.Waiting("k") < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters joined", g.Waiting("k"))
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if runs != 1 {
		t.Fatalf("fn ran %d times, want 1", runs)
	}
	nCoal := 0
	for i := range results {
		if results[i] != "result" {
			t.Fatalf("result[%d] = %v", i, results[i])
		}
		if coalesced[i] {
			nCoal++
		}
	}
	if nCoal != n-1 {
		t.Fatalf("coalesced = %d, want %d", nCoal, n-1)
	}
	p, c := g.Counters()
	if p != 1 || c != n-1 {
		t.Fatalf("counters = (%d, %d), want (1, %d)", p, c, n-1)
	}
}

func TestFlightGroupSequentialRunsFresh(t *testing.T) {
	var g flightGroup
	runs := 0
	fn := func() (any, error) { runs++; return runs, nil }
	v1, co1, _ := g.Do("k", fn)
	v2, co2, _ := g.Do("k", fn)
	if co1 || co2 {
		t.Fatal("sequential calls must not coalesce")
	}
	if v1 != 1 || v2 != 2 {
		t.Fatalf("got %v, %v", v1, v2)
	}
}

func TestFlightGroupErrorSharedThenForgotten(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = g.Do("k", func() (any, error) { <-gate; return nil, boom })
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Waiting("k") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("errs[%d] = %v", i, err)
		}
	}
	// The key is forgotten: a fresh call runs and can succeed.
	if v, co, err := g.Do("k", func() (any, error) { return 42, nil }); v != 42 || co || err != nil {
		t.Fatalf("retry = (%v, %v, %v)", v, co, err)
	}
	if g.Waiting("k") != 0 {
		t.Fatal("stale flight retained")
	}
}

func TestFlightGroupDistinctKeysIndependent(t *testing.T) {
	var g flightGroup
	a, coA, _ := g.Do("a", func() (any, error) { return "a", nil })
	b, coB, _ := g.Do("b", func() (any, error) { return "b", nil })
	if coA || coB || a != "a" || b != "b" {
		t.Fatalf("got (%v,%v) (%v,%v)", a, coA, b, coB)
	}
	p, c := g.Counters()
	if p != 2 || c != 0 {
		t.Fatalf("counters = (%d,%d)", p, c)
	}
}
