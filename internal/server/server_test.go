package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"phylo"
)

// tinyPhylip renders a small simulated alignment as PHYLIP text.
func tinyPhylip(t *testing.T, taxa, sites int, seed int64) string {
	t.Helper()
	al, err := phylo.SimulateGrid(taxa, sites, sites, 1.0, seed)
	if err != nil {
		t.Fatalf("SimulateGrid: %v", err)
	}
	var buf bytes.Buffer
	if err := al.WritePhylip(&buf); err != nil {
		t.Fatalf("WritePhylip: %v", err)
	}
	return buf.String()
}

// testServer stands up a Server over httptest.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, hs
}

// doJSON posts v and decodes the response into out, returning the status.
func doJSON(t *testing.T, method, url string, v any, out any, hdr map[string]string) int {
	t.Helper()
	var body io.Reader
	if v != nil {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, val := range hdr {
		req.Header.Set(k, val)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s %s: %v (%s)", method, url, err, data)
		}
	}
	return resp.StatusCode
}

// submit uploads a tiny alignment and returns its dataset handle.
func submit(t *testing.T, base, phy string) string {
	t.Helper()
	var sr submitResponse
	code := doJSON(t, "POST", base+"/v1/datasets", submitRequest{Phylip: phy}, &sr, nil)
	if code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	if sr.ID == "" || sr.MemoryBytes <= 0 {
		t.Fatalf("submit response: %+v", sr)
	}
	return sr.ID
}

func TestSubmitEvaluateRoundTrip(t *testing.T) {
	_, hs := testServer(t, Config{Threads: 2, TenantInflight: 4})
	phy := tinyPhylip(t, 8, 128, 1)
	id := submit(t, hs.URL, phy)

	// Same alignment again: digest hit, no rebuild.
	var sr submitResponse
	doJSON(t, "POST", hs.URL+"/v1/datasets", submitRequest{Phylip: phy}, &sr, nil)
	if sr.ID != id || !sr.Cached {
		t.Fatalf("resubmit: %+v", sr)
	}

	var er evaluateResponse
	code := doJSON(t, "POST", hs.URL+"/v1/evaluate", evaluateRequest{Dataset: id, Seed: 42}, &er, nil)
	if code != http.StatusOK {
		t.Fatalf("evaluate: HTTP %d", code)
	}
	if er.LnL >= 0 || er.LnLBits == "" || er.Regions == 0 {
		t.Fatalf("evaluate response: %+v", er)
	}

	// Deterministic: the same request scores bit-identically.
	var er2 evaluateResponse
	doJSON(t, "POST", hs.URL+"/v1/evaluate", evaluateRequest{Dataset: id, Seed: 42}, &er2, nil)
	if er2.LnLBits != er.LnLBits {
		t.Fatalf("lnl bits differ: %s vs %s", er.LnLBits, er2.LnLBits)
	}

	// Unknown handle: 404.
	if code := doJSON(t, "POST", hs.URL+"/v1/evaluate", evaluateRequest{Dataset: "ds_nope"}, nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown dataset: HTTP %d", code)
	}
}

// TestEvaluateCoalescing is the tentpole acceptance test: N identical
// concurrent evaluates produce exactly ONE kernel execution, N-1 coalesced
// responses, and bit-identical lnL across all of them.
func TestEvaluateCoalescing(t *testing.T) {
	s, hs := testServer(t, Config{Threads: 2, TenantInflight: 16, TenantQueue: 32})
	id := submit(t, hs.URL, tinyPhylip(t, 8, 128, 1))

	const n = 6
	req := evaluateRequest{Dataset: id, Seed: 7}
	key := req.key()

	// Park the primary computation inside the single-flight until all n-1
	// duplicates have joined it — the hook runs before the kernel.
	gate := make(chan struct{})
	s.testHookEvaluate = func(k string) {
		if k == key {
			<-gate
		}
	}
	base := s.KernelRuns()

	var wg sync.WaitGroup
	resps := make([]evaluateResponse, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = doJSON(t, "POST", hs.URL+"/v1/evaluate", req, &resps[i], nil)
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.flights.Waiting(key) < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d duplicates joined the flight", s.flights.Waiting(key))
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := s.KernelRuns() - base; got != 1 {
		t.Fatalf("kernel executions = %d, want exactly 1", got)
	}
	nCoal := 0
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: HTTP %d", i, codes[i])
		}
		if resps[i].LnLBits != resps[0].LnLBits {
			t.Fatalf("lnl bits diverge: %s vs %s", resps[i].LnLBits, resps[0].LnLBits)
		}
		if resps[i].Coalesced {
			nCoal++
		}
	}
	if nCoal != n-1 {
		t.Fatalf("coalesced responses = %d, want %d", nCoal, n-1)
	}
}

// TestAdmissionFairnessOverHTTP floods tenant A past its quota+queue and
// shows (a) A's in-flight peak never exceeds the quota, (b) A's overflow is
// rejected with 429, (c) tenant B's single request completes while A's
// backlog is still parked.
func TestAdmissionFairnessOverHTTP(t *testing.T) {
	s, hs := testServer(t, Config{Threads: 1, TenantInflight: 1, TenantQueue: 2})
	id := submit(t, hs.URL, tinyPhylip(t, 8, 128, 1))

	// Block tenant A's primary evaluate inside the kernel section so its
	// quota stays occupied. Distinct seeds keep the requests un-coalesced.
	gate := make(chan struct{})
	var once sync.Once
	s.testHookEvaluate = func(k string) {
		if strings.Contains(k, "|100|") { // seed 100: the blocker
			<-gate
		}
	}
	defer once.Do(func() { close(gate) })

	tenantA := map[string]string{"X-Tenant": "greedy"}
	blocked := make(chan int, 1)
	go func() {
		blocked <- doJSON(t, "POST", hs.URL+"/v1/evaluate", evaluateRequest{Dataset: id, Seed: 100}, nil, tenantA)
	}()
	// Wait until A's slot is held.
	waitFor(t, func() bool { return s.adm.Peak("greedy") >= 1 })

	// Fill A's queue (2 parked), then overflow -> 429.
	parked := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(seed int64) {
			parked <- doJSON(t, "POST", hs.URL+"/v1/evaluate", evaluateRequest{Dataset: id, Seed: seed}, nil, tenantA)
		}(int64(200 + i))
	}
	waitFor(t, func() bool {
		s.adm.mu.Lock()
		defer s.adm.mu.Unlock()
		ts := s.adm.tenants["greedy"]
		return ts != nil && len(ts.waiters) == 2
	})
	if code := doJSON(t, "POST", hs.URL+"/v1/evaluate", evaluateRequest{Dataset: id, Seed: 300}, nil, tenantA); code != http.StatusTooManyRequests {
		t.Fatalf("overflow: HTTP %d, want 429", code)
	}

	// Tenant B sails through while A's backlog is parked.
	var er evaluateResponse
	code := doJSON(t, "POST", hs.URL+"/v1/evaluate", evaluateRequest{Dataset: id, Seed: 1}, &er, map[string]string{"X-Tenant": "modest"})
	if code != http.StatusOK {
		t.Fatalf("modest tenant: HTTP %d", code)
	}

	once.Do(func() { close(gate) })
	if code := <-blocked; code != http.StatusOK {
		t.Fatalf("blocked evaluate: HTTP %d", code)
	}
	for i := 0; i < 2; i++ {
		if code := <-parked; code != http.StatusOK {
			t.Fatalf("parked evaluate %d: HTTP %d", i, code)
		}
	}
	if p := s.adm.Peak("greedy"); p > 1 {
		t.Fatalf("greedy in-flight peak = %d, quota 1", p)
	}
}

// TestAnalysisLifecycleAndSSE runs a model optimization end to end and
// asserts the SSE stream delivers progress frames and a terminal done frame.
func TestAnalysisLifecycleAndSSE(t *testing.T) {
	_, hs := testServer(t, Config{Threads: 2, TenantInflight: 4})
	id := submit(t, hs.URL, tinyPhylip(t, 8, 256, 1))

	var st analysisStatus
	code := doJSON(t, "POST", hs.URL+"/v1/analyses", analysisRequest{Dataset: id, Mode: "modelopt", Seed: 3}, &st, nil)
	if code != http.StatusAccepted || st.ID == "" {
		t.Fatalf("start: HTTP %d %+v", code, st)
	}

	// Attach the event stream (replay makes attach order irrelevant).
	resp, err := http.Get(hs.URL + "/v1/analyses/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	progress, done := 0, false
	var final analysisStatus
	sc := bufio.NewScanner(resp.Body)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			switch event {
			case "progress":
				var e Event
				if err := json.Unmarshal([]byte(data), &e); err != nil {
					t.Fatalf("progress frame: %v (%s)", err, data)
				}
				if e.Ev.Round < 1 || e.Ev.LnL >= 0 {
					t.Fatalf("bad progress event: %+v", e)
				}
				progress++
			case "done":
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("done frame: %v (%s)", err, data)
				}
				done = true
			}
			event, data = "", ""
		}
		if done {
			break
		}
	}
	if progress == 0 {
		t.Fatal("no progress frames streamed")
	}
	if !done {
		t.Fatal("no terminal done frame")
	}
	if final.State != jobDone || final.LnL >= 0 {
		t.Fatalf("final status: %+v", final)
	}

	// The status endpoint agrees.
	var got analysisStatus
	if code := doJSON(t, "GET", hs.URL+"/v1/analyses/"+st.ID, nil, &got, nil); code != http.StatusOK {
		t.Fatalf("status: HTTP %d", code)
	}
	if got.State != jobDone || got.LnL != final.LnL || got.Tree == "" {
		t.Fatalf("status disagrees with SSE: %+v vs %+v", got, final)
	}
}

func TestAnalysisCancel(t *testing.T) {
	_, hs := testServer(t, Config{Threads: 1, TenantInflight: 4})
	id := submit(t, hs.URL, tinyPhylip(t, 12, 512, 2))

	var st analysisStatus
	doJSON(t, "POST", hs.URL+"/v1/analyses", analysisRequest{Dataset: id, Mode: "search", MaxRounds: 50}, &st, nil)
	// Cancel immediately; the job stops at a region boundary.
	doJSON(t, "POST", hs.URL+"/v1/analyses/"+st.ID+"/cancel", nil, nil, nil)

	waitFor(t, func() bool {
		var cur analysisStatus
		doJSON(t, "GET", hs.URL+"/v1/analyses/"+st.ID, nil, &cur, nil)
		return cur.State == jobCancelled || cur.State == jobDone
	})
}

// TestDrain exercises graceful shutdown: an in-flight analysis completes,
// new work is refused with 503, queued admissions wake with 503, and
// healthz reports draining.
func TestDrain(t *testing.T) {
	s, hs := testServer(t, Config{Threads: 2, TenantInflight: 1, TenantQueue: 4})
	id := submit(t, hs.URL, tinyPhylip(t, 8, 256, 1))

	// Hold the tenant's slot with a parked evaluate so a queued analysis is
	// waiting in admission when the drain starts.
	gate := make(chan struct{})
	var once sync.Once
	s.testHookEvaluate = func(k string) { <-gate }
	defer once.Do(func() { close(gate) })
	evalDone := make(chan int, 1)
	go func() {
		evalDone <- doJSON(t, "POST", hs.URL+"/v1/evaluate", evaluateRequest{Dataset: id, Seed: 11}, nil, nil)
	}()
	waitFor(t, func() bool { return s.adm.Peak("default") >= 1 })

	var queued analysisStatus
	doJSON(t, "POST", hs.URL+"/v1/analyses", analysisRequest{Dataset: id, Seed: 5}, &queued, nil)
	waitFor(t, func() bool {
		s.adm.mu.Lock()
		defer s.adm.mu.Unlock()
		ts := s.adm.tenants["default"]
		return ts != nil && len(ts.waiters) == 1
	})

	// Drain in the background; it must wait for the in-flight evaluate.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, s.isDraining)

	// New work: 503. Healthz: 503.
	if code := doJSON(t, "POST", hs.URL+"/v1/evaluate", evaluateRequest{Dataset: id}, nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("evaluate during drain: HTTP %d, want 503", code)
	}
	if code := doJSON(t, "POST", hs.URL+"/v1/datasets", submitRequest{Phylip: "x"}, nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: HTTP %d, want 503", code)
	}
	if code := doJSON(t, "GET", hs.URL+"/v1/healthz", nil, nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: HTTP %d, want 503", code)
	}

	// The queued analysis wakes with ErrDraining -> cancelled, never ran.
	waitFor(t, func() bool {
		var cur analysisStatus
		doJSON(t, "GET", hs.URL+"/v1/analyses/"+queued.ID, nil, &cur, nil)
		return cur.State == jobCancelled
	})

	// Release the in-flight evaluate: it completes normally (200) and the
	// drain finishes without hitting its deadline.
	once.Do(func() { close(gate) })
	if code := <-evalDone; code != http.StatusOK {
		t.Fatalf("in-flight evaluate during drain: HTTP %d, want 200", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestStatsAndListEndpoints(t *testing.T) {
	_, hs := testServer(t, Config{Threads: 1, TenantInflight: 2})
	id := submit(t, hs.URL, tinyPhylip(t, 8, 128, 1))
	doJSON(t, "POST", hs.URL+"/v1/evaluate", evaluateRequest{Dataset: id}, nil, nil)

	var stats struct {
		Cache      CacheStats     `json:"cache"`
		Admission  AdmissionStats `json:"admission"`
		KernelRuns int64          `json:"kernel_runs"`
		Draining   bool           `json:"draining"`
	}
	if code := doJSON(t, "GET", hs.URL+"/v1/stats", nil, &stats, nil); code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", code)
	}
	if stats.Cache.Entries != 1 || stats.KernelRuns != 1 || stats.Admission.Admitted < 1 || stats.Draining {
		t.Fatalf("stats: %+v", stats)
	}

	var list struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	doJSON(t, "GET", hs.URL+"/v1/datasets", nil, &list, nil)
	if len(list.Datasets) != 1 || list.Datasets[0].ID != id {
		t.Fatalf("list: %+v", list)
	}

	// Delete it; a follow-up evaluate 404s.
	if code := doJSON(t, "DELETE", hs.URL+"/v1/datasets/"+id, nil, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: HTTP %d", code)
	}
	if code := doJSON(t, "POST", hs.URL+"/v1/evaluate", evaluateRequest{Dataset: id}, nil, nil); code != http.StatusNotFound {
		t.Fatalf("evaluate after delete: HTTP %d", code)
	}
}

func TestRawPhylipSubmission(t *testing.T) {
	_, hs := testServer(t, Config{Threads: 1, TenantInflight: 2})
	phy := tinyPhylip(t, 8, 128, 1)
	resp, err := http.Post(hs.URL+"/v1/datasets?data_type=dna", "text/plain", strings.NewReader(phy))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("raw submit: HTTP %d (%s)", resp.StatusCode, body)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Taxa != 8 || sr.MemoryBytes <= 0 {
		t.Fatalf("raw submit response: %+v", sr)
	}
	// JSON submission of the same text digests identically.
	var sr2 submitResponse
	doJSON(t, "POST", hs.URL+"/v1/datasets", submitRequest{Phylip: phy, DataType: "dna"}, &sr2, nil)
	if sr2.ID != sr.ID || !sr2.Cached {
		t.Fatalf("digest mismatch: %+v vs %+v", sr, sr2)
	}
}

func TestBadRequests(t *testing.T) {
	_, hs := testServer(t, Config{Threads: 1})
	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{"POST", "/v1/datasets", submitRequest{}, http.StatusBadRequest},
		{"POST", "/v1/datasets", submitRequest{Phylip: "not phylip"}, http.StatusBadRequest},
		{"POST", "/v1/evaluate", evaluateRequest{}, http.StatusBadRequest},
		{"POST", "/v1/analyses", analysisRequest{Dataset: "ds_x", Mode: "bogus"}, http.StatusBadRequest},
		{"GET", "/v1/analyses/an_999", nil, http.StatusBadRequest},
		{"DELETE", "/v1/datasets/ds_x", nil, http.StatusNotFound},
	}
	for _, c := range cases {
		if code := doJSON(t, c.method, hs.URL+c.path, c.body, nil, nil); code != c.want {
			t.Errorf("%s %s: HTTP %d, want %d", c.method, c.path, code, c.want)
		}
	}
}

// waitFor polls cond for up to 10 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
