package server

import (
	"fmt"
	"math"
	"net/http"

	"phylo"
)

// POST /v1/evaluate: the daemon's hot path. One evaluate opens a session on
// a cached dataset, fixes the tree (and optionally the Gamma shape), runs
// the likelihood kernel once, and returns the score. Identical concurrent
// requests coalesce onto one kernel run (the kernel is deterministic, so
// the shared answer is bit-identical to what each caller would have
// computed); admission control is applied per caller BEFORE coalescing, so
// even coalesced requests consume their tenant's quota while they wait —
// quota measures the tenant's demand on the service, not the kernel.

// evaluateRequest names one (dataset, model, tree) likelihood evaluation.
type evaluateRequest struct {
	// Dataset is the handle returned by POST /v1/datasets.
	Dataset string `json:"dataset"`
	// Tree is the topology in Newick; empty generates a random tree from
	// Seed, exactly as AnalysisOptions does.
	Tree string `json:"tree,omitempty"`
	// Seed drives random-tree generation when Tree is empty (default 1).
	Seed int64 `json:"seed,omitempty"`
	// PerPartitionBranchLengths selects the paper's per-partition
	// branch-length case.
	PerPartitionBranchLengths bool `json:"per_partition_branch_lengths,omitempty"`
	// Alpha, when > 0, overrides the Gamma shape on every partition — the
	// "model" coordinate of the request key.
	Alpha float64 `json:"alpha,omitempty"`
}

// key is the single-flight coalescing key: every field that influences the
// resulting likelihood, canonically encoded.
func (q evaluateRequest) key() string {
	return fmt.Sprintf("%s|%q|%d|%v|%x", q.Dataset, q.Tree, q.Seed,
		q.PerPartitionBranchLengths, math.Float64bits(q.Alpha))
}

// evaluateResponse reports one evaluation. LnLBits carries the exact IEEE
// bits of LnL in hex, so clients (and tests) can assert bit-identity
// without trusting JSON float round-tripping.
type evaluateResponse struct {
	Dataset   string  `json:"dataset"`
	LnL       float64 `json:"lnl"`
	LnLBits   string  `json:"lnl_bits"`
	Regions   int64   `json:"regions"`
	Coalesced bool    `json:"coalesced"`
}

// handleEvaluate implements POST /v1/evaluate.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if !s.beginWork() {
		writeError(w, ErrDraining)
		return
	}
	defer s.work.Done()

	var req evaluateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Dataset == "" {
		writeError(w, badRequestf("dataset handle required"))
		return
	}

	release, err := s.adm.Acquire(r.Context(), tenantOf(r))
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()

	key := req.key()
	v, coalesced, err := s.flights.Do(key, func() (any, error) {
		return s.runEvaluate(key, req)
	})
	if err != nil {
		writeError(w, err)
		return
	}
	resp := *v.(*evaluateResponse) // copy: Coalesced is per-caller
	resp.Coalesced = coalesced
	writeJSON(w, http.StatusOK, resp)
}

// runEvaluate is the single-flight computation: pin the dataset, open a
// session, score the tree.
func (s *Server) runEvaluate(key string, req evaluateRequest) (*evaluateResponse, error) {
	if hook := s.testHookEvaluate; hook != nil {
		hook(key)
	}
	handle, err := s.cache.Ref(req.Dataset)
	if err != nil {
		return nil, err
	}
	defer handle.Release()

	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	an, err := handle.Dataset().NewAnalysis(phylo.AnalysisOptions{
		StartTreeNewick:           req.Tree,
		Seed:                      seed,
		PerPartitionBranchLengths: req.PerPartitionBranchLengths,
	})
	if err != nil {
		return nil, badRequestf("opening session: %v", err)
	}
	defer an.Close()
	if req.Alpha > 0 {
		if err := an.SetAlpha(-1, req.Alpha); err != nil {
			return nil, badRequestf("alpha: %v", err)
		}
	}

	s.kernelRuns.Add(1)
	lnl := an.LogLikelihood()
	if math.IsNaN(lnl) {
		return nil, fmt.Errorf("likelihood evaluation failed (non-finite lnL)")
	}
	return &evaluateResponse{
		Dataset: req.Dataset,
		LnL:     lnl,
		LnLBits: fmt.Sprintf("%016x", math.Float64bits(lnl)),
		Regions: an.Stats().Regions,
	}, nil
}
