package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionQuotaBound(t *testing.T) {
	// quota 2, queue 64: fire 16 concurrent work items for one tenant and
	// prove the in-flight high-water mark never exceeds the quota.
	a := NewAdmission(2, 64)
	var wg sync.WaitGroup
	var concurrent, maxSeen atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.Acquire(context.Background(), "t")
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			cur := concurrent.Add(1)
			for {
				m := maxSeen.Load()
				if cur <= m || maxSeen.CompareAndSwap(m, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			concurrent.Add(-1)
			release()
			release() // idempotent
		}()
	}
	wg.Wait()
	if m := maxSeen.Load(); m > 2 {
		t.Fatalf("observed %d concurrent work items, quota 2", m)
	}
	if p := a.Peak("t"); p > 2 {
		t.Fatalf("Peak = %d, quota 2", p)
	}
	if st := a.Stats(); st.Admitted < 16 {
		t.Fatalf("admitted = %d, want >= 16", st.Admitted)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := NewAdmission(1, 1)
	r1, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	// One waiter parks.
	parked := make(chan struct{})
	go func() {
		close(parked)
		r, err := a.Acquire(context.Background(), "t")
		if err != nil {
			t.Errorf("parked Acquire: %v", err)
			return
		}
		r()
	}()
	<-parked
	waitForQueue(t, a, "t", 1)
	// Queue is full: the next request is rejected fast.
	if _, err := a.Acquire(context.Background(), "t"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st := a.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	r1()
}

// TestAdmissionTenantIsolation proves a greedy tenant cannot starve another:
// with tenant A saturating its quota and queue, tenant B admits immediately.
func TestAdmissionTenantIsolation(t *testing.T) {
	a := NewAdmission(1, 4)
	ra, err := a.Acquire(context.Background(), "greedy")
	if err != nil {
		t.Fatal(err)
	}
	defer ra()
	// Saturate greedy's queue.
	for i := 0; i < 4; i++ {
		go func() {
			if r, err := a.Acquire(context.Background(), "greedy"); err == nil {
				r()
			}
		}()
	}
	waitForQueue(t, a, "greedy", 4)
	if _, err := a.Acquire(context.Background(), "greedy"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("greedy overflow = %v, want ErrQueueFull", err)
	}

	// The other tenant is untouched.
	done := make(chan error, 1)
	go func() {
		r, err := a.Acquire(context.Background(), "modest")
		if err == nil {
			r()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("modest tenant: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("modest tenant starved behind greedy's backlog")
	}
	ra()
	// Let the queued greedy acquires drain (each releases immediately).
	waitForQueue(t, a, "greedy", 0)
}

func TestAdmissionCtxCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1, 4)
	r1, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, "t")
		errCh <- err
	}()
	waitForQueue(t, a, "t", 1)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	r1()
	// The slot must not have leaked: a fresh acquire succeeds immediately.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	r2, err := a.Acquire(ctx2, "t")
	if err != nil {
		t.Fatalf("slot leaked after cancel: %v", err)
	}
	r2()
}

func TestAdmissionDrain(t *testing.T) {
	a := NewAdmission(1, 4)
	r1, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := a.Acquire(context.Background(), "t")
		errCh <- err
	}()
	waitForQueue(t, a, "t", 1)
	a.SetDraining()
	// The parked waiter wakes with ErrDraining, without a slot.
	if err := <-errCh; !errors.Is(err, ErrDraining) {
		t.Fatalf("parked waiter err = %v, want ErrDraining", err)
	}
	// New acquires are rejected.
	if _, err := a.Acquire(context.Background(), "t"); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Acquire = %v, want ErrDraining", err)
	}
	// The in-flight item's release still balances the books.
	r1()
	if st := a.Stats(); st.Tenants != nil {
		t.Fatalf("in-flight after drain+release: %+v", st.Tenants)
	}
}

// waitForQueue polls until the tenant's parked-waiter count reaches want.
func waitForQueue(t *testing.T, a *Admission, tenant string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		a.mu.Lock()
		ts := a.tenants[tenant]
		n := 0
		if ts != nil {
			n = len(ts.waiters)
		}
		a.mu.Unlock()
		if n == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue for %q never reached %d", tenant, want)
}
