// Package server implements plkd, the likelihood-as-a-service daemon: an
// HTTP+JSON front door over the Dataset/Analysis facade. The paper's whole
// premise — an expensive kernel over large, immutable, amortizable shared
// state — is the shape of a model server, and the serving layer adds
// exactly the production concerns that shape implies:
//
//   - a ref-counted dataset cache keyed by alignment digest, priced by
//     Dataset.MemoryFootprint and evicted LRU against a byte budget, so
//     repeated (dataset, model) traffic pays the per-dataset setup once
//     (cache.go);
//   - per-tenant admission control over the mutex-serialized worker pool —
//     in-flight quotas plus a bounded queue returning 429 — so one greedy
//     tenant cannot starve the rest (admission.go);
//   - single-flight coalescing of identical evaluate requests, so duplicate
//     traffic pays for one kernel run and receives bit-identical responses
//     (coalesce.go);
//   - bounded, drop-oldest progress streaming over SSE (events.go); and
//   - graceful drain: on SIGTERM the daemon rejects new work with 503,
//     lets in-flight analyses finish (cancelling them only if the drain
//     deadline passes), and closes the cache.
//
// Endpoints (all JSON unless noted):
//
//	POST   /v1/datasets            submit an alignment -> dataset handle
//	GET    /v1/datasets            list resident datasets
//	DELETE /v1/datasets/{id}       drop an idle dataset
//	POST   /v1/evaluate            evaluate (dataset, model, tree) -> lnL
//	POST   /v1/analyses            start a model-opt or search analysis
//	GET    /v1/analyses/{id}       analysis status/result
//	GET    /v1/analyses/{id}/events  progress stream (SSE)
//	POST   /v1/analyses/{id}/cancel  cancel at the next region boundary
//	GET    /v1/stats               cache/admission/coalescing/event telemetry
//	GET    /v1/healthz             200 ok, 503 while draining
//	GET    /metrics                Prometheus text exposition (plain text)
//
// Every dataset reports its kernel/region/steal metric families into the
// daemon's registry, so one /metrics scrape covers the serving layer and the
// likelihood runtime underneath it. Config.EnablePprof additionally mounts
// net/http/pprof under /debug/pprof/.
//
// Tenancy is declared with the X-Tenant request header (default "default").
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"phylo"
	"phylo/internal/obs"
)

// Config sizes the daemon. Zero values select the documented defaults.
type Config struct {
	// Threads is the worker-pool width every dataset is built for
	// (default 1).
	Threads int
	// Schedule is the pattern-to-worker assignment strategy (default
	// ScheduleWeighted: a server mixes workloads, so cost-based packing is
	// the right prior; the paper's cyclic remains available).
	Schedule phylo.ScheduleStrategy
	// Steal enables intra-region work stealing on every dataset.
	Steal bool
	// Backend selects the kernel backend (default BackendAuto).
	Backend phylo.KernelBackend
	// GammaCategories is the discrete-Gamma category count (default 4).
	GammaCategories int
	// CacheBytes is the dataset cache budget (default 512 MiB; <= 0 after
	// defaulting means unbounded only when explicitly set negative).
	CacheBytes int64
	// TenantInflight is the per-tenant in-flight work-item quota
	// (default 2).
	TenantInflight int
	// TenantQueue is the per-tenant admission queue capacity (default 16).
	TenantQueue int
	// EventBuffer is the per-analysis progress ring / per-subscriber
	// channel bound (default 256).
	EventBuffer int
	// MaxRequestBytes bounds request bodies (default 64 MiB).
	MaxRequestBytes int64
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/ on
	// the daemon mux. Off by default: profiling endpoints are a debugging
	// surface, opted into per deployment via plkd -pprof.
	EnablePprof bool
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.Schedule == phylo.ScheduleCyclic {
		// The zero value of ScheduleStrategy is Cyclic; a server defaults to
		// Weighted. Callers who want cyclic say so via plkd -schedule.
		c.Schedule = phylo.ScheduleWeighted
	}
	if c.GammaCategories < 1 {
		c.GammaCategories = 4
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 512 << 20
	}
	if c.CacheBytes < 0 {
		c.CacheBytes = 0 // unbounded
	}
	if c.TenantInflight < 1 {
		c.TenantInflight = 2
	}
	if c.TenantQueue == 0 {
		c.TenantQueue = 16
	}
	if c.TenantQueue < 0 {
		c.TenantQueue = 0
	}
	if c.EventBuffer < 1 {
		c.EventBuffer = 256
	}
	if c.MaxRequestBytes < 1 {
		c.MaxRequestBytes = 64 << 20
	}
	return c
}

// Server is the likelihood daemon: an http.Handler plus the serving state
// behind it. Create with New, serve with net/http, stop with Drain.
type Server struct {
	cfg     Config
	cache   *DatasetCache
	adm     *Admission
	flights flightGroup
	mux     *http.ServeMux
	metrics *obs.Registry // one scrape covers serving + kernel families

	mu       sync.Mutex
	draining bool
	jobs     map[string]*analysisJob
	nextJob  int64

	work sync.WaitGroup // in-flight evaluates + analyses + submits

	// kernelRuns counts actual kernel executions performed on behalf of
	// evaluate requests — the observable that proves coalescing: N identical
	// concurrent requests move it by exactly 1.
	kernelRuns atomic.Int64

	// testHookEvaluate, when non-nil, runs inside the single-flight
	// computation before the kernel, keyed by the coalescing key. Tests park
	// it to make concurrency deterministic. Never set in production.
	testHookEvaluate func(key string)
}

// New builds a server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   NewDatasetCache(cfg.CacheBytes),
		adm:     NewAdmission(cfg.TenantInflight, cfg.TenantQueue),
		jobs:    make(map[string]*analysisJob),
		metrics: obs.NewRegistry(),
	}
	s.registerMetrics()
	m := http.NewServeMux()
	m.HandleFunc("POST /v1/datasets", s.instrument("/v1/datasets", s.handleSubmitDataset))
	m.HandleFunc("GET /v1/datasets", s.instrument("/v1/datasets", s.handleListDatasets))
	m.HandleFunc("DELETE /v1/datasets/{id}", s.instrument("/v1/datasets/{id}", s.handleDeleteDataset))
	m.HandleFunc("POST /v1/evaluate", s.instrument("/v1/evaluate", s.handleEvaluate))
	m.HandleFunc("POST /v1/analyses", s.instrument("/v1/analyses", s.handleStartAnalysis))
	m.HandleFunc("GET /v1/analyses/{id}", s.instrument("/v1/analyses/{id}", s.handleGetAnalysis))
	m.HandleFunc("GET /v1/analyses/{id}/events", s.instrument("/v1/analyses/{id}/events", s.handleEvents))
	m.HandleFunc("POST /v1/analyses/{id}/cancel", s.instrument("/v1/analyses/{id}/cancel", s.handleCancelAnalysis))
	m.HandleFunc("GET /v1/stats", s.instrument("/v1/stats", s.handleStats))
	m.HandleFunc("GET /v1/healthz", s.instrument("/v1/healthz", s.handleHealthz))
	m.Handle("GET /metrics", s.metrics.Handler())
	if cfg.EnablePprof {
		registerPprof(m)
	}
	s.mux = m
	return s
}

// ServeHTTP dispatches to the daemon's routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	s.mux.ServeHTTP(w, r)
}

// beginWork registers one unit of in-flight work unless the server is
// draining. Every POST path that creates work calls it; Drain waits for the
// balance to reach zero.
func (s *Server) beginWork() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.work.Add(1)
	return true
}

// isDraining reports drain mode.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the serving state down: new work is rejected with
// 503 (and queued admissions are woken with the same), in-flight analyses
// keep running until they finish — unless ctx expires first, in which case
// they are cancelled and complete at their next synchronization-region
// boundary with consistent partial results — and finally the dataset cache
// is closed. Idempotent; concurrent calls all block until the drain is
// complete.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	s.adm.SetDraining()

	done := make(chan struct{})
	go func() {
		s.work.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline passed: cancel everything still running and wait for the
		// region-boundary cancellation to land.
		s.cancelAllJobs()
		<-done
	}
	if !already {
		s.cache.Close()
	}
	return ctx.Err()
}

// cancelAllJobs cancels every tracked analysis.
func (s *Server) cancelAllJobs() {
	s.mu.Lock()
	jobs := make([]*analysisJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
}

// KernelRuns reports how many evaluate kernel executions actually ran
// (coalesced duplicates share one).
func (s *Server) KernelRuns() int64 { return s.kernelRuns.Load() }

// Admission exposes the admission gate (tests assert quota bounds on it).
func (s *Server) Admission() *Admission { return s.adm }

// Cache exposes the dataset cache.
func (s *Server) Cache() *DatasetCache { return s.cache }

// Metrics exposes the daemon's metrics registry (the backing store of
// GET /metrics); tests and embedders snapshot it directly.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// ---- request plumbing ----

// tenantOf extracts the tenant identity (X-Tenant header, default
// "default").
func tenantOf(r *http.Request) string {
	if t := strings.TrimSpace(r.Header.Get("X-Tenant")); t != "" {
		return t
	}
	return "default"
}

// writeJSON serializes one response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// writeError maps an error to its HTTP status and writes the envelope.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrDatasetNotCached):
		code = http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, ErrCacheClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrDatasetBusy):
		code = http.StatusConflict
	case errors.Is(err, errBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away or gave up while queued.
		code = statusClientClosedRequest
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// statusClientClosedRequest is nginx's conventional 499 for a client that
// disconnected while its request was queued.
const statusClientClosedRequest = 499

// errBadRequest tags malformed-input errors with their status.
var errBadRequest = errors.New("bad request")

// badRequestf formats an errBadRequest.
func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errBadRequest}, args...)...)
}

// decodeJSON parses a JSON request body into v.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("%v", err)
	}
	return nil
}

// digest derives a stable dataset handle from the submitted inputs plus the
// server's dataset-shaping config (two servers with different thread counts
// or backends legitimately build different datasets from one alignment).
func (s *Server) digest(parts ...string) string {
	h := sha256.New()
	fmt.Fprintf(h, "T=%d|S=%v|steal=%v|cats=%d|backend=%v",
		s.cfg.Threads, s.cfg.Schedule, s.cfg.Steal, s.cfg.GammaCategories, s.cfg.Backend)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return "ds_" + hex.EncodeToString(h.Sum(nil))[:20]
}

// ---- dataset endpoints ----

// submitRequest is the JSON form of POST /v1/datasets. Raw (non-JSON)
// bodies are accepted too: the body is the PHYLIP text and data_type /
// partition_len arrive as query parameters — the curl-friendly path.
type submitRequest struct {
	// Phylip is the alignment in (relaxed) PHYLIP format.
	Phylip string `json:"phylip"`
	// Partitions is an optional RAxML-style partition scheme
	// ("DNA, gene0 = 1-1000" ...).
	Partitions string `json:"partitions,omitempty"`
	// DataType is "dna" (default) or "aa"; used when Partitions is empty.
	DataType string `json:"data_type,omitempty"`
	// PartitionLen, when > 0 and Partitions is empty, splits the alignment
	// into uniform partitions of this many columns.
	PartitionLen int `json:"partition_len,omitempty"`
}

// submitResponse answers POST /v1/datasets.
type submitResponse struct {
	DatasetInfo
	// Cached reports a digest hit: the dataset was already resident and no
	// build ran.
	Cached bool `json:"cached"`
}

// parseSubmit reads either request form.
func parseSubmit(r *http.Request) (submitRequest, error) {
	var req submitRequest
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		if err := decodeJSON(r, &req); err != nil {
			return req, err
		}
	} else {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			return req, badRequestf("reading body: %v", err)
		}
		req.Phylip = string(body)
		req.DataType = r.URL.Query().Get("data_type")
		if v := r.URL.Query().Get("partition_len"); v != "" {
			if _, err := fmt.Sscanf(v, "%d", &req.PartitionLen); err != nil {
				return req, badRequestf("partition_len %q: %v", v, err)
			}
		}
	}
	if strings.TrimSpace(req.Phylip) == "" {
		return req, badRequestf("empty alignment")
	}
	return req, nil
}

// buildDataset constructs the phylo.Dataset for one submission.
func (s *Server) buildDataset(req submitRequest) (*phylo.Dataset, error) {
	al, err := phylo.ReadPhylip(strings.NewReader(req.Phylip))
	if err != nil {
		return nil, badRequestf("alignment: %v", err)
	}
	dt := phylo.DNA
	switch strings.ToLower(strings.TrimSpace(req.DataType)) {
	case "", "dna":
	case "aa", "protein":
		dt = phylo.AA
	default:
		return nil, badRequestf("data_type %q (want dna or aa)", req.DataType)
	}
	switch {
	case strings.TrimSpace(req.Partitions) != "":
		if err := al.SetPartitionsFromReader(strings.NewReader(req.Partitions)); err != nil {
			return nil, badRequestf("partitions: %v", err)
		}
	case req.PartitionLen > 0:
		if err := al.SetUniformPartitions(dt, req.PartitionLen); err != nil {
			return nil, badRequestf("partition_len: %v", err)
		}
	default:
		al.SetSinglePartition(dt)
	}
	return phylo.NewDataset(al, phylo.DatasetOptions{
		Threads:         s.cfg.Threads,
		Schedule:        s.cfg.Schedule,
		GammaCategories: s.cfg.GammaCategories,
		Steal:           s.cfg.Steal,
		Backend:         s.cfg.Backend,
		// Every dataset reports kernel/region/steal families into the
		// daemon's registry, so one /metrics scrape covers the whole stack.
		Metrics: s.metrics,
	})
}

// handleSubmitDataset implements POST /v1/datasets: digest the inputs,
// build on a miss (concurrent identical submissions share one build), and
// return the handle the evaluate/analysis endpoints take.
func (s *Server) handleSubmitDataset(w http.ResponseWriter, r *http.Request) {
	if !s.beginWork() {
		writeError(w, ErrDraining)
		return
	}
	defer s.work.Done()
	req, err := parseSubmit(r)
	if err != nil {
		writeError(w, err)
		return
	}
	id := s.digest(req.Phylip, req.Partitions, strings.ToLower(req.DataType), fmt.Sprint(req.PartitionLen))
	handle, cached, err := s.cache.Acquire(id, func() (*phylo.Dataset, error) { return s.buildDataset(req) })
	if err != nil {
		writeError(w, err)
		return
	}
	defer handle.Release()
	ds := handle.Dataset()
	writeJSON(w, http.StatusOK, submitResponse{
		DatasetInfo: DatasetInfo{
			ID:          id,
			Taxa:        ds.NumTaxa(),
			Sites:       ds.NumSites(),
			Patterns:    ds.NumPatterns(),
			Partitions:  ds.NumPartitions(),
			MemoryBytes: handle.Bytes(),
		},
		Cached: cached,
	})
}

// handleListDatasets implements GET /v1/datasets.
func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.cache.List()})
}

// handleDeleteDataset implements DELETE /v1/datasets/{id}.
func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	if err := s.cache.Remove(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": r.PathValue("id")})
}

// ---- telemetry endpoints ----

// eventStatsBody is the "events" section of /v1/stats: aggregate drop/gap
// accounting across every tracked analysis hub, plus a per-hub breakdown for
// the hubs that actually shed events (bounded by the job table, and in
// practice by how rarely healthy streams drop).
type eventStatsBody struct {
	DroppedTotal      int64                   `json:"dropped_total"`
	RingDropped       int64                   `json:"ring_dropped"`
	SubscriberDropped int64                   `json:"subscriber_dropped"`
	Subscribers       int                     `json:"subscribers"`
	Hubs              map[string]HubDropStats `json:"hubs,omitempty"`
}

// eventStatsLocked folds the per-analysis hub drop counters. Caller holds
// s.mu.
func (s *Server) eventStatsLocked() eventStatsBody {
	var body eventStatsBody
	for id, j := range s.jobs {
		st := j.hub.DropStats()
		body.DroppedTotal += st.DroppedTotal
		body.RingDropped += st.RingDropped
		body.SubscriberDropped += st.SubscriberDropped
		body.Subscribers += st.Subscribers
		if st.DroppedTotal > 0 {
			if body.Hubs == nil {
				body.Hubs = make(map[string]HubDropStats)
			}
			body.Hubs[id] = st
		}
	}
	return body
}

// handleStats implements GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	primary, coalesced := s.flights.Counters()
	s.mu.Lock()
	running, total := 0, len(s.jobs)
	for _, j := range s.jobs {
		if st, _ := j.snapshot(); st == jobRunning || st == jobQueued {
			running++
		}
	}
	events := s.eventStatsLocked()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"cache":     s.cache.Stats(),
		"admission": s.adm.Stats(),
		"coalescing": map[string]int64{
			"executed":  primary,
			"coalesced": coalesced,
		},
		"kernel_runs": s.kernelRuns.Load(),
		"analyses":    map[string]int{"total": total, "active": running},
		"events":      events,
		"draining":    draining,
		"config": map[string]any{
			"threads":  s.cfg.Threads,
			"schedule": fmt.Sprint(s.cfg.Schedule),
			"steal":    s.cfg.Steal,
			"cats":     s.cfg.GammaCategories,
		},
	})
}

// handleHealthz implements GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
