package server

import (
	"testing"

	"phylo"
)

func ev(round int) phylo.ProgressEvent {
	return phylo.ProgressEvent{Phase: phylo.PhaseModelOpt, Round: round, LnL: -float64(round)}
}

func TestEventHubReplayAndOrder(t *testing.T) {
	h := newEventHub(8)
	for i := 1; i <= 3; i++ {
		h.Publish(ev(i))
	}
	ch, cancel := h.Subscribe()
	defer cancel()
	// History replays in order with 1-based seq.
	for i := 1; i <= 3; i++ {
		e := <-ch
		if e.Seq != int64(i) || e.Ev.Round != i {
			t.Fatalf("replay %d: %+v", i, e)
		}
	}
	// Live events follow.
	h.Publish(ev(4))
	if e := <-ch; e.Seq != 4 || e.Ev.Round != 4 {
		t.Fatalf("live: %+v", e)
	}
	h.Close()
	if _, ok := <-ch; ok {
		t.Fatal("channel should close with the hub")
	}
}

// TestEventHubDropOldest overflows both bounds and checks the newest events
// survive: the publisher must never block, and load sheds from the old end.
func TestEventHubDropOldest(t *testing.T) {
	h := newEventHub(4)
	ch, cancel := h.Subscribe()
	defer cancel()
	// 20 publishes into a capacity-4 subscriber channel nobody is reading:
	// must not block, and the queued events must be the newest 4... plus the
	// replayed history already taken (none here).
	for i := 1; i <= 20; i++ {
		h.Publish(ev(i))
	}
	if h.Dropped() == 0 {
		t.Fatal("expected drops")
	}
	// Drain what's queued: the LAST event must be present; seq strictly
	// increasing with gaps where drops happened.
	var got []int64
	h.Close()
	for e := range ch {
		got = append(got, e.Seq)
	}
	if len(got) == 0 {
		t.Fatal("no events survived")
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("seq not increasing: %v", got)
		}
	}
	if got[len(got)-1] != 20 {
		t.Fatalf("newest event shed: last seq = %d, want 20", got[len(got)-1])
	}
}

func TestEventHubLateSubscriberSeesRecentHistory(t *testing.T) {
	h := newEventHub(4)
	for i := 1; i <= 10; i++ {
		h.Publish(ev(i))
	}
	ch, cancel := h.Subscribe()
	defer cancel()
	// The ring retains the newest 4: seq 7..10.
	for want := int64(7); want <= 10; want++ {
		e := <-ch
		if e.Seq != want {
			t.Fatalf("history seq = %d, want %d", e.Seq, want)
		}
	}
	if h.Dropped() != 6 {
		t.Fatalf("ring drops = %d, want 6", h.Dropped())
	}
}

func TestEventHubSubscribeAfterClose(t *testing.T) {
	h := newEventHub(4)
	h.Publish(ev(1))
	h.Close()
	ch, cancel := h.Subscribe()
	defer cancel()
	e, ok := <-ch
	if !ok || e.Seq != 1 {
		t.Fatalf("post-close history: %+v ok=%v", e, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel should be closed")
	}
	h.Publish(ev(2)) // dropped, no panic
	cancel()         // idempotent, no panic on closed
}
