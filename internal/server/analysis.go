package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"

	"phylo"
)

// Long-running analyses (model optimization, SPR search) run asynchronously:
// POST /v1/analyses returns a job id immediately, progress streams over SSE
// from the job's bounded event hub, and cancellation lands at the next
// synchronization-region boundary with a consistent partial result. The
// job's admission slot is held for the analysis's whole duration — an
// analysis issues parallel regions from start to finish, so it is one
// work item, not many.

// Job states.
const (
	jobQueued    = "queued"    // waiting on the tenant's admission quota
	jobRunning   = "running"   // inside the analysis
	jobDone      = "done"      // finished normally
	jobCancelled = "cancelled" // stopped at a region boundary by cancel/drain
	jobFailed    = "failed"    // admission rejected or the analysis errored
)

// analysisRequest starts one asynchronous analysis.
type analysisRequest struct {
	// Dataset is the handle returned by POST /v1/datasets.
	Dataset string `json:"dataset"`
	// Mode is "modelopt" (Gamma shapes + branch lengths, the paper's
	// workload) or "search" (SPR tree search). Default "modelopt".
	Mode string `json:"mode,omitempty"`
	// Tree, Seed, PerPartitionBranchLengths as in evaluate.
	Tree                      string `json:"tree,omitempty"`
	Seed                      int64  `json:"seed,omitempty"`
	PerPartitionBranchLengths bool   `json:"per_partition_branch_lengths,omitempty"`
	// MaxRounds / Radius tune the SPR search (search mode only).
	MaxRounds int `json:"max_rounds,omitempty"`
	Radius    int `json:"radius,omitempty"`
}

// analysisStatus is the wire form of one job (GET /v1/analyses/{id} and the
// SSE terminal event).
type analysisStatus struct {
	ID            string  `json:"id"`
	State         string  `json:"state"`
	Mode          string  `json:"mode"`
	Dataset       string  `json:"dataset"`
	Tenant        string  `json:"tenant"`
	LnL           float64 `json:"lnl,omitempty"`
	Error         string  `json:"error,omitempty"`
	Rounds        int     `json:"rounds,omitempty"`
	MovesApplied  int     `json:"moves_applied,omitempty"`
	MovesTried    int     `json:"moves_tried,omitempty"`
	Regions       int64   `json:"regions,omitempty"`
	Rebalances    int     `json:"rebalances,omitempty"`
	Tree          string  `json:"tree,omitempty"`
	DroppedEvents int64   `json:"dropped_events,omitempty"`
}

// analysisJob is one tracked analysis: identity, the cancel hook, the event
// hub, and the mutable result fields.
type analysisJob struct {
	id      string
	tenant  string
	mode    string
	dataset string
	hub     *eventHub
	cancel  context.CancelFunc

	mu         sync.Mutex
	state      string
	lnl        float64
	errMsg     string
	rounds     int
	moves      [2]int // applied, tried
	regions    int64
	rebalances int
	tree       string
}

// snapshot returns the job's state and wire form.
func (j *analysisJob) snapshot() (string, analysisStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := analysisStatus{
		ID: j.id, State: j.state, Mode: j.mode, Dataset: j.dataset, Tenant: j.tenant,
		Rounds: j.rounds, MovesApplied: j.moves[0], MovesTried: j.moves[1],
		Regions: j.regions, Rebalances: j.rebalances, Tree: j.tree,
		Error: j.errMsg, DroppedEvents: j.hub.Dropped(),
	}
	if !math.IsNaN(j.lnl) && j.lnl != 0 {
		st.LnL = j.lnl
	}
	return j.state, st
}

// handleStartAnalysis implements POST /v1/analyses.
func (s *Server) handleStartAnalysis(w http.ResponseWriter, r *http.Request) {
	if !s.beginWork() {
		writeError(w, ErrDraining)
		return
	}
	started := false
	defer func() {
		if !started {
			s.work.Done()
		}
	}()

	var req analysisRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	mode := strings.ToLower(strings.TrimSpace(req.Mode))
	if mode == "" {
		mode = "modelopt"
	}
	if mode != "modelopt" && mode != "search" {
		writeError(w, badRequestf("mode %q (want modelopt or search)", req.Mode))
		return
	}
	// Pin the dataset now so eviction cannot race the job's startup, and so
	// a bad handle fails synchronously with a 404.
	handle, err := s.cache.Ref(req.Dataset)
	if err != nil {
		writeError(w, err)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	s.nextJob++
	job := &analysisJob{
		id:      fmt.Sprintf("an_%d", s.nextJob),
		tenant:  tenantOf(r),
		mode:    mode,
		dataset: req.Dataset,
		hub:     newEventHub(s.cfg.EventBuffer),
		cancel:  cancel,
		state:   jobQueued,
		lnl:     math.NaN(),
	}
	s.jobs[job.id] = job
	s.mu.Unlock()

	started = true // the goroutine owns the work item now
	go s.runAnalysis(ctx, cancel, job, handle, req)

	_, st := job.snapshot()
	writeJSON(w, http.StatusAccepted, st)
}

// runAnalysis is the job goroutine: admission, session, analysis, result.
func (s *Server) runAnalysis(ctx context.Context, cancel context.CancelFunc,
	job *analysisJob, handle *CachedDataset, req analysisRequest) {
	defer s.work.Done()
	defer cancel()
	defer handle.Release()
	defer job.hub.Close()

	fail := func(state, msg string) {
		job.mu.Lock()
		job.state, job.errMsg = state, msg
		job.mu.Unlock()
	}

	// The admission slot covers the whole analysis. Queued jobs wake with
	// ErrDraining on drain (the job never ran: cancelled, not failed).
	release, err := s.adm.Acquire(ctx, job.tenant)
	if err != nil {
		if err == ErrDraining || ctx.Err() != nil {
			fail(jobCancelled, err.Error())
		} else {
			fail(jobFailed, err.Error())
		}
		return
	}
	defer release()

	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	an, err := handle.Dataset().NewAnalysis(phylo.AnalysisOptions{
		StartTreeNewick:           req.Tree,
		Seed:                      seed,
		PerPartitionBranchLengths: req.PerPartitionBranchLengths,
		Progress:                  job.hub.Publish,
	})
	if err != nil {
		fail(jobFailed, fmt.Sprintf("opening session: %v", err))
		return
	}
	defer an.Close()

	job.mu.Lock()
	job.state = jobRunning
	job.mu.Unlock()

	var lnl float64
	var sres phylo.SearchResult
	switch job.mode {
	case "search":
		so := phylo.SearchOptions{MaxRounds: req.MaxRounds, Radius: req.Radius}
		sres, err = an.SearchWith(ctx, so)
		lnl = sres.LnL
	default:
		lnl, err = an.OptimizeModel(ctx)
	}

	st := an.Stats()
	job.mu.Lock()
	job.lnl = lnl
	job.rounds = sres.Rounds
	job.moves = [2]int{sres.MovesApplied, sres.MovesTried}
	job.regions = st.Regions
	job.rebalances = st.Rebalances
	job.tree = an.TreeNewick()
	switch {
	case err == nil:
		job.state = jobDone
	case ctx.Err() != nil:
		// Cancelled at a region boundary; lnl is the consistent partial
		// result per SearchWith/OptimizeModel semantics.
		job.state = jobCancelled
		job.errMsg = ctx.Err().Error()
	default:
		job.state = jobFailed
		job.errMsg = err.Error()
	}
	job.mu.Unlock()
}

// job looks up a tracked analysis.
func (s *Server) job(id string) *analysisJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// handleGetAnalysis implements GET /v1/analyses/{id}.
func (s *Server) handleGetAnalysis(w http.ResponseWriter, r *http.Request) {
	job := s.job(r.PathValue("id"))
	if job == nil {
		writeError(w, badRequestf("unknown analysis %q", r.PathValue("id")))
		return
	}
	_, st := job.snapshot()
	writeJSON(w, http.StatusOK, st)
}

// handleCancelAnalysis implements POST /v1/analyses/{id}/cancel. The
// analysis stops at its next synchronization-region boundary; poll the job
// (or watch its event stream close) for the final partial result.
func (s *Server) handleCancelAnalysis(w http.ResponseWriter, r *http.Request) {
	job := s.job(r.PathValue("id"))
	if job == nil {
		writeError(w, badRequestf("unknown analysis %q", r.PathValue("id")))
		return
	}
	job.cancel()
	_, st := job.snapshot()
	writeJSON(w, http.StatusOK, st)
}

// handleEvents implements GET /v1/analyses/{id}/events: a Server-Sent
// Events stream of the job's progress. Each round arrives as an
// `event: progress` frame carrying the Event JSON (seq + ProgressEvent);
// when the analysis finishes the stream ends with one `event: done` frame
// carrying the final analysisStatus. Backpressure is drop-oldest at the
// hub, so a slow consumer sees gaps in seq, never a stalled kernel.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job := s.job(r.PathValue("id"))
	if job == nil {
		writeError(w, badRequestf("unknown analysis %q", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch, unsub := job.hub.Subscribe()
	defer unsub()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				// Hub closed: the analysis is over. Emit the terminal frame.
				_, st := job.snapshot()
				writeSSE(w, "done", ev.Seq, st)
				fl.Flush()
				return
			}
			writeSSE(w, "progress", ev.Seq, ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one Server-Sent Events frame.
func writeSSE(w http.ResponseWriter, event string, id int64, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, data)
}
