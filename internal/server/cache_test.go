package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"phylo"
)

// tinyDataset builds a small real dataset for cache tests.
func tinyDataset(t *testing.T, taxa, sites int, seed int64) *phylo.Dataset {
	t.Helper()
	al, err := phylo.SimulateGrid(taxa, sites, sites, 1.0, seed)
	if err != nil {
		t.Fatalf("SimulateGrid: %v", err)
	}
	ds, err := phylo.NewDataset(al, phylo.DatasetOptions{Threads: 1})
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	return ds
}

// builderFor returns a build func that constructs a fresh tiny dataset and
// counts invocations.
func builderFor(t *testing.T, seed int64, builds *int64, mu *sync.Mutex) func() (*phylo.Dataset, error) {
	return func() (*phylo.Dataset, error) {
		mu.Lock()
		*builds++
		mu.Unlock()
		return tinyDataset(t, 8, 64, seed), nil
	}
}

// resident reports whether id is in the cache, without holding a reference.
func resident(c *DatasetCache, id string) bool {
	h, err := c.Ref(id)
	if err != nil {
		return false
	}
	h.Release()
	return true
}

func TestCacheHitAndMiss(t *testing.T) {
	c := NewDatasetCache(0) // unbounded
	defer c.Close()
	var builds int64
	var mu sync.Mutex

	h1, cached, err := c.Acquire("a", builderFor(t, 1, &builds, &mu))
	if err != nil || cached {
		t.Fatalf("first acquire: cached=%v err=%v", cached, err)
	}
	h2, cached, err := c.Acquire("a", builderFor(t, 1, &builds, &mu))
	if err != nil || !cached {
		t.Fatalf("second acquire: cached=%v err=%v", cached, err)
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	if h1.Dataset() != h2.Dataset() {
		t.Fatal("handles disagree on the dataset")
	}
	if h1.Bytes() <= 0 {
		t.Fatalf("footprint price %d, want > 0", h1.Bytes())
	}
	h1.Release()
	h1.Release() // idempotent
	h2.Release()
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCacheEvictionRespectsBudget fills the cache past its budget and checks
// (a) eviction is LRU, (b) a ref-held dataset is never evicted even when the
// budget is blown, (c) resident bytes return under the budget once the
// references drop.
func TestCacheEvictionRespectsBudget(t *testing.T) {
	// Price one entry to size the budget for exactly two of them.
	probe := tinyDataset(t, 8, 64, 99)
	one := probe.MemoryFootprint()
	probe.Close()

	c := NewDatasetCache(2 * one)
	defer c.Close()
	var builds int64
	var mu sync.Mutex

	acquire := func(id string, seed int64) *CachedDataset {
		h, _, err := c.Acquire(id, builderFor(t, seed, &builds, &mu))
		if err != nil {
			t.Fatalf("acquire %s: %v", id, err)
		}
		return h
	}

	// a and b resident, both released; touching a makes b the LRU victim.
	acquire("a", 1).Release()
	acquire("b", 2).Release()
	ha := acquire("a", 1) // hit; a now referenced and most recently used

	// c blows the budget: b (LRU, unreferenced) goes; a is pinned.
	hc := acquire("c", 3)
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if resident(c, "b") {
		t.Fatal("b should have been evicted (LRU)")
	}
	if !resident(c, "a") {
		t.Fatal("a (referenced) must never be evicted")
	}

	// A third referenced dataset: the cache must go over budget rather than
	// evict pinned entries.
	hd := acquire("d", 4)
	if !resident(c, "a") || !resident(c, "c") {
		t.Fatal("pinned entries evicted under budget pressure")
	}
	if st := c.Stats(); st.Bytes <= 2*one {
		t.Fatalf("expected over-budget while pinned: bytes=%d budget=%d", st.Bytes, 2*one)
	}

	// Drop the references: the byte budget must be enforced again.
	ha.Release()
	hc.Release()
	hd.Release()
	if st := c.Stats(); st.Bytes > 2*one {
		t.Fatalf("cache stayed over budget after release: bytes=%d budget=%d", st.Bytes, 2*one)
	}
}

func TestCacheCoalescedBuild(t *testing.T) {
	c := NewDatasetCache(0)
	defer c.Close()
	var builds int64
	var mu sync.Mutex

	const n = 8
	var wg sync.WaitGroup
	handles := make([]*CachedDataset, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			handles[i], _, errs[i] = c.Acquire("x", builderFor(t, 7, &builds, &mu))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1 (coalesced)", builds)
	}
	for _, h := range handles {
		if h.Dataset() != handles[0].Dataset() {
			t.Fatal("coalesced handles disagree")
		}
		h.Release()
	}
}

func TestCacheFailedBuildClearsSlot(t *testing.T) {
	c := NewDatasetCache(0)
	defer c.Close()
	boom := fmt.Errorf("no such alignment")
	if _, _, err := c.Acquire("bad", func() (*phylo.Dataset, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The slot must be clear: a retry builds fresh and succeeds.
	var builds int64
	var mu sync.Mutex
	h, cached, err := c.Acquire("bad", builderFor(t, 5, &builds, &mu))
	if err != nil || cached || builds != 1 {
		t.Fatalf("retry: cached=%v builds=%d err=%v", cached, builds, err)
	}
	h.Release()
}

func TestCacheRemove(t *testing.T) {
	c := NewDatasetCache(0)
	defer c.Close()
	var builds int64
	var mu sync.Mutex
	h, _, err := c.Acquire("a", builderFor(t, 1, &builds, &mu))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("a"); !errors.Is(err, ErrDatasetBusy) {
		t.Fatalf("Remove(referenced) = %v, want ErrDatasetBusy", err)
	}
	h.Release()
	if err := c.Remove("a"); err != nil {
		t.Fatalf("Remove(idle) = %v", err)
	}
	if err := c.Remove("a"); !errors.Is(err, ErrDatasetNotCached) {
		t.Fatalf("Remove(gone) = %v, want ErrDatasetNotCached", err)
	}
}

func TestCacheList(t *testing.T) {
	c := NewDatasetCache(0)
	defer c.Close()
	var builds int64
	var mu sync.Mutex
	h, _, err := c.Acquire("a", builderFor(t, 1, &builds, &mu))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	infos := c.List()
	if len(infos) != 1 || infos[0].ID != "a" || infos[0].Refs != 1 || infos[0].MemoryBytes <= 0 {
		t.Fatalf("List = %+v", infos)
	}
	if infos[0].Taxa != 8 || infos[0].Patterns <= 0 {
		t.Fatalf("List[0] = %+v", infos[0])
	}
}

func TestCacheClosed(t *testing.T) {
	c := NewDatasetCache(0)
	c.Close()
	if _, _, err := c.Acquire("a", nil); !errors.Is(err, ErrCacheClosed) {
		t.Fatalf("Acquire after close = %v", err)
	}
	if _, err := c.Ref("a"); !errors.Is(err, ErrCacheClosed) {
		t.Fatalf("Ref after close = %v", err)
	}
	c.Close() // idempotent
}
