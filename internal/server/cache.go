package server

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"

	"phylo"
)

// Errors returned by the dataset cache. Use errors.Is to test.
var (
	// ErrDatasetNotCached is returned when a request names a dataset handle
	// that is no longer (or never was) resident; the client must resubmit
	// the alignment.
	ErrDatasetNotCached = errors.New("server: dataset not cached (resubmit the alignment)")
	// ErrDatasetBusy is returned by Remove for a dataset with live
	// references.
	ErrDatasetBusy = errors.New("server: dataset has in-flight work")
	// ErrCacheClosed is returned once the cache has been shut down.
	ErrCacheClosed = errors.New("server: dataset cache closed")
)

// DatasetInfo is the client-visible description of one cached dataset.
type DatasetInfo struct {
	ID          string `json:"id"`
	Taxa        int    `json:"taxa"`
	Sites       int    `json:"sites"`
	Patterns    int    `json:"patterns"`
	Partitions  int    `json:"partitions"`
	MemoryBytes int64  `json:"memory_bytes"`
	Refs        int    `json:"refs"`
}

// cacheEntry is one resident dataset: the handle id (alignment digest), the
// built Dataset, its byte price, the live reference count, and its position
// in the LRU list (only unreferenced entries are listed — an entry with
// in-flight work is pinned and cannot be evicted).
type cacheEntry struct {
	id    string
	ds    *phylo.Dataset
	bytes int64
	refs  int
	lru   *list.Element // nil while refs > 0

	// Build synchronization: concurrent submits of the same alignment build
	// once; latecomers block on ready and observe err.
	ready chan struct{}
	err   error
}

// DatasetCache is the daemon's ref-counted dataset cache: immutable
// phylo.Datasets keyed by alignment digest, priced by
// Dataset.MemoryFootprint, evicted least-recently-used against a byte
// budget. Referenced entries are never evicted — a dataset with in-flight
// analyses is pinned until every handle is released — and concurrent
// submissions of the same alignment coalesce onto one build.
type DatasetCache struct {
	budget int64

	mu      sync.Mutex
	entries map[string]*cacheEntry
	lru     *list.List // unreferenced entries, front = most recently used
	bytes   int64      // total price of resident, fully built entries
	closed  bool

	hits, misses, evictions int64
}

// NewDatasetCache creates a cache with the given byte budget. A budget <= 0
// means unbounded (nothing is ever evicted for size).
func NewDatasetCache(budget int64) *DatasetCache {
	return &DatasetCache{
		budget:  budget,
		entries: make(map[string]*cacheEntry),
		lru:     list.New(),
	}
}

// CachedDataset is a live reference to a cache entry. The dataset is pinned
// (never evicted) until Release; Release is idempotent.
type CachedDataset struct {
	c     *DatasetCache
	e     *cacheEntry
	once  sync.Once
	onRel func()
}

// ID returns the dataset handle (the alignment digest).
func (h *CachedDataset) ID() string { return h.e.id }

// Dataset returns the pinned dataset.
func (h *CachedDataset) Dataset() *phylo.Dataset { return h.e.ds }

// Bytes returns the entry's cache price.
func (h *CachedDataset) Bytes() int64 { return h.e.bytes }

// Release drops this reference. When the last reference goes, the entry
// becomes eligible for LRU eviction (it stays resident until the budget
// forces it out).
func (h *CachedDataset) Release() {
	h.once.Do(func() {
		h.c.release(h.e)
		if h.onRel != nil {
			h.onRel()
		}
	})
}

// Acquire returns a pinned reference to the dataset with the given id,
// building it with build on a miss. Concurrent Acquires of one id share a
// single build; if the build fails every waiter sees the error and the slot
// is cleared so a later submit can retry. The returned handle must be
// Released.
func (c *DatasetCache) Acquire(id string, build func() (*phylo.Dataset, error)) (*CachedDataset, bool, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrCacheClosed
	}
	if e, ok := c.entries[id]; ok {
		c.ref(e)
		c.hits++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The build we latched onto failed; the builder already removed
			// the entry. Surface its error.
			c.release(e)
			return nil, false, e.err
		}
		return &CachedDataset{c: c, e: e}, true, nil
	}
	e := &cacheEntry{id: id, refs: 1, ready: make(chan struct{})}
	c.entries[id] = e
	c.misses++
	c.mu.Unlock()

	ds, err := build()
	c.mu.Lock()
	if err == nil && c.closed {
		err = ErrCacheClosed
		ds.Close()
		ds = nil
	}
	if err != nil {
		e.err = err
		delete(c.entries, id)
		c.mu.Unlock()
		close(e.ready)
		return nil, false, err
	}
	e.ds = ds
	e.bytes = ds.MemoryFootprint()
	c.bytes += e.bytes
	victims := c.evictLocked()
	c.mu.Unlock()
	close(e.ready)
	closeAll(victims)
	return &CachedDataset{c: c, e: e}, false, nil
}

// Ref returns a pinned reference to an already-resident dataset, or
// ErrDatasetNotCached. It never builds.
func (c *DatasetCache) Ref(id string) (*CachedDataset, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrCacheClosed
	}
	e, ok := c.entries[id]
	if !ok {
		c.mu.Unlock()
		return nil, ErrDatasetNotCached
	}
	c.ref(e)
	c.hits++
	c.mu.Unlock()
	<-e.ready
	if e.err != nil {
		c.release(e)
		return nil, e.err
	}
	return &CachedDataset{c: c, e: e}, nil
}

// ref pins an entry: removes it from the LRU list while referenced. Caller
// holds c.mu.
func (c *DatasetCache) ref(e *cacheEntry) {
	e.refs++
	if e.lru != nil {
		c.lru.Remove(e.lru)
		e.lru = nil
	}
}

// release unpins one reference; the last release lists the entry as most
// recently used and applies the budget.
func (c *DatasetCache) release(e *cacheEntry) {
	c.mu.Lock()
	e.refs--
	var victims []*phylo.Dataset
	if e.refs == 0 && e.lru == nil && c.entries[e.id] == e {
		e.lru = c.lru.PushFront(e)
		victims = c.evictLocked()
	}
	c.mu.Unlock()
	closeAll(victims)
}

// evictLocked drops least-recently-used unreferenced entries until the
// resident bytes fit the budget, returning the datasets to close outside the
// lock. Referenced entries are pinned (not listed), so a cache whose live
// working set exceeds the budget simply stays over it until references
// drain — admission control, not the cache, is the mechanism that bounds
// concurrent work.
func (c *DatasetCache) evictLocked() []*phylo.Dataset {
	if c.budget <= 0 {
		return nil
	}
	var victims []*phylo.Dataset
	for c.bytes > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		e.lru = nil
		delete(c.entries, e.id)
		c.bytes -= e.bytes
		c.evictions++
		victims = append(victims, e.ds)
	}
	return victims
}

// Remove explicitly drops an unreferenced dataset (DELETE /v1/datasets/{id}).
func (c *DatasetCache) Remove(id string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrCacheClosed
	}
	e, ok := c.entries[id]
	if !ok {
		c.mu.Unlock()
		return ErrDatasetNotCached
	}
	if e.refs > 0 {
		c.mu.Unlock()
		return fmt.Errorf("%w: %d reference(s)", ErrDatasetBusy, e.refs)
	}
	if e.lru != nil {
		c.lru.Remove(e.lru)
		e.lru = nil
	}
	delete(c.entries, id)
	c.bytes -= e.bytes
	ds := e.ds
	c.mu.Unlock()
	if ds != nil {
		ds.Close()
	}
	return nil
}

// List describes every resident dataset (build-complete entries only).
func (c *DatasetCache) List() []DatasetInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]DatasetInfo, 0, len(c.entries))
	for _, e := range c.entries {
		select {
		case <-e.ready:
		default:
			continue // still building
		}
		if e.err != nil {
			continue
		}
		out = append(out, DatasetInfo{
			ID:          e.id,
			Taxa:        e.ds.NumTaxa(),
			Sites:       e.ds.NumSites(),
			Patterns:    e.ds.NumPatterns(),
			Partitions:  e.ds.NumPartitions(),
			MemoryBytes: e.bytes,
			Refs:        e.refs,
		})
	}
	// The entries map's iteration order is randomized; sort so /v1/datasets
	// responses are stable across calls and runs.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CacheStats is the cache telemetry exposed at /v1/stats.
type CacheStats struct {
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
}

// Stats snapshots the cache counters.
func (c *DatasetCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:     len(c.entries),
		Bytes:       c.bytes,
		BudgetBytes: c.budget,
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
	}
}

// Close evicts everything and rejects further use. Callers must have drained
// in-flight work first (the server's Drain does); entries still referenced
// are closed anyway — their sessions degrade per Dataset.Close semantics.
func (c *DatasetCache) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var victims []*phylo.Dataset
	for id, e := range c.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				victims = append(victims, e.ds)
			}
		default:
			// Still building; the builder observes closed and cleans up.
		}
		delete(c.entries, id)
	}
	c.lru.Init()
	c.bytes = 0
	c.mu.Unlock()
	closeAll(victims)
}

// closeAll closes evicted datasets outside the cache lock.
func closeAll(victims []*phylo.Dataset) {
	for _, ds := range victims {
		ds.Close()
	}
}
