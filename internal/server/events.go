package server

import (
	"sync"

	"phylo"
)

// Progress streaming. Analyses emit one ProgressEvent per optimizer/search
// round on the analysing goroutine, between parallel regions — the publisher
// must never block there, or a slow SSE client would stall the kernel. The
// hub therefore buffers with hard bounds at both levels and sheds load by
// dropping the OLDEST events first: a progress stream is a telemetry stream,
// where the newest state is worth strictly more than a complete history.

// Event is one numbered progress event. Seq is the 1-based position in the
// analysis's full event history; gaps in a subscriber's sequence are events
// shed by backpressure (reported in SSE as the `dropped` field via Hub
// counters and visible as non-consecutive seq values).
type Event struct {
	Seq int64               `json:"seq"`
	Ev  phylo.ProgressEvent `json:"event"`
}

// subscriber is one attached SSE stream: a bounded channel the hub never
// blocks on.
type subscriber struct {
	ch      chan Event
	dropped int64
}

// eventHub is the bounded broadcast buffer for one analysis job: a ring of
// the most recent history (replayed to late subscribers) plus per-subscriber
// bounded channels with drop-oldest overflow. Publish is called from the
// analysis goroutine and never blocks.
type eventHub struct {
	mu      sync.Mutex
	ring    []Event // most recent events, oldest first; len <= cap(ring)
	cap     int
	seq     int64
	dropped int64 // ring-level drops (history shed before anyone subscribed)
	subs    map[*subscriber]struct{}
	closed  bool
}

// newEventHub creates a hub retaining up to capacity events of history;
// subscriber channels use the same bound. capacity < 1 selects 1.
func newEventHub(capacity int) *eventHub {
	if capacity < 1 {
		capacity = 1
	}
	return &eventHub{ring: make([]Event, 0, capacity), cap: capacity, subs: make(map[*subscriber]struct{})}
}

// Publish appends one event, shedding the oldest history and the oldest
// queued event of any full subscriber. Never blocks; no-op after Close.
func (h *eventHub) Publish(ev phylo.ProgressEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	e := Event{Seq: h.seq, Ev: ev}
	if len(h.ring) == h.cap {
		copy(h.ring, h.ring[1:])
		h.ring = h.ring[:h.cap-1]
		h.dropped++
	}
	h.ring = append(h.ring, e)
	for s := range h.subs {
		for {
			select {
			case s.ch <- e:
			default:
				// Full: drop the subscriber's oldest and retry. The drain
				// cannot livelock — only this goroutine sends, so one
				// receive frees a slot that no competing sender can take.
				select {
				case <-s.ch:
					s.dropped++
					continue
				default:
					// Reader drained it concurrently; retry the send.
					continue
				}
			}
			break
		}
	}
}

// Subscribe attaches a new stream, pre-loading the retained history. The
// returned cancel detaches (idempotent); the channel closes when the hub
// closes after the analysis finishes.
func (h *eventHub) Subscribe() (<-chan Event, func()) {
	h.mu.Lock()
	s := &subscriber{ch: make(chan Event, h.cap+len(h.ring))}
	for _, e := range h.ring {
		s.ch <- e
	}
	if h.closed {
		close(s.ch)
		h.mu.Unlock()
		return s.ch, func() {}
	}
	h.subs[s] = struct{}{}
	h.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := h.subs[s]; ok {
				delete(h.subs, s)
				close(s.ch)
			}
			h.mu.Unlock()
		})
	}
	return s.ch, cancel
}

// Close ends the stream: subscriber channels close once drained of their
// queued events, and later Publishes are dropped.
func (h *eventHub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		close(s.ch)
		delete(h.subs, s)
	}
}

// Dropped totals the events shed at the ring level plus per-subscriber.
func (h *eventHub) Dropped() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.dropped
	for s := range h.subs {
		n += s.dropped
	}
	return n
}

// HubDropStats breaks one hub's shed events down by level: ring-history
// drops (events that aged out of the replay buffer) versus per-subscriber
// backpressure drops (a slow SSE client whose channel overflowed), plus the
// attached-subscriber count. DroppedTotal is their sum — the same figure
// Dropped reports. Exposed per analysis in /v1/stats.
type HubDropStats struct {
	DroppedTotal      int64 `json:"dropped_total"`
	RingDropped       int64 `json:"ring_dropped"`
	SubscriberDropped int64 `json:"subscriber_dropped"`
	Subscribers       int   `json:"subscribers"`
}

// DropStats snapshots the hub's drop accounting. Subscriber drops cover the
// currently attached streams (a cancelled subscriber takes its count with
// it, exactly as in Dropped).
func (h *eventHub) DropStats() HubDropStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HubDropStats{RingDropped: h.dropped, Subscribers: len(h.subs)}
	for s := range h.subs {
		st.SubscriberDropped += s.dropped
	}
	st.DroppedTotal = st.RingDropped + st.SubscriberDropped
	return st
}
