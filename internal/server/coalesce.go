package server

import "sync"

// Single-flight coalescing of identical evaluate requests. The likelihood
// kernel is deterministic: two requests naming the same (dataset, model,
// tree) triple will produce bit-identical log likelihoods, so while one is
// being computed, duplicates should wait for that computation instead of
// paying for their own kernel run. This matters for exactly the traffic a
// likelihood daemon sees — surrogate-assisted optimizers and bootstrap
// drivers re-evaluate the same candidate from several workers at once.

// flightCall is one in-flight computation plus everyone waiting on it.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
	dups int // waiters beyond the caller that launched it
}

// flightGroup deduplicates concurrent calls by key. It is the classic
// single-flight shape: the first caller for a key runs fn, later callers for
// the same key block on the first call's result; once the call completes the
// key is forgotten, so sequential identical requests each run fresh (results
// depend only on the key, but a cache with an explicit budget belongs to the
// dataset layer, not here).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall

	// Counters for /v1/stats: primary counts executed computations,
	// coalesced counts duplicates served from someone else's run.
	primary   int64
	coalesced int64
}

// Do executes fn once per concurrently requested key and hands its result to
// every waiter. The second return reports whether this caller was coalesced
// onto another caller's computation.
func (g *flightGroup) Do(key string, fn func() (any, error)) (any, bool, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		c.dups++
		g.coalesced++
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.primary++
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// Waiting reports how many duplicate callers are currently parked on the
// key's in-flight call (0 when no call is in flight). Tests use it to make
// coalescing deterministic: park the primary computation, wait until the
// duplicates have joined, then release it.
func (g *flightGroup) Waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.dups
	}
	return 0
}

// Counters returns the executed and coalesced call totals.
func (g *flightGroup) Counters() (primary, coalesced int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.primary, g.coalesced
}
