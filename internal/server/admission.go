package server

import (
	"context"
	"errors"
	"sync"
)

// Admission control. The worker pool is mutex-serialized: every parallel
// region — the unit of kernel work — runs alone on the pool's T workers, so
// a tenant that opens unbounded concurrent sessions queues unbounded regions
// in front of everyone else's. The daemon therefore bounds each tenant to a
// fixed number of in-flight work items (an evaluate or a whole analysis,
// each of which issues regions for its duration) and parks a bounded
// overflow queue per tenant; beyond the queue it rejects with 429. Fairness
// is structural: tenant B's regions wait behind at most quota in-flight work
// items of tenant A at the pool mutex, never behind A's entire backlog.

// Errors returned by Acquire. Use errors.Is to test.
var (
	// ErrQueueFull rejects a request whose tenant already has a full
	// in-flight complement and a full wait queue (HTTP 429).
	ErrQueueFull = errors.New("server: tenant admission queue full")
	// ErrDraining rejects new work while the daemon drains (HTTP 503).
	ErrDraining = errors.New("server: draining, not accepting new work")
)

// tenantState tracks one tenant's in-flight count and FIFO wait queue.
// States persist for the life of the gate (tenant cardinality is small);
// peak keeps the high-water mark observable after the work drains.
type tenantState struct {
	inflight int
	waiters  []chan error // one value ever sent: nil grants the slot, non-nil wakes without one
	peak     int
}

// Admission is the per-tenant quota gate. The zero value is unusable; use
// NewAdmission.
type Admission struct {
	quota    int // max in-flight work items per tenant
	queueCap int // max parked waiters per tenant beyond the quota

	mu       sync.Mutex
	tenants  map[string]*tenantState
	draining bool

	admitted, rejected int64
}

// NewAdmission creates a gate admitting quota concurrent work items per
// tenant with queueCap parked overflow slots. quota < 1 selects 1; a
// negative queueCap selects 0 (no queue: over-quota requests fail fast).
func NewAdmission(quota, queueCap int) *Admission {
	if quota < 1 {
		quota = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	return &Admission{quota: quota, queueCap: queueCap, tenants: make(map[string]*tenantState)}
}

// Acquire admits one work item for the tenant, parking in the tenant's FIFO
// queue while its quota is exhausted. It returns a release function that
// must be called when the work item completes (idempotent). Errors:
// ErrQueueFull when the queue is at capacity, ErrDraining once SetDraining,
// or ctx's error if the caller gives up while parked.
func (a *Admission) Acquire(ctx context.Context, tenant string) (func(), error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, ErrDraining
	}
	t := a.tenants[tenant]
	if t == nil {
		t = &tenantState{}
		a.tenants[tenant] = t
	}
	if t.inflight < a.quota {
		a.admitLocked(t)
		a.mu.Unlock()
		return a.releaser(t), nil
	}
	if len(t.waiters) >= a.queueCap {
		a.rejected++
		a.mu.Unlock()
		return nil, ErrQueueFull
	}
	wake := make(chan error, 1) // exactly one send ever happens
	t.waiters = append(t.waiters, wake)
	a.mu.Unlock()

	select {
	case err := <-wake:
		if err != nil {
			return nil, err
		}
		// A releasing peer handed us its slot: inflight already counts us.
		return a.releaser(t), nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, w := range t.waiters {
			if w == wake {
				t.waiters = append(t.waiters[:i], t.waiters[i+1:]...)
				a.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		a.mu.Unlock()
		// Not queued anymore: the single send is already in flight in the
		// buffered channel. If it granted a slot, pass the slot on rather
		// than leaking it.
		if err := <-wake; err == nil {
			a.releaser(t)()
		}
		return nil, ctx.Err()
	}
}

// admitLocked counts one admitted work item. Caller holds a.mu.
func (a *Admission) admitLocked(t *tenantState) {
	t.inflight++
	if t.inflight > t.peak {
		t.peak = t.inflight
	}
	a.admitted++
}

// releaser returns the idempotent completion callback for one admitted work
// item: it hands the slot to the tenant's oldest waiter, or retires it.
func (a *Admission) releaser(t *tenantState) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			if len(t.waiters) > 0 {
				wake := t.waiters[0]
				t.waiters = t.waiters[1:]
				// The slot transfers: inflight stays constant, but the
				// admission still counts (and may set a new peak of 0 net).
				a.admitted++
				a.mu.Unlock()
				wake <- nil
				return
			}
			t.inflight--
			a.mu.Unlock()
		})
	}
}

// SetDraining flips the gate into drain mode: every subsequent Acquire
// returns ErrDraining, and every parked waiter is woken with ErrDraining
// (no slot is granted), so a drain never waits on queued-but-unstarted
// work. In-flight items are untouched; their release still runs.
func (a *Admission) SetDraining() {
	a.mu.Lock()
	a.draining = true
	var wakes []chan error
	for _, t := range a.tenants {
		wakes = append(wakes, t.waiters...)
		t.waiters = nil
	}
	a.mu.Unlock()
	for _, w := range wakes {
		w <- ErrDraining
	}
}

// AdmissionStats is the gate telemetry exposed at /v1/stats.
type AdmissionStats struct {
	Quota    int            `json:"quota"`
	QueueCap int            `json:"queue_cap"`
	Admitted int64          `json:"admitted"`
	Rejected int64          `json:"rejected"`
	Tenants  map[string]int `json:"tenants,omitempty"` // in-flight per tenant
}

// Stats snapshots the gate counters. Only tenants with in-flight or queued
// work are listed.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := AdmissionStats{Quota: a.quota, QueueCap: a.queueCap, Admitted: a.admitted, Rejected: a.rejected}
	for name, t := range a.tenants {
		if t.inflight == 0 && len(t.waiters) == 0 {
			continue
		}
		if st.Tenants == nil {
			st.Tenants = make(map[string]int)
		}
		st.Tenants[name] = t.inflight
	}
	return st
}

// QueueDepth reports the number of waiters currently parked across all
// tenants — the admission backlog the /metrics gauge exposes.
func (a *Admission) QueueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, t := range a.tenants {
		n += len(t.waiters)
	}
	return n
}

// Peak returns the tenant's high-water in-flight mark (0 for a tenant that
// never ran). Tests use it to prove the quota bound held.
func (a *Admission) Peak(tenant string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t := a.tenants[tenant]; t != nil {
		return t.peak
	}
	return 0
}
