package server

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"phylo/internal/obs"
)

// Daemon observability. The server owns one obs.Registry covering two layers
// in a single /metrics scrape:
//
//   - serving-layer families registered here, mostly func-backed: they read
//     the authoritative counters the daemon already keeps (cache stats,
//     admission gate, single-flight group, kernel-run counter, event hubs)
//     at scrape time, so there is no double accounting and nothing to keep
//     in sync;
//   - kernel/runtime families (plk_regions_total, plk_kernel_*,
//     plk_steals_total, ...) that appear because the same registry is passed
//     into every dataset via phylo.DatasetOptions.Metrics — the
//     flush-at-region-boundary collector reports into it.
//
// HTTP latency/count families are fed by the instrument middleware wrapped
// around every /v1 route.

// httpLatencyBuckets spans fast JSON endpoints to multi-second analyses
// submissions and long-polled scrapes.
var httpLatencyBuckets = []float64{
	1e-4, 5e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 2.5, 10, 60,
}

// registerMetrics installs the serving-layer families on s.metrics. Called
// once from New, after the cache/admission/job state exists.
func (s *Server) registerMetrics() {
	reg := s.metrics
	reg.CounterFunc("plk_cache_hits_total",
		"Dataset cache digest hits (build skipped).",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("plk_cache_misses_total",
		"Dataset cache misses (full dataset build ran).",
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.CounterFunc("plk_cache_evictions_total",
		"Datasets evicted from the cache to meet the byte budget.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	reg.GaugeFunc("plk_cache_entries",
		"Datasets currently resident in the cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.GaugeFunc("plk_cache_bytes",
		"Estimated heap bytes of the resident datasets.",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	reg.CounterFunc("plk_admission_admitted_total",
		"Work items admitted past the per-tenant quota gate.",
		func() float64 { return float64(s.adm.Stats().Admitted) })
	reg.CounterFunc("plk_admission_rejected_total",
		"Work items rejected with 429 (quota and queue both full).",
		func() float64 { return float64(s.adm.Stats().Rejected) })
	reg.GaugeFunc("plk_admission_queue_depth",
		"Waiters currently parked in tenant admission queues.",
		func() float64 { return float64(s.adm.QueueDepth()) })
	reg.CounterFunc("plk_coalesce_executed_total",
		"Evaluate computations actually executed by the single-flight group.",
		func() float64 { p, _ := s.flights.Counters(); return float64(p) })
	reg.CounterFunc("plk_coalesce_joined_total",
		"Evaluate requests that joined an in-flight identical computation.",
		func() float64 { _, c := s.flights.Counters(); return float64(c) })
	reg.CounterFunc("plk_kernel_runs_total",
		"Evaluate kernel executions performed (coalesced duplicates share one).",
		func() float64 { return float64(s.kernelRuns.Load()) })
	reg.CounterFunc("plk_sse_dropped_events_total",
		"Progress events shed by bounded event hubs (ring aging plus slow-subscriber backpressure), summed over tracked analyses.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			var n int64
			for _, j := range s.jobs {
				n += j.hub.Dropped()
			}
			return float64(n)
		})
	reg.GaugeFunc("plk_analyses_active",
		"Analyses currently queued or running.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, j := range s.jobs {
				if st, _ := j.snapshot(); st == jobRunning || st == jobQueued {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("plk_draining",
		"1 while the daemon drains, 0 otherwise.",
		func() float64 {
			if s.isDraining() {
				return 1
			}
			return 0
		})
}

// statusWriter captures the response status for the request counter while
// forwarding everything else — including Flush, which the SSE endpoint
// requires — to the wrapped ResponseWriter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

// WriteHeader records the first explicit status.
func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying Flusher so instrumented SSE streams keep
// streaming (no-op when the transport cannot flush).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one route with the request latency histogram and the
// per-status request counter. The endpoint label is the route pattern, so
// cardinality is fixed by the route table, never by request paths.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	el := obs.Label{Key: "endpoint", Value: endpoint}
	lat := s.metrics.Histogram("plk_http_request_seconds",
		"HTTP request latency by endpoint (SSE streams count their full connection lifetime).",
		httpLatencyBuckets, el)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		lat.Observe(time.Since(start).Seconds())
		s.metrics.Counter("plk_http_requests_total",
			"HTTP requests served, by endpoint and status code.",
			el, obs.Label{Key: "code", Value: strconv.Itoa(sw.code)}).Inc()
	}
}

// registerPprof mounts the net/http/pprof handlers on the daemon's own mux
// (gated by Config.EnablePprof; the default-mux side effect of importing the
// package is irrelevant because plkd serves this mux, not the default one).
func registerPprof(m *http.ServeMux) {
	m.HandleFunc("/debug/pprof/", pprof.Index)
	m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("/debug/pprof/profile", pprof.Profile)
	m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
