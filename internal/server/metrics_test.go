package server

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"phylo"
)

// expositionLine matches one well-formed Prometheus text sample.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (NaN|[-+]?[0-9.eE+-]+|[-+]Inf)$`)

// scrapeMetrics fetches /metrics, checks every sample line is well-formed,
// and returns the body.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	return string(body)
}

// TestMetricsEndpoint drives a submit + evaluate through the daemon and
// asserts one /metrics scrape covers both the serving layer and the kernel
// runtime underneath it.
func TestMetricsEndpoint(t *testing.T) {
	_, hs := testServer(t, Config{Threads: 2, Steal: true, TenantInflight: 4})
	id := submit(t, hs.URL, tinyPhylip(t, 8, 128, 1))
	var er evaluateResponse
	if code := doJSON(t, "POST", hs.URL+"/v1/evaluate", evaluateRequest{Dataset: id, Seed: 42}, &er, nil); code != http.StatusOK {
		t.Fatalf("evaluate: HTTP %d", code)
	}

	body := scrapeMetrics(t, hs.URL)
	for _, family := range []string{
		"plk_http_requests_total",
		"plk_http_request_seconds_bucket",
		"plk_cache_misses_total",
		"plk_cache_bytes",
		"plk_admission_admitted_total",
		"plk_admission_queue_depth",
		"plk_coalesce_executed_total",
		"plk_kernel_runs_total",
		"plk_sse_dropped_events_total",
		// Kernel/runtime families reported through DatasetOptions.Metrics:
		"plk_regions_total",
		"plk_kernel_patterns_total",
		"plk_kernel_spans_total",
		"plk_steals_total",
		"plk_worker_busy_seconds_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("scrape missing family %s", family)
		}
	}
	// The evaluate must have moved the kernel-side counters.
	if !regexp.MustCompile(`plk_kernel_runs_total [1-9]`).MatchString(body) {
		t.Errorf("plk_kernel_runs_total did not advance:\n%s", body)
	}
	if !regexp.MustCompile(`plk_regions_total\{[^}]*\} [1-9]`).MatchString(body) {
		t.Errorf("plk_regions_total did not advance")
	}
}

// TestPprofGating checks /debug/pprof/ is absent by default and mounted
// under Config.EnablePprof.
func TestPprofGating(t *testing.T) {
	_, off := testServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: HTTP %d, want 404", resp.StatusCode)
	}
	_, on := testServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof on: HTTP %d, want 200", resp.StatusCode)
	}
}

// TestStatsEventsSection forces hub drops on a tracked job and asserts the
// /v1/stats "events" section surfaces them per hub (satellite: drop/gap
// accounting is externally observable, not just embedded in SSE payloads).
func TestStatsEventsSection(t *testing.T) {
	s, hs := testServer(t, Config{})
	hub := newEventHub(2)
	for i := 0; i < 5; i++ { // capacity 2 => 3 ring drops
		hub.Publish(phylo.ProgressEvent{Round: i + 1})
	}
	s.mu.Lock()
	s.jobs["an_test"] = &analysisJob{id: "an_test", hub: hub, state: jobDone}
	s.mu.Unlock()

	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Events eventStatsBody `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Events.DroppedTotal != 3 || body.Events.RingDropped != 3 {
		t.Fatalf("events section = %+v, want 3 ring drops", body.Events)
	}
	if st, ok := body.Events.Hubs["an_test"]; !ok || st.DroppedTotal != 3 {
		t.Fatalf("per-hub breakdown = %+v, want an_test with 3 drops", body.Events.Hubs)
	}

	// Subscriber-level drops are reported too, and distinguished from ring
	// aging: a full channel sheds its oldest queued event.
	_, cancel := hub.Subscribe()
	defer cancel()
	for i := 0; i < 6; i++ {
		hub.Publish(phylo.ProgressEvent{Round: 10 + i})
	}
	st := hub.DropStats()
	if st.SubscriberDropped <= 0 || st.Subscribers != 1 {
		t.Fatalf("DropStats after slow subscriber = %+v", st)
	}
	if st.DroppedTotal != st.RingDropped+st.SubscriberDropped {
		t.Fatalf("DroppedTotal %d != ring %d + sub %d", st.DroppedTotal, st.RingDropped, st.SubscriberDropped)
	}
}
