package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// This file is a miniature analysistest: fixtures live under
// testdata/src/<name> as complete packages, offending lines carry trailing
// `// want "regex"` comments, and runFixture copies the package into a
// throwaway module, loads it through the real loader, runs the analyzers,
// and requires an exact match between reported and expected diagnostics —
// every want must fire, and nothing else may. `// want+N "regex"` expects
// the diagnostic N lines below the comment, for cases where a trailing
// comment would change the analyzer's input (doc comments, allow reasons).

var wantRe = regexp.MustCompile(`//\s*want(\+\d+)?\s+"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` comment: file base name, line, message regex.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// runFixture loads testdata/src/<name> in a fresh module and checks the
// analyzers' diagnostics against the fixture's want comments.
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	srcDir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatalf("reading fixture %s: %v", name, err)
	}

	mod := t.TempDir()
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(mod, name)
	if err := os.Mkdir(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var expects []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(pkgDir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(strings.NewReader(string(data)))
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s/%s:%d: bad want regex %q: %v", name, e.Name(), line, m[2], err)
				}
				offset := 0
				if m[1] != "" {
					offset, _ = strconv.Atoi(m[1][1:])
				}
				expects = append(expects, expectation{file: e.Name(), line: line + offset, re: re})
			}
		}
	}

	pkgs, err := Load(mod, "./"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	for _, p := range pkgs {
		for _, e := range p.Errs {
			t.Errorf("fixture %s: load error: %v", name, e)
		}
	}
	diags := Run(pkgs, analyzers)

	matched := make([]bool, len(expects))
	for _, d := range diags {
		text := d.Analyzer + "(" + d.Rule + "): " + d.Message
		found := false
		for i, e := range expects {
			if !matched[i] && e.file == filepath.Base(d.Pos.Filename) && e.line == d.Pos.Line && e.re.MatchString(text) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fixture %s: unexpected diagnostic %s:%d: %s", name, filepath.Base(d.Pos.Filename), d.Pos.Line, text)
		}
	}
	for i, e := range expects {
		if !matched[i] {
			t.Errorf("fixture %s: expected diagnostic at %s:%d matching %q did not fire", name, e.file, e.line, e.re)
		}
	}
}

func TestDeterminismFixture(t *testing.T)      { runFixture(t, "det", Determinism) }
func TestHotpathFixture(t *testing.T)          { runFixture(t, "hot", Hotpath) }
func TestHolderDisciplineFixture(t *testing.T) { runFixture(t, "holder", HolderDiscipline) }
func TestRegionCtxFixture(t *testing.T)        { runFixture(t, "region", RegionCtx) }
func TestDocLintFixture(t *testing.T)          { runFixture(t, "doc", DocLint) }
func TestDirectivesFixture(t *testing.T)       { runFixture(t, "dirs", Directives) }
