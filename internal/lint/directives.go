package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// The annotation grammar. Directives are ordinary //-comment lines of the
// form //plk:<name>; Go tooling treats //word: lines as directives, so they
// never render in godoc. Where a directive appears decides its scope:
//
//	//plk:deterministic   package doc: every function in the package is a
//	                      deterministic scope. Function doc: that function.
//	//plk:hotpath         function doc: the body must stay allocation-free.
//	//plk:regions         package doc: cancellation checks are restricted
//	                      to //plk:regionboundary functions.
//	//plk:regionboundary  function doc: this function may consult ctx.
//	//plk:holder          type doc or struct-field doc/comment: the fields
//	                      (or that field) may only be accessed by methods
//	                      of the declaring type or code in its file.
//	//plk:documented      package doc: every exported identifier needs a
//	                      doc comment (doclint).
//	//plk:allow(rule) why line comment: waive `rule` on this line and the
//	                      next. Function doc: waive `rule` in the whole
//	                      body. The reason text is mandatory.
const (
	dirDeterministic  = "deterministic"
	dirHotpath        = "hotpath"
	dirRegions        = "regions"
	dirRegionBoundary = "regionboundary"
	dirHolder         = "holder"
	dirDocumented     = "documented"
)

// knownDirectives is the closed set the hygiene analyzer accepts.
var knownDirectives = map[string]bool{
	dirDeterministic:  true,
	dirHotpath:        true,
	dirRegions:        true,
	dirRegionBoundary: true,
	dirHolder:         true,
	dirDocumented:     true,
}

var (
	directiveRe = regexp.MustCompile(`^//plk:([a-z]+)(.*)$`)
	allowRe     = regexp.MustCompile(`^//plk:allow\(([a-z-]+)(?:\s*,\s*([^)]*))?\)\s*(.*)$`)
)

// allowSpan is one waiver: rule suppressed on lines [from, to] of file.
type allowSpan struct {
	file     string
	from, to int
	rule     string
	reason   string
}

// badDirective is a malformed //plk: comment (unknown name, missing allow
// reason); the Directives analyzer reports these.
type badDirective struct {
	pos token.Pos
	msg string
}

// directiveIndex is the per-package directive database built once at load.
type directiveIndex struct {
	pkgDirs map[string]bool
	allows  []allowSpan
	bad     []badDirective
}

// hasDirective reports whether a comment group contains //plk:<name>.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if m := directiveRe.FindStringSubmatch(c.Text); m != nil && m[1] == name && strings.TrimSpace(m[2]) == "" {
			return true
		}
	}
	return false
}

// pkgHas reports whether the package carries //plk:<name> in any file's
// package doc.
func (d *directiveIndex) pkgHas(name string) bool { return d.pkgDirs[name] }

// allowedAt reports whether a waiver for rule covers the position.
func (d *directiveIndex) allowedAt(pos token.Position, rule string) bool {
	for _, a := range d.allows {
		if a.rule == rule && a.file == pos.Filename && a.from <= pos.Line && pos.Line <= a.to {
			return true
		}
	}
	return false
}

// indexDirectives scans every comment in the package for plk: directives:
// package-scope directives from package docs, line- and function-scoped
// allow waivers, and malformed directives for the hygiene check.
func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	d := &directiveIndex{pkgDirs: make(map[string]bool)}
	for _, f := range files {
		if f.Doc != nil {
			for _, c := range f.Doc.List {
				if m := directiveRe.FindStringSubmatch(c.Text); m != nil {
					name := m[1]
					if name == "allow" {
						d.bad = append(d.bad, badDirective{c.Pos(), "plk:allow has no effect in a package doc comment"})
						continue
					}
					if !knownDirectives[name] {
						d.bad = append(d.bad, badDirective{c.Pos(), "unknown directive plk:" + name})
						continue
					}
					d.pkgDirs[name] = true
				}
			}
		}
		// Function-doc allows cover the whole body; every other comment's
		// allow covers its own line and the next (so a comment above the
		// offending statement and a trailing comment both work).
		funcDocs := make(map[*ast.CommentGroup]*ast.FuncDecl)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = fd
			}
		}
		for _, cg := range f.Comments {
			fd := funcDocs[cg]
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if m[1] != "allow" {
					if !knownDirectives[m[1]] && cg != f.Doc {
						d.bad = append(d.bad, badDirective{c.Pos(), "unknown directive plk:" + m[1]})
					}
					continue
				}
				am := allowRe.FindStringSubmatch(c.Text)
				if am == nil {
					d.bad = append(d.bad, badDirective{c.Pos(), "malformed plk:allow; want plk:allow(rule) reason"})
					continue
				}
				rule, reason := am[1], strings.TrimSpace(am[2])
				if reason == "" {
					reason = strings.TrimSpace(am[3])
				}
				if reason == "" {
					d.bad = append(d.bad, badDirective{c.Pos(), "plk:allow(" + rule + ") needs a reason"})
					continue
				}
				span := allowSpan{file: fset.Position(c.Pos()).Filename, rule: rule, reason: reason}
				if fd != nil {
					span.from = fset.Position(fd.Pos()).Line
					span.to = fset.Position(fd.End()).Line
				} else {
					line := fset.Position(c.Pos()).Line
					span.from, span.to = line, line+1
				}
				d.allows = append(d.allows, span)
			}
		}
	}
	return d
}

// Directives is the hygiene analyzer: it reports malformed plk: directives
// (unknown names, allow waivers without a reason), so annotation typos fail
// the gate instead of silently disabling a check.
var Directives = &Analyzer{
	Name: "directives",
	Doc:  "report malformed or unknown //plk: annotation directives",
	Run: func(pass *Pass) {
		for _, b := range pass.Pkg.directives.bad {
			pass.Reportf(b.pos, "syntax", "%s", b.msg)
		}
	},
}

// funcScope resolves whether a function is inside a named scope: either the
// package is annotated at package scope (pkgDir) or the function's own doc
// carries the directive.
func funcScope(pass *Pass, fd *ast.FuncDecl, pkgDir, funcDir string) bool {
	if pkgDir != "" && pass.Pkg.directives.pkgHas(pkgDir) {
		return true
	}
	return hasDirective(fd.Doc, funcDir)
}
