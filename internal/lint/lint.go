// Package lint is the repo's custom static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// analyzer shape (this module builds offline against the standard library
// only, so the x/tools framework is deliberately not imported) plus the
// repo-specific analyzers that turn the codebase's load-bearing conventions
// into machine-checked invariants:
//
//   - determinism: annotated scopes must not iterate maps, read the clock,
//     draw from the global math/rand source, or spawn goroutines — the
//     conventions behind bit-identical likelihoods across executors.
//   - hotpath: annotated per-pattern kernel and deque functions must stay
//     allocation- and indirection-free (no append/make/new, no slice or map
//     composite literals, no closures, no defer, no interface conversions,
//     no map or channel operations, no context plumbing).
//   - holderdiscipline: fields annotated as atomically published holders may
//     only be touched by the declaring type's methods (or the declaring
//     file), so rebuilt schedules are published exclusively through the
//     versioned Load/Store methods.
//   - regionctx: in packages annotated as region-structured, cancellation
//     may only be consulted by functions annotated as region boundaries,
//     never inside kernel spans.
//   - doclint: packages annotated as documented must carry doc comments on
//     every exported identifier (the PR 8 facade gate, folded in here).
//
// The analyzers are driven by cmd/plkvet (the repo's multichecker, a hard
// CI gate) and by analysistest-style fixture tests in this package. The
// sibling bounds-check-elimination gate (bce.go) is not an AST analyzer: it
// rebuilds internal/core with -d=ssa/check_bce and diffs the emitted
// bounds-check sites against the committed allowlist bce_allow.txt, so the
// fused kernels' bounds-check-free hot expressions are protected
// structurally rather than only by the benchmark floor.
//
// See DESIGN.md "Static analysis and enforced invariants" for the
// annotation grammar.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check over a type-checked package. It
// mirrors the x/tools go/analysis shape (Name, Doc, Run over a Pass) so the
// suite can migrate onto the real framework wholesale if the dependency
// ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow-waivers.
	Name string
	// Doc is the one-paragraph description plkvet prints with -help.
	Doc string
	// Run reports the analyzer's diagnostics for one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package

	diags *[]Diagnostic
}

// Fset returns the position set of the package under analysis.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the parsed syntax trees of the package under analysis.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// TypesInfo returns the type-checker facts for the package under analysis.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.TypesInfo }

// Reportf records one diagnostic at pos unless a plk:allow waiver for this
// analyzer's rule covers the position's line.
func (p *Pass) Reportf(pos token.Pos, rule string, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.directives.allowedAt(position, rule) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Rule:     rule,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: a position, the analyzer and rule that fired,
// and the human-readable message.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the analyzer that reported it.
	Analyzer string
	// Rule is the analyzer's sub-rule id (the name plk:allow waives).
	Rule string
	// Message is the finding text.
	Message string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s(%s): %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Rule, d.Message)
}

// Run applies every analyzer to every package and returns the combined
// diagnostics sorted by position. Packages that failed to load are skipped
// (the loader already surfaced their errors).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// All returns the full analyzer suite in the order plkvet runs it. The
// directives hygiene check runs first so an annotation typo fails loudly
// instead of silently disabling the check it meant to configure.
func All() []*Analyzer {
	return []*Analyzer{
		Directives,
		Determinism,
		Hotpath,
		HolderDiscipline,
		RegionCtx,
		DocLint,
	}
}
