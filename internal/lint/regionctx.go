package lint

import (
	"go/ast"
)

// RegionCtx enforces the cancellation-point convention in packages
// annotated //plk:regions: context state (ctx.Err, ctx.Done, ctx.Deadline)
// may only be consulted by functions annotated //plk:regionboundary — the
// round- and region-boundary hooks where the optimizers poll for
// cancellation. Consulting a context anywhere else (above all inside a
// kernel span) would either tear a region mid-flight or smuggle
// wall-clock-dependent control flow into the deterministic kernels. Passing
// a ctx through to a callee is fine; only reading its state is gated.
var RegionCtx = &Analyzer{
	Name: "regionctx",
	Doc:  "restrict ctx.Err/Done/Deadline in //plk:regions packages to //plk:regionboundary functions",
	Run:  runRegionCtx,
}

func runRegionCtx(pass *Pass) {
	if !pass.Pkg.directives.pkgHas(dirRegions) {
		return
	}
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasDirective(fd.Doc, dirRegionBoundary) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Err", "Done", "Deadline":
				default:
					return true
				}
				if t := info.TypeOf(sel.X); t != nil && isContext(t) {
					pass.Reportf(call.Pos(), "regionctx",
						"ctx.%s consulted outside a //plk:regionboundary function: cancellation is polled only at region boundaries",
						sel.Sel.Name)
				}
				return true
			})
		}
	}
}
