package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the package-level math/rand identifiers that build a
// locally seeded generator instead of drawing from the global source; they
// are exactly what deterministic code should be using.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// Determinism enforces the bit-reproducibility conventions in scopes
// annotated //plk:deterministic (package doc = every function, function doc
// = that function):
//
//   - maprange: no ranging over maps — Go randomizes iteration order, so a
//     map range feeding ordered output (JSON, Newick, reductions) differs
//     run to run. Sort the keys, or waive with plk:allow(maprange) when the
//     loop is provably order-free.
//   - globalrand: no draws from the global math/rand source (rand.Intn,
//     rand.Shuffle, ...); use a locally seeded *rand.Rand so results are a
//     pure function of the seed.
//   - timenow: no time.Now/time.Since — clock reads feeding results break
//     reproducibility. Timing attribution waives with plk:allow(timenow).
//   - gostmt: no goroutine launches — unordered concurrency inside a
//     deterministic scope is how floating-point reductions lose their fixed
//     order (regions go through parallel.Executor, which reduces partials
//     in fixed worker order master-side).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid map iteration, global math/rand, clock reads, and goroutine launches in //plk:deterministic scopes",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !funcScope(pass, fd, dirDeterministic, dirDeterministic) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					if t := info.TypeOf(n.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							pass.Reportf(n.Pos(), "maprange",
								"range over map in deterministic scope: iteration order is randomized; sort the keys")
						}
					}
				case *ast.GoStmt:
					pass.Reportf(n.Pos(), "gostmt",
						"goroutine launch in deterministic scope: issue parallel work through the executor's fixed-order regions")
				case *ast.SelectorExpr:
					checkDeterminismSelector(pass, info, n)
				case *ast.FuncLit:
					// Closures inside the scope inherit it (region bodies are
					// closures); keep descending.
					return true
				}
				return true
			})
		}
	}
}

// checkDeterminismSelector flags qualified uses of the global math/rand
// source and of the wall clock.
func checkDeterminismSelector(pass *Pass, info *types.Info, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	obj := info.Uses[sel.Sel]
	if obj == nil {
		return
	}
	if _, isType := obj.(*types.TypeName); isType {
		return // rand.Rand / rand.Source as type expressions are fine
	}
	switch pn.Imported().Path() {
	case "math/rand", "math/rand/v2":
		if !randConstructors[sel.Sel.Name] {
			pass.Reportf(sel.Pos(), "globalrand",
				"use of global math/rand source %s.%s in deterministic scope: draw from a locally seeded *rand.Rand",
				pn.Imported().Name(), sel.Sel.Name)
		}
	case "time":
		if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
			pass.Reportf(sel.Pos(), "timenow",
				"clock read time.%s in deterministic scope: results must be a pure function of the inputs", sel.Sel.Name)
		}
	}
}
