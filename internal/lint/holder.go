package lint

import (
	"go/ast"
	"go/types"
)

// holderTarget describes one annotated publication point: either a whole
// type (every field guarded) or a single struct field.
type holderTarget struct {
	owner    *types.TypeName // the declaring named type
	declFile string          // file holding the type declaration
}

// HolderDiscipline enforces the atomic-publication discipline of
// //plk:holder annotations: a field annotated plk:holder — or any field of
// a type annotated plk:holder — may only be accessed by methods of the
// declaring type or by code in the file that declares the type. Everyone
// else must go through the type's methods (Current/publish on
// ScheduleHolder, HolderFor/RebalanceMeasured on Shared), which is what
// makes schedule swaps race-free: sessions can only observe a rebuilt
// schedule through the versioned atomic load at their own region boundary,
// never by poking the slot directly.
var HolderDiscipline = &Analyzer{
	Name: "holderdiscipline",
	Doc:  "restrict //plk:holder fields to the declaring type's methods and file",
	Run:  runHolderDiscipline,
}

func runHolderDiscipline(pass *Pass) {
	info := pass.TypesInfo()
	fset := pass.Fset()

	guardedTypes := make(map[*types.TypeName]holderTarget) // plk:holder on the type
	guardedFields := make(map[*types.Var]holderTarget)     // plk:holder on a field
	fieldOwners := make(map[*types.Var]*types.TypeName)    // every struct field -> declaring type

	// Pass 1: collect annotations and field ownership from type declarations.
	for _, file := range pass.Files() {
		fname := fset.Position(file.Pos()).Filename
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, ok := info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				target := holderTarget{owner: tn, declFile: fname}
				if hasDirective(ts.Doc, dirHolder) || (ts.Doc == nil && hasDirective(gd.Doc, dirHolder)) {
					guardedTypes[tn] = target
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range st.Fields.List {
					annotated := hasDirective(f.Doc, dirHolder) || hasDirective(f.Comment, dirHolder)
					for _, name := range f.Names {
						fv, ok := info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						fieldOwners[fv] = tn
						if annotated {
							guardedFields[fv] = target
						}
					}
				}
			}
		}
	}
	if len(guardedTypes) == 0 && len(guardedFields) == 0 {
		return
	}

	// Pass 2: check every field selection against the discipline.
	for _, file := range pass.Files() {
		fname := fset.Position(file.Pos()).Filename
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := receiverTypeName(info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s := info.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal {
					return true
				}
				fv, ok := s.Obj().(*types.Var)
				if !ok {
					return true
				}
				target, guarded := guardedFields[fv]
				if !guarded {
					owner := fieldOwners[fv]
					if owner == nil {
						owner = namedTypeName(s.Recv())
					}
					if owner != nil {
						if t, ok := guardedTypes[owner]; ok {
							target, guarded = t, true
						}
					}
				}
				if !guarded {
					return true
				}
				if recv == target.owner || fname == target.declFile {
					return true
				}
				pass.Reportf(sel.Sel.Pos(), "holder",
					"direct access to holder field %s.%s outside its methods: go through the publishing/loading methods of %s",
					target.owner.Name(), fv.Name(), target.owner.Name())
				return true
			})
		}
	}
}

// receiverTypeName resolves a method's receiver to its named type (nil for
// plain functions).
func receiverTypeName(info *types.Info, fd *ast.FuncDecl) *types.TypeName {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	return namedTypeName(t)
}

// namedTypeName unwraps pointers and returns the named type's object.
func namedTypeName(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}
