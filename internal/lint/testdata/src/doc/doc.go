// Package doc is the doclint fixture.
//
//plk:documented
package doc

// Good is documented.
func Good() {}

func Bad() {} // want "no doc comment"

// wrong lead-in.
func Mislabeled() {} // want "should start with"

// T is documented.
type T struct {
	// A is documented.
	A int
	// want+2 "no doc comment"

	B int
}

// M is documented.
func (T) M() {}

func (T) N() {} // want "no doc comment"

// internal things need no docs.
type hidden struct{ x int }

func (hidden) m() {}

// Answer is documented.
const Answer = 42

const Bare = 1 // want "no doc comment"
