package holder

func poke(s *Slot) *int {
	return s.v.Load() // want "holder"
}

func pokeField(r *Registry) *Slot {
	_ = r.name          // unguarded field is fine
	return r.slots["x"] // want "holder"
}

func sanctioned(r *Registry) *Slot {
	return r.Get("x") // going through the accessor is fine
}
