// Package holder is the holderdiscipline fixture: Slot is guarded as a
// whole type, Registry guards a single field.
package holder

import "sync/atomic"

// Slot is an atomically published holder; every field is guarded.
//
//plk:holder
type Slot struct {
	v atomic.Pointer[int]
}

// Load is the sanctioned read path.
func (s *Slot) Load() *int { return s.v.Load() }

// Store is the sanctioned write path.
func (s *Slot) Store(p *int) { s.v.Store(p) }

// sameFile may poke the field: it lives in the declaring file.
func sameFile(s *Slot) *int { return s.v.Load() }

// Registry guards only its slots field.
type Registry struct {
	name  string
	slots map[string]*Slot //plk:holder
}

// Get is the sanctioned accessor.
func (r *Registry) Get(k string) *Slot { return r.slots[k] }
