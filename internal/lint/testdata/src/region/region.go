// Package region is the regionctx fixture: the package doc opts into the
// region-boundary cancellation discipline.
//
//plk:regions
package region

import "context"

// boundary is the sanctioned cancellation poll.
//
//plk:regionboundary
func boundary(ctx context.Context) bool { return ctx.Err() != nil }

func inner(ctx context.Context) error {
	if ctx.Err() != nil { // want "regionctx"
		return ctx.Err() // want "regionctx"
	}
	select {
	case <-ctx.Done(): // want "regionctx"
		return ctx.Err() // want "regionctx"
	default:
	}
	return run(ctx) // passing ctx through is fine
}

func run(ctx context.Context) error {
	if boundary(ctx) { // polling through the boundary helper is fine
		return nil
	}
	return nil
}
