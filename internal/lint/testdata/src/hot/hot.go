// Package hot is the hotpath-analyzer fixture: only functions annotated
// //plk:hotpath are checked.
package hot

import "context"

type boxer interface{ M() }

type impl struct{}

func (impl) M() {}

func sink(b boxer)        { b.M() }
func varSink(vs ...boxer) {}
func drain(ch chan int)   {}

// unchecked has no annotation, so anything goes.
func unchecked() []int {
	return append([]int{}, 1)
}

//plk:hotpath
func badCtx(ctx context.Context, xs []float64) float64 { // want "ctx"
	return xs[0]
}

//plk:hotpath
func badAlloc(xs []float64) []float64 {
	xs = append(xs, 1) // want "alloc"
	p := new(int)      // want "alloc"
	_ = p
	m := make([]int, 4) // want "alloc"
	_ = m
	s := []int{1, 2} // want "alloc"
	_ = s
	a := [2]int{1, 2} // fixed-size array literal stays on the stack
	_ = a
	return xs
}

//plk:hotpath
func badClosure(xs []float64) float64 {
	f := func() float64 { return xs[0] } // want "closure"
	return f()
}

//plk:hotpath
func badDefer(f func()) {
	defer f() // want "defer"
}

//plk:hotpath
func badConc(ch chan int) int {
	go drain(ch) // want "gostmt"
	ch <- 1      // want "chan"
	return <-ch  // want "chan"
}

//plk:hotpath
func badMap(m map[string]int) int {
	s := m["k"]           // want "map"
	for _, v := range m { // want "map"
		s += v
	}
	return s
}

//plk:hotpath
func badIface(i impl, bs []boxer) {
	_ = boxer(i) // want "iface"
	sink(i)      // want "iface"
	varSink(i)   // want "iface"
	var b boxer
	b = i // want "iface"
	b = nil
	varSink(bs...) // forwarding an existing slice does not box
	sink(b)        // passing an existing interface value does not box
}

// clean is a well-behaved kernel body: indexing, arithmetic, and method
// calls through an already-interface value.
//
//plk:hotpath
func clean(xs []float64, b boxer) float64 {
	b.M()
	s := 0.0
	for i := 0; i < len(xs); i++ {
		s += xs[i]
	}
	return s
}
