// Package dirs is the directive-hygiene fixture.
//
//plk:allow(maprange) pointless // want "no effect in a package doc"
package dirs

//plk:frobnicate // want "unknown directive"
func typo() {}

// want+2 "needs a reason"
//
//plk:allow(maprange)
func reasonless(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

//plk:allow(maprange // want "malformed"
func unclosed() {}

//plk:hotpath
func fine(xs []float64) float64 { return xs[0] }
