// Package det is the determinism-analyzer fixture: the package doc makes
// every function in it a deterministic scope.
//
//plk:deterministic
package det

import (
	"math/rand"
	"sort"
	"time"
)

func mapRange(m map[string]int) int {
	s := 0
	for _, v := range m { // want "maprange"
		s += v
	}
	return s
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "maprange"
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func waivedRange(m map[string]int) int {
	s := 0
	for _, v := range m { //plk:allow(maprange) commutative int sum for the fixture
		s += v
	}
	return s
}

func globalRand() int {
	r := rand.New(rand.NewSource(42)) // seeded constructor is the sanctioned form
	a := r.Intn(10)
	b := rand.Intn(10)                 // want "globalrand"
	rand.Shuffle(2, func(i, j int) {}) // want "globalrand"
	return a + b
}

func clock() time.Duration {
	t0 := time.Now()    // want "timenow"
	d := time.Since(t0) // want "timenow"
	return d
}

func waivedClock() time.Time {
	return time.Now() //plk:allow(timenow) fixture timing attribution
}

func spawn(ch chan int) int {
	go send(ch) // want "gostmt"
	return <-ch
}

func send(ch chan int) { ch <- 1 }
