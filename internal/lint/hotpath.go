package lint

import (
	"go/ast"
	"go/types"
)

// Hotpath enforces the allocation- and indirection-free discipline of
// functions annotated //plk:hotpath — the per-pattern kernel bodies and the
// steal-deque operations, which run millions of times per traversal and
// must never touch the allocator or the scheduler:
//
//   - alloc: no append/make/new and no slice- or map-typed composite
//     literals (heap-escaping composites; fixed-size array literals stay on
//     the stack and pass).
//   - closure: no func literals — a capturing closure is a heap allocation
//     and an indirect call in the pattern loop.
//   - defer: no defer — deferred frames cost on every call.
//   - gostmt / chan: no goroutine launches, channel operations, or selects;
//     synchronization belongs to the executor and the deque CAS loops.
//   - map: no map indexing or iteration — kernels address precomputed
//     dense slices through the layout strides.
//   - iface: no interface conversions, explicit or implicit (arguments,
//     assignments) — boxing allocates and the dynamic dispatch defeats the
//     bounds-check-elimination the fused kernels rely on. Calling methods
//     on an already-interface value (the KernelBackend seam) is fine.
//   - ctx: no context.Context parameters — cancellation is polled at
//     region boundaries only, never inside kernel spans.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocation, closures, defer, map/chan ops, and interface conversions in //plk:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) {
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasDirective(fd.Doc, dirHotpath) {
				continue
			}
			if fd.Type.Params != nil {
				for _, p := range fd.Type.Params.List {
					if t := info.TypeOf(p.Type); t != nil && isContext(t) {
						pass.Reportf(p.Pos(), "ctx",
							"hot path takes a context.Context: cancellation is polled at region boundaries, never inside kernel spans")
					}
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkHotpathCall(pass, info, n)
				case *ast.CompositeLit:
					if t := info.TypeOf(n); t != nil {
						switch t.Underlying().(type) {
						case *types.Slice, *types.Map:
							pass.Reportf(n.Pos(), "alloc",
								"composite %s literal allocates in a hot path", kindName(t))
						}
					}
				case *ast.FuncLit:
					pass.Reportf(n.Pos(), "closure", "func literal in a hot path: closures allocate and call indirectly")
					return false
				case *ast.DeferStmt:
					pass.Reportf(n.Pos(), "defer", "defer in a hot path costs on every call")
				case *ast.GoStmt:
					pass.Reportf(n.Pos(), "gostmt", "goroutine launch in a hot path")
				case *ast.SendStmt:
					pass.Reportf(n.Pos(), "chan", "channel send in a hot path")
				case *ast.SelectStmt:
					pass.Reportf(n.Pos(), "chan", "select in a hot path")
				case *ast.UnaryExpr:
					if n.Op.String() == "<-" {
						pass.Reportf(n.Pos(), "chan", "channel receive in a hot path")
					}
				case *ast.IndexExpr:
					if t := info.TypeOf(n.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							pass.Reportf(n.Pos(), "map", "map access in a hot path: use a dense slice indexed through the layout")
						}
					}
				case *ast.RangeStmt:
					if t := info.TypeOf(n.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							pass.Reportf(n.Pos(), "map", "map iteration in a hot path")
						}
					}
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						if len(n.Lhs) != len(n.Rhs) {
							break
						}
						checkIfaceAssign(pass, info, n.Lhs[i], rhs)
					}
				}
				return true
			})
		}
	}
}

// checkHotpathCall flags allocating builtins, explicit interface
// conversions, and implicit interface conversions at call boundaries.
func checkHotpathCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	// Allocating builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "make", "new":
				pass.Reportf(call.Pos(), "alloc", "%s in a hot path allocates", b.Name())
			}
			return
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x): flag only conversions *to* an interface
		// from a concrete type (boxing).
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) {
				pass.Reportf(call.Pos(), "iface",
					"conversion to interface %s boxes its operand in a hot path", types.TypeString(tv.Type, nil))
			}
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if at := info.TypeOf(arg); at != nil && !types.IsInterface(at) && !isUntypedNil(at) {
			pass.Reportf(arg.Pos(), "iface",
				"argument boxes %s into interface %s in a hot path", types.TypeString(at, nil), types.TypeString(pt, nil))
		}
	}
}

// checkIfaceAssign flags assignments that box a concrete value into an
// interface-typed location.
func checkIfaceAssign(pass *Pass, info *types.Info, lhs, rhs ast.Expr) {
	lt := info.TypeOf(lhs)
	rt := info.TypeOf(rhs)
	if lt == nil || rt == nil {
		return
	}
	if types.IsInterface(lt) && !types.IsInterface(rt) && !isUntypedNil(rt) {
		pass.Reportf(rhs.Pos(), "iface",
			"assignment boxes %s into interface %s in a hot path", types.TypeString(rt, nil), types.TypeString(lt, nil))
	}
}

// isUntypedNil reports whether t is the type of an untyped nil literal.
func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	return types.TypeString(t, nil) == "context.Context"
}

// kindName names a composite's kind for diagnostics.
func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return types.TypeString(t, nil)
}
