package lint

import (
	"testing"
)

// TestRepoInvariants runs the full analyzer suite plus the BCE gate over
// the repository itself, so a plain `go test ./...` enforces the same
// invariants CI's plkvet step does. Skipped under -short: it type-checks
// every package and rebuilds internal/core with the check_bce flag.
func TestRepoInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, e := range p.Errs {
			t.Errorf("loading %s: %v", p.ImportPath, e)
		}
	}
	for _, d := range Run(pkgs, All()) {
		t.Error(d.String())
	}

	res, err := CheckBCE("../..", "./internal/core", "bce_allow.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Problems {
		t.Errorf("bce: %s", p)
	}
}
