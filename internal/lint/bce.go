package lint

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// The bounds-check-elimination gate. The fused 4-state kernels earn their
// ~2.15x by keeping the per-pattern hot expressions free of bounds checks
// (exact three-index subslices, contiguous category planes); the benchmark
// floor would eventually notice a regression, but only noisily and only on
// the bench host. This gate protects the property structurally: it rebuilds
// a package with the compiler's -d=ssa/check_bce diagnostic, counts the
// emitted "Found IsInBounds"/"Found IsSliceInBounds" sites per file, and
// fails when any file exceeds its ceiling in the committed allowlist
// (internal/lint/bce_allow.txt). A file that *gains* a bounds check in a
// hot expression jumps past its ceiling immediately; legitimate changes
// refresh the allowlist with `go run ./cmd/plkvet -bce-rewrite` and review
// the diff like any other.
//
// Counts are a property of the compiler as well as the source, so each
// entry is either `strict` — enforced under every toolchain (the fused
// kernel files, whose subslice-site counts are structural) — or plain,
// enforced only under the Go minor version recorded in the allowlist
// header (generic-path counts may shift between compiler releases).

// bceLine matches one compiler bounds-check diagnostic.
var bceLine = regexp.MustCompile(`^(\S+\.go):(\d+):(\d+): Found Is(Slice)?InBounds$`)

// BCEResult is the outcome of one bounds-check-elimination gate run.
type BCEResult struct {
	// Sites counts emitted bounds-check sites per module-relative file.
	Sites map[string]int
	// Problems are gate violations; a non-empty list fails plkvet/CI.
	Problems []string
	// Notes are informational (ceiling slack, version-skipped entries).
	Notes []string
}

// bceAllow is one parsed allowlist entry.
type bceAllow struct {
	file   string
	max    int
	strict bool
}

// CheckBCE rebuilds pkg (an import path or ./-relative pattern) inside the
// module at modDir with -d=ssa/check_bce and compares the emitted
// bounds-check sites against the allowlist at allowPath.
func CheckBCE(modDir, pkg, allowPath string) (*BCEResult, error) {
	allows, allowGo, err := readBCEAllowlist(allowPath)
	if err != nil {
		return nil, err
	}
	sites, err := bceSites(modDir, pkg)
	if err != nil {
		return nil, err
	}
	res := &BCEResult{Sites: sites}
	sameToolchain := allowGo == "" || allowGo == goMinor(runtime.Version())

	files := make([]string, 0, len(sites))
	for f := range sites {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		n := sites[f]
		a, ok := allows[f]
		if !ok {
			res.Problems = append(res.Problems,
				fmt.Sprintf("%s: %d bounds-check sites but no allowlist entry in %s (add one deliberately or eliminate the checks)", f, n, allowPath))
			continue
		}
		switch {
		case n > a.max && (a.strict || sameToolchain):
			res.Problems = append(res.Problems,
				fmt.Sprintf("%s: %d bounds-check sites, allowlist ceiling is %d — a hot expression regained its bounds check", f, n, a.max))
		case n > a.max:
			res.Notes = append(res.Notes,
				fmt.Sprintf("%s: %d sites over ceiling %d ignored (allowlist was generated with go%s, running %s)", f, n, a.max, allowGo, runtime.Version()))
		case n < a.max:
			res.Notes = append(res.Notes,
				fmt.Sprintf("%s: %d sites, ceiling %d — tighten with -bce-rewrite", f, n, a.max))
		}
	}
	return res, nil
}

// RewriteBCEAllowlist regenerates the allowlist at allowPath from the
// current compiler output, preserving the strict markers of existing
// entries (files newly gaining checks default to non-strict).
func RewriteBCEAllowlist(modDir, pkg, allowPath string) error {
	strict := make(map[string]bool)
	if prev, _, err := readBCEAllowlist(allowPath); err == nil {
		for f, a := range prev {
			strict[f] = a.strict
		}
	}
	sites, err := bceSites(modDir, pkg)
	if err != nil {
		return err
	}
	files := make([]string, 0, len(sites))
	for f := range sites {
		files = append(files, f)
	}
	sort.Strings(files)
	var b strings.Builder
	b.WriteString("# plkvet bounds-check-elimination allowlist: per-file ceilings on the\n")
	b.WriteString("# bounds-check sites `go build -gcflags=-d=ssa/check_bce` reports.\n")
	b.WriteString("# `strict` entries are enforced under every toolchain; plain entries\n")
	b.WriteString("# only under the generating Go minor version below (generic-path counts\n")
	b.WriteString("# may shift between compiler releases).\n")
	b.WriteString("# Refresh deliberately with: go run ./cmd/plkvet -bce-rewrite\n")
	fmt.Fprintf(&b, "#go %s\n", goMinor(runtime.Version()))
	for _, f := range files {
		fmt.Fprintf(&b, "%s %d", f, sites[f])
		if strict[f] {
			b.WriteString(" strict")
		}
		b.WriteString("\n")
	}
	return os.WriteFile(allowPath, []byte(b.String()), 0o644)
}

// bceSites compiles pkg with the check_bce debug flag and returns the
// per-file count of emitted bounds-check sites.
func bceSites(modDir, pkg string) (map[string]int, error) {
	importPath, err := goOutput(modDir, "list", pkg)
	if err != nil {
		return nil, fmt.Errorf("lint: resolving %s: %v", pkg, err)
	}
	importPath = strings.TrimSpace(importPath)
	cmd := exec.Command("go", "build", "-gcflags="+importPath+"=-d=ssa/check_bce", pkg)
	cmd.Dir = modDir
	var errb bytes.Buffer
	cmd.Stderr = &errb
	// The debug flag makes the compile uncacheable, so the diagnostics are
	// emitted on every run; a build error still fails here.
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go build %s: %v\n%s", pkg, err, errb.String())
	}
	sites := make(map[string]int)
	for _, line := range strings.Split(errb.String(), "\n") {
		if m := bceLine.FindStringSubmatch(strings.TrimSpace(line)); m != nil {
			sites[m[1]]++
		}
	}
	return sites, nil
}

// readBCEAllowlist parses the allowlist: one `file max [strict]` entry per
// line, `#go <minor>` recording the generating toolchain.
func readBCEAllowlist(path string) (map[string]bceAllow, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	allows := make(map[string]bceAllow)
	goVer := ""
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "#go "); ok {
				goVer = strings.TrimSpace(rest)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 || (len(fields) == 3 && fields[2] != "strict") {
			return nil, "", fmt.Errorf("lint: %s:%d: malformed allowlist line %q (want: file max [strict])", path, i+1, line)
		}
		max, err := strconv.Atoi(fields[1])
		if err != nil || max < 0 {
			return nil, "", fmt.Errorf("lint: %s:%d: bad ceiling in %q", path, i+1, line)
		}
		allows[fields[0]] = bceAllow{file: fields[0], max: max, strict: len(fields) == 3}
	}
	return allows, goVer, nil
}

// goOutput runs the go tool in dir and returns stdout.
func goOutput(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	return out.String(), nil
}

// goMinor reduces "go1.24.0" to "1.24".
func goMinor(v string) string {
	v = strings.TrimPrefix(v, "go")
	parts := strings.Split(v, ".")
	if len(parts) >= 2 {
		return parts[0] + "." + parts[1]
	}
	return v
}
