package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DocLint is the missing-doc gate for packages annotated //plk:documented
// (the public phylo facade): every exported identifier — functions, methods
// on exported types, types, constants, variables, and exported struct
// fields — must carry a doc comment, and top-level doc comments must start
// with the identifier's name (the revive/golint "exported" convention).
// This is the PR 8 go/parser doc lint folded into the analyzer suite; the
// thin doclint_test.go shim in the facade package keeps it reachable
// through plain `go test .` as well.
var DocLint = &Analyzer{
	Name: "doclint",
	Doc:  "require doc comments on every exported identifier of //plk:documented packages",
	Run:  runDocLint,
}

func runDocLint(pass *Pass) {
	if !pass.Pkg.directives.pkgHas(dirDocumented) {
		return
	}
	// needDoc flags a missing comment; when the comment exists it must lead
	// with the identifier so godoc reads as prose ("Foo does ...").
	needDoc := func(name string, doc *ast.CommentGroup, pos token.Pos) {
		if !ast.IsExported(name) {
			return
		}
		if doc == nil || strings.TrimSpace(doc.Text()) == "" {
			pass.Reportf(pos, "doc", "exported %s has no doc comment", name)
			return
		}
		first := strings.Fields(doc.Text())[0]
		if !strings.HasPrefix(first, name) && first != "Deprecated:" && first != "A" && first != "An" && first != "The" {
			pass.Reportf(pos, "doc", "doc comment for %s should start with %q, got %q", name, name, first)
		}
	}

	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				// Methods on unexported receivers are not part of godoc.
				if d.Recv != nil && !exportedRecv(d.Recv) {
					continue
				}
				needDoc(d.Name.Name, d.Doc, d.Pos())
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						doc := s.Doc
						if doc == nil {
							doc = d.Doc // "type Foo ..." with the comment on the decl
						}
						needDoc(s.Name.Name, doc, s.Pos())
						if st, ok := s.Type.(*ast.StructType); ok && ast.IsExported(s.Name.Name) {
							for _, f := range st.Fields.List {
								for _, fn := range f.Names {
									if ast.IsExported(fn.Name) && f.Doc == nil && f.Comment == nil {
										pass.Reportf(fn.Pos(), "doc", "exported field %s.%s has no doc comment", s.Name.Name, fn.Name)
									}
								}
							}
						}
					case *ast.ValueSpec:
						doc := s.Doc
						if doc == nil {
							doc = d.Doc
						}
						for _, n := range s.Names {
							if !ast.IsExported(n.Name) {
								continue
							}
							if doc == nil || strings.TrimSpace(doc.Text()) == "" {
								pass.Reportf(n.Pos(), "doc", "exported %s %s has no doc comment", declKind(d.Tok), n.Name)
							}
						}
					}
				}
			}
		}
	}
}

// exportedRecv reports whether a method's receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (Foo[T]) unwrap to the index expression's base.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && ast.IsExported(id.Name)
}

// declKind names a GenDecl token for diagnostics.
func declKind(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "constant"
	case token.VAR:
		return "variable"
	}
	return tok.String()
}
