package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, and type-checked package — the unit the
// analyzers run over. Test files are not loaded: the invariants the suite
// enforces live in production code, and fixtures carry their own packages.
type Package struct {
	// ImportPath is the package's import path (e.g. phylo/internal/core).
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Fset maps every parsed position (shared across the load).
	Fset *token.FileSet
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package object (nil when checking failed).
	Types *types.Package
	// TypesInfo records expression types, uses, defs, and selections.
	TypesInfo *types.Info
	// Errs collects parse and type errors (load keeps going; plkvet fails).
	Errs []error

	directives *directiveIndex
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates, parses, and type-checks the packages matching patterns
// inside the module rooted at (or containing) dir. It is a minimal,
// stdlib-only stand-in for golang.org/x/tools/go/packages: `go list -export
// -deps` supplies the file lists plus compiled export data for every
// dependency, the dependencies are imported from that export data, and only
// the matched packages themselves are type-checked from source. The loader
// therefore needs no network and no third-party code, at the price of
// shelling out to the go tool once per call.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(&out)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("lint: no packages match %s", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	// The gc importer reads the export data `go list -export` just compiled,
	// so dependencies (including the standard library) import instantly and
	// only the target packages pay for a source-level type check.
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range targets {
		pkg := &Package{ImportPath: lp.ImportPath, Dir: lp.Dir, Fset: fset}
		if lp.Error != nil {
			pkg.Errs = append(pkg.Errs, errors.New(lp.Error.Err))
		}
		if len(lp.CgoFiles) > 0 {
			pkg.Errs = append(pkg.Errs, fmt.Errorf("lint: %s uses cgo, which the loader does not support", lp.ImportPath))
			pkgs = append(pkgs, pkg)
			continue
		}
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				pkg.Errs = append(pkg.Errs, err)
				continue
			}
			pkg.Files = append(pkg.Files, f)
		}
		if len(pkg.Files) == 0 {
			pkgs = append(pkgs, pkg)
			continue
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.Errs = append(pkg.Errs, err) },
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, pkg.Files, info)
		if err != nil && len(pkg.Errs) == 0 {
			pkg.Errs = append(pkg.Errs, err)
		}
		pkg.Types = tpkg
		pkg.TypesInfo = info
		pkg.directives = indexDirectives(fset, pkg.Files)
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
