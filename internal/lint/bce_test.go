package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// bceFixture is a deliberately de-optimized kernel: a[i] under a
// data-dependent index the compiler cannot prove in bounds, so the
// check_bce build always reports at least one site for it.
const bceFixture = `package k

// Gather sums a at data-dependent indices; the a[i] bounds check cannot be
// eliminated.
func Gather(a []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += a[i]
	}
	return s
}
`

// writeBCEModule lays out a throwaway module with the fixture kernel and
// returns its root.
func writeBCEModule(t *testing.T) string {
	t.Helper()
	mod := t.TempDir()
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(mod, "k"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mod, "k", "k.go"), []byte(bceFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestBCEGate(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds a package with the compiler's check_bce flag")
	}
	mod := writeBCEModule(t)
	allow := filepath.Join(mod, "bce_allow.txt")

	// A rewrite followed by a check is always clean: the ceilings match the
	// compiler output that generated them.
	if err := RewriteBCEAllowlist(mod, "./k", allow); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	res, err := CheckBCE(mod, "./k", allow)
	if err != nil {
		t.Fatalf("check after rewrite: %v", err)
	}
	if len(res.Problems) != 0 {
		t.Fatalf("fresh allowlist reports problems: %v", res.Problems)
	}
	if res.Sites["k/k.go"] == 0 {
		t.Fatalf("fixture kernel reported no bounds-check sites: %v", res.Sites)
	}

	// Tightening the ceiling to zero must fail the gate: this is the
	// "reintroduced bounds check" regression the gate exists for. The strict
	// marker makes the entry toolchain-independent.
	if err := os.WriteFile(allow, []byte("#go 1.22\nk/k.go 0 strict\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = CheckBCE(mod, "./k", allow)
	if err != nil {
		t.Fatalf("check against zero ceiling: %v", err)
	}
	if len(res.Problems) != 1 || !strings.Contains(res.Problems[0], "regained its bounds check") {
		t.Fatalf("zero-ceiling check: want one over-ceiling problem, got %v", res.Problems)
	}

	// A file with sites but no entry is always a problem, strict or not.
	if err := os.WriteFile(allow, []byte("#go 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = CheckBCE(mod, "./k", allow)
	if err != nil {
		t.Fatalf("check against empty allowlist: %v", err)
	}
	if len(res.Problems) != 1 || !strings.Contains(res.Problems[0], "no allowlist entry") {
		t.Fatalf("missing-entry check: want one problem, got %v", res.Problems)
	}

	// A non-strict entry generated under a different toolchain minor is
	// advisory, not binding: over-ceiling demotes to a note.
	if err := os.WriteFile(allow, []byte("#go 1.2\nk/k.go 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = CheckBCE(mod, "./k", allow)
	if err != nil {
		t.Fatalf("check against stale-toolchain allowlist: %v", err)
	}
	if len(res.Problems) != 0 {
		t.Fatalf("stale non-strict entry should not bind, got %v", res.Problems)
	}
	if len(res.Notes) == 0 {
		t.Fatal("stale non-strict over-ceiling should at least leave a note")
	}
}

func TestReadBCEAllowlist(t *testing.T) {
	path := filepath.Join(t.TempDir(), "allow.txt")
	if err := os.WriteFile(path, []byte("# header\n#go 1.24\na.go 3\nb.go 5 strict\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	allows, goVer, err := readBCEAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	if goVer != "1.24" {
		t.Fatalf("goVer = %q, want 1.24", goVer)
	}
	if a := allows["a.go"]; a.max != 3 || a.strict {
		t.Fatalf("a.go = %+v", a)
	}
	if b := allows["b.go"]; b.max != 5 || !b.strict {
		t.Fatalf("b.go = %+v", b)
	}

	for _, bad := range []string{"a.go\n", "a.go x\n", "a.go 3 lax\n", "a.go -1\n"} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := readBCEAllowlist(path); err == nil {
			t.Errorf("allowlist %q parsed without error", strings.TrimSpace(bad))
		}
	}
}

func TestGoMinor(t *testing.T) {
	for in, want := range map[string]string{
		"go1.24.0": "1.24",
		"go1.22":   "1.22",
		"devel":    "devel",
	} {
		if got := goMinor(in); got != want {
			t.Errorf("goMinor(%q) = %q, want %q", in, got, want)
		}
	}
}
