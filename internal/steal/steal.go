// Package steal is the intra-region work-stealing runtime: the layer that
// bounds tail latency *inside* a synchronization region, where the
// precomputed-assignment model (internal/schedule) cannot help. A schedule —
// however well packed between regions — fixes each worker's share before the
// region starts; a worker whose share turns out cheap (mispriced costs, a
// masked partition, cache luck) idles at the barrier while the slowest worker
// finishes alone. This package slices every worker's share into cache-line-
// aligned chunks (schedule.ChunkRuns), loads them into one lock-free deque
// per worker, lets owners pop LIFO from the bottom, and lets a drained
// worker steal the largest remaining half of the deque of the victim with
// the highest remaining-cost estimate. The static schedule stays the
// locality prior (every chunk starts on its scheduled owner); stealing only
// redistributes the residual the pack mispriced.
//
// Correctness is structural, not probabilistic: chunks write disjoint
// pattern ranges, every chunk is claimed exactly once (a single CAS moves
// deque bounds, so a chunk range changes hands atomically), and reductions
// over chunk results are performed by the engine in fixed chunk-id order —
// so likelihoods and derivatives are bit-for-bit identical whichever workers
// end up executing which chunks, stealing on or off, pool or serial executor
// (see the determinism argument in DESIGN.md).
//
// Serial executors (Sim, Sequential, a degraded pool session) run their T
// virtual workers one after another on a single goroutine; there a worker
// never waits at a barrier, so there is no tail latency to absorb, and
// "stealing" would just mean virtual worker 0 swallowing work that virtual
// worker w > 0 was never going to idle over. Serial mode therefore hands
// every worker exactly its own chunks — which, by the fixed-order reduction,
// produces bit-identical results to a concurrent run with stealing.
package steal

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"phylo/internal/parallel"
	"phylo/internal/schedule"
)

// DefaultMinChunk is the default minimum chunk size in patterns. It is chosen
// to amortize tip-table locality: the kernels build a tip lookup table only
// for work units of at least 2*codes patterns (32 for DNA, 46 for AA), so a
// 64-pattern floor keeps chunk-sized work units on the specialized fast path,
// and it spans four or more cache lines of every per-pattern array the
// kernels touch.
const DefaultMinChunk = 64

// Deque-state packing: one 64-bit word per deque holds an epoch counter and
// the [top, bottom) bounds of the live chunk-id window, so owner pops
// (bottom--), half-steals (top += k), and re-arms (epoch++, fresh bounds) are
// each a single compare-and-swap. The epoch changes on every re-arm, which
// defeats ABA: a thief that read stale bounds can never CAS them onto a
// re-armed deque.
const (
	idxBits  = 20
	idxMask  = 1<<idxBits - 1
	maxIndex = idxMask
	// MaxChunks bounds a layout's chunk count so indices fit the packing.
	MaxChunks = maxIndex
)

func packState(epoch uint64, top, bottom int) uint64 {
	return epoch<<(2*idxBits) | uint64(top)<<idxBits | uint64(bottom)
}

func unpackState(s uint64) (epoch uint64, top, bottom int) {
	return s >> (2 * idxBits), int(s >> idxBits & idxMask), int(s & idxMask)
}

// Chunk is one unit of stealable work: a strided sub-run of one span's
// (partition's) pattern assignment, small enough to migrate cheaply and large
// enough to amortize per-span kernel setup. Lo/Hi/Step follow schedule.Run
// semantics; Owner is the worker the schedule assigned the range to (the
// deque it is loaded into); Cost is the estimated total cost under the
// schedule's span pricing, used only for victim selection.
type Chunk struct {
	Span         int
	Lo, Hi, Step int
	Owner        int
	Cost         float64
}

// Patterns returns the chunk's pattern count.
func (c Chunk) Patterns() int {
	if c.Hi <= c.Lo {
		return 0
	}
	return (c.Hi - c.Lo + c.Step - 1) / c.Step
}

// Run returns the chunk's pattern range as a schedule.Run for the kernels.
func (c Chunk) Run() schedule.Run { return schedule.Run{Lo: c.Lo, Hi: c.Hi, Step: c.Step} }

// Layout is the immutable chunk decomposition of one schedule at one minimum
// chunk size. Chunk ids ascend by (span, owner, position); that id order is
// the engine's fixed reduction order, and it is identical however the chunks
// are later distributed, which is what makes stolen-work reductions
// deterministic. A layout is cheap to build (O(patterns/minChunk)) and is
// rebuilt whenever a session pins a rebuilt (rebalanced) schedule.
type Layout struct {
	chunks   []Chunk
	byWorker [][]int32 // chunk ids per owner, ascending
	threads  int
	minChunk int
}

// NewLayout chunks a schedule. minChunk < 1 selects DefaultMinChunk; if the
// resulting chunk count would overflow the deque-state packing (MaxChunks),
// the chunk size is doubled until it fits.
func NewLayout(s *schedule.Schedule, minChunk int) *Layout {
	if minChunk < 1 {
		minChunk = DefaultMinChunk
	}
	for {
		l := buildLayout(s, minChunk)
		if len(l.chunks) <= MaxChunks {
			return l
		}
		minChunk *= 2
	}
}

func buildLayout(s *schedule.Schedule, minChunk int) *Layout {
	t := s.Threads()
	l := &Layout{threads: t, minChunk: minChunk, byWorker: make([][]int32, t)}
	for sp := 0; sp < s.NumSpans(); sp++ {
		cost := s.Span(sp).Cost
		for w := 0; w < t; w++ {
			for _, r := range s.ChunkRuns(w, sp, minChunk) {
				id := len(l.chunks)
				l.chunks = append(l.chunks, Chunk{
					Span: sp, Lo: r.Lo, Hi: r.Hi, Step: r.Step,
					Owner: w, Cost: float64(r.Len()) * cost,
				})
				l.byWorker[w] = append(l.byWorker[w], int32(id))
			}
		}
	}
	return l
}

// NumChunks returns the total chunk count (the length of the engine's
// per-chunk partial-sum buffers).
func (l *Layout) NumChunks() int { return len(l.chunks) }

// Chunk returns chunk id's metadata.
func (l *Layout) Chunk(id int) Chunk { return l.chunks[id] }

// MinChunk returns the (possibly overflow-adjusted) minimum chunk size.
func (l *Layout) MinChunk() int { return l.minChunk }

// Threads returns the worker count the layout was built for.
func (l *Layout) Threads() int { return l.threads }

// deque is one worker's lock-free chunk deque: a packed epoch/top/bottom
// state word over a backing array of chunk ids. The owner pops from the
// bottom, thieves advance the top; both are CAS loops on state. The entry
// array is written only while the deque is observably empty (arming) or
// before the region starts, and entries are accessed atomically so a thief
// reading bounds that a concurrent re-arm invalidates sees untorn (if stale)
// values and then fails its epoch-checked CAS. remaining tracks a float64
// cost estimate of the live window for victim selection; it is advisory and
// may drift a chunk behind the state word.
type deque struct {
	state     atomic.Uint64
	remaining atomic.Uint64 // float64 bits
	_         [112]byte     // pad to two cache lines against false sharing
}

func (d *deque) remainingCost() float64 { return math.Float64frombits(d.remaining.Load()) }

func (d *deque) addRemaining(x float64) {
	for {
		old := d.remaining.Load()
		if d.remaining.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
			return
		}
	}
}

// Runtime is the per-session stealing state: one deque per worker over the
// current layout, the per-step re-arm barrier, and the load/quiesce
// lifecycle. A Runtime belongs to exactly one session engine; the master
// (session goroutine) calls Load before issuing a region and Finish after
// its barrier, workers call Next/NextStep from inside the region closure.
type Runtime struct {
	layout *Layout
	deques []deque
	arrs   [][]atomic.Int32 // per worker: deque backing array (chunk ids)

	// loaded is the per-worker chunk-id list of the current region (the
	// layout's per-owner ids filtered by the region's active-span mask),
	// ascending; deques are armed from it, and serial workers iterate it
	// directly through cursors.
	loaded    [][]int32
	serialCur []int

	barrier  stepBarrier
	stealing atomic.Bool
	inRegion atomic.Bool
	steps    atomic.Int64 // NextStep barrier passages (observability)
}

// NewRuntime builds the stealing runtime for a layout with thieving enabled.
func NewRuntime(l *Layout) *Runtime {
	rt := &Runtime{}
	rt.stealing.Store(true)
	rt.Install(l)
	return rt
}

// Layout returns the currently installed chunk layout.
func (rt *Runtime) Layout() *Layout { return rt.layout }

// SetStealing toggles thieving. With stealing off, the chunked execution
// path is unchanged — workers still drain their own deques chunk by chunk and
// reductions still run in fixed chunk order — so results are bit-for-bit
// identical either way; only idle workers stop absorbing others' backlogs.
// Must not be called while a region is in flight.
func (rt *Runtime) SetStealing(on bool) { rt.stealing.Store(on) }

// Stealing reports whether thieving is enabled.
func (rt *Runtime) Stealing() bool { return rt.stealing.Load() }

// Steps reports how many intra-region step re-arms the runtime has performed
// (concurrent executors only); a traversal of n steps contributes n-1.
func (rt *Runtime) Steps() int64 { return rt.steps.Load() }

// maxStealBatch caps one steal's chunk count (and thereby the only way a
// deque can grow past its scheduled share): half of a typical layout is a
// few hundred chunks, and anything the cap leaves behind is simply stolen
// again once the batch drains.
const maxStealBatch = 256

// Install quiesces the runtime and swaps in a new chunk layout (built from a
// rebuilt schedule). The caller must be between regions; Quiesce enforces it.
func (rt *Runtime) Install(l *Layout) {
	rt.Quiesce()
	rt.layout = l
	t := l.threads
	rt.deques = make([]deque, t)
	rt.arrs = make([][]atomic.Int32, t)
	rt.loaded = make([][]int32, t)
	rt.serialCur = make([]int, t)
	for w := 0; w < t; w++ {
		// A deque holds at most its own scheduled chunks (armWorker) or one
		// steal batch (stealHalf publishes into an empty deque), whichever
		// is larger — not the whole layout.
		capacity := len(l.byWorker[w])
		if capacity < maxStealBatch {
			capacity = maxStealBatch
		}
		if n := len(l.chunks); capacity > n {
			capacity = n
		}
		rt.arrs[w] = make([]atomic.Int32, capacity)
		rt.loaded[w] = make([]int32, 0, len(l.byWorker[w]))
	}
	rt.barrier.init(t)
}

// Quiesce asserts that no region is consuming the deques. The engine calls
// it (via Install) before pinning a rebuilt schedule: a schedule swap builds
// a new layout with new chunk ids, and swapping while workers still hold old
// ids would misdirect their partial sums. Regions and rebalances are both
// issued from the session goroutine, so an active region here is a lifecycle
// ordering bug, not a recoverable race — it panics.
func (rt *Runtime) Quiesce() {
	if rt.inRegion.Load() {
		panic("steal: Quiesce/Install while a region is in flight (rebalance must happen between regions)")
	}
}

// Load arms the runtime for one region: every worker's deque receives its
// layout chunks whose span is active (nil mask = all spans), serial cursors
// rewind, and the step barrier resets. Called by the master immediately
// before Executor.Run; the executor's fan-out orders it before every
// worker's first Next.
func (rt *Runtime) Load(active []bool) {
	if rt.inRegion.Swap(true) {
		panic("steal: Load while a region is in flight")
	}
	for w := range rt.loaded {
		ids := rt.loaded[w][:0]
		for _, id := range rt.layout.byWorker[w] {
			if active == nil || active[rt.layout.chunks[id].Span] {
				ids = append(ids, id)
			}
		}
		rt.loaded[w] = ids
	}
	rt.armAll()
}

// Finish marks the region done. Called by the master after Executor.Run
// returns (the region barrier orders every worker's last Next before it).
func (rt *Runtime) Finish() { rt.inRegion.Store(false) }

// armAll re-arms every deque with its loaded chunk list and rewinds the
// serial cursors. Callers must guarantee no concurrent deque traffic: Load
// runs before the region fans out, and the step barrier's last arriver runs
// it while every other worker is blocked in the barrier.
func (rt *Runtime) armAll() {
	for w := range rt.deques {
		rt.armWorker(w)
		rt.serialCur[w] = 0
	}
}

// armWorker loads worker w's chunk ids into its deque, reversed so that the
// owner's LIFO bottom pops walk patterns in ascending order while thieves
// take the top — the ranges the owner would reach last.
func (rt *Runtime) armWorker(w int) {
	ids := rt.loaded[w]
	arr := rt.arrs[w]
	cost := 0.0
	n := len(ids)
	for i, id := range ids {
		arr[n-1-i].Store(id)
		cost += rt.layout.chunks[id].Cost
	}
	d := &rt.deques[w]
	epoch, _, _ := unpackState(d.state.Load())
	d.remaining.Store(math.Float64bits(cost))
	d.state.Store(packState(epoch+1, 0, n))
}

// NextStep is the intra-region step boundary for multi-step (traversal)
// regions. On concurrent executors every worker must call it between steps:
// it is a full barrier across the T workers — step s+1 reads CLVs that step
// s wrote, and with stealing a pattern's step-s writer need not be its
// step-s+1 reader, so the barrier is what makes the handoff safe — and the
// last worker to arrive re-arms all deques to the scheduled assignment
// before releasing the others. On serial executors it just rewinds the
// calling worker's cursor (virtual workers run one after another; worker w's
// whole step sequence completes before w+1 starts, and CLV reads stay safe
// because serial workers only process their own scheduled patterns).
func (rt *Runtime) NextStep(w int, ctx *parallel.WorkerCtx) {
	if !ctx.Concurrent {
		rt.serialCur[w] = 0
		return
	}
	// Barrier wait is synchronization, not work: it accrues to ctx.Idle so
	// the executor's per-worker Seconds keep measuring work time (otherwise
	// every worker in a multi-step region would report the region's wall
	// time and the measured imbalance would flatten to 1).
	t0 := time.Now()
	rt.barrier.wait(func() {
		rt.armAll()
		rt.steps.Add(1)
	})
	ctx.Idle += time.Since(t0).Seconds()
}

// Next hands worker w its next chunk id, or -1 when no work remains
// anywhere. Owners pop LIFO from the bottom of their own deque; a worker
// whose deque has drained (and with stealing enabled, on a concurrent
// executor) picks the victim with the highest remaining-cost estimate and
// steals the top half of its window — the largest remaining half, both in
// the chosen victim and in taking ceil(n/2) of its chunks. Steal operations
// are recorded into ctx.Steals; ctx.StolenPatterns counts the patterns of
// every chunk *executed* away from its scheduled owner — once per
// execution, at hand-out, so a chunk relayed through a chain of thieves is
// not double-counted and the migrated fraction of processed patterns stays
// in [0, 1].
//
//plk:hotpath
func (rt *Runtime) Next(w int, ctx *parallel.WorkerCtx) int {
	if !ctx.Concurrent {
		ids := rt.loaded[w]
		if rt.serialCur[w] >= len(ids) {
			return -1
		}
		id := ids[rt.serialCur[w]]
		rt.serialCur[w]++
		return int(id)
	}
	for {
		if id, ok := rt.popBottom(w, ctx); ok {
			if c := rt.layout.chunks[id]; c.Owner != w {
				ctx.StolenPatterns += float64(c.Patterns())
			}
			return id
		}
		if !rt.stealing.Load() {
			return -1
		}
		if !rt.stealHalf(w, ctx) {
			return -1
		}
	}
}

// popBottom takes the bottom chunk of worker w's own deque. A failed CAS
// (a thief moved the window between the load and the swap) is counted into
// ctx.StealRaces and retried.
//
//plk:hotpath
func (rt *Runtime) popBottom(w int, ctx *parallel.WorkerCtx) (int, bool) {
	d := &rt.deques[w]
	for {
		old := d.state.Load()
		epoch, top, bottom := unpackState(old)
		if bottom <= top {
			return -1, false
		}
		id := int(rt.arrs[w][bottom-1].Load())
		if d.state.CompareAndSwap(old, packState(epoch, top, bottom-1)) {
			d.addRemaining(-rt.layout.chunks[id].Cost)
			return id, true
		}
		ctx.StealRaces++
	}
}

// stealHalf transfers the top half of the best victim's deque into worker
// w's (empty) deque. It returns false only when no victim shows any
// remaining work — the region (or step) is drained and w should exit to the
// barrier. A worker that exits while another worker is mid-steal can miss
// that in-flight batch; that costs at most one worker's tail overlap, never
// correctness (the thief still executes every claimed chunk).
//
//plk:hotpath
func (rt *Runtime) stealHalf(w int, ctx *parallel.WorkerCtx) bool {
	var buf [maxStealBatch]int32
	for {
		victim, vn := -1, 0
		best := math.Inf(-1)
		for v := range rt.deques {
			if v == w {
				continue
			}
			_, top, bottom := unpackState(rt.deques[v].state.Load())
			n := bottom - top
			if n <= 0 {
				continue
			}
			if cost := rt.deques[v].remainingCost(); victim < 0 || cost > best || (cost == best && n > vn) {
				victim, vn, best = v, n, cost
			}
		}
		if victim < 0 {
			return false
		}
		d := &rt.deques[victim]
		old := d.state.Load()
		epoch, top, bottom := unpackState(old)
		n := bottom - top
		if n <= 0 {
			continue // drained between the scan and now; rescan
		}
		k := (n + 1) / 2
		if k > len(buf) {
			k = len(buf)
		}
		// Read the candidate ids before claiming them: a concurrent re-arm
		// may overwrite these slots, but a re-arm bumps the epoch, so the CAS
		// below fails and the stale reads are discarded.
		for i := 0; i < k; i++ {
			buf[i] = rt.arrs[victim][top+i].Load()
		}
		if !d.state.CompareAndSwap(old, packState(epoch, top+k, bottom)) {
			ctx.StealRaces++
			continue // the victim's window moved; rescan
		}
		cost := 0.0
		for i := 0; i < k; i++ {
			cost += rt.layout.chunks[buf[i]].Cost
		}
		d.addRemaining(-cost)
		// Publish the booty as w's own deque (empty right now: only owners
		// push, and w only steals when drained), preserving order so w pops
		// ascending and re-victimized thieves lose their top again.
		arr := rt.arrs[w]
		for i := 0; i < k; i++ {
			arr[k-1-i].Store(buf[i])
		}
		own := &rt.deques[w]
		ownEpoch, _, _ := unpackState(own.state.Load())
		own.remaining.Store(math.Float64bits(cost))
		own.state.Store(packState(ownEpoch+1, 0, k))
		ctx.Steals++
		return true
	}
}

// stepBarrier is the blocking barrier NextStep uses between traversal steps
// on concurrent executors. It is condvar-based rather than spinning: worker
// counts can exceed the core count (and CI runs single-core), where spinning
// would burn the very cycles the stragglers need.
type stepBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func (b *stepBarrier) init(n int) {
	b.mu.Lock()
	if b.count != 0 {
		b.mu.Unlock()
		panic(fmt.Sprintf("steal: re-initializing a barrier with %d workers waiting", b.count))
	}
	b.n = n
	b.cond = sync.NewCond(&b.mu)
	b.mu.Unlock()
}

// wait blocks until all n workers arrive; the last arriver runs onLast while
// the others are still parked, then releases them.
func (b *stepBarrier) wait(onLast func()) {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		if onLast != nil {
			onLast()
		}
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
