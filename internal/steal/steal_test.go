package steal

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"phylo/internal/parallel"
	"phylo/internal/schedule"
)

// randomSpans mirrors the schedule package's generator: consecutive spans of
// mixed DNA-like and protein-like per-pattern costs.
func randomSpans(seed int64) []schedule.Span {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(6)
	spans := make([]schedule.Span, n)
	off := 0
	for i := range spans {
		length := rng.Intn(500)
		cost := 160.0
		if rng.Intn(2) == 1 {
			cost = 3360.0
		}
		spans[i] = schedule.Span{Lo: off, Hi: off + length, Cost: cost}
		off += length
	}
	return spans
}

// claimAll runs T concurrent workers against one armed runtime, each
// draining chunks through Next across the given number of steps (calling
// NextStep between them), and returns every (step, chunk id) claim. Workers
// alternate between fast and artificially slow chunk processing so the fast
// ones drain early and must steal to stay busy.
func claimAll(t *testing.T, rt *Runtime, threads, steps int, slowEvery int) [][]int {
	t.Helper()
	claims := make([][][]int, threads) // [worker][step] -> ids
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		claims[w] = make([][]int, steps)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := parallel.WorkerCtx{Worker: w, Concurrent: true}
			for s := 0; s < steps; s++ {
				if s > 0 {
					rt.NextStep(w, &ctx)
				}
				for {
					id := rt.Next(w, &ctx)
					if id < 0 {
						break
					}
					claims[w][s] = append(claims[w][s], id)
					if slowEvery > 0 && w%slowEvery == 0 {
						time.Sleep(50 * time.Microsecond) // make this worker the victim
					}
				}
			}
		}(w)
	}
	wg.Wait()
	perStep := make([][]int, steps)
	for s := 0; s < steps; s++ {
		for w := 0; w < threads; w++ {
			perStep[s] = append(perStep[s], claims[w][s]...)
		}
	}
	return perStep
}

// verifyExactCover checks that one step's claims execute every pattern of
// every active span exactly once.
func verifyExactCover(t *testing.T, l *Layout, spans []schedule.Span, active []bool, ids []int) {
	t.Helper()
	total := 0
	if len(spans) > 0 {
		total = spans[len(spans)-1].Hi
	}
	seen := make([]int, total)
	claimed := make([]bool, l.NumChunks())
	for _, id := range ids {
		if claimed[id] {
			t.Fatalf("chunk %d claimed twice", id)
		}
		claimed[id] = true
		c := l.Chunk(id)
		if active != nil && !active[c.Span] {
			t.Fatalf("chunk %d of inactive span %d handed out", id, c.Span)
		}
		for i := c.Lo; i < c.Hi; i += c.Step {
			seen[i]++
		}
	}
	for sp, span := range spans {
		want := 1
		if active != nil && !active[sp] {
			want = 0
		}
		for i := span.Lo; i < span.Hi; i++ {
			if seen[i] != want {
				t.Fatalf("pattern %d (span %d) executed %d times, want %d", i, sp, seen[i], want)
			}
		}
	}
}

// TestStealingNeverDropsOrDuplicatesPatterns is the satellite property test
// mirroring schedule's TestRebalanceNeverDropsOrDuplicatesPatterns at the
// stealing layer: under real concurrent workers — with deliberately skewed
// per-chunk processing speed so half-steals actually fire — every pattern of
// every span is executed exactly once per step, for every strategy, worker
// count, and chunk size.
func TestStealingNeverDropsOrDuplicatesPatterns(t *testing.T) {
	for _, strat := range []schedule.Strategy{schedule.Cyclic, schedule.Weighted} {
		strat := strat
		f := func(seedRaw uint16, tRaw, mcRaw uint8) bool {
			spans := randomSpans(int64(seedRaw) + 999)
			threads := 2 + int(tRaw%7)
			minChunk := 1 + int(mcRaw%80)
			s, err := schedule.New(strat, threads, spans)
			if err != nil {
				return false
			}
			l := NewLayout(s, minChunk)
			rt := NewRuntime(l)
			const steps = 2
			rt.Load(nil)
			perStep := claimAll(t, rt, threads, steps, 2)
			rt.Finish()
			for s := 0; s < steps; s++ {
				verifyExactCover(t, l, spans, nil, perStep[s])
			}
			return !t.Failed()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%v: %v", strat, err)
		}
	}
}

// TestActiveMaskFiltersSpans checks that Load only arms chunks of active
// spans and that coverage over the active subset stays exact.
func TestActiveMaskFiltersSpans(t *testing.T) {
	spans := []schedule.Span{{Lo: 0, Hi: 300, Cost: 160}, {Lo: 300, Hi: 700, Cost: 3360}, {Lo: 700, Hi: 900, Cost: 160}}
	s, err := schedule.New(schedule.Weighted, 4, spans)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLayout(s, 32)
	rt := NewRuntime(l)
	active := []bool{true, false, true}
	rt.Load(active)
	perStep := claimAll(t, rt, 4, 1, 2)
	rt.Finish()
	verifyExactCover(t, l, spans, active, perStep[0])
}

// TestSerialModeHandsOutOwnChunksOnly checks the serial executor contract:
// virtual workers receive exactly their scheduled chunks, in ascending
// order, never steal, and NextStep rewinds per worker.
func TestSerialModeHandsOutOwnChunksOnly(t *testing.T) {
	spans := randomSpans(7)
	s, err := schedule.New(schedule.Weighted, 4, spans)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLayout(s, 16)
	rt := NewRuntime(l)
	rt.Load(nil)
	defer rt.Finish()
	for step := 0; step < 2; step++ {
		for w := 0; w < 4; w++ { // serial executors run workers one after another
			ctx := parallel.WorkerCtx{Worker: w, Concurrent: false}
			if step > 0 {
				rt.NextStep(w, &ctx)
			}
			prev := -1
			count := 0
			for {
				id := rt.Next(w, &ctx)
				if id < 0 {
					break
				}
				if c := l.Chunk(id); c.Owner != w {
					t.Fatalf("serial worker %d received chunk %d owned by %d", w, id, c.Owner)
				}
				if id <= prev {
					t.Fatalf("serial worker %d ids not ascending: %d after %d", w, id, prev)
				}
				prev = id
				count++
			}
			if want := len(l.byWorker[w]); count != want {
				t.Fatalf("serial worker %d drained %d chunks, want %d", w, count, want)
			}
			if ctx.Steals != 0 || ctx.StolenPatterns != 0 {
				t.Fatalf("serial worker %d recorded steals %v/%v", w, ctx.Steals, ctx.StolenPatterns)
			}
		}
	}
}

// TestStealsAreRecordedAndTargetTheCostliestVictim drains a two-worker
// layout where worker 0 never processes anything: worker 1 must steal, the
// steal counters must land in its WorkerCtx, and with stealing disabled the
// same situation must leave worker 0's deque untouched.
func TestStealsAreRecordedAndTargetTheCostliestVictim(t *testing.T) {
	spans := []schedule.Span{{Lo: 0, Hi: 640, Cost: 160}}
	s, err := schedule.New(schedule.Weighted, 2, spans)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLayout(s, 32)
	rt := NewRuntime(l)
	rt.Load(nil)
	thief := parallel.WorkerCtx{Worker: 1, Concurrent: true}
	got := 0
	for {
		id := rt.Next(1, &thief)
		if id < 0 {
			break
		}
		got += l.Chunk(id).Patterns()
	}
	rt.Finish()
	if got != 640 {
		t.Errorf("thief processed %d patterns, want all 640", got)
	}
	if thief.Steals == 0 || thief.StolenPatterns == 0 {
		t.Errorf("steals not recorded: %v ops, %v patterns", thief.Steals, thief.StolenPatterns)
	}
	if thief.StolenPatterns != 320 {
		t.Errorf("thief stole %v patterns, want worker 0's share of 320", thief.StolenPatterns)
	}

	rt.SetStealing(false)
	rt.Load(nil)
	idle := parallel.WorkerCtx{Worker: 1, Concurrent: true}
	n := 0
	for rt.Next(1, &idle) >= 0 {
		n++
	}
	rt.Finish()
	if idle.Steals != 0 {
		t.Errorf("stealing disabled but %v steals recorded", idle.Steals)
	}
	if want := len(l.byWorker[1]); n != want {
		t.Errorf("stealing disabled: worker 1 drained %d chunks, want only its own %d", n, want)
	}
}

// TestQuiesceRejectsMidRegionInstall pins the rebalance/steal ordering
// contract: installing a new layout while a region is loaded must panic.
func TestQuiesceRejectsMidRegionInstall(t *testing.T) {
	spans := []schedule.Span{{Lo: 0, Hi: 100, Cost: 160}}
	s, err := schedule.New(schedule.Weighted, 2, spans)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(NewLayout(s, 16))
	rt.Load(nil)
	defer func() {
		if recover() == nil {
			t.Error("Install during an in-flight region did not panic")
		}
		rt.Finish()
	}()
	rt.Install(NewLayout(s, 16))
}

// TestLayoutRespectsMinChunkDefault checks defaulting and the per-chunk cost
// estimate against the span pricing.
func TestLayoutRespectsMinChunkDefault(t *testing.T) {
	spans := []schedule.Span{{Lo: 0, Hi: 1000, Cost: 2}}
	s, err := schedule.New(schedule.Block, 2, spans)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLayout(s, 0)
	if l.MinChunk() != DefaultMinChunk {
		t.Errorf("MinChunk = %d, want default %d", l.MinChunk(), DefaultMinChunk)
	}
	totalCost, totalPatterns := 0.0, 0
	// The global-alignment snap can shave up to ChunkAlign-1 patterns off a
	// run's final chunk.
	floor := DefaultMinChunk - (schedule.ChunkAlign - 1)
	for id := 0; id < l.NumChunks(); id++ {
		c := l.Chunk(id)
		if c.Patterns() < floor {
			t.Errorf("chunk %d has %d patterns, below the %d floor", id, c.Patterns(), floor)
		}
		totalCost += c.Cost
		totalPatterns += c.Patterns()
	}
	if totalPatterns != 1000 || totalCost != 2000 {
		t.Errorf("layout totals %d patterns / %v cost, want 1000 / 2000", totalPatterns, totalCost)
	}
}
