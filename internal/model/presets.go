package model

import (
	"fmt"
	"math"
	"strings"

	"phylo/internal/alignment"
)

// JC69 returns the Jukes-Cantor model (uniform frequencies, equal rates).
// Its closed-form transition probabilities make it the reference model for
// validating the eigendecomposition machinery.
func JC69(numCats int, alpha float64) (*Model, error) {
	return New(alignment.DNA, nil, nil, alpha, numCats)
}

// JC69Prob is the closed-form Jukes-Cantor transition probability between
// states i and j after branch length t (in expected substitutions per site).
func JC69Prob(i, j int, t float64) float64 {
	e := math.Exp(-4.0 / 3.0 * t)
	if i == j {
		return 0.25 + 0.75*e
	}
	return 0.25 - 0.25*e
}

// HKY85 returns the Hasegawa-Kishino-Yano model with transition/transversion
// ratio kappa and the given base frequencies (nil for uniform).
func HKY85(freqs []float64, kappa float64, numCats int, alpha float64) (*Model, error) {
	if kappa <= 0 {
		return nil, fmt.Errorf("model: kappa %v must be positive", kappa)
	}
	s := 4
	ex := make([]float64, NumExRates(s))
	for i := range ex {
		ex[i] = 1
	}
	// Transitions: A<->G (0,2) and C<->T (1,3).
	ex[RateIndex(s, 0, 2)] = kappa
	ex[RateIndex(s, 1, 3)] = kappa
	return New(alignment.DNA, freqs, ex, alpha, numCats)
}

// GTR returns a general time-reversible DNA model with explicit parameters.
func GTR(freqs, exRates []float64, numCats int, alpha float64) (*Model, error) {
	return New(alignment.DNA, freqs, exRates, alpha, numCats)
}

// syn20ExRates builds the deterministic synthetic 20-state exchangeability
// matrix "SYN20". The paper's protein runs use empirical matrices (WAG etc.);
// per DESIGN.md the reproduction only needs a valid, fixed, heterogeneous
// time-reversible 20-state model, because the load-balance behaviour depends
// on the 20x20 FLOP cost, not on the biological rate values. The generator is
// a small multiplicative congruential sequence mapped into [0.02, 8] with a
// heavy right tail, which mimics the dynamic range of WAG.
func syn20ExRates() []float64 {
	n := NumExRates(20)
	rates := make([]float64, n)
	state := uint64(88172645463325252)
	for i := 0; i < n; i++ {
		// xorshift64
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		u := float64(state%1000000) / 1000000.0
		rates[i] = 0.02 + 8*u*u*u // cubic skew: many small rates, few large
	}
	rates[n-1] = 1 // GTR normalization convention
	return rates
}

// syn20Freqs builds the matching deterministic frequency vector, spanning the
// 1.5%..9% range typical of empirical amino-acid frequency sets.
func syn20Freqs() []float64 {
	f := make([]float64, 20)
	state := uint64(424242424242)
	sum := 0.0
	for i := range f {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		f[i] = 0.015 + 0.075*float64(state%1000)/1000.0
		sum += f[i]
	}
	for i := range f {
		f[i] /= sum
	}
	return f
}

// SYN20 returns the synthetic fixed 20-state protein model (see DESIGN.md,
// substitution #3).
func SYN20(numCats int, alpha float64) (*Model, error) {
	return New(alignment.AA, syn20Freqs(), syn20ExRates(), alpha, numCats)
}

// Poisson20 returns the 20-state equal-rates model (the protein analogue of
// Jukes-Cantor), mainly used by tests.
func Poisson20(numCats int, alpha float64) (*Model, error) {
	return New(alignment.AA, nil, nil, alpha, numCats)
}

// ByName constructs a model from a partition-file model name, optionally
// seeding frequencies empirically from data.
func ByName(name string, part *alignment.CompressedPartition, numCats int, alpha float64) (*Model, error) {
	upper := strings.ToUpper(name)
	switch {
	case upper == "JC" || upper == "JC69":
		return JC69(numCats, alpha)
	case upper == "DNA" || upper == "GTR" || strings.HasPrefix(upper, "GTR"):
		var freqs []float64
		if part != nil {
			freqs = EmpiricalFreqs(part)
		}
		return GTR(freqs, nil, numCats, alpha)
	case upper == "SYN20" || upper == "WAG" || upper == "JTT" || upper == "LG" ||
		upper == "DAYHOFF" || strings.HasPrefix(upper, "PROT"):
		return SYN20(numCats, alpha)
	case upper == "POISSON" || upper == "AA":
		return Poisson20(numCats, alpha)
	default:
		return nil, fmt.Errorf("model: unknown model name %q", name)
	}
}

// DefaultFor builds the default model for a partition: GTR with empirical
// frequencies for DNA, SYN20 for protein.
func DefaultFor(part *alignment.CompressedPartition, numCats int, alpha float64) (*Model, error) {
	if part.Type == alignment.DNA {
		return GTR(EmpiricalFreqs(part), nil, numCats, alpha)
	}
	return SYN20(numCats, alpha)
}
