// Package model implements time-reversible substitution models for the
// phylogenetic likelihood kernel: the general time-reversible (GTR) model for
// DNA, 20-state models for protein data, and the discrete Gamma model of
// among-site rate heterogeneity (Yang 1994). Transition probability matrices
// P(t) = V exp(Lambda t) V^-1 are obtained from an eigendecomposition of the
// symmetrized rate matrix.
package model

import (
	"errors"
	"fmt"
	"math"

	"phylo/internal/alignment"
	"phylo/internal/numeric"
)

// Bounds used by the optimizers; they match RAxML's defaults closely.
const (
	MinAlpha      = 0.02
	MaxAlpha      = 100.0
	MinRate       = 1e-4
	MaxRate       = 1e3
	MinBranchLen  = 1e-8
	MaxBranchLen  = 64.0
	DefaultAlpha  = 1.0
	DefaultBranch = 0.1
)

// Model is the substitution model of one partition: state frequencies,
// symmetric exchangeability rates, the Gamma shape parameter with its
// discretized per-category rates, and the cached eigendecomposition of the
// normalized rate matrix Q.
type Model struct {
	Type    alignment.DataType
	States  int
	Freqs   []float64 // stationary frequencies pi, length States, sum 1
	ExRates []float64 // upper-triangular exchangeabilities, length States*(States-1)/2; the last entry is fixed at 1 (GTR convention)
	Alpha   float64   // Gamma shape parameter
	NumCats int       // number of discrete Gamma categories (1 = no heterogeneity)

	CatRates []float64 // per-category relative rates, mean 1

	// Eigendecomposition of Q (valid after UpdateEigen):
	EigenVals []float64 // length States; one value is ~0
	EigenVecs []float64 // V, row-major States x States
	InvVecs   []float64 // V^-1, row-major States x States
	dirty     bool
}

// NumExRates returns the exchangeability count for s states.
func NumExRates(s int) int { return s * (s - 1) / 2 }

// RateIndex maps an unordered state pair (i < j) onto its index in ExRates.
func RateIndex(s, i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Row-major upper triangle: pairs (0,1),(0,2)...(0,s-1),(1,2)...
	return i*s - i*(i+1)/2 + (j - i - 1)
}

// New creates a model with the given frequencies and exchangeabilities and
// computes its eigendecomposition. Pass nil for uniform frequencies and/or
// all-equal exchangeabilities.
func New(t alignment.DataType, freqs, exRates []float64, alpha float64, numCats int) (*Model, error) {
	s := t.States()
	if s == 0 {
		return nil, fmt.Errorf("model: bad data type %v", t)
	}
	if numCats < 1 {
		return nil, errors.New("model: need at least one rate category")
	}
	m := &Model{
		Type:     t,
		States:   s,
		Freqs:    make([]float64, s),
		ExRates:  make([]float64, NumExRates(s)),
		Alpha:    alpha,
		NumCats:  numCats,
		CatRates: make([]float64, numCats),
	}
	if freqs == nil {
		for i := range m.Freqs {
			m.Freqs[i] = 1 / float64(s)
		}
	} else {
		if len(freqs) != s {
			return nil, fmt.Errorf("model: %d frequencies for %d states", len(freqs), s)
		}
		copy(m.Freqs, freqs)
		if err := normalizeFreqs(m.Freqs); err != nil {
			return nil, err
		}
	}
	if exRates == nil {
		for i := range m.ExRates {
			m.ExRates[i] = 1
		}
	} else {
		if len(exRates) != len(m.ExRates) {
			return nil, fmt.Errorf("model: %d exchangeabilities for %d states", len(exRates), s)
		}
		copy(m.ExRates, exRates)
		for i, r := range m.ExRates {
			if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				return nil, fmt.Errorf("model: exchangeability %d = %v invalid", i, r)
			}
		}
	}
	if err := m.SetAlpha(alpha); err != nil {
		return nil, err
	}
	if err := m.UpdateEigen(); err != nil {
		return nil, err
	}
	return m, nil
}

func normalizeFreqs(f []float64) error {
	sum := 0.0
	for _, v := range f {
		if v <= 0 || math.IsNaN(v) {
			return fmt.Errorf("model: non-positive frequency %v", v)
		}
		sum += v
	}
	for i := range f {
		f[i] /= sum
	}
	return nil
}

// SetAlpha updates the Gamma shape parameter and recomputes the category
// rates. It does not touch the eigendecomposition (alpha only scales branch
// lengths per category).
func (m *Model) SetAlpha(alpha float64) error {
	if math.IsNaN(alpha) || alpha < MinAlpha || alpha > MaxAlpha {
		return fmt.Errorf("model: alpha %v outside [%v, %v]", alpha, MinAlpha, MaxAlpha)
	}
	m.Alpha = alpha
	numeric.DiscreteGammaRates(alpha, m.CatRates)
	return nil
}

// SetExRate updates one exchangeability and marks the eigendecomposition
// stale; call UpdateEigen before computing likelihoods.
func (m *Model) SetExRate(idx int, v float64) error {
	if idx < 0 || idx >= len(m.ExRates) {
		return fmt.Errorf("model: rate index %d out of range", idx)
	}
	if math.IsNaN(v) || v < MinRate || v > MaxRate {
		return fmt.Errorf("model: rate %v outside [%v, %v]", v, MinRate, MaxRate)
	}
	m.ExRates[idx] = v
	m.dirty = true
	return nil
}

// SetFreqs replaces the stationary frequencies (normalizing them) and marks
// the eigendecomposition stale.
func (m *Model) SetFreqs(f []float64) error {
	if len(f) != m.States {
		return fmt.Errorf("model: %d frequencies for %d states", len(f), m.States)
	}
	tmp := append([]float64(nil), f...)
	if err := normalizeFreqs(tmp); err != nil {
		return err
	}
	copy(m.Freqs, tmp)
	m.dirty = true
	return nil
}

// Dirty reports whether UpdateEigen must be called.
func (m *Model) Dirty() bool { return m.dirty }

// BuildQ assembles the normalized instantaneous rate matrix Q (row-major):
// Q_ij = r_ij * pi_j for i != j, rows summing to zero, scaled so the expected
// substitution rate at stationarity, -sum_i pi_i Q_ii, equals 1. This keeps
// branch lengths in expected-substitutions-per-site units.
func (m *Model) BuildQ() []float64 {
	s := m.States
	q := make([]float64, s*s)
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			if i == j {
				continue
			}
			q[i*s+j] = m.ExRates[RateIndex(s, i, j)] * m.Freqs[j]
		}
	}
	scale := 0.0
	for i := 0; i < s; i++ {
		row := 0.0
		for j := 0; j < s; j++ {
			if j != i {
				row += q[i*s+j]
			}
		}
		q[i*s+i] = -row
		scale += m.Freqs[i] * row
	}
	if scale <= 0 {
		return q
	}
	inv := 1 / scale
	for k := range q {
		q[k] *= inv
	}
	return q
}

// UpdateEigen recomputes the eigendecomposition of Q via symmetrization:
// with D = diag(pi), B = D^(1/2) Q D^(-1/2) is symmetric for time-reversible
// Q; B = R Lambda R^T yields V = D^(-1/2) R and V^-1 = R^T D^(1/2).
func (m *Model) UpdateEigen() error {
	s := m.States
	q := m.BuildQ()
	b := make([]float64, s*s)
	sqrtPi := make([]float64, s)
	for i := 0; i < s; i++ {
		sqrtPi[i] = math.Sqrt(m.Freqs[i])
	}
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			b[i*s+j] = sqrtPi[i] * q[i*s+j] / sqrtPi[j]
		}
	}
	// Force exact symmetry against rounding before Jacobi.
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			v := 0.5 * (b[i*s+j] + b[j*s+i])
			b[i*s+j] = v
			b[j*s+i] = v
		}
	}
	vals, r, err := numeric.JacobiEigen(b, s)
	if err != nil {
		return fmt.Errorf("model: eigendecomposition failed: %w", err)
	}
	m.EigenVals = vals
	m.EigenVecs = make([]float64, s*s)
	m.InvVecs = make([]float64, s*s)
	for i := 0; i < s; i++ {
		for k := 0; k < s; k++ {
			m.EigenVecs[i*s+k] = r[i*s+k] / sqrtPi[i]
			m.InvVecs[k*s+i] = r[i*s+k] * sqrtPi[i]
		}
	}
	m.dirty = false
	return nil
}

// PMatrix fills dst (len States*States, row-major) with the transition
// probability matrix P(t) = V exp(Lambda*t) V^-1 for branch length t
// (already scaled by the rate category, if any).
func (m *Model) PMatrix(t float64, dst []float64) {
	s := m.States
	if t < 0 {
		t = 0
	}
	expl := make([]float64, s)
	for k := 0; k < s; k++ {
		expl[k] = math.Exp(m.EigenVals[k] * t)
	}
	for i := 0; i < s; i++ {
		vrow := m.EigenVecs[i*s : (i+1)*s]
		drow := dst[i*s : (i+1)*s]
		for j := 0; j < s; j++ {
			sum := 0.0
			for k := 0; k < s; k++ {
				sum += vrow[k] * expl[k] * m.InvVecs[k*s+j]
			}
			// Clamp tiny negative values from rounding; they would otherwise
			// inject negative likelihood contributions.
			if sum < 0 {
				sum = 0
			}
			drow[j] = sum
		}
	}
}

// PMatrices fills dst (len NumCats*States*States) with one P matrix per
// Gamma category for branch length t: P_c = P(catRate_c * t).
func (m *Model) PMatrices(t float64, dst []float64) {
	ss := m.States * m.States
	for c := 0; c < m.NumCats; c++ {
		m.PMatrix(m.CatRates[c]*t, dst[c*ss:(c+1)*ss])
	}
}

// Clone returns a deep copy (used by tree-search checkpointing and by
// per-partition model replication).
func (m *Model) Clone() *Model {
	c := &Model{
		Type:    m.Type,
		States:  m.States,
		Alpha:   m.Alpha,
		NumCats: m.NumCats,
		dirty:   m.dirty,
	}
	c.Freqs = append([]float64(nil), m.Freqs...)
	c.ExRates = append([]float64(nil), m.ExRates...)
	c.CatRates = append([]float64(nil), m.CatRates...)
	c.EigenVals = append([]float64(nil), m.EigenVals...)
	c.EigenVecs = append([]float64(nil), m.EigenVecs...)
	c.InvVecs = append([]float64(nil), m.InvVecs...)
	return c
}

// EmpiricalFreqs estimates stationary frequencies from the observed state
// counts of a compressed partition (gaps and ambiguity codes distribute
// fractionally over their compatible states, as in RAxML's empirical base
// frequency estimator).
func EmpiricalFreqs(p *alignment.CompressedPartition) []float64 {
	s := p.Type.States()
	counts := make([]float64, s)
	for t := range p.Tips {
		for i, code := range p.Tips[t] {
			vec := alignment.TipVector(p.Type, code)
			n := 0.0
			for _, v := range vec {
				n += v
			}
			if n == 0 {
				continue
			}
			w := p.Weights[i] / n
			for st, v := range vec {
				if v != 0 {
					counts[st] += w
				}
			}
		}
	}
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		for i := range counts {
			counts[i] = 1 / float64(s)
		}
		return counts
	}
	for i := range counts {
		// Pseudocount floor keeps frequencies strictly positive.
		counts[i] = (counts[i] + 0.1) / (total + 0.1*float64(s))
	}
	return counts
}
