package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"phylo/internal/alignment"
)

func TestRateIndex(t *testing.T) {
	// 4 states: (0,1)=0 (0,2)=1 (0,3)=2 (1,2)=3 (1,3)=4 (2,3)=5.
	wants := map[[2]int]int{
		{0, 1}: 0, {0, 2}: 1, {0, 3}: 2, {1, 2}: 3, {1, 3}: 4, {2, 3}: 5,
	}
	for pair, want := range wants {
		if got := RateIndex(4, pair[0], pair[1]); got != want {
			t.Errorf("RateIndex(4,%d,%d) = %d, want %d", pair[0], pair[1], got, want)
		}
		if got := RateIndex(4, pair[1], pair[0]); got != want {
			t.Errorf("RateIndex symmetric (%d,%d) = %d, want %d", pair[1], pair[0], got, want)
		}
	}
	// All 20-state indices are distinct and in range.
	seen := make(map[int]bool)
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			idx := RateIndex(20, i, j)
			if idx < 0 || idx >= NumExRates(20) || seen[idx] {
				t.Fatalf("RateIndex(20,%d,%d) = %d invalid or duplicate", i, j, idx)
			}
			seen[idx] = true
		}
	}
}

func TestJC69ClosedForm(t *testing.T) {
	m, err := JC69(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 16)
	for _, bl := range []float64{0, 0.01, 0.1, 0.5, 1, 3} {
		m.PMatrix(bl, p)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want := JC69Prob(i, j, bl)
				if math.Abs(p[i*4+j]-want) > 1e-12 {
					t.Errorf("bl=%v P[%d][%d] = %v, want %v", bl, i, j, p[i*4+j], want)
				}
			}
		}
	}
}

func TestPMatrixStochastic(t *testing.T) {
	models := map[string]*Model{}
	if m, err := GTR([]float64{0.3, 0.2, 0.25, 0.25}, []float64{1.2, 2.5, 0.7, 1.1, 3.9, 1}, 4, 0.7); err == nil {
		models["GTR"] = m
	} else {
		t.Fatal(err)
	}
	if m, err := SYN20(4, 0.5); err == nil {
		models["SYN20"] = m
	} else {
		t.Fatal(err)
	}
	if m, err := HKY85([]float64{0.4, 0.1, 0.2, 0.3}, 4, 2, 1.2); err == nil {
		models["HKY"] = m
	} else {
		t.Fatal(err)
	}
	for name, m := range models {
		s := m.States
		p := make([]float64, s*s)
		for _, bl := range []float64{0, 0.001, 0.05, 0.5, 2, 10} {
			m.PMatrix(bl, p)
			for i := 0; i < s; i++ {
				row := 0.0
				for j := 0; j < s; j++ {
					if p[i*s+j] < 0 || p[i*s+j] > 1+1e-12 {
						t.Errorf("%s bl=%v: P[%d][%d] = %v outside [0,1]", name, bl, i, j, p[i*s+j])
					}
					row += p[i*s+j]
				}
				if math.Abs(row-1) > 1e-10 {
					t.Errorf("%s bl=%v: row %d sums to %v", name, bl, i, row)
				}
			}
		}
		// P(0) = I.
		m.PMatrix(0, p)
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(p[i*s+j]-want) > 1e-10 {
					t.Errorf("%s: P(0)[%d][%d] = %v", name, i, j, p[i*s+j])
				}
			}
		}
		// Detailed balance: pi_i P_ij(t) = pi_j P_ji(t).
		m.PMatrix(0.37, p)
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				lhs := m.Freqs[i] * p[i*s+j]
				rhs := m.Freqs[j] * p[j*s+i]
				if math.Abs(lhs-rhs) > 1e-12 {
					t.Errorf("%s: detailed balance (%d,%d): %v vs %v", name, i, j, lhs, rhs)
				}
			}
		}
		// P(t) -> stationary distribution as t -> inf.
		m.PMatrix(500, p)
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				if math.Abs(p[i*s+j]-m.Freqs[j]) > 1e-6 {
					t.Errorf("%s: P(inf)[%d][%d] = %v, want pi_j = %v", name, i, j, p[i*s+j], m.Freqs[j])
				}
			}
		}
	}
}

func TestQNormalization(t *testing.T) {
	m, err := GTR([]float64{0.35, 0.15, 0.2, 0.3}, []float64{0.5, 2, 1.5, 0.8, 3, 1}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := m.BuildQ()
	rate := 0.0
	for i := 0; i < 4; i++ {
		rowSum := 0.0
		for j := 0; j < 4; j++ {
			rowSum += q[i*4+j]
		}
		if math.Abs(rowSum) > 1e-12 {
			t.Errorf("Q row %d sums to %v", i, rowSum)
		}
		rate -= m.Freqs[i] * q[i*4+i]
	}
	if math.Abs(rate-1) > 1e-12 {
		t.Errorf("expected substitution rate = %v, want 1", rate)
	}
	// Eigenvalues: one zero, rest negative.
	zero, neg := 0, 0
	for _, v := range m.EigenVals {
		switch {
		case math.Abs(v) < 1e-10:
			zero++
		case v < 0:
			neg++
		}
	}
	if zero != 1 || neg != 3 {
		t.Errorf("eigenvalues %v: want exactly one zero, rest negative", m.EigenVals)
	}
}

func TestSetAlphaRates(t *testing.T) {
	m, err := JC69(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetAlpha(0.5); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range m.CatRates {
		sum += r
	}
	if math.Abs(sum/4-1) > 1e-9 {
		t.Errorf("category rates mean %v, want 1", sum/4)
	}
	if err := m.SetAlpha(0.001); err == nil {
		t.Error("expected error below MinAlpha")
	}
	if err := m.SetAlpha(1e9); err == nil {
		t.Error("expected error above MaxAlpha")
	}
}

func TestSettersAndDirty(t *testing.T) {
	m, err := GTR(nil, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dirty() {
		t.Error("fresh model must not be dirty")
	}
	if err := m.SetExRate(0, 2.5); err != nil {
		t.Fatal(err)
	}
	if !m.Dirty() {
		t.Error("SetExRate must mark dirty")
	}
	if err := m.UpdateEigen(); err != nil {
		t.Fatal(err)
	}
	if m.Dirty() {
		t.Error("UpdateEigen must clear dirty")
	}
	if err := m.SetExRate(99, 1); err == nil {
		t.Error("expected error for bad rate index")
	}
	if err := m.SetExRate(0, -1); err == nil {
		t.Error("expected error for negative rate")
	}
	if err := m.SetFreqs([]float64{0.7, 0.1, 0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	if !m.Dirty() {
		t.Error("SetFreqs must mark dirty")
	}
	if err := m.SetFreqs([]float64{1, 2}); err == nil {
		t.Error("expected error for wrong frequency count")
	}
	if err := m.SetFreqs([]float64{-1, 1, 1, 1}); err == nil {
		t.Error("expected error for negative frequency")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(alignment.DNA, []float64{1, 2, 3}, nil, 1, 4); err == nil {
		t.Error("expected error for 3 freqs")
	}
	if _, err := New(alignment.DNA, nil, []float64{1, 2}, 1, 4); err == nil {
		t.Error("expected error for 2 exchangeabilities")
	}
	if _, err := New(alignment.DNA, nil, []float64{1, 1, 1, 1, 1, -2}, 1, 4); err == nil {
		t.Error("expected error for negative exchangeability")
	}
	if _, err := New(alignment.DNA, nil, nil, 1, 0); err == nil {
		t.Error("expected error for 0 categories")
	}
	if _, err := New(alignment.DataType(99), nil, nil, 1, 4); err == nil {
		t.Error("expected error for unknown data type")
	}
	if _, err := HKY85(nil, -2, 1, 1); err == nil {
		t.Error("expected error for negative kappa")
	}
}

func TestClone(t *testing.T) {
	m, err := GTR([]float64{0.3, 0.2, 0.25, 0.25}, nil, 4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	c.Freqs[0] = 0.99
	c.ExRates[0] = 42
	c.CatRates[0] = 42
	if m.Freqs[0] == 0.99 || m.ExRates[0] == 42 || m.CatRates[0] == 42 {
		t.Error("Clone must deep-copy parameter slices")
	}
}

func TestEmpiricalFreqs(t *testing.T) {
	a, err := alignment.New(
		[]string{"t1", "t2", "t3"},
		[][]byte{[]byte("AAAC"), []byte("AACG"), []byte("AA-T")},
	)
	if err != nil {
		t.Fatal(err)
	}
	d, err := alignment.Compress(a, alignment.SinglePartition(a, alignment.DNA, ""), alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := EmpiricalFreqs(d.Parts[0])
	sum := 0.0
	for _, v := range f {
		if v <= 0 {
			t.Errorf("empirical frequency %v not positive", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("frequencies sum to %v", sum)
	}
	if !(f[0] > f[1] && f[0] > f[2] && f[0] > f[3]) {
		t.Errorf("A dominates the data but freqs are %v", f)
	}
}

func TestByNameAndDefaults(t *testing.T) {
	a, _ := alignment.New(
		[]string{"t1", "t2", "t3"},
		[][]byte{[]byte("ACGT"), []byte("ACGT"), []byte("ACGT")},
	)
	d, _ := alignment.Compress(a, alignment.SinglePartition(a, alignment.DNA, ""), alignment.CompressOptions{})
	for _, name := range []string{"JC", "GTR", "DNA", "WAG", "SYN20", "POISSON"} {
		m, err := ByName(name, d.Parts[0], 4, 1)
		if err != nil || m == nil {
			t.Errorf("ByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ByName("NOPE", nil, 4, 1); err == nil {
		t.Error("expected error for unknown name")
	}
	m, err := DefaultFor(d.Parts[0], 4, 1)
	if err != nil || m.Type != alignment.DNA {
		t.Errorf("DefaultFor DNA failed: %v", err)
	}
}

func TestSyn20Deterministic(t *testing.T) {
	a, err := SYN20(4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SYN20(4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.ExRates {
		if a.ExRates[i] != b.ExRates[i] {
			t.Fatal("SYN20 must be deterministic")
		}
	}
	// The rate distribution must be heterogeneous (dynamic range > 20x).
	min, max := a.ExRates[0], a.ExRates[0]
	for _, r := range a.ExRates {
		min = math.Min(min, r)
		max = math.Max(max, r)
	}
	if max/min < 20 {
		t.Errorf("SYN20 dynamic range %v too small to mimic empirical matrices", max/min)
	}
}

// Property: random GTR models yield valid stochastic P matrices.
func TestPMatrixQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		freqs := make([]float64, 4)
		for i := range freqs {
			freqs[i] = 0.05 + rng.Float64()
		}
		ex := make([]float64, 6)
		for i := range ex {
			ex[i] = 0.05 + 3*rng.Float64()
		}
		m, err := GTR(freqs, ex, 4, 0.2+3*rng.Float64())
		if err != nil {
			return false
		}
		p := make([]float64, 16)
		bl := rng.Float64() * 5
		m.PMatrix(bl, p)
		for i := 0; i < 4; i++ {
			row := 0.0
			for j := 0; j < 4; j++ {
				if p[i*4+j] < 0 {
					return false
				}
				row += p[i*4+j]
			}
			if math.Abs(row-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPMatricesPerCategory(t *testing.T) {
	m, err := JC69(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 4*16)
	m.PMatrices(0.1, dst)
	single := make([]float64, 16)
	for c := 0; c < 4; c++ {
		m.PMatrix(m.CatRates[c]*0.1, single)
		for k := 0; k < 16; k++ {
			if dst[c*16+k] != single[k] {
				t.Fatalf("category %d entry %d mismatch", c, k)
			}
		}
	}
}
