package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"phylo/internal/alignment"
	"phylo/internal/schedule"
)

// versionedSchedule pairs an immutable schedule with a monotonically
// increasing version number, so sessions can detect a rebuild with one
// atomic pointer load.
type versionedSchedule struct {
	sched   *schedule.Schedule
	version int64
}

// ScheduleHolder is an atomically swappable slot for one strategy's current
// schedule. Schedules themselves are immutable; a rebuild publishes a *new*
// schedule under the next version, and every session picks the new version up
// at its own next region boundary (see Engine.refreshSchedule) — sessions
// mid-region keep the pointer they pinned, so a swap can never disturb a
// running region. Static strategies (cyclic, block, weighted) are published
// once and never swapped; the measured strategy is republished by Rebalance.
//
//plk:holder
type ScheduleHolder struct {
	v atomic.Pointer[versionedSchedule]
}

// newScheduleHolder publishes the initial schedule as version 1.
func newScheduleHolder(s *schedule.Schedule) *ScheduleHolder {
	h := &ScheduleHolder{}
	h.v.Store(&versionedSchedule{sched: s, version: 1})
	return h
}

// Current returns the holder's schedule and its version.
func (h *ScheduleHolder) Current() (*schedule.Schedule, int64) {
	vs := h.v.Load()
	return vs.sched, vs.version
}

// publish swaps in a rebuilt schedule under the next version. Callers must
// serialize publishes (Shared does, under its mutex).
func (h *ScheduleHolder) publish(s *schedule.Schedule) {
	old := h.v.Load()
	h.v.Store(&versionedSchedule{sched: s, version: old.version + 1})
}

// Shared is the immutable, session-independent half of the likelihood
// engine: the compressed alignment, the kernel backend and the CLV/sumtable
// memory layout derived from it, the per-pattern op-cost spans, and the
// per-strategy schedule holders. All of this is fixed per dataset — the
// paper's point is that it is built once and amortized over many likelihood
// evaluations — so one Shared can back any number of concurrent session
// engines (see NewSession) without synchronization on the hot path: every
// field is read-only after construction except the holder map (own mutex,
// lazily populated) and the measured holder's current schedule, which
// RebalanceMeasured swaps atomically (sessions only observe the swap at
// region boundaries).
type Shared struct {
	// Data is the compressed alignment (patterns, weights, tip encodings).
	Data *alignment.CompressedData
	// NumCats is the Gamma category count every session's models must match.
	NumCats int
	// Threads is the worker count the schedules are computed for; every
	// session executor must run exactly this many workers.
	Threads int
	// Backend is the resolved kernel backend (never BackendAuto); it fixes
	// the CLV layout below, so every session over this Shared runs it.
	Backend Backend

	maxS     int
	maxCodes int        // widest tip-code alphabet across partitions (16 or 23)
	layout   *CLVLayout // backend-derived CLV/sumtable geometry

	spans []schedule.Span // per-partition pattern ranges with op costs

	mu         sync.Mutex
	holders    map[schedule.Strategy]*ScheduleHolder //plk:holder
	baseCosts  []float64                             // per-partition per-pattern costs at batch width 1
	batchWidth int                                   // live replicate batch width pricing the spans (>= 1)
}

// NewShared computes the session-independent engine state for one dataset
// under the default (auto-resolved) kernel backend: memory layout offsets and
// the cost-annotated pattern spans that price the weighted schedule. This is
// the expensive-once part of engine construction.
func NewShared(data *alignment.CompressedData, numCats, threads int) (*Shared, error) {
	return NewSharedWith(data, numCats, threads, BackendAuto)
}

// NewSharedWith is NewShared with an explicit kernel backend. The backend is
// resolved here (BackendAuto consults PLK_BACKEND, then defaults to
// BackendFused) and determines the CLV layout the sessions' buffers and
// kernels use; it cannot change for the lifetime of the Shared.
func NewSharedWith(data *alignment.CompressedData, numCats, threads int, backend Backend) (*Shared, error) {
	if data == nil {
		return nil, errors.New("core: nil dataset")
	}
	if numCats < 1 {
		return nil, fmt.Errorf("core: category count %d must be positive", numCats)
	}
	if threads < 1 {
		return nil, fmt.Errorf("core: thread count %d must be positive", threads)
	}
	resolved, err := resolveBackend(backend)
	if err != nil {
		return nil, err
	}
	sh := &Shared{
		Data:    data,
		NumCats: numCats,
		Threads: threads,
		Backend: resolved,
		maxS:    data.MaxStates(),
		layout:  newCLVLayout(data.Parts, numCats, layoutKindFor(resolved)),
		spans:   make([]schedule.Span, len(data.Parts)),
		holders: make(map[schedule.Strategy]*ScheduleHolder),
	}
	tipFrac := tipChildFrac(data.NumTaxa())
	for i, p := range data.Parts {
		if c := alignment.NumCodes(p.Type); c > sh.maxCodes {
			sh.maxCodes = c
		}
		// The newview cost is the dominant kernel term and is proportional to
		// the other kernels' per-pattern costs in the states/cats factors that
		// matter for balance (the ~25x DNA vs protein gap), so it prices the
		// weighted assignment. It is the traversal-averaged tip-specialized
		// cost: tip children are table-row reads (O(s)), inner children full
		// P applications (O(s²)), mixed at the tree-shape-invariant tip
		// fraction — charging every child s² would overprice tip-adjacent
		// patterns now that the kernels specialize them. Costs are measured in
		// madd units and deliberately backend-invariant: the fused backend
		// performs the same madds faster, which rescales every span equally
		// and leaves the relative weights the schedules pack by unchanged.
		sh.spans[i] = schedule.Span{Lo: p.Offset, Hi: p.End(), Cost: opsNewviewAvg(p.Type.States(), numCats, tipFrac)}
	}
	sh.baseCosts = make([]float64, len(sh.spans))
	for i, sp := range sh.spans {
		sh.baseCosts[i] = sp.Cost
	}
	sh.batchWidth = 1
	return sh, nil
}

// Layout exposes the backend-derived CLV/sumtable geometry (read-only).
func (sh *Shared) Layout() *CLVLayout { return sh.layout }

// HolderFor returns the versioned schedule holder for a strategy, building
// the strategy's initial schedule on first use; concurrent sessions share
// the holder. Safe for concurrent use.
func (sh *Shared) HolderFor(strategy schedule.Strategy) (*ScheduleHolder, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if h, ok := sh.holders[strategy]; ok {
		return h, nil
	}
	s, err := schedule.New(strategy, sh.Threads, sh.spans)
	if err != nil {
		return nil, err
	}
	h := newScheduleHolder(s)
	sh.holders[strategy] = h
	return h, nil
}

// ScheduleFor returns the current pattern-to-worker assignment for a
// strategy (the holder's latest version). Safe for concurrent use.
func (sh *Shared) ScheduleFor(strategy schedule.Strategy) (*schedule.Schedule, error) {
	h, err := sh.HolderFor(strategy)
	if err != nil {
		return nil, err
	}
	s, _ := h.Current()
	return s, nil
}

// RebalanceMeasured rebuilds the measured strategy's schedule from observed
// per-pattern costs and publishes it as the next version. Every session
// running the measured strategy — including concurrent ones — adopts the new
// assignment at its own next region boundary; sessions never see a schedule
// change mid-region, and because every schedule covers the identical global
// pattern space and per-pattern results are schedule-invariant, a swap never
// invalidates any session's CLVs or changes its likelihoods beyond
// floating-point reassociation of the per-worker reduction. Concurrent
// rebalances serialize; the last publish wins.
func (sh *Shared) RebalanceMeasured(observed schedule.PartitionCosts) (*schedule.Schedule, error) {
	h, err := sh.HolderFor(schedule.Measured)
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur, _ := h.Current()
	next, err := cur.Rebalance(observed)
	if err != nil {
		return nil, err
	}
	h.publish(next)
	return next, nil
}

// OverrideSpanCosts replaces the analytic per-pattern span costs — one entry
// per partition — before any schedule has been built. It exists for the
// adaptive-scheduling experiments and tests, which deliberately misprice the
// model to show the measured strategy recovering from a wrong prior; it is
// not part of the production construction path.
func (sh *Shared) OverrideSpanCosts(costs []float64) error {
	if len(costs) != len(sh.spans) {
		return fmt.Errorf("core: %d span costs for %d partitions", len(costs), len(sh.spans))
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.holders) > 0 {
		return errors.New("core: span costs can only be overridden before the first schedule is built")
	}
	for i, c := range costs {
		if c < 0 {
			return fmt.Errorf("core: negative span cost %v for partition %d", c, i)
		}
		sh.spans[i].Cost = c
		sh.baseCosts[i] = c
	}
	return nil
}

// batchLaneOps is the per-pattern span-cost increment of one additional live
// replicate lane: the batched evaluate adds ~2 madds per lane and the batched
// derivative ~4 (see opsEvalLane/opsDerivLane); spans carry one cost across
// all region kinds, so they are priced at the blend. The increment is tiny
// next to a DNA newview span (~48 madds at 4 cats) and sizeable at large R —
// exactly the regime where an honest LPT pack and honest steal-cost estimates
// start to matter.
const batchLaneOps = 3.0

// BatchWidth reports the replicate batch width the span costs are currently
// priced for (1 until SetBatchWidth raises it).
func (sh *Shared) BatchWidth() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.batchWidth
}

// SetBatchWidth reprices every span for sessions running R-wide replicate
// batches — per-pattern cost becomes base + batchLaneOps·(R-1) — and
// republishes every strategy holder already built, so the weighted and
// adaptive packs (and the steal layouts derived from them) reflect the live
// batch width. Sessions adopt the republished schedules at their own next
// region boundary, the same versioned-holder mechanism rebalancing uses; a
// measured holder's observed costs are scaled by each span's repricing ratio
// rather than discarded, so the feedback loop keeps its learned relative
// costs across a width change. Idempotent per width; R < 1 is an error.
func (sh *Shared) SetBatchWidth(R int) error {
	if R < 1 {
		return fmt.Errorf("core: batch width %d must be positive", R)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if R == sh.batchWidth {
		return nil
	}
	prev := sh.batchWidth
	sh.batchWidth = R
	for i := range sh.spans {
		sh.spans[i].Cost = sh.baseCosts[i] + batchLaneOps*float64(R-1)
	}
	for strat, h := range sh.holders { //plk:allow(maprange) per-holder independent updates; order-free
		if strat == schedule.Measured {
			// Scale the measured pack's observed (seconds-per-pattern) costs by
			// the madd-unit repricing ratio — unit-free, so learned relative
			// costs survive the width change.
			cur, _ := h.Current()
			scaled := make(schedule.PartitionCosts, len(sh.spans))
			for i := range scaled {
				den := sh.baseCosts[i] + batchLaneOps*float64(prev-1)
				if den <= 0 {
					scaled[i] = cur.Span(i).Cost
					continue
				}
				scaled[i] = cur.Span(i).Cost * (sh.spans[i].Cost / den)
			}
			next, err := cur.Rebalance(scaled)
			if err != nil {
				return err
			}
			h.publish(next)
			continue
		}
		s, err := schedule.New(strat, sh.Threads, sh.spans)
		if err != nil {
			return err
		}
		h.publish(s)
	}
	return nil
}

// SpanCosts returns a copy of the current per-partition per-pattern costs
// pricing the weighted/measured schedules (analytic until overridden).
func (sh *Shared) SpanCosts() []float64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]float64, len(sh.spans))
	for i, sp := range sh.spans {
		out[i] = sp.Cost
	}
	return out
}

// NumPartitions returns the partition count of the underlying dataset.
func (sh *Shared) NumPartitions() int { return len(sh.Data.Parts) }
