package core

import (
	"errors"
	"fmt"
	"sync"

	"phylo/internal/alignment"
	"phylo/internal/schedule"
)

// Shared is the immutable, session-independent half of the likelihood
// engine: the compressed alignment, the CLV/sumtable memory layout derived
// from it, the per-pattern op-cost spans, and a cache of pattern-to-worker
// schedules. All of this is fixed per dataset — the paper's point is that
// it is built once and amortized over many likelihood evaluations — so one
// Shared can back any number of concurrent session engines (see NewSession)
// without synchronization on the hot path: every field is read-only after
// construction except the schedule cache, which has its own mutex.
type Shared struct {
	// Data is the compressed alignment (patterns, weights, tip encodings).
	Data *alignment.CompressedData
	// NumCats is the Gamma category count every session's models must match.
	NumCats int
	// Threads is the worker count the schedules are computed for; every
	// session executor must run exactly this many workers.
	Threads int

	maxS     int
	maxCodes int   // widest tip-code alphabet across partitions (16 or 23)
	clvBase  []int // per partition: offset into a CLV buffer
	clvLen   int   // total CLV floats per inner node
	sumBase  []int // per partition: offset into the sumtable workspace
	sumLen   int   // total sumtable floats

	spans []schedule.Span // per-partition pattern ranges with op costs

	mu     sync.Mutex
	scheds map[schedule.Strategy]*schedule.Schedule
}

// NewShared computes the session-independent engine state for one dataset:
// memory layout offsets and the cost-annotated pattern spans that price the
// weighted schedule. This is the expensive-once part of engine construction.
func NewShared(data *alignment.CompressedData, numCats, threads int) (*Shared, error) {
	if data == nil {
		return nil, errors.New("core: nil dataset")
	}
	if numCats < 1 {
		return nil, fmt.Errorf("core: category count %d must be positive", numCats)
	}
	if threads < 1 {
		return nil, fmt.Errorf("core: thread count %d must be positive", threads)
	}
	sh := &Shared{
		Data:    data,
		NumCats: numCats,
		Threads: threads,
		maxS:    data.MaxStates(),
		clvBase: make([]int, len(data.Parts)),
		sumBase: make([]int, len(data.Parts)),
		spans:   make([]schedule.Span, len(data.Parts)),
		scheds:  make(map[schedule.Strategy]*schedule.Schedule),
	}
	off, soff := 0, 0
	tipFrac := tipChildFrac(data.NumTaxa())
	for i, p := range data.Parts {
		sh.clvBase[i] = off
		sh.sumBase[i] = soff
		off += p.PatternCount * numCats * p.Type.States()
		soff += p.PatternCount * numCats * p.Type.States()
		if c := alignment.NumCodes(p.Type); c > sh.maxCodes {
			sh.maxCodes = c
		}
		// The newview cost is the dominant kernel term and is proportional to
		// the other kernels' per-pattern costs in the states/cats factors that
		// matter for balance (the ~25x DNA vs protein gap), so it prices the
		// weighted assignment. It is the traversal-averaged tip-specialized
		// cost: tip children are table-row reads (O(s)), inner children full
		// P applications (O(s²)), mixed at the tree-shape-invariant tip
		// fraction — charging every child s² would overprice tip-adjacent
		// patterns now that the kernels specialize them.
		sh.spans[i] = schedule.Span{Lo: p.Offset, Hi: p.End(), Cost: opsNewviewAvg(p.Type.States(), numCats, tipFrac)}
	}
	sh.clvLen = off
	sh.sumLen = soff
	return sh, nil
}

// ScheduleFor returns the pattern-to-worker assignment for a strategy,
// computing it on first use and caching it afterwards; concurrent sessions
// share the cached schedules. Safe for concurrent use.
func (sh *Shared) ScheduleFor(strategy schedule.Strategy) (*schedule.Schedule, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.scheds[strategy]; ok {
		return s, nil
	}
	s, err := schedule.New(strategy, sh.Threads, sh.spans)
	if err != nil {
		return nil, err
	}
	sh.scheds[strategy] = s
	return s, nil
}

// NumPartitions returns the partition count of the underlying dataset.
func (sh *Shared) NumPartitions() int { return len(sh.Data.Parts) }
