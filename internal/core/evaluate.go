package core

import (
	"fmt"
	"math"
	"time"

	"phylo/internal/alignment"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/tree"
)

// Evaluate computes the log likelihood at the virtual root placed on the
// branch (p, p.Back). Both end CLVs must already be valid and oriented
// towards the branch (use TraverseRoot). It returns the total over active
// partitions and the per-partition values (zero entries for masked
// partitions). The per-pattern reduction is one parallel region; the
// per-partition sums are what the newPAR optimizers consume.
func (e *Engine) Evaluate(p *tree.Node, active []bool) (float64, []float64) {
	q := p.Back
	if p.IsTip() && q.IsTip() {
		panic("core: Evaluate on a tip-tip branch (2-taxon tree not supported)")
	}
	// Orient so that the possibly-tip end is q: the kernel treats p's side
	// as the pi-weighted "left" vector, which may be a tip vector too.
	act := e.activeOrAll(active)
	e.refreshSchedule() // region boundary: adopt a rebalanced schedule if published
	if e.stealRT != nil {
		return e.evaluateSteal(p, q, act)
	}
	e.Exec.Run(parallel.RegionEvaluate, func(w int, ctx *parallel.WorkerCtx) {
		partials := e.evalPartials[w]
		pm := e.pmScratch[w][0]
		ops := 0.0
		for ip := range e.Data.Parts {
			if !act[ip] {
				partials[ip] = 0
				continue
			}
			var t0 time.Time
			if e.measure {
				t0 = time.Now()
			}
			partials[ip], ops = e.evaluatePartition(p, q, ip, w, pm, ops)
			if e.measure {
				e.chargePartition(w, ip, t0)
			}
		}
		ctx.Ops += ops
	})
	perPart := make([]float64, len(e.Data.Parts))
	total := 0.0
	for w := 0; w < e.Exec.Threads(); w++ {
		for ip, v := range e.evalPartials[w] {
			perPart[ip] += v
		}
	}
	for ip, v := range perPart {
		if act[ip] {
			total += v
		}
	}
	return total, perPart
}

// evalPattern is the per-pattern evaluate kernel shared by the parallel
// reduction and SiteLogLikelihoods: the mean-over-categories site likelihood
// before the log and the scaling-exponent correction. xl is the p-side CLV
// slice (a single s-length tip vector when pTip); xr the q-side analogue.
// When qTab is non-nil (the tip-case specialization) the table row for qCode
// already holds the P applications and xr is ignored.
func evalPattern(pm, freqs []float64, s, cats int, xl []float64, pTip bool, xr []float64, qTip bool, qTab []float64, qCode byte) float64 {
	li := 0.0
	if qTab != nil {
		t := qTab[int(qCode)*cats*s:]
		for c := 0; c < cats; c++ {
			cl := xl
			if !pTip {
				cl = xl[c*s : (c+1)*s]
			}
			tc := t[c*s : (c+1)*s]
			for a := 0; a < s; a++ {
				li += freqs[a] * cl[a] * tc[a]
			}
		}
		return li
	}
	ss := s * s
	for c := 0; c < cats; c++ {
		pc := pm[c*ss : (c+1)*ss]
		cl := xl
		if !pTip {
			cl = xl[c*s : (c+1)*s]
		}
		cr := xr
		if !qTip {
			cr = xr[c*s : (c+1)*s]
		}
		for a := 0; a < s; a++ {
			row := a * s
			t := 0.0
			for b := 0; b < s; b++ {
				t += pc[row+b] * cr[b]
			}
			li += freqs[a] * cl[a] * t
		}
	}
	return li
}

// evaluatePartition reduces worker w's share of one partition's site log
// likelihoods and returns (partialSum, accumulated ops). A tip on the q side
// whose share amortizes a lookup table skips the per-pattern P application
// entirely (tip-case specialization; results are bit-identical).
func (e *Engine) evaluatePartition(p, q *tree.Node, ip, w int, pm []float64, ops float64) (float64, float64) {
	runs := e.workRuns(w, ip)
	if len(runs) == 0 {
		return 0, ops
	}
	var c evalSpanCtx
	e.prepareEvalSpan(&c, p, q, ip, w, pm)
	c.ensureTable(runsPatternCount(runs))
	sum := 0.0
	count := 0
	for _, run := range runs {
		s, n := c.process(run)
		sum += s
		count += n
	}
	return sum, ops + c.takeOps(count)
}

// evalSpanCtx is the per-(partition, worker) evaluate setup, shared by the
// precomputed-assignment reduction (one contiguous share per worker, summed
// per worker) and the chunked work-stealing reduction (one partial sum per
// chunk, reduced master-side in fixed chunk order). See nvSpanCtx.
type evalSpanCtx struct {
	e          *Engine
	ip, w      int
	s, cats    int
	cs         int
	base       int
	partOffset int
	dtype      alignment.DataType
	weights    []float64
	invCats    float64
	pTip, qTip bool
	pv, qv     []float64
	psc, qsc   []int32
	pRow, qRow []byte
	pm         []float64
	freqs      []float64
	qTab       []float64
	fixed      float64
}

// prepareEvalSpan binds c to (root branch, partition, worker): the p-side
// transition matrices into the worker's scratch and the CLV/tip views of
// both branch ends.
func (e *Engine) prepareEvalSpan(c *evalSpanCtx, p, q *tree.Node, ip, w int, pm []float64) {
	part := e.Data.Parts[ip]
	s := part.Type.States()
	cats := e.numCats
	m := e.Models[ip]
	m.PMatrices(p.Z[e.slotOf(ip)], pm[:cats*s*s])
	*c = evalSpanCtx{
		e: e, ip: ip, w: w, s: s, cats: cats, cs: cats * s,
		base: e.clvBase[ip], partOffset: part.Offset, dtype: part.Type,
		weights: part.Weights, invCats: 1.0 / float64(cats),
		pTip: p.IsTip(), qTip: q.IsTip(),
		pm: pm, freqs: m.Freqs,
		fixed: float64(cats * s * s * s), // per-worker P-matrix setup
	}
	if c.pTip {
		c.pRow = part.Tips[p.Index]
	} else {
		c.pv = e.clv(p.Index)
		c.psc = e.scale(p.Index)
	}
	if c.qTip {
		c.qRow = part.Tips[q.Index]
	} else {
		c.qv = e.clv(q.Index)
		c.qsc = e.scale(q.Index)
	}
}

// ensureTable builds the q-side tip lookup table when the pending work unit
// amortizes it (see nvSpanCtx.ensureTables for the determinism argument).
func (c *evalSpanCtx) ensureTable(patterns int) {
	e := c.e
	if !e.Specialize || !c.qTip || c.qTab != nil || patterns < tipTableMinPatterns(c.dtype) {
		return
	}
	c.qTab = buildTipTable(e.tipScratch[c.w][0], c.dtype, c.pm[:c.cats*c.s*c.s], c.s, c.cats)
	c.fixed += opsTipTable(c.s, c.cats, alignment.NumCodes(c.dtype))
}

// takeOps prices count processed patterns and claims the setup charge.
func (c *evalSpanCtx) takeOps(count int) float64 {
	ops := float64(count)*opsEvaluateCase(c.s, c.cats, c.qTab != nil) + c.fixed
	c.fixed = 0
	return ops
}

// process reduces one pattern run to its weighted log-likelihood partial sum
// and pattern count. Patterns are accumulated in ascending order within the
// run, so a run's partial is invariant to which worker processes it.
func (c *evalSpanCtx) process(run schedule.Run) (float64, int) {
	cs := c.cs
	sum := 0.0
	count := 0
	for i := run.Lo; i < run.Hi; i += run.Step {
		j := i - c.partOffset
		off := c.base + j*cs
		var xl, xr []float64
		var qCode byte
		if c.pTip {
			xl = alignment.TipVector(c.dtype, c.pRow[j])
		} else {
			xl = c.pv[off : off+cs]
		}
		switch {
		case c.qTab != nil:
			qCode = c.qRow[j]
		case c.qTip:
			xr = alignment.TipVector(c.dtype, c.qRow[j])
		default:
			xr = c.qv[off : off+cs]
		}
		li := evalPattern(c.pm, c.freqs, c.s, c.cats, xl, c.pTip, xr, c.qTip, c.qTab, qCode) * c.invCats
		sc := int32(0)
		if !c.pTip {
			sc += c.psc[i]
		}
		if !c.qTip {
			sc += c.qsc[i]
		}
		if li <= 0 || math.IsNaN(li) {
			// Fully incompatible data cannot occur with strictly positive P
			// matrices; guard against pathological rounding anyway.
			li = math.SmallestNonzeroFloat64
		}
		sum += c.weights[j] * (math.Log(li) + float64(sc)*logMinLik)
		count++
	}
	return sum, count
}

// SiteLogLikelihoods returns the per-pattern log likelihoods (unweighted) of
// one partition at the canonical root; primarily a debugging and testing
// aid. It routes every pattern through the same evalPattern kernel (and tip
// table decision) as the parallel reduction, so it cannot drift from the
// specialized path.
func (e *Engine) SiteLogLikelihoods(ip int) []float64 {
	root := e.Tree.Tips[0].Back
	e.Traverse(root, false, nil)
	q := root.Back
	part := e.Data.Parts[ip]
	out := make([]float64, part.PatternCount)
	s := part.Type.States()
	cats := e.numCats
	cs := cats * s
	m := e.Models[ip]
	pm := make([]float64, cats*s*s)
	m.PMatrices(root.Z[e.slotOf(ip)], pm)
	base := e.clvBase[ip]
	invCats := 1.0 / float64(cats)
	pTip, qTip := root.IsTip(), q.IsTip()
	if pTip && qTip {
		panic("core: degenerate two-taxon tree")
	}
	var qTab []float64
	if e.Specialize && qTip && part.PatternCount >= tipTableMinPatterns(part.Type) {
		qTab = buildTipTable(make([]float64, alignment.NumCodes(part.Type)*cats*s), part.Type, pm, s, cats)
	}
	for j := 0; j < part.PatternCount; j++ {
		i := part.Offset + j
		off := base + j*cs
		var xl, xr []float64
		var qCode byte
		var sc int32
		if pTip {
			xl = alignment.TipVector(part.Type, part.Tips[root.Index][j])
		} else {
			xl = e.clv(root.Index)[off : off+cs]
			sc += e.scale(root.Index)[i]
		}
		switch {
		case qTab != nil:
			qCode = part.Tips[q.Index][j]
		case qTip:
			xr = alignment.TipVector(part.Type, part.Tips[q.Index][j])
		default:
			xr = e.clv(q.Index)[off : off+cs]
		}
		if !qTip {
			sc += e.scale(q.Index)[i]
		}
		li := evalPattern(pm, m.Freqs, s, cats, xl, pTip, xr, qTip, qTab, qCode) * invCats
		if li <= 0 || math.IsNaN(li) {
			// Mirror evaluatePartition's clamp exactly: without it this debug
			// path could emit -Inf/NaN site log likelihoods and drift from the
			// parallel reduction it promises to reproduce.
			li = math.SmallestNonzeroFloat64
		}
		out[j] = math.Log(li) + float64(sc)*logMinLik
	}
	return out
}

// CheckFinite validates that a log likelihood is a usable number; the
// optimizers call it to fail fast on numerical corruption.
func CheckFinite(lnl float64) error {
	if math.IsNaN(lnl) || math.IsInf(lnl, 0) {
		return fmt.Errorf("core: non-finite log likelihood %v", lnl)
	}
	return nil
}
