package core

import (
	"fmt"
	"math"
	"time"

	"phylo/internal/alignment"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/tree"
)

// Evaluate computes the log likelihood at the virtual root placed on the
// branch (p, p.Back). Both end CLVs must already be valid and oriented
// towards the branch (use TraverseRoot). It returns the total over active
// partitions and the per-partition values (zero entries for masked
// partitions). The per-pattern reduction is one parallel region; the
// per-partition sums are what the newPAR optimizers consume.
func (e *Engine) Evaluate(p *tree.Node, active []bool) (float64, []float64) {
	q := p.Back
	if p.IsTip() && q.IsTip() {
		panic("core: Evaluate on a tip-tip branch (2-taxon tree not supported)")
	}
	// Orient so that the possibly-tip end is q: the kernel treats p's side
	// as the pi-weighted "left" vector, which may be a tip vector too.
	act := e.activeOrAll(active)
	e.refreshSchedule() // region boundary: adopt a rebalanced schedule if published
	if e.stealRT != nil {
		return e.evaluateSteal(p, q, act)
	}
	e.Exec.Run(parallel.RegionEvaluate, func(w int, ctx *parallel.WorkerCtx) {
		partials := e.evalPartials[w]
		pm := e.pmScratch[w][0]
		ops := 0.0
		for ip := range e.Data.Parts {
			if !act[ip] {
				partials[ip] = 0
				continue
			}
			var t0 time.Time
			if e.measure {
				t0 = time.Now() //plk:allow(timenow) measured-cost attribution; never feeds likelihood values
			}
			partials[ip], ops = e.evaluatePartition(p, q, ip, w, pm, ops)
			if e.measure {
				e.chargePartition(w, ip, t0)
			}
		}
		ctx.Ops += ops
	})
	perPart := make([]float64, len(e.Data.Parts))
	total := 0.0
	for w := 0; w < e.Exec.Threads(); w++ {
		for ip, v := range e.evalPartials[w] {
			perPart[ip] += v
		}
	}
	for ip, v := range perPart {
		if act[ip] {
			total += v
		}
	}
	return total, perPart
}

// patternLi is the per-pattern evaluate kernel shared by the parallel
// reduction and SiteLogLikelihoods: the (unnormalized) sum-over-categories
// site likelihood before the log and the scaling-exponent correction, read
// through the layout strides. When the q-side tip table is built, its row
// already holds the P applications. The accumulation runs in (cat asc, state
// asc) order — the order every backend must preserve for bit-identity.
//
//plk:hotpath
func (c *evalSpanCtx) patternLi(j, off int) float64 {
	s, cats := c.s, c.cats
	li := 0.0
	var tvl, tvr []float64
	if c.pTip {
		tvl = alignment.TipVector(c.dtype, c.pRow[j])
	}
	if c.qTab != nil {
		t := c.qTab[int(c.qRow[j])*c.cs:]
		for cat := 0; cat < cats; cat++ {
			cl := tvl
			if !c.pTip {
				co := off + cat*c.catStride
				cl = c.pv[co : co+s]
			}
			tc := t[cat*s : (cat+1)*s]
			for a := 0; a < s; a++ {
				li += c.freqs[a] * cl[a] * tc[a]
			}
		}
		return li
	}
	if c.qTip {
		tvr = alignment.TipVector(c.dtype, c.qRow[j])
	}
	ss := s * s
	for cat := 0; cat < cats; cat++ {
		pc := c.pm[cat*ss : (cat+1)*ss]
		co := off + cat*c.catStride
		cl := tvl
		if !c.pTip {
			cl = c.pv[co : co+s]
		}
		cr := tvr
		if !c.qTip {
			cr = c.qv[co : co+s]
		}
		for a := 0; a < s; a++ {
			row := a * s
			t := 0.0
			for b := 0; b < s; b++ {
				t += pc[row+b] * cr[b]
			}
			li += c.freqs[a] * cl[a] * t
		}
	}
	return li
}

// evaluatePartition reduces worker w's share of one partition's site log
// likelihoods and returns (partialSum, accumulated ops). A tip on the q side
// whose share amortizes a lookup table skips the per-pattern P application
// entirely (tip-case specialization; results are bit-identical).
func (e *Engine) evaluatePartition(p, q *tree.Node, ip, w int, pm []float64, ops float64) (float64, float64) {
	runs := e.workRuns(w, ip)
	if len(runs) == 0 {
		return 0, ops
	}
	var c evalSpanCtx
	e.prepareEvalSpan(&c, p, q, ip, w, pm)
	c.ensureTable(runsPatternCount(runs))
	sum := 0.0
	count := 0
	for _, run := range runs {
		s, n := c.process(run)
		sum += s
		count += n
	}
	return sum, ops + c.takeOps(count)
}

// evalSpanCtx is the per-(partition, worker) evaluate setup, shared by the
// precomputed-assignment reduction (one contiguous share per worker, summed
// per worker) and the chunked work-stealing reduction (one partial sum per
// chunk, reduced master-side in fixed chunk order). See nvSpanCtx.
type evalSpanCtx struct {
	e          *Engine
	ip, w      int
	s, cats    int
	cs         int
	base       int
	patStride  int // layout: offset between consecutive patterns
	catStride  int // layout: offset between consecutive categories
	partOffset int
	dtype      alignment.DataType
	weights    []float64
	invCats    float64
	pTip, qTip bool
	pv, qv     []float64
	psc, qsc   []int32
	pRow, qRow []byte
	pm         []float64
	freqs      []float64
	qTab       []float64
	kern       KernelBackend
	fixed      float64

	// Batched-replicate bindings (zero unless bindBatch attached a WeightSet):
	// batchR lanes per pattern, batchW[j*batchR+r] the weight of the span's
	// j-th pattern under replicate r (see internal/core/batch.go).
	batchR int
	batchW []float64
}

// prepareEvalSpan binds c to (root branch, partition, worker): the p-side
// transition matrices into the worker's scratch and the CLV/tip views of
// both branch ends.
func (e *Engine) prepareEvalSpan(c *evalSpanCtx, p, q *tree.Node, ip, w int, pm []float64) {
	part := e.Data.Parts[ip]
	s := part.Type.States()
	cats := e.numCats
	m := e.Models[ip]
	m.PMatrices(p.Z[e.slotOf(ip)], pm[:cats*s*s])
	*c = evalSpanCtx{
		e: e, ip: ip, w: w, s: s, cats: cats, cs: cats * s,
		base: e.layout.Base(ip), patStride: e.layout.PatStride(ip), catStride: e.layout.CatStride(ip),
		partOffset: part.Offset, dtype: part.Type,
		weights: e.weightsFor(part), invCats: 1.0 / float64(cats),
		pTip: p.IsTip(), qTip: q.IsTip(),
		pm: pm, freqs: m.Freqs,
		kern:  e.kernels[ip],
		fixed: float64(cats * s * s * s), // per-worker P-matrix setup
	}
	if c.pTip {
		c.pRow = part.Tips[p.Index]
	} else {
		c.pv = e.clv(p.Index)
		c.psc = e.scale(p.Index)
	}
	if c.qTip {
		c.qRow = part.Tips[q.Index]
	} else {
		c.qv = e.clv(q.Index)
		c.qsc = e.scale(q.Index)
	}
}

// ensureTable builds the q-side tip lookup table when the pending work unit
// amortizes it (see nvSpanCtx.ensureTables for the determinism argument).
func (c *evalSpanCtx) ensureTable(patterns int) {
	e := c.e
	if !e.Specialize || !c.qTip || c.qTab != nil || patterns < tipTableMinPatterns(c.dtype) {
		return
	}
	c.qTab = buildTipTable(e.tipScratch[c.w][0], c.dtype, c.pm[:c.cats*c.s*c.s], c.s, c.cats)
	c.fixed += opsTipTable(c.s, c.cats, alignment.NumCodes(c.dtype))
}

// takeOps prices count processed patterns and claims the setup charge.
func (c *evalSpanCtx) takeOps(count int) float64 {
	ops := float64(count)*opsEvaluateCase(c.s, c.cats, c.qTab != nil) + c.fixed
	c.fixed = 0
	return ops
}

// process reduces one pattern run to its weighted log-likelihood partial sum
// and pattern count, dispatching through the partition's backend. Patterns
// are accumulated in ascending order within the run, so a run's partial is
// invariant to which worker processes it.
func (c *evalSpanCtx) process(run schedule.Run) (float64, int) {
	return c.kern.Evaluate(c, run)
}

// processGeneric is the layout-aware generic evaluate body.
//
//plk:hotpath
func (c *evalSpanCtx) processGeneric(run schedule.Run) (float64, int) {
	sum := 0.0
	count := 0
	for i := run.Lo; i < run.Hi; i += run.Step {
		j := i - c.partOffset
		sum += c.weights[j] * c.site(i, j, c.patternLi(j, c.base+j*c.patStride))
		count++
	}
	return sum, count
}

// site turns one pattern's raw category-summed likelihood into its site log
// likelihood: normalize by the category count, fold in the scaling exponents
// of both branch ends, clamp, and take the log. It is the shared tail of
// every backend's evaluate body and of SiteLogLikelihoods.
//
//plk:hotpath
func (c *evalSpanCtx) site(i, j int, rawLi float64) float64 {
	li := rawLi * c.invCats
	sc := int32(0)
	if !c.pTip {
		sc += c.psc[i]
	}
	if !c.qTip {
		sc += c.qsc[i]
	}
	if li <= 0 || math.IsNaN(li) {
		// Fully incompatible data cannot occur with strictly positive P
		// matrices; guard against pathological rounding anyway.
		li = math.SmallestNonzeroFloat64
	}
	return math.Log(li) + float64(sc)*logMinLik
}

// SiteLogLikelihoods returns the per-pattern log likelihoods (unweighted) of
// one partition at the canonical root; primarily a debugging and testing
// aid. It routes every pattern through the same evalSpanCtx kernel (layout
// strides, tip table decision, clamp) as the parallel reduction, so it cannot
// drift from the parallel path on any backend: the stride-aware generic body
// and the fused body accumulate in the same order, so their site values are
// bit-identical and one serial sweep serves every backend.
func (e *Engine) SiteLogLikelihoods(ip int) []float64 {
	root := e.Tree.Tips[0].Back
	e.Traverse(root, false, nil)
	q := root.Back
	if root.IsTip() && q.IsTip() {
		panic("core: degenerate two-taxon tree")
	}
	part := e.Data.Parts[ip]
	out := make([]float64, part.PatternCount)
	// Runs outside any region, so worker 0's scratch is free to borrow.
	var c evalSpanCtx
	e.prepareEvalSpan(&c, root, q, ip, 0, e.pmScratch[0][0])
	c.ensureTable(part.PatternCount)
	for j := 0; j < part.PatternCount; j++ {
		i := part.Offset + j
		out[j] = c.site(i, j, c.patternLi(j, c.base+j*c.patStride))
	}
	return out
}

// CheckFinite validates that a log likelihood is a usable number; the
// optimizers call it to fail fast on numerical corruption.
func CheckFinite(lnl float64) error {
	if math.IsNaN(lnl) || math.IsInf(lnl, 0) {
		return fmt.Errorf("core: non-finite log likelihood %v", lnl)
	}
	return nil
}
