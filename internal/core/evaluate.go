package core

import (
	"fmt"
	"math"

	"phylo/internal/alignment"
	"phylo/internal/parallel"
	"phylo/internal/tree"
)

// Evaluate computes the log likelihood at the virtual root placed on the
// branch (p, p.Back). Both end CLVs must already be valid and oriented
// towards the branch (use TraverseRoot). It returns the total over active
// partitions and the per-partition values (zero entries for masked
// partitions). The per-pattern reduction is one parallel region; the
// per-partition sums are what the newPAR optimizers consume.
func (e *Engine) Evaluate(p *tree.Node, active []bool) (float64, []float64) {
	q := p.Back
	if p.IsTip() && q.IsTip() {
		panic("core: Evaluate on a tip-tip branch (2-taxon tree not supported)")
	}
	// Orient so that the possibly-tip end is q: the kernel treats p's side
	// as the pi-weighted "left" vector, which may be a tip vector too.
	act := e.activeOrAll(active)
	e.Exec.Run(parallel.RegionEvaluate, func(w int, ctx *parallel.WorkerCtx) {
		partials := e.evalPartials[w]
		pm := e.pmScratch[w][0]
		ops := 0.0
		for ip := range e.Data.Parts {
			if !act[ip] {
				partials[ip] = 0
				continue
			}
			partials[ip], ops = e.evaluatePartition(p, q, ip, w, pm, ops)
		}
		ctx.Ops += ops
	})
	perPart := make([]float64, len(e.Data.Parts))
	total := 0.0
	for w := 0; w < e.Exec.Threads(); w++ {
		for ip, v := range e.evalPartials[w] {
			perPart[ip] += v
		}
	}
	for ip, v := range perPart {
		if act[ip] {
			total += v
		}
	}
	return total, perPart
}

// evaluatePartition reduces worker w's share of one partition's site log
// likelihoods and returns (partialSum, accumulated ops).
func (e *Engine) evaluatePartition(p, q *tree.Node, ip, w int, pm []float64, ops float64) (float64, float64) {
	runs := e.workRuns(w, ip)
	if len(runs) == 0 {
		return 0, ops
	}
	part := e.Data.Parts[ip]
	s := part.Type.States()
	cats := e.numCats
	cs := cats * s
	ss := s * s
	m := e.Models[ip]
	slot := e.slotOf(ip)
	m.PMatrices(p.Z[slot], pm[:cats*ss])
	base := e.clvBase[ip]
	invCats := 1.0 / float64(cats)

	pTip, qTip := p.IsTip(), q.IsTip()
	var pv, qv []float64
	var psc, qsc []int32
	var pRow, qRow []byte
	if pTip {
		pRow = part.Tips[p.Index]
	} else {
		pv = e.clv(p.Index)
		psc = e.scale(p.Index)
	}
	if qTip {
		qRow = part.Tips[q.Index]
	} else {
		qv = e.clv(q.Index)
		qsc = e.scale(q.Index)
	}
	freqs := m.Freqs
	sum := 0.0
	count := 0
	for _, run := range runs {
		for i := run.Lo; i < run.Hi; i += run.Step {
			j := i - part.Offset
			off := base + j*cs
			var xl, xr []float64
			if pTip {
				xl = alignment.TipVector(part.Type, pRow[j])
			} else {
				xl = pv[off : off+cs]
			}
			if qTip {
				xr = alignment.TipVector(part.Type, qRow[j])
			} else {
				xr = qv[off : off+cs]
			}
			li := 0.0
			for c := 0; c < cats; c++ {
				pc := pm[c*ss : (c+1)*ss]
				cl := xl
				if !pTip {
					cl = xl[c*s : (c+1)*s]
				}
				cr := xr
				if !qTip {
					cr = xr[c*s : (c+1)*s]
				}
				for a := 0; a < s; a++ {
					row := a * s
					t := 0.0
					for b := 0; b < s; b++ {
						t += pc[row+b] * cr[b]
					}
					li += freqs[a] * cl[a] * t
				}
			}
			li *= invCats
			sc := int32(0)
			if !pTip {
				sc += psc[i]
			}
			if !qTip {
				sc += qsc[i]
			}
			if li <= 0 || math.IsNaN(li) {
				// Fully incompatible data cannot occur with strictly positive P
				// matrices; guard against pathological rounding anyway.
				li = math.SmallestNonzeroFloat64
			}
			sum += part.Weights[j] * (math.Log(li) + float64(sc)*logMinLik)
			count++
		}
	}
	ops += float64(count)*opsEvaluate(s, cats) + float64(cats*s*s*s)
	return sum, ops
}

// SiteLogLikelihoods returns the per-pattern log likelihoods (unweighted) of
// one partition at the canonical root; primarily a debugging and testing aid.
func (e *Engine) SiteLogLikelihoods(ip int) []float64 {
	root := e.Tree.Tips[0].Back
	e.Traverse(root, false, nil)
	q := root.Back
	part := e.Data.Parts[ip]
	out := make([]float64, part.PatternCount)
	s := part.Type.States()
	cats := e.numCats
	cs := cats * s
	ss := s * s
	m := e.Models[ip]
	pm := make([]float64, cats*ss)
	m.PMatrices(root.Z[e.slotOf(ip)], pm)
	base := e.clvBase[ip]
	pTip, qTip := root.IsTip(), q.IsTip()
	if pTip && qTip {
		panic("core: degenerate two-taxon tree")
	}
	for j := 0; j < part.PatternCount; j++ {
		i := part.Offset + j
		off := base + j*cs
		var xl, xr []float64
		var sc int32
		if pTip {
			xl = alignment.TipVector(part.Type, part.Tips[root.Index][j])
		} else {
			xl = e.clv(root.Index)[off : off+cs]
			sc += e.scale(root.Index)[i]
		}
		if qTip {
			xr = alignment.TipVector(part.Type, part.Tips[q.Index][j])
		} else {
			xr = e.clv(q.Index)[off : off+cs]
			sc += e.scale(q.Index)[i]
		}
		li := 0.0
		for c := 0; c < cats; c++ {
			pc := pm[c*ss : (c+1)*ss]
			cl := xl
			if !pTip {
				cl = xl[c*s : (c+1)*s]
			}
			cr := xr
			if !qTip {
				cr = xr[c*s : (c+1)*s]
			}
			for a := 0; a < s; a++ {
				t := 0.0
				for b := 0; b < s; b++ {
					t += pc[a*s+b] * cr[b]
				}
				li += m.Freqs[a] * cl[a] * t
			}
		}
		li /= float64(cats)
		out[j] = math.Log(li) + float64(sc)*logMinLik
	}
	return out
}

// CheckFinite validates that a log likelihood is a usable number; the
// optimizers call it to fail fast on numerical corruption.
func CheckFinite(lnl float64) error {
	if math.IsNaN(lnl) || math.IsInf(lnl, 0) {
		return fmt.Errorf("core: non-finite log likelihood %v", lnl)
	}
	return nil
}
