package core

// Memory accounting. A likelihood-serving cache needs a price per dataset to
// evict against a byte budget, and that price has two parts: what the Shared
// itself keeps resident (compressed alignment, schedules, layout tables) and
// what every session opened over it will allocate (CLVs, scaling vectors,
// the sumtable, per-worker scratch). The session part dominates by orders of
// magnitude on real datasets — (taxa-2) CLV buffers of layout.Total() floats
// each — so a cache that priced only the shared half would badly undercount
// the capacity a cached dataset consumes once it serves traffic.

// MemoryFootprint itemizes the heap bytes of one Shared plus the estimated
// bytes of one session over it. All figures count the large flat buffers and
// tables; per-object Go runtime overhead (slice headers, map buckets,
// goroutine stacks) is not modelled.
type MemoryFootprint struct {
	// CompressedAlignment covers the pattern-compressed dataset: encoded tip
	// codes ([taxon][pattern] bytes), pattern weights, presence masks, and
	// taxon/partition names.
	CompressedAlignment int64 `json:"compressed_alignment"`
	// Schedules covers every pattern-to-worker schedule built so far (the
	// per-strategy holders are lazily populated; rebuilt measured schedules
	// replace their predecessor, so one per strategy is resident).
	Schedules int64 `json:"schedules"`
	// Layout covers the CLV/sumtable geometry descriptor (per-partition
	// offset and stride tables).
	Layout int64 `json:"layout"`
	// SessionCLVs is the dominant per-session term: (taxa-2) inner-node
	// buffers of layout.Total() float64s each, padding included.
	SessionCLVs int64 `json:"session_clvs"`
	// SessionScales is the per-inner-node int32 scaling-exponent vectors.
	SessionScales int64 `json:"session_scales"`
	// SessionSumtable is the branch-derivative workspace.
	SessionSumtable int64 `json:"session_sumtable"`
	// SessionScratch is the per-worker kernel scratch: two P-matrix buffers,
	// the exponential/derivative tables, and the two tip lookup tables per
	// worker (the tip tables are the large term: codes × cats × s floats).
	SessionScratch int64 `json:"session_scratch"`
}

// SharedBytes totals the session-independent (dataset-resident) terms.
func (f MemoryFootprint) SharedBytes() int64 {
	return f.CompressedAlignment + f.Schedules + f.Layout
}

// SessionBytes totals the estimated allocation of one session.
func (f MemoryFootprint) SessionBytes() int64 {
	return f.SessionCLVs + f.SessionScales + f.SessionSumtable + f.SessionScratch
}

// TotalBytes is SharedBytes plus one session's SessionBytes — the price of
// keeping a dataset resident and serving it.
func (f MemoryFootprint) TotalBytes() int64 {
	return f.SharedBytes() + f.SessionBytes()
}

// MemoryFootprint computes the shared state's resident bytes and the
// estimated per-session bytes. Safe for concurrent use; the schedule term
// reflects the holders built so far.
func (sh *Shared) MemoryFootprint() MemoryFootprint {
	var f MemoryFootprint
	for _, name := range sh.Data.TaxaNames {
		f.CompressedAlignment += int64(len(name))
	}
	for _, p := range sh.Data.Parts {
		f.CompressedAlignment += int64(len(p.Name)) +
			8*int64(len(p.Weights)) + int64(len(p.Present))
		for _, tips := range p.Tips {
			f.CompressedAlignment += int64(len(tips))
		}
	}
	sh.mu.Lock()
	f.Schedules = 24 * int64(len(sh.spans)) // Span{Lo, Hi int; Cost float64}
	for _, h := range sh.holders {          //plk:allow(maprange) commutative int accumulation; order-free
		s, _ := h.Current()
		f.Schedules += s.MemoryBytes()
	}
	sh.mu.Unlock()
	// Seven per-partition int slices in CLVLayout (base, patStride,
	// catStride, states, counts, sumBase) plus the schedule spans above.
	f.Layout = 8 * 7 * int64(len(sh.Data.Parts))

	nInner := int64(sh.Data.NumTaxa() - 2)
	f.SessionCLVs = nInner * 8 * int64(sh.layout.Total())
	f.SessionScales = nInner * 4 * int64(sh.Data.TotalPatterns)
	f.SessionSumtable = 8 * int64(sh.layout.SumTotal())
	perWorker := 2*sh.NumCats*sh.maxS*sh.maxS + // P-matrix pair
		3*sh.NumCats*sh.maxS + // exponential/derivative tables
		2*sh.maxCodes*sh.NumCats*sh.maxS + // tip lookup-table pair
		3*len(sh.Data.Parts) // eval + (d1,d2) partials
	f.SessionScratch = int64(sh.Threads) * 8 * int64(perWorker)
	return f
}
