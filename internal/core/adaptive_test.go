package core

import (
	"math"
	"sync"
	"testing"

	"phylo/internal/alignment"
	"phylo/internal/model"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/tree"
)

// TestSiteLogLikelihoodsClampNonpositive is the satellite regression test for
// the missing guard: a pathological model (all-zero base frequencies) drives
// every site likelihood to exactly zero, and SiteLogLikelihoods must clamp
// like evaluatePartition does instead of emitting -Inf — staying a faithful
// mirror of the parallel reduction.
func TestSiteLogLikelihoodsClampNonpositive(t *testing.T) {
	a := randomAlignment(t, 6, 30, alignment.DNA, 63)
	m, _ := model.GTR(nil, nil, 4, 0.9)
	eng, d, _ := mkEngine(t, a, alignment.SinglePartition(a, alignment.DNA, ""), []*model.Model{m}, 1, 8, parallel.NewSequential())
	// Sanity: the healthy path is finite and was already covered elsewhere.
	for j, v := range eng.SiteLogLikelihoods(0) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("healthy site %d lnL = %v", j, v)
		}
	}
	// Zero frequencies force li = 0 for every pattern in both code paths
	// (newview does not read Freqs, so the CLVs stay intact).
	for i := range m.Freqs {
		m.Freqs[i] = 0
	}
	total := eng.LogLikelihood() // parallel-reduction path, clamps internally
	site := eng.SiteLogLikelihoods(0)
	sum := 0.0
	for j, v := range site {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("site %d lnL = %v; the clamp must keep the debug path finite", j, v)
		}
		sum += d.Parts[0].Weights[j] * v
	}
	if math.Abs(sum-total) > 1e-9*math.Abs(total) {
		t.Errorf("clamped site lnL sum %v drifted from the parallel reduction %v", sum, total)
	}
}

// TestDerivativeChargesSkippedPatterns is the satellite regression test for
// the derivative-region undercount: a pattern whose scaled likelihood
// vanishes is skipped numerically, but its cs-length dot products already
// ran, so the region's op charge must still count it.
func TestDerivativeChargesSkippedPatterns(t *testing.T) {
	a := randomAlignment(t, 6, 44, alignment.DNA, 29)
	parts, _ := alignment.UniformPartitions(a, alignment.DNA, 22)
	m0, _ := model.GTR(nil, nil, 4, 0.8)
	m1, _ := model.GTR(nil, nil, 4, 1.4)
	eng, d, tr := mkEngine(t, a, parts, []*model.Model{m0, m1}, 2, 14, parallel.NewSequential())
	root := tr.Tips[0].Back
	eng.TraverseRoot(root, false, nil)
	eng.PrepareSumtable(root, nil)
	// Force the skip path for every pattern: a zeroed sumtable makes l = 0 <
	// 1e-300 in every derivative evaluation.
	for i := range eng.sumtable {
		eng.sumtable[i] = 0
	}
	eng.Exec.Stats().Reset()
	d1 := make([]float64, 2)
	d2 := make([]float64, 2)
	eng.BranchDerivatives([]float64{0.1, 0.1}, nil, d1, d2)
	if d1[0] != 0 || d1[1] != 0 || d2[0] != 0 || d2[1] != 0 {
		t.Fatalf("zeroed sumtable should contribute nothing: d1=%v d2=%v", d1, d2)
	}
	want := 0.0
	for _, p := range d.Parts {
		want += float64(p.PatternCount) * opsDerivative(p.Type.States(), eng.NumCats())
	}
	st := eng.Exec.Stats()
	if st.KindCritical[parallel.RegionDerivative] != want {
		t.Errorf("derivative region charged %v ops, want %v (skipped patterns still performed their dot products)",
			st.KindCritical[parallel.RegionDerivative], want)
	}
}

// mixedData builds a small two-type (DNA+AA) compressed dataset whose
// per-pattern costs differ ~25x between partitions.
func mixedData(t *testing.T, seed int64) (*alignment.CompressedData, []*model.Model) {
	t.Helper()
	const taxa, dnaLen, aaLen = 8, 60, 24
	dna := randomAlignment(t, taxa, dnaLen, alignment.DNA, seed)
	aa := randomAlignment(t, taxa, aaLen, alignment.AA, seed+1)
	rows := make([][]byte, taxa)
	for i := 0; i < taxa; i++ {
		rows[i] = append(append([]byte{}, dna.Seqs[i]...), aa.Seqs[i]...)
	}
	al, err := alignment.New(taxaNames(taxa), rows)
	if err != nil {
		t.Fatal(err)
	}
	sites := func(lo, hi int) []int {
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	}
	parts := []alignment.Partition{
		{Name: "dna", Type: alignment.DNA, Sites: sites(0, dnaLen)},
		{Name: "aa", Type: alignment.AA, Sites: sites(dnaLen, dnaLen+aaLen)},
	}
	d, err := alignment.Compress(al, parts, alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mDNA, err := model.GTR(nil, nil, 4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	mAA, err := model.SYN20(4, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	return d, []*model.Model{mDNA, mAA}
}

// TestMeasuredRebalanceKeepsLikelihood pins the core acceptance property: a
// mid-analysis rebalance swaps the schedule at a region boundary without
// invalidating CLVs or changing the session's likelihood (beyond
// floating-point reassociation of the per-worker reduction), while the
// observed-cost attribution produces usable per-partition samples.
func TestMeasuredRebalanceKeepsLikelihood(t *testing.T) {
	d, models := mixedData(t, 71)
	sim, err := parallel.NewSim(4)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := tree.Random(taxaNames(8), 1, tree.RandomOptions{Seed: 44})
	eng, err := New(d, tr, models, sim, Options{Specialize: true, Schedule: schedule.Measured})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Schedule().Strategy() != schedule.Measured {
		t.Fatalf("engine pinned %v, want measured", eng.Schedule().Strategy())
	}
	lnl1 := eng.LogLikelihood()
	if err := CheckFinite(lnl1); err != nil {
		t.Fatal(err)
	}
	// The traversal + evaluation above ran with measurement on; every
	// partition must have time and pattern samples.
	costs := eng.ObservedCosts()
	for ip, c := range costs {
		if c <= 0 {
			t.Errorf("partition %d observed cost = %v, want > 0 after a measured run", ip, c)
		}
	}
	if imb := eng.MeasuredImbalance(); imb < 1 {
		t.Errorf("measured imbalance %v below 1", imb)
	}
	// A threshold far above any real imbalance must not trigger (hysteresis).
	if reb, err := eng.MaybeRebalance(1e9); err != nil || reb {
		t.Errorf("MaybeRebalance(1e9) = %v, %v; want no-op", reb, err)
	}
	before := eng.Schedule()
	if err := eng.RebalanceNow(); err != nil {
		t.Fatal(err)
	}
	if eng.Rebalances() != 1 {
		t.Errorf("rebalance count = %d, want 1", eng.Rebalances())
	}
	after := eng.Schedule()
	if after == before {
		t.Error("RebalanceNow did not adopt a new schedule object")
	}
	if after.Strategy() != schedule.Measured || after.Total() != before.Total() {
		t.Errorf("rebalanced schedule is %v/%d patterns, want measured/%d", after.Strategy(), after.Total(), before.Total())
	}
	// The measurement window restarts after a rebalance.
	if c := eng.ObservedCosts(); c[0] != 0 || c[1] != 0 {
		t.Errorf("observed costs not reset after rebalance: %v", c)
	}
	// Re-evaluating WITHOUT retraversing proves the old CLVs stay valid under
	// the new assignment (per-pattern results are schedule-invariant).
	root := tr.Tips[0].Back
	lnlNoTraverse, _ := eng.Evaluate(root, nil)
	if math.Abs(lnlNoTraverse-lnl1) > 1e-9*math.Abs(lnl1) {
		t.Errorf("rebalance invalidated CLVs: %v vs %v", lnlNoTraverse, lnl1)
	}
	lnl2 := eng.LogLikelihood()
	if math.Abs(lnl2-lnl1) > 1e-9*math.Abs(lnl1) {
		t.Errorf("rebalance changed the likelihood: %v vs %v", lnl2, lnl1)
	}
	// Static-strategy sessions must refuse to rebalance.
	tr2, _ := tree.Random(taxaNames(8), 1, tree.RandomOptions{Seed: 44})
	models2 := []*model.Model{models[0].Clone(), models[1].Clone()}
	sim2, _ := parallel.NewSim(4)
	engStatic, err := New(d, tr2, models2, sim2, Options{Specialize: true, Schedule: schedule.Weighted})
	if err != nil {
		t.Fatal(err)
	}
	if reb, err := engStatic.MaybeRebalance(0); err != nil || reb {
		t.Errorf("static MaybeRebalance = %v, %v; want inert", reb, err)
	}
	if err := engStatic.RebalanceNow(); err == nil {
		t.Error("static RebalanceNow should error")
	}
}

// TestConcurrentSessionsSurviveRebalance runs several measured-strategy
// sessions over one Shared and a shared pool while one of them repeatedly
// rebalances; every session must keep producing the same likelihood (they
// adopt rebuilt schedules at their own region boundaries). Run under -race
// in CI.
func TestConcurrentSessionsSurviveRebalance(t *testing.T) {
	d, models := mixedData(t, 83)
	const threads = 3
	sh, err := NewShared(d, 4, threads)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := parallel.NewPool(threads)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Sequential reference for the tolerance check.
	trRef, _ := tree.Random(taxaNames(8), 1, tree.RandomOptions{Seed: 61})
	seqEng, err := New(d, trRef, []*model.Model{models[0].Clone(), models[1].Clone()}, parallel.NewSequential(), Options{Specialize: true})
	if err != nil {
		t.Fatal(err)
	}
	want := seqEng.LogLikelihood()

	const sessions = 4
	const iters = 6
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		tr, _ := tree.Random(taxaNames(8), 1, tree.RandomOptions{Seed: 61})
		eng, err := NewSession(sh, tr, []*model.Model{models[0].Clone(), models[1].Clone()}, pool.Session(), Options{Specialize: true, Schedule: schedule.Measured})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, eng *Engine) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				lnl := eng.LogLikelihood()
				if math.Abs(lnl-want) > 1e-9*math.Abs(want) {
					t.Errorf("session %d iter %d: lnL %v drifted from %v", i, it, lnl, want)
					return
				}
				if i == 0 {
					if err := eng.RebalanceNow(); err != nil {
						errs[i] = err
						return
					}
				}
			}
		}(i, eng)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}
}

// TestOverrideSpanCosts covers the experiment hook: costs can be replaced
// only before the first schedule exists, and they steer the weighted pack.
func TestOverrideSpanCosts(t *testing.T) {
	d, _ := mixedData(t, 19)
	sh, err := NewShared(d, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	orig := sh.SpanCosts()
	if len(orig) != 2 || orig[1] <= orig[0] {
		t.Fatalf("analytic costs %v should price AA above DNA", orig)
	}
	if err := sh.OverrideSpanCosts([]float64{orig[1], orig[0]}); err != nil {
		t.Fatal(err)
	}
	if got := sh.SpanCosts(); got[0] != orig[1] || got[1] != orig[0] {
		t.Errorf("override not applied: %v", got)
	}
	if err := sh.OverrideSpanCosts([]float64{1}); err == nil {
		t.Error("expected error for length mismatch")
	}
	if _, err := sh.ScheduleFor(schedule.Weighted); err != nil {
		t.Fatal(err)
	}
	if err := sh.OverrideSpanCosts([]float64{1, 1}); err == nil {
		t.Error("expected error once a schedule has been built")
	}
}
