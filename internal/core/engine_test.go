package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"phylo/internal/alignment"
	"phylo/internal/model"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/tree"
)

// ---------- independent brute-force reference implementation ----------
//
// The reference computes per-site likelihoods with its own Felsenstein
// recursion, P matrices from a scaling-and-squaring Taylor series (not the
// eigendecomposition used by the engine), and per-node max-normalization in
// place of the engine's 2^256 scaling. Agreement therefore cross-validates
// the CLV kernels, the eigendecomposition, and the scaling machinery at once.

func expmSeries(q []float64, s int, t float64) []float64 {
	// Scale A = Q*t down until its max-abs entry is small, Taylor-expand,
	// then square back up.
	a := make([]float64, s*s)
	maxAbs := 0.0
	for i, v := range q {
		a[i] = v * t
		if math.Abs(a[i]) > maxAbs {
			maxAbs = math.Abs(a[i])
		}
	}
	n := 0
	for maxAbs > 0.25 {
		maxAbs /= 2
		n++
	}
	scale := math.Ldexp(1, -n)
	for i := range a {
		a[i] *= scale
	}
	// exp(A) by Taylor to 24 terms.
	res := make([]float64, s*s)
	for i := 0; i < s; i++ {
		res[i*s+i] = 1
	}
	term := make([]float64, s*s)
	copy(term, res)
	for k := 1; k <= 24; k++ {
		term = numericMatMul(term, a, s)
		inv := 1 / float64(k)
		for i := range term {
			term[i] *= inv
		}
		for i := range res {
			res[i] += term[i]
		}
	}
	for i := 0; i < n; i++ {
		res = numericMatMul(res, res, s)
	}
	return res
}

func numericMatMul(a, b []float64, s int) []float64 {
	c := make([]float64, s*s)
	for i := 0; i < s; i++ {
		for k := 0; k < s; k++ {
			aik := a[i*s+k]
			if aik == 0 {
				continue
			}
			for j := 0; j < s; j++ {
				c[i*s+j] += aik * b[k*s+j]
			}
		}
	}
	return c
}

// bruteCond returns the conditional likelihood vector at record p (towards
// p.Back) for pattern j of partition part under category rate `rate`,
// along with an accumulated log normalization factor.
func bruteCond(p *tree.Node, part *alignment.CompressedPartition, q []float64, slot int, rate float64, j int) ([]float64, float64) {
	s := part.Type.States()
	if p.IsTip() {
		return alignment.TipVector(part.Type, part.Tips[p.Index][j]), 0
	}
	c1, lg1 := bruteCond(p.Next.Back, part, q, slot, rate, j)
	c2, lg2 := bruteCond(p.Next.Next.Back, part, q, slot, rate, j)
	p1 := expmSeries(q, s, rate*p.Next.Z[slot])
	p2 := expmSeries(q, s, rate*p.Next.Next.Z[slot])
	out := make([]float64, s)
	maxV := 0.0
	for a := 0; a < s; a++ {
		x1, x2 := 0.0, 0.0
		for b := 0; b < s; b++ {
			x1 += p1[a*s+b] * c1[b]
			x2 += p2[a*s+b] * c2[b]
		}
		out[a] = x1 * x2
		if out[a] > maxV {
			maxV = out[a]
		}
	}
	lg := lg1 + lg2
	if maxV > 0 && maxV < 1e-100 { // normalize to protect deep recursions
		for a := range out {
			out[a] /= maxV
		}
		lg += math.Log(maxV)
	}
	return out, lg
}

// bruteLogLikelihood computes the total log likelihood of one partition with
// the virtual root on tip 0's branch.
func bruteLogLikelihood(tr *tree.Tree, part *alignment.CompressedPartition, m *model.Model, slot int) float64 {
	q := m.BuildQ()
	s := part.Type.States()
	tip := tr.Tips[0]
	root := tip.Back
	total := 0.0
	for j := 0; j < part.PatternCount; j++ {
		li := 0.0
		worstLg := 0.0
		cats := m.NumCats
		type catRes struct {
			v  float64
			lg float64
		}
		results := make([]catRes, cats)
		for c := 0; c < cats; c++ {
			rate := m.CatRates[c]
			rvec, lg := bruteCond(root, part, q, slot, rate, j)
			pm := expmSeries(q, s, rate*tip.Z[slot])
			tv := alignment.TipVector(part.Type, part.Tips[tip.Index][j])
			v := 0.0
			for a := 0; a < s; a++ {
				t := 0.0
				for b := 0; b < s; b++ {
					t += pm[a*s+b] * rvec[b]
				}
				v += m.Freqs[a] * tv[a] * t
			}
			results[c] = catRes{v, lg}
			if c == 0 || lg < worstLg {
				worstLg = lg
			}
		}
		// Combine categories on a common log scale.
		for c := 0; c < cats; c++ {
			li += results[c].v * math.Exp(results[c].lg-worstLg)
		}
		li /= float64(cats)
		total += part.Weights[j] * (math.Log(li) + worstLg)
	}
	return total
}

// ---------- fixtures ----------

func taxaNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%d", i)
	}
	return out
}

// randomAlignment builds a random alignment with occasional gaps/ambiguity.
func randomAlignment(t *testing.T, n, m int, dtype alignment.DataType, seed int64) *alignment.Alignment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var chars string
	if dtype == alignment.DNA {
		chars = "ACGTACGTACGTACGT-NRY"
	} else {
		chars = "ARNDCQEGHILKMFPSTWYVARNDCQEGHILKMFPSTWYV-XBZ"
	}
	names := taxaNames(n)
	seqs := make([][]byte, n)
	for i := range seqs {
		row := make([]byte, m)
		for j := range row {
			row[j] = chars[rng.Intn(len(chars))]
		}
		seqs[i] = row
	}
	a, err := alignment.New(names, seqs)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mkEngine(t *testing.T, a *alignment.Alignment, parts []alignment.Partition, models []*model.Model, zSlots int, treeSeed int64, exec parallel.Executor) (*Engine, *alignment.CompressedData, *tree.Tree) {
	t.Helper()
	d, err := alignment.Compress(a, parts, alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tree.Random(taxaNames(a.NumTaxa()), zSlots, tree.RandomOptions{Seed: treeSeed})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(d, tr, models, exec, Options{Specialize: true})
	if err != nil {
		t.Fatal(err)
	}
	return eng, d, tr
}

// ---------- tests ----------

func TestEngineMatchesBruteForceDNA(t *testing.T) {
	for _, n := range []int{4, 5, 7} {
		a := randomAlignment(t, n, 30, alignment.DNA, int64(n)*11)
		m, err := model.GTR([]float64{0.3, 0.2, 0.22, 0.28}, []float64{1.3, 2.8, 0.6, 1.1, 3.5, 1}, 4, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		eng, d, tr := mkEngine(t, a, alignment.SinglePartition(a, alignment.DNA, ""), []*model.Model{m}, 1, int64(n), parallel.NewSequential())
		got := eng.LogLikelihood()
		want := bruteLogLikelihood(tr, d.Parts[0], m, 0)
		if math.Abs(got-want) > 1e-7*math.Abs(want) {
			t.Errorf("n=%d: engine lnL = %.10f, brute force = %.10f", n, got, want)
		}
	}
}

func TestEngineMatchesBruteForceAA(t *testing.T) {
	a := randomAlignment(t, 4, 12, alignment.AA, 99)
	m, err := model.SYN20(4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	eng, d, tr := mkEngine(t, a, alignment.SinglePartition(a, alignment.AA, ""), []*model.Model{m}, 1, 5, parallel.NewSequential())
	got := eng.LogLikelihood()
	want := bruteLogLikelihood(tr, d.Parts[0], m, 0)
	if math.Abs(got-want) > 1e-7*math.Abs(want) {
		t.Errorf("engine lnL = %.10f, brute force = %.10f", got, want)
	}
}

func TestEngineMatchesBruteForceMultiPartition(t *testing.T) {
	a := randomAlignment(t, 5, 40, alignment.DNA, 123)
	parts, err := alignment.UniformPartitions(a, alignment.DNA, 20)
	if err != nil {
		t.Fatal(err)
	}
	m0, _ := model.GTR([]float64{0.4, 0.1, 0.2, 0.3}, nil, 4, 0.5)
	m1, _ := model.GTR([]float64{0.2, 0.3, 0.3, 0.2}, []float64{2, 1, 1, 1, 2, 1}, 4, 2.0)
	eng, d, tr := mkEngine(t, a, parts, []*model.Model{m0, m1}, 2, 7, parallel.NewSequential())
	// Give the partitions distinct branch lengths.
	rng := rand.New(rand.NewSource(42))
	for _, b := range tr.Branches() {
		tree.SetBranchLength(b, 0, 0.02+rng.Float64()*0.3)
		tree.SetBranchLength(b, 1, 0.02+rng.Float64()*0.3)
	}
	eng.InvalidateCLVs()
	total, perPart := eng.PartitionLogLikelihoods()
	want0 := bruteLogLikelihood(tr, d.Parts[0], m0, 0)
	want1 := bruteLogLikelihood(tr, d.Parts[1], m1, 1)
	if math.Abs(perPart[0]-want0) > 1e-7*math.Abs(want0) {
		t.Errorf("partition 0: %.9f vs brute %.9f", perPart[0], want0)
	}
	if math.Abs(perPart[1]-want1) > 1e-7*math.Abs(want1) {
		t.Errorf("partition 1: %.9f vs brute %.9f", perPart[1], want1)
	}
	if math.Abs(total-(want0+want1)) > 1e-7*math.Abs(total) {
		t.Errorf("total: %.9f vs %.9f", total, want0+want1)
	}
}

func TestPulleyPrinciple(t *testing.T) {
	// The log likelihood must be invariant under virtual root placement.
	a := randomAlignment(t, 8, 60, alignment.DNA, 17)
	m, _ := model.GTR([]float64{0.27, 0.23, 0.24, 0.26}, []float64{0.8, 2.2, 1.4, 0.9, 2.9, 1}, 4, 0.8)
	eng, _, tr := mkEngine(t, a, alignment.SinglePartition(a, alignment.DNA, ""), []*model.Model{m}, 1, 31, parallel.NewSequential())
	ref := eng.LogLikelihood()
	for bi, b := range tr.Branches() {
		root := b
		if root.IsTip() {
			root = root.Back
		}
		if root.IsTip() {
			continue
		}
		eng.TraverseRoot(root, true, nil)
		got, _ := eng.Evaluate(root, nil)
		if math.Abs(got-ref) > 1e-8*math.Abs(ref) {
			t.Errorf("branch %d: lnL %.10f != reference %.10f", bi, got, ref)
		}
	}
}

func TestParallelEquivalence(t *testing.T) {
	a := randomAlignment(t, 10, 83, alignment.DNA, 3)
	parts, _ := alignment.UniformPartitions(a, alignment.DNA, 29)
	models := make([]*model.Model, len(parts))
	for i := range models {
		m, err := model.GTR(nil, nil, 4, 0.5+float64(i))
		if err != nil {
			t.Fatal(err)
		}
		models[i] = m
	}
	seqEng, _, _ := mkEngine(t, a, parts, models, 1, 77, parallel.NewSequential())
	ref := seqEng.LogLikelihood()
	for _, mk := range []struct {
		name string
		mk   func() (parallel.Executor, error)
	}{
		{"pool2", func() (parallel.Executor, error) { return parallel.NewPool(2) }},
		{"pool3", func() (parallel.Executor, error) { return parallel.NewPool(3) }},
		{"pool5", func() (parallel.Executor, error) { return parallel.NewPool(5) }},
		{"sim8", func() (parallel.Executor, error) { return parallel.NewSim(8) }},
		{"sim16", func() (parallel.Executor, error) { return parallel.NewSim(16) }},
	} {
		ex, err := mk.mk()
		if err != nil {
			t.Fatal(err)
		}
		cl := make([]*model.Model, len(models))
		for i, m := range models {
			cl[i] = m.Clone()
		}
		eng, _, _ := mkEngine(t, a, parts, cl, 1, 77, ex)
		got := eng.LogLikelihood()
		if math.Abs(got-ref) > 1e-9*math.Abs(ref) {
			t.Errorf("%s: lnL %.12f != sequential %.12f", mk.name, got, ref)
		}
		ex.Close()
	}
}

func TestScalingTriggersAndStaysCorrect(t *testing.T) {
	// A 160-taxon tree with long branches forces CLV entries far below
	// 2^-256; the engine must scale and still match the (max-normalizing)
	// brute-force recursion.
	n := 160
	a := randomAlignment(t, n, 4, alignment.DNA, 2024)
	m, _ := model.JC69(2, 5.0)
	d, err := alignment.Compress(a, alignment.SinglePartition(a, alignment.DNA, ""), alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tree.Random(taxaNames(n), 1, tree.RandomOptions{Seed: 5, MeanBranchLength: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(d, tr, []*model.Model{m}, parallel.NewSequential(), Options{Specialize: true})
	if err != nil {
		t.Fatal(err)
	}
	got := eng.LogLikelihood()
	if err := CheckFinite(got); err != nil {
		t.Fatal(err)
	}
	// Verify that scaling actually fired somewhere.
	fired := false
	for _, sc := range eng.scales {
		for _, v := range sc {
			if v > 0 {
				fired = true
			}
		}
	}
	if !fired {
		t.Fatal("scaling never triggered; test misconfigured")
	}
	want := bruteLogLikelihood(tr, d.Parts[0], m, 0)
	if math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Errorf("scaled lnL %.8f != brute force %.8f", got, want)
	}
}

func TestSpecializeEquivalence(t *testing.T) {
	a := randomAlignment(t, 9, 50, alignment.DNA, 8)
	m, _ := model.GTR([]float64{0.31, 0.19, 0.27, 0.23}, nil, 4, 1.1)
	d, _ := alignment.Compress(a, alignment.SinglePartition(a, alignment.DNA, ""), alignment.CompressOptions{})
	tr, _ := tree.Random(taxaNames(9), 1, tree.RandomOptions{Seed: 10})
	fast, err := New(d, tr, []*model.Model{m}, parallel.NewSequential(), Options{Specialize: true})
	if err != nil {
		t.Fatal(err)
	}
	tr2, _ := tree.Random(taxaNames(9), 1, tree.RandomOptions{Seed: 10})
	slow, err := New(d, tr2, []*model.Model{m.Clone()}, parallel.NewSequential(), Options{Specialize: false})
	if err != nil {
		t.Fatal(err)
	}
	a1, b1 := fast.LogLikelihood(), slow.LogLikelihood()
	if a1 != b1 {
		t.Errorf("specialized %v != generic %v", a1, b1)
	}
}

func TestBranchDerivativesMatchFiniteDifferences(t *testing.T) {
	a := randomAlignment(t, 6, 45, alignment.DNA, 55)
	parts, _ := alignment.UniformPartitions(a, alignment.DNA, 22)
	m0, _ := model.GTR(nil, nil, 4, 0.7)
	m1, _ := model.GTR(nil, nil, 4, 1.9)
	eng, _, tr := mkEngine(t, a, parts, []*model.Model{m0, m1}, 2, 13, parallel.NewSequential())
	nParts := 2
	root := tr.Tips[0].Back
	eng.TraverseRoot(root, false, nil)
	eng.PrepareSumtable(root, nil)
	d1 := make([]float64, nParts)
	d2 := make([]float64, nParts)
	for _, z0 := range []float64{0.05, 0.15, 0.6} {
		zs := []float64{z0, z0 * 1.5}
		eng.BranchDerivatives(zs, nil, d1, d2)
		// Finite differences of the per-partition lnL as a function of the
		// root branch length (CLVs at both ends are independent of it).
		// h must stay well above the cancellation floor of the second
		// difference: |lnL| ~ 1e3 means an absolute noise of ~1e-13 in f,
		// so h = 1e-4 keeps the d2 estimate accurate to ~1e-5.
		const h = 1e-4
		for ip := 0; ip < nParts; ip++ {
			lnl := func(z float64) float64 {
				old := root.Z[ip]
				tree.SetBranchLength(root, ip, z)
				_, per := eng.Evaluate(root, nil)
				tree.SetBranchLength(root, ip, old)
				return per[ip]
			}
			base := zs[ip]
			fm, f0, fp := lnl(base-h), lnl(base), lnl(base+h)
			nd1 := (fp - fm) / (2 * h)
			nd2 := (fp - 2*f0 + fm) / (h * h)
			if math.Abs(d1[ip]-nd1) > 1e-3*(1+math.Abs(nd1)) {
				t.Errorf("z=%v part=%d: d1 analytic %v vs numeric %v", base, ip, d1[ip], nd1)
			}
			if math.Abs(d2[ip]-nd2) > 1e-2*(1+math.Abs(nd2)) {
				t.Errorf("z=%v part=%d: d2 analytic %v vs numeric %v", base, ip, d2[ip], nd2)
			}
		}
	}
}

func TestActiveMaskRestrictsWork(t *testing.T) {
	a := randomAlignment(t, 6, 60, alignment.DNA, 21)
	parts, _ := alignment.UniformPartitions(a, alignment.DNA, 20)
	models := make([]*model.Model, len(parts))
	for i := range models {
		models[i], _ = model.GTR(nil, nil, 4, 1)
	}
	eng, _, tr := mkEngine(t, a, parts, models, 1, 9, parallel.NewSequential())
	ref := eng.LogLikelihood()
	_, perAll := eng.Evaluate(tr.Tips[0].Back, nil)
	mask := make([]bool, len(parts))
	mask[1] = true
	total, per := eng.Evaluate(tr.Tips[0].Back, mask)
	if math.Abs(total-perAll[1]) > 1e-12*math.Abs(perAll[1]) {
		t.Errorf("masked eval total %v != partition lnL %v", total, perAll[1])
	}
	for ip := range per {
		if ip != 1 && per[ip] != 0 {
			t.Errorf("masked partition %d has nonzero lnL %v", ip, per[ip])
		}
	}
	sum := 0.0
	for _, v := range perAll {
		sum += v
	}
	if math.Abs(sum-ref) > 1e-9*math.Abs(ref) {
		t.Errorf("per-partition sums %v != total %v", sum, ref)
	}
}

func TestSiteLogLikelihoodsSumToTotal(t *testing.T) {
	a := randomAlignment(t, 7, 33, alignment.DNA, 61)
	m, _ := model.GTR(nil, nil, 4, 0.9)
	eng, d, _ := mkEngine(t, a, alignment.SinglePartition(a, alignment.DNA, ""), []*model.Model{m}, 1, 3, parallel.NewSequential())
	total := eng.LogLikelihood()
	site := eng.SiteLogLikelihoods(0)
	sum := 0.0
	for j, v := range site {
		sum += d.Parts[0].Weights[j] * v
	}
	if math.Abs(sum-total) > 1e-9*math.Abs(total) {
		t.Errorf("site lnL sum %v != total %v", sum, total)
	}
}

func TestGammaConvergesToHomogeneous(t *testing.T) {
	// As alpha grows the discrete Gamma rates collapse towards 1, so the
	// 4-category likelihood must approach the homogeneous one monotonically.
	a := randomAlignment(t, 6, 40, alignment.DNA, 77)
	m1, _ := model.GTR(nil, nil, 1, 1)
	e1, _, _ := mkEngine(t, a, alignment.SinglePartition(a, alignment.DNA, ""), []*model.Model{m1}, 1, 19, parallel.NewSequential())
	l1 := e1.LogLikelihood()
	var prevGap float64
	for i, alpha := range []float64{0.5, 5, 99} {
		m4, _ := model.GTR(nil, nil, 4, alpha)
		e4, _, _ := mkEngine(t, a, alignment.SinglePartition(a, alignment.DNA, ""), []*model.Model{m4}, 1, 19, parallel.NewSequential())
		gap := math.Abs(e4.LogLikelihood() - l1)
		if i > 0 && gap > prevGap {
			t.Errorf("alpha=%v: gap %v did not shrink from %v", alpha, gap, prevGap)
		}
		prevGap = gap
	}
	// At alpha=99 the residual rate spread is ~1/sqrt(99)≈10%, so allow a
	// small relative gap.
	if prevGap > 2.5e-3*math.Abs(l1) {
		t.Errorf("alpha=99 gap %v too large relative to |lnL|=%v", prevGap, math.Abs(l1))
	}
}

func TestNewValidation(t *testing.T) {
	a := randomAlignment(t, 4, 10, alignment.DNA, 1)
	d, _ := alignment.Compress(a, alignment.SinglePartition(a, alignment.DNA, ""), alignment.CompressOptions{})
	tr, _ := tree.Random(taxaNames(4), 1, tree.RandomOptions{Seed: 1})
	m, _ := model.JC69(4, 1)
	ex := parallel.NewSequential()
	if _, err := New(nil, tr, []*model.Model{m}, ex, Options{}); err == nil {
		t.Error("expected error for nil data")
	}
	if _, err := New(d, tr, nil, ex, Options{}); err == nil {
		t.Error("expected error for model count mismatch")
	}
	mAA, _ := model.SYN20(4, 1)
	if _, err := New(d, tr, []*model.Model{mAA}, ex, Options{}); err == nil {
		t.Error("expected error for model type mismatch")
	}
	m2, _ := model.JC69(2, 1)
	d2parts := []alignment.Partition{
		{Name: "a", Type: alignment.DNA, Sites: []int{0, 1, 2, 3, 4}},
		{Name: "b", Type: alignment.DNA, Sites: []int{5, 6, 7, 8, 9}},
	}
	dd, _ := alignment.Compress(a, d2parts, alignment.CompressOptions{})
	if _, err := New(dd, tr, []*model.Model{m, m2}, ex, Options{}); err == nil {
		t.Error("expected error for category count mismatch")
	}
	tr5, _ := tree.Random(taxaNames(4), 5, tree.RandomOptions{Seed: 1})
	if _, err := New(dd, tr5, []*model.Model{m, m.Clone()}, ex, Options{}); err == nil {
		t.Error("expected error for bad z-slot count")
	}
	tr3, _ := tree.Random(taxaNames(3), 1, tree.RandomOptions{Seed: 1})
	if _, err := New(d, tr3, []*model.Model{m}, ex, Options{}); err == nil {
		t.Error("expected error for taxa count mismatch")
	}
	dirty, _ := model.JC69(4, 1)
	dirty.SetExRate(0, 2)
	if _, err := New(d, tr, []*model.Model{dirty}, ex, Options{}); err == nil {
		t.Error("expected error for dirty model")
	}
}

func TestPartialTraversalMatchesFull(t *testing.T) {
	a := randomAlignment(t, 12, 70, alignment.DNA, 5)
	m, _ := model.GTR(nil, nil, 4, 0.8)
	eng, _, tr := mkEngine(t, a, alignment.SinglePartition(a, alignment.DNA, ""), []*model.Model{m}, 1, 6, parallel.NewSequential())
	ref := eng.LogLikelihood()
	// Evaluate at every internal branch using partial traversals only; the
	// incremental updates must agree with the full recomputation.
	for _, b := range tr.Branches() {
		root := b
		if root.IsTip() {
			root = root.Back
		}
		if root.IsTip() {
			continue
		}
		eng.TraverseRoot(root, true, nil)
		got, _ := eng.Evaluate(root, nil)
		if math.Abs(got-ref) > 1e-8*math.Abs(ref) {
			t.Fatalf("partial traversal drifted: %v vs %v", got, ref)
		}
	}
	// Full invalidation and recomputation returns the same value.
	eng.InvalidateCLVs()
	if got := eng.LogLikelihood(); math.Abs(got-ref) > 1e-9*math.Abs(ref) {
		t.Errorf("full recomputation %v != %v", got, ref)
	}
}

// Property: random small datasets give finite, non-positive log likelihoods,
// in parallel and sequentially, with identical results.
func TestEngineQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		mlen := 5 + rng.Intn(30)
		a := randomAlignment(nil2T(), n, mlen, alignment.DNA, seed)
		m, err := model.GTR(nil, nil, 2, 0.3+2*rng.Float64())
		if err != nil {
			return false
		}
		d, err := alignment.Compress(a, alignment.SinglePartition(a, alignment.DNA, ""), alignment.CompressOptions{})
		if err != nil {
			return false
		}
		tr, err := tree.Random(taxaNames(n), 1, tree.RandomOptions{Seed: seed})
		if err != nil {
			return false
		}
		eng, err := New(d, tr, []*model.Model{m}, parallel.NewSequential(), Options{Specialize: true})
		if err != nil {
			return false
		}
		lnl := eng.LogLikelihood()
		if math.IsNaN(lnl) || math.IsInf(lnl, 0) || lnl > 1e-9 {
			return false
		}
		pool, err := parallel.NewPool(3)
		if err != nil {
			return false
		}
		defer pool.Close()
		tr2, _ := tree.Random(taxaNames(n), 1, tree.RandomOptions{Seed: seed})
		eng2, err := New(d, tr2, []*model.Model{m.Clone()}, pool, Options{Specialize: true})
		if err != nil {
			return false
		}
		lnl2 := eng2.LogLikelihood()
		return math.Abs(lnl-lnl2) <= 1e-9*math.Abs(lnl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// nil2T adapts randomAlignment's testing.T parameter for quick.Check usage.
func nil2T() *testing.T { return &testing.T{} }

func TestScheduleStrategiesEquivalentNumerics(t *testing.T) {
	// The schedule strategy changes who computes what, never the result.
	a := randomAlignment(t, 8, 61, alignment.DNA, 20)
	parts, _ := alignment.UniformPartitions(a, alignment.DNA, 20)
	models := make([]*model.Model, len(parts))
	for i := range models {
		models[i], _ = model.GTR(nil, nil, 4, 0.9)
	}
	d, _ := alignment.Compress(a, parts, alignment.CompressOptions{})
	mk := func(strat schedule.Strategy) float64 {
		sim, _ := parallel.NewSim(4)
		tr, _ := tree.Random(taxaNames(8), 1, tree.RandomOptions{Seed: 33})
		cl := make([]*model.Model, len(models))
		for i, m := range models {
			cl[i] = m.Clone()
		}
		eng, err := New(d, tr, cl, sim, Options{Specialize: true, Schedule: strat})
		if err != nil {
			t.Fatal(err)
		}
		return eng.LogLikelihood()
	}
	cyc := mk(schedule.Cyclic)
	for _, strat := range []schedule.Strategy{schedule.Block, schedule.Weighted} {
		if got := mk(strat); math.Abs(cyc-got) > 1e-9*math.Abs(cyc) {
			t.Errorf("%v schedule changed the likelihood: %v vs %v", strat, got, cyc)
		}
	}
}

func TestBlockScheduleNarrowRegionImbalance(t *testing.T) {
	// A single-partition (narrow) region under the block schedule lands on
	// few workers; cyclic spreads it evenly (the paper's rationale).
	a := randomAlignment(t, 6, 80, alignment.DNA, 21)
	parts, _ := alignment.UniformPartitions(a, alignment.DNA, 20)
	models := make([]*model.Model, len(parts))
	for i := range models {
		models[i], _ = model.GTR(nil, nil, 4, 1)
	}
	d, _ := alignment.Compress(a, parts, alignment.CompressOptions{})
	imbalance := func(strat schedule.Strategy) float64 {
		sim, _ := parallel.NewSim(4)
		tr, _ := tree.Random(taxaNames(6), 1, tree.RandomOptions{Seed: 3})
		cl := make([]*model.Model, len(models))
		for i, m := range models {
			cl[i] = m.Clone()
		}
		eng, err := New(d, tr, cl, sim, Options{Specialize: true, Schedule: strat})
		if err != nil {
			t.Fatal(err)
		}
		// Evaluate only partition 1: a narrow region.
		mask := make([]bool, len(models))
		mask[1] = true
		root := tr.Tips[0].Back
		eng.Traverse(root, false, nil)
		sim.Stats().Reset()
		eng.Evaluate(root, mask)
		return sim.Stats().Imbalance(4)
	}
	cyc, blk := imbalance(schedule.Cyclic), imbalance(schedule.Block)
	if blk <= cyc*1.5 {
		t.Errorf("block imbalance %v should far exceed cyclic %v on narrow regions", blk, cyc)
	}
	// Weighted must keep narrow regions as balanced as cyclic (same ±1 band).
	if wtd := imbalance(schedule.Weighted); wtd > cyc*1.05 {
		t.Errorf("weighted imbalance %v should match cyclic %v on narrow regions", wtd, cyc)
	}
}

// TestMoreThreadsThanPatterns pins the degenerate geometry the schedule must
// survive: more workers than global patterns. Workers without an assignment
// must contribute exactly zero ops in every region, and the parallel result
// must match the sequential one bit-for-bit.
func TestMoreThreadsThanPatterns(t *testing.T) {
	a := randomAlignment(t, 6, 5, alignment.DNA, 22)
	parts := alignment.SinglePartition(a, alignment.DNA, "tiny")
	d, err := alignment.Compress(a, parts, alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalPatterns >= 8 {
		t.Fatalf("fixture too wide: %d patterns", d.TotalPatterns)
	}
	m, _ := model.GTR(nil, nil, 4, 0.7)
	seqEng, err := New(d, mustTree(t, 6, 11), []*model.Model{m.Clone()}, parallel.NewSequential(), Options{Specialize: true})
	if err != nil {
		t.Fatal(err)
	}
	want := seqEng.LogLikelihood()
	for _, strat := range []schedule.Strategy{schedule.Cyclic, schedule.Block, schedule.Weighted} {
		sim, _ := parallel.NewSim(8)
		eng, err := New(d, mustTree(t, 6, 11), []*model.Model{m.Clone()}, sim, Options{Specialize: true, Schedule: strat})
		if err != nil {
			t.Fatal(err)
		}
		sched := eng.Schedule()
		if sched.Strategy() != strat || sched.Threads() != 8 || sched.Total() != d.TotalPatterns {
			t.Errorf("engine schedule = %v/%d workers/%d patterns, want %v/8/%d",
				sched.Strategy(), sched.Threads(), sched.Total(), strat, d.TotalPatterns)
		}
		// More workers than patterns: the static prediction must price the
		// idle workers in, exactly like the runtime stats below.
		if pred := sched.Imbalance(); pred < float64(8)/float64(d.TotalPatterns)-1e-9 {
			t.Errorf("%v: static imbalance %v below the T/patterns floor", strat, pred)
		}
		if got := eng.LogLikelihood(); got != want {
			t.Errorf("%v with 8 threads on %d patterns: lnL %v != sequential %v", strat, d.TotalPatterns, got, want)
		}
		st := sim.Stats()
		busy := 0
		for _, ops := range st.WorkerOps {
			if ops > 0 {
				busy++
			}
		}
		if busy > d.TotalPatterns {
			t.Errorf("%v: %d workers recorded ops for %d patterns; empty workers must record zero", strat, busy, d.TotalPatterns)
		}
	}
}

func mustTree(t *testing.T, taxa int, seed int64) *tree.Tree {
	t.Helper()
	tr, err := tree.Random(taxaNames(taxa), 1, tree.RandomOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSharedSessionsMatchStandalone: one Shared backing several sessions
// (including concurrent ones on a shared pool) must reproduce the
// standalone-engine likelihood bit-for-bit, while schedules are computed
// once and cached.
func TestSharedSessionsMatchStandalone(t *testing.T) {
	a := randomAlignment(t, 8, 80, alignment.DNA, 31)
	parts, err := alignment.UniformPartitions(a, alignment.DNA, 20)
	if err != nil {
		t.Fatal(err)
	}
	d, err := alignment.Compress(a, parts, alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mkModels := func() []*model.Model {
		models := make([]*model.Model, len(d.Parts))
		for i := range models {
			models[i], _ = model.GTR(nil, nil, 4, 0.7)
		}
		return models
	}

	// Standalone reference on a private pool.
	pool0, err := parallel.NewPool(3)
	if err != nil {
		t.Fatal(err)
	}
	defer pool0.Close()
	tr0, _ := tree.Random(taxaNames(8), 1, tree.RandomOptions{Seed: 5})
	ref, err := New(d, tr0, mkModels(), pool0, Options{Specialize: true})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.LogLikelihood()

	// Shared state + shared pool, several concurrent sessions.
	sh, err := NewShared(d, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := sh.ScheduleFor(schedule.Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	if s2, _ := sh.ScheduleFor(schedule.Cyclic); s2 != s1 {
		t.Error("schedule not cached: second ScheduleFor returned a new object")
	}
	pool, err := parallel.NewPool(3)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	const n = 4
	got := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		tr, err := tree.Random(taxaNames(8), 1, tree.RandomOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewSession(sh, tr, mkModels(), pool.Session(), Options{Specialize: true})
		if err != nil {
			t.Fatal(err)
		}
		if eng.Shared() != sh {
			t.Fatal("session does not expose its shared state")
		}
		wg.Add(1)
		go func(i int, eng *Engine) {
			defer wg.Done()
			got[i] = eng.LogLikelihood()
		}(i, eng)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if got[i] != want {
			t.Errorf("session %d lnL = %v, want bit-identical %v", i, got[i], want)
		}
	}

	// Mismatched executor width must be rejected.
	seq := parallel.NewSequential()
	tr1, _ := tree.Random(taxaNames(8), 1, tree.RandomOptions{Seed: 5})
	if _, err := NewSession(sh, tr1, mkModels(), seq, Options{}); err == nil {
		t.Error("expected error for executor/shared thread mismatch")
	}
}
