package core

import (
	"errors"
	"fmt"
	"time"

	"phylo/internal/alignment"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/tree"
)

// Batched-replicate execution: the bootstrap-fleet fast path. An R-wide
// WeightSet attached to an evaluate or derivative region turns the final
// per-pattern reduction into an R-lane sweep — the site (or derivative
// ratio) value is computed once per pattern and accumulated under all R
// replicate weights — while everything upstream of the reduction (newview
// traversals, P matrices, tip tables, the sumtable) runs once and is shared
// by the whole batch. That is the entire win: an R-replicate bootstrap costs
// one traversal plus R cheap reduction lanes instead of R full evaluations.
//
// Bit-identity contract (the property every batched body maintains):
//
//  1. Lane r of a batched reduction performs exactly the floating-point
//     sequence of an unbatched run over replicate r's weights (same site
//     values, same per-pattern multiply, same accumulation order), so
//     extracting a replicate (WeightSet.Replicate) and re-running it alone
//     reproduces its batched lnL bit for bit.
//  2. Partials are per (worker, partition, lane) on the precomputed path and
//     per (chunk, lane) on the work-stealing path, reduced master-side in
//     fixed worker / chunk-id order — the same fixed-order discipline the
//     unbatched reductions use (see chunkexec.go), so results are invariant
//     to steal interleavings and identical across Pool, PoolSession, Sim,
//     and Sequential executors.

// bindBatch attaches a WeightSet's lanes to an evaluate span context; the
// span's pattern j reads its R weights at batchW[j*R : (j+1)*R].
func (c *evalSpanCtx) bindBatch(ws *WeightSet) {
	c.batchR = ws.r
	c.batchW = ws.lanes(c.partOffset)
}

// bindBatch attaches a WeightSet's lanes to a derivative span context.
func (c *derivSpanCtx) bindBatch(ws *WeightSet) {
	c.batchR = ws.r
	c.batchW = ws.lanes(c.partOffset)
}

// takeOpsBatch prices count patterns of R-lane reduction plus the claimed
// setup charge (the batched analogue of takeOps).
func (c *evalSpanCtx) takeOpsBatch(count int) float64 {
	ops := float64(count)*opsEvaluateBatch(c.s, c.cats, c.qTab != nil, c.batchR) + c.fixed
	c.fixed = 0
	return ops
}

// processGenericBatch is the generic R-lane evaluate body: the per-pattern
// site log likelihood exactly as processGeneric computes it, fanned out into
// R weighted partials.
//
//plk:hotpath
func (c *evalSpanCtx) processGenericBatch(run schedule.Run, out []float64) int {
	R := c.batchR
	count := 0
	for i := run.Lo; i < run.Hi; i += run.Step {
		j := i - c.partOffset
		site := c.site(i, j, c.patternLi(j, c.base+j*c.patStride))
		wj := c.batchW[j*R : (j+1)*R]
		for r := 0; r < R; r++ {
			out[r] += wj[r] * site
		}
		count++
	}
	return count
}

// processFused4Batch is the unrolled 4-state R-lane evaluate body: the same
// per-pattern likelihood expressions as processFused4 (see fused4.go for the
// associativity argument), with the single weighted accumulation replaced by
// the R-lane sweep. A q-side tip without a table falls back to the generic
// batch body, which is bit-identical.
//
//plk:hotpath
func (c *evalSpanCtx) processFused4Batch(run schedule.Run, out []float64) int {
	if c.qTip && c.qTab == nil {
		return c.processGenericBatch(run, out)
	}
	f0, f1, f2, f3 := c.freqs[0], c.freqs[1], c.freqs[2], c.freqs[3]
	cats := c.cats
	R := c.batchR
	count := 0
	for i := run.Lo; i < run.Hi; i += run.Step {
		j := i - c.partOffset
		off := c.base + j*c.patStride
		var tv []float64
		if c.pTip {
			tv = alignment.TipVector(c.dtype, c.pRow[j])
		}
		li := 0.0
		if c.qTab != nil {
			t := c.qTab[int(c.qRow[j])*c.cs:]
			for cat := 0; cat < cats; cat++ {
				cl := tv
				if !c.pTip {
					co := off + cat*c.catStride
					cl = c.pv[co : co+4]
				}
				tc := t[cat*4 : cat*4+4]
				li = li + f0*cl[0]*tc[0] + f1*cl[1]*tc[1] + f2*cl[2]*tc[2] + f3*cl[3]*tc[3]
			}
		} else {
			for cat := 0; cat < cats; cat++ {
				pc := c.pm[cat*16 : cat*16+16]
				co := off + cat*c.catStride
				cr := c.qv[co : co+4]
				r0, r1, r2, r3 := cr[0], cr[1], cr[2], cr[3]
				cl := tv
				if !c.pTip {
					cl = c.pv[co : co+4]
				}
				t0 := pc[0]*r0 + pc[1]*r1 + pc[2]*r2 + pc[3]*r3
				t1 := pc[4]*r0 + pc[5]*r1 + pc[6]*r2 + pc[7]*r3
				t2 := pc[8]*r0 + pc[9]*r1 + pc[10]*r2 + pc[11]*r3
				t3 := pc[12]*r0 + pc[13]*r1 + pc[14]*r2 + pc[15]*r3
				li = li + f0*cl[0]*t0 + f1*cl[1]*t1 + f2*cl[2]*t2 + f3*cl[3]*t3
			}
		}
		site := c.site(i, j, li)
		wj := c.batchW[j*R : (j+1)*R]
		for r := 0; r < R; r++ {
			out[r] += wj[r] * site
		}
		count++
	}
	return count
}

// processGenericBatch is the R-lane derivative body: per pattern the
// likelihood and its two derivative dot products over the sumtable run once —
// exactly as in the unbatched processGeneric — and the resulting first-
// derivative ratio and curvature terms accumulate under all R replicate
// weights into out[2r], out[2r+1].
//
//plk:hotpath
func (c *derivSpanCtx) processGenericBatch(run schedule.Run, out []float64) int {
	cs := c.cs
	R := c.batchR
	count := 0
	for i := run.Lo; i < run.Hi; i += run.Step {
		j := i - c.partOffset
		soff := c.sbase + j*cs
		l, l1, l2 := 0.0, 0.0, 0.0
		for k := 0; k < cs; k++ {
			a := c.e.sumtable[soff+k] * c.eTab[k]
			l += a
			l1 += a * c.g1Tab[k]
			l2 += a * c.g2Tab[k]
		}
		count++
		if l < 1e-300 {
			// Same guard as the unbatched body: a vanished scaled likelihood
			// informs no replicate.
			continue
		}
		inv := 1 / l
		r1 := l1 * inv
		curv := l2*inv - r1*r1
		wj := c.batchW[j*R : (j+1)*R]
		for r := 0; r < R; r++ {
			out[2*r] += wj[r] * r1
			out[2*r+1] += wj[r] * curv
		}
	}
	return count
}

// checkBatch validates a WeightSet against the session's dataset.
func (e *Engine) checkBatch(ws *WeightSet) error {
	if ws == nil {
		return errors.New("core: nil weight set")
	}
	if ws.patterns != e.Data.TotalPatterns {
		return fmt.Errorf("core: weight set covers %d patterns, dataset has %d", ws.patterns, e.Data.TotalPatterns)
	}
	return nil
}

// SetWeightOverride replaces the pattern weights every *unbatched* evaluate
// and derivative reduction uses with a single-replicate WeightSet (R must be
// 1); nil restores the dataset's own weights. This is how the optimizer runs
// against a replicate — or the replicate-aggregate of a whole batch (see
// WeightSet.Aggregate and the shared-branch-length mode in internal/opt) —
// without any kernel changes: the override threads through the span contexts
// exactly where the dataset weights would. Must be called between regions;
// the override does not affect EvaluateBatch and BranchDerivativesBatch,
// which carry their own WeightSet.
func (e *Engine) SetWeightOverride(ws *WeightSet) error {
	if ws == nil {
		e.weightOverride = nil
		return nil
	}
	if ws.r != 1 {
		return fmt.Errorf("core: weight override must have batch width 1, got %d", ws.r)
	}
	if ws.patterns != e.Data.TotalPatterns {
		return fmt.Errorf("core: weight override covers %d patterns, dataset has %d", ws.patterns, e.Data.TotalPatterns)
	}
	e.weightOverride = ws.w
	return nil
}

// weightsFor returns the pattern weights the unbatched reductions should use
// for one partition: the session's override when set, the dataset's own
// weights otherwise.
func (e *Engine) weightsFor(part *alignment.CompressedPartition) []float64 {
	if e.weightOverride != nil {
		return e.weightOverride[part.Offset : part.Offset+part.PatternCount]
	}
	return part.Weights
}

// ensureBatchBuffers sizes the per-worker batched partial buffers for an
// R-wide batch (grow-only; a narrower batch reuses a wider allocation).
func (e *Engine) ensureBatchBuffers(R int) {
	n := len(e.Data.Parts) * R
	if e.batchEvalPartials == nil {
		t := e.Exec.Threads()
		e.batchEvalPartials = make([][]float64, t)
		e.batchDerivParts = make([][]float64, t)
	}
	for w := range e.batchEvalPartials {
		if cap(e.batchEvalPartials[w]) < n {
			e.batchEvalPartials[w] = make([]float64, n)
			e.batchDerivParts[w] = make([]float64, 2*n)
		}
	}
}

// EvaluateBatch computes the per-replicate log likelihoods at the virtual
// root on branch (p, p.Back) under an R-wide WeightSet: one parallel region
// in which every site log likelihood is computed once and reduced into R
// weighted partials. Both end CLVs must already be valid and oriented towards
// the branch (use TraverseRoot) — and because pattern likelihoods are
// weight-independent, one traversal serves every replicate of the batch. The
// returned slice has one total per replicate; masked partitions contribute to
// none of them.
func (e *Engine) EvaluateBatch(p *tree.Node, active []bool, ws *WeightSet) ([]float64, error) {
	if err := e.checkBatch(ws); err != nil {
		return nil, err
	}
	q := p.Back
	if p.IsTip() && q.IsTip() {
		panic("core: EvaluateBatch on a tip-tip branch (2-taxon tree not supported)")
	}
	R := ws.r
	act := e.activeOrAll(active)
	e.refreshSchedule() // region boundary: adopt a rebalanced schedule if published
	if e.stealRT != nil {
		return e.evaluateBatchSteal(p, q, act, ws), nil
	}
	e.ensureBatchBuffers(R)
	e.Exec.Run(parallel.RegionEvaluate, func(w int, ctx *parallel.WorkerCtx) {
		partials := e.batchEvalPartials[w]
		pm := e.pmScratch[w][0]
		ops := 0.0
		for ip := range e.Data.Parts {
			out := partials[ip*R : (ip+1)*R]
			for r := range out {
				out[r] = 0
			}
			if !act[ip] {
				continue
			}
			var t0 time.Time
			if e.measure {
				t0 = time.Now() //plk:allow(timenow) measured-cost attribution; never feeds likelihood values
			}
			ops += e.evaluateBatchPartition(p, q, ip, w, pm, ws, out)
			if e.measure {
				e.chargePartition(w, ip, t0)
			}
		}
		ctx.Ops += ops
	})
	// Reduce in the unbatched Evaluate's order — workers ascending per
	// (partition, lane), then active partitions ascending into the totals —
	// so a width-1 batch over the dataset's own weights reproduces Evaluate
	// bit for bit.
	perPart := make([]float64, len(e.Data.Parts)*R)
	for w := 0; w < e.Exec.Threads(); w++ {
		for k, v := range e.batchEvalPartials[w][:len(perPart)] {
			perPart[k] += v
		}
	}
	totals := make([]float64, R)
	for ip := range e.Data.Parts {
		if !act[ip] {
			continue
		}
		for r := 0; r < R; r++ {
			totals[r] += perPart[ip*R+r]
		}
	}
	return totals, nil
}

// evaluateBatchPartition reduces worker w's share of one partition into the
// R-lane partial vector out.
func (e *Engine) evaluateBatchPartition(p, q *tree.Node, ip, w int, pm []float64, ws *WeightSet, out []float64) float64 {
	runs := e.workRuns(w, ip)
	if len(runs) == 0 {
		return 0
	}
	var c evalSpanCtx
	e.prepareEvalSpan(&c, p, q, ip, w, pm)
	c.bindBatch(ws)
	c.ensureTable(runsPatternCount(runs))
	count := 0
	for _, run := range runs {
		count += c.kern.EvaluateBatch(&c, run, out)
	}
	return c.takeOpsBatch(count)
}

// LogLikelihoodBatch runs one full traversal to the canonical virtual root
// and evaluates all R replicate log likelihoods of the WeightSet in a single
// batched reduction — the bootstrap fleet's scoring primitive.
func (e *Engine) LogLikelihoodBatch(ws *WeightSet) ([]float64, error) {
	if err := e.checkBatch(ws); err != nil {
		return nil, err
	}
	if e.obsBatchWidth != nil {
		e.obsBatchWidth.Set(float64(ws.r))
	}
	root := e.Tree.Tips[0].Back
	e.Traverse(root, false, nil)
	return e.EvaluateBatch(root, nil, ws)
}

// evaluateBatchSteal is the chunked R-lane root reduction: per-chunk R-vector
// partials into the session's batch chunk buffer, reduced master-side in
// fixed chunk-id order (see the determinism argument in chunkexec.go; the
// batch merely widens each chunk's partial from one float to R).
func (e *Engine) evaluateBatchSteal(p, q *tree.Node, act []bool, ws *WeightSet) []float64 {
	rt := e.stealRT
	R := ws.r
	n := rt.Layout().NumChunks()
	if cap(e.batchEvalChunk) < n*R {
		e.batchEvalChunk = make([]float64, n*R)
	}
	buf := e.batchEvalChunk[:n*R]
	for i := range buf {
		buf[i] = 0
	}
	rt.Load(act)
	e.Exec.Run(parallel.RegionEvaluate, func(w int, ctx *parallel.WorkerCtx) {
		pm := e.pmScratch[w][0]
		ops := 0.0
		var c evalSpanCtx
		cached := -1
		for {
			id := rt.Next(w, ctx)
			if id < 0 {
				break
			}
			ch := rt.Layout().Chunk(id)
			var t0 time.Time
			if e.measure {
				t0 = time.Now() //plk:allow(timenow) measured-cost attribution; never feeds likelihood values
			}
			if ch.Span != cached {
				e.prepareEvalSpan(&c, p, q, ch.Span, w, pm)
				c.bindBatch(ws)
				cached = ch.Span
			}
			c.ensureTable(ch.Patterns())
			count := c.kern.EvaluateBatch(&c, ch.Run(), buf[id*R:(id+1)*R])
			ops += c.takeOpsBatch(count)
			if e.measure {
				e.chargeChunk(w, ch.Span, ch.Patterns(), t0)
			}
		}
		ctx.Ops += ops
	})
	rt.Finish()
	perPart := make([]float64, len(e.Data.Parts)*R)
	for id := 0; id < n; id++ {
		sp := rt.Layout().Chunk(id).Span
		for r := 0; r < R; r++ {
			perPart[sp*R+r] += buf[id*R+r]
		}
	}
	totals := make([]float64, R)
	for ip := range e.Data.Parts {
		if !act[ip] {
			continue
		}
		for r := 0; r < R; r++ {
			totals[r] += perPart[ip*R+r]
		}
	}
	return totals
}

// BranchDerivativesBatch evaluates d lnL / dz and d² lnL / dz² for every
// replicate of the WeightSet over the branch whose sumtable was last
// prepared, at per-partition branch lengths z. The sumtable — like the CLVs —
// is weight-independent, so one PrepareSumtable serves the whole batch and
// each Newton iteration costs one R-lane sweep. Results land in d1 and d2,
// both of length NumPartitions*R indexed [partition*R + replicate]; masked
// partitions are zeroed. Lane r is bit-identical to an unbatched
// BranchDerivatives run under replicate r's weight override.
func (e *Engine) BranchDerivativesBatch(z []float64, active []bool, ws *WeightSet, d1, d2 []float64) error {
	if err := e.checkBatch(ws); err != nil {
		return err
	}
	R := ws.r
	want := len(e.Data.Parts) * R
	if len(d1) != want || len(d2) != want {
		return fmt.Errorf("core: derivative buffers have %d/%d entries, want %d (partitions x replicates)", len(d1), len(d2), want)
	}
	act := e.activeOrAll(active)
	e.refreshSchedule() // region boundary: adopt a rebalanced schedule if published
	if e.stealRT != nil {
		e.derivativesBatchSteal(z, act, ws, d1, d2)
		return nil
	}
	e.ensureBatchBuffers(R)
	e.Exec.Run(parallel.RegionDerivative, func(w int, ctx *parallel.WorkerCtx) {
		partials := e.batchDerivParts[w]
		ex := e.exScratch[w]
		ops := 0.0
		for ip := range e.Data.Parts {
			out := partials[ip*2*R : (ip+1)*2*R]
			for r := range out {
				out[r] = 0
			}
			if !act[ip] {
				continue
			}
			var t0 time.Time
			if e.measure {
				t0 = time.Now() //plk:allow(timenow) measured-cost attribution; never feeds likelihood values
			}
			ops += e.derivativeBatchPartition(ip, z[ip], w, ws, out, ex)
			if e.measure {
				e.chargePartition(w, ip, t0)
			}
		}
		ctx.Ops += ops
	})
	for k := range d1 {
		d1[k], d2[k] = 0, 0
	}
	for w := 0; w < e.Exec.Threads(); w++ {
		partials := e.batchDerivParts[w]
		for ip := range e.Data.Parts {
			for r := 0; r < R; r++ {
				d1[ip*R+r] += partials[ip*2*R+2*r]
				d2[ip*R+r] += partials[ip*2*R+2*r+1]
			}
		}
	}
	return nil
}

// derivativeBatchPartition reduces worker w's share of one partition into the
// 2R-lane partial vector out.
func (e *Engine) derivativeBatchPartition(ip int, z float64, w int, ws *WeightSet, out, ex []float64) float64 {
	runs := e.workRuns(w, ip)
	if len(runs) == 0 {
		return 0
	}
	var c derivSpanCtx
	e.prepareDerivSpan(&c, ip, z, ex)
	c.bindBatch(ws)
	count := 0
	for _, run := range runs {
		count += c.kern.DerivativesBatch(&c, run, out)
	}
	return float64(count) * opsDerivativeBatch(c.s, c.cats, ws.r)
}

// derivativesBatchSteal is the chunked R-lane Newton-derivative reduction:
// 2R partials per chunk, reduced in fixed chunk-id order.
func (e *Engine) derivativesBatchSteal(z []float64, act []bool, ws *WeightSet, d1, d2 []float64) {
	rt := e.stealRT
	R := ws.r
	n := rt.Layout().NumChunks()
	if cap(e.batchDerivChunk) < 2*n*R {
		e.batchDerivChunk = make([]float64, 2*n*R)
	}
	buf := e.batchDerivChunk[:2*n*R]
	for i := range buf {
		buf[i] = 0
	}
	rt.Load(act)
	e.Exec.Run(parallel.RegionDerivative, func(w int, ctx *parallel.WorkerCtx) {
		ex := e.exScratch[w]
		ops := 0.0
		var c derivSpanCtx
		cached := -1
		for {
			id := rt.Next(w, ctx)
			if id < 0 {
				break
			}
			ch := rt.Layout().Chunk(id)
			var t0 time.Time
			if e.measure {
				t0 = time.Now() //plk:allow(timenow) measured-cost attribution; never feeds likelihood values
			}
			if ch.Span != cached {
				e.prepareDerivSpan(&c, ch.Span, z[ch.Span], ex)
				c.bindBatch(ws)
				cached = ch.Span
			}
			count := c.kern.DerivativesBatch(&c, ch.Run(), buf[id*2*R:(id+1)*2*R])
			ops += float64(count) * opsDerivativeBatch(c.s, c.cats, R)
			if e.measure {
				e.chargeChunk(w, ch.Span, ch.Patterns(), t0)
			}
		}
		ctx.Ops += ops
	})
	rt.Finish()
	for k := range d1 {
		d1[k], d2[k] = 0, 0
	}
	for id := 0; id < n; id++ {
		sp := rt.Layout().Chunk(id).Span
		for r := 0; r < R; r++ {
			d1[sp*R+r] += buf[id*2*R+2*r]
			d2[sp*R+r] += buf[id*2*R+2*r+1]
		}
	}
}
