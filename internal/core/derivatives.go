package core

import (
	"math"
	"time"

	"phylo/internal/alignment"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/tree"
)

// PrepareSumtable projects the CLVs at both ends of branch (p, p.Back) into
// the eigenbasis and stores, per pattern/category/eigenindex k,
//
//	A[k] = (sum_s pi_s L_s V_{sk}) * (sum_s' Vinv_{ks'} R_s') / numCats
//
// so that the per-site likelihood along the branch becomes the exponential
// sum l_i(z) = sum_{c,k} A_i[c,k] exp(lambda_k r_c z). One sumtable prepares
// an arbitrary number of cheap Newton-Raphson derivative iterations for the
// same branch — the sumtable region runs once per branch, the derivative
// regions once per Newton iteration. Both end CLVs must be valid (use
// TraverseRoot first).
func (e *Engine) PrepareSumtable(p *tree.Node, active []bool) {
	q := p.Back
	act := e.activeOrAll(active)
	e.refreshSchedule() // region boundary: adopt a rebalanced schedule if published
	if e.stealRT != nil {
		e.sumtableSteal(p, q, act)
		return
	}
	e.Exec.Run(parallel.RegionSumTable, func(w int, ctx *parallel.WorkerCtx) {
		ops := 0.0
		for ip := range e.Data.Parts {
			if !act[ip] {
				continue
			}
			var t0 time.Time
			if e.measure {
				t0 = time.Now() //plk:allow(timenow) measured-cost attribution; never feeds likelihood values
			}
			ops += e.sumtablePartition(p, q, ip, w)
			if e.measure {
				e.chargePartition(w, ip, t0)
			}
		}
		ctx.Ops += ops
	})
}

// sumtablePartition builds worker w's share of the sumtable. A tip end
// whose share amortizes a projection table uses the category-independent
// per-code rows of buildTipSumLeft/Right instead of re-projecting the same
// 0/1 tip vector for every pattern and category (tip-case specialization;
// results are bit-identical).
func (e *Engine) sumtablePartition(p, q *tree.Node, ip, w int) float64 {
	runs := e.workRuns(w, ip)
	if len(runs) == 0 {
		return 0
	}
	var c sumSpanCtx
	e.prepareSumtableSpan(&c, p, q, ip, w)
	c.ensureTables(runsPatternCount(runs))
	count := 0
	for _, run := range runs {
		count += c.process(run)
	}
	return c.takeOps(count)
}

// sumSpanCtx is the per-(branch, partition, worker) sumtable setup — the
// eigenbasis views of both branch ends and the optional category-independent
// tip projection tables — shared by the precomputed and chunked execution
// paths (see nvSpanCtx).
type sumSpanCtx struct {
	e          *Engine
	ip, w      int
	s, cats    int
	cs         int
	base       int
	patStride  int // CLV layout: offset between consecutive patterns
	catStride  int // CLV layout: offset between consecutive categories
	sbase      int // sumtable base (the sumtable is always pattern-major)
	partOffset int
	dtype      alignment.DataType
	invCats    float64
	pTip, qTip bool
	pv, qv     []float64
	pRow, qRow []byte
	v, vi      []float64
	freqs      []float64
	lTab, rTab []float64
	kern       KernelBackend
	fixed      float64
}

// prepareSumtableSpan binds c to (branch, partition, worker).
func (e *Engine) prepareSumtableSpan(c *sumSpanCtx, p, q *tree.Node, ip, w int) {
	part := e.Data.Parts[ip]
	s := part.Type.States()
	m := e.Models[ip]
	*c = sumSpanCtx{
		e: e, ip: ip, w: w, s: s, cats: e.numCats, cs: e.numCats * s,
		base: e.layout.Base(ip), patStride: e.layout.PatStride(ip), catStride: e.layout.CatStride(ip),
		sbase: e.layout.SumIndex(ip, 0), partOffset: part.Offset,
		dtype: part.Type, invCats: 1.0 / float64(e.numCats),
		pTip: p.IsTip(), qTip: q.IsTip(),
		v: m.EigenVecs, vi: m.InvVecs, freqs: m.Freqs,
		kern: e.kernels[ip],
	}
	if c.pTip {
		c.pRow = part.Tips[p.Index]
	} else {
		c.pv = e.clv(p.Index)
	}
	if c.qTip {
		c.qRow = part.Tips[q.Index]
	} else {
		c.qv = e.clv(q.Index)
	}
}

// ensureTables builds the tip projection tables when the pending work unit
// amortizes them (see nvSpanCtx.ensureTables for the determinism argument).
func (c *sumSpanCtx) ensureTables(patterns int) {
	e := c.e
	if !e.Specialize || !(c.pTip || c.qTip) || patterns < tipTableMinPatterns(c.dtype) {
		return
	}
	codes := alignment.NumCodes(c.dtype)
	if c.pTip && c.lTab == nil {
		c.lTab = buildTipSumLeft(e.tipScratch[c.w][0], c.dtype, c.freqs, c.v, c.s)
		c.fixed += opsTipProj(c.s, codes)
	}
	if c.qTip && c.rTab == nil {
		c.rTab = buildTipSumRight(e.tipScratch[c.w][1], c.dtype, c.vi, c.s)
		c.fixed += opsTipProj(c.s, codes)
	}
}

// takeOps prices count processed patterns and claims the setup charge.
func (c *sumSpanCtx) takeOps(count int) float64 {
	ops := float64(count)*opsSumtableCase(c.s, c.cats, c.lTab != nil, c.rTab != nil) + c.fixed
	c.fixed = 0
	return ops
}

// process fills the sumtable for one pattern run and returns the pattern
// count, dispatching through the partition's backend. Sumtable writes are
// disjoint per pattern, so runs can execute on any worker in any order.
func (c *sumSpanCtx) process(run schedule.Run) int {
	return c.kern.Sumtable(c, run)
}

// processGeneric is the layout-aware generic sumtable body: CLV reads go
// through the layout strides, while the sumtable keeps the pattern-major
// geometry under every backend (the derivative kernel reduces one pattern's
// contiguous cats·s block at a time). Every backend routes here today; the
// eigenbasis projections accumulate in state-ascending order in any case.
//
//plk:hotpath
func (c *sumSpanCtx) processGeneric(run schedule.Run) int {
	s := c.s
	count := 0
	for i := run.Lo; i < run.Hi; i += run.Step {
		j := i - c.partOffset
		off := c.base + j*c.patStride
		soff := c.sbase + j*c.cs
		var xl, xr []float64
		var lRow, rRow []float64
		if c.lTab != nil {
			code := int(c.pRow[j])
			lRow = c.lTab[code*s : (code+1)*s]
		} else if c.pTip {
			xl = alignment.TipVector(c.dtype, c.pRow[j])
		}
		if c.rTab != nil {
			code := int(c.qRow[j])
			rRow = c.rTab[code*s : (code+1)*s]
		} else if c.qTip {
			xr = alignment.TipVector(c.dtype, c.qRow[j])
		}
		for cat := 0; cat < c.cats; cat++ {
			co := off + cat*c.catStride
			var cl, cr []float64
			if lRow == nil {
				cl = xl
				if !c.pTip {
					cl = c.pv[co : co+s]
				}
			}
			if rRow == nil {
				cr = xr
				if !c.qTip {
					cr = c.qv[co : co+s]
				}
			}
			dst := c.e.sumtable[soff+cat*s : soff+(cat+1)*s]
			for k := 0; k < s; k++ {
				var lproj, rproj float64
				if lRow != nil {
					lproj = lRow[k]
				} else {
					for a := 0; a < s; a++ {
						lproj += c.freqs[a] * cl[a] * c.v[a*s+k]
					}
				}
				if rRow != nil {
					rproj = rRow[k]
				} else {
					for a := 0; a < s; a++ {
						rproj += c.vi[k*s+a] * cr[a]
					}
				}
				dst[k] = lproj * rproj * c.invCats
			}
		}
		count++
	}
	return count
}

// BranchDerivatives evaluates d lnL / dz and d^2 lnL / dz^2 for the branch
// whose sumtable was last prepared, at per-partition branch lengths z (z is
// indexed by partition; with a joint estimate pass the same value in every
// active entry). Results are written into d1 and d2 (length NumPartitions);
// masked partitions are zeroed. One parallel region per call — this is the
// unit of synchronization the paper counts per Newton iteration.
func (e *Engine) BranchDerivatives(z []float64, active []bool, d1, d2 []float64) {
	act := e.activeOrAll(active)
	e.refreshSchedule() // region boundary: adopt a rebalanced schedule if published
	if e.stealRT != nil {
		e.derivativesSteal(z, act, d1, d2)
		return
	}
	e.Exec.Run(parallel.RegionDerivative, func(w int, ctx *parallel.WorkerCtx) {
		partials := e.derivPartials[w]
		ex := e.exScratch[w]
		ops := 0.0
		for ip := range e.Data.Parts {
			partials[2*ip] = 0
			partials[2*ip+1] = 0
			if !act[ip] {
				continue
			}
			var t0 time.Time
			if e.measure {
				t0 = time.Now() //plk:allow(timenow) measured-cost attribution; never feeds likelihood values
			}
			ops += e.derivativePartition(ip, z[ip], w, partials, ex)
			if e.measure {
				e.chargePartition(w, ip, t0)
			}
		}
		ctx.Ops += ops
	})
	for ip := range d1 {
		d1[ip], d2[ip] = 0, 0
	}
	for w := 0; w < e.Exec.Threads(); w++ {
		partials := e.derivPartials[w]
		for ip := range e.Data.Parts {
			d1[ip] += partials[2*ip]
			d2[ip] += partials[2*ip+1]
		}
	}
}

func (e *Engine) derivativePartition(ip int, z float64, w int, partials, ex []float64) float64 {
	runs := e.workRuns(w, ip)
	if len(runs) == 0 {
		return 0
	}
	var c derivSpanCtx
	e.prepareDerivSpan(&c, ip, z, ex)
	dd1, dd2 := 0.0, 0.0
	count := 0
	for _, run := range runs {
		r1, r2, n := c.process(run)
		dd1 += r1
		dd2 += r2
		count += n
	}
	partials[2*ip] = dd1
	partials[2*ip+1] = dd2
	return float64(count) * opsDerivative(c.s, c.cats)
}

// derivSpanCtx is the per-(partition, branch length, worker) derivative
// setup: the per-category exponential and derivative-factor tables over the
// worker's scratch. See nvSpanCtx for how the two execution paths share it.
type derivSpanCtx struct {
	e                  *Engine
	ip                 int
	s, cats, cs        int
	sbase              int // sumtable base (always pattern-major)
	partOffset         int
	weights            []float64
	eTab, g1Tab, g2Tab []float64
	kern               KernelBackend

	// Batched-replicate bindings; see evalSpanCtx and internal/core/batch.go.
	batchR int
	batchW []float64
}

// prepareDerivSpan fills the exponential tables E = exp(lambda_k r_c z) and
// the derivative factors g1 = lambda_k r_c, g2 = g1^2 into ex.
func (e *Engine) prepareDerivSpan(c *derivSpanCtx, ip int, z float64, ex []float64) {
	part := e.Data.Parts[ip]
	s := part.Type.States()
	cats := e.numCats
	cs := cats * s
	m := e.Models[ip]
	*c = derivSpanCtx{
		e: e, ip: ip, s: s, cats: cats, cs: cs,
		sbase: e.layout.SumIndex(ip, 0), partOffset: part.Offset, weights: e.weightsFor(part),
		eTab: ex[0:cs], g1Tab: ex[cs : 2*cs], g2Tab: ex[2*cs : 3*cs],
		kern: e.kernels[ip],
	}
	for cat := 0; cat < cats; cat++ {
		rc := m.CatRates[cat]
		for k := 0; k < s; k++ {
			g := m.EigenVals[k] * rc
			c.eTab[cat*s+k] = math.Exp(g * z)
			c.g1Tab[cat*s+k] = g
			c.g2Tab[cat*s+k] = g * g
		}
	}
}

// process reduces one pattern run to its (d1, d2) partial sums and pattern
// count, dispatching through the partition's backend.
func (c *derivSpanCtx) process(run schedule.Run) (float64, float64, int) {
	return c.kern.Derivatives(c, run)
}

// processGeneric is the derivative body shared by every backend: it reads
// only the sumtable, which is pattern-major under all of them. Partials are
// accumulated in ascending pattern order within the run.
//
//plk:hotpath
func (c *derivSpanCtx) processGeneric(run schedule.Run) (float64, float64, int) {
	cs := c.cs
	dd1, dd2 := 0.0, 0.0
	count := 0
	for i := run.Lo; i < run.Hi; i += run.Step {
		j := i - c.partOffset
		soff := c.sbase + j*cs
		l, l1, l2 := 0.0, 0.0, 0.0
		for k := 0; k < cs; k++ {
			a := c.e.sumtable[soff+k] * c.eTab[k]
			l += a
			l1 += a * c.g1Tab[k]
			l2 += a * c.g2Tab[k]
		}
		// The cs-length dot products above already ran, so the pattern is
		// charged whether or not the guard below accepts its contribution;
		// skipped patterns must not undercount the region's performed work.
		count++
		if l < 1e-300 {
			// Scaled likelihood vanished; the pattern cannot inform this
			// branch numerically. Skip it (RAxML guards identically).
			continue
		}
		inv := 1 / l
		r1 := l1 * inv
		wgt := c.weights[j]
		dd1 += wgt * r1
		dd2 += wgt * (l2*inv - r1*r1)
	}
	return dd1, dd2, count
}
