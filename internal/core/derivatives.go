package core

import (
	"math"
	"time"

	"phylo/internal/alignment"
	"phylo/internal/parallel"
	"phylo/internal/tree"
)

// PrepareSumtable projects the CLVs at both ends of branch (p, p.Back) into
// the eigenbasis and stores, per pattern/category/eigenindex k,
//
//	A[k] = (sum_s pi_s L_s V_{sk}) * (sum_s' Vinv_{ks'} R_s') / numCats
//
// so that the per-site likelihood along the branch becomes the exponential
// sum l_i(z) = sum_{c,k} A_i[c,k] exp(lambda_k r_c z). One sumtable prepares
// an arbitrary number of cheap Newton-Raphson derivative iterations for the
// same branch — the sumtable region runs once per branch, the derivative
// regions once per Newton iteration. Both end CLVs must be valid (use
// TraverseRoot first).
func (e *Engine) PrepareSumtable(p *tree.Node, active []bool) {
	q := p.Back
	act := e.activeOrAll(active)
	e.refreshSchedule() // region boundary: adopt a rebalanced schedule if published
	e.Exec.Run(parallel.RegionSumTable, func(w int, ctx *parallel.WorkerCtx) {
		ops := 0.0
		for ip := range e.Data.Parts {
			if !act[ip] {
				continue
			}
			var t0 time.Time
			if e.measure {
				t0 = time.Now()
			}
			ops += e.sumtablePartition(p, q, ip, w)
			if e.measure {
				e.chargePartition(w, ip, t0)
			}
		}
		ctx.Ops += ops
	})
}

// sumtablePartition builds worker w's share of the sumtable. A tip end
// whose share amortizes a projection table uses the category-independent
// per-code rows of buildTipSumLeft/Right instead of re-projecting the same
// 0/1 tip vector for every pattern and category (tip-case specialization;
// results are bit-identical).
func (e *Engine) sumtablePartition(p, q *tree.Node, ip, w int) float64 {
	runs := e.workRuns(w, ip)
	if len(runs) == 0 {
		return 0
	}
	part := e.Data.Parts[ip]
	s := part.Type.States()
	cats := e.numCats
	cs := cats * s
	m := e.Models[ip]
	base := e.clvBase[ip]
	sbase := e.sumBase[ip]
	v := m.EigenVecs
	vi := m.InvVecs
	freqs := m.Freqs
	invCats := 1.0 / float64(cats)

	pTip, qTip := p.IsTip(), q.IsTip()
	var pv, qv []float64
	var pRow, qRow []byte
	if pTip {
		pRow = part.Tips[p.Index]
	} else {
		pv = e.clv(p.Index)
	}
	if qTip {
		qRow = part.Tips[q.Index]
	} else {
		qv = e.clv(q.Index)
	}
	var lTab, rTab []float64
	fixed := 0.0
	if e.Specialize && (pTip || qTip) && runsPatternCount(runs) >= tipTableMinPatterns(part.Type) {
		codes := alignment.NumCodes(part.Type)
		if pTip {
			lTab = buildTipSumLeft(e.tipScratch[w][0], part.Type, freqs, v, s)
			fixed += opsTipProj(s, codes)
		}
		if qTip {
			rTab = buildTipSumRight(e.tipScratch[w][1], part.Type, vi, s)
			fixed += opsTipProj(s, codes)
		}
	}
	count := 0
	for _, run := range runs {
		for i := run.Lo; i < run.Hi; i += run.Step {
			j := i - part.Offset
			off := base + j*cs
			soff := sbase + j*cs
			var xl, xr []float64
			var lRow, rRow []float64
			if lTab != nil {
				code := int(pRow[j])
				lRow = lTab[code*s : (code+1)*s]
			} else if pTip {
				xl = alignment.TipVector(part.Type, pRow[j])
			} else {
				xl = pv[off : off+cs]
			}
			if rTab != nil {
				code := int(qRow[j])
				rRow = rTab[code*s : (code+1)*s]
			} else if qTip {
				xr = alignment.TipVector(part.Type, qRow[j])
			} else {
				xr = qv[off : off+cs]
			}
			for c := 0; c < cats; c++ {
				var cl, cr []float64
				if lRow == nil {
					cl = xl
					if !pTip {
						cl = xl[c*s : (c+1)*s]
					}
				}
				if rRow == nil {
					cr = xr
					if !qTip {
						cr = xr[c*s : (c+1)*s]
					}
				}
				dst := e.sumtable[soff+c*s : soff+(c+1)*s]
				for k := 0; k < s; k++ {
					var lproj, rproj float64
					if lRow != nil {
						lproj = lRow[k]
					} else {
						for a := 0; a < s; a++ {
							lproj += freqs[a] * cl[a] * v[a*s+k]
						}
					}
					if rRow != nil {
						rproj = rRow[k]
					} else {
						for a := 0; a < s; a++ {
							rproj += vi[k*s+a] * cr[a]
						}
					}
					dst[k] = lproj * rproj * invCats
				}
			}
			count++
		}
	}
	return float64(count)*opsSumtableCase(s, cats, lTab != nil, rTab != nil) + fixed
}

// BranchDerivatives evaluates d lnL / dz and d^2 lnL / dz^2 for the branch
// whose sumtable was last prepared, at per-partition branch lengths z (z is
// indexed by partition; with a joint estimate pass the same value in every
// active entry). Results are written into d1 and d2 (length NumPartitions);
// masked partitions are zeroed. One parallel region per call — this is the
// unit of synchronization the paper counts per Newton iteration.
func (e *Engine) BranchDerivatives(z []float64, active []bool, d1, d2 []float64) {
	act := e.activeOrAll(active)
	e.refreshSchedule() // region boundary: adopt a rebalanced schedule if published
	e.Exec.Run(parallel.RegionDerivative, func(w int, ctx *parallel.WorkerCtx) {
		partials := e.derivPartials[w]
		ex := e.exScratch[w]
		ops := 0.0
		for ip := range e.Data.Parts {
			partials[2*ip] = 0
			partials[2*ip+1] = 0
			if !act[ip] {
				continue
			}
			var t0 time.Time
			if e.measure {
				t0 = time.Now()
			}
			ops += e.derivativePartition(ip, z[ip], w, partials, ex)
			if e.measure {
				e.chargePartition(w, ip, t0)
			}
		}
		ctx.Ops += ops
	})
	for ip := range d1 {
		d1[ip], d2[ip] = 0, 0
	}
	for w := 0; w < e.Exec.Threads(); w++ {
		partials := e.derivPartials[w]
		for ip := range e.Data.Parts {
			d1[ip] += partials[2*ip]
			d2[ip] += partials[2*ip+1]
		}
	}
}

func (e *Engine) derivativePartition(ip int, z float64, w int, partials, ex []float64) float64 {
	runs := e.workRuns(w, ip)
	if len(runs) == 0 {
		return 0
	}
	part := e.Data.Parts[ip]
	s := part.Type.States()
	cats := e.numCats
	cs := cats * s
	m := e.Models[ip]
	sbase := e.sumBase[ip]
	// Per-category exponential tables: E = exp(lambda_k r_c z), plus the
	// first and second derivative factors g1 = lambda_k r_c, g2 = g1^2.
	eTab := ex[0:cs]
	g1Tab := ex[cs : 2*cs]
	g2Tab := ex[2*cs : 3*cs]
	for c := 0; c < cats; c++ {
		rc := m.CatRates[c]
		for k := 0; k < s; k++ {
			g := m.EigenVals[k] * rc
			eTab[c*s+k] = math.Exp(g * z)
			g1Tab[c*s+k] = g
			g2Tab[c*s+k] = g * g
		}
	}
	dd1, dd2 := 0.0, 0.0
	count := 0
	for _, run := range runs {
		for i := run.Lo; i < run.Hi; i += run.Step {
			j := i - part.Offset
			soff := sbase + j*cs
			l, l1, l2 := 0.0, 0.0, 0.0
			for k := 0; k < cs; k++ {
				a := e.sumtable[soff+k] * eTab[k]
				l += a
				l1 += a * g1Tab[k]
				l2 += a * g2Tab[k]
			}
			// The cs-length dot products above already ran, so the pattern is
			// charged whether or not the guard below accepts its contribution;
			// skipped patterns must not undercount the region's performed work.
			count++
			if l < 1e-300 {
				// Scaled likelihood vanished; the pattern cannot inform this
				// branch numerically. Skip it (RAxML guards identically).
				continue
			}
			inv := 1 / l
			r1 := l1 * inv
			wgt := part.Weights[j]
			dd1 += wgt * r1
			dd2 += wgt * (l2*inv - r1*r1)
		}
	}
	partials[2*ip] = dd1
	partials[2*ip+1] = dd2
	return float64(count) * opsDerivative(s, cats)
}
