package core
