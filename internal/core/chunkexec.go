package core

// Chunked (work-stealing) region execution. When a session is built with
// Options.Steal, every parallel region distributes its patterns through the
// internal/steal runtime instead of iterating precomputed per-worker runs:
// the schedule's assignment is sliced into chunks, each worker drains its
// own deque LIFO, and drained workers steal the largest remaining half from
// the costliest victim, so no worker idles at the region barrier while
// another still has queued work.
//
// Determinism argument (the reason stealing can never change results):
//
//  1. CLV, scaling, and sumtable writes are per-pattern and chunks are
//     disjoint pattern ranges, so newview/sumtable output is independent of
//     which worker executes a chunk.
//  2. Reduction kernels (evaluate, derivatives) accumulate one partial sum
//     per chunk, in ascending pattern order inside the chunk — a pure
//     function of the chunk's range — and the master reduces the per-chunk
//     partials in fixed chunk-id order after the barrier. The floating-point
//     association is therefore identical whatever the dynamic steal
//     interleaving, stealing on or off, concurrent or serial executor.
//  3. Multi-step traversals synchronize on an intra-region step barrier
//     (steal.Runtime.NextStep) before re-arming the deques, because with
//     stealing the step-s writer of a pattern need not be its step-s+1
//     reader; the barrier makes every step's CLVs visible before any worker
//     starts the next step. Serial executors need no barrier — their
//     workers run one after another and only touch their own assignment.
//
// Session-shared tip tables and P-matrix setup are cached per (step, span)
// encounter in the worker-local span contexts, so a worker processing
// consecutive chunks of one span pays the setup once, like the precomputed
// path; thieves crossing into a new span pay it again, which the op
// accounting records as the (real) extra work stealing performs.

import (
	"time"

	"phylo/internal/parallel"
	"phylo/internal/steal"
	"phylo/internal/tree"
)

// chargeChunk attributes the monotonic wall time since t0 and a chunk's
// pattern count to the (worker, partition) measurement cell — the
// chunk-granular analogue of chargePartition, so measured-cost rebalancing
// and stealing compose: observed per-pattern costs reflect the patterns a
// worker actually executed (its own and stolen ones), not its static share.
func (e *Engine) chargeChunk(w, ip, patterns int, t0 time.Time) {
	e.partSecs[w][ip] += time.Since(t0).Seconds() //plk:allow(timenow) measured-cost attribution; never feeds likelihood values
	e.partPats[w][ip] += float64(patterns)
}

// executeStepsSteal is the chunked traversal region: all steps run inside
// one parallel region (one barrier at the end, as the paper's design
// requires), with the steal runtime's step barrier separating them.
func (e *Engine) executeStepsSteal(steps []tree.TraversalStep, act []bool) {
	rt := e.stealRT
	rt.Load(act)
	e.Exec.Run(parallel.RegionNewview, func(w int, ctx *parallel.WorkerCtx) {
		pmQ := e.pmScratch[w][0]
		pmR := e.pmScratch[w][1]
		ops := 0.0
		var c nvSpanCtx
		for si := range steps {
			if si > 0 {
				rt.NextStep(w, ctx)
			}
			cached := -1
			for {
				id := rt.Next(w, ctx)
				if id < 0 {
					break
				}
				ch := rt.Layout().Chunk(id)
				var t0 time.Time
				if e.measure {
					t0 = time.Now() //plk:allow(timenow) measured-cost attribution; never feeds likelihood values
				}
				if ch.Span != cached {
					e.prepareNewviewSpan(&c, steps[si], ch.Span, w, pmQ, pmR)
					cached = ch.Span
					c.noteSpan(ctx)
				}
				c.ensureTables(ch.Patterns())
				count := c.process(ch.Run())
				ops += c.takeOps(count)
				// Flush the chunk's observability scratch (per chunk, never per
				// pattern; prepareNewviewSpan resets c, so scaled cannot be
				// left to accumulate across span switches).
				ctx.Patterns += float64(count)
				ctx.Scalings += c.scaled
				c.scaled = 0
				if e.measure {
					e.chargeChunk(w, ch.Span, ch.Patterns(), t0)
				}
			}
		}
		ctx.Ops += ops
	})
	rt.Finish()
}

// evaluateSteal is the chunked root log-likelihood reduction: per-chunk
// partial sums into the session's chunk buffer, reduced master-side in fixed
// chunk-id order (see the determinism argument above).
func (e *Engine) evaluateSteal(p, q *tree.Node, act []bool) (float64, []float64) {
	rt := e.stealRT
	n := rt.Layout().NumChunks()
	if cap(e.evalChunk) < n {
		e.evalChunk = make([]float64, n)
	}
	buf := e.evalChunk[:n]
	for i := range buf {
		buf[i] = 0
	}
	rt.Load(act)
	e.Exec.Run(parallel.RegionEvaluate, func(w int, ctx *parallel.WorkerCtx) {
		pm := e.pmScratch[w][0]
		ops := 0.0
		var c evalSpanCtx
		cached := -1
		for {
			id := rt.Next(w, ctx)
			if id < 0 {
				break
			}
			ch := rt.Layout().Chunk(id)
			var t0 time.Time
			if e.measure {
				t0 = time.Now() //plk:allow(timenow) measured-cost attribution; never feeds likelihood values
			}
			if ch.Span != cached {
				e.prepareEvalSpan(&c, p, q, ch.Span, w, pm)
				cached = ch.Span
			}
			c.ensureTable(ch.Patterns())
			sum, count := c.process(ch.Run())
			buf[id] = sum
			ops += c.takeOps(count)
			if e.measure {
				e.chargeChunk(w, ch.Span, ch.Patterns(), t0)
			}
		}
		ctx.Ops += ops
	})
	rt.Finish()
	perPart := make([]float64, len(e.Data.Parts))
	for id := 0; id < n; id++ {
		perPart[rt.Layout().Chunk(id).Span] += buf[id]
	}
	total := 0.0
	for ip, v := range perPart {
		if act[ip] {
			total += v
		}
	}
	return total, perPart
}

// sumtableSteal is the chunked sumtable region; writes are per-pattern
// disjoint, so no reduction is needed.
func (e *Engine) sumtableSteal(p, q *tree.Node, act []bool) {
	rt := e.stealRT
	rt.Load(act)
	e.Exec.Run(parallel.RegionSumTable, func(w int, ctx *parallel.WorkerCtx) {
		ops := 0.0
		var c sumSpanCtx
		cached := -1
		for {
			id := rt.Next(w, ctx)
			if id < 0 {
				break
			}
			ch := rt.Layout().Chunk(id)
			var t0 time.Time
			if e.measure {
				t0 = time.Now() //plk:allow(timenow) measured-cost attribution; never feeds likelihood values
			}
			if ch.Span != cached {
				e.prepareSumtableSpan(&c, p, q, ch.Span, w)
				cached = ch.Span
			}
			c.ensureTables(ch.Patterns())
			ops += c.takeOps(c.process(ch.Run()))
			if e.measure {
				e.chargeChunk(w, ch.Span, ch.Patterns(), t0)
			}
		}
		ctx.Ops += ops
	})
	rt.Finish()
}

// derivativesSteal is the chunked Newton-derivative reduction: (d1, d2)
// partials per chunk, reduced in fixed chunk-id order.
func (e *Engine) derivativesSteal(z []float64, act []bool, d1, d2 []float64) {
	rt := e.stealRT
	n := rt.Layout().NumChunks()
	if cap(e.derivChunk) < 2*n {
		e.derivChunk = make([]float64, 2*n)
	}
	buf := e.derivChunk[:2*n]
	for i := range buf {
		buf[i] = 0
	}
	rt.Load(act)
	e.Exec.Run(parallel.RegionDerivative, func(w int, ctx *parallel.WorkerCtx) {
		ex := e.exScratch[w]
		ops := 0.0
		var c derivSpanCtx
		cached := -1
		for {
			id := rt.Next(w, ctx)
			if id < 0 {
				break
			}
			ch := rt.Layout().Chunk(id)
			var t0 time.Time
			if e.measure {
				t0 = time.Now() //plk:allow(timenow) measured-cost attribution; never feeds likelihood values
			}
			if ch.Span != cached {
				e.prepareDerivSpan(&c, ch.Span, z[ch.Span], ex)
				cached = ch.Span
			}
			r1, r2, count := c.process(ch.Run())
			buf[2*id] = r1
			buf[2*id+1] = r2
			ops += float64(count) * opsDerivative(c.s, c.cats)
			if e.measure {
				e.chargeChunk(w, ch.Span, ch.Patterns(), t0)
			}
		}
		ctx.Ops += ops
	})
	rt.Finish()
	for ip := range d1 {
		d1[ip], d2[ip] = 0, 0
	}
	for id := 0; id < n; id++ {
		sp := rt.Layout().Chunk(id).Span
		d1[sp] += buf[2*id]
		d2[sp] += buf[2*id+1]
	}
}

// stealLayoutFor rebuilds the chunk decomposition for the engine's current
// schedule at the session's minimum chunk size.
func (e *Engine) stealLayoutFor() *steal.Layout {
	return steal.NewLayout(e.sched, e.minChunk)
}

// StealEnabled reports whether this session runs the chunked work-stealing
// execution path.
func (e *Engine) StealEnabled() bool { return e.stealRT != nil }

// SetStealing toggles thieving on a steal-enabled session (no-op otherwise).
// The chunked execution and fixed-order reductions stay in place either way,
// so results are bit-for-bit identical with stealing on or off; the toggle
// exists for A/B measurement and the bit-identity acceptance tests. Must be
// called between regions.
func (e *Engine) SetStealing(on bool) {
	if e.stealRT != nil {
		e.stealRT.SetStealing(on)
	}
}

// Stealing reports whether thieving is currently enabled.
func (e *Engine) Stealing() bool { return e.stealRT != nil && e.stealRT.Stealing() }
