package core

import "unsafe"

// Cache-line-aligned float64 allocation. The CLV planes, the sumtable, and
// the per-worker tip-table/P-matrix scratch are the kernel's only large hot
// buffers; starting each on a 64-byte boundary keeps the layout descriptor's
// alignment promises honest (a cat-major plane stride of 8k floats is only
// aligned if float 0 is) and keeps vector-width loads from straddling lines.

// cacheLine is the alignment target in bytes; alignFloatCount is the same in
// float64 units. Partition bases and cat-major plane strides are rounded up
// to multiples of it (see CLVLayout).
const (
	cacheLine       = 64
	alignFloatCount = cacheLine / 8
)

// alignFloats rounds a float64 count up to a whole number of cache lines.
func alignFloats(n int) int {
	return (n + alignFloatCount - 1) &^ (alignFloatCount - 1)
}

// alignedFloats allocates a zeroed float64 slice of length n whose first
// element sits on a cache-line boundary. Go's allocator already aligns large
// slices; this makes it a guarantee rather than a likelihood by
// over-allocating one line and re-slicing. Capacity is clipped to n so
// appends cannot silently outgrow the aligned region.
func alignedFloats(n int) []float64 {
	if n == 0 {
		return nil
	}
	buf := make([]float64, n+alignFloatCount-1)
	off := 0
	if r := uintptr(unsafe.Pointer(&buf[0])) % cacheLine; r != 0 {
		off = int((cacheLine - r) / 8)
	}
	return buf[off : off+n : off+n]
}

// isAligned reports whether a non-empty slice starts on a cache-line
// boundary (used by the allocation-pinning tests).
func isAligned(v []float64) bool {
	return len(v) == 0 || uintptr(unsafe.Pointer(&v[0]))%cacheLine == 0
}
