package core

import (
	"strings"
	"testing"

	"phylo/internal/alignment"
	"phylo/internal/model"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/tree"
)

// The kernel-backend acceptance suite: the fused backend (cat-major layout,
// unrolled 4-state kernels) must be bit-for-bit identical to the generic
// oracle on total lnL, per-partition lnLs, per-site lnLs, and both-sided
// branch derivatives — across executors, steal on/off, 1 and 4 Gamma
// categories, and under forced 2^-256 scaling. Exact == comparisons
// throughout: the backends promise the same floating-point accumulation
// order, not just the same math.

// backendResult extends stealResult with per-partition site log likelihoods.
type backendResult struct {
	stealResult
	sites [][]float64
}

func runBackendResult(t *testing.T, eng *Engine) backendResult {
	t.Helper()
	r := backendResult{stealResult: runStealResult(t, eng)}
	for ip := 0; ip < eng.NumPartitions(); ip++ {
		r.sites = append(r.sites, eng.SiteLogLikelihoods(ip))
	}
	return r
}

func requireBackendIdentical(t *testing.T, label string, gen, fus backendResult) {
	t.Helper()
	requireBitIdentical(t, label, gen.stealResult, fus.stealResult)
	for ip := range gen.sites {
		for j := range gen.sites[ip] {
			if gen.sites[ip][j] != fus.sites[ip][j] {
				t.Fatalf("%s: partition %d site %d lnL %v != %v (must be bit-identical)",
					label, ip, j, gen.sites[ip][j], fus.sites[ip][j])
			}
		}
	}
}

// TestBackendBitIdentity compares the two backends configuration by
// configuration on mixed DNA+AA data: Pool sessions, Sim, and Sequential
// executors, chunked execution with stealing on and off, at 1 and 4 Gamma
// categories. Each configuration is built twice — once per backend — over
// backend-specific Shared state; within a configuration the executor,
// schedule, and reduction order are identical, so any difference would be the
// fused kernels' doing.
func TestBackendBitIdentity(t *testing.T) {
	for _, cats := range []int{1, 4} {
		d, models := stealFixture(t, cats, int64(300+cats))
		const threads = 3
		pool, err := parallel.NewPool(threads)
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()

		mk := func(backend Backend, exec parallel.Executor, nThreads int, opts Options) *Engine {
			t.Helper()
			sh, err := NewSharedWith(d, cats, nThreads, backend)
			if err != nil {
				t.Fatal(err)
			}
			if sh.Backend != backend {
				t.Fatalf("shared backend %v, want %v", sh.Backend, backend)
			}
			tr, err := tree.Random(taxaNames(d.NumTaxa()), 1, tree.RandomOptions{Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			ms := make([]*model.Model, len(models))
			for i, m := range models {
				ms[i] = m.Clone()
			}
			eng, err := NewSession(sh, tr, ms, exec, opts)
			if err != nil {
				t.Fatal(err)
			}
			return eng
		}

		type config struct {
			name    string
			exec    func() parallel.Executor
			threads int
			opts    Options
			steal   bool // SetStealing target when opts.Steal
		}
		sim := func() parallel.Executor {
			s, err := parallel.NewSim(threads)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		configs := []config{
			{"pool", func() parallel.Executor { return pool.Session() }, threads,
				Options{Specialize: true, Schedule: schedule.Weighted}, false},
			{"pool-steal", func() parallel.Executor { return pool.Session() }, threads,
				Options{Specialize: true, Schedule: schedule.Weighted, Steal: true, MinChunk: 16}, true},
			{"pool-steal-off", func() parallel.Executor { return pool.Session() }, threads,
				Options{Specialize: true, Schedule: schedule.Weighted, Steal: true, MinChunk: 16}, false},
			{"sim", sim, threads, Options{Specialize: true}, false},
			{"sequential", func() parallel.Executor { return parallel.NewSequential() }, 1,
				Options{Specialize: true}, false},
			{"sequential-nospec", func() parallel.Executor { return parallel.NewSequential() }, 1,
				Options{Specialize: false}, false},
		}
		for _, cfg := range configs {
			engGen := mk(BackendGeneric, cfg.exec(), cfg.threads, cfg.opts)
			engFus := mk(BackendFused, cfg.exec(), cfg.threads, cfg.opts)
			if cfg.opts.Steal {
				engGen.SetStealing(cfg.steal)
				engFus.SetStealing(cfg.steal)
			}
			resGen := runBackendResult(t, engGen)
			resFus := runBackendResult(t, engFus)
			requireBackendIdentical(t, cfg.name+"/generic-vs-fused", resGen, resFus)
		}
	}
}

// TestBackendBitIdentityUnderForcedScaling drives the 2^-256 scaling path on
// a deep long-branch DNA tree under both backends: total lnL and every
// per-pattern scaling exponent must match exactly, and scaling must actually
// fire (otherwise the fixture tests nothing).
func TestBackendBitIdentityUnderForcedScaling(t *testing.T) {
	const taxa = 220
	a := randomAlignment(t, taxa, 60, alignment.DNA, 777)
	d, err := alignment.Compress(a, alignment.SinglePartition(a, alignment.DNA, ""), alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(backend Backend) *Engine {
		sh, err := NewSharedWith(d, 2, 1, backend)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := tree.Random(taxaNames(taxa), 1, tree.RandomOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewSession(sh, tr, []*model.Model{tipCaseModels(t, alignment.DNA, 2, 5.0)}, parallel.NewSequential(), Options{Specialize: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range eng.Tree.Branches() {
			tree.SetBranchLength(b, 0, 1.4)
		}
		return eng
	}
	engGen, engFus := mk(BackendGeneric), mk(BackendFused)
	lg, lf := engGen.LogLikelihood(), engFus.LogLikelihood()
	if err := CheckFinite(lf); err != nil {
		t.Fatal(err)
	}
	if lg != lf {
		t.Errorf("scaled lnL: generic %v != fused %v (must be bit-identical)", lg, lf)
	}
	fired := false
	for n := range engGen.scales {
		for i := range engGen.scales[n] {
			if engGen.scales[n][i] > 0 {
				fired = true
			}
			if engGen.scales[n][i] != engFus.scales[n][i] {
				t.Fatalf("node %d pattern %d: scaling exponent generic %d != fused %d",
					n, i, engGen.scales[n][i], engFus.scales[n][i])
			}
		}
	}
	if !fired {
		t.Fatal("scaling never triggered; fixture misconfigured")
	}
}

// TestBackendSelection pins the dispatch rules: the fused backend runs the
// unrolled kernels only on 4-state partitions and the layout-aware generic
// loop elsewhere; the generic backend never selects the fused kernels; the
// layouts follow the backend.
func TestBackendSelection(t *testing.T) {
	if n := kernelFor(BackendFused, alignment.DNA, 4).Name(); n != "fused4" {
		t.Errorf("fused backend on DNA selected %q, want fused4", n)
	}
	if n := kernelFor(BackendFused, alignment.AA, 4).Name(); n != "generic" {
		t.Errorf("fused backend on AA selected %q, want generic fallback", n)
	}
	if n := kernelFor(BackendGeneric, alignment.DNA, 4).Name(); n != "generic" {
		t.Errorf("generic backend on DNA selected %q, want generic", n)
	}
	if k := layoutKindFor(BackendFused); k != LayoutCatMajor {
		t.Errorf("fused layout %v, want cat-major", k)
	}
	if k := layoutKindFor(BackendGeneric); k != LayoutPatternMajor {
		t.Errorf("generic layout %v, want pattern-major", k)
	}
}

// TestBackendParseAndResolve covers ParseBackend round-trips, the PLK_BACKEND
// environment resolution (including rejection of junk values), and the
// NewSession guard against mixing a session's backend with foreign shared
// state.
func TestBackendParseAndResolve(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
	}{
		{"", BackendAuto}, {"auto", BackendAuto},
		{"generic", BackendGeneric}, {"GENERIC", BackendGeneric}, {"oracle", BackendGeneric},
		{"fused", BackendFused}, {"fused4", BackendFused}, {"vectorized", BackendFused},
	} {
		got, err := ParseBackend(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseBackend(%q) = (%v, %v), want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseBackend("turbo"); err == nil {
		t.Error("ParseBackend accepted junk")
	}
	for _, b := range []Backend{BackendAuto, BackendGeneric, BackendFused} {
		rt, err := ParseBackend(b.String())
		if err != nil || rt != b {
			t.Errorf("round-trip %v: got (%v, %v)", b, rt, err)
		}
	}

	t.Setenv("PLK_BACKEND", "generic")
	if got, err := resolveBackend(BackendAuto); err != nil || got != BackendGeneric {
		t.Errorf("auto under PLK_BACKEND=generic resolved to (%v, %v)", got, err)
	}
	// An explicit choice must ignore the environment.
	if got, err := resolveBackend(BackendFused); err != nil || got != BackendFused {
		t.Errorf("explicit fused under PLK_BACKEND=generic resolved to (%v, %v)", got, err)
	}
	t.Setenv("PLK_BACKEND", "bogus")
	if _, err := resolveBackend(BackendAuto); err == nil || !strings.Contains(err.Error(), "PLK_BACKEND") {
		t.Errorf("bogus PLK_BACKEND: err = %v, want PLK_BACKEND parse error", err)
	}
	t.Setenv("PLK_BACKEND", "")
	if got, err := resolveBackend(BackendAuto); err != nil || got != BackendFused {
		t.Errorf("auto with empty PLK_BACKEND resolved to (%v, %v), want fused default", got, err)
	}

	// Session/shared backend mismatch must be rejected: the backend fixes the
	// CLV layout, which is shared property.
	a := randomAlignment(t, 6, 40, alignment.DNA, 99)
	d, err := alignment.Compress(a, alignment.SinglePartition(a, alignment.DNA, ""), alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharedWith(d, 4, 1, BackendGeneric)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tree.Random(taxaNames(6), 1, tree.RandomOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := tipCaseModels(t, alignment.DNA, 4, 0.8)
	if _, err := NewSession(sh, tr, []*model.Model{m}, parallel.NewSequential(), Options{Specialize: true, Backend: BackendFused}); err == nil {
		t.Error("NewSession accepted a fused session over generic shared state")
	}
	eng, err := NewSession(sh, tr, []*model.Model{m}, parallel.NewSequential(), Options{Specialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Backend() != BackendGeneric {
		t.Errorf("session backend %v, want generic (inherited from shared)", eng.Backend())
	}
}
