package core

// Weighted operation costs per pattern, in approximate multiply-add units.
// They feed the WorkerCtx.Ops counters that (a) the virtual platform model
// prices into runtime and (b) the statistics use to quantify load imbalance.
// The 20-state kernels cost ~25x the 4-state ones per column, which is the
// paper's explanation for the milder load-balance problem on protein data
// ("roughly by a factor of 20x20/4x4=25").

// opsNewview is the per-pattern cost of one newview step: two child P-matrix
// applications (s^2 each) plus the entrywise product and scaling check.
func opsNewview(states, cats int) float64 {
	return float64(cats * (2*states*states + 2*states))
}

// opsEvaluate is the per-pattern cost of the root log-likelihood reduction:
// one P application, the pi-weighted dot product, and the log.
func opsEvaluate(states, cats int) float64 {
	return float64(cats*(states*states+2*states) + 30)
}

// opsSumtable is the per-pattern cost of building the Newton-Raphson
// sumtable: two eigenbasis projections per category.
func opsSumtable(states, cats int) float64 {
	return float64(cats * (2*states*states + states))
}

// opsDerivative is the per-pattern cost of one derivative evaluation over an
// existing sumtable.
func opsDerivative(states, cats int) float64 {
	return float64(cats*states*3 + 10)
}
