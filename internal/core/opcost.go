package core

// Weighted operation costs per pattern, in approximate multiply-add units.
// They feed the WorkerCtx.Ops counters that (a) the virtual platform model
// prices into runtime and (b) the statistics use to quantify load imbalance.
// The 20-state kernels cost ~25x the 4-state ones per column, which is the
// paper's explanation for the milder load-balance problem on protein data
// ("roughly by a factor of 20x20/4x4=25").
//
// Since the tip-case specialization the costs are per *case*, not per
// kernel: a specialized tip child is a precomputed table-row product (O(s)
// per pattern) while an inner child pays a full P-matrix application (O(s²)),
// so charging both the same would misprice tip-adjacent patterns in both the
// runtime Ops counters and the weighted schedule's span costs.
//
// The costs are deliberately backend-invariant: the generic and fused kernel
// backends perform the same multiply-adds per pattern (the fused backend
// merely retires them faster over its cat-major layout), so pricing work in
// madd units keeps Ops counters and span costs comparable across backends —
// a schedule packed for one backend balances the other equally well, and the
// virtual platform model needs no per-backend calibration.

// opsNewviewCase is the per-pattern cost of one newview step given each
// child's kind: an inner child costs a full P application (s² madds), a
// specialized tip child one precomputed table-row read and multiply (s); the
// trailing 2s covers the entrywise product and the scaling check. Pass
// qTipFast/rTipFast as "this child actually ran the table-lookup path" — a
// tip child processed by the generic kernel still pays the full s².
func opsNewviewCase(states, cats int, qTipFast, rTipFast bool) float64 {
	cq := states * states
	if qTipFast {
		cq = states
	}
	cr := states * states
	if rTipFast {
		cr = states
	}
	return float64(cats * (cq + cr + 2*states))
}

// opsNewview is the inner/inner (worst) case of one newview step: two child
// P-matrix applications plus the entrywise product and scaling check. It is
// also the cost of the generic (unspecialized) kernel regardless of tips.
func opsNewview(states, cats int) float64 {
	return opsNewviewCase(states, cats, false, false)
}

// opsNewviewAvg prices the *average* per-pattern newview cost over a full
// traversal under tip-case specialization: a fraction tipFrac of the child
// slots are tips (table-row product, O(s)) and the rest are inner CLVs (full
// P application, O(s²)). The weighted scheduler uses it as the span cost —
// it cannot know the tree (one Shared backs sessions on many trees), but the
// tip fraction of a full traversal is a tree-shape invariant (see
// tipChildFrac), so this prices tip-heavy datasets honestly on average.
func opsNewviewAvg(states, cats int, tipFrac float64) float64 {
	child := tipFrac*float64(states) + (1-tipFrac)*float64(states*states)
	return float64(cats) * (2*child + 2*float64(states))
}

// tipChildFrac is the fraction of newview child slots that are tips in a
// full traversal of an unrooted binary tree with n taxa rooted on a tip
// branch: the n-2 steps have 2(n-2) child slots, of which n-1 are tips
// (every tip except the root one) and n-3 are inner nodes.
func tipChildFrac(numTaxa int) float64 {
	if numTaxa < 4 {
		return 1
	}
	return float64(numTaxa-1) / float64(2*numTaxa-4)
}

// opsEvaluateCase is the per-pattern cost of the root log-likelihood
// reduction: the P application to the q-side vector (a table-row read, s,
// when the q tip is specialized; s² otherwise), the pi-weighted dot product,
// and the log.
func opsEvaluateCase(states, cats int, qTipFast bool) float64 {
	cq := states * states
	if qTipFast {
		cq = states
	}
	return float64(cats*(cq+2*states) + 30)
}

// opsEvaluate is the generic (inner q child) evaluate cost.
func opsEvaluate(states, cats int) float64 {
	return opsEvaluateCase(states, cats, false)
}

// opsSumtableCase is the per-pattern cost of building the Newton-Raphson
// sumtable: two eigenbasis projections per category, each reduced to a
// category-independent table-row read (s) when that end is a specialized
// tip, plus the s writes.
func opsSumtableCase(states, cats int, pTipFast, qTipFast bool) float64 {
	cp := states * states
	if pTipFast {
		cp = states
	}
	cq := states * states
	if qTipFast {
		cq = states
	}
	return float64(cats * (cp + cq + states))
}

// opsSumtable is the generic (both ends inner) sumtable cost.
func opsSumtable(states, cats int) float64 {
	return opsSumtableCase(states, cats, false, false)
}

// opsDerivative is the per-pattern cost of one derivative evaluation over an
// existing sumtable (tips do not appear here: the sumtable already absorbed
// them).
func opsDerivative(states, cats int) float64 {
	return float64(cats*states*3 + 10)
}

// Per-pattern cost of one *additional* replicate lane in the batched
// reductions: an evaluate lane is one weight multiply-accumulate into its
// partial (~2 madds), a derivative lane two (d1 and d2, ~4). The first lane
// is already priced by opsEvaluateCase/opsDerivative — a width-1 batch
// performs exactly the unbatched reduction's work.
const (
	opsEvalLane  = 2.0
	opsDerivLane = 4.0
)

// opsEvaluateBatch prices one pattern of the R-wide batched evaluate.
func opsEvaluateBatch(states, cats int, qTipFast bool, lanes int) float64 {
	return opsEvaluateCase(states, cats, qTipFast) + opsEvalLane*float64(lanes-1)
}

// opsDerivativeBatch prices one pattern of the R-wide batched derivative.
func opsDerivativeBatch(states, cats, lanes int) float64 {
	return opsDerivative(states, cats) + opsDerivLane*float64(lanes-1)
}

// opsTipTable is the one-off cost of precomputing a per-code lookup table
// for one tip child: codes rows of cats×s entries, each an s-term dot
// product. It amortizes over the worker's pattern share, which is why the
// kernels only build tables for shares above tipTableMinPatterns.
func opsTipTable(states, cats, codes int) float64 {
	return float64(codes * cats * states * states)
}

// opsTipProj is the one-off cost of one category-independent sumtable
// projection table (codes rows of s entries, each an s-term dot product);
// it is charged once per specialized tip end.
func opsTipProj(states, codes int) float64 {
	return float64(codes * states * states)
}
