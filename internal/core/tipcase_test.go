package core

import (
	"math"
	"testing"

	"phylo/internal/alignment"
	"phylo/internal/model"
	"phylo/internal/parallel"
	"phylo/internal/tree"
)

// The tip-case specialization tests build alignments wide enough that every
// worker's share clears tipTableMinPatterns, so the table paths (not the
// generic fallback) are what is being compared against the generic kernels.

func tipCaseModels(t *testing.T, dtype alignment.DataType, cats int, alpha float64) *model.Model {
	t.Helper()
	var m *model.Model
	var err error
	if dtype == alignment.DNA {
		m, err = model.GTR([]float64{0.31, 0.19, 0.27, 0.23}, []float64{1.3, 2.8, 0.6, 1.1, 3.5, 1}, cats, alpha)
	} else {
		m, err = model.SYN20(cats, alpha)
	}
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// specAndGenericEngines builds two engines over the same data and identical
// trees, one with Specialize on (tip tables + unrolled DNA) and one fully
// generic.
func specAndGenericEngines(t *testing.T, a *alignment.Alignment, dtype alignment.DataType, cats int, alpha float64, treeSeed int64) (spec, gen *Engine, d *alignment.CompressedData) {
	t.Helper()
	d, err := alignment.Compress(a, alignment.SinglePartition(a, dtype, ""), alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalPatterns < tipTableMinPatterns(dtype) {
		t.Fatalf("fixture too narrow: %d patterns < table threshold %d; tip tables would not engage", d.TotalPatterns, tipTableMinPatterns(dtype))
	}
	mk := func(specialize bool) *Engine {
		tr, err := tree.Random(taxaNames(a.NumTaxa()), 1, tree.RandomOptions{Seed: treeSeed})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(d, tr, []*model.Model{tipCaseModels(t, dtype, cats, alpha)}, parallel.NewSequential(), Options{Specialize: specialize})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	return mk(true), mk(false), d
}

// TestTipCaseEquivalence: the specialized tip-case kernels (lookup tables
// for newview, evaluate, and the sumtable projections) must agree with the
// generic path to ≤1e-12 relative on DNA with ambiguity/gap codes, on AA,
// and with 1 and 4 gamma categories — over the total likelihood, every
// per-pattern site likelihood, and the branch derivatives.
func TestTipCaseEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		dtype alignment.DataType
		taxa  int
		sites int
		cats  int
	}{
		{"DNA-4cats", alignment.DNA, 7, 300, 4},
		{"DNA-1cat", alignment.DNA, 7, 300, 1},
		{"AA-4cats", alignment.AA, 6, 300, 4},
		{"AA-1cat", alignment.AA, 6, 300, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := randomAlignment(t, tc.taxa, tc.sites, tc.dtype, int64(tc.taxa)*100+int64(tc.cats))
			spec, gen, _ := specAndGenericEngines(t, a, tc.dtype, tc.cats, 0.8, 41)
			ls, lg := spec.LogLikelihood(), gen.LogLikelihood()
			if math.Abs(ls-lg) > 1e-12*math.Abs(lg) {
				t.Errorf("total lnL: specialized %.15f vs generic %.15f", ls, lg)
			}
			ss, sg := spec.SiteLogLikelihoods(0), gen.SiteLogLikelihoods(0)
			for j := range ss {
				if math.Abs(ss[j]-sg[j]) > 1e-12*(1+math.Abs(sg[j])) {
					t.Fatalf("site %d: specialized %.15f vs generic %.15f", j, ss[j], sg[j])
				}
			}
			// Branch derivatives through the sumtable, with the tip on the q
			// side (root is Tips[0].Back, so q = Tips[0]).
			d1s, d2s := tipCaseDerivs(spec, spec.Tree.Tips[0].Back)
			d1g, d2g := tipCaseDerivs(gen, gen.Tree.Tips[0].Back)
			if math.Abs(d1s-d1g) > 1e-12*(1+math.Abs(d1g)) || math.Abs(d2s-d2g) > 1e-12*(1+math.Abs(d2g)) {
				t.Errorf("q-tip derivatives: specialized (%.12g, %.12g) vs generic (%.12g, %.12g)", d1s, d2s, d1g, d2g)
			}
			// And with the tip on the p side of the same branch.
			d1s, d2s = tipCaseDerivs(spec, spec.Tree.Tips[0])
			d1g, d2g = tipCaseDerivs(gen, gen.Tree.Tips[0])
			if math.Abs(d1s-d1g) > 1e-12*(1+math.Abs(d1g)) || math.Abs(d2s-d2g) > 1e-12*(1+math.Abs(d2g)) {
				t.Errorf("p-tip derivatives: specialized (%.12g, %.12g) vs generic (%.12g, %.12g)", d1s, d2s, d1g, d2g)
			}
		})
	}
}

// tipCaseDerivs prepares the sumtable at p and evaluates the branch
// derivatives at the branch's current length.
func tipCaseDerivs(e *Engine, p *tree.Node) (float64, float64) {
	root := p
	if root.IsTip() {
		root = root.Back
	}
	e.TraverseRoot(root, false, nil)
	e.PrepareSumtable(p, nil)
	z := []float64{p.Z[0]}
	d1 := make([]float64, 1)
	d2 := make([]float64, 1)
	e.BranchDerivatives(z, nil, d1, d2)
	return d1[0], d2[0]
}

// TestTipCaseOrderings pins both tip orderings of a newview step: the same
// physical update issued as (Q=tip, R=inner) and as (Q=inner, R=tip) must
// produce CLVs that agree with the generic kernel to ≤1e-12 in both
// orientations, for DNA (unrolled tip/inner) and AA (generic-width
// tip/inner).
func TestTipCaseOrderings(t *testing.T) {
	for _, tc := range []struct {
		name  string
		dtype alignment.DataType
		taxa  int
		sites int
	}{
		{"DNA", alignment.DNA, 8, 200},
		{"AA", alignment.AA, 6, 250},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := randomAlignment(t, tc.taxa, tc.sites, tc.dtype, 321)
			spec, gen, _ := specAndGenericEngines(t, a, tc.dtype, 4, 0.9, 17)
			// Valid CLVs everywhere first.
			spec.LogLikelihood()
			gen.LogLikelihood()
			// Find a traversal step with exactly one tip child; the two
			// engines share tree topology (same seed), so the step index is
			// common.
			steps := tree.ComputeTraversal(spec.Tree.Tips[0].Back, false)
			idx := -1
			for i, st := range steps {
				if st.Q.IsTip() != st.R.IsTip() {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Fatal("no mixed tip/inner step in traversal; fixture misconfigured")
			}
			stepOf := func(e *Engine, swap bool) []tree.TraversalStep {
				st := tree.ComputeTraversal(e.Tree.Tips[0].Back, false)[idx]
				if swap {
					st.Q, st.R = st.R, st.Q
				}
				return []tree.TraversalStep{st}
			}
			for _, swap := range []bool{false, true} {
				spec.ExecuteSteps(stepOf(spec, swap), nil)
				gen.ExecuteSteps(stepOf(gen, swap), nil)
				p := stepOf(spec, swap)[0].P
				clvSpec, clvGen := spec.clv(p.Index), gen.clv(stepOf(gen, swap)[0].P.Index)
				for k := range clvSpec {
					if math.Abs(clvSpec[k]-clvGen[k]) > 1e-12*(1+math.Abs(clvGen[k])) {
						t.Fatalf("swap=%v entry %d: specialized %.15g vs generic %.15g", swap, k, clvSpec[k], clvGen[k])
					}
				}
			}
		})
	}
}

// TestTipCaseScalingEquivalence forces the numerical scaling path (needScale)
// on a deep, long-branch tree while the tip tables are engaged; specialized
// and generic results must still agree, and scaling must actually fire.
func TestTipCaseScalingEquivalence(t *testing.T) {
	n := 220
	a := randomAlignment(t, n, 60, alignment.DNA, 2025)
	spec, gen, _ := specAndGenericEngines(t, a, alignment.DNA, 2, 5.0, 9)
	// Long branches on both trees to push CLVs below 2^-256.
	for _, e := range []*Engine{spec, gen} {
		for _, b := range e.Tree.Branches() {
			tree.SetBranchLength(b, 0, 1.4)
		}
		e.InvalidateCLVs()
	}
	ls, lg := spec.LogLikelihood(), gen.LogLikelihood()
	if err := CheckFinite(ls); err != nil {
		t.Fatal(err)
	}
	if math.Abs(ls-lg) > 1e-12*math.Abs(lg) {
		t.Errorf("scaled lnL: specialized %.15f vs generic %.15f", ls, lg)
	}
	fired := false
	for _, sc := range spec.scales {
		for _, v := range sc {
			if v > 0 {
				fired = true
			}
		}
	}
	if !fired {
		t.Fatal("scaling never triggered on the specialized path; fixture misconfigured")
	}
}

// TestTipTableBitIdentity checks the table builder directly: every row must
// reproduce the generic per-pattern accumulation bit for bit, which is what
// makes specialized and generic kernels interchangeable mid-analysis.
func TestTipTableBitIdentity(t *testing.T) {
	for _, dtype := range []alignment.DataType{alignment.DNA, alignment.AA} {
		s := dtype.States()
		cats := 4
		m := tipCaseModels(t, dtype, cats, 0.7)
		pm := make([]float64, cats*s*s)
		m.PMatrices(0.13, pm)
		tab := buildTipTable(make([]float64, alignment.NumCodes(dtype)*cats*s), dtype, pm, s, cats)
		for code := 0; code < alignment.NumCodes(dtype); code++ {
			tv := alignment.TipVector(dtype, byte(code))
			for c := 0; c < cats; c++ {
				for a := 0; a < s; a++ {
					want := 0.0
					for b := 0; b < s; b++ {
						want += pm[c*s*s+a*s+b] * tv[b]
					}
					if got := tab[(code*cats+c)*s+a]; got != want {
						t.Fatalf("%v code %d cat %d state %d: table %v != generic %v", dtype, code, c, a, got, want)
					}
				}
			}
		}
	}
}

// TestTipAwareOpCosts pins the satellite bugfix: tip-specialized cases must
// be priced below inner cases, the traversal average must sit between them,
// and the Shared span costs must use the tip-aware average (so the weighted
// scheduler and the virtual platform model no longer overprice tip-adjacent
// patterns).
func TestTipAwareOpCosts(t *testing.T) {
	for _, s := range []int{4, 20} {
		inner := opsNewviewCase(s, 4, false, false)
		oneTip := opsNewviewCase(s, 4, true, false)
		bothTip := opsNewviewCase(s, 4, true, true)
		if !(bothTip < oneTip && oneTip < inner) {
			t.Errorf("s=%d: want bothTip %v < oneTip %v < inner %v", s, bothTip, oneTip, inner)
		}
		if opsNewviewCase(s, 4, false, true) != oneTip {
			t.Errorf("s=%d: tip-case cost must be symmetric in the children", s)
		}
		avg := opsNewviewAvg(s, 4, 0.5)
		if !(bothTip < avg && avg < inner) {
			t.Errorf("s=%d: average %v must sit between bothTip %v and inner %v", s, avg, bothTip, inner)
		}
		if opsEvaluateCase(s, 4, true) >= opsEvaluateCase(s, 4, false) {
			t.Errorf("s=%d: specialized evaluate must be cheaper", s)
		}
		if opsSumtableCase(s, 4, true, true) >= opsSumtable(s, 4) {
			t.Errorf("s=%d: specialized sumtable must be cheaper", s)
		}
	}
	if f := tipChildFrac(4); f != 0.75 {
		t.Errorf("tipChildFrac(4) = %v, want 0.75 (3 tips of 4 child slots)", f)
	}
	if f := tipChildFrac(100); math.Abs(f-99.0/196.0) > 1e-15 {
		t.Errorf("tipChildFrac(100) = %v, want 99/196", f)
	}

	a := randomAlignment(t, 6, 40, alignment.DNA, 12)
	d, err := alignment.Compress(a, alignment.SinglePartition(a, alignment.DNA, ""), alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShared(d, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := opsNewviewAvg(4, 4, tipChildFrac(6))
	if got := sh.spans[0].Cost; got != want {
		t.Errorf("span cost %v, want tip-aware average %v", got, want)
	}
	if got := opsNewview(4, 4); got <= want {
		t.Errorf("generic newview cost %v must exceed the tip-aware span cost %v", got, want)
	}
}
