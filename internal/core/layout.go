package core

import "phylo/internal/alignment"

// CLV memory layouts. The conditional likelihood vector of one inner node
// holds, per partition, patternCount × cats × states float64 entries; how
// those (pattern, cat, state) triples map onto the flat buffer is a backend
// property, described by a CLVLayout instead of the hard-coded base+j*cs
// arithmetic the kernels used before the KernelBackend seam:
//
//   - LayoutPatternMajor (the seed layout, used by the generic backend):
//     pattern j's cats×s block is contiguous,
//     idx = base + j·(cats·s) + c·s + a.
//     Good when one pattern is processed across all categories at once.
//   - LayoutCatMajor (the fused backend's layout): each category is one
//     contiguous, cache-line-aligned plane of patternCount×s entries,
//     idx = base + c·planeStride + j·s + a.
//     Within a plane, consecutive patterns' state vectors are adjacent
//     s-length lanes, so a kernel that fixes the category can hoist the
//     whole cats-slice of the transition matrix into registers and sweep
//     patterns over three linear streams (two reads, one write) — the
//     straight-line fused-multiply-add shape the 4-state DNA kernels want.
//
// Both layouts keep the state axis innermost and contiguous, so a single
// (base, patStride, catStride) triple per partition describes either one:
// idx(ip, j, c, a) = Base(ip) + j·PatStride(ip) + c·CatStride(ip) + a.
// The sumtable keeps the pattern-major geometry under every backend (the
// derivative kernel reduces one pattern's cats·s entries at a time and never
// touches CLVs), so only its partition bases differ — they are cache-line
// aligned like everything else.

// LayoutKind selects how (pattern, cat, state) triples map into the flat
// per-node CLV buffers.
type LayoutKind int

const (
	// LayoutPatternMajor is the seed geometry: one contiguous cats×s block
	// per pattern.
	LayoutPatternMajor LayoutKind = iota
	// LayoutCatMajor is the fused backend's geometry: one contiguous,
	// aligned plane of patternCount×s states per category.
	LayoutCatMajor
)

// String names the layout kind.
func (k LayoutKind) String() string {
	switch k {
	case LayoutPatternMajor:
		return "pattern-major"
	case LayoutCatMajor:
		return "cat-major"
	default:
		return "layout(?)"
	}
}

// CLVLayout maps (partition, pattern, category, state) to offsets in the
// flat per-node CLV buffers and (partition, pattern) to offsets in the
// sumtable workspace. It is immutable and shared read-only by every session
// over one Shared.
type CLVLayout struct {
	kind      LayoutKind
	cats      int
	base      []int // per partition: offset of (pattern 0, cat 0, state 0)
	patStride []int // per partition: offset between consecutive patterns
	catStride []int // per partition: offset between consecutive categories
	states    []int // per partition: s
	counts    []int // per partition: patternCount
	total     int   // CLV floats per inner node, padding included
	sumBase   []int // per partition: sumtable offset (always pattern-major)
	sumTotal  int   // sumtable floats, padding included
}

// newCLVLayout builds the layout for one dataset under the given kind.
// Partition bases — CLV and sumtable — land on 64-byte boundaries relative
// to the (aligned) buffer start, and the cat-major plane stride is rounded
// up so every category plane is aligned too.
func newCLVLayout(parts []*alignment.CompressedPartition, numCats int, kind LayoutKind) *CLVLayout {
	l := &CLVLayout{
		kind:      kind,
		cats:      numCats,
		base:      make([]int, len(parts)),
		patStride: make([]int, len(parts)),
		catStride: make([]int, len(parts)),
		states:    make([]int, len(parts)),
		counts:    make([]int, len(parts)),
		sumBase:   make([]int, len(parts)),
	}
	off, soff := 0, 0
	for i, p := range parts {
		s := p.Type.States()
		n := p.PatternCount
		l.states[i] = s
		l.counts[i] = n
		l.base[i] = off
		l.sumBase[i] = soff
		switch kind {
		case LayoutCatMajor:
			plane := alignFloats(n * s)
			l.patStride[i] = s
			l.catStride[i] = plane
			off += numCats * plane
		default:
			l.patStride[i] = numCats * s
			l.catStride[i] = s
			off += alignFloats(n * numCats * s)
		}
		soff += alignFloats(n * numCats * s)
	}
	l.total = off
	l.sumTotal = soff
	return l
}

// Kind returns the layout's geometry.
func (l *CLVLayout) Kind() LayoutKind { return l.kind }

// Total returns the CLV buffer length per inner node, padding included.
func (l *CLVLayout) Total() int { return l.total }

// SumTotal returns the sumtable workspace length, padding included.
func (l *CLVLayout) SumTotal() int { return l.sumTotal }

// Base returns partition ip's CLV base offset.
func (l *CLVLayout) Base(ip int) int { return l.base[ip] }

// PatStride returns the offset between consecutive patterns of partition ip.
func (l *CLVLayout) PatStride(ip int) int { return l.patStride[ip] }

// CatStride returns the offset between consecutive categories of partition
// ip.
func (l *CLVLayout) CatStride(ip int) int { return l.catStride[ip] }

// Index returns the offset of (partition ip, local pattern j, category c,
// state 0); state a lives at Index(ip, j, c) + a.
func (l *CLVLayout) Index(ip, j, c int) int {
	return l.base[ip] + j*l.patStride[ip] + c*l.catStride[ip]
}

// SumIndex returns the sumtable offset of (partition ip, local pattern j,
// category 0, state 0); the sumtable is pattern-major under every backend,
// so the pattern's cats·s block is contiguous from there.
func (l *CLVLayout) SumIndex(ip, j int) int {
	return l.sumBase[ip] + j*l.cats*l.states[ip]
}

// ConvertCLV copies one node's CLV contents of partition ip from a buffer in
// layout `from` into a buffer in layout `to`, entry by entry. It exists for
// the layout round-trip property tests — the engine never converts layouts
// at runtime (a Shared fixes its layout at construction).
func ConvertCLV(dst []float64, to *CLVLayout, src []float64, from *CLVLayout, ip int) {
	s := from.states[ip]
	for j := 0; j < from.counts[ip]; j++ {
		for c := 0; c < from.cats; c++ {
			fo := from.Index(ip, j, c)
			po := to.Index(ip, j, c)
			copy(dst[po:po+s], src[fo:fo+s])
		}
	}
}
