package core

import (
	"time"

	"phylo/internal/alignment"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/tree"
)

// Traverse establishes a valid CLV at record p (oriented towards p.Back) by
// executing the necessary newview steps in a single parallel region — the
// whole traversal descriptor is fanned out once and ends in one barrier,
// exactly as in RAxML's Pthreads design. With partial true, only stale CLVs
// are recomputed (the paper's partial traversals after local changes).
// active masks the partitions to update (nil = all); masked partitions keep
// their previous CLV contents.
func (e *Engine) Traverse(p *tree.Node, partial bool, active []bool) {
	e.ExecuteSteps(tree.ComputeTraversal(p, partial), active)
}

// TraverseRoot validates the CLVs at both ends of the branch (p, p.Back).
func (e *Engine) TraverseRoot(p *tree.Node, partial bool, active []bool) {
	e.ExecuteSteps(tree.RootTraversal(p, partial), active)
}

// ExecuteSteps executes a traversal descriptor. Every worker walks the full
// step list and, per step and active partition, computes the two child
// transition matrices redundantly before processing its scheduled share of
// the patterns; this mirrors RAxML, where each Pthread computes P locally
// rather than paying an extra synchronization to share it. The tree-search
// package issues hand-built single-step descriptors through this entry point
// during SPR insertion trials.
func (e *Engine) ExecuteSteps(steps []tree.TraversalStep, active []bool) {
	if len(steps) == 0 {
		return
	}
	// Hand-built steps may bypass ComputeTraversal; keep the X orientation
	// flags in sync with what is about to be computed (idempotent for steps
	// that came from ComputeTraversal).
	for _, st := range steps {
		tree.OrientX(st.P)
	}
	act := e.activeOrAll(active)
	e.refreshSchedule() // region boundary: adopt a rebalanced schedule if published
	if e.stealRT != nil {
		e.executeStepsSteal(steps, act)
		return
	}
	e.Exec.Run(parallel.RegionNewview, func(w int, ctx *parallel.WorkerCtx) {
		pmQ := e.pmScratch[w][0]
		pmR := e.pmScratch[w][1]
		ops := 0.0
		for _, st := range steps {
			for ip := range e.Data.Parts {
				if !act[ip] {
					continue
				}
				var t0 time.Time
				if e.measure {
					t0 = time.Now() //plk:allow(timenow) measured-cost attribution; never feeds likelihood values
				}
				ops += e.newviewPartition(st, ip, w, pmQ, pmR, ctx)
				if e.measure {
					e.chargePartition(w, ip, t0)
				}
			}
		}
		ctx.Ops += ops
	})
}

// newviewPartition recomputes worker w's share of partition ip for one
// traversal step and returns the weighted op count. With Specialize on it
// dispatches on the children's kinds: tip children whose share amortizes a
// lookup table (see tiptables.go) become O(cats·s) table-row reads instead
// of O(cats·s²) P applications — the tip/tip case additionally touches no
// child CLVs and no child scaling vectors at all. All paths produce
// bit-identical CLVs; the generic path remains reachable via Specialize
// false (A/B ablation) and for shares too narrow to amortize a table.
// Observability counters (patterns processed, span case, scaling events)
// flush into ctx here — once per (step, partition), off the pattern loop.
func (e *Engine) newviewPartition(st tree.TraversalStep, ip, w int, pmQ, pmR []float64, ctx *parallel.WorkerCtx) float64 {
	runs := e.workRuns(w, ip)
	if len(runs) == 0 {
		return 0
	}
	var c nvSpanCtx
	e.prepareNewviewSpan(&c, st, ip, w, pmQ, pmR)
	c.ensureTables(runsPatternCount(runs))
	count := 0
	for _, run := range runs {
		count += c.process(run)
	}
	c.noteSpan(ctx)
	ctx.Patterns += float64(count)
	ctx.Scalings += c.scaled
	return c.takeOps(count)
}

// nvSpanCtx is the per-(step, partition, worker) newview setup — transition
// matrices, child CLV/tip bindings, layout strides, and the optional tip
// lookup tables — factored out of the pattern loop so that both execution
// models share one kernel body: the precomputed-assignment path prepares once
// per worker and span and processes the worker's whole share, while the
// work-stealing path prepares once per (worker, span) encounter and processes
// one chunk at a time (re-using the setup across consecutive chunks of the
// same span). The pattern loops themselves run in the backend implementation
// bound at kern (see KernelBackend).
type nvSpanCtx struct {
	e          *Engine
	ip, w      int
	s, cats    int
	cs         int
	base       int
	patStride  int // layout: offset between consecutive patterns
	catStride  int // layout: offset between consecutive categories
	partOffset int
	dtype      alignment.DataType
	dst        []float64
	dstScale   []int32
	qTip, rTip bool
	qv, rv     []float64
	qs, rs     []int32
	qRow, rRow []byte
	pmQ, pmR   []float64
	tabQ, tabR []float64
	kern       KernelBackend
	fixed      float64 // setup ops not yet claimed by takeOps
	scaled     float64 // scaling events since prepare (flushed to WorkerCtx)
}

// noteSpan tallies this span's child case into the worker's observability
// scratch — called once per span encounter, never per pattern.
func (c *nvSpanCtx) noteSpan(ctx *parallel.WorkerCtx) {
	switch {
	case c.qTip && c.rTip:
		ctx.SpanTipTip++
	case c.qTip || c.rTip:
		ctx.SpanTipInner++
	default:
		ctx.SpanInner++
	}
}

// prepareNewviewSpan binds c to (step, partition, worker): it computes both
// child transition-matrix blocks into the worker's scratch and resolves the
// child CLV/tip-row/scaling views. The fixed op charge for the redundant
// per-worker P-matrix setup accumulates in c.fixed.
func (e *Engine) prepareNewviewSpan(c *nvSpanCtx, st tree.TraversalStep, ip, w int, pmQ, pmR []float64) {
	part := e.Data.Parts[ip]
	s := part.Type.States()
	cats := e.numCats
	m := e.Models[ip]
	slot := e.slotOf(ip)
	m.PMatrices(st.Q.Z[slot], pmQ[:cats*s*s])
	m.PMatrices(st.R.Z[slot], pmR[:cats*s*s])
	*c = nvSpanCtx{
		e: e, ip: ip, w: w, s: s, cats: cats, cs: cats * s,
		base: e.layout.Base(ip), patStride: e.layout.PatStride(ip), catStride: e.layout.CatStride(ip),
		partOffset: part.Offset, dtype: part.Type,
		dst: e.clv(st.P.Index), dstScale: e.scale(st.P.Index),
		qTip: st.Q.IsTip(), rTip: st.R.IsTip(),
		pmQ: pmQ, pmR: pmR,
		kern:  e.kernels[ip],
		fixed: float64(2 * cats * s * s * s), // redundant per-worker P-matrix setup
	}
	if c.qTip {
		c.qRow = part.Tips[st.Q.Index]
	} else {
		c.qv = e.clv(st.Q.Index)
		c.qs = e.scale(st.Q.Index)
	}
	if c.rTip {
		c.rRow = part.Tips[st.R.Index]
	} else {
		c.rv = e.clv(st.R.Index)
		c.rs = e.scale(st.R.Index)
	}
}

// ensureTables builds the tip lookup tables when the pending work unit
// (patterns) amortizes them and they are not already built. The decision is a
// pure function of the unit size, so chunked execution stays deterministic;
// and because table and generic paths are bit-identical, mixing them across
// chunks of one span can never change results, only the op accounting.
func (c *nvSpanCtx) ensureTables(patterns int) {
	e := c.e
	if !e.Specialize || !(c.qTip || c.rTip) || patterns < tipTableMinPatterns(c.dtype) {
		return
	}
	codes := alignment.NumCodes(c.dtype)
	if c.qTip && c.tabQ == nil {
		c.tabQ = buildTipTable(e.tipScratch[c.w][0], c.dtype, c.pmQ, c.s, c.cats)
		c.fixed += opsTipTable(c.s, c.cats, codes)
	}
	if c.rTip && c.tabR == nil {
		c.tabR = buildTipTable(e.tipScratch[c.w][1], c.dtype, c.pmR, c.s, c.cats)
		c.fixed += opsTipTable(c.s, c.cats, codes)
	}
}

// takeOps prices count processed patterns by the kernel case that ran and
// claims any outstanding setup charge.
func (c *nvSpanCtx) takeOps(count int) float64 {
	ops := float64(count)*opsNewviewCase(c.s, c.cats, c.tabQ != nil, c.tabR != nil) + c.fixed
	c.fixed = 0
	return ops
}

// process executes the newview kernel over one pattern run and returns the
// pattern count, dispatching through the partition's backend. The per-pattern
// arithmetic is identical whichever worker runs it and however the run was
// sliced, which is what makes chunked (stolen) and precomputed execution
// bit-identical.
func (c *nvSpanCtx) process(run schedule.Run) int {
	return c.kern.Newview(c, run)
}

// processGeneric is the layout-aware generic newview body: per pattern,
// dst[off + cat·catStride + a] =
// (sum_b Pq_c[a][b] xq_c[b]) · (sum_b Pr_c[a][b] xr_c[b]), with a tip child's
// P application replaced by a table-row read when a lookup table is built.
// Tip children without tables supply a single category-independent 0/1
// vector. Under the pattern-major layout this executes the seed kernel's
// exact operation sequence; under the cat-major layout only the addresses
// change, so the two layouts (and the fused kernels, which preserve the same
// left-associated accumulation order) produce bit-identical CLVs.
//
//plk:hotpath
func (c *nvSpanCtx) processGeneric(run schedule.Run) int {
	s, cs, cats := c.s, c.cs, c.cats
	ss := s * s
	count := 0
	for i := run.Lo; i < run.Hi; i += run.Step {
		j := i - c.partOffset
		off := c.base + j*c.patStride
		switch {
		case c.tabQ != nil && c.tabR != nil:
			// Both children specialized tips: the table rows already hold the
			// P applications; the pattern reduces to their entrywise product.
			tq := c.tabQ[int(c.qRow[j])*cs : int(c.qRow[j])*cs+cs]
			tr := c.tabR[int(c.rRow[j])*cs : int(c.rRow[j])*cs+cs]
			for cat := 0; cat < cats; cat++ {
				co := off + cat*c.catStride
				d := c.dst[co : co+s]
				t1 := tq[cat*s : cat*s+s]
				t2 := tr[cat*s : cat*s+s]
				for a := 0; a < s; a++ {
					d[a] = t1[a] * t2[a]
				}
			}
		case c.tabQ != nil, c.tabR != nil:
			// Exactly one specialized tip child (a tip the table decision
			// skipped never coexists with a built sibling table — ensureTables
			// builds both or neither); the inner child pays the P application.
			tab, row, xv, pm := c.tabQ, c.qRow, c.rv, c.pmR
			if c.tabR != nil {
				tab, row, xv, pm = c.tabR, c.rRow, c.qv, c.pmQ
			}
			tq := tab[int(row[j])*cs : int(row[j])*cs+cs]
			for cat := 0; cat < cats; cat++ {
				p := pm[cat*ss : (cat+1)*ss]
				co := off + cat*c.catStride
				cr := xv[co : co+s]
				t := tq[cat*s : cat*s+s]
				d := c.dst[co : co+s]
				for a := 0; a < s; a++ {
					r := a * s
					sr := 0.0
					for b := 0; b < s; b++ {
						sr += p[r+b] * cr[b]
					}
					d[a] = t[a] * sr
				}
			}
		default:
			var tvq, tvr []float64
			if c.qTip {
				tvq = alignment.TipVector(c.dtype, c.qRow[j])
			}
			if c.rTip {
				tvr = alignment.TipVector(c.dtype, c.rRow[j])
			}
			for cat := 0; cat < cats; cat++ {
				pq := c.pmQ[cat*ss : (cat+1)*ss]
				pr := c.pmR[cat*ss : (cat+1)*ss]
				co := off + cat*c.catStride
				cq := tvq
				if !c.qTip {
					cq = c.qv[co : co+s]
				}
				cr := tvr
				if !c.rTip {
					cr = c.rv[co : co+s]
				}
				d := c.dst[co : co+s]
				for a := 0; a < s; a++ {
					r := a * s
					sq, sr := 0.0, 0.0
					for b := 0; b < s; b++ {
						sq += pq[r+b] * cq[b]
						sr += pr[r+b] * cr[b]
					}
					d[a] = sq * sr
				}
			}
		}
		c.finishPattern(i, off)
		count++
	}
	return count
}

// finishPattern applies the numerical scaling step to one freshly computed
// pattern: propagate the children's scaling exponents and, when every entry
// of the pattern's CLV drops below the threshold, multiply the whole pattern
// by 2^256 and increment the exponent. The predicate scans entries in (cat
// asc, state asc) order under either layout; it is order-independent anyway
// (all entries must be small), and the multiplication touches every entry, so
// scaling is layout- and backend-invariant.
//
//plk:hotpath
func (c *nvSpanCtx) finishPattern(i, off int) {
	sc := int32(0)
	if !c.qTip {
		sc += c.qs[i]
	}
	if !c.rTip {
		sc += c.rs[i]
	}
	needScale := true
outer:
	for cat := 0; cat < c.cats; cat++ {
		co := off + cat*c.catStride
		d := c.dst[co : co+c.s]
		for _, v := range d {
			if v >= minLikelihood || v <= -minLikelihood {
				needScale = false
				break outer
			}
		}
	}
	if needScale {
		for cat := 0; cat < c.cats; cat++ {
			co := off + cat*c.catStride
			d := c.dst[co : co+c.s]
			for k := range d {
				d[k] *= twoTo256
			}
		}
		sc++
		c.scaled++
	}
	c.dstScale[i] = sc
}
