package core

import (
	"time"

	"phylo/internal/alignment"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/tree"
)

// Traverse establishes a valid CLV at record p (oriented towards p.Back) by
// executing the necessary newview steps in a single parallel region — the
// whole traversal descriptor is fanned out once and ends in one barrier,
// exactly as in RAxML's Pthreads design. With partial true, only stale CLVs
// are recomputed (the paper's partial traversals after local changes).
// active masks the partitions to update (nil = all); masked partitions keep
// their previous CLV contents.
func (e *Engine) Traverse(p *tree.Node, partial bool, active []bool) {
	e.ExecuteSteps(tree.ComputeTraversal(p, partial), active)
}

// TraverseRoot validates the CLVs at both ends of the branch (p, p.Back).
func (e *Engine) TraverseRoot(p *tree.Node, partial bool, active []bool) {
	e.ExecuteSteps(tree.RootTraversal(p, partial), active)
}

// ExecuteSteps executes a traversal descriptor. Every worker walks the full
// step list and, per step and active partition, computes the two child
// transition matrices redundantly before processing its scheduled share of
// the patterns; this mirrors RAxML, where each Pthread computes P locally
// rather than paying an extra synchronization to share it. The tree-search
// package issues hand-built single-step descriptors through this entry point
// during SPR insertion trials.
func (e *Engine) ExecuteSteps(steps []tree.TraversalStep, active []bool) {
	if len(steps) == 0 {
		return
	}
	// Hand-built steps may bypass ComputeTraversal; keep the X orientation
	// flags in sync with what is about to be computed (idempotent for steps
	// that came from ComputeTraversal).
	for _, st := range steps {
		tree.OrientX(st.P)
	}
	act := e.activeOrAll(active)
	e.refreshSchedule() // region boundary: adopt a rebalanced schedule if published
	if e.stealRT != nil {
		e.executeStepsSteal(steps, act)
		return
	}
	e.Exec.Run(parallel.RegionNewview, func(w int, ctx *parallel.WorkerCtx) {
		pmQ := e.pmScratch[w][0]
		pmR := e.pmScratch[w][1]
		ops := 0.0
		for _, st := range steps {
			for ip := range e.Data.Parts {
				if !act[ip] {
					continue
				}
				var t0 time.Time
				if e.measure {
					t0 = time.Now()
				}
				ops += e.newviewPartition(st, ip, w, pmQ, pmR)
				if e.measure {
					e.chargePartition(w, ip, t0)
				}
			}
		}
		ctx.Ops += ops
	})
}

// newviewPartition recomputes worker w's share of partition ip for one
// traversal step and returns the weighted op count. With Specialize on it
// dispatches on the children's kinds: tip children whose share amortizes a
// lookup table (see tiptables.go) become O(cats·s) table-row reads instead
// of O(cats·s²) P applications — the tip/tip case additionally touches no
// child CLVs and no child scaling vectors at all. All paths produce
// bit-identical CLVs; the generic path remains reachable via Specialize
// false (A/B ablation) and for shares too narrow to amortize a table.
func (e *Engine) newviewPartition(st tree.TraversalStep, ip, w int, pmQ, pmR []float64) float64 {
	runs := e.workRuns(w, ip)
	if len(runs) == 0 {
		return 0
	}
	var c nvSpanCtx
	e.prepareNewviewSpan(&c, st, ip, w, pmQ, pmR)
	c.ensureTables(runsPatternCount(runs))
	count := 0
	for _, run := range runs {
		count += c.process(run)
	}
	return c.takeOps(count)
}

// nvSpanCtx is the per-(step, partition, worker) newview setup — transition
// matrices, child CLV/tip bindings, and the optional tip lookup tables —
// factored out of the pattern loop so that both execution models share one
// kernel body: the precomputed-assignment path prepares once per worker and
// span and processes the worker's whole share, while the work-stealing path
// prepares once per (worker, span) encounter and processes one chunk at a
// time (re-using the setup across consecutive chunks of the same span).
type nvSpanCtx struct {
	e          *Engine
	ip, w      int
	s, cats    int
	cs         int
	base       int
	partOffset int
	dtype      alignment.DataType
	dst        []float64
	dstScale   []int32
	qTip, rTip bool
	qv, rv     []float64
	qs, rs     []int32
	qRow, rRow []byte
	pmQ, pmR   []float64
	tabQ, tabR []float64
	fast4      bool
	fixed      float64 // setup ops not yet claimed by takeOps
}

// prepareNewviewSpan binds c to (step, partition, worker): it computes both
// child transition-matrix blocks into the worker's scratch and resolves the
// child CLV/tip-row/scaling views. The fixed op charge for the redundant
// per-worker P-matrix setup accumulates in c.fixed.
func (e *Engine) prepareNewviewSpan(c *nvSpanCtx, st tree.TraversalStep, ip, w int, pmQ, pmR []float64) {
	part := e.Data.Parts[ip]
	s := part.Type.States()
	cats := e.numCats
	m := e.Models[ip]
	slot := e.slotOf(ip)
	m.PMatrices(st.Q.Z[slot], pmQ[:cats*s*s])
	m.PMatrices(st.R.Z[slot], pmR[:cats*s*s])
	*c = nvSpanCtx{
		e: e, ip: ip, w: w, s: s, cats: cats, cs: cats * s,
		base: e.clvBase[ip], partOffset: part.Offset, dtype: part.Type,
		dst: e.clv(st.P.Index), dstScale: e.scale(st.P.Index),
		qTip: st.Q.IsTip(), rTip: st.R.IsTip(),
		pmQ: pmQ, pmR: pmR,
		fast4: e.Specialize && s == 4,
		fixed: float64(2 * cats * s * s * s), // redundant per-worker P-matrix setup
	}
	if c.qTip {
		c.qRow = part.Tips[st.Q.Index]
	} else {
		c.qv = e.clv(st.Q.Index)
		c.qs = e.scale(st.Q.Index)
	}
	if c.rTip {
		c.rRow = part.Tips[st.R.Index]
	} else {
		c.rv = e.clv(st.R.Index)
		c.rs = e.scale(st.R.Index)
	}
}

// ensureTables builds the tip lookup tables when the pending work unit
// (patterns) amortizes them and they are not already built. The decision is a
// pure function of the unit size, so chunked execution stays deterministic;
// and because table and generic paths are bit-identical, mixing them across
// chunks of one span can never change results, only the op accounting.
func (c *nvSpanCtx) ensureTables(patterns int) {
	e := c.e
	if !e.Specialize || !(c.qTip || c.rTip) || patterns < tipTableMinPatterns(c.dtype) {
		return
	}
	codes := alignment.NumCodes(c.dtype)
	if c.qTip && c.tabQ == nil {
		c.tabQ = buildTipTable(e.tipScratch[c.w][0], c.dtype, c.pmQ, c.s, c.cats)
		c.fixed += opsTipTable(c.s, c.cats, codes)
	}
	if c.rTip && c.tabR == nil {
		c.tabR = buildTipTable(e.tipScratch[c.w][1], c.dtype, c.pmR, c.s, c.cats)
		c.fixed += opsTipTable(c.s, c.cats, codes)
	}
}

// takeOps prices count processed patterns by the kernel case that ran and
// claims any outstanding setup charge.
func (c *nvSpanCtx) takeOps(count int) float64 {
	ops := float64(count)*opsNewviewCase(c.s, c.cats, c.tabQ != nil, c.tabR != nil) + c.fixed
	c.fixed = 0
	return ops
}

// process executes the newview kernel over one pattern run and returns the
// pattern count. The per-pattern body is identical whichever worker runs it
// and however the run was sliced, which is what makes chunked (stolen) and
// precomputed execution bit-identical.
func (c *nvSpanCtx) process(run schedule.Run) int {
	cs := c.cs
	cats := c.cats
	count := 0
	for i := run.Lo; i < run.Hi; i += run.Step {
		j := i - c.partOffset
		off := c.base + j*cs
		d := c.dst[off : off+cs]
		switch {
		case c.tabQ != nil && c.tabR != nil:
			newviewPatternTipTip(d, c.tabQ[int(c.qRow[j])*cs:int(c.qRow[j])*cs+cs], c.tabR[int(c.rRow[j])*cs:int(c.rRow[j])*cs+cs])
		case c.tabQ != nil:
			tq := c.tabQ[int(c.qRow[j])*cs : int(c.qRow[j])*cs+cs]
			if c.fast4 {
				newviewPatternTipInner4(d, tq, c.rv[off:off+cs], c.pmR, cats)
			} else {
				newviewPatternTipInner(d, tq, c.rv[off:off+cs], c.pmR, cats, c.s)
			}
		case c.tabR != nil:
			tr := c.tabR[int(c.rRow[j])*cs : int(c.rRow[j])*cs+cs]
			if c.fast4 {
				newviewPatternTipInner4(d, tr, c.qv[off:off+cs], c.pmQ, cats)
			} else {
				newviewPatternTipInner(d, tr, c.qv[off:off+cs], c.pmQ, cats, c.s)
			}
		default:
			var xq, xr []float64
			if c.qTip {
				xq = alignment.TipVector(c.dtype, c.qRow[j])
			} else {
				xq = c.qv[off : off+cs]
			}
			if c.rTip {
				xr = alignment.TipVector(c.dtype, c.rRow[j])
			} else {
				xr = c.rv[off : off+cs]
			}
			if c.fast4 {
				newviewPattern4(d, xq, xr, c.qTip, c.rTip, c.pmQ, c.pmR, cats)
			} else {
				newviewPatternGeneric(d, xq, xr, c.qTip, c.rTip, c.pmQ, c.pmR, cats, c.s)
			}
		}
		// Numerical scaling: when every entry of the pattern's CLV drops
		// below the threshold, multiply the whole pattern by 2^256 and
		// remember the exponent.
		sc := int32(0)
		if !c.qTip {
			sc += c.qs[i]
		}
		if !c.rTip {
			sc += c.rs[i]
		}
		needScale := true
		for k := 0; k < cs; k++ {
			if d[k] >= minLikelihood || d[k] <= -minLikelihood {
				needScale = false
				break
			}
		}
		if needScale {
			for k := 0; k < cs; k++ {
				d[k] *= twoTo256
			}
			sc++
		}
		c.dstScale[i] = sc
		count++
	}
	return count
}

// newviewPatternGeneric computes one pattern's CLV for an arbitrary state
// count: dst[c*s+a] = (sum_b Pq_c[a][b] xq_c[b]) * (sum_b Pr_c[a][b] xr_c[b]).
// Tip children supply a single category-independent 0/1 vector.
func newviewPatternGeneric(dst, xq, xr []float64, qTip, rTip bool, pmQ, pmR []float64, cats, s int) {
	ss := s * s
	for c := 0; c < cats; c++ {
		pq := pmQ[c*ss : (c+1)*ss]
		pr := pmR[c*ss : (c+1)*ss]
		cq := xq
		if !qTip {
			cq = xq[c*s : (c+1)*s]
		}
		cr := xr
		if !rTip {
			cr = xr[c*s : (c+1)*s]
		}
		d := dst[c*s : (c+1)*s]
		for a := 0; a < s; a++ {
			row := a * s
			sq, sr := 0.0, 0.0
			for b := 0; b < s; b++ {
				sq += pq[row+b] * cq[b]
				sr += pr[row+b] * cr[b]
			}
			d[a] = sq * sr
		}
	}
}

// newviewPatternTipTip computes one pattern's CLV when both children are
// specialized tips: the two table rows already hold the P applications, so
// the pattern reduces to their entrywise product over all cats×s entries.
func newviewPatternTipTip(dst, tq, tr []float64) {
	_ = dst[len(tq)-1]
	for k := range tq {
		dst[k] = tq[k] * tr[k]
	}
}

// newviewPatternTipInner computes one pattern's CLV when exactly one child
// is a specialized tip (table row tq) and the other an inner CLV xr behind
// transition matrices pm.
func newviewPatternTipInner(dst, tq, xr, pm []float64, cats, s int) {
	ss := s * s
	for c := 0; c < cats; c++ {
		p := pm[c*ss : (c+1)*ss]
		cr := xr[c*s : (c+1)*s]
		t := tq[c*s : (c+1)*s]
		d := dst[c*s : (c+1)*s]
		for a := 0; a < s; a++ {
			row := a * s
			sr := 0.0
			for b := 0; b < s; b++ {
				sr += p[row+b] * cr[b]
			}
			d[a] = t[a] * sr
		}
	}
}

// newviewPatternTipInner4 is the unrolled 4-state tip/inner kernel.
func newviewPatternTipInner4(dst, tq, xr, pm []float64, cats int) {
	for c := 0; c < cats; c++ {
		p := pm[c*16 : c*16+16]
		cr := xr[c*4 : c*4+4]
		r0, r1, r2, r3 := cr[0], cr[1], cr[2], cr[3]
		t := tq[c*4 : c*4+4]
		d := dst[c*4 : c*4+4]
		d[0] = t[0] * (p[0]*r0 + p[1]*r1 + p[2]*r2 + p[3]*r3)
		d[1] = t[1] * (p[4]*r0 + p[5]*r1 + p[6]*r2 + p[7]*r3)
		d[2] = t[2] * (p[8]*r0 + p[9]*r1 + p[10]*r2 + p[11]*r3)
		d[3] = t[3] * (p[12]*r0 + p[13]*r1 + p[14]*r2 + p[15]*r3)
	}
}

// newviewPattern4 is the unrolled 4-state (DNA) kernel.
func newviewPattern4(dst, xq, xr []float64, qTip, rTip bool, pmQ, pmR []float64, cats int) {
	for c := 0; c < cats; c++ {
		pq := pmQ[c*16 : c*16+16]
		pr := pmR[c*16 : c*16+16]
		cq := xq
		if !qTip {
			cq = xq[c*4 : c*4+4]
		}
		cr := xr
		if !rTip {
			cr = xr[c*4 : c*4+4]
		}
		q0, q1, q2, q3 := cq[0], cq[1], cq[2], cq[3]
		r0, r1, r2, r3 := cr[0], cr[1], cr[2], cr[3]
		d := dst[c*4 : c*4+4]
		d[0] = (pq[0]*q0 + pq[1]*q1 + pq[2]*q2 + pq[3]*q3) *
			(pr[0]*r0 + pr[1]*r1 + pr[2]*r2 + pr[3]*r3)
		d[1] = (pq[4]*q0 + pq[5]*q1 + pq[6]*q2 + pq[7]*q3) *
			(pr[4]*r0 + pr[5]*r1 + pr[6]*r2 + pr[7]*r3)
		d[2] = (pq[8]*q0 + pq[9]*q1 + pq[10]*q2 + pq[11]*q3) *
			(pr[8]*r0 + pr[9]*r1 + pr[10]*r2 + pr[11]*r3)
		d[3] = (pq[12]*q0 + pq[13]*q1 + pq[14]*q2 + pq[15]*q3) *
			(pr[12]*r0 + pr[13]*r1 + pr[14]*r2 + pr[15]*r3)
	}
}
