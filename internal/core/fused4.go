package core

import (
	"phylo/internal/alignment"
	"phylo/internal/schedule"
)

// The fused 4-state (DNA) kernel bodies of BackendFused. They run over the
// cat-major, state-contiguous CLV layout (see CLVLayout): each Gamma category
// is one contiguous, cache-line-aligned plane of patternCount×4 entries, so
// the kernels fix the category in an outer loop, hoist that category's 16
// transition-matrix entries out of the pattern loop, and sweep the patterns
// as straight-line fused multiply-adds over three linear streams (two reads,
// one write) — no per-pattern slicing, no inner b-loop, no bounds checks in
// the hot expressions. The cats×s² P application is fully unrolled for s=4.
//
// Bit-identity with the generic oracle: every unrolled expression preserves
// the generic loop's left-associated accumulation order (Go's + is
// left-associative, so p0·r0 + p1·r1 + p2·r2 + p3·r3 associates exactly like
// the b-ascending `sr += p[b]·r[b]` loop), and the cat-outer restructuring
// only reorders writes to distinct addresses, never any floating-point
// reduction. The scaling predicate ("every entry of the pattern below
// 2^-256") is a pure conjunction over all cats×4 entries, so the kernels
// evaluate it incrementally during the category sweeps — while the values
// are still in registers — into a per-pattern flag (engine.smallScratch);
// the closing pass then only propagates child exponents and rescales the
// (astronomically rare) flagged patterns, instead of re-reading every cold
// category plane the way a literal finishPattern sweep would.

// small4 reports whether all four values fall inside (-2^-256, 2^-256) —
// one pattern-category quartet's contribution to the scaling predicate.
//
//plk:hotpath
func small4(a, b, c, d float64) bool {
	return a < minLikelihood && a > -minLikelihood &&
		b < minLikelihood && b > -minLikelihood &&
		c < minLikelihood && c > -minLikelihood &&
		d < minLikelihood && d > -minLikelihood
}

// processFused4 executes one newview pattern run with the unrolled 4-state
// kernels, category plane by category plane, then applies the per-pattern
// scaling pass. A tip child without a lookup table (share below the table
// threshold, or Specialize off) falls back to the stride-aware generic body —
// the generic and fused bodies are bit-identical, so mixing them across
// chunks of one span can never change results.
//
//plk:hotpath
func (c *nvSpanCtx) processFused4(run schedule.Run) int {
	if (c.qTip && c.tabQ == nil) || (c.rTip && c.tabR == nil) {
		return c.processGeneric(run)
	}
	cats, cs := c.cats, c.cs
	small := c.e.smallScratch[c.w]
	switch {
	case c.tabQ != nil && c.tabR != nil:
		// Tip/tip: both table rows already hold the P applications; the
		// pattern reduces to their entrywise product.
		for cat := 0; cat < cats; cat++ {
			d := c.dst[c.base+cat*c.catStride:]
			to := cat * 4
			for i := run.Lo; i < run.Hi; i += run.Step {
				j := i - c.partOffset
				qo, ro := int(c.qRow[j])*cs+to, int(c.rRow[j])*cs+to
				tq := c.tabQ[qo : qo+4 : qo+4]
				tr := c.tabR[ro : ro+4 : ro+4]
				o := j * 4
				dd := d[o : o+4 : o+4]
				v0 := tq[0] * tr[0]
				v1 := tq[1] * tr[1]
				v2 := tq[2] * tr[2]
				v3 := tq[3] * tr[3]
				dd[0], dd[1], dd[2], dd[3] = v0, v1, v2, v3
				if cat == 0 || small[j] {
					small[j] = small4(v0, v1, v2, v3)
				}
			}
		}
	case c.tabQ != nil, c.tabR != nil:
		// Tip/inner: the tip side is a table-row read, the inner side one
		// unrolled P application over its contiguous plane. (A built table
		// implies the sibling is an inner node: ensureTables builds tables
		// for both tip children or neither.)
		tab, row, xv, pm := c.tabQ, c.qRow, c.rv, c.pmR
		if c.tabR != nil {
			tab, row, xv, pm = c.tabR, c.rRow, c.qv, c.pmQ
		}
		for cat := 0; cat < cats; cat++ {
			p := pm[cat*16 : cat*16+16]
			p0, p1, p2, p3 := p[0], p[1], p[2], p[3]
			p4, p5, p6, p7 := p[4], p[5], p[6], p[7]
			p8, p9, p10, p11 := p[8], p[9], p[10], p[11]
			p12, p13, p14, p15 := p[12], p[13], p[14], p[15]
			x := xv[c.base+cat*c.catStride:]
			d := c.dst[c.base+cat*c.catStride:]
			to := cat * 4
			for i := run.Lo; i < run.Hi; i += run.Step {
				j := i - c.partOffset
				o := j * 4
				xx := x[o : o+4 : o+4]
				dd := d[o : o+4 : o+4]
				r0, r1, r2, r3 := xx[0], xx[1], xx[2], xx[3]
				ti := int(row[j])*cs + to
				t := tab[ti : ti+4 : ti+4]
				v0 := t[0] * (p0*r0 + p1*r1 + p2*r2 + p3*r3)
				v1 := t[1] * (p4*r0 + p5*r1 + p6*r2 + p7*r3)
				v2 := t[2] * (p8*r0 + p9*r1 + p10*r2 + p11*r3)
				v3 := t[3] * (p12*r0 + p13*r1 + p14*r2 + p15*r3)
				dd[0], dd[1], dd[2], dd[3] = v0, v1, v2, v3
				if cat == 0 || small[j] {
					small[j] = small4(v0, v1, v2, v3)
				}
			}
		}
	default:
		// Inner/inner: two unrolled P applications over contiguous planes.
		for cat := 0; cat < cats; cat++ {
			pq := c.pmQ[cat*16 : cat*16+16]
			q0, q1, q2, q3 := pq[0], pq[1], pq[2], pq[3]
			q4, q5, q6, q7 := pq[4], pq[5], pq[6], pq[7]
			q8, q9, q10, q11 := pq[8], pq[9], pq[10], pq[11]
			q12, q13, q14, q15 := pq[12], pq[13], pq[14], pq[15]
			pr := c.pmR[cat*16 : cat*16+16]
			s0, s1, s2, s3 := pr[0], pr[1], pr[2], pr[3]
			s4, s5, s6, s7 := pr[4], pr[5], pr[6], pr[7]
			s8, s9, s10, s11 := pr[8], pr[9], pr[10], pr[11]
			s12, s13, s14, s15 := pr[12], pr[13], pr[14], pr[15]
			xq := c.qv[c.base+cat*c.catStride:]
			xr := c.rv[c.base+cat*c.catStride:]
			d := c.dst[c.base+cat*c.catStride:]
			for i := run.Lo; i < run.Hi; i += run.Step {
				j := i - c.partOffset
				o := j * 4
				xa := xq[o : o+4 : o+4]
				xb := xr[o : o+4 : o+4]
				dd := d[o : o+4 : o+4]
				a0, a1, a2, a3 := xa[0], xa[1], xa[2], xa[3]
				b0, b1, b2, b3 := xb[0], xb[1], xb[2], xb[3]
				v0 := (q0*a0 + q1*a1 + q2*a2 + q3*a3) *
					(s0*b0 + s1*b1 + s2*b2 + s3*b3)
				v1 := (q4*a0 + q5*a1 + q6*a2 + q7*a3) *
					(s4*b0 + s5*b1 + s6*b2 + s7*b3)
				v2 := (q8*a0 + q9*a1 + q10*a2 + q11*a3) *
					(s8*b0 + s9*b1 + s10*b2 + s11*b3)
				v3 := (q12*a0 + q13*a1 + q14*a2 + q15*a3) *
					(s12*b0 + s13*b1 + s14*b2 + s15*b3)
				dd[0], dd[1], dd[2], dd[3] = v0, v1, v2, v3
				if cat == 0 || small[j] {
					small[j] = small4(v0, v1, v2, v3)
				}
			}
		}
	}
	// Scaling pass: propagate the children's exponents and rescale flagged
	// patterns. Same arithmetic as finishPattern, but driven by the flags the
	// sweeps computed, so the common (unflagged) case touches no CLV data.
	count := 0
	for i := run.Lo; i < run.Hi; i += run.Step {
		j := i - c.partOffset
		sc := int32(0)
		if !c.qTip {
			sc += c.qs[i]
		}
		if !c.rTip {
			sc += c.rs[i]
		}
		if small[j] {
			off := c.base + j*c.patStride
			for cat := 0; cat < cats; cat++ {
				co := off + cat*c.catStride
				d := c.dst[co : co+4]
				d[0] *= twoTo256
				d[1] *= twoTo256
				d[2] *= twoTo256
				d[3] *= twoTo256
			}
			sc++
			c.scaled++
		}
		c.dstScale[i] = sc
		count++
	}
	return count
}

// processFused4 reduces one evaluate pattern run with the unrolled 4-state
// body. Evaluate must accumulate each pattern's likelihood in (cat asc, state
// asc) order to stay bit-identical with the oracle, so it keeps the pattern
// loop outside and unrolls the per-category work; the `li + x0 + x1 + x2 +
// x3` expressions associate exactly like the generic `li += x` loop. A q-side
// tip without a table falls back to the generic body.
//
//plk:hotpath
func (c *evalSpanCtx) processFused4(run schedule.Run) (float64, int) {
	if c.qTip && c.qTab == nil {
		return c.processGeneric(run)
	}
	f0, f1, f2, f3 := c.freqs[0], c.freqs[1], c.freqs[2], c.freqs[3]
	cats := c.cats
	sum := 0.0
	count := 0
	for i := run.Lo; i < run.Hi; i += run.Step {
		j := i - c.partOffset
		off := c.base + j*c.patStride
		var tv []float64
		if c.pTip {
			tv = alignment.TipVector(c.dtype, c.pRow[j])
		}
		li := 0.0
		if c.qTab != nil {
			t := c.qTab[int(c.qRow[j])*c.cs:]
			for cat := 0; cat < cats; cat++ {
				cl := tv
				if !c.pTip {
					co := off + cat*c.catStride
					cl = c.pv[co : co+4]
				}
				tc := t[cat*4 : cat*4+4]
				li = li + f0*cl[0]*tc[0] + f1*cl[1]*tc[1] + f2*cl[2]*tc[2] + f3*cl[3]*tc[3]
			}
		} else {
			for cat := 0; cat < cats; cat++ {
				pc := c.pm[cat*16 : cat*16+16]
				co := off + cat*c.catStride
				cr := c.qv[co : co+4]
				r0, r1, r2, r3 := cr[0], cr[1], cr[2], cr[3]
				cl := tv
				if !c.pTip {
					cl = c.pv[co : co+4]
				}
				t0 := pc[0]*r0 + pc[1]*r1 + pc[2]*r2 + pc[3]*r3
				t1 := pc[4]*r0 + pc[5]*r1 + pc[6]*r2 + pc[7]*r3
				t2 := pc[8]*r0 + pc[9]*r1 + pc[10]*r2 + pc[11]*r3
				t3 := pc[12]*r0 + pc[13]*r1 + pc[14]*r2 + pc[15]*r3
				li = li + f0*cl[0]*t0 + f1*cl[1]*t1 + f2*cl[2]*t2 + f3*cl[3]*t3
			}
		}
		sum += c.weights[j] * c.site(i, j, li)
		count++
	}
	return sum, count
}
