package core

import (
	"testing"

	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/tree"
)

// The batched-bootstrap acceptance suite: multinomial resampling properties
// (every replicate's weights sum to the original site count, seeded and
// R-invariant determinism) and the bit-identity contract — lane r of a
// batched evaluate/derivative reduction equals a single-replicate run over
// replicate r's weights, exactly, on both backends, with stealing on and
// off, and a width-1 batch over the dataset's own weights equals the plain
// unbatched Evaluate.

// TestWeightSetMultinomialSums is the resampling property test: for every
// replicate and every partition, the resampled pattern weights must sum to
// the partition's original (uncompressed) site count — a bootstrap replicate
// is a redistribution of the same columns, never more or fewer.
func TestWeightSetMultinomialSums(t *testing.T) {
	d, _ := stealFixture(t, 4, 41)
	for _, seed := range []int64{0, 1, 7, 12345} {
		ws, err := NewWeightSet(d, 25, seed)
		if err != nil {
			t.Fatal(err)
		}
		if ws.Replicates() != 25 || ws.NumPatterns() != d.TotalPatterns {
			t.Fatalf("weight set shape %dx%d, want 25x%d", ws.Replicates(), ws.NumPatterns(), d.TotalPatterns)
		}
		for r := 0; r < ws.Replicates(); r++ {
			for ip, p := range d.Parts {
				sum := 0.0
				for j := 0; j < p.PatternCount; j++ {
					w := ws.Weight(p.Offset+j, r)
					if w < 0 {
						t.Fatalf("seed %d replicate %d partition %d pattern %d: negative weight %v", seed, r, ip, j, w)
					}
					sum += w
				}
				if int(sum) != p.SiteCount {
					t.Fatalf("seed %d replicate %d partition %d: weights sum to %v, want site count %d", seed, r, ip, sum, p.SiteCount)
				}
			}
		}
	}
}

// TestWeightSetSeededDeterminism pins the resampling's determinism contract:
// the same (data, seed) yields identical weights; replicate r is a pure
// function of (data, seed, r), independent of the batch width it was drawn
// inside; and a different seed actually changes the draw.
func TestWeightSetSeededDeterminism(t *testing.T) {
	d, _ := stealFixture(t, 1, 42)
	a, err := NewWeightSet(d, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWeightSet(d, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.TotalPatterns; i++ {
		for r := 0; r < 8; r++ {
			if a.Weight(i, r) != b.Weight(i, r) {
				t.Fatalf("same seed, different weights at pattern %d replicate %d", i, r)
			}
		}
	}
	// Replicate 2 of a width-3 draw == replicate 2 of a width-8 draw.
	narrow, err := NewWeightSet(d, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.TotalPatterns; i++ {
		if narrow.Weight(i, 2) != a.Weight(i, 2) {
			t.Fatalf("replicate 2 differs between width-3 and width-8 draws at pattern %d", i)
		}
	}
	// A different seed must change at least one weight.
	c, err := NewWeightSet(d, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < d.TotalPatterns && same; i++ {
		for r := 0; r < 8; r++ {
			if a.Weight(i, r) != c.Weight(i, r) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 99 and 100 produced identical weight sets")
	}
}

// TestWeightSetReplicateAndAggregate checks the two derived views: Replicate
// extracts one lane verbatim, Aggregate column-sums all lanes.
func TestWeightSetReplicateAndAggregate(t *testing.T) {
	d, _ := stealFixture(t, 1, 43)
	ws, err := NewWeightSet(d, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	one := ws.Replicate(3)
	if one.Replicates() != 1 {
		t.Fatalf("extracted replicate has width %d", one.Replicates())
	}
	agg := ws.Aggregate()
	for i := 0; i < d.TotalPatterns; i++ {
		if one.Weight(i, 0) != ws.Weight(i, 3) {
			t.Fatalf("replicate extraction differs at pattern %d", i)
		}
		sum := 0.0
		for r := 0; r < 5; r++ {
			sum += ws.Weight(i, r)
		}
		if agg.Weight(i, 0) != sum {
			t.Fatalf("aggregate differs at pattern %d: %v != %v", i, agg.Weight(i, 0), sum)
		}
	}
}

// batchEngine builds a session over the steal fixture for one backend and
// option set.
func batchEngine(t *testing.T, backend Backend, cats int, exec parallel.Executor, nThreads int, opts Options) *Engine {
	t.Helper()
	d, models := stealFixture(t, cats, 500)
	sh, err := NewSharedWith(d, cats, nThreads, backend)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tree.Random(taxaNames(d.NumTaxa()), 1, tree.RandomOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewSession(sh, tr, models, exec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestBatchBitIdentity is the tentpole's acceptance test: on both backends,
// with chunked execution (stealing on and off) and the precomputed path,
// every replicate lnL and both branch derivatives of a batched R-wide run
// must equal — bit for bit — an unbatched single-replicate run over that
// replicate's weights (via the weight override) and a width-1 batched run
// over the extracted replicate.
func TestBatchBitIdentity(t *testing.T) {
	const threads = 3
	const R = 6
	pool, err := parallel.NewPool(threads)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	type config struct {
		name    string
		exec    func() parallel.Executor
		threads int
		opts    Options
		steal   bool
	}
	configs := []config{
		{"pool", func() parallel.Executor { return pool.Session() }, threads,
			Options{Specialize: true, Schedule: schedule.Weighted}, false},
		{"pool-steal", func() parallel.Executor { return pool.Session() }, threads,
			Options{Specialize: true, Schedule: schedule.Weighted, Steal: true, MinChunk: 16}, true},
		{"pool-steal-off", func() parallel.Executor { return pool.Session() }, threads,
			Options{Specialize: true, Schedule: schedule.Weighted, Steal: true, MinChunk: 16}, false},
		{"sequential", func() parallel.Executor { return parallel.NewSequential() }, 1,
			Options{Specialize: true}, false},
	}
	for _, backend := range []Backend{BackendGeneric, BackendFused} {
		for _, cfg := range configs {
			for _, cats := range []int{1, 4} {
				eng := batchEngine(t, backend, cats, cfg.exec(), cfg.threads, cfg.opts)
				if cfg.opts.Steal {
					eng.SetStealing(cfg.steal)
				}
				label := backend.String() + "/" + cfg.name
				ws, err := NewWeightSet(eng.Data, R, 4242)
				if err != nil {
					t.Fatal(err)
				}

				// Batched pass: R replicate lnLs from one traversal, then R
				// derivative lanes from one sumtable.
				totals, err := eng.LogLikelihoodBatch(ws)
				if err != nil {
					t.Fatal(err)
				}
				nP := eng.NumPartitions()
				root := eng.Tree.Tips[0].Back
				eng.TraverseRoot(root, false, nil)
				eng.PrepareSumtable(root, nil)
				z := make([]float64, nP)
				for i := range z {
					z[i] = 0.2
				}
				bd1 := make([]float64, nP*R)
				bd2 := make([]float64, nP*R)
				if err := eng.BranchDerivativesBatch(z, nil, ws, bd1, bd2); err != nil {
					t.Fatal(err)
				}

				// Reference pass per replicate: the unbatched reductions under
				// that replicate's weight override, and a width-1 batch.
				d1 := make([]float64, nP)
				d2 := make([]float64, nP)
				for r := 0; r < R; r++ {
					rep := ws.Replicate(r)
					if err := eng.SetWeightOverride(rep); err != nil {
						t.Fatal(err)
					}
					single := eng.LogLikelihood()
					if single != totals[r] {
						t.Fatalf("%s cats=%d: replicate %d batched lnL %v != single-replicate %v (must be bit-identical)",
							label, cats, r, totals[r], single)
					}
					one, err := eng.EvaluateBatch(root, nil, rep)
					if err != nil {
						t.Fatal(err)
					}
					if one[0] != totals[r] {
						t.Fatalf("%s cats=%d: replicate %d width-1 batch lnL %v != batched %v",
							label, cats, r, one[0], totals[r])
					}
					eng.TraverseRoot(root, false, nil)
					eng.PrepareSumtable(root, nil)
					eng.BranchDerivatives(z, nil, d1, d2)
					for ip := 0; ip < nP; ip++ {
						if d1[ip] != bd1[ip*R+r] || d2[ip] != bd2[ip*R+r] {
							t.Fatalf("%s cats=%d: replicate %d partition %d derivatives (%v,%v) != batched (%v,%v)",
								label, cats, r, ip, d1[ip], d2[ip], bd1[ip*R+r], bd2[ip*R+r])
						}
					}
					if err := eng.SetWeightOverride(nil); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
}

// TestBatchUniformMatchesPlain pins the bridge between the batched and plain
// paths: a batch of R copies of the dataset's own weights must yield R
// identical lnLs, each bit-identical to the unbatched Evaluate.
func TestBatchUniformMatchesPlain(t *testing.T) {
	eng := batchEngine(t, BackendFused, 4, parallel.NewSequential(), 1, Options{Specialize: true})
	plain := eng.LogLikelihood()
	ws, err := UniformWeightSet(eng.Data, 4)
	if err != nil {
		t.Fatal(err)
	}
	totals, err := eng.LogLikelihoodBatch(ws)
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range totals {
		if v != plain {
			t.Fatalf("uniform batch lane %d lnL %v != plain %v (must be bit-identical)", r, v, plain)
		}
	}
}

// TestBatchValidation exercises the error paths: nil and mismatched weight
// sets, bad override widths, wrong derivative buffer sizes.
func TestBatchValidation(t *testing.T) {
	eng := batchEngine(t, BackendGeneric, 1, parallel.NewSequential(), 1, Options{Specialize: true})
	if _, err := eng.LogLikelihoodBatch(nil); err == nil {
		t.Fatal("nil weight set accepted")
	}
	if _, err := NewWeightSet(nil, 3, 1); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := NewWeightSet(eng.Data, 0, 1); err == nil {
		t.Fatal("zero replicate count accepted")
	}
	wrong := &WeightSet{r: 1, patterns: eng.Data.TotalPatterns + 1, w: make([]float64, eng.Data.TotalPatterns+1)}
	if _, err := eng.LogLikelihoodBatch(wrong); err == nil {
		t.Fatal("mismatched pattern space accepted")
	}
	wide, err := NewWeightSet(eng.Data, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetWeightOverride(wide); err == nil {
		t.Fatal("width-2 weight override accepted")
	}
	if err := eng.BranchDerivativesBatch(make([]float64, eng.NumPartitions()), nil, wide,
		make([]float64, 1), make([]float64, 1)); err == nil {
		t.Fatal("undersized derivative buffers accepted")
	}
}

// TestSetBatchWidthRepricing checks the cost-model half of the tentpole: the
// span costs gain batchLaneOps per extra lane, every existing holder is
// republished (version bump) so live sessions adopt the repriced pack at
// their next region boundary, and the width-1 restore returns to the base
// costs exactly.
func TestSetBatchWidthRepricing(t *testing.T) {
	d, _ := stealFixture(t, 4, 77)
	sh, err := NewSharedWith(d, 4, 3, BackendGeneric)
	if err != nil {
		t.Fatal(err)
	}
	base := sh.SpanCosts()
	h, err := sh.HolderFor(schedule.Weighted)
	if err != nil {
		t.Fatal(err)
	}
	_, v0 := h.Current()
	const R = 64
	if err := sh.SetBatchWidth(R); err != nil {
		t.Fatal(err)
	}
	if got := sh.BatchWidth(); got != R {
		t.Fatalf("batch width %d, want %d", got, R)
	}
	for i, c := range sh.SpanCosts() {
		want := base[i] + batchLaneOps*(R-1)
		if c != want {
			t.Fatalf("span %d cost %v, want %v", i, c, want)
		}
	}
	s1, v1 := h.Current()
	if v1 == v0 {
		t.Fatal("holder not republished after SetBatchWidth")
	}
	if s1.Total() != d.TotalPatterns {
		t.Fatalf("repriced schedule covers %d patterns, want %d", s1.Total(), d.TotalPatterns)
	}
	// Idempotent per width: no republish for the same R.
	if err := sh.SetBatchWidth(R); err != nil {
		t.Fatal(err)
	}
	if _, v := h.Current(); v != v1 {
		t.Fatal("same-width SetBatchWidth republished")
	}
	// Restoring width 1 returns to the base costs exactly.
	if err := sh.SetBatchWidth(1); err != nil {
		t.Fatal(err)
	}
	for i, c := range sh.SpanCosts() {
		if c != base[i] {
			t.Fatalf("span %d cost %v after restore, want base %v", i, c, base[i])
		}
	}
	if err := sh.SetBatchWidth(0); err == nil {
		t.Fatal("zero batch width accepted")
	}
}
