package core

import (
	"testing"

	"phylo/internal/model"
	"phylo/internal/obs"
	"phylo/internal/parallel"
	"phylo/internal/tree"
)

// obsGateEngine builds one engine over the steal fixture with the given
// executor; opts.Metrics/Tracer are passed through.
func obsGateEngine(t *testing.T, exec parallel.Executor, opts Options) *Engine {
	t.Helper()
	d, models := stealFixture(t, 4, 11)
	sh, err := NewSharedWith(d, 4, exec.Threads(), BackendAuto)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tree.Random(taxaNames(d.NumTaxa()), 1, tree.RandomOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*model.Model, len(models))
	for i, m := range models {
		ms[i] = m.Clone()
	}
	eng, err := NewSession(sh, tr, ms, exec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestMetricsZeroAllocsOnNewviewRegion is the CI allocs gate for the
// flush-at-region-boundary design: running the newview region loop with a
// metrics collector attached must allocate exactly as much as running it
// bare. Measured as a delta (not an absolute zero) because ExecuteSteps
// itself allocates its region closure either way; the claim being pinned is
// that metrics-on adds 0 allocs/op on top.
func TestMetricsZeroAllocsOnNewviewRegion(t *testing.T) {
	run := func(observed bool) float64 {
		exec := parallel.NewSequential()
		if observed {
			reg := obs.NewRegistry()
			exec.SetObserver(parallel.NewMetricsCollector(reg, "sequential", "fused4", 1, nil))
		}
		eng := obsGateEngine(t, exec, Options{Specialize: true})
		root := eng.Tree.Tips[0].Back
		steps := tree.ComputeTraversal(root, false)
		eng.ExecuteSteps(steps, nil) // warm up tables and one-time laziness
		return testing.AllocsPerRun(50, func() {
			eng.ExecuteSteps(steps, nil)
		})
	}
	bare := run(false)
	observed := run(true)
	if observed != bare {
		t.Fatalf("metrics-on newview region allocates %v allocs/op vs %v bare; want equal (0 added)", observed, bare)
	}
}

// TestEngineObsFamilies runs a likelihood and a batched evaluation with a
// registry attached and checks the engine-level families appear with sane
// values.
func TestEngineObsFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	exec := parallel.NewSequential()
	exec.SetObserver(parallel.NewMetricsCollector(reg, "sequential", "generic", 1, nil))
	eng := obsGateEngine(t, exec, Options{Specialize: true, Metrics: reg})
	eng.LogLikelihood()
	ws, err := NewWeightSet(eng.Data, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.LogLikelihoodBatch(ws); err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, s := range reg.Snapshot() {
		key := s.Name
		for _, l := range s.Labels {
			key += "|" + l.Key + "=" + l.Value
		}
		got[key] = s.Value
	}
	if got["plk_batch_width"] != 3 {
		t.Errorf("plk_batch_width = %v, want 3", got["plk_batch_width"])
	}
	if got["plk_kernel_patterns_total|backend=generic"] <= 0 {
		t.Errorf("plk_kernel_patterns_total = %v, want > 0", got["plk_kernel_patterns_total|backend=generic"])
	}
	if got["plk_regions_total|kind=newview|exec=sequential"] <= 0 {
		t.Errorf("plk_regions_total{newview} = %v, want > 0", got["plk_regions_total|kind=newview|exec=sequential"])
	}
	if got["plk_rebalances_total"] != 0 {
		t.Errorf("plk_rebalances_total = %v, want 0 (static strategy)", got["plk_rebalances_total"])
	}
}
