package core

import (
	"fmt"
	"math/rand"
	"sort"

	"phylo/internal/alignment"
)

// Bootstrap-fleet weight batching. A nonparametric bootstrap replicate of a
// compressed alignment is nothing but a reweighted pattern vector: resampling
// the original columns with replacement and recompressing would yield the
// same pattern set with new multiplicities (goalign's BuildBootstrap /
// weightboot idiom). A WeightSet therefore holds R per-pattern weight
// vectors over one dataset's existing global pattern space, so R replicates
// can share every piece of per-dataset and per-session state — compressed
// patterns, tip tables, CLV layout, schedules, and above all the newview
// traversal itself: the conditional likelihood of a pattern does not depend
// on its weight, so one traversal serves all R replicates and only the
// final evaluate/derivative reductions fan out R-wide (see EvaluateBatch).

// WeightSet is a batch of R per-pattern weight vectors over one dataset's
// global pattern space. Weights are stored replicate-contiguous per pattern
// (index pattern*R + r), which is the order the batched reduction kernels
// sweep: per pattern they read R adjacent weights and update R adjacent
// partials, keeping the per-pattern site likelihood — the expensive part —
// in a register across all replicates.
type WeightSet struct {
	r        int
	patterns int
	w        []float64
}

// replicateSeed derives the RNG seed of replicate r from the caller's seed
// with a splitmix64 finalizer, so that replicate r is a pure function of
// (data, seed, r) — independent of how many replicates the WeightSet holds.
// A fleet can therefore shard one logical bootstrap of R replicates across
// machines as smaller WeightSets and still produce identical weights.
func replicateSeed(seed int64, r int) int64 {
	z := uint64(seed) + uint64(r+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// NewWeightSet draws R bootstrap replicates over data's compressed patterns:
// for each replicate and each partition, SiteCount columns are resampled
// uniformly with replacement from the partition's original (uncompressed)
// columns — equivalently, a multinomial draw over the partition's patterns
// with probabilities weight/SiteCount — so every replicate's weights sum to
// the partition's original site count. The resampling is seeded and fully
// deterministic; see replicateSeed for the per-replicate derivation.
func NewWeightSet(data *alignment.CompressedData, R int, seed int64) (*WeightSet, error) {
	if data == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	if R < 1 {
		return nil, fmt.Errorf("core: replicate count %d must be positive", R)
	}
	ws := &WeightSet{
		r:        R,
		patterns: data.TotalPatterns,
		w:        make([]float64, data.TotalPatterns*R),
	}
	for r := 0; r < R; r++ {
		rng := rand.New(rand.NewSource(replicateSeed(seed, r)))
		for _, p := range data.Parts {
			resamplePartition(ws.w, p, r, R, rng)
		}
	}
	return ws, nil
}

// resamplePartition draws one partition's multinomial weight vector for
// replicate r: SiteCount uniform draws over the original column index space
// [0, SiteCount), each mapped to its pattern through the cumulative weight
// bounds (pattern j owns the original columns [cum[j], cum[j+1])).
func resamplePartition(w []float64, p *alignment.CompressedPartition, r, stride int, rng *rand.Rand) {
	cum := make([]int, p.PatternCount+1)
	for j, wt := range p.Weights {
		cum[j+1] = cum[j] + int(wt)
	}
	n := cum[p.PatternCount] // == p.SiteCount
	base := p.Offset * stride
	for i := 0; i < n; i++ {
		col := int(rng.Int63n(int64(n)))
		// The drawn original column belongs to the pattern whose cumulative
		// range contains it.
		j := sort.SearchInts(cum[1:], col+1)
		w[base+j*stride+r]++
	}
}

// UniformWeightSet returns a WeightSet of R copies of the dataset's original
// pattern weights — the "no resampling" batch. Replicate lane r of a batched
// evaluation over it is bit-identical to the plain (unbatched) evaluation,
// which makes it the bridge the bit-identity tests and the batched-vs-plain
// benchmarks compare across.
func UniformWeightSet(data *alignment.CompressedData, R int) (*WeightSet, error) {
	if data == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	if R < 1 {
		return nil, fmt.Errorf("core: replicate count %d must be positive", R)
	}
	ws := &WeightSet{
		r:        R,
		patterns: data.TotalPatterns,
		w:        make([]float64, data.TotalPatterns*R),
	}
	for _, p := range data.Parts {
		for j, wt := range p.Weights {
			base := (p.Offset + j) * R
			for r := 0; r < R; r++ {
				ws.w[base+r] = wt
			}
		}
	}
	return ws, nil
}

// Replicates returns the batch width R.
func (ws *WeightSet) Replicates() int { return ws.r }

// NumPatterns returns the global pattern count the set was built for; a
// session may only run a WeightSet whose pattern space matches its dataset.
func (ws *WeightSet) NumPatterns() int { return ws.patterns }

// Weight returns replicate r's weight for global pattern i.
func (ws *WeightSet) Weight(i, r int) float64 { return ws.w[i*ws.r+r] }

// Replicate extracts replicate r as a standalone single-replicate WeightSet.
// Batched evaluation over the extracted set reproduces lane r of the full
// batch bit for bit — the property the single-replicate bootstrap runs (and
// the bit-identity acceptance tests) are built on.
func (ws *WeightSet) Replicate(r int) *WeightSet {
	if r < 0 || r >= ws.r {
		panic(fmt.Sprintf("core: replicate %d out of range [0, %d)", r, ws.r))
	}
	out := &WeightSet{r: 1, patterns: ws.patterns, w: make([]float64, ws.patterns)}
	for i := 0; i < ws.patterns; i++ {
		out.w[i] = ws.w[i*ws.r+r]
	}
	return out
}

// Aggregate returns the single-vector WeightSet whose weights are the
// column sums over all replicates. Optimizing branch lengths against the
// aggregate maximizes the summed replicate log likelihood — the documented
// shared-branch-length mode of the bootstrap pipeline (see internal/opt):
// sum_r sum_p w_r[p] log l_p == sum_p (sum_r w_r[p]) log l_p. The sums are
// integer-valued counts, so the aggregation is exact.
func (ws *WeightSet) Aggregate() *WeightSet {
	out := &WeightSet{r: 1, patterns: ws.patterns, w: make([]float64, ws.patterns)}
	for i := 0; i < ws.patterns; i++ {
		s := 0.0
		for r := 0; r < ws.r; r++ {
			s += ws.w[i*ws.r+r]
		}
		out.w[i] = s
	}
	return out
}

// MemoryBytes estimates the set's heap footprint.
func (ws *WeightSet) MemoryBytes() int64 { return int64(len(ws.w)) * 8 }

// lanes returns the replicate-contiguous weight rows of the patterns
// starting at global pattern offset: lanes(off)[j*R+r] is replicate r's
// weight for the j-th pattern of a partition whose Offset is off. This is
// the view the span contexts bind.
func (ws *WeightSet) lanes(offset int) []float64 {
	return ws.w[offset*ws.r:]
}
