package core

import (
	"phylo/internal/alignment"
	"phylo/internal/schedule"
)

// Tip-case lookup tables (the RAxML tip-case trick): a tip child never
// carries per-category likelihoods — only one of 16 DNA / 23 AA tip codes —
// so the P-matrix application that the kernels would repeat for every
// pattern,
//
//	sum_b P_c[a][b] · tipvec(code)[b],
//
// takes only codes×cats×s distinct values per transition matrix. Each kernel
// precomputes them once per (step, partition, worker) into per-worker
// scratch and replaces the per-pattern O(cats·s²) child work by an
// O(cats·s) table-row read. The tables accumulate in exactly the same
// b-ascending order as the generic kernels, so specialized and generic
// results are bit-for-bit identical.
//
// The tables keep their own code-major geometry — row (code·cats + c)·s —
// under every kernel backend: rows are indexed by tip code, not pattern, so
// the CLV layout does not apply to them. Both the pattern-major generic
// bodies and the cat-major fused bodies read the same rows (the fused
// kernels at a per-category offset of cat·s within the row), which is what
// lets one build serve both and keeps tip specialization orthogonal to the
// backend choice. The per-worker table scratch is cache-line-aligned like
// every other hot buffer (see alignedFloats).

// tipTableMinPatterns is the minimum per-worker pattern share for which
// building a lookup table beats per-pattern tip-vector expansion: the build
// costs codes·cats·s² multiply-adds while every pattern saves ~cats·s(s-1),
// so break-even sits near the code count; the factor 2 also covers the
// table's cache footprint. Shares below it keep the generic path (results
// are identical either way).
func tipTableMinPatterns(t alignment.DataType) int {
	return 2 * alignment.NumCodes(t)
}

// buildTipTable fills dst with the per-code P application table
// dst[(code·cats+c)·s + a] = sum_b pm_c[a][b] · tipvec(code)[b] and returns
// the used prefix. pm is the cats×s×s transition-matrix block of one child
// branch.
func buildTipTable(dst []float64, t alignment.DataType, pm []float64, s, cats int) []float64 {
	codes := alignment.NumCodes(t)
	ss := s * s
	for code := 0; code < codes; code++ {
		tv := alignment.TipVector(t, byte(code))
		for c := 0; c < cats; c++ {
			p := pm[c*ss : (c+1)*ss]
			d := dst[(code*cats+c)*s : (code*cats+c+1)*s]
			for a := 0; a < s; a++ {
				row := a * s
				sum := 0.0
				for b := 0; b < s; b++ {
					sum += p[row+b] * tv[b]
				}
				d[a] = sum
			}
		}
	}
	return dst[:codes*cats*s]
}

// buildTipSumLeft fills dst with the category-independent left sumtable
// projection dst[code·s + k] = sum_a freqs[a] · tipvec(code)[a] · v[a][k]
// (tip vectors carry no category dimension, so one row serves all
// categories).
func buildTipSumLeft(dst []float64, t alignment.DataType, freqs, v []float64, s int) []float64 {
	codes := alignment.NumCodes(t)
	for code := 0; code < codes; code++ {
		tv := alignment.TipVector(t, byte(code))
		d := dst[code*s : (code+1)*s]
		for k := 0; k < s; k++ {
			sum := 0.0
			for a := 0; a < s; a++ {
				sum += freqs[a] * tv[a] * v[a*s+k]
			}
			d[k] = sum
		}
	}
	return dst[:codes*s]
}

// buildTipSumRight fills dst with the category-independent right sumtable
// projection dst[code·s + k] = sum_a vi[k][a] · tipvec(code)[a].
func buildTipSumRight(dst []float64, t alignment.DataType, vi []float64, s int) []float64 {
	codes := alignment.NumCodes(t)
	for code := 0; code < codes; code++ {
		tv := alignment.TipVector(t, byte(code))
		d := dst[code*s : (code+1)*s]
		for k := 0; k < s; k++ {
			sum := 0.0
			for a := 0; a < s; a++ {
				sum += vi[k*s+a] * tv[a]
			}
			d[k] = sum
		}
	}
	return dst[:codes*s]
}

// runsPatternCount totals the patterns of a worker's run list; the kernels
// use it to decide whether a tip table amortizes over the share.
func runsPatternCount(runs []schedule.Run) int {
	n := 0
	for _, r := range runs {
		n += r.Len()
	}
	return n
}
