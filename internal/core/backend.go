package core

import (
	"fmt"
	"os"
	"strings"

	"phylo/internal/alignment"
	"phylo/internal/schedule"
)

// The KernelBackend seam. A backend bundles (a) a CLV memory layout and (b)
// the per-pattern kernel bodies that run over it. Two backends exist:
//
//   - BackendGeneric — the seed path: pattern-major CLVs and the
//     bounds-checked, state-count-generic loops. It is the bit-exactness
//     oracle: every other backend must reproduce its total lnL, per-site
//     lnLs, and branch derivatives bit for bit (the same contract the
//     Specialize=false ablation keeps for the tip tables).
//   - BackendFused — category-major, state-contiguous, cache-line-aligned
//     CLV planes; 4-state (DNA) partitions run fully unrolled straight-line
//     multiply-add kernels that hoist the fixed category's transition matrix
//     into registers and sweep contiguous pattern lanes, while wider
//     alphabets (20-state AA) fall back to the layout-aware generic loop
//     over the same planes.
//
// The kernel implementation is selected per (alphabet, cats) via kernelFor;
// the layout is fixed per Shared (one CLV buffer backs all partitions).
// Bit-identity across backends holds because a layout moves values without
// reordering any floating-point accumulation: every madd sequence — the
// b-ascending P applications, the (cat, state)-ascending evaluate
// reduction, the eigenbasis projections — runs in the seed order in both
// backends, so only the addresses differ.

// Backend selects the kernel backend of a Shared and its sessions.
type Backend int

const (
	// BackendAuto resolves to the PLK_BACKEND environment variable when set,
	// and to BackendFused otherwise.
	BackendAuto Backend = iota
	// BackendGeneric is the seed pattern-major path, kept as the oracle.
	BackendGeneric
	// BackendFused is the cat-major layout with unrolled 4-state kernels.
	BackendFused
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendGeneric:
		return "generic"
	case BackendFused:
		return "fused"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// ParseBackend resolves "auto", "generic", or "fused"/"vectorized".
func ParseBackend(name string) (Backend, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "auto":
		return BackendAuto, nil
	case "generic", "oracle":
		return BackendGeneric, nil
	case "fused", "fused4", "vectorized", "simd":
		return BackendFused, nil
	default:
		return BackendAuto, fmt.Errorf("core: unknown kernel backend %q (want auto, generic, or fused)", name)
	}
}

// resolveBackend turns BackendAuto into a concrete choice: the PLK_BACKEND
// environment variable when set (the CI oracle leg runs the whole test suite
// under PLK_BACKEND=generic), BackendFused otherwise. Explicit choices pass
// through untouched, so tests that pin both backends are immune to the
// environment.
func resolveBackend(b Backend) (Backend, error) {
	if b != BackendAuto {
		return b, nil
	}
	if env := os.Getenv("PLK_BACKEND"); env != "" {
		p, err := ParseBackend(env)
		if err != nil {
			return BackendAuto, fmt.Errorf("core: PLK_BACKEND: %w", err)
		}
		if p != BackendAuto {
			return p, nil
		}
	}
	return BackendFused, nil
}

// layoutKindFor maps a backend to its CLV geometry.
func layoutKindFor(b Backend) LayoutKind {
	if b == BackendFused {
		return LayoutCatMajor
	}
	return LayoutPatternMajor
}

// KernelBackend is the seam between the engine's region/span machinery and
// the per-pattern arithmetic: one implementation per (backend, alphabet,
// cats) class, dispatched once per span (or per stolen chunk), never per
// pattern. The span contexts carry every binding the kernels need (layout
// strides, CLV/tip views, transition matrices, lookup tables), so an
// implementation is pure code with no state of its own.
type KernelBackend interface {
	// Name identifies the implementation in reports and tests.
	Name() string
	// Newview computes one pattern run of a newview step bound in c and
	// returns the processed pattern count.
	Newview(c *nvSpanCtx, run schedule.Run) int
	// Evaluate reduces one pattern run of the root log-likelihood bound in c
	// to (weighted partial sum, pattern count).
	Evaluate(c *evalSpanCtx, run schedule.Run) (float64, int)
	// Sumtable fills one pattern run of the Newton sumtable bound in c and
	// returns the pattern count.
	Sumtable(c *sumSpanCtx, run schedule.Run) int
	// Derivatives reduces one pattern run to its (d1, d2) partials and
	// pattern count. The sumtable is pattern-major under every backend, so
	// today a single implementation serves both; the method sits on the seam
	// so a future backend can restructure the sumtable too.
	Derivatives(c *derivSpanCtx, run schedule.Run) (float64, float64, int)
	// EvaluateBatch is Evaluate under an R-wide replicate weight batch bound
	// in c (see bindBatch): per pattern the site log likelihood is computed
	// once and accumulated into out[r] under replicate r's weight, out having
	// batchR entries. Returns the processed pattern count. Lane r performs the
	// exact floating-point sequence of a single-replicate Evaluate over that
	// replicate's weights — the batched bootstrap's bit-identity contract.
	EvaluateBatch(c *evalSpanCtx, run schedule.Run, out []float64) int
	// DerivativesBatch is Derivatives under the replicate batch bound in c:
	// out holds batchR (d1, d2) pairs, out[2r] and out[2r+1] accumulating
	// replicate r's partials. Returns the processed pattern count.
	DerivativesBatch(c *derivSpanCtx, run schedule.Run, out []float64) int
}

// kernelFor selects the kernel implementation for one partition: the fused
// backend runs the unrolled straight-line kernels on 4-state data and the
// layout-aware generic loop on anything wider; the generic backend always
// runs the generic loop (over the pattern-major layout its Shared built).
// cats participates in the signature because a future backend may specialize
// on it (e.g. a cats==4 full unroll); today every category count shares one
// implementation per alphabet.
func kernelFor(b Backend, t alignment.DataType, cats int) KernelBackend {
	if b == BackendFused && t.States() == 4 {
		return fusedDNAKernels{}
	}
	return genericKernels{}
}

// genericKernels is the layout-aware generic loop: state-count-generic
// bodies that read the span context's (base, patStride, catStride) triple,
// so the same code serves the pattern-major oracle and the fused backend's
// cat-major AA fallback. Under the pattern-major layout it executes the
// seed's exact operation sequence.
type genericKernels struct{}

func (genericKernels) Name() string { return "generic" }

func (genericKernels) Newview(c *nvSpanCtx, run schedule.Run) int {
	return c.processGeneric(run)
}

func (genericKernels) Evaluate(c *evalSpanCtx, run schedule.Run) (float64, int) {
	return c.processGeneric(run)
}

func (genericKernels) Sumtable(c *sumSpanCtx, run schedule.Run) int {
	return c.processGeneric(run)
}

func (genericKernels) Derivatives(c *derivSpanCtx, run schedule.Run) (float64, float64, int) {
	return c.processGeneric(run)
}

func (genericKernels) EvaluateBatch(c *evalSpanCtx, run schedule.Run, out []float64) int {
	return c.processGenericBatch(run, out)
}

func (genericKernels) DerivativesBatch(c *derivSpanCtx, run schedule.Run, out []float64) int {
	return c.processGenericBatch(run, out)
}

// fusedDNAKernels is the 4-state straight-line backend: category-outer
// newview sweeps with the transition matrices hoisted out of the pattern
// loop, and fully unrolled per-pattern evaluate bodies — all over the
// cat-major, state-contiguous planes (see fused4.go).
type fusedDNAKernels struct{}

func (fusedDNAKernels) Name() string { return "fused4" }

func (fusedDNAKernels) Newview(c *nvSpanCtx, run schedule.Run) int {
	return c.processFused4(run)
}

func (fusedDNAKernels) Evaluate(c *evalSpanCtx, run schedule.Run) (float64, int) {
	return c.processFused4(run)
}

func (fusedDNAKernels) Sumtable(c *sumSpanCtx, run schedule.Run) int {
	// The sumtable region runs once per branch (its cost is amortized over
	// every Newton iteration), so the stride-aware generic body is fast
	// enough; the fused win is in newview and evaluate.
	return c.processGeneric(run)
}

func (fusedDNAKernels) Derivatives(c *derivSpanCtx, run schedule.Run) (float64, float64, int) {
	return c.processGeneric(run)
}

func (fusedDNAKernels) EvaluateBatch(c *evalSpanCtx, run schedule.Run, out []float64) int {
	return c.processFused4Batch(run, out)
}

func (fusedDNAKernels) DerivativesBatch(c *derivSpanCtx, run schedule.Run, out []float64) int {
	// The derivative reduction reads only the pattern-major sumtable, so the
	// generic batch body serves every backend (see Derivatives).
	return c.processGenericBatch(run, out)
}
