package core

import (
	"testing"

	"phylo/internal/alignment"
	"phylo/internal/model"
	"phylo/internal/parallel"
	"phylo/internal/tree"
)

// TestAlignFloats pins the rounding helper: alignFloats rounds a float64
// count up to the next multiple of the 8 floats that fill one 64-byte cache
// line, and never down.
func TestAlignFloats(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 0}, {1, 8}, {7, 8}, {8, 8}, {9, 16}, {15, 16}, {16, 16}, {100, 104},
	} {
		if got := alignFloats(tc.n); got != tc.want {
			t.Errorf("alignFloats(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestAlignedFloats pins the allocator contract the kernels rely on: the
// returned slice starts on a 64-byte boundary, has exactly the requested
// length, is zeroed, and its capacity is clipped to its length so an
// append can never silently scribble into the alignment slack.
func TestAlignedFloats(t *testing.T) {
	if v := alignedFloats(0); v != nil {
		t.Errorf("alignedFloats(0) = %v, want nil", v)
	}
	for _, n := range []int{1, 7, 8, 9, 63, 64, 1000, 4096, 12345} {
		v := alignedFloats(n)
		if len(v) != n {
			t.Fatalf("alignedFloats(%d): len %d", n, len(v))
		}
		if cap(v) != n {
			t.Errorf("alignedFloats(%d): cap %d, want %d (clipped)", n, cap(v), n)
		}
		if !isAligned(v) {
			t.Errorf("alignedFloats(%d): base address not 64-byte aligned", n)
		}
		for i, x := range v {
			if x != 0 {
				t.Fatalf("alignedFloats(%d): entry %d = %v, want 0", n, i, x)
			}
		}
	}
}

// TestEngineBuffersAligned is the size/alignment pinning test for the hot
// buffers: every CLV, the sumtable workspace, and all per-worker scratch
// (P matrices, exponential tables, tip tables) must sit on cache-line
// boundaries under both backends, and the CLV/sumtable lengths must match
// the layout's padded totals.
func TestEngineBuffersAligned(t *testing.T) {
	d, models := stealFixture(t, 4, 7)
	for _, backend := range []Backend{BackendGeneric, BackendFused} {
		sh, err := NewSharedWith(d, 4, 2, backend)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := tree.Random(taxaNames(d.NumTaxa()), 1, tree.RandomOptions{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ms := make([]*model.Model, len(models))
		for i, m := range models {
			ms[i] = m.Clone()
		}
		sim, err := parallel.NewSim(2)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewSession(sh, tr, ms, sim, Options{Specialize: true})
		if err != nil {
			t.Fatal(err)
		}
		for i, clv := range eng.clvs {
			if !isAligned(clv) {
				t.Errorf("%v: clv %d not 64-byte aligned", backend, i)
			}
			if len(clv) != sh.layout.Total() {
				t.Errorf("%v: clv %d len %d, want layout total %d", backend, i, len(clv), sh.layout.Total())
			}
		}
		if !isAligned(eng.sumtable) || len(eng.sumtable) != sh.layout.SumTotal() {
			t.Errorf("%v: sumtable len %d aligned=%v, want len %d aligned",
				backend, len(eng.sumtable), isAligned(eng.sumtable), sh.layout.SumTotal())
		}
		for w := range eng.pmScratch {
			for k := 0; k < 2; k++ {
				if !isAligned(eng.pmScratch[w][k]) {
					t.Errorf("%v: pmScratch[%d][%d] not aligned", backend, w, k)
				}
				if !isAligned(eng.tipScratch[w][k]) {
					t.Errorf("%v: tipScratch[%d][%d] not aligned", backend, w, k)
				}
			}
			if !isAligned(eng.exScratch[w]) {
				t.Errorf("%v: exScratch[%d] not aligned", backend, w)
			}
		}
		// The cat-major layout must additionally keep every category plane
		// aligned: base + cat·catStride stays a multiple of 8 floats.
		if backend == BackendFused {
			for ip := range d.Parts {
				if d.Parts[ip].Type != alignment.DNA {
					continue
				}
				for cat := 0; cat < sh.NumCats; cat++ {
					if sh.layout.Index(ip, 0, cat)%alignFloatCount != 0 {
						t.Errorf("fused: partition %d cat %d plane offset %d not aligned",
							ip, cat, sh.layout.Index(ip, 0, cat))
					}
				}
			}
		}
	}
}
