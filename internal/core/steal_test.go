package core

import (
	"math"
	"sync"
	"testing"

	"phylo/internal/alignment"
	"phylo/internal/model"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/tree"
)

// stealFixture builds a mixed DNA+AA compressed dataset large enough that
// every worker's share splits into several chunks at minChunk 16, plus
// per-partition model templates at the requested category count.
func stealFixture(t *testing.T, cats int, seed int64) (*alignment.CompressedData, []*model.Model) {
	t.Helper()
	const taxa, dnaLen, aaLen = 10, 600, 180
	dna := randomAlignment(t, taxa, dnaLen, alignment.DNA, seed)
	aa := randomAlignment(t, taxa, aaLen, alignment.AA, seed+1)
	rows := make([][]byte, taxa)
	for i := 0; i < taxa; i++ {
		rows[i] = append(append([]byte{}, dna.Seqs[i]...), aa.Seqs[i]...)
	}
	al, err := alignment.New(taxaNames(taxa), rows)
	if err != nil {
		t.Fatal(err)
	}
	sites := func(lo, hi int) []int {
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	}
	parts := []alignment.Partition{
		{Name: "dna", Type: alignment.DNA, Sites: sites(0, dnaLen)},
		{Name: "aa", Type: alignment.AA, Sites: sites(dnaLen, dnaLen+aaLen)},
	}
	d, err := alignment.Compress(al, parts, alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mDNA, err := model.GTR(nil, nil, cats, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	mAA, err := model.SYN20(cats, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	return d, []*model.Model{mDNA, mAA}
}

// stealResult is one full evaluation under a session: total and per-partition
// lnL plus both branch derivatives at the canonical root.
type stealResult struct {
	lnl     float64
	perPart []float64
	d1, d2  []float64
}

func runStealResult(t *testing.T, eng *Engine) stealResult {
	t.Helper()
	eng.InvalidateCLVs()
	root := eng.Tree.Tips[0].Back
	eng.Traverse(root, false, nil)
	lnl, perPart := eng.Evaluate(root, nil)
	eng.TraverseRoot(root, false, nil)
	eng.PrepareSumtable(root, nil)
	nP := eng.NumPartitions()
	z := make([]float64, nP)
	for i := range z {
		z[i] = 0.2
	}
	d1 := make([]float64, nP)
	d2 := make([]float64, nP)
	eng.BranchDerivatives(z, nil, d1, d2)
	return stealResult{lnl: lnl, perPart: append([]float64(nil), perPart...), d1: d1, d2: d2}
}

func requireBitIdentical(t *testing.T, label string, a, b stealResult) {
	t.Helper()
	if a.lnl != b.lnl {
		t.Errorf("%s: lnL %v != %v (must be bit-identical)", label, a.lnl, b.lnl)
	}
	for i := range a.perPart {
		if a.perPart[i] != b.perPart[i] {
			t.Errorf("%s: partition %d lnL %v != %v", label, i, a.perPart[i], b.perPart[i])
		}
	}
	for i := range a.d1 {
		if a.d1[i] != b.d1[i] || a.d2[i] != b.d2[i] {
			t.Errorf("%s: partition %d derivatives (%v,%v) != (%v,%v)", label, i, a.d1[i], a.d2[i], b.d1[i], b.d2[i])
		}
	}
}

// TestStealBitIdentityAcrossExecutorsAndToggle is the acceptance test for
// the determinism contract: with the chunked execution path, likelihoods and
// both branch derivatives are bit-for-bit identical (a) with thieving on vs
// off, (b) across Pool sessions (which really steal), Sim (serial, never
// steals), and Sequential (T=1), at 1 and 4 Gamma categories on mixed
// DNA+AA data — and within reassociation tolerance of the legacy
// (non-chunked) path. The weighted schedule is deliberately mispriced so the
// static pack is skewed and the pool runs must actually steal.
func TestStealBitIdentityAcrossExecutorsAndToggle(t *testing.T) {
	for _, cats := range []int{1, 4} {
		d, models := stealFixture(t, cats, int64(100+cats))
		const threads = 3
		sh, err := NewShared(d, cats, threads)
		if err != nil {
			t.Fatal(err)
		}
		// Misprice DNA 50x so the weighted pack loads one worker far above the
		// others: drained workers must steal to finish the region.
		costs := sh.SpanCosts()
		costs[0] *= 50
		if err := sh.OverrideSpanCosts(costs); err != nil {
			t.Fatal(err)
		}
		pool, err := parallel.NewPool(threads)
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()

		mk := func(exec parallel.Executor, shd *Shared, opts Options) *Engine {
			tr, err := tree.Random(taxaNames(d.NumTaxa()), 1, tree.RandomOptions{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			ms := make([]*model.Model, len(models))
			for i, m := range models {
				ms[i] = m.Clone()
			}
			eng, err := NewSession(shd, tr, ms, exec, opts)
			if err != nil {
				t.Fatal(err)
			}
			return eng
		}
		stealOpts := Options{Specialize: true, Schedule: schedule.Weighted, Steal: true, MinChunk: 16}

		poolSess := pool.Session()
		engPool := mk(poolSess, sh, stealOpts)
		resPool := runStealResult(t, engPool)

		engToggle := mk(pool.Session(), sh, stealOpts)
		engToggle.SetStealing(false)
		resToggle := runStealResult(t, engToggle)

		sim, err := parallel.NewSim(threads)
		if err != nil {
			t.Fatal(err)
		}
		engSim := mk(sim, sh, stealOpts)
		resSim := runStealResult(t, engSim)

		requireBitIdentical(t, "pool-stealing vs pool-no-steal", resPool, resToggle)
		requireBitIdentical(t, "pool-stealing vs sim-serial", resPool, resSim)

		// Sequential (T=1) chunked execution: stealing on vs off identical.
		shSeq, err := NewShared(d, cats, 1)
		if err != nil {
			t.Fatal(err)
		}
		engSeq := mk(parallel.NewSequential(), shSeq, stealOpts)
		resSeq := runStealResult(t, engSeq)
		engSeqOff := mk(parallel.NewSequential(), shSeq, stealOpts)
		engSeqOff.SetStealing(false)
		resSeqOff := runStealResult(t, engSeqOff)
		requireBitIdentical(t, "sequential toggle", resSeq, resSeqOff)

		// The chunked reduction regroups the per-worker sums, so against the
		// legacy path it agrees to reassociation tolerance, not bitwise.
		engLegacy := mk(pool.Session(), sh, Options{Specialize: true, Schedule: schedule.Weighted})
		resLegacy := runStealResult(t, engLegacy)
		if diff := math.Abs(resLegacy.lnl - resPool.lnl); diff > 1e-9*math.Abs(resLegacy.lnl) {
			t.Errorf("cats=%d: steal lnL %v vs legacy %v (diff %v)", cats, resPool.lnl, resLegacy.lnl, diff)
		}
		if diff := math.Abs(resSeq.lnl - resPool.lnl); diff > 1e-9*math.Abs(resPool.lnl) {
			t.Errorf("cats=%d: T=1 lnL %v vs T=3 %v", cats, resSeq.lnl, resPool.lnl)
		}

		// The skewed pool runs must have actually stolen work (the toggle run
		// must not have).
		if st := poolSess.Stats(); st.StealCount == 0 {
			t.Errorf("cats=%d: pool session never stole on a 50x-mispriced pack (stats: %+v regions)", cats, st.Regions)
		}
		if st := engToggle.Exec.Stats(); st.StealCount != 0 {
			t.Errorf("cats=%d: stealing was disabled but %v steals recorded", cats, st.StealCount)
		}
	}
}

// TestStealBitIdentityUnderForcedScaling repeats the determinism check on a
// deep long-branch DNA tree that drives CLVs through the 2^-256 scaling
// path: the scaling exponents are per-pattern state, so chunk migration must
// not disturb them either.
func TestStealBitIdentityUnderForcedScaling(t *testing.T) {
	const taxa = 220
	a := randomAlignment(t, taxa, 60, alignment.DNA, 4242)
	d, err := alignment.Compress(a, alignment.SinglePartition(a, alignment.DNA, ""), alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const threads = 3
	sh, err := NewShared(d, 2, threads)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := parallel.NewPool(threads)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sim, err := parallel.NewSim(threads)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]stealResult, 0, 2)
	var scaledEng *Engine
	for i, exec := range []parallel.Executor{pool.Session(), sim} {
		// High alpha concentrates the Gamma rates near 1 so every category's
		// CLV entries shrink together and the 2^-256 rescale actually fires
		// on the deep long-branch tree (mirrors TestTipCaseScalingEquivalence).
		m, err := model.GTR(nil, nil, 2, 5.0)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := tree.Random(taxaNames(taxa), 1, tree.RandomOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewSession(sh, tr, []*model.Model{m}, exec, Options{Specialize: true, Steal: true, MinChunk: 16})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range tr.Branches() {
			tree.SetBranchLength(b, 0, 1.4)
		}
		results = append(results, runStealResult(t, eng))
		if i == 0 {
			scaledEng = eng
		}
	}
	requireBitIdentical(t, "forced-scaling pool vs sim", results[0], results[1])
	fired := false
	for _, sc := range scaledEng.scales {
		for _, v := range sc {
			if v > 0 {
				fired = true
			}
		}
	}
	if !fired {
		t.Fatal("scaling never triggered; fixture misconfigured")
	}
	if err := CheckFinite(results[0].lnl); err != nil {
		t.Fatal(err)
	}
}

// TestStealComposesWithMeasuredRebalance is the regression test for the
// steal/rebalance interaction ordering: concurrent measured+steal sessions
// over one Shared keep rebalancing (which rebuilds each session's chunk
// layout through the quiesce path) while every session's likelihood stays
// put, and the chunk-granular attribution yields usable observed costs. Run
// under -race in CI.
func TestStealComposesWithMeasuredRebalance(t *testing.T) {
	d, models := mixedData(t, 83)
	const threads = 3
	sh, err := NewShared(d, 4, threads)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := parallel.NewPool(threads)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	trRef, _ := tree.Random(taxaNames(8), 1, tree.RandomOptions{Seed: 61})
	seqEng, err := New(d, trRef, []*model.Model{models[0].Clone(), models[1].Clone()}, parallel.NewSequential(), Options{Specialize: true})
	if err != nil {
		t.Fatal(err)
	}
	want := seqEng.LogLikelihood()

	const sessions = 4
	const iters = 6
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	engines := make([]*Engine, sessions)
	for i := 0; i < sessions; i++ {
		tr, _ := tree.Random(taxaNames(8), 1, tree.RandomOptions{Seed: 61})
		eng, err := NewSession(sh, tr, []*model.Model{models[0].Clone(), models[1].Clone()}, pool.Session(),
			Options{Specialize: true, Schedule: schedule.Measured, Steal: true, MinChunk: 16})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
		wg.Add(1)
		go func(i int, eng *Engine) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				lnl := eng.LogLikelihood()
				if math.Abs(lnl-want) > 1e-9*math.Abs(want) {
					t.Errorf("session %d iter %d: lnL %v drifted from %v", i, it, lnl, want)
					return
				}
				if i%2 == 0 {
					// Even sessions rebalance every iteration: each rebuild
					// publishes a new schedule that all sessions re-pin (and
					// re-chunk) at their next region boundary, interleaved
					// with odd sessions' stealing regions.
					if err := eng.RebalanceNow(); err != nil {
						errs[i] = err
						return
					}
				}
			}
		}(i, eng)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}
	if reb := engines[0].Rebalances(); reb != iters {
		t.Errorf("session 0 performed %d rebalances, want %d", reb, iters)
	}
	// Session 1 never rebalanced, so its measurement window accumulated over
	// the whole run: the chunk-granular attribution must have produced usable
	// per-partition samples.
	costs := engines[1].ObservedCosts()
	for ip, c := range costs {
		if c <= 0 {
			t.Errorf("partition %d observed cost %v under steal+measured, want > 0", ip, c)
		}
	}
}

// TestStealSmoothedCostsAcrossWindows pins the EWMA satellite at the engine
// level: two rebalance windows with very different observed costs must leave
// the smoothed estimate strictly between the two raw windows.
func TestStealSmoothedCostsAcrossWindows(t *testing.T) {
	d, models := mixedData(t, 29)
	sim, err := parallel.NewSim(2)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := tree.Random(taxaNames(8), 1, tree.RandomOptions{Seed: 3})
	eng, err := New(d, tr, models, sim, Options{Specialize: true, Schedule: schedule.Measured})
	if err != nil {
		t.Fatal(err)
	}
	eng.LogLikelihood()
	first := eng.ObservedCosts()
	if err := eng.RebalanceNow(); err != nil {
		t.Fatal(err)
	}
	afterFirst := eng.SmoothedCosts()
	for i := range first {
		if afterFirst[i] != first[i] {
			t.Errorf("first window must pass through undamped: smoothed[%d]=%v observed=%v", i, afterFirst[i], first[i])
		}
	}
	// Inject a corrupted second window: 100x the first observation.
	for w := range eng.partSecs {
		for ip := range eng.partSecs[w] {
			eng.partSecs[w][ip] = first[ip] * 100
			eng.partPats[w][ip] = 1
		}
	}
	if err := eng.RebalanceNow(); err != nil {
		t.Fatal(err)
	}
	smoothed := eng.SmoothedCosts()
	for i := range smoothed {
		spike := first[i] * 100
		if smoothed[i] <= afterFirst[i] || smoothed[i] >= spike {
			t.Errorf("smoothed[%d]=%v not strictly between prior %v and spike %v", i, smoothed[i], afterFirst[i], spike)
		}
	}
}
