package core

import (
	"testing"

	"phylo/internal/alignment"
)

// layoutFixtureParts builds a mixed DNA+AA compressed dataset whose partition
// sizes exercise padding (pattern counts not multiples of the 8-float
// alignment quantum).
func layoutFixtureParts(t *testing.T) []*alignment.CompressedPartition {
	t.Helper()
	d, _ := stealFixture(t, 4, 42)
	return d.Parts
}

// TestLayoutRoundTrip is the pack/unpack property test between the two
// layouts: converting a CLV pattern-major → cat-major → pattern-major (and
// the reverse cycle) must reproduce every entry exactly, and a single
// conversion must neither drop, duplicate, nor reorder any (partition,
// pattern, cat, state) entry — checked by filling the source with unique
// values and accounting for each one in the destination.
func TestLayoutRoundTrip(t *testing.T) {
	parts := layoutFixtureParts(t)
	for _, cats := range []int{1, 4} {
		pm := newCLVLayout(parts, cats, LayoutPatternMajor)
		cm := newCLVLayout(parts, cats, LayoutCatMajor)

		entries := 0
		for ip, p := range parts {
			if pm.states[ip] != p.Type.States() || pm.counts[ip] != p.PatternCount {
				t.Fatalf("partition %d: layout geometry %d×%d, want %d×%d",
					ip, pm.counts[ip], pm.states[ip], p.PatternCount, p.Type.States())
			}
			entries += p.PatternCount * cats * p.Type.States()
		}

		const pad = -1.0
		src := make([]float64, pm.Total())
		for i := range src {
			src[i] = pad
		}
		v := 1.0
		for ip, p := range parts {
			s := p.Type.States()
			for j := 0; j < p.PatternCount; j++ {
				for c := 0; c < cats; c++ {
					o := pm.Index(ip, j, c)
					for a := 0; a < s; a++ {
						src[o+a] = v
						v++
					}
				}
			}
		}

		mid := make([]float64, cm.Total())
		for i := range mid {
			mid[i] = pad
		}
		for ip := range parts {
			ConvertCLV(mid, cm, src, pm, ip)
		}
		// Coverage: the cat-major buffer must hold each unique value exactly
		// once; everything else is padding.
		seen := make(map[float64]bool, entries)
		for _, x := range mid {
			if x == pad {
				continue
			}
			if seen[x] {
				t.Fatalf("cats=%d: value %v duplicated by conversion", cats, x)
			}
			seen[x] = true
		}
		if len(seen) != entries {
			t.Fatalf("cats=%d: conversion carried %d entries, want %d", cats, len(seen), entries)
		}
		// Order: entry (ip,j,c,a) must land at the cat-major index, not merely
		// somewhere.
		for ip, p := range parts {
			s := p.Type.States()
			for j := 0; j < p.PatternCount; j++ {
				for c := 0; c < cats; c++ {
					po, co := pm.Index(ip, j, c), cm.Index(ip, j, c)
					for a := 0; a < s; a++ {
						if mid[co+a] != src[po+a] {
							t.Fatalf("cats=%d: (%d,%d,%d,%d) misplaced: %v at cat-major, %v at pattern-major",
								cats, ip, j, c, a, mid[co+a], src[po+a])
						}
					}
				}
			}
		}

		// Round trip back to pattern-major must reproduce src bit for bit,
		// padding included.
		back := make([]float64, pm.Total())
		for i := range back {
			back[i] = pad
		}
		for ip := range parts {
			ConvertCLV(back, pm, mid, cm, ip)
		}
		for i := range src {
			if back[i] != src[i] {
				t.Fatalf("cats=%d: round trip differs at %d: %v != %v", cats, i, back[i], src[i])
			}
		}
	}
}

// TestLayoutGeometry pins the stride/alignment contract both kernels assume:
// every partition base (CLV and sumtable) and every cat-major category plane
// starts on an 8-float (64-byte) boundary, pattern-major strides reproduce
// the seed's base + j·(cats·s) + c·s arithmetic, and the sumtable geometry is
// pattern-major under both layouts.
func TestLayoutGeometry(t *testing.T) {
	parts := layoutFixtureParts(t)
	cats := 4
	pm := newCLVLayout(parts, cats, LayoutPatternMajor)
	cm := newCLVLayout(parts, cats, LayoutCatMajor)
	if pm.Kind() != LayoutPatternMajor || cm.Kind() != LayoutCatMajor {
		t.Fatalf("kinds %v/%v", pm.Kind(), cm.Kind())
	}
	for ip, p := range parts {
		s := p.Type.States()
		for _, l := range []*CLVLayout{pm, cm} {
			if l.Base(ip)%alignFloatCount != 0 {
				t.Errorf("%v: partition %d base %d not 64-byte aligned", l.Kind(), ip, l.Base(ip))
			}
			if l.sumBase[ip]%alignFloatCount != 0 {
				t.Errorf("%v: partition %d sumtable base %d not 64-byte aligned", l.Kind(), ip, l.sumBase[ip])
			}
			// Sumtable is pattern-major regardless of CLV layout.
			if got, want := l.SumIndex(ip, 3), l.sumBase[ip]+3*cats*s; got != want {
				t.Errorf("%v: partition %d SumIndex(3) = %d, want %d", l.Kind(), ip, got, want)
			}
		}
		// Pattern-major strides are the seed arithmetic.
		if pm.PatStride(ip) != cats*s || pm.CatStride(ip) != s {
			t.Errorf("pattern-major partition %d strides (%d,%d), want (%d,%d)",
				ip, pm.PatStride(ip), pm.CatStride(ip), cats*s, s)
		}
		// Cat-major planes: contiguous s-lanes per pattern, aligned plane
		// stride.
		if cm.PatStride(ip) != s {
			t.Errorf("cat-major partition %d patStride %d, want %d", ip, cm.PatStride(ip), s)
		}
		if cm.CatStride(ip)%alignFloatCount != 0 || cm.CatStride(ip) < p.PatternCount*s {
			t.Errorf("cat-major partition %d catStride %d: want aligned and ≥ %d",
				ip, cm.CatStride(ip), p.PatternCount*s)
		}
		// Index must agree with the stride formula everywhere.
		for _, l := range []*CLVLayout{pm, cm} {
			if got, want := l.Index(ip, 5, 2), l.Base(ip)+5*l.PatStride(ip)+2*l.CatStride(ip); got != want {
				t.Errorf("%v: partition %d Index(5,2) = %d, want %d", l.Kind(), ip, got, want)
			}
		}
	}
	// Sumtable totals are layout-invariant.
	if pm.SumTotal() != cm.SumTotal() {
		t.Errorf("sumtable totals differ across layouts: %d vs %d", pm.SumTotal(), cm.SumTotal())
	}
}
