// Package core implements the Phylogenetic Likelihood Kernel (PLK) itself:
// conditional likelihood vectors (CLVs) over compressed alignment patterns,
// the newview/evaluate operations of Felsenstein's pruning algorithm with
// numerical scaling, and the analytic first and second branch-length
// derivatives (sumtable scheme) that drive Newton-Raphson branch
// optimization. All pattern loops run inside parallel regions issued to a
// parallel.Executor; which patterns each worker touches is decided by a
// precomputed schedule.Schedule (cyclic by default, reproducing the paper's
// distribution, with block and cost-weighted alternatives), so the kernels
// iterate precomputed index runs rather than hard-coding a stride. Every
// public operation takes an optional per-partition activity mask, which is
// the mechanism behind both oldPAR (one active partition at a time) and
// newPAR (all non-converged partitions at once).
//
// The whole package is a deterministic scope: likelihoods must be
// bit-identical across runs and executor shapes (see DESIGN.md "Static
// analysis and enforced invariants").
//
//plk:deterministic
package core

import (
	"errors"
	"fmt"
	"time"

	"phylo/internal/alignment"
	"phylo/internal/model"
	"phylo/internal/obs"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/steal"
	"phylo/internal/tree"
)

// Scaling constants, matching RAxML: CLV entries below minLikelihood are
// multiplied by 2^256 and the per-pattern scaling exponent is incremented.
const (
	twoTo256      = 1.157920892373162e77 // 2^256
	minLikelihood = 1.0 / twoTo256
	logMinLik     = -177.445678223345993 // ln(2^-256)
)

// Engine evaluates likelihoods for one dataset on one tree. Since the
// Dataset/session split it is the *mutable, per-session* half of the kernel:
// it owns the tree, the model copies, the CLV/scaling/sumtable buffers, and
// the per-worker scratch, while everything derived from the dataset alone
// (compressed patterns, memory layout, schedules) lives in a Shared that any
// number of concurrent engines borrow read-only.
type Engine struct {
	Data   *alignment.CompressedData
	Tree   *tree.Tree
	Models []*model.Model
	Exec   parallel.Executor

	// PerPartitionBL reports whether the tree carries one branch-length slot
	// per partition (true) or a single joint slot (false).
	PerPartitionBL bool
	// Specialize enables the tip-case lookup tables (ablation switch,
	// orthogonal to the kernel backend).
	Specialize bool

	shared *Shared

	// kernels is the per-partition kernel implementation selected from the
	// shared backend and the partition's alphabet (see kernelFor); the span
	// contexts dispatch their pattern loops through it.
	kernels []KernelBackend

	holder       *ScheduleHolder //plk:holder
	sched        *schedule.Schedule
	schedVersion int64
	allMask      []bool // cached all-true partition mask (activeOrAll)

	// Work-stealing state (nil/zero unless Options.Steal): the chunked-deque
	// runtime over the pinned schedule, the session's minimum chunk size, and
	// the per-chunk partial-sum buffers the fixed-order reductions use.
	stealRT    *steal.Runtime
	minChunk   int
	evalChunk  []float64 // per-chunk evaluate partials
	derivChunk []float64 // per-chunk (d1, d2) derivative partials

	// Measurement attribution for the measured (adaptive) strategy: wall
	// seconds and processed pattern counts per (worker, partition) since the
	// last rebalance window reset. Written by worker w only inside regions,
	// read by the session goroutine between regions (the barrier orders the
	// accesses), so no locking is needed.
	measure    bool
	partSecs   [][]float64 // [worker][partition] measured seconds
	partPats   [][]float64 // [worker][partition] processed pattern count
	rebalances int
	// smoothed is the decay-weighted running average of observed per-pattern
	// costs across rebalance windows (see RebalanceNow): one noisy window can
	// only move a span's cost by the decay fraction, so it cannot thrash the
	// pack, while a persistent shift still converges geometrically.
	smoothed schedule.PartitionCosts

	numCats  int
	maxS     int
	layout   *CLVLayout // borrowed from shared: CLV/sumtable geometry
	clvs     [][]float64
	scales   [][]int32 // per inner node, per global pattern
	sumtable []float64 // branch-derivative workspace (always pattern-major)

	evalPartials  [][]float64 // per worker: per-partition lnL partials
	derivPartials [][]float64 // per worker: per-partition (d1, d2) partials

	// Batched-replicate state (see internal/core/batch.go): an optional
	// single-vector weight override for the unbatched reductions, the
	// per-worker R-wide partial buffers, and the per-chunk R-wide partial
	// buffers of the work-stealing reductions. The batch buffers are sized
	// lazily to the widest WeightSet the session has run.
	weightOverride    []float64
	batchEvalPartials [][]float64 // per worker: [partition*R + r] lnL partials
	batchDerivParts   [][]float64 // per worker: [partition*2R + 2r(+1)] partials
	batchEvalChunk    []float64   // steal path: [chunk*R + r] partials
	batchDerivChunk   []float64   // steal path: [chunk*2R + 2r(+1)] partials

	pmScratch  [][2][]float64 // per worker: two P-matrix buffers (cats x s x s)
	exScratch  [][]float64    // per worker: exponential/derivative tables (3 x cats x s)
	tipScratch [][2][]float64 // per worker: two tip lookup tables (codes x cats x s)

	// smallScratch is the fused backend's per-worker scaling-flag scratch
	// (one bool per pattern of the widest partition); nil on other backends.
	smallScratch [][]bool

	// Observability handles (nil unless Options.Metrics): engine-level
	// counters updated between regions — rebalance count, measured/predicted
	// imbalance around each rebalance, live batch width. Region- and
	// kernel-level families are folded by the executor's RegionObserver, not
	// here.
	obsRebalances *obs.Counter
	obsImbBefore  *obs.Gauge
	obsImbAfter   *obs.Gauge
	obsBatchWidth *obs.Gauge
	tracer        *obs.Tracer
}

// Options configures engine construction.
type Options struct {
	// Specialize enables the tip-case lookup tables (default true via New).
	Specialize bool
	// Backend selects the kernel backend. The zero value (BackendAuto)
	// adopts the shared state's backend; a non-auto value must match it —
	// the backend fixes the CLV layout, which is shared property (New
	// resolves it when building its own Shared).
	Backend Backend
	// Schedule selects the pattern-to-worker assignment strategy. The zero
	// value is schedule.Cyclic, the paper's distribution; schedule.Block is
	// the contiguous ablation; schedule.Weighted LPT-bin-packs patterns by
	// per-pattern op cost (see internal/schedule).
	Schedule schedule.Strategy
	// Steal switches the session to chunked work-stealing execution: the
	// schedule's assignment is sliced into per-worker deques of chunks and a
	// worker that drains its deque steals the largest remaining half from
	// the costliest victim, bounding intra-region tail latency that no
	// precomputed assignment can see. Reductions run over per-chunk partials
	// in fixed chunk order, so likelihoods and derivatives are bit-for-bit
	// identical with stealing on or off (see internal/core/chunkexec.go).
	Steal bool
	// MinChunk is the minimum stealable chunk size in patterns (0 selects
	// steal.DefaultMinChunk). Only meaningful with Steal.
	MinChunk int
	// Metrics, when non-nil, receives the engine-level observability
	// families (rebalances, rebalance imbalance before/after, batch width).
	// Region/kernel/steal families come from the executor's RegionObserver,
	// which the facade attaches to the same registry.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives engine lifecycle instants (rebalance
	// swaps); per-worker region spans come from the RegionObserver.
	Tracer *obs.Tracer
}

// New builds a standalone engine: session-independent state is computed on
// the spot and not shared with anyone. models must have one entry per
// partition with matching data types and a common category count; the tree
// must carry either one branch-length slot (joint estimate) or one per
// partition. Callers that run several sessions over one dataset should call
// NewShared once and NewSession per session instead.
func New(data *alignment.CompressedData, tr *tree.Tree, models []*model.Model, exec parallel.Executor, opts Options) (*Engine, error) {
	if data == nil || tr == nil || exec == nil {
		return nil, errors.New("core: nil dataset, tree, or executor")
	}
	if len(models) == 0 {
		return nil, errors.New("core: no models")
	}
	sh, err := NewSharedWith(data, models[0].NumCats, exec.Threads(), opts.Backend)
	if err != nil {
		return nil, err
	}
	return NewSession(sh, tr, models, exec, opts)
}

// NewSession builds a session engine over precomputed shared state: it
// validates the session's tree, models, and executor against the dataset and
// allocates only the per-session mutable buffers (CLVs, scaling vectors,
// sumtable, per-worker partials and scratch). Any number of sessions may run
// concurrently over one Shared as long as each has its own executor (or a
// PoolSession view of a shared pool).
func NewSession(sh *Shared, tr *tree.Tree, models []*model.Model, exec parallel.Executor, opts Options) (*Engine, error) {
	if sh == nil || tr == nil || exec == nil {
		return nil, errors.New("core: nil shared state, tree, or executor")
	}
	data := sh.Data
	if len(models) != len(data.Parts) {
		return nil, fmt.Errorf("core: %d models for %d partitions", len(models), len(data.Parts))
	}
	if tr.NumTips() != data.NumTaxa() {
		return nil, fmt.Errorf("core: tree has %d tips, data %d taxa", tr.NumTips(), data.NumTaxa())
	}
	if exec.Threads() != sh.Threads {
		return nil, fmt.Errorf("core: executor has %d workers, shared schedules are for %d", exec.Threads(), sh.Threads)
	}
	for i, m := range models {
		if m.Type != data.Parts[i].Type {
			return nil, fmt.Errorf("core: model %d type %v != partition type %v", i, m.Type, data.Parts[i].Type)
		}
		if m.NumCats != sh.NumCats {
			return nil, fmt.Errorf("core: model %d has %d categories, want %d", i, m.NumCats, sh.NumCats)
		}
		if m.Dirty() {
			return nil, fmt.Errorf("core: model %d has a stale eigendecomposition", i)
		}
	}
	perPart := false
	switch tr.ZSlots {
	case 1:
	case len(data.Parts):
		perPart = len(data.Parts) > 1
	default:
		return nil, fmt.Errorf("core: tree has %d branch-length slots; want 1 or %d", tr.ZSlots, len(data.Parts))
	}
	if opts.Backend != BackendAuto && opts.Backend != sh.Backend {
		return nil, fmt.Errorf("core: session requests %v backend, shared state was built for %v", opts.Backend, sh.Backend)
	}
	holder, err := sh.HolderFor(opts.Schedule)
	if err != nil {
		return nil, err
	}
	sched, version := holder.Current()
	e := &Engine{
		Data:           data,
		Tree:           tr,
		Models:         models,
		Exec:           exec,
		PerPartitionBL: perPart,
		Specialize:     opts.Specialize,
		shared:         sh,
		holder:         holder,
		sched:          sched,
		schedVersion:   version,
		measure:        opts.Schedule == schedule.Measured,
		minChunk:       opts.MinChunk,
		numCats:        sh.NumCats,
		maxS:           sh.maxS,
		layout:         sh.layout,
		tracer:         opts.Tracer,
	}
	if opts.Metrics != nil {
		reg := opts.Metrics
		e.obsRebalances = reg.Counter("plk_rebalances_total",
			"Measured-strategy schedule rebuilds performed.")
		e.obsImbBefore = reg.Gauge("plk_rebalance_imbalance",
			"Worker-time imbalance around the most recent rebalance: measured max/avg before, predicted pack imbalance after.",
			obs.Label{Key: "phase", Value: "before"})
		e.obsImbAfter = reg.Gauge("plk_rebalance_imbalance",
			"Worker-time imbalance around the most recent rebalance: measured max/avg before, predicted pack imbalance after.",
			obs.Label{Key: "phase", Value: "after"})
		e.obsBatchWidth = reg.Gauge("plk_batch_width",
			"Replicate lanes (R) of the most recent batched likelihood evaluation.")
	}
	e.kernels = make([]KernelBackend, len(data.Parts))
	for ip, p := range data.Parts {
		e.kernels[ip] = kernelFor(sh.Backend, p.Type, sh.NumCats)
	}
	e.allMask = make([]bool, len(data.Parts))
	for i := range e.allMask {
		e.allMask[i] = true
	}
	if opts.Steal {
		e.stealRT = steal.NewRuntime(e.stealLayoutFor())
	}
	nInner := tr.NumInner()
	e.clvs = make([][]float64, nInner)
	e.scales = make([][]int32, nInner)
	for i := range e.clvs {
		e.clvs[i] = alignedFloats(sh.layout.Total())
		e.scales[i] = make([]int32, data.TotalPatterns)
	}
	e.sumtable = alignedFloats(sh.layout.SumTotal())
	if e.measure {
		e.partSecs = make([][]float64, sh.Threads)
		e.partPats = make([][]float64, sh.Threads)
		for w := range e.partSecs {
			e.partSecs[w] = make([]float64, len(data.Parts))
			e.partPats[w] = make([]float64, len(data.Parts))
		}
	}
	t := sh.Threads
	e.evalPartials = make([][]float64, t)
	e.derivPartials = make([][]float64, t)
	e.pmScratch = make([][2][]float64, t)
	e.exScratch = make([][]float64, t)
	e.tipScratch = make([][2][]float64, t)
	for w := 0; w < t; w++ {
		e.evalPartials[w] = make([]float64, len(data.Parts))
		e.derivPartials[w] = make([]float64, 2*len(data.Parts))
		e.pmScratch[w] = [2][]float64{
			alignedFloats(sh.NumCats * e.maxS * e.maxS),
			alignedFloats(sh.NumCats * e.maxS * e.maxS),
		}
		e.exScratch[w] = alignedFloats(3 * sh.NumCats * e.maxS)
		// One table per tip child: codes × cats × s rows cover the newview
		// and evaluate tables; the category-independent sumtable projections
		// (codes × s) reuse a prefix of the same buffers.
		e.tipScratch[w] = [2][]float64{
			alignedFloats(sh.maxCodes * sh.NumCats * e.maxS),
			alignedFloats(sh.maxCodes * sh.NumCats * e.maxS),
		}
	}
	if sh.Backend == BackendFused {
		// Per-worker "every entry tiny" flags the fused newview kernels fill
		// during their category sweeps (while the values are in registers), so
		// the scaling pass never re-reads the cold category planes.
		maxPat := 0
		for _, p := range data.Parts {
			if p.PatternCount > maxPat {
				maxPat = p.PatternCount
			}
		}
		e.smallScratch = make([][]bool, t)
		for w := 0; w < t; w++ {
			e.smallScratch[w] = make([]bool, maxPat)
		}
	}
	return e, nil
}

// Backend reports the kernel backend this session runs (never BackendAuto).
func (e *Engine) Backend() Backend { return e.shared.Backend }

// Shared exposes the session-independent state backing this engine.
func (e *Engine) Shared() *Shared { return e.shared }

// NumCats returns the Gamma category count shared by all partitions.
func (e *Engine) NumCats() int { return e.numCats }

// NumPartitions returns the partition count.
func (e *Engine) NumPartitions() int { return len(e.Data.Parts) }

// slotOf maps a partition index to its branch-length slot.
func (e *Engine) slotOf(part int) int {
	if e.PerPartitionBL {
		return part
	}
	return 0
}

// BranchSlot exposes slotOf for the optimizer packages.
func (e *Engine) BranchSlot(part int) int { return e.slotOf(part) }

// clv returns the CLV buffer of the inner node with the given node index.
func (e *Engine) clv(nodeIndex int) []float64 {
	return e.clvs[nodeIndex-e.Tree.NumTips()]
}

func (e *Engine) scale(nodeIndex int) []int32 {
	return e.scales[nodeIndex-e.Tree.NumTips()]
}

// Schedule exposes the session's currently pinned pattern-to-worker
// assignment (for tests, benchmarks, and tooling that reports per-worker
// load predictions).
func (e *Engine) Schedule() *schedule.Schedule { return e.sched }

// refreshSchedule re-pins the holder's current schedule if a rebalance
// published a newer version. It is called at the start of every
// region-issuing entry point — the region boundary — and only ever from the
// session goroutine, so the pinned schedule is stable for the whole region
// and workers never observe a swap mid-region. For static strategies the
// version never changes and this is one atomic load.
//
// On a steal-enabled session a schedule swap also rebuilds the chunk layout,
// and ordering matters: the steal runtime is quiesced (Install panics on an
// in-flight region) *before* the rebuilt schedule is pinned, so workers can
// never hold chunk ids from one layout while the engine reduces partials
// sized for another. Rebalances and regions are both issued from the session
// goroutine, which makes the quiesce a cheap invariant check rather than a
// wait — the regression test runs adaptive rebalancing and stealing
// concurrently under the race detector to keep it that way.
func (e *Engine) refreshSchedule() {
	sched, version := e.holder.Current()
	if version != e.schedVersion {
		e.sched = sched
		e.schedVersion = version
		if e.stealRT != nil {
			e.stealRT.Install(e.stealLayoutFor())
		}
	}
}

// workRuns returns worker w's share of partition ip as strided [Lo, Hi)
// global pattern index runs, ascending. An empty slice means the worker has
// no work in this partition and must skip it entirely (no P-matrix setup, no
// op accounting), so idle workers record zero ops.
func (e *Engine) workRuns(w, ip int) []schedule.Run {
	return e.sched.SpanRuns(w, ip)
}

// activeOrAll returns the cached all-true mask when active is nil. Callers
// treat the mask as read-only; the cache removes a per-region allocation
// from the hottest path (every Evaluate/Traverse/PrepareSumtable call).
func (e *Engine) activeOrAll(active []bool) []bool {
	if active != nil {
		return active
	}
	return e.allMask
}

// chargePartition attributes the monotonic wall time since t0 and the
// worker's current pattern share to the (worker, partition) sample cell.
// Kernel region loops call it right after a partition's work when e.measure
// is set — two clock reads per (region, step, partition, worker), paid only
// by measured-strategy sessions.
func (e *Engine) chargePartition(w, ip int, t0 time.Time) {
	e.partSecs[w][ip] += time.Since(t0).Seconds() //plk:allow(timenow) measured-cost attribution; never feeds likelihood values
	e.partPats[w][ip] += float64(runsPatternCount(e.workRuns(w, ip)))
}

// ObservedCosts derives per-partition per-pattern costs (seconds per
// pattern) from the measurement window accumulated since the last reset.
// Partitions with no processed patterns yet report zero, which Rebalance
// treats as "keep the prior cost".
func (e *Engine) ObservedCosts() schedule.PartitionCosts {
	out := make(schedule.PartitionCosts, len(e.Data.Parts))
	if !e.measure {
		return out
	}
	for ip := range out {
		secs, pats := 0.0, 0.0
		for w := range e.partSecs {
			secs += e.partSecs[w][ip]
			pats += e.partPats[w][ip]
		}
		if pats > 0 && secs > 0 {
			out[ip] = secs / pats
		}
	}
	return out
}

// MeasuredImbalance is the max/avg ratio of the per-worker measured seconds
// in the current window (1.0 = perfect balance, 1.0 when nothing has been
// measured). This is the feedback signal the hysteresis threshold gates on.
func (e *Engine) MeasuredImbalance() float64 {
	if !e.measure {
		return 1
	}
	max, sum := 0.0, 0.0
	for w := range e.partSecs {
		wt := 0.0
		for _, s := range e.partSecs[w] {
			wt += s
		}
		sum += wt
		if wt > max {
			max = wt
		}
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(len(e.partSecs)))
}

// measuredWindowSeconds is the total measured time in the current window.
func (e *Engine) measuredWindowSeconds() float64 {
	total := 0.0
	for w := range e.partSecs {
		for _, s := range e.partSecs[w] {
			total += s
		}
	}
	return total
}

// ResetMeasurements clears the (worker, partition) sample window. Call it
// after a rebalance so the next window measures the new assignment, not a
// blend. Must be called between regions.
func (e *Engine) ResetMeasurements() {
	for w := range e.partSecs {
		for ip := range e.partSecs[w] {
			e.partSecs[w][ip] = 0
			e.partPats[w][ip] = 0
		}
	}
}

// minRebalanceWindowSeconds is the measurement floor below which
// MaybeRebalance refuses to act: windows shorter than this are dominated by
// timer granularity and scheduling noise rather than kernel cost.
const minRebalanceWindowSeconds = 5e-4

// DefaultRebalanceThreshold is the hysteresis default: rebuild only when the
// measured max/avg worker-time ratio exceeds 1.1x.
const DefaultRebalanceThreshold = 1.1

// DefaultCostDecay is the EWMA weight a new measurement window carries when
// observed per-pattern costs are folded into the running average that prices
// rebuilt schedules: cost' = decay*observed + (1-decay)*prior. At 0.5 a
// single corrupted window (a descheduled worker, a timer hiccup) can at most
// halve or double-weight a span, and two consecutive honest windows restore
// 75% of any error — fast enough to track real drift, damped enough not to
// thrash the pack.
const DefaultCostDecay = 0.5

// MaybeRebalance closes the feedback loop for a measured-strategy session:
// if the current window's measured worker-time imbalance exceeds the
// hysteresis threshold (and the window is long enough to trust), it derives
// observed per-pattern costs, publishes a rebuilt schedule through the
// shared holder, adopts it immediately, and resets the window. It returns
// whether a rebalance happened. threshold <= 1 selects
// DefaultRebalanceThreshold. Must be called between regions (the optimizers
// call it at round boundaries); sessions on static strategies return false.
func (e *Engine) MaybeRebalance(threshold float64) (bool, error) {
	if !e.measure {
		return false, nil
	}
	if threshold <= 1 {
		threshold = DefaultRebalanceThreshold
	}
	if e.measuredWindowSeconds() < minRebalanceWindowSeconds {
		return false, nil
	}
	if e.MeasuredImbalance() <= threshold {
		return false, nil
	}
	if err := e.RebalanceNow(); err != nil {
		return false, err
	}
	return true, nil
}

// RebalanceNow unconditionally rebuilds the measured schedule from the
// observed costs (keeping prior costs for partitions without samples),
// publishes it, adopts it, and resets the window. The current window is
// first folded into the session's decay-weighted running cost average
// (MergeEWMA at DefaultCostDecay), so the pack is priced by the smoothed
// history rather than by whatever the last window happened to measure — the
// very first window passes through undamped (there is no prior to smooth
// toward). Must be called between regions.
func (e *Engine) RebalanceNow() error {
	if !e.measure {
		return errors.New("core: RebalanceNow on a session without the measured schedule strategy")
	}
	before := e.MeasuredImbalance()
	e.smoothed = e.smoothed.MergeEWMA(e.ObservedCosts(), DefaultCostDecay)
	if _, err := e.shared.RebalanceMeasured(e.smoothed); err != nil {
		return err
	}
	e.refreshSchedule()
	e.ResetMeasurements()
	e.rebalances++
	after := e.sched.Imbalance()
	if e.obsRebalances != nil {
		e.obsRebalances.Inc()
		e.obsImbBefore.Set(before)
		e.obsImbAfter.Set(after)
	}
	e.tracer.Instant("rebalance", "schedule", -1,
		obs.Arg{Key: "imbalance_before", Value: before},
		obs.Arg{Key: "imbalance_after", Value: after})
	return nil
}

// SmoothedCosts returns the session's decay-weighted per-pattern cost
// average (nil before the first rebalance).
func (e *Engine) SmoothedCosts() schedule.PartitionCosts {
	return append(schedule.PartitionCosts(nil), e.smoothed...)
}

// Rebalances reports how many times this session rebuilt the measured
// schedule.
func (e *Engine) Rebalances() int { return e.rebalances }

// InvalidateCLVs clears all CLV orientations, forcing the next traversal to
// recompute everything (used after wholesale model changes).
func (e *Engine) InvalidateCLVs() { e.Tree.ClearX() }

// LogLikelihood runs a full traversal to the canonical virtual root (the
// branch at tip 0) and evaluates the total log likelihood over all
// partitions. It is the plain "compute the score of this tree" entry point.
func (e *Engine) LogLikelihood() float64 {
	root := e.Tree.Tips[0].Back
	e.Traverse(root, false, nil)
	total, _ := e.Evaluate(root, nil)
	return total
}

// PartitionLogLikelihoods evaluates per-partition log likelihoods at the
// canonical root after a full traversal.
func (e *Engine) PartitionLogLikelihoods() (float64, []float64) {
	root := e.Tree.Tips[0].Back
	e.Traverse(root, false, nil)
	return e.Evaluate(root, nil)
}
