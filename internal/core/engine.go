// Package core implements the Phylogenetic Likelihood Kernel (PLK) itself:
// conditional likelihood vectors (CLVs) over compressed alignment patterns,
// the newview/evaluate operations of Felsenstein's pruning algorithm with
// numerical scaling, and the analytic first and second branch-length
// derivatives (sumtable scheme) that drive Newton-Raphson branch
// optimization. All pattern loops run inside parallel regions issued to a
// parallel.Executor; which patterns each worker touches is decided by a
// precomputed schedule.Schedule (cyclic by default, reproducing the paper's
// distribution, with block and cost-weighted alternatives), so the kernels
// iterate precomputed index runs rather than hard-coding a stride. Every
// public operation takes an optional per-partition activity mask, which is
// the mechanism behind both oldPAR (one active partition at a time) and
// newPAR (all non-converged partitions at once).
package core

import (
	"errors"
	"fmt"

	"phylo/internal/alignment"
	"phylo/internal/model"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/tree"
)

// Scaling constants, matching RAxML: CLV entries below minLikelihood are
// multiplied by 2^256 and the per-pattern scaling exponent is incremented.
const (
	twoTo256      = 1.157920892373162e77 // 2^256
	minLikelihood = 1.0 / twoTo256
	logMinLik     = -177.445678223345993 // ln(2^-256)
)

// Engine evaluates likelihoods for one dataset on one tree. Since the
// Dataset/session split it is the *mutable, per-session* half of the kernel:
// it owns the tree, the model copies, the CLV/scaling/sumtable buffers, and
// the per-worker scratch, while everything derived from the dataset alone
// (compressed patterns, memory layout, schedules) lives in a Shared that any
// number of concurrent engines borrow read-only.
type Engine struct {
	Data   *alignment.CompressedData
	Tree   *tree.Tree
	Models []*model.Model
	Exec   parallel.Executor

	// PerPartitionBL reports whether the tree carries one branch-length slot
	// per partition (true) or a single joint slot (false).
	PerPartitionBL bool
	// Specialize enables the unrolled 4-state DNA kernels (ablation switch).
	Specialize bool

	shared *Shared

	sched    *schedule.Schedule
	numCats  int
	maxS     int
	clvBase  []int // borrowed from shared: per-partition CLV offsets
	clvLen   int   // total CLV floats per inner node
	clvs     [][]float64
	scales   [][]int32 // per inner node, per global pattern
	sumtable []float64 // branch-derivative workspace, patterns x cats x maxS
	sumBase  []int     // borrowed from shared: per-partition sumtable offsets

	evalPartials  [][]float64 // per worker: per-partition lnL partials
	derivPartials [][]float64 // per worker: per-partition (d1, d2) partials

	pmScratch  [][2][]float64 // per worker: two P-matrix buffers (cats x s x s)
	exScratch  [][]float64    // per worker: exponential/derivative tables (3 x cats x s)
	tipScratch [][2][]float64 // per worker: two tip lookup tables (codes x cats x s)
}

// Options configures engine construction.
type Options struct {
	// Specialize enables the unrolled DNA kernels (default true via New).
	Specialize bool
	// Schedule selects the pattern-to-worker assignment strategy. The zero
	// value is schedule.Cyclic, the paper's distribution; schedule.Block is
	// the contiguous ablation; schedule.Weighted LPT-bin-packs patterns by
	// per-pattern op cost (see internal/schedule).
	Schedule schedule.Strategy
}

// New builds a standalone engine: session-independent state is computed on
// the spot and not shared with anyone. models must have one entry per
// partition with matching data types and a common category count; the tree
// must carry either one branch-length slot (joint estimate) or one per
// partition. Callers that run several sessions over one dataset should call
// NewShared once and NewSession per session instead.
func New(data *alignment.CompressedData, tr *tree.Tree, models []*model.Model, exec parallel.Executor, opts Options) (*Engine, error) {
	if data == nil || tr == nil || exec == nil {
		return nil, errors.New("core: nil dataset, tree, or executor")
	}
	if len(models) == 0 {
		return nil, errors.New("core: no models")
	}
	sh, err := NewShared(data, models[0].NumCats, exec.Threads())
	if err != nil {
		return nil, err
	}
	return NewSession(sh, tr, models, exec, opts)
}

// NewSession builds a session engine over precomputed shared state: it
// validates the session's tree, models, and executor against the dataset and
// allocates only the per-session mutable buffers (CLVs, scaling vectors,
// sumtable, per-worker partials and scratch). Any number of sessions may run
// concurrently over one Shared as long as each has its own executor (or a
// PoolSession view of a shared pool).
func NewSession(sh *Shared, tr *tree.Tree, models []*model.Model, exec parallel.Executor, opts Options) (*Engine, error) {
	if sh == nil || tr == nil || exec == nil {
		return nil, errors.New("core: nil shared state, tree, or executor")
	}
	data := sh.Data
	if len(models) != len(data.Parts) {
		return nil, fmt.Errorf("core: %d models for %d partitions", len(models), len(data.Parts))
	}
	if tr.NumTips() != data.NumTaxa() {
		return nil, fmt.Errorf("core: tree has %d tips, data %d taxa", tr.NumTips(), data.NumTaxa())
	}
	if exec.Threads() != sh.Threads {
		return nil, fmt.Errorf("core: executor has %d workers, shared schedules are for %d", exec.Threads(), sh.Threads)
	}
	for i, m := range models {
		if m.Type != data.Parts[i].Type {
			return nil, fmt.Errorf("core: model %d type %v != partition type %v", i, m.Type, data.Parts[i].Type)
		}
		if m.NumCats != sh.NumCats {
			return nil, fmt.Errorf("core: model %d has %d categories, want %d", i, m.NumCats, sh.NumCats)
		}
		if m.Dirty() {
			return nil, fmt.Errorf("core: model %d has a stale eigendecomposition", i)
		}
	}
	perPart := false
	switch tr.ZSlots {
	case 1:
	case len(data.Parts):
		perPart = len(data.Parts) > 1
	default:
		return nil, fmt.Errorf("core: tree has %d branch-length slots; want 1 or %d", tr.ZSlots, len(data.Parts))
	}
	sched, err := sh.ScheduleFor(opts.Schedule)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		Data:           data,
		Tree:           tr,
		Models:         models,
		Exec:           exec,
		PerPartitionBL: perPart,
		Specialize:     opts.Specialize,
		shared:         sh,
		sched:          sched,
		numCats:        sh.NumCats,
		maxS:           sh.maxS,
		clvBase:        sh.clvBase,
		clvLen:         sh.clvLen,
		sumBase:        sh.sumBase,
	}
	nInner := tr.NumInner()
	e.clvs = make([][]float64, nInner)
	e.scales = make([][]int32, nInner)
	for i := range e.clvs {
		e.clvs[i] = make([]float64, sh.clvLen)
		e.scales[i] = make([]int32, data.TotalPatterns)
	}
	e.sumtable = make([]float64, sh.sumLen)
	t := sh.Threads
	e.evalPartials = make([][]float64, t)
	e.derivPartials = make([][]float64, t)
	e.pmScratch = make([][2][]float64, t)
	e.exScratch = make([][]float64, t)
	e.tipScratch = make([][2][]float64, t)
	for w := 0; w < t; w++ {
		e.evalPartials[w] = make([]float64, len(data.Parts))
		e.derivPartials[w] = make([]float64, 2*len(data.Parts))
		e.pmScratch[w] = [2][]float64{
			make([]float64, sh.NumCats*e.maxS*e.maxS),
			make([]float64, sh.NumCats*e.maxS*e.maxS),
		}
		e.exScratch[w] = make([]float64, 3*sh.NumCats*e.maxS)
		// One table per tip child: codes × cats × s rows cover the newview
		// and evaluate tables; the category-independent sumtable projections
		// (codes × s) reuse a prefix of the same buffers.
		e.tipScratch[w] = [2][]float64{
			make([]float64, sh.maxCodes*sh.NumCats*e.maxS),
			make([]float64, sh.maxCodes*sh.NumCats*e.maxS),
		}
	}
	return e, nil
}

// Shared exposes the session-independent state backing this engine.
func (e *Engine) Shared() *Shared { return e.shared }

// NumCats returns the Gamma category count shared by all partitions.
func (e *Engine) NumCats() int { return e.numCats }

// NumPartitions returns the partition count.
func (e *Engine) NumPartitions() int { return len(e.Data.Parts) }

// slotOf maps a partition index to its branch-length slot.
func (e *Engine) slotOf(part int) int {
	if e.PerPartitionBL {
		return part
	}
	return 0
}

// BranchSlot exposes slotOf for the optimizer packages.
func (e *Engine) BranchSlot(part int) int { return e.slotOf(part) }

// clv returns the CLV buffer of the inner node with the given node index.
func (e *Engine) clv(nodeIndex int) []float64 {
	return e.clvs[nodeIndex-e.Tree.NumTips()]
}

func (e *Engine) scale(nodeIndex int) []int32 {
	return e.scales[nodeIndex-e.Tree.NumTips()]
}

// Schedule exposes the precomputed pattern-to-worker assignment (for tests,
// benchmarks, and tooling that reports per-worker load predictions).
func (e *Engine) Schedule() *schedule.Schedule { return e.sched }

// workRuns returns worker w's share of partition ip as strided [Lo, Hi)
// global pattern index runs, ascending. An empty slice means the worker has
// no work in this partition and must skip it entirely (no P-matrix setup, no
// op accounting), so idle workers record zero ops.
func (e *Engine) workRuns(w, ip int) []schedule.Run {
	return e.sched.SpanRuns(w, ip)
}

// activeOrAll returns an all-true mask when active is nil.
func (e *Engine) activeOrAll(active []bool) []bool {
	if active != nil {
		return active
	}
	all := make([]bool, len(e.Data.Parts))
	for i := range all {
		all[i] = true
	}
	return all
}

// InvalidateCLVs clears all CLV orientations, forcing the next traversal to
// recompute everything (used after wholesale model changes).
func (e *Engine) InvalidateCLVs() { e.Tree.ClearX() }

// LogLikelihood runs a full traversal to the canonical virtual root (the
// branch at tip 0) and evaluates the total log likelihood over all
// partitions. It is the plain "compute the score of this tree" entry point.
func (e *Engine) LogLikelihood() float64 {
	root := e.Tree.Tips[0].Back
	e.Traverse(root, false, nil)
	total, _ := e.Evaluate(root, nil)
	return total
}

// PartitionLogLikelihoods evaluates per-partition log likelihoods at the
// canonical root after a full traversal.
func (e *Engine) PartitionLogLikelihoods() (float64, []float64) {
	root := e.Tree.Tips[0].Back
	e.Traverse(root, false, nil)
	return e.Evaluate(root, nil)
}
