package parallel

import (
	"fmt"
	"strings"
)

// Stats accumulates the two quantities that determine parallel performance in
// the paper's analysis — how many synchronization events (regions/barriers)
// were issued and how much bounded-by-the-slowest work each contained — plus
// per-kind breakdowns and cumulative per-worker op totals (the direct view of
// how well the schedule's assignment balanced the run). All updates happen on
// the master side of the barrier, so no locking is needed. Workers that a
// region's assignment leaves empty contribute exactly zero ops, so idle
// workers are visible in (not hidden from) the imbalance metrics.
type Stats struct {
	Regions      int64     // total parallel regions (= barriers for T > 1)
	TotalOps     float64   // sum over regions of summed per-worker ops
	CriticalOps  float64   // sum over regions of max per-worker ops (the critical path)
	WorkerOps    []float64 // cumulative ops per worker id across all regions
	KindRegions  [numRegionKinds]int64
	KindCritical [numRegionKinds]float64
}

// record folds one region's per-worker op vector into the counters.
func (s *Stats) record(kind Region, ops []float64) {
	if kind < 0 || kind >= numRegionKinds {
		kind = RegionOther
	}
	if len(s.WorkerOps) < len(ops) {
		grown := make([]float64, len(ops))
		copy(grown, s.WorkerOps)
		s.WorkerOps = grown
	}
	maxOps, sumOps := 0.0, 0.0
	for w, o := range ops {
		s.WorkerOps[w] += o
		sumOps += o
		if o > maxOps {
			maxOps = o
		}
	}
	s.Regions++
	s.TotalOps += sumOps
	s.CriticalOps += maxOps
	s.KindRegions[kind]++
	s.KindCritical[kind] += maxOps
}

// Reset zeroes all counters.
func (s *Stats) Reset() { *s = Stats{} }

// Imbalance is the ratio of critical-path work to perfectly balanced work
// (TotalOps / T); 1.0 means perfect balance. Meaningful for T > 1.
func (s *Stats) Imbalance(threads int) float64 {
	if s.TotalOps == 0 || threads <= 0 {
		return 1
	}
	return s.CriticalOps / (s.TotalOps / float64(threads))
}

// WorkerImbalance is the max/avg ratio of the cumulative per-worker op
// totals: how unevenly the whole run's work landed on workers, independent of
// region boundaries. 1.0 means every worker did the same total work.
func (s *Stats) WorkerImbalance() float64 {
	if len(s.WorkerOps) == 0 {
		return 1
	}
	max, sum := 0.0, 0.0
	for _, o := range s.WorkerOps {
		sum += o
		if o > max {
			max = o
		}
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(len(s.WorkerOps)))
}

// String renders a compact per-kind table.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "regions=%d totalOps=%.3g criticalOps=%.3g workerImbalance=%.3f\n",
		s.Regions, s.TotalOps, s.CriticalOps, s.WorkerImbalance())
	for k := Region(0); k < numRegionKinds; k++ {
		if s.KindRegions[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-11s regions=%-10d criticalOps=%.3g\n", k.String(), s.KindRegions[k], s.KindCritical[k])
	}
	return b.String()
}
