package parallel

import (
	"fmt"
	"strings"
)

// Stats accumulates the two quantities that determine parallel performance in
// the paper's analysis — how many synchronization events (regions/barriers)
// were issued and how much bounded-by-the-slowest work each contained — plus
// per-kind breakdowns and cumulative per-worker totals (the direct view of
// how well the schedule's assignment balanced the run). Two parallel
// accountings are kept: predicted weighted operation counts (what the
// analytic cost model says the work was worth) and measured wall-clock
// seconds (what the work actually cost on this host, monotonic-clock timed
// per worker per region by the executors). The gap between the two is the
// feedback signal the measured scheduling strategy closes. All updates happen
// on the master side of the barrier, so no locking is needed. Workers that a
// region's assignment leaves empty contribute exactly zero ops and
// (near-)zero time, so idle workers are visible in (not hidden from) the
// imbalance metrics.
type Stats struct {
	Regions      int64     // total parallel regions (= barriers for T > 1)
	TotalOps     float64   // sum over regions of summed per-worker ops
	CriticalOps  float64   // sum over regions of max per-worker ops (the critical path)
	WorkerOps    []float64 // cumulative ops per worker id across all regions
	KindRegions  [numRegionKinds]int64
	KindCritical [numRegionKinds]float64

	// Measured wall-clock accounting, mirroring the op counters: per-worker
	// in-region seconds, their critical path (sum over regions of the slowest
	// worker's time), and per-kind critical time.
	TotalTime    float64   // sum over regions of summed per-worker seconds
	CriticalTime float64   // sum over regions of max per-worker seconds
	WorkerTime   []float64 // cumulative measured seconds per worker id
	KindTime     [numRegionKinds]float64

	// Work-stealing accounting (zero unless the session runs with the
	// chunked-deque runtime, internal/steal): how many steal operations each
	// worker performed and how many patterns it executed away from their
	// scheduled owner (counted once per execution, so chunks relayed through
	// thief chains are not double-counted and StolenPatterns/processed stays
	// a true fraction). High StolenPatterns relative to the patterns
	// processed means the static assignment is systematically mispriced
	// (every region redistributes the same work), not merely noisy — the
	// signal the bench gate flags.
	StealCount     float64   // total steal operations across all regions
	StolenPatterns float64   // total patterns that migrated via steals
	WorkerSteals   []float64 // cumulative steal operations per worker id
	WorkerStolen   []float64 // cumulative stolen patterns per worker id
}

// record folds one region's per-worker op and wall-time vectors into the
// counters. times may be nil (no measurement available); steals and stolen
// (per-worker steal operations and stolen pattern counts) may likewise be
// nil; all non-nil vectors are parallel to ops.
func (s *Stats) record(kind Region, ops, times, steals, stolen []float64) {
	if kind < 0 || kind >= numRegionKinds {
		kind = RegionOther
	}
	if len(s.WorkerOps) < len(ops) {
		grown := make([]float64, len(ops))
		copy(grown, s.WorkerOps)
		s.WorkerOps = grown
	}
	maxOps, sumOps := 0.0, 0.0
	for w, o := range ops {
		s.WorkerOps[w] += o
		sumOps += o
		if o > maxOps {
			maxOps = o
		}
	}
	s.Regions++
	s.TotalOps += sumOps
	s.CriticalOps += maxOps
	s.KindRegions[kind]++
	s.KindCritical[kind] += maxOps
	if times != nil {
		if len(s.WorkerTime) < len(times) {
			grown := make([]float64, len(times))
			copy(grown, s.WorkerTime)
			s.WorkerTime = grown
		}
		maxT, sumT := 0.0, 0.0
		for w, t := range times {
			s.WorkerTime[w] += t
			sumT += t
			if t > maxT {
				maxT = t
			}
		}
		s.TotalTime += sumT
		s.CriticalTime += maxT
		s.KindTime[kind] += maxT
	}
	if steals != nil {
		if len(s.WorkerSteals) < len(steals) {
			grown := make([]float64, len(steals))
			copy(grown, s.WorkerSteals)
			s.WorkerSteals = grown
		}
		for w, n := range steals {
			s.WorkerSteals[w] += n
			s.StealCount += n
		}
	}
	if stolen != nil {
		if len(s.WorkerStolen) < len(stolen) {
			grown := make([]float64, len(stolen))
			copy(grown, s.WorkerStolen)
			s.WorkerStolen = grown
		}
		for w, n := range stolen {
			s.WorkerStolen[w] += n
			s.StolenPatterns += n
		}
	}
}

// Reset zeroes all counters.
func (s *Stats) Reset() { *s = Stats{} }

// Imbalance is the ratio of critical-path work to perfectly balanced work
// (TotalOps / T); 1.0 means perfect balance. Meaningful for T > 1.
func (s *Stats) Imbalance(threads int) float64 {
	if s.TotalOps == 0 || threads <= 0 {
		return 1
	}
	return s.CriticalOps / (s.TotalOps / float64(threads))
}

// maxAvgRatio returns max/avg of a per-worker vector, 1 when degenerate.
func maxAvgRatio(v []float64) float64 {
	if len(v) == 0 {
		return 1
	}
	max, sum := 0.0, 0.0
	for _, x := range v {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(len(v)))
}

// WorkerImbalance is the max/avg ratio of the cumulative per-worker op
// totals: how unevenly the whole run's work landed on workers, independent of
// region boundaries. 1.0 means every worker did the same total work.
func (s *Stats) WorkerImbalance() float64 { return maxAvgRatio(s.WorkerOps) }

// TimeImbalance is the max/avg ratio of the cumulative per-worker measured
// wall-clock seconds — the observed analogue of WorkerImbalance. Where
// WorkerImbalance prices the run with the analytic op model, TimeImbalance
// reports what the host actually did; a gap between the two means the model
// mispriced the patterns (tip tables, cache effects, a noisy machine), which
// is exactly the signal the measured scheduling strategy rebalances on.
func (s *Stats) TimeImbalance() float64 { return maxAvgRatio(s.WorkerTime) }

// String renders a compact per-kind table.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "regions=%d totalOps=%.3g criticalOps=%.3g workerImbalance=%.3f timeImbalance=%.3f\n",
		s.Regions, s.TotalOps, s.CriticalOps, s.WorkerImbalance(), s.TimeImbalance())
	if s.StealCount > 0 {
		fmt.Fprintf(&b, "  steals=%.0f stolenPatterns=%.0f\n", s.StealCount, s.StolenPatterns)
	}
	for k := Region(0); k < numRegionKinds; k++ {
		if s.KindRegions[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-11s regions=%-10d criticalOps=%.3g criticalTime=%.3gs\n",
			k.String(), s.KindRegions[k], s.KindCritical[k], s.KindTime[k])
	}
	return b.String()
}
