package parallel

import (
	"fmt"
	"strings"
)

// Stats accumulates the two quantities that determine parallel performance in
// the paper's analysis — how many synchronization events (regions/barriers)
// were issued and how much bounded-by-the-slowest work each contained — plus
// per-kind breakdowns. All updates happen on the master side of the barrier,
// so no locking is needed.
type Stats struct {
	Regions      int64   // total parallel regions (= barriers for T > 1)
	TotalOps     float64 // sum over regions of summed per-worker ops
	CriticalOps  float64 // sum over regions of max per-worker ops (the critical path)
	KindRegions  [numRegionKinds]int64
	KindCritical [numRegionKinds]float64
}

func (s *Stats) record(kind Region, maxOps, sumOps float64) {
	if kind < 0 || kind >= numRegionKinds {
		kind = RegionOther
	}
	s.Regions++
	s.TotalOps += sumOps
	s.CriticalOps += maxOps
	s.KindRegions[kind]++
	s.KindCritical[kind] += maxOps
}

// Reset zeroes all counters.
func (s *Stats) Reset() { *s = Stats{} }

// Imbalance is the ratio of critical-path work to perfectly balanced work
// (TotalOps / T); 1.0 means perfect balance. Meaningful for T > 1.
func (s *Stats) Imbalance(threads int) float64 {
	if s.TotalOps == 0 || threads <= 0 {
		return 1
	}
	return s.CriticalOps / (s.TotalOps / float64(threads))
}

// String renders a compact per-kind table.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "regions=%d totalOps=%.3g criticalOps=%.3g\n", s.Regions, s.TotalOps, s.CriticalOps)
	for k := Region(0); k < numRegionKinds; k++ {
		if s.KindRegions[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-11s regions=%-10d criticalOps=%.3g\n", k.String(), s.KindRegions[k], s.KindCritical[k])
	}
	return b.String()
}
