package parallel

import (
	"testing"
	"unsafe"
)

// TestWorkerCtxPadding pins the anti-false-sharing layout: WorkerCtx must
// occupy a whole number of cache-line *pairs* (128 bytes), so that adjacent
// entries of a []WorkerCtx — written concurrently by different workers —
// never share a line even under 8-byte slice alignment and the adjacent-line
// prefetcher.
func TestWorkerCtxPadding(t *testing.T) {
	if size := unsafe.Sizeof(WorkerCtx{}); size != 128 {
		t.Errorf("WorkerCtx size = %d bytes, want 128 (two cache lines)", size)
	}
}

// spinOps burns a deterministic amount of CPU so measured region times are
// reliably positive for busy workers.
func spinOps(n int) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		s += float64(i%7) * 1.000001
	}
	return s
}

// TestExecutorTimingParity is the satellite parity check: Pool, PoolSession,
// and Sim must record identical op statistics for the same deterministic
// workload, and their measured time statistics must be sane — non-negative
// per-worker seconds, cumulative totals monotone over regions, and critical
// time at least the per-worker maximum's share.
func TestExecutorTimingParity(t *testing.T) {
	const threads = 4
	const regions = 5
	burn := make([]float64, threads*16) // padded per-worker sinks (workers run concurrently)
	workload := func(region int) func(w int, ctx *WorkerCtx) {
		return func(w int, ctx *WorkerCtx) {
			burn[w*16] += spinOps(2000 * (w + 1))
			ctx.Ops += float64((region + 1) * 10 * (w + 1))
		}
	}

	pool, err := NewPool(threads)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sess := pool.Session()
	defer sess.Close()
	sim, err := NewSim(threads)
	if err != nil {
		t.Fatal(err)
	}

	execs := map[string]Executor{"pool": pool, "session": sess, "sim": sim}
	// Interleave so the pool aggregate is polluted by the session (it should
	// be: it records both) but the session and sim views stay private. Track
	// per-executor cumulative time snapshots for the monotonicity check.
	prevTime := map[string][]float64{}
	for r := 0; r < regions; r++ {
		kind := Region(r % int(numRegionKinds))
		for name, ex := range execs {
			if name == "pool" {
				continue // direct pool runs would double-count into itself only
			}
			ex.Run(kind, workload(r))
			st := ex.Stats()
			for w, cum := range st.WorkerTime {
				if cum < 0 {
					t.Fatalf("%s worker %d cumulative time %v < 0", name, w, cum)
				}
				if prev := prevTime[name]; w < len(prev) && cum < prev[w] {
					t.Fatalf("%s worker %d cumulative time decreased: %v -> %v", name, w, prev[w], cum)
				}
			}
			prevTime[name] = append([]float64(nil), st.WorkerTime...)
		}
	}
	_ = burn

	sessSt, simSt := sess.Stats(), sim.Stats()
	if sessSt.Regions != simSt.Regions || sessSt.Regions != regions {
		t.Fatalf("region counts differ: session %d, sim %d, want %d", sessSt.Regions, simSt.Regions, regions)
	}
	if sessSt.TotalOps != simSt.TotalOps || sessSt.CriticalOps != simSt.CriticalOps {
		t.Errorf("op totals differ: session (%v, %v) vs sim (%v, %v)",
			sessSt.TotalOps, sessSt.CriticalOps, simSt.TotalOps, simSt.CriticalOps)
	}
	for w := 0; w < threads; w++ {
		if sessSt.WorkerOps[w] != simSt.WorkerOps[w] {
			t.Errorf("worker %d ops differ: session %v, sim %v", w, sessSt.WorkerOps[w], simSt.WorkerOps[w])
		}
	}
	for k := Region(0); k < numRegionKinds; k++ {
		if sessSt.KindRegions[k] != simSt.KindRegions[k] || sessSt.KindCritical[k] != simSt.KindCritical[k] {
			t.Errorf("kind %v accounting differs: session (%d, %v) vs sim (%d, %v)",
				k, sessSt.KindRegions[k], sessSt.KindCritical[k], simSt.KindRegions[k], simSt.KindCritical[k])
		}
	}
	// The pool aggregate saw exactly the session's regions (sim is private).
	if pool.Stats().Regions != regions {
		t.Errorf("pool aggregate regions = %d, want %d", pool.Stats().Regions, regions)
	}
	for _, st := range []*Stats{sessSt, simSt} {
		if len(st.WorkerTime) != threads {
			t.Fatalf("WorkerTime has %d entries, want %d", len(st.WorkerTime), threads)
		}
		if st.TotalTime <= 0 || st.CriticalTime <= 0 {
			t.Errorf("time totals not positive: total=%v critical=%v", st.TotalTime, st.CriticalTime)
		}
		// Critical time sums per-region maxima, so it must be at least the
		// largest cumulative per-worker time and at most the total.
		maxW := 0.0
		for _, v := range st.WorkerTime {
			if v > maxW {
				maxW = v
			}
		}
		if st.CriticalTime < maxW-1e-12 || st.CriticalTime > st.TotalTime+1e-12 {
			t.Errorf("critical time %v outside [maxWorker %v, total %v]", st.CriticalTime, maxW, st.TotalTime)
		}
		if st.TimeImbalance() < 1-1e-9 {
			t.Errorf("time imbalance %v below 1", st.TimeImbalance())
		}
	}
}
