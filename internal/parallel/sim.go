package parallel

import "time"

// Sim executes regions with T virtual workers run serially on the calling
// goroutine: the numerical results are bit-identical to a Pool run with the
// same T, while the recorded statistics (critical-path ops per region, region
// count) drive the trace-based platform model. Because virtual time is
//
//	perOp(platform, T) * CriticalOps + sync(platform, T) * Regions
//
// a *single* Sim run can be priced on every platform profile afterwards; see
// Platform.EvalSeconds.
type Sim struct {
	threads int
	ctxs    []WorkerCtx
	ops     []float64 // per-region op scratch
	times   []float64 // per-region wall-time scratch (seconds)
	steals  []float64 // per-region steal-count scratch
	stolen  []float64 // per-region stolen-pattern scratch
	stats   Stats
	obs     RegionObserver
}

// NewSim returns a virtual executor with T workers.
func NewSim(threads int) (*Sim, error) {
	if threads < 1 {
		return nil, errBadThreads(threads)
	}
	s := &Sim{
		threads: threads,
		ctxs:    make([]WorkerCtx, threads),
		ops:     make([]float64, threads),
		times:   make([]float64, threads),
		steals:  make([]float64, threads),
		stolen:  make([]float64, threads),
	}
	for w := range s.ctxs {
		s.ctxs[w].Worker = w
	}
	return s, nil
}

func errBadThreads(t int) error {
	return &badThreadsError{t}
}

type badThreadsError struct{ t int }

func (e *badThreadsError) Error() string {
	return "parallel: thread count must be positive"
}

// Threads returns the virtual worker count.
func (s *Sim) Threads() int { return s.threads }

// SetObserver installs a region observer (nil detaches). Not safe to call
// concurrently with Run.
func (s *Sim) SetObserver(o RegionObserver) { s.obs = o }

// Run executes fn serially for every virtual worker. Workers whose schedule
// assignment is empty for this region record exactly zero ops (their Ops is
// reset before fn runs and nothing adds to it), so the virtual clock and the
// imbalance statistics see genuine idleness rather than stale counters. Each
// virtual worker's serial execution is wall-clock timed individually, so the
// measured per-worker seconds are an honest (contention-free) sample of that
// share's real cost on this host — the feedback the measured schedule
// strategy consumes.
func (s *Sim) Run(kind Region, fn func(w int, ctx *WorkerCtx)) {
	regionStart := time.Now()
	for w := 0; w < s.threads; w++ {
		ctx := &s.ctxs[w]
		ctx.beginRegion(false)
		start := time.Now()
		fn(w, ctx)
		ctx.Seconds = time.Since(start).Seconds()
		s.times[w] = ctx.workSeconds()
		s.ops[w] = ctx.Ops
		s.steals[w] = ctx.Steals
		s.stolen[w] = ctx.StolenPatterns
	}
	s.stats.record(kind, s.ops, s.times, s.steals, s.stolen)
	if s.obs != nil {
		s.obs.ObserveRegion(kind, regionStart, time.Since(regionStart).Seconds(), s.ctxs)
	}
}

// Stats returns accumulated instrumentation.
func (s *Sim) Stats() *Stats { return &s.stats }

// Close is a no-op.
func (s *Sim) Close() {}
