package parallel

import "time"

// Sim executes regions with T virtual workers run serially on the calling
// goroutine: the numerical results are bit-identical to a Pool run with the
// same T, while the recorded statistics (critical-path ops per region, region
// count) drive the trace-based platform model. Because virtual time is
//
//	perOp(platform, T) * CriticalOps + sync(platform, T) * Regions
//
// a *single* Sim run can be priced on every platform profile afterwards; see
// Platform.EvalSeconds.
type Sim struct {
	threads int
	ctx     WorkerCtx
	ops     []float64 // per-region op scratch
	times   []float64 // per-region wall-time scratch (seconds)
	steals  []float64 // per-region steal-count scratch
	stolen  []float64 // per-region stolen-pattern scratch
	stats   Stats
}

// NewSim returns a virtual executor with T workers.
func NewSim(threads int) (*Sim, error) {
	if threads < 1 {
		return nil, errBadThreads(threads)
	}
	return &Sim{
		threads: threads,
		ops:     make([]float64, threads),
		times:   make([]float64, threads),
		steals:  make([]float64, threads),
		stolen:  make([]float64, threads),
	}, nil
}

func errBadThreads(t int) error {
	return &badThreadsError{t}
}

type badThreadsError struct{ t int }

func (e *badThreadsError) Error() string {
	return "parallel: thread count must be positive"
}

// Threads returns the virtual worker count.
func (s *Sim) Threads() int { return s.threads }

// Run executes fn serially for every virtual worker. Workers whose schedule
// assignment is empty for this region record exactly zero ops (their Ops is
// reset before fn runs and nothing adds to it), so the virtual clock and the
// imbalance statistics see genuine idleness rather than stale counters. Each
// virtual worker's serial execution is wall-clock timed individually, so the
// measured per-worker seconds are an honest (contention-free) sample of that
// share's real cost on this host — the feedback the measured schedule
// strategy consumes.
func (s *Sim) Run(kind Region, fn func(w int, ctx *WorkerCtx)) {
	for w := 0; w < s.threads; w++ {
		s.ctx.Worker = w
		s.ctx.Ops = 0
		s.ctx.Steals = 0
		s.ctx.StolenPatterns = 0
		s.ctx.Idle = 0
		s.ctx.Concurrent = false
		start := time.Now()
		fn(w, &s.ctx)
		s.ctx.Seconds = time.Since(start).Seconds()
		s.times[w] = s.ctx.workSeconds()
		s.ops[w] = s.ctx.Ops
		s.steals[w] = s.ctx.Steals
		s.stolen[w] = s.ctx.StolenPatterns
	}
	s.stats.record(kind, s.ops, s.times, s.steals, s.stolen)
}

// Stats returns accumulated instrumentation.
func (s *Sim) Stats() *Stats { return &s.stats }

// Close is a no-op.
func (s *Sim) Close() {}
