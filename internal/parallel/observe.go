package parallel

import (
	"strconv"
	"time"

	"phylo/internal/obs"
)

// regionSecondsBuckets spans microsecond regions (tiny evaluate sweeps) to
// multi-second ones (big newview traversals at 1 thread).
var regionSecondsBuckets = []float64{
	1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 2.5, 10,
}

// spanCases are the label values for plk_kernel_spans_total, indexed the way
// MetricsCollector.ObserveRegion folds WorkerCtx span counters.
var spanCases = []string{"tip-tip", "tip-inner", "inner-inner"}

// MetricsCollector is the canonical RegionObserver: it folds the per-worker
// WorkerCtx scratch into an obs.Registry after every region barrier, and
// (when a tracer is attached) records one Chrome-trace span per worker per
// region. All metric handles are resolved at construction, so ObserveRegion
// itself performs only atomic adds — no allocation, no lock, nothing that
// perturbs the region cadence it is measuring.
//
// One collector serves one executor (its worker count fixes the handle
// tables); several collectors may share one Registry — registration is
// idempotent, so same-labeled series aggregate across datasets/sessions.
type MetricsCollector struct {
	tracer  *obs.Tracer
	threads int

	regions       [numRegionKinds]*obs.Counter
	regionSecs    [numRegionKinds]*obs.Histogram
	workerSecs    [numRegionKinds]*obs.Histogram
	busySecs      []*obs.Counter // per worker
	idleSecs      []*obs.Counter // per worker
	workerOps     []*obs.Counter // per worker
	steals        []*obs.Counter // per worker
	stolen        *obs.Counter
	stealRaces    *obs.Counter
	patterns      *obs.Counter
	spans         [3]*obs.Counter // by spanCases
	scalingEvents *obs.Counter
}

// NewMetricsCollector builds a collector over reg for an executor of the
// given kind ("pool", "sim", "sequential") and worker count, running the
// given kernel backend. tracer may be nil (metrics only). All families are
// registered immediately — they appear in scrapes at zero before the first
// region runs.
func NewMetricsCollector(reg *obs.Registry, execKind, backend string, threads int, tracer *obs.Tracer) *MetricsCollector {
	c := &MetricsCollector{tracer: tracer, threads: threads}
	for k := Region(0); k < numRegionKinds; k++ {
		kind := obs.Label{Key: "kind", Value: k.String()}
		c.regions[k] = reg.Counter("plk_regions_total",
			"Parallel regions executed, by region kind and executor.",
			kind, obs.Label{Key: "exec", Value: execKind})
		c.regionSecs[k] = reg.Histogram("plk_region_seconds",
			"Region wall-clock duration (start to barrier), by region kind.",
			regionSecondsBuckets, kind)
		c.workerSecs[k] = reg.Histogram("plk_worker_region_seconds",
			"Per-worker in-region work time (net of internal synchronization waits), by region kind.",
			regionSecondsBuckets, kind)
	}
	c.busySecs = make([]*obs.Counter, threads)
	c.idleSecs = make([]*obs.Counter, threads)
	c.workerOps = make([]*obs.Counter, threads)
	c.steals = make([]*obs.Counter, threads)
	for w := 0; w < threads; w++ {
		wl := obs.Label{Key: "worker", Value: strconv.Itoa(w)}
		c.busySecs[w] = reg.Counter("plk_worker_busy_seconds_total",
			"Cumulative per-worker in-region work seconds.", wl)
		c.idleSecs[w] = reg.Counter("plk_worker_idle_seconds_total",
			"Cumulative per-worker idle seconds (region wall time not spent working).", wl)
		c.workerOps[w] = reg.Counter("plk_worker_ops_total",
			"Cumulative per-worker weighted kernel operations.", wl)
		c.steals[w] = reg.Counter("plk_steals_total",
			"Steal operations performed, by thief worker.", wl)
	}
	c.stolen = reg.Counter("plk_stolen_patterns_total",
		"Patterns executed away from their scheduled owner via work stealing.")
	c.stealRaces = reg.Counter("plk_steal_races_total",
		"Failed CAS races in the steal deques (each retried).")
	bl := obs.Label{Key: "backend", Value: backend}
	c.patterns = reg.Counter("plk_kernel_patterns_total",
		"Alignment patterns processed by newview kernels.", bl)
	for i, cs := range spanCases {
		c.spans[i] = reg.Counter("plk_kernel_spans_total",
			"Newview span invocations, by child case and kernel backend.",
			obs.Label{Key: "case", Value: cs}, bl)
	}
	c.scalingEvents = reg.Counter("plk_scaling_events_total",
		"Numerical scaling events (CLV underflow rescues), by kernel backend.", bl)
	return c
}

// ObserveRegion implements RegionObserver: fold one finished region's
// per-worker scratch into the registry and (optionally) the trace buffer.
func (c *MetricsCollector) ObserveRegion(kind Region, start time.Time, wall float64, ctxs []WorkerCtx) {
	if kind < 0 || kind >= numRegionKinds {
		kind = RegionOther
	}
	c.regions[kind].Inc()
	c.regionSecs[kind].Observe(wall)
	for i := range ctxs {
		ctx := &ctxs[i]
		work := ctx.workSeconds()
		c.workerSecs[kind].Observe(work)
		w := ctx.Worker
		if w < 0 || w >= c.threads {
			continue
		}
		c.busySecs[w].Add(work)
		if idle := wall - work; idle > 0 {
			c.idleSecs[w].Add(idle)
		}
		c.workerOps[w].Add(ctx.Ops)
		c.steals[w].Add(ctx.Steals)
		c.stolen.Add(ctx.StolenPatterns)
		c.stealRaces.Add(ctx.StealRaces)
		c.patterns.Add(ctx.Patterns)
		c.spans[0].Add(ctx.SpanTipTip)
		c.spans[1].Add(ctx.SpanTipInner)
		c.spans[2].Add(ctx.SpanInner)
		c.scalingEvents.Add(ctx.Scalings)
		if c.tracer != nil {
			c.tracer.Span(kind.String(), "region", w, start, time.Duration(ctx.Seconds*float64(time.Second)),
				obs.Arg{Key: "ops", Value: ctx.Ops},
				obs.Arg{Key: "patterns", Value: ctx.Patterns},
				obs.Arg{Key: "steals", Value: ctx.Steals},
				obs.Arg{Key: "stolen_patterns", Value: ctx.StolenPatterns})
		}
	}
}
