// Package parallel implements the fine-grained parallel runtime of the
// likelihood kernel, mirroring the Pthreads design of RAxML described in the
// paper: a master thread issues typed parallel regions (newview, evaluate,
// derivative computation, ...) over T workers, and every region ends in a
// barrier, which is the synchronization cost the paper's newPAR strategy
// amortizes. Which alignment patterns each worker processes inside a region
// is not this package's decision: the kernels consume a precomputed
// pattern-to-worker assignment from internal/schedule (cyclic by default,
// the paper's distribution) and report the resulting per-worker op counts
// through WorkerCtx, so the statistics and the virtual platform model price
// whatever assignment the schedule produced.
//
// Three executors share one interface:
//
//   - Sequential: a single worker, no synchronization (baseline runs).
//   - Pool: persistent worker goroutines with channel fan-out and a barrier
//     (real wall-clock parallelism).
//   - Sim: T *virtual* workers executed serially while a virtual clock
//     advances by max-per-worker cost plus a platform-dependent barrier cost;
//     this reproduces the paper's 8- and 16-core platforms on any host (see
//     DESIGN.md, substitution #1).
package parallel

import "time"

// Region identifies the kind of a parallel region; the engine tags every Run
// call so the statistics can attribute synchronization counts the way the
// paper discusses them (branch-length work vs model optimization work).
type Region int

// Region kinds, mirroring RAxML's thread command opcodes.
const (
	RegionNewview Region = iota
	RegionEvaluate
	RegionSumTable
	RegionDerivative
	RegionRateEval
	RegionOther
	numRegionKinds
)

// String names the region kind.
func (r Region) String() string {
	switch r {
	case RegionNewview:
		return "newview"
	case RegionEvaluate:
		return "evaluate"
	case RegionSumTable:
		return "sumtable"
	case RegionDerivative:
		return "derivative"
	case RegionRateEval:
		return "rate-eval"
	default:
		return "other"
	}
}

// WorkerCtx carries per-worker instrumentation. Kernels add their weighted
// operation counts (roughly: floating-point multiply-adds) to Ops; the
// simulator turns them into virtual time, the pool merely accumulates them
// for reporting. Seconds is written by the executor harness itself — the
// measured wall-clock time this worker spent inside the current region's
// closure (monotonic; see Pool.run) — and is collected master-side after the
// barrier alongside Ops. Steals/StolenPatterns are incremented by the
// work-stealing runtime (internal/steal): Steals when this worker takes
// chunks from a victim's deque, StolenPatterns when it *executes* a pattern
// whose scheduled owner is another worker (counted once per execution, so
// chunks re-stolen along a thief chain are not double-counted). Like Ops
// they are reset per region and folded into the statistics master-side.
//
// Idle is wall time the worker spent blocked on intra-region synchronization
// (the steal runtime's step barriers) rather than working; executors subtract
// it from the measured Seconds before recording, so per-worker times — and
// everything derived from them: TimeImbalance, measured rebalancing — keep
// measuring work even in regions that synchronize internally. Without the
// correction every worker's Seconds in a multi-step stealing region would
// converge on the region's wall time, hiding exactly the skew the metric
// exists to expose.
//
// Concurrent tells region closures whether the executor runs its workers on
// real concurrent goroutines (the pool) or serially on one goroutine (Sim,
// Sequential, and a pool session degraded by a closed pool). The
// work-stealing runtime keys on it: serial virtual workers must neither steal
// (worker 0 would swallow everything before worker 1 ever "starts") nor wait
// at intra-region step barriers (which would deadlock a single goroutine).
//
// The struct is padded to 128 bytes: adjacent entries of a []WorkerCtx are
// written concurrently by different workers, and because Go only guarantees
// 8-byte alignment for the backing array, a 64-byte struct can still straddle
// cache lines (and the adjacent-line hardware prefetcher couples line pairs
// anyway), so two cache lines per entry is the safe spacing. A compile-time
// and unit-time check pin the size.
// The Patterns/Scalings/Span*/StealRaces fields are observability scratch:
// kernels and the steal runtime bump them with plain field increments (legal
// under //plk:hotpath — no allocation, no atomics, no shared cache lines) and
// a RegionObserver folds them into the metrics registry master-side after the
// barrier. This flush-at-region-boundary pattern is what keeps metrics
// always-on without touching per-pattern cost.
type WorkerCtx struct {
	Worker         int
	Ops            float64
	Seconds        float64
	Steals         float64  // steal operations performed by this worker this region
	StolenPatterns float64  // patterns executed for another worker's assignment
	Idle           float64  // in-region synchronization wait, excluded from Seconds
	Patterns       float64  // alignment patterns processed (newview spans)
	Scalings       float64  // numerical scaling events (CLV underflow rescues)
	SpanTipTip     float64  // newview spans with two tip children
	SpanTipInner   float64  // newview spans with one tip child
	SpanInner      float64  // newview spans with two inner children
	StealRaces     float64  // failed CAS races in the steal deques (retried)
	Concurrent     bool     // workers run on real goroutines (see type comment)
	_              [31]byte // pad to two cache lines (see type comment)
}

// beginRegion resets the per-region scratch (everything except Worker, which
// is fixed at construction) ahead of a region closure.
func (c *WorkerCtx) beginRegion(concurrent bool) {
	c.Ops = 0
	c.Steals = 0
	c.StolenPatterns = 0
	c.Idle = 0
	c.Patterns = 0
	c.Scalings = 0
	c.SpanTipTip = 0
	c.SpanTipInner = 0
	c.SpanInner = 0
	c.StealRaces = 0
	c.Concurrent = concurrent
}

// workSeconds returns the worker's measured in-region seconds net of
// internal synchronization waits, clamped at zero against clock skew.
func (c *WorkerCtx) workSeconds() float64 {
	s := c.Seconds - c.Idle
	if s < 0 {
		return 0
	}
	return s
}

// RegionObserver receives one callback per completed parallel region,
// master-side after the barrier, with the region's start time, wall-clock
// duration, and every worker's WorkerCtx scratch (still holding this region's
// counters). Implementations must not retain ctxs past the call and must not
// block: the callback runs inside the executor's region critical section.
// MetricsCollector (observe.go) is the canonical implementation.
type RegionObserver interface {
	ObserveRegion(kind Region, start time.Time, wall float64, ctxs []WorkerCtx)
}

// ObservableExecutor is implemented by executors that can report region
// completions to a RegionObserver. All executors in this package implement
// it; the interface exists so callers can attach observers without knowing
// the concrete type.
type ObservableExecutor interface {
	// SetObserver installs the observer (nil detaches). Not safe to call
	// concurrently with Run.
	SetObserver(RegionObserver)
}

// Executor runs parallel regions over a fixed set of workers.
type Executor interface {
	// Threads returns the worker count T.
	Threads() int
	// Run executes fn once per worker (ids 0..T-1) and returns after all
	// workers finish (the barrier).
	Run(kind Region, fn func(w int, ctx *WorkerCtx))
	// Stats exposes accumulated instrumentation.
	Stats() *Stats
	// Close releases worker resources; the executor must not be used after.
	Close()
}

// Sequential is the single-worker executor.
type Sequential struct {
	ctxs   [1]WorkerCtx
	stats  Stats
	ops    [1]float64
	times  [1]float64
	steals [1]float64
	stolen [1]float64
	obs    RegionObserver
}

// NewSequential returns a sequential executor.
func NewSequential() *Sequential { return &Sequential{} }

// Threads returns 1.
func (s *Sequential) Threads() int { return 1 }

// SetObserver installs a region observer (nil detaches). Not safe to call
// concurrently with Run.
func (s *Sequential) SetObserver(o RegionObserver) { s.obs = o }

// Run executes fn for the single worker, timing it like the pool does.
func (s *Sequential) Run(kind Region, fn func(w int, ctx *WorkerCtx)) {
	ctx := &s.ctxs[0]
	ctx.beginRegion(false)
	start := time.Now()
	fn(0, ctx)
	wall := time.Since(start).Seconds()
	ctx.Seconds = wall
	s.ops[0] = ctx.Ops
	s.times[0] = ctx.workSeconds()
	s.steals[0] = ctx.Steals
	s.stolen[0] = ctx.StolenPatterns
	s.stats.record(kind, s.ops[:], s.times[:], s.steals[:], s.stolen[:])
	if s.obs != nil {
		s.obs.ObserveRegion(kind, start, wall, s.ctxs[:])
	}
}

// Stats returns the accumulated statistics.
func (s *Sequential) Stats() *Stats { return &s.stats }

// Close is a no-op.
func (s *Sequential) Close() {}
