package parallel

import (
	"strings"
	"testing"
	"time"

	"phylo/internal/obs"
)

// TestStatsImbalanceEdgeCases pins the degenerate inputs of the imbalance
// metrics: no workers recorded, zero elapsed time, and a single-worker pool
// must all report exactly 1.0 (perfect balance) rather than dividing by zero.
func TestStatsImbalanceEdgeCases(t *testing.T) {
	t.Run("zero workers", func(t *testing.T) {
		var s Stats
		if got := s.WorkerImbalance(); got != 1 {
			t.Errorf("WorkerImbalance() on empty stats = %v, want 1", got)
		}
		if got := s.TimeImbalance(); got != 1 {
			t.Errorf("TimeImbalance() on empty stats = %v, want 1", got)
		}
		if got := s.Imbalance(0); got != 1 {
			t.Errorf("Imbalance(0) = %v, want 1", got)
		}
		if got := s.Imbalance(4); got != 1 {
			t.Errorf("Imbalance(4) on empty stats = %v, want 1", got)
		}
	})
	t.Run("zero elapsed time", func(t *testing.T) {
		var s Stats
		// A region whose workers all measured exactly zero seconds (possible
		// on a coarse clock) must not yield NaN from 0/0.
		s.record(RegionNewview, []float64{10, 20}, []float64{0, 0}, nil, nil)
		if got := s.TimeImbalance(); got != 1 {
			t.Errorf("TimeImbalance() with all-zero times = %v, want 1", got)
		}
		if got := s.WorkerImbalance(); got != 2.0/1.5 {
			t.Errorf("WorkerImbalance() = %v, want %v", got, 2.0/1.5)
		}
	})
	t.Run("single worker", func(t *testing.T) {
		seq := NewSequential()
		seq.Run(RegionNewview, func(w int, ctx *WorkerCtx) { ctx.Ops += 128 })
		s := seq.Stats()
		if got := s.WorkerImbalance(); got != 1 {
			t.Errorf("single-worker WorkerImbalance() = %v, want 1", got)
		}
		if got := s.TimeImbalance(); got != 1 {
			t.Errorf("single-worker TimeImbalance() = %v, want 1", got)
		}
		if got := s.Imbalance(1); got != 1 {
			t.Errorf("single-worker Imbalance(1) = %v, want 1", got)
		}
	})
}

// TestMetricsCollectorFoldsRegions runs regions on every executor kind with a
// collector attached and checks the registry totals match the WorkerCtx
// scratch the closures wrote.
func TestMetricsCollectorFoldsRegions(t *testing.T) {
	pool, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sim, err := NewSim(2)
	if err != nil {
		t.Fatal(err)
	}
	for name, exec := range map[string]Executor{
		"sequential": NewSequential(),
		"pool":       pool,
		"sim":        sim,
	} {
		t.Run(name, func(t *testing.T) {
			reg := obs.NewRegistry()
			tr := obs.NewTracer(64)
			oe, ok := exec.(ObservableExecutor)
			if !ok {
				t.Fatalf("%T does not implement ObservableExecutor", exec)
			}
			oe.SetObserver(NewMetricsCollector(reg, name, "fused4", exec.Threads(), tr))
			exec.Run(RegionNewview, func(w int, ctx *WorkerCtx) {
				ctx.Ops += 100
				ctx.Patterns += 32
				ctx.SpanTipTip += 2
				ctx.Scalings++
			})
			exec.Run(RegionEvaluate, func(w int, ctx *WorkerCtx) { ctx.Ops += 10 })
			oe.SetObserver(nil)

			want := map[string]float64{
				"plk_regions_total|kind=newview|exec=" + name:  1,
				"plk_regions_total|kind=evaluate|exec=" + name: 1,
				"plk_kernel_patterns_total|backend=fused4":     32 * float64(exec.Threads()),
				"plk_kernel_spans_total|case=tip-tip|backend=fused4": 2 *
					float64(exec.Threads()),
				"plk_scaling_events_total|backend=fused4": float64(exec.Threads()),
			}
			got := map[string]float64{}
			for _, s := range reg.Snapshot() {
				key := s.Name
				for _, l := range s.Labels {
					key += "|" + l.Key + "=" + l.Value
				}
				got[key] = s.Value
			}
			for key, w := range want {
				if got[key] != w {
					t.Errorf("%s = %v, want %v", key, got[key], w)
				}
			}
			// Trace: one span per worker per region.
			if tr.Len() != 2*exec.Threads() {
				t.Errorf("trace events = %d, want %d", tr.Len(), 2*exec.Threads())
			}
			var b strings.Builder
			if err := reg.WriteText(&b); err != nil {
				t.Fatal(err)
			}
			for _, fam := range []string{"plk_region_seconds", "plk_worker_busy_seconds_total", "plk_steals_total"} {
				if !strings.Contains(b.String(), fam) {
					t.Errorf("exposition missing family %s", fam)
				}
			}
		})
	}
}

// TestObserveRegionAllocFree pins the flush path itself: folding a region
// into the registry must not allocate (it runs inside the executor's region
// critical section, metrics always-on).
func TestObserveRegionAllocFree(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewMetricsCollector(reg, "pool", "fused4", 4, nil)
	ctxs := make([]WorkerCtx, 4)
	for w := range ctxs {
		ctxs[w].Worker = w
		ctxs[w].Ops = 100
		ctxs[w].Seconds = 0.01
		ctxs[w].Patterns = 8
	}
	start := time.Now()
	if n := testing.AllocsPerRun(500, func() {
		c.ObserveRegion(RegionNewview, start, 0.01, ctxs)
	}); n != 0 {
		t.Fatalf("ObserveRegion allocates %v allocs/op, want 0", n)
	}
}
