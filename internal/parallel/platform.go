package parallel

import "fmt"

// Platform models one of the paper's multi-core test systems as three
// parameters: per-op cost at one thread, a memory-bandwidth contention slope
// (per-op cost grows as threads are added; steep for the front-side-bus
// Clovertown, shallow for the NUMA systems), and an affine barrier cost in
// the thread count. Together with the trace statistics of a Sim (or Pool)
// run, a platform prices an execution in virtual seconds:
//
//	time = perOp(T)*CriticalOps + sync(T)*Regions
//
// The paper's load-balance phenomenology falls out of this model because
// oldPAR produces many narrow regions (high Regions count, CriticalOps
// inflated by idle workers) while newPAR produces few full-width regions.
type Platform struct {
	Name string
	// SeqOpNS is the cost of one weighted kernel op at T=1, in nanoseconds.
	SeqOpNS float64
	// BWSlope inflates per-op cost with thread count:
	// perOp(T) = SeqOpNS * (1 + BWSlope*(T-1)). RAxML is memory-bound, so
	// this captures the dominant scaling limit (Sec. V of the paper).
	BWSlope float64
	// SyncBaseNS + SyncPerThreadNS*T is the cost of one barrier/fan-out.
	SyncBaseNS      float64
	SyncPerThreadNS float64
	// MaxThreads is the core count of the machine.
	MaxThreads int
}

// PerOpNS returns the per-op cost at the given thread count.
func (p Platform) PerOpNS(threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	return p.SeqOpNS * (1 + p.BWSlope*float64(threads-1))
}

// SyncNS returns the per-region synchronization cost at the given thread
// count; a single thread pays nothing.
func (p Platform) SyncNS(threads int) float64 {
	if threads <= 1 {
		return 0
	}
	return p.SyncBaseNS + p.SyncPerThreadNS*float64(threads)
}

// EvalSeconds prices a recorded execution on this platform.
func (p Platform) EvalSeconds(st *Stats, threads int) float64 {
	return (p.PerOpNS(threads)*st.CriticalOps + p.SyncNS(threads)*float64(st.Regions)) * 1e-9
}

// The four platforms of the paper's Section V. The constants were calibrated
// so that (a) sequential Nehalem is ~40% faster than Clovertown, (b) Intel
// sequential runs beat AMD, (c) Clovertown stops scaling at 8 threads on the
// memory-bound kernel while the NUMA machines keep scaling, and (d) barrier
// costs grow with the thread count so that 16-thread oldPAR runs can be
// slower than 8-thread ones, as in Figures 3-5.
var (
	// Nehalem: 2-way Intel pre-production, 8 cores, 2.93 GHz, QPI NUMA,
	// ~30 GB/s per socket.
	Nehalem = Platform{Name: "Nehalem", SeqOpNS: 0.40, BWSlope: 0.020,
		SyncBaseNS: 1500, SyncPerThreadNS: 350, MaxThreads: 8}
	// Clovertown: 2-way Intel, 8 cores, 2.66 GHz, shared front-side bus.
	Clovertown = Platform{Name: "Clovertown", SeqOpNS: 0.66, BWSlope: 0.110,
		SyncBaseNS: 2000, SyncPerThreadNS: 450, MaxThreads: 8}
	// Barcelona: 4-way AMD, 16 cores, 2.2 GHz, HyperTransport NUMA.
	Barcelona = Platform{Name: "Barcelona", SeqOpNS: 0.90, BWSlope: 0.018,
		SyncBaseNS: 2500, SyncPerThreadNS: 600, MaxThreads: 16}
	// X4600: 8-way Sun (AMD Opteron), 16 cores, 2.6 GHz, NUMA with a larger
	// interconnect diameter, hence the higher barrier cost.
	X4600 = Platform{Name: "x4600", SeqOpNS: 0.78, BWSlope: 0.022,
		SyncBaseNS: 3000, SyncPerThreadNS: 800, MaxThreads: 16}
)

// Platforms lists the paper's four systems in figure order.
var Platforms = []Platform{Nehalem, Clovertown, Barcelona, X4600}

// PlatformByName resolves a platform profile by (case-sensitive) name.
func PlatformByName(name string) (Platform, error) {
	for _, p := range Platforms {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("parallel: unknown platform %q", name)
}
