package parallel

import (
	"fmt"
	"sync"
	"time"
)

// Pool is the real goroutine-based executor: T persistent workers receive
// region closures over per-worker channels and signal completion through a
// WaitGroup (the barrier). This mirrors RAxML's Pthreads master/worker
// design, where the master generates traversal descriptors and the workers
// execute them over their scheduled share of the alignment patterns.
//
// A Pool can be shared by several concurrent sessions (see Session): regions
// from different sessions are serialized by an internal mutex, so each
// region still runs with the full worker complement and no two sessions'
// closures ever interleave inside a region. Per-session instrumentation is
// kept by the session views; the pool itself accumulates the aggregate.
type Pool struct {
	threads int
	cmds    []chan func()
	wg      sync.WaitGroup
	ctxs    []WorkerCtx
	ops     []float64 // master-side per-region op scratch
	times   []float64 // master-side per-region wall-time scratch (seconds)
	steals  []float64 // master-side per-region steal-count scratch
	stolen  []float64 // master-side per-region stolen-pattern scratch

	runMu  sync.Mutex     // serializes regions across sessions
	stats  Stats          // aggregate across all sessions (guarded by runMu)
	obs    RegionObserver // region-completion observer (guarded by runMu)
	closed bool           // guarded by runMu
}

// NewPool starts a pool with the given worker count.
func NewPool(threads int) (*Pool, error) {
	if threads < 1 {
		return nil, fmt.Errorf("parallel: thread count %d must be positive", threads)
	}
	p := &Pool{
		threads: threads,
		cmds:    make([]chan func(), threads),
		ctxs:    make([]WorkerCtx, threads),
		ops:     make([]float64, threads),
		times:   make([]float64, threads),
		steals:  make([]float64, threads),
		stolen:  make([]float64, threads),
	}
	for w := 0; w < threads; w++ {
		p.ctxs[w].Worker = w
		p.cmds[w] = make(chan func(), 1)
		go func(ch chan func()) {
			for fn := range ch {
				fn()
			}
		}(p.cmds[w])
	}
	return p, nil
}

// Threads returns the worker count.
func (p *Pool) Threads() int { return p.threads }

// SetObserver installs a region observer (nil detaches). The observer is
// invoked master-side after each region's barrier, under the same mutex that
// serializes regions, so implementations must be fast and non-blocking.
func (p *Pool) SetObserver(o RegionObserver) {
	p.runMu.Lock()
	p.obs = o
	p.runMu.Unlock()
}

// Run fans fn out to every worker and blocks until all complete, recording
// into the pool's aggregate statistics. Running on a closed pool is a
// programming error and panics (session views degrade instead; see
// PoolSession.Run).
func (p *Pool) Run(kind Region, fn func(w int, ctx *WorkerCtx)) {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if p.closed {
		panic("parallel: Run on closed Pool")
	}
	p.run(kind, fn, nil)
}

// run executes one region over the worker goroutines, recording into the
// aggregate stats and, when non-nil, a session's private stats. Each worker
// times its own closure on the monotonic clock and parks the duration in its
// padded WorkerCtx (no cross-worker cache-line traffic); the master collects
// the durations into the time scratch after the barrier, next to the op
// scratch. The caller must hold runMu and have checked closed.
func (p *Pool) run(kind Region, fn func(w int, ctx *WorkerCtx), extra *Stats) {
	regionStart := time.Now()
	p.wg.Add(p.threads)
	for w := 0; w < p.threads; w++ {
		w := w
		ctx := &p.ctxs[w]
		ctx.beginRegion(true)
		p.cmds[w] <- func() {
			start := time.Now()
			fn(w, ctx)
			ctx.Seconds = time.Since(start).Seconds()
			p.wg.Done()
		}
	}
	p.wg.Wait()
	// A worker whose assignment was empty for this region left Ops at the
	// zero it was reset to above; it enters the statistics as exactly zero
	// rather than being skipped, so idle workers show up in the imbalance.
	// Seconds are taken net of in-region synchronization waits (Idle), so
	// multi-step stealing regions report work time, not synchronized wall
	// time.
	for w := 0; w < p.threads; w++ {
		p.ops[w] = p.ctxs[w].Ops
		p.times[w] = p.ctxs[w].workSeconds()
		p.steals[w] = p.ctxs[w].Steals
		p.stolen[w] = p.ctxs[w].StolenPatterns
	}
	p.record(kind, extra)
	if p.obs != nil {
		p.obs.ObserveRegion(kind, regionStart, time.Since(regionStart).Seconds(), p.ctxs)
	}
}

// runDegraded executes one region with all T virtual workers serially on
// the calling goroutine (identical numerics to run, like Sim). Each virtual
// worker's serial execution is timed individually. The caller must hold
// runMu.
func (p *Pool) runDegraded(kind Region, fn func(w int, ctx *WorkerCtx), extra *Stats) {
	regionStart := time.Now()
	for w := 0; w < p.threads; w++ {
		ctx := &p.ctxs[w]
		ctx.beginRegion(false)
		start := time.Now()
		fn(w, ctx)
		ctx.Seconds = time.Since(start).Seconds()
		p.ops[w] = ctx.Ops
		p.times[w] = ctx.workSeconds()
		p.steals[w] = ctx.Steals
		p.stolen[w] = ctx.StolenPatterns
	}
	p.record(kind, extra)
	if p.obs != nil {
		p.obs.ObserveRegion(kind, regionStart, time.Since(regionStart).Seconds(), p.ctxs)
	}
}

// record folds the per-worker op and time scratch into the aggregate (and
// optional session) statistics. The caller must hold runMu.
func (p *Pool) record(kind Region, extra *Stats) {
	p.stats.record(kind, p.ops, p.times, p.steals, p.stolen)
	if extra != nil {
		extra.record(kind, p.ops, p.times, p.steals, p.stolen)
	}
}

// Stats returns the aggregate instrumentation across every session that ran
// on this pool. Only read it while no session is inside Run.
func (p *Pool) Stats() *Stats { return &p.stats }

// Close terminates the worker goroutines. It is idempotent and safe to call
// from multiple goroutines; it waits for any in-flight region to finish.
// Direct Run calls afterwards panic; session views degrade to serial
// execution (see PoolSession.Run).
func (p *Pool) Close() {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.cmds {
		close(ch)
	}
}

// PoolSession is a lightweight per-session view of a shared Pool. It
// implements Executor: Run delegates to the pool (serialized against other
// sessions) while the recorded statistics are private to the session, so N
// concurrent analyses over one dataset each see their own region counts and
// worker-imbalance numbers. Closing a session never closes the pool.
type PoolSession struct {
	pool  *Pool
	stats Stats

	mu     sync.Mutex
	closed bool
}

// Session returns a new per-session executor view of the pool.
func (p *Pool) Session() *PoolSession { return &PoolSession{pool: p} }

// Threads returns the underlying pool's worker count.
func (s *PoolSession) Threads() int { return s.pool.threads }

// Run executes one region on the shared pool, recording into this session's
// statistics (and the pool aggregate). If the pool was closed under this
// session (a Dataset torn down while an analysis is mid-flight), the region
// runs degraded — all T virtual workers serially on the caller, with
// identical numerics — so the in-flight analysis completes instead of
// crashing; the session's next facade entry point reports the closed
// dataset as an error.
func (s *PoolSession) Run(kind Region, fn func(w int, ctx *WorkerCtx)) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		panic("parallel: Run on closed PoolSession")
	}
	p := s.pool
	p.runMu.Lock()
	defer p.runMu.Unlock()
	if p.closed {
		p.runDegraded(kind, fn, &s.stats)
		return
	}
	p.run(kind, fn, &s.stats)
}

// Stats returns this session's private instrumentation.
func (s *PoolSession) Stats() *Stats { return &s.stats }

// Close retires the session view. It is idempotent and leaves the shared
// pool (and every other session) untouched.
func (s *PoolSession) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}
