package parallel

import (
	"fmt"
	"sync"
)

// Pool is the real goroutine-based executor: T persistent workers receive
// region closures over per-worker channels and signal completion through a
// WaitGroup (the barrier). This mirrors RAxML's Pthreads master/worker
// design, where the master generates traversal descriptors and the workers
// execute them over their scheduled share of the alignment patterns.
type Pool struct {
	threads int
	cmds    []chan func()
	wg      sync.WaitGroup
	ctxs    []WorkerCtx
	ops     []float64 // master-side per-region op scratch
	stats   Stats
	closed  bool
}

// NewPool starts a pool with the given worker count.
func NewPool(threads int) (*Pool, error) {
	if threads < 1 {
		return nil, fmt.Errorf("parallel: thread count %d must be positive", threads)
	}
	p := &Pool{
		threads: threads,
		cmds:    make([]chan func(), threads),
		ctxs:    make([]WorkerCtx, threads),
		ops:     make([]float64, threads),
	}
	for w := 0; w < threads; w++ {
		p.ctxs[w].Worker = w
		p.cmds[w] = make(chan func(), 1)
		go func(ch chan func()) {
			for fn := range ch {
				fn()
			}
		}(p.cmds[w])
	}
	return p, nil
}

// Threads returns the worker count.
func (p *Pool) Threads() int { return p.threads }

// Run fans fn out to every worker and blocks until all complete.
func (p *Pool) Run(kind Region, fn func(w int, ctx *WorkerCtx)) {
	if p.closed {
		panic("parallel: Run on closed Pool")
	}
	p.wg.Add(p.threads)
	for w := 0; w < p.threads; w++ {
		w := w
		ctx := &p.ctxs[w]
		ctx.Ops = 0
		p.cmds[w] <- func() {
			fn(w, ctx)
			p.wg.Done()
		}
	}
	p.wg.Wait()
	// A worker whose assignment was empty for this region left Ops at the
	// zero it was reset to above; it enters the statistics as exactly zero
	// rather than being skipped, so idle workers show up in the imbalance.
	for w := 0; w < p.threads; w++ {
		p.ops[w] = p.ctxs[w].Ops
	}
	p.stats.record(kind, p.ops)
}

// Stats returns accumulated instrumentation.
func (p *Pool) Stats() *Stats { return &p.stats }

// Close terminates the worker goroutines.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.cmds {
		close(ch)
	}
}
