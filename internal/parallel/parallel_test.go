package parallel

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestStrideHelpers(t *testing.T) {
	// Worker w owns indices i ≡ w (mod T) within [lo, hi).
	for _, tc := range []struct{ lo, hi, w, t, start, count int }{
		{0, 10, 0, 4, 0, 3},
		{0, 10, 1, 4, 1, 3},
		{0, 10, 2, 4, 2, 2},
		{0, 10, 3, 4, 3, 2},
		{5, 9, 0, 4, 8, 1},
		{5, 9, 1, 4, 5, 1},
		{5, 9, 3, 4, 7, 1},
		{5, 6, 2, 4, 9, 0}, // start beyond hi -> 0
		{7, 7, 0, 2, 8, 0},
		{0, 3, 0, 8, 0, 1}, // fewer patterns than workers: some idle
		{0, 3, 5, 8, 5, 0},
	} {
		s := StrideStart(tc.lo, tc.w, tc.t)
		if s != tc.start && StrideCount(tc.lo, tc.hi, tc.w, tc.t) != 0 {
			t.Errorf("StrideStart(%d,%d,%d) = %d, want %d", tc.lo, tc.w, tc.t, s, tc.start)
		}
		if c := StrideCount(tc.lo, tc.hi, tc.w, tc.t); c != tc.count {
			t.Errorf("StrideCount(%d,%d,%d,%d) = %d, want %d", tc.lo, tc.hi, tc.w, tc.t, c, tc.count)
		}
	}
}

// Property: cyclic distribution partitions [lo,hi) exactly.
func TestStridePartitionQuick(t *testing.T) {
	f := func(loRaw, widthRaw uint16, tRaw uint8) bool {
		lo := int(loRaw % 1000)
		hi := lo + int(widthRaw%2000)
		T := 1 + int(tRaw%32)
		total := 0
		seen := make(map[int]bool)
		for w := 0; w < T; w++ {
			n := 0
			for i := StrideStart(lo, w, T); i < hi; i += T {
				if i%T != w || seen[i] || i < lo {
					return false
				}
				seen[i] = true
				n++
			}
			if n != StrideCount(lo, hi, w, T) {
				return false
			}
			total += n
		}
		return total == hi-lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func testExecutorBasics(t *testing.T, ex Executor, wantThreads int) {
	t.Helper()
	if ex.Threads() != wantThreads {
		t.Fatalf("Threads() = %d, want %d", ex.Threads(), wantThreads)
	}
	var total int64
	var touched int64
	ex.Run(RegionNewview, func(w int, ctx *WorkerCtx) {
		atomic.AddInt64(&total, int64(w))
		atomic.AddInt64(&touched, 1)
		ctx.Ops = float64(10 * (w + 1))
	})
	if got := int(touched); got != wantThreads {
		t.Errorf("fn ran for %d workers, want %d", got, wantThreads)
	}
	wantSum := int64(wantThreads * (wantThreads - 1) / 2)
	if total != wantSum {
		t.Errorf("worker id sum = %d, want %d", total, wantSum)
	}
	st := ex.Stats()
	if st.Regions != 1 || st.KindRegions[RegionNewview] != 1 {
		t.Errorf("stats regions = %+v", st)
	}
	wantMax := float64(10 * wantThreads)
	if st.CriticalOps != wantMax {
		t.Errorf("CriticalOps = %v, want %v", st.CriticalOps, wantMax)
	}
	wantTotal := 0.0
	for w := 0; w < wantThreads; w++ {
		wantTotal += float64(10 * (w + 1))
	}
	if st.TotalOps != wantTotal {
		t.Errorf("TotalOps = %v, want %v", st.TotalOps, wantTotal)
	}
}

func TestSequentialExecutor(t *testing.T) {
	ex := NewSequential()
	defer ex.Close()
	testExecutorBasics(t, ex, 1)
}

func TestPoolExecutor(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 7} {
		ex, err := NewPool(threads)
		if err != nil {
			t.Fatal(err)
		}
		testExecutorBasics(t, ex, threads)
		ex.Close()
	}
	if _, err := NewPool(0); err == nil {
		t.Error("expected error for 0 threads")
	}
}

func TestSimExecutor(t *testing.T) {
	for _, threads := range []int{1, 2, 8, 16} {
		ex, err := NewSim(threads)
		if err != nil {
			t.Fatal(err)
		}
		testExecutorBasics(t, ex, threads)
		ex.Close()
	}
	if _, err := NewSim(-1); err == nil {
		t.Error("expected error for negative threads")
	}
}

func TestPoolParallelSum(t *testing.T) {
	// A realistic reduction: workers sum disjoint strided slices.
	const n = 100000
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	for _, threads := range []int{1, 2, 3, 8} {
		ex, err := NewPool(threads)
		if err != nil {
			t.Fatal(err)
		}
		partials := make([]float64, threads*8) // padded slots
		for rep := 0; rep < 3; rep++ {
			ex.Run(RegionEvaluate, func(w int, ctx *WorkerCtx) {
				s := 0.0
				for i := StrideStart(0, w, threads); i < n; i += threads {
					s += data[i]
				}
				partials[w*8] = s
			})
			got := 0.0
			for w := 0; w < threads; w++ {
				got += partials[w*8]
			}
			want := float64(n) * float64(n-1) / 2
			if math.Abs(got-want) > 1e-6*want {
				t.Errorf("threads=%d: sum = %v, want %v", threads, got, want)
			}
		}
		ex.Close()
	}
}

func TestPoolCloseIdempotentAndPanicAfterClose(t *testing.T) {
	ex, _ := NewPool(2)
	ex.Close()
	ex.Close() // must not panic
	defer func() {
		if recover() == nil {
			t.Error("Run after Close should panic")
		}
	}()
	ex.Run(RegionOther, func(w int, ctx *WorkerCtx) {})
}

func TestStatsImbalance(t *testing.T) {
	var st Stats
	// Two regions with 4 workers: one perfectly balanced, one all-on-one.
	st.record(RegionNewview, 25, 100)
	if got := st.Imbalance(4); math.Abs(got-1) > 1e-12 {
		t.Errorf("balanced imbalance = %v, want 1", got)
	}
	st.record(RegionNewview, 100, 100)
	// critical = 125, ideal = 200/4 = 50 -> 2.5
	if got := st.Imbalance(4); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("imbalance = %v, want 2.5", got)
	}
	if st.Imbalance(0) != 1 {
		t.Error("degenerate imbalance should be 1")
	}
	st.Reset()
	if st.Regions != 0 || st.TotalOps != 0 {
		t.Error("Reset failed")
	}
	if st.String() == "" {
		t.Error("String should render")
	}
}

func TestPlatformModel(t *testing.T) {
	for _, p := range Platforms {
		if p.PerOpNS(1) != p.SeqOpNS {
			t.Errorf("%s: PerOpNS(1) != SeqOpNS", p.Name)
		}
		if p.PerOpNS(8) <= p.PerOpNS(1) {
			t.Errorf("%s: per-op cost must grow with threads", p.Name)
		}
		if p.SyncNS(1) != 0 {
			t.Errorf("%s: sequential runs must pay no sync cost", p.Name)
		}
		if p.SyncNS(16) <= p.SyncNS(2) {
			t.Errorf("%s: sync cost must grow with threads", p.Name)
		}
	}
	// Paper's platform ordering: Nehalem sequential is fastest, ~40% faster
	// than Clovertown; AMD sequential is slower than Intel.
	if !(Nehalem.SeqOpNS < Clovertown.SeqOpNS) {
		t.Error("Nehalem must be faster than Clovertown sequentially")
	}
	ratio := Clovertown.SeqOpNS / Nehalem.SeqOpNS
	if ratio < 1.3 || ratio > 2.0 {
		t.Errorf("Clovertown/Nehalem sequential ratio %v outside plausible band", ratio)
	}
	if !(Barcelona.SeqOpNS > Clovertown.SeqOpNS && X4600.SeqOpNS > Nehalem.SeqOpNS) {
		t.Error("AMD platforms must be slower sequentially than Intel")
	}
	// Clovertown's bandwidth wall: at 8 threads its per-op inflation must
	// far exceed Nehalem's.
	if Clovertown.PerOpNS(8)/Clovertown.SeqOpNS < 1.5 {
		t.Error("Clovertown must be strongly bandwidth limited at 8 threads")
	}
	if Nehalem.PerOpNS(8)/Nehalem.SeqOpNS > 1.3 {
		t.Error("Nehalem must scale well to 8 threads")
	}
}

func TestPlatformEvalSeconds(t *testing.T) {
	var st Stats
	st.record(RegionNewview, 1e9, 8e9) // 1e9 critical ops
	st.record(RegionEvaluate, 1e9, 8e9)
	p := Nehalem
	seq := p.EvalSeconds(&st, 1)
	want := p.SeqOpNS * 2e9 * 1e-9
	if math.Abs(seq-want) > 1e-9 {
		t.Errorf("sequential eval = %v, want %v", seq, want)
	}
	// With threads the same critical ops cost more per op plus sync.
	par := p.EvalSeconds(&st, 8)
	if par <= seq*1.01 {
		// same critical ops -> parallel pricing must include contention.
		t.Errorf("8-thread pricing of identical critical path should exceed sequential: %v vs %v", par, seq)
	}
	if _, err := PlatformByName("Nehalem"); err != nil {
		t.Error(err)
	}
	if _, err := PlatformByName("PDP11"); err == nil {
		t.Error("expected error for unknown platform")
	}
}

func TestSimMatchesPoolNumerically(t *testing.T) {
	// The same strided computation must produce identical results under Sim
	// and Pool (same worker decomposition).
	const n = 4321
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i))
	}
	run := func(ex Executor) float64 {
		threads := ex.Threads()
		partials := make([]float64, threads*8)
		ex.Run(RegionEvaluate, func(w int, ctx *WorkerCtx) {
			s := 0.0
			for i := StrideStart(0, w, threads); i < n; i += threads {
				s += data[i] * data[i]
			}
			partials[w*8] = s
		})
		total := 0.0
		for w := 0; w < threads; w++ {
			total += partials[w*8]
		}
		return total
	}
	sim, _ := NewSim(4)
	pool, _ := NewPool(4)
	defer pool.Close()
	if a, b := run(sim), run(pool); a != b {
		t.Errorf("Sim and Pool disagree: %v vs %v", a, b)
	}
}
