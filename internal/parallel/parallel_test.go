package parallel

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// strideFrom returns the first index >= lo congruent to w modulo t; the
// executor tests below split work cyclically by hand (production kernels get
// their assignment from internal/schedule, which owns the stride arithmetic).
func strideFrom(lo, w, t int) int {
	r := lo % t
	d := w - r
	if d < 0 {
		d += t
	}
	return lo + d
}

func testExecutorBasics(t *testing.T, ex Executor, wantThreads int) {
	t.Helper()
	if ex.Threads() != wantThreads {
		t.Fatalf("Threads() = %d, want %d", ex.Threads(), wantThreads)
	}
	var total int64
	var touched int64
	ex.Run(RegionNewview, func(w int, ctx *WorkerCtx) {
		atomic.AddInt64(&total, int64(w))
		atomic.AddInt64(&touched, 1)
		ctx.Ops = float64(10 * (w + 1))
	})
	if got := int(touched); got != wantThreads {
		t.Errorf("fn ran for %d workers, want %d", got, wantThreads)
	}
	wantSum := int64(wantThreads * (wantThreads - 1) / 2)
	if total != wantSum {
		t.Errorf("worker id sum = %d, want %d", total, wantSum)
	}
	st := ex.Stats()
	if st.Regions != 1 || st.KindRegions[RegionNewview] != 1 {
		t.Errorf("stats regions = %+v", st)
	}
	wantMax := float64(10 * wantThreads)
	if st.CriticalOps != wantMax {
		t.Errorf("CriticalOps = %v, want %v", st.CriticalOps, wantMax)
	}
	wantTotal := 0.0
	for w := 0; w < wantThreads; w++ {
		wantTotal += float64(10 * (w + 1))
	}
	if st.TotalOps != wantTotal {
		t.Errorf("TotalOps = %v, want %v", st.TotalOps, wantTotal)
	}
}

func TestSequentialExecutor(t *testing.T) {
	ex := NewSequential()
	defer ex.Close()
	testExecutorBasics(t, ex, 1)
}

func TestPoolExecutor(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 7} {
		ex, err := NewPool(threads)
		if err != nil {
			t.Fatal(err)
		}
		testExecutorBasics(t, ex, threads)
		ex.Close()
	}
	if _, err := NewPool(0); err == nil {
		t.Error("expected error for 0 threads")
	}
}

func TestSimExecutor(t *testing.T) {
	for _, threads := range []int{1, 2, 8, 16} {
		ex, err := NewSim(threads)
		if err != nil {
			t.Fatal(err)
		}
		testExecutorBasics(t, ex, threads)
		ex.Close()
	}
	if _, err := NewSim(-1); err == nil {
		t.Error("expected error for negative threads")
	}
}

func TestPoolParallelSum(t *testing.T) {
	// A realistic reduction: workers sum disjoint strided slices.
	const n = 100000
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	for _, threads := range []int{1, 2, 3, 8} {
		ex, err := NewPool(threads)
		if err != nil {
			t.Fatal(err)
		}
		partials := make([]float64, threads*8) // padded slots
		for rep := 0; rep < 3; rep++ {
			ex.Run(RegionEvaluate, func(w int, ctx *WorkerCtx) {
				s := 0.0
				for i := strideFrom(0, w, threads); i < n; i += threads {
					s += data[i]
				}
				partials[w*8] = s
			})
			got := 0.0
			for w := 0; w < threads; w++ {
				got += partials[w*8]
			}
			want := float64(n) * float64(n-1) / 2
			if math.Abs(got-want) > 1e-6*want {
				t.Errorf("threads=%d: sum = %v, want %v", threads, got, want)
			}
		}
		ex.Close()
	}
}

func TestPoolCloseIdempotentAndPanicAfterClose(t *testing.T) {
	ex, _ := NewPool(2)
	ex.Close()
	ex.Close() // must not panic
	defer func() {
		if recover() == nil {
			t.Error("direct Run after Close should panic")
		}
	}()
	ex.Run(RegionOther, func(w int, ctx *WorkerCtx) {})
}

func TestPoolSessionDegradesAfterPoolClose(t *testing.T) {
	// A session caught mid-analysis by a pool teardown keeps working: its
	// regions run degraded (serially on the caller) with full worker
	// fan-out semantics and live statistics, instead of crashing.
	pool, _ := NewPool(2)
	sess := pool.Session()
	pool.Close()
	var touched int64
	sess.Run(RegionOther, func(w int, ctx *WorkerCtx) {
		atomic.AddInt64(&touched, 1)
		ctx.Ops = float64(w + 1)
	})
	if touched != 2 {
		t.Errorf("degraded region ran for %d workers, want 2", touched)
	}
	st := sess.Stats()
	if st.Regions != 1 || st.TotalOps != 3 {
		t.Errorf("degraded session stats: regions=%d totalOps=%v", st.Regions, st.TotalOps)
	}
}

func TestStatsImbalance(t *testing.T) {
	var st Stats
	// Two regions with 4 workers: one perfectly balanced, one all-on-one.
	st.record(RegionNewview, []float64{25, 25, 25, 25}, nil, nil, nil)
	if got := st.Imbalance(4); math.Abs(got-1) > 1e-12 {
		t.Errorf("balanced imbalance = %v, want 1", got)
	}
	st.record(RegionNewview, []float64{100, 0, 0, 0}, []float64{1e-3, 0, 0, 0}, nil, nil)
	// critical = 125, ideal = 200/4 = 50 -> 2.5
	if got := st.Imbalance(4); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("imbalance = %v, want 2.5", got)
	}
	// Cumulative worker totals: 125, 25, 25, 25 -> max/avg = 125/50 = 2.5.
	if got := st.WorkerImbalance(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("worker imbalance = %v, want 2.5", got)
	}
	// All measured time landed on worker 0 -> time imbalance = max/avg = 4.
	if got := st.TimeImbalance(); math.Abs(got-4) > 1e-12 {
		t.Errorf("time imbalance = %v, want 4", got)
	}
	if st.TotalTime != 1e-3 || st.CriticalTime != 1e-3 || st.KindTime[RegionNewview] != 1e-3 {
		t.Errorf("time totals: total=%v critical=%v kind=%v", st.TotalTime, st.CriticalTime, st.KindTime[RegionNewview])
	}
	if st.Imbalance(0) != 1 {
		t.Error("degenerate imbalance should be 1")
	}
	st.Reset()
	if st.Regions != 0 || st.TotalOps != 0 || st.WorkerOps != nil || st.WorkerTime != nil || st.TotalTime != 0 {
		t.Error("Reset failed")
	}
	if st.WorkerImbalance() != 1 || st.TimeImbalance() != 1 {
		t.Error("empty stats imbalances should be 1")
	}
	if st.String() == "" {
		t.Error("String should render")
	}
}

// TestEmptyAssignmentWorkersRecordZeroOps is the regression test for runs
// with more workers than patterns: a worker whose schedule assignment is
// empty must enter the statistics with exactly zero ops — never a stale
// counter from a previous region — so it cannot skew the imbalance metrics.
func TestEmptyAssignmentWorkersRecordZeroOps(t *testing.T) {
	mk := func(name string, ex Executor) {
		t.Run(name, func(t *testing.T) {
			defer ex.Close()
			// Region 1: every worker busy (seeds nonzero Ops everywhere).
			ex.Run(RegionNewview, func(w int, ctx *WorkerCtx) { ctx.Ops += 100 })
			// Region 2: only workers 0 and 1 have an assignment.
			ex.Run(RegionEvaluate, func(w int, ctx *WorkerCtx) {
				if w < 2 {
					ctx.Ops += 40
				}
			})
			st := ex.Stats()
			T := ex.Threads()
			wantTotal := float64(100*T) + 80
			if st.TotalOps != wantTotal {
				t.Errorf("TotalOps = %v, want %v (stale ops leaked into the empty workers?)", st.TotalOps, wantTotal)
			}
			if st.CriticalOps != 140 {
				t.Errorf("CriticalOps = %v, want 140", st.CriticalOps)
			}
			for w := 2; w < T; w++ {
				if st.WorkerOps[w] != 100 {
					t.Errorf("worker %d cumulative ops = %v, want 100", w, st.WorkerOps[w])
				}
			}
			// Worker totals 140,140,100,...: max/avg must reflect the idle tail.
			avg := st.TotalOps / float64(T)
			want := 140 / avg
			if got := st.WorkerImbalance(); math.Abs(got-want) > 1e-12 {
				t.Errorf("WorkerImbalance = %v, want %v", got, want)
			}
		})
	}
	pool, err := NewPool(6)
	if err != nil {
		t.Fatal(err)
	}
	mk("pool", pool)
	sim, err := NewSim(6)
	if err != nil {
		t.Fatal(err)
	}
	mk("sim", sim)
}

func TestPlatformModel(t *testing.T) {
	for _, p := range Platforms {
		if p.PerOpNS(1) != p.SeqOpNS {
			t.Errorf("%s: PerOpNS(1) != SeqOpNS", p.Name)
		}
		if p.PerOpNS(8) <= p.PerOpNS(1) {
			t.Errorf("%s: per-op cost must grow with threads", p.Name)
		}
		if p.SyncNS(1) != 0 {
			t.Errorf("%s: sequential runs must pay no sync cost", p.Name)
		}
		if p.SyncNS(16) <= p.SyncNS(2) {
			t.Errorf("%s: sync cost must grow with threads", p.Name)
		}
	}
	// Paper's platform ordering: Nehalem sequential is fastest, ~40% faster
	// than Clovertown; AMD sequential is slower than Intel.
	if !(Nehalem.SeqOpNS < Clovertown.SeqOpNS) {
		t.Error("Nehalem must be faster than Clovertown sequentially")
	}
	ratio := Clovertown.SeqOpNS / Nehalem.SeqOpNS
	if ratio < 1.3 || ratio > 2.0 {
		t.Errorf("Clovertown/Nehalem sequential ratio %v outside plausible band", ratio)
	}
	if !(Barcelona.SeqOpNS > Clovertown.SeqOpNS && X4600.SeqOpNS > Nehalem.SeqOpNS) {
		t.Error("AMD platforms must be slower sequentially than Intel")
	}
	// Clovertown's bandwidth wall: at 8 threads its per-op inflation must
	// far exceed Nehalem's.
	if Clovertown.PerOpNS(8)/Clovertown.SeqOpNS < 1.5 {
		t.Error("Clovertown must be strongly bandwidth limited at 8 threads")
	}
	if Nehalem.PerOpNS(8)/Nehalem.SeqOpNS > 1.3 {
		t.Error("Nehalem must scale well to 8 threads")
	}
}

func TestPlatformEvalSeconds(t *testing.T) {
	var st Stats
	even := []float64{1e9, 1e9, 1e9, 1e9, 1e9, 1e9, 1e9, 1e9}
	st.record(RegionNewview, even, nil, nil, nil) // 1e9 critical ops
	st.record(RegionEvaluate, even, nil, nil, nil)
	p := Nehalem
	seq := p.EvalSeconds(&st, 1)
	want := p.SeqOpNS * 2e9 * 1e-9
	if math.Abs(seq-want) > 1e-9 {
		t.Errorf("sequential eval = %v, want %v", seq, want)
	}
	// With threads the same critical ops cost more per op plus sync.
	par := p.EvalSeconds(&st, 8)
	if par <= seq*1.01 {
		// same critical ops -> parallel pricing must include contention.
		t.Errorf("8-thread pricing of identical critical path should exceed sequential: %v vs %v", par, seq)
	}
	if _, err := PlatformByName("Nehalem"); err != nil {
		t.Error(err)
	}
	if _, err := PlatformByName("PDP11"); err == nil {
		t.Error("expected error for unknown platform")
	}
}

func TestSimMatchesPoolNumerically(t *testing.T) {
	// The same strided computation must produce identical results under Sim
	// and Pool (same worker decomposition).
	const n = 4321
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i))
	}
	run := func(ex Executor) float64 {
		threads := ex.Threads()
		partials := make([]float64, threads*8)
		ex.Run(RegionEvaluate, func(w int, ctx *WorkerCtx) {
			s := 0.0
			for i := strideFrom(0, w, threads); i < n; i += threads {
				s += data[i] * data[i]
			}
			partials[w*8] = s
		})
		total := 0.0
		for w := 0; w < threads; w++ {
			total += partials[w*8]
		}
		return total
	}
	sim, _ := NewSim(4)
	pool, _ := NewPool(4)
	defer pool.Close()
	if a, b := run(sim), run(pool); a != b {
		t.Errorf("Sim and Pool disagree: %v vs %v", a, b)
	}
}

func TestPoolSessionsIsolateStats(t *testing.T) {
	pool, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	s1 := pool.Session()
	s2 := pool.Session()
	if s1.Threads() != 2 || s2.Threads() != 2 {
		t.Fatalf("session threads: %d, %d", s1.Threads(), s2.Threads())
	}
	s1.Run(RegionNewview, func(w int, ctx *WorkerCtx) { ctx.Ops = 1 })
	s1.Run(RegionEvaluate, func(w int, ctx *WorkerCtx) { ctx.Ops = 2 })
	s2.Run(RegionNewview, func(w int, ctx *WorkerCtx) { ctx.Ops = 3 })
	if got := s1.Stats().Regions; got != 2 {
		t.Errorf("session 1 regions = %d, want 2", got)
	}
	if got := s2.Stats().Regions; got != 1 {
		t.Errorf("session 2 regions = %d, want 1", got)
	}
	if got := pool.Stats().Regions; got != 3 {
		t.Errorf("pool aggregate regions = %d, want 3", got)
	}
	if got := s2.Stats().TotalOps; got != 6 {
		t.Errorf("session 2 total ops = %v, want 6", got)
	}
	// Session close is idempotent and leaves pool and sibling sessions alive.
	s2.Close()
	s2.Close()
	s1.Run(RegionOther, func(w int, ctx *WorkerCtx) { ctx.Ops = 1 })
	if got := s1.Stats().Regions; got != 3 {
		t.Errorf("session 1 after sibling close: regions = %d, want 3", got)
	}
}

func TestPoolConcurrentSessions(t *testing.T) {
	// Many sessions hammer one pool concurrently; regions serialize, so each
	// session's own computation and statistics must come out exactly as if
	// it ran alone. Run under -race in CI.
	pool, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	const sessions = 8
	const regionsPer = 50
	var wg sync.WaitGroup
	sums := make([]float64, sessions)
	for s := 0; s < sessions; s++ {
		sess := pool.Session()
		wg.Add(1)
		go func(s int, sess *PoolSession) {
			defer wg.Done()
			defer sess.Close()
			acc := make([]float64, sess.Threads()*8) // padded per-worker cells
			for r := 0; r < regionsPer; r++ {
				sess.Run(RegionNewview, func(w int, ctx *WorkerCtx) {
					acc[w*8] += float64(s + r + w)
					ctx.Ops = float64(w + 1)
				})
			}
			for w := 0; w < sess.Threads(); w++ {
				sums[s] += acc[w*8]
			}
			if got := sess.Stats().Regions; got != regionsPer {
				t.Errorf("session %d regions = %d, want %d", s, got, regionsPer)
			}
		}(s, sess)
	}
	wg.Wait()
	for s := 0; s < sessions; s++ {
		want := 0.0
		for r := 0; r < regionsPer; r++ {
			for w := 0; w < 4; w++ {
				want += float64(s + r + w)
			}
		}
		if sums[s] != want {
			t.Errorf("session %d sum = %v, want %v", s, sums[s], want)
		}
	}
	if got := pool.Stats().Regions; got != sessions*regionsPer {
		t.Errorf("pool aggregate regions = %d, want %d", got, sessions*regionsPer)
	}
}

func TestPoolCloseIdempotentConcurrent(t *testing.T) {
	pool, err := NewPool(3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); pool.Close() }()
	}
	wg.Wait()
	pool.Close() // and once more for good measure
}
