package schedule

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSpans builds a consecutive span layout from a seed: up to 8 spans of
// up to 400 patterns each, alternating cheap (DNA-like) and expensive
// (protein-like) per-pattern costs.
func randomSpans(seed int64) []Span {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(8)
	spans := make([]Span, n)
	off := 0
	for i := range spans {
		length := rng.Intn(400) // empty spans allowed
		cost := 160.0
		if rng.Intn(2) == 1 {
			cost = 3360.0 // ~21x, the DNA vs protein newview ratio at 4 cats
		}
		spans[i] = Span{Lo: off, Hi: off + length, Cost: cost}
		off += length
	}
	return spans
}

// TestEveryStrategyPartitions is the core property: for every strategy, every
// global pattern index in [0, Total) is assigned to exactly one worker, and
// runs stay inside their span, ascending and disjoint.
func TestEveryStrategyPartitions(t *testing.T) {
	for _, strat := range []Strategy{Cyclic, Block, Weighted, Measured} {
		strat := strat
		f := func(seedRaw uint16, tRaw uint8) bool {
			spans := randomSpans(int64(seedRaw))
			threads := 1 + int(tRaw%33)
			s, err := New(strat, threads, spans)
			if err != nil {
				return false
			}
			total := s.Total()
			owner := make([]int, total)
			for i := range owner {
				owner[i] = -1
			}
			for w := 0; w < threads; w++ {
				for sp, span := range spans {
					prev := span.Lo - 1
					for _, r := range s.SpanRuns(w, sp) {
						if r.Step < 1 || r.Lo <= prev || r.Hi > span.Hi || r.Lo < span.Lo || r.Hi <= r.Lo {
							t.Logf("%v: bad run %+v in span %d [%d,%d)", strat, r, sp, span.Lo, span.Hi)
							return false
						}
						prev = r.Lo
						n := 0
						for i := r.Lo; i < r.Hi; i += r.Step {
							if owner[i] != -1 {
								t.Logf("%v: index %d owned by both %d and %d", strat, i, owner[i], w)
								return false
							}
							owner[i] = w
							n++
						}
						if n != r.Len() {
							t.Logf("%v: run %+v iterates %d indices, Len() says %d", strat, r, n, r.Len())
							return false
						}
					}
				}
			}
			for i, w := range owner {
				if w == -1 {
					t.Logf("%v: index %d unassigned", strat, i)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
			t.Errorf("%v: %v", strat, err)
		}
	}
}

// TestCyclicMatchesStrideArithmetic pins Cyclic to the exact strided
// distribution the kernels used to hard-code: worker w owns precisely the
// indices reachable by `for i := strideStart(lo, w, T); i < hi; i += T`.
func TestCyclicMatchesStrideArithmetic(t *testing.T) {
	f := func(seedRaw uint16, tRaw uint8) bool {
		spans := randomSpans(int64(seedRaw) + 9999)
		threads := 1 + int(tRaw%33)
		s, err := New(Cyclic, threads, spans)
		if err != nil {
			return false
		}
		for w := 0; w < threads; w++ {
			for sp, span := range spans {
				var want []int
				for i := strideStart(span.Lo, w, threads); i < span.Hi; i += threads {
					want = append(want, i)
				}
				if len(want) != strideCount(span.Lo, span.Hi, w, threads) {
					return false
				}
				var got []int
				for _, r := range s.SpanRuns(w, sp) {
					for i := r.Lo; i < r.Hi; i += r.Step {
						got = append(got, i)
					}
				}
				if len(got) != len(want) {
					return false
				}
				for k := range got {
					if got[k] != want[k] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestStrideHelpers(t *testing.T) {
	// Worker w owns indices i ≡ w (mod T) within [lo, hi); these cases are
	// carried over from the old parallel.StrideStart/StrideCount tests.
	for _, tc := range []struct{ lo, hi, w, t, start, count int }{
		{0, 10, 0, 4, 0, 3},
		{0, 10, 1, 4, 1, 3},
		{0, 10, 2, 4, 2, 2},
		{0, 10, 3, 4, 3, 2},
		{5, 9, 0, 4, 8, 1},
		{5, 9, 1, 4, 5, 1},
		{5, 9, 3, 4, 7, 1},
		{5, 6, 2, 4, 9, 0}, // start beyond hi -> 0
		{7, 7, 0, 2, 8, 0},
		{0, 3, 0, 8, 0, 1}, // fewer patterns than workers: some idle
		{0, 3, 5, 8, 5, 0},
	} {
		s := strideStart(tc.lo, tc.w, tc.t)
		if s != tc.start && strideCount(tc.lo, tc.hi, tc.w, tc.t) != 0 {
			t.Errorf("strideStart(%d,%d,%d) = %d, want %d", tc.lo, tc.w, tc.t, s, tc.start)
		}
		if c := strideCount(tc.lo, tc.hi, tc.w, tc.t); c != tc.count {
			t.Errorf("strideCount(%d,%d,%d,%d) = %d, want %d", tc.lo, tc.hi, tc.w, tc.t, c, tc.count)
		}
	}
}

// TestWeightedPerSpanBand verifies that Weighted never trades narrow-region
// balance for global balance: every worker's share of every span stays within
// the cyclic band [floor(n/T), ceil(n/T)].
func TestWeightedPerSpanBand(t *testing.T) {
	f := func(seedRaw uint16, tRaw uint8) bool {
		spans := randomSpans(int64(seedRaw) + 5555)
		threads := 1 + int(tRaw%33)
		s, err := New(Weighted, threads, spans)
		if err != nil {
			return false
		}
		for sp, span := range spans {
			n := span.Len()
			low, high := n/threads, (n+threads-1)/threads
			for w := 0; w < threads; w++ {
				c := s.Count(w, sp)
				if c < low || c > high {
					t.Logf("span %d (n=%d, T=%d): worker %d owns %d, band [%d,%d]",
						sp, n, threads, w, c, low, high)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestWeightedBalancesMixedCosts pins the point of the Weighted strategy: on
// a mixed cheap/expensive layout whose cyclic remainders pile the expensive
// extras onto low-numbered workers, Weighted's static cost imbalance must not
// exceed Cyclic's.
func TestWeightedBalancesMixedCosts(t *testing.T) {
	// 6 protein-like spans of 4k+1 patterns: under 4-thread cyclic striding
	// the +1 extras depend on each span's offset; with consecutive offsets of
	// equal lengths they rotate, so add DNA filler spans to desynchronize.
	var spans []Span
	off := 0
	add := func(n int, cost float64) {
		spans = append(spans, Span{Lo: off, Hi: off + n, Cost: cost})
		off += n
	}
	for i := 0; i < 6; i++ {
		add(33, 3360) // 33 = 8*4+1: one worker gets an extra protein column
		add(40, 160)
	}
	threads := 4
	cyc, err := New(Cyclic, threads, spans)
	if err != nil {
		t.Fatal(err)
	}
	wtd, err := New(Weighted, threads, spans)
	if err != nil {
		t.Fatal(err)
	}
	ci, wi := cyc.Imbalance(), wtd.Imbalance()
	if wi > ci+1e-12 {
		t.Errorf("weighted imbalance %v exceeds cyclic %v", wi, ci)
	}
	if wi < 1 || ci < 1 {
		t.Errorf("imbalance below 1: weighted %v cyclic %v", wi, ci)
	}
}

// TestParseAndString round-trips strategy names.
func TestParseAndString(t *testing.T) {
	for _, strat := range []Strategy{Cyclic, Block, Weighted, Measured} {
		got, err := Parse(strat.String())
		if err != nil || got != strat {
			t.Errorf("Parse(%q) = %v, %v", strat.String(), got, err)
		}
	}
	if got, err := Parse("adaptive"); err != nil || got != Measured {
		t.Errorf("Parse(adaptive) = %v, %v; want Measured", got, err)
	}
	if _, err := Parse("round-robin"); err == nil {
		t.Error("expected error for unknown strategy name")
	}
	if _, err := New(Cyclic, 0, nil); err == nil {
		t.Error("expected error for zero threads")
	}
	if _, err := New(Cyclic, 2, []Span{{Lo: 1, Hi: 3}}); err == nil {
		t.Error("expected error for non-consecutive spans")
	}
}

// TestRebalanceNeverDropsOrDuplicatesPatterns is the satellite property test
// for the feedback loop: rebuilding a schedule from arbitrary observed
// per-pattern costs (including zero, NaN, and wildly skewed entries) must
// still assign every global pattern index to exactly one worker, keep the
// span layout identical, and carry the Measured strategy.
func TestRebalanceNeverDropsOrDuplicatesPatterns(t *testing.T) {
	f := func(seedRaw uint16, tRaw uint8, costRaw uint32) bool {
		spans := randomSpans(int64(seedRaw) + 31337)
		threads := 1 + int(tRaw%33)
		base, err := New(Measured, threads, spans)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(int64(costRaw)))
		observed := make(PartitionCosts, len(spans))
		for i := range observed {
			switch rng.Intn(5) {
			case 0:
				observed[i] = 0 // no observation: keep prior cost
			case 1:
				observed[i] = math.NaN() // corrupt sample: keep prior cost
			default:
				observed[i] = math.Exp(rng.Float64()*12 - 6) // ~e^-6..e^6 spread
			}
		}
		reb, err := base.Rebalance(observed)
		if err != nil {
			t.Logf("Rebalance failed: %v", err)
			return false
		}
		if reb.Strategy() != Measured || reb.Threads() != threads || reb.Total() != base.Total() {
			t.Logf("rebalanced identity wrong: %v T=%d total=%d", reb.Strategy(), reb.Threads(), reb.Total())
			return false
		}
		owner := make([]int, reb.Total())
		for i := range owner {
			owner[i] = -1
		}
		for w := 0; w < threads; w++ {
			for sp, span := range spans {
				for _, r := range reb.SpanRuns(w, sp) {
					if r.Lo < span.Lo || r.Hi > span.Hi {
						t.Logf("run %+v escapes span %d [%d,%d)", r, sp, span.Lo, span.Hi)
						return false
					}
					for i := r.Lo; i < r.Hi; i += r.Step {
						if owner[i] != -1 {
							t.Logf("pattern %d duplicated across workers %d and %d", i, owner[i], w)
							return false
						}
						owner[i] = w
					}
				}
			}
		}
		for i, w := range owner {
			if w == -1 {
				t.Logf("pattern %d dropped", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
	// Length mismatch must be rejected.
	base, err := New(Measured, 3, []Span{{0, 10, 1}, {10, 30, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Rebalance(PartitionCosts{1}); err == nil {
		t.Error("expected error for observed-cost length mismatch")
	}
}

// TestChunkRunsCoverAssignmentExactly is the chunk-emission property behind
// the work-stealing runtime: for every strategy, splitting every worker's
// span runs into chunks reproduces the schedule's assignment exactly — no
// pattern dropped, duplicated, or moved to another worker — and every chunk
// respects the size contract (at least the aligned minimum, at most one
// pattern short of two chunks, except where the whole run is smaller).
func TestChunkRunsCoverAssignmentExactly(t *testing.T) {
	for _, strat := range []Strategy{Cyclic, Block, Weighted, Measured} {
		strat := strat
		f := func(seedRaw uint16, tRaw uint8, mcRaw uint8) bool {
			spans := randomSpans(int64(seedRaw) + 555)
			threads := 1 + int(tRaw%17)
			minChunk := 1 + int(mcRaw%97)
			s, err := New(strat, threads, spans)
			if err != nil {
				return false
			}
			mc := (minChunk + ChunkAlign - 1) / ChunkAlign * ChunkAlign
			owner := make([]int, s.Total())
			for i := range owner {
				owner[i] = -1
			}
			for w := 0; w < threads; w++ {
				for sp := range spans {
					whole := 0
					for _, r := range s.SpanRuns(w, sp) {
						whole += r.Len()
					}
					got := 0
					chunks := s.ChunkRuns(w, sp, minChunk)
					for ci, c := range chunks {
						n := c.Len()
						got += n
						if n == 0 {
							t.Logf("%v: empty chunk %+v", strat, c)
							return false
						}
						if n > 2*mc-1 && whole > n {
							t.Logf("%v: chunk %+v has %d patterns (> %d) but run is larger", strat, c, n, 2*mc-1)
							return false
						}
						// Interior boundaries of contiguous runs must fall on
						// globally aligned pattern indices (the false-sharing
						// contract the steal runtime relies on).
						if c.Step == 1 && ci > 0 && chunks[ci-1].Step == 1 && chunks[ci-1].Hi == c.Lo {
							if c.Lo%ChunkAlign != 0 {
								t.Logf("%v: interior cut at %d is not %d-aligned", strat, c.Lo, ChunkAlign)
								return false
							}
						}
						for i := c.Lo; i < c.Hi; i += c.Step {
							if owner[i] != -1 {
								t.Logf("%v: pattern %d chunked twice (workers %d, %d)", strat, i, owner[i], w)
								return false
							}
							owner[i] = w
						}
					}
					if got != whole {
						t.Logf("%v: worker %d span %d chunks cover %d of %d patterns", strat, w, sp, got, whole)
						return false
					}
				}
			}
			// Chunk ownership must equal run ownership index by index.
			for w := 0; w < threads; w++ {
				for sp := range spans {
					for _, r := range s.SpanRuns(w, sp) {
						for i := r.Lo; i < r.Hi; i += r.Step {
							if owner[i] != w {
								t.Logf("%v: pattern %d assigned to %d but chunked to %d", strat, i, w, owner[i])
								return false
							}
						}
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%v: %v", strat, err)
		}
	}
}

// TestMergeEWMACushionsSpike is the cost-smoothing satellite check: a single
// wildly corrupted measurement window moves the merged cost only by the decay
// fraction, invalid observations keep the prior, and a first observation with
// no prior is adopted outright.
func TestMergeEWMACushionsSpike(t *testing.T) {
	prior := PartitionCosts{100, 100, 100, 0}
	observed := PartitionCosts{10000, math.NaN(), 0, 500}
	got := prior.MergeEWMA(observed, 0.25)
	want := PartitionCosts{0.25*10000 + 0.75*100, 100, 100, 500}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("merged[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// The spike is damped: one window at 100x moves the cost to 2575, not
	// 10000; a second clean window pulls it most of the way back.
	recovered := got.MergeEWMA(PartitionCosts{100, 100, 100, 500}, 0.25)
	if recovered[0] >= got[0] || recovered[0] < 100 {
		t.Errorf("second clean window did not recover toward truth: %v -> %v", got[0], recovered[0])
	}
	// Nil prior adopts observations; invalid decay falls back to no smoothing.
	first := PartitionCosts(nil).MergeEWMA(PartitionCosts{7, 0}, 0.25)
	if first[0] != 7 || first[1] != 0 {
		t.Errorf("nil-prior merge = %v, want [7 0]", first)
	}
	raw := prior.MergeEWMA(observed, -3)
	if raw[0] != 10000 || raw[1] != 100 {
		t.Errorf("invalid decay merge = %v, want observed-or-prior", raw)
	}
	if prior[0] != 100 {
		t.Error("MergeEWMA modified its receiver")
	}
}

// TestBlockIsContiguous verifies each worker owns at most one contiguous
// global range under Block.
func TestBlockIsContiguous(t *testing.T) {
	spans := randomSpans(77)
	s, err := New(Block, 5, spans)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 5; w++ {
		runs := s.WorkerRuns(w)
		for i, r := range runs {
			if r.Step != 1 {
				t.Errorf("worker %d: block run %+v is not contiguous", w, r)
			}
			if i > 0 && r.Lo != runs[i-1].Hi {
				t.Errorf("worker %d: gap between %+v and %+v", w, runs[i-1], r)
			}
		}
	}
}

// TestSequentialDegeneratesToFullSpans checks that T=1 schedules collapse to
// one run per span for every strategy (no per-pattern run overhead).
func TestSequentialDegeneratesToFullSpans(t *testing.T) {
	spans := []Span{{0, 100, 160}, {100, 250, 3360}}
	for _, strat := range []Strategy{Cyclic, Block, Weighted, Measured} {
		s, err := New(strat, 1, spans)
		if err != nil {
			t.Fatal(err)
		}
		for sp, span := range spans {
			runs := s.SpanRuns(0, sp)
			if len(runs) != 1 || runs[0] != (Run{Lo: span.Lo, Hi: span.Hi, Step: 1}) {
				t.Errorf("%v: span %d runs = %+v, want one full contiguous run", strat, sp, runs)
			}
		}
		if s.Imbalance() != 1 {
			t.Errorf("%v: T=1 imbalance = %v, want 1", strat, s.Imbalance())
		}
	}
}
