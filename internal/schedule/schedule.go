// Package schedule computes pattern-to-worker assignments for the likelihood
// kernel. The global pattern space [0, Total) is the concatenation of the
// partitions' compressed patterns; a Schedule precomputes, per worker and per
// partition, the [Lo, Hi) index runs that worker owns (contiguous for the
// block and weighted strategies, stride-encoded for cyclic). Kernels iterate
// runs instead of hard-coding a distribution, which turns the paper's fixed
// design decision (cyclic striding, Sec. IV) into a pluggable, benchmarkable
// axis:
//
//   - Cyclic: worker w owns the indices congruent to w modulo the worker
//     count. This is the paper's choice and the default; it balances every
//     partition individually by pattern count, so even narrow single-partition
//     regions (oldPAR) keep all workers busy.
//   - Block: each worker owns one contiguous slice of the whole pattern
//     space. The ablation the paper argues against: narrow regions land on
//     one or two workers, and mixed alignments give some workers only cheap
//     columns.
//   - Weighted: an LPT (longest-processing-time) bin-packing of per-partition
//     pattern chunks onto workers using per-pattern op costs, so mixed
//     DNA/protein datasets balance by cost rather than by count while every
//     worker still receives at most one contiguous run per partition.
//   - Measured: the feedback-driven variant of Weighted. It is seeded from
//     the analytic cost model, then rebuilt from observed per-pattern costs
//     (measured per-worker wall time attributed to partitions) via Rebalance
//     whenever the measured imbalance crosses a hysteresis threshold.
//
// Schedules feed the deterministic kernels, so schedule construction is a
// deterministic scope itself: equal inputs must yield equal assignments.
//
//plk:deterministic
package schedule

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Strategy selects a pattern-to-worker assignment policy.
type Strategy int

// The built-in strategies.
const (
	// Cyclic is the paper's distribution: indices modulo the worker count.
	Cyclic Strategy = iota
	// Block gives each worker one contiguous slice of the global space.
	Block
	// Weighted LPT-bin-packs contiguous per-partition chunks by op cost.
	Weighted
	// Measured is the feedback-driven strategy: it starts out identical to
	// Weighted (the analytic cost model is the best prior available before
	// anything has run), and is then periodically rebuilt from *observed*
	// per-pattern costs via Rebalance — measured per-worker wall time
	// attributed back to (partition, pattern-count) samples by the engine.
	// This closes the loop the static strategies leave open: tip tables,
	// cache effects, or a mispriced model shift real costs away from the
	// analytic prediction, and only measurement can see that.
	Measured
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Cyclic:
		return "cyclic"
	case Block:
		return "block"
	case Weighted:
		return "weighted"
	case Measured:
		return "measured"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Parse resolves a strategy name ("cyclic", "block", "weighted",
// "measured"/"adaptive").
func Parse(name string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "cyclic", "cycle", "stride":
		return Cyclic, nil
	case "block", "contiguous":
		return Block, nil
	case "weighted", "lpt", "cost":
		return Weighted, nil
	case "measured", "adaptive", "feedback":
		return Measured, nil
	default:
		return 0, fmt.Errorf("schedule: unknown strategy %q (want cyclic, block, weighted, or measured/adaptive)", name)
	}
}

// Span is one partition's extent in the global pattern space plus the
// weighted op cost of a single pattern in it (e.g. the newview cost: ~25x
// larger for 20-state protein than for 4-state DNA columns).
type Span struct {
	Lo, Hi int
	Cost   float64
}

// Len returns the pattern count of the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Run is a strided half-open global pattern index interval: the indices
// Lo, Lo+Step, Lo+2*Step, ... below Hi. Step is always >= 1; block and
// weighted assignments emit contiguous runs (Step == 1), while one cyclic
// run encodes a worker's whole share of a span in O(1) memory (Step == T).
// Iterate with `for i := r.Lo; i < r.Hi; i += r.Step`.
type Run struct {
	Lo, Hi, Step int
}

// Len returns the pattern count of the run.
func (r Run) Len() int {
	if r.Hi <= r.Lo {
		return 0
	}
	return (r.Hi - r.Lo + r.Step - 1) / r.Step
}

// Schedule is a precomputed pattern-to-worker assignment: for every worker
// and every span (partition), an ordered list of disjoint runs. Together the
// runs of all workers partition every span exactly.
type Schedule struct {
	strategy Strategy
	threads  int
	total    int
	spans    []Span
	runs     [][][]Run // [worker][span] -> ascending disjoint runs
}

// New builds a schedule for the given spans. Spans must be consecutive:
// span 0 starts at 0 and span i+1 starts where span i ends.
func New(strategy Strategy, threads int, spans []Span) (*Schedule, error) {
	if threads < 1 {
		return nil, fmt.Errorf("schedule: thread count %d must be positive", threads)
	}
	off := 0
	for i, sp := range spans {
		if sp.Lo != off || sp.Hi < sp.Lo {
			return nil, fmt.Errorf("schedule: span %d [%d,%d) does not continue at offset %d", i, sp.Lo, sp.Hi, off)
		}
		if sp.Cost < 0 {
			return nil, fmt.Errorf("schedule: span %d has negative cost %v", i, sp.Cost)
		}
		off = sp.Hi
	}
	s := &Schedule{
		strategy: strategy,
		threads:  threads,
		total:    off,
		spans:    append([]Span(nil), spans...),
		runs:     make([][][]Run, threads),
	}
	for w := range s.runs {
		s.runs[w] = make([][]Run, len(spans))
	}
	switch strategy {
	case Cyclic:
		s.buildCyclic()
	case Block:
		s.buildBlock()
	case Weighted, Measured:
		// Measured starts from the same analytic-cost LPT pack as Weighted;
		// observed costs arrive later through Rebalance.
		s.buildWeighted()
	default:
		return nil, fmt.Errorf("schedule: unknown strategy %v", strategy)
	}
	return s, nil
}

// Strategy returns the policy the schedule was built with.
func (s *Schedule) Strategy() Strategy { return s.strategy }

// Threads returns the worker count.
func (s *Schedule) Threads() int { return s.threads }

// Total returns the global pattern count.
func (s *Schedule) Total() int { return s.total }

// NumSpans returns the span (partition) count.
func (s *Schedule) NumSpans() int { return len(s.spans) }

// Span returns span sp (its global pattern extent and per-pattern cost).
func (s *Schedule) Span(sp int) Span { return s.spans[sp] }

// SpanRuns returns worker w's runs inside span sp, ascending and disjoint.
// The returned slice is shared; callers must not modify it.
func (s *Schedule) SpanRuns(w, sp int) []Run { return s.runs[w][sp] }

// ChunkAlign is the pattern-count multiple that chunk cuts snap to. Sixteen
// patterns cover one 64-byte cache line of int32 scaling exponents (the
// densest per-pattern array the kernels write), so two workers processing
// adjacent chunks of a contiguous run never contend on the same scaling
// cache line; CLV rows are >= 32 bytes per pattern and need no finer grain.
const ChunkAlign = 16

// ChunkRuns splits worker w's runs inside span sp into chunk-sized sub-runs
// for the work-stealing runtime. The chunk size is minChunk rounded up to a
// ChunkAlign multiple; for contiguous runs (Step 1) every interior cut is
// additionally snapped forward onto a *global* pattern index that is a
// ChunkAlign multiple — a run can start anywhere under the LPT packs, so
// run-relative cuts alone would not keep two adjacent chunks off one cache
// line of the scaling vectors (strided cyclic runs interleave workers per
// pattern anyway, so their cuts stay on plain size boundaries). The final
// chunk of each run absorbs any remainder shorter than a full chunk; with
// the alignment snap a chunk therefore holds between minChunk-(ChunkAlign-1)
// and 2*minChunk-1 patterns (except a whole run smaller than that). The
// union of the emitted chunks over all workers and spans is exactly the
// schedule's assignment — chunking never drops, duplicates, or reorders a
// pattern, whatever the strategy. minChunk < 1 emits one chunk per run.
func (s *Schedule) ChunkRuns(w, sp, minChunk int) []Run {
	var out []Run
	mc := minChunk
	if mc < 1 {
		mc = 1 << 62 // one chunk per run
	} else {
		mc = (mc + ChunkAlign - 1) / ChunkAlign * ChunkAlign
	}
	for _, r := range s.runs[w][sp] {
		n := r.Len()
		if n == 0 {
			continue
		}
		full := n / mc // cut after every mc patterns; remainder joins the last
		if full <= 1 {
			out = append(out, r)
			continue
		}
		// Interior cuts sit at pattern ordinal c*mc + snap; mc is itself an
		// alignment multiple, so shifting every cut by one common snap < mc
		// aligns them all globally, growing the first chunk by at most
		// ChunkAlign-1 and shrinking the last by the same.
		snap := 0
		if r.Step == 1 {
			snap = (ChunkAlign - r.Lo%ChunkAlign) % ChunkAlign
		}
		prev := 0
		for c := 1; c <= full; c++ {
			b := c*mc + snap
			if c == full || b > n {
				b = n
			}
			out = append(out, Run{
				Lo:   r.Lo + prev*r.Step,
				Hi:   r.Lo + (b-1)*r.Step + 1,
				Step: r.Step,
			})
			prev = b
			if b == n {
				break
			}
		}
	}
	return out
}

// WorkerRuns returns all runs of worker w across spans, in ascending global
// order (spans are consecutive, so span order is global order).
func (s *Schedule) WorkerRuns(w int) []Run {
	var out []Run
	for sp := range s.spans {
		out = append(out, s.runs[w][sp]...)
	}
	return out
}

// MemoryBytes estimates the schedule's resident heap bytes: the span table
// plus every worker's per-span run lists. Used by the dataset memory
// accounting that prices cache eviction in the serving layer.
func (s *Schedule) MemoryBytes() int64 {
	total := 24 * int64(len(s.spans)) // Span{Lo, Hi int; Cost float64}
	for w := range s.runs {
		for _, runs := range s.runs[w] {
			total += 24 * int64(len(runs)) // Run{Lo, Hi, Step int}
		}
	}
	return total
}

// Count returns how many patterns of span sp worker w owns.
func (s *Schedule) Count(w, sp int) int {
	n := 0
	for _, r := range s.runs[w][sp] {
		n += r.Len()
	}
	return n
}

// StaticOps returns the precomputed per-pattern op cost assigned to each
// worker: StaticOps()[w] = sum over spans of Count(w, span) * span cost.
// It is the assignment's a-priori load prediction, before any region masking.
func (s *Schedule) StaticOps() []float64 {
	loads := make([]float64, s.threads)
	for w := 0; w < s.threads; w++ {
		for sp, span := range s.spans {
			loads[w] += float64(s.Count(w, sp)) * span.Cost
		}
	}
	return loads
}

// Imbalance returns the max/avg ratio of StaticOps (1.0 = perfect balance).
func (s *Schedule) Imbalance() float64 {
	loads := s.StaticOps()
	max, sum := 0.0, 0.0
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(s.threads))
}

// strideStart returns the first global index >= lo owned by worker w under
// cyclic distribution over t workers (the arithmetic the kernels used to
// hard-code; kept as the reference for the Cyclic builder).
func strideStart(lo, w, t int) int {
	r := lo % t
	d := w - r
	if d < 0 {
		d += t
	}
	return lo + d
}

// strideCount returns how many indices in [lo, hi) worker w owns cyclically.
func strideCount(lo, hi, w, t int) int {
	s := strideStart(lo, w, t)
	if s >= hi {
		return 0
	}
	return (hi - s + t - 1) / t
}

// buildCyclic reproduces the strided distribution exactly: worker w owns the
// indices congruent to w modulo the thread count, encoded as one strided run
// per span (Step = T, so a sequential schedule is one contiguous full-span
// run).
func (s *Schedule) buildCyclic() {
	t := s.threads
	for sp, span := range s.spans {
		for w := 0; w < t; w++ {
			if strideCount(span.Lo, span.Hi, w, t) == 0 {
				continue
			}
			s.runs[w][sp] = []Run{{Lo: strideStart(span.Lo, w, t), Hi: span.Hi, Step: t}}
		}
	}
}

// buildBlock slices the whole global space into T contiguous chunks and
// intersects each worker's chunk with every span.
func (s *Schedule) buildBlock() {
	t := s.threads
	chunk := (s.total + t - 1) / t
	if chunk == 0 {
		chunk = 1
	}
	for w := 0; w < t; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > s.total {
			hi = s.total
		}
		for sp, span := range s.spans {
			a, b := lo, hi
			if a < span.Lo {
				a = span.Lo
			}
			if b > span.Hi {
				b = span.Hi
			}
			if a < b {
				s.runs[w][sp] = []Run{{Lo: a, Hi: b, Step: 1}}
			}
		}
	}
}

// buildWeighted is the cost-aware assignment. Every span is cut into the same
// share sizes the cyclic distribution would produce (len/T patterns per
// worker, the len%T remainder spread as +1 extras), but shares are kept
// contiguous and placed by LPT bin-packing: chunks are sorted by descending
// op cost and each is given to the least-loaded worker that has no chunk of
// that span yet. A final swap pass moves +1 extras from the most- to the
// least-loaded worker while that narrows the spread. Per-span counts match
// cyclic within the same ±1 pattern, so narrow (single-partition) regions
// stay as balanced as the paper's distribution, while the global per-worker
// cost totals become strictly better balanced on mixed DNA/protein data.
func (s *Schedule) buildWeighted() {
	t := s.threads
	type chunk struct {
		span, size int
	}
	var items []chunk
	for sp, span := range s.spans {
		n := span.Len()
		if n == 0 {
			continue
		}
		nc := t
		if n < t {
			nc = n
		}
		base, extra := n/nc, n%nc
		for c := 0; c < nc; c++ {
			size := base
			if c < extra {
				size++
			}
			items = append(items, chunk{span: sp, size: size})
		}
	}
	// LPT: largest chunks first; deterministic tie-breaks.
	sort.SliceStable(items, func(i, j int) bool {
		ci := float64(items[i].size) * s.spans[items[i].span].Cost
		cj := float64(items[j].size) * s.spans[items[j].span].Cost
		if ci != cj {
			return ci > cj
		}
		return items[i].span < items[j].span
	})
	loads := make([]float64, t)
	counts := make([][]int, t) // [worker][span] -> assigned pattern count
	for w := range counts {
		counts[w] = make([]int, len(s.spans))
	}
	taken := make([][]bool, t) // [worker][span] -> already has a chunk
	for w := range taken {
		taken[w] = make([]bool, len(s.spans))
	}
	for _, it := range items {
		best := -1
		for w := 0; w < t; w++ {
			if taken[w][it.span] {
				continue
			}
			if best < 0 || loads[w] < loads[best] {
				best = w
			}
		}
		taken[best][it.span] = true
		counts[best][it.span] = it.size
		loads[best] += float64(it.size) * s.spans[it.span].Cost
	}
	// Refinement: move one pattern of some span from the most-loaded to the
	// least-loaded worker while the span's cost is below the load gap. This
	// keeps every per-span count within the cyclic ±1 band (a move only
	// happens from a worker holding an above-average share of the span).
	for iter := 0; iter < 4*t*len(s.spans); iter++ {
		wmax, wmin := 0, 0
		for w := 1; w < t; w++ {
			if loads[w] > loads[wmax] {
				wmax = w
			}
			if loads[w] < loads[wmin] {
				wmin = w
			}
		}
		gap := loads[wmax] - loads[wmin]
		moved := false
		// Prefer moving the most expensive pattern that still shrinks the gap.
		// A move is legal only while both counts stay inside the cyclic band
		// [floor(n/T), ceil(n/T)], preserving per-span (narrow-region) balance.
		bestSpan, bestCost := -1, 0.0
		for sp, span := range s.spans {
			n := span.Len()
			if n == 0 || span.Cost <= 0 || span.Cost >= gap {
				continue
			}
			low, high := n/t, (n+t-1)/t
			if counts[wmax][sp] > low && counts[wmin][sp] < high {
				if span.Cost > bestCost {
					bestSpan, bestCost = sp, span.Cost
				}
			}
		}
		if bestSpan >= 0 {
			counts[wmax][bestSpan]--
			counts[wmin][bestSpan]++
			loads[wmax] -= bestCost
			loads[wmin] += bestCost
			moved = true
		}
		if !moved {
			break
		}
	}
	// Lay out each span's per-worker counts as contiguous ranges in worker
	// order (deterministic), producing at most one run per worker per span.
	for sp, span := range s.spans {
		off := span.Lo
		for w := 0; w < t; w++ {
			n := counts[w][sp]
			if n == 0 {
				continue
			}
			s.runs[w][sp] = []Run{{Lo: off, Hi: off + n, Step: 1}}
			off += n
		}
	}
}

// PartitionCosts holds one observed per-pattern cost per span (partition),
// in whatever unit the measurement produced (the engine uses seconds per
// pattern). Only cost *ratios* matter to the LPT packing. A zero, negative,
// or NaN entry means "no usable observation for this partition" and leaves
// that span's prior cost in place on Rebalance.
type PartitionCosts []float64

// MergeEWMA folds one measurement window's observed per-pattern costs into a
// running exponentially-weighted average: for every span with a usable
// observation the result is decay*observed + (1-decay)*prior, so a single
// noisy window moves the cost by at most the decay fraction and cannot thrash
// the LPT pack, while a persistent shift still converges geometrically. A
// missing/invalid observation (zero, negative, NaN, Inf) keeps the prior; a
// missing prior (nil receiver, or a zero entry — e.g. a partition that had
// never been sampled) adopts the observation outright, so the first window
// after startup is not damped toward nothing. decay is clamped to (0, 1]; the
// receiver is not modified.
func (prior PartitionCosts) MergeEWMA(observed PartitionCosts, decay float64) PartitionCosts {
	if decay <= 0 || decay > 1 || math.IsNaN(decay) {
		decay = 1
	}
	usable := func(c float64) bool { return c > 0 && !math.IsNaN(c) && !math.IsInf(c, 0) }
	out := make(PartitionCosts, len(observed))
	for i, obs := range observed {
		var pri float64
		if i < len(prior) {
			pri = prior[i]
		}
		switch {
		case usable(obs) && usable(pri):
			out[i] = decay*obs + (1-decay)*pri
		case usable(obs):
			out[i] = obs
		case usable(pri):
			out[i] = pri
		}
	}
	return out
}

// Rebalance derives a new schedule from observed per-pattern costs: the same
// span (partition) boundaries and worker count as s, but each span priced at
// the measured cost instead of the analytic model, then LPT-packed exactly
// like the weighted strategy. The result always carries the Measured
// strategy, covers the identical global pattern space (every pattern index
// assigned to exactly one worker — see the property test), and shares no
// mutable state with s, so callers can atomically swap it in while other
// sessions keep using s.
func (s *Schedule) Rebalance(observed PartitionCosts) (*Schedule, error) {
	if len(observed) != len(s.spans) {
		return nil, fmt.Errorf("schedule: %d observed costs for %d spans", len(observed), len(s.spans))
	}
	spans := append([]Span(nil), s.spans...)
	for i, c := range observed {
		if c > 0 && !math.IsNaN(c) && !math.IsInf(c, 0) {
			spans[i].Cost = c
		}
	}
	return New(Measured, s.threads, spans)
}
