package seqsim

import (
	"fmt"
	"math"
	"math/rand"

	"phylo/internal/alignment"
	"phylo/internal/model"
	"phylo/internal/tree"
)

// Dataset bundles a generated alignment with its partition scheme, the
// generating tree, and the name used in the paper.
type Dataset struct {
	Name      string
	Alignment *alignment.Alignment
	Parts     []alignment.Partition
	SeedTree  *tree.Tree
}

// Stats summarizes the partition geometry in column counts (for the
// unique-column simulated datasets, columns are exactly the distinct
// patterns, m = m').
func (d *Dataset) Stats() alignment.PartitionStats {
	st := alignment.PartitionStats{NumPartitions: len(d.Parts)}
	for i, p := range d.Parts {
		n := len(p.Sites)
		if i == 0 || n < st.MinPatterns {
			st.MinPatterns = n
		}
		if n > st.MaxPatterns {
			st.MaxPatterns = n
		}
		st.TotalPatterns += n
	}
	return st
}

// GridTaxa and GridSites enumerate the paper's 12-dataset simulation grid:
// seed trees with 10, 20, 50 and 100 taxa, alignments of 5,000, 20,000 and
// 50,000 columns.
var (
	GridTaxa  = []int{10, 20, 50, 100}
	GridSites = []int{5000, 20000, 50000}
)

// GridDataset generates the simulated dataset dXX_YYYY of the paper: XX taxa,
// YYYY all-unique DNA columns evolved along a random seed tree under GTR+G
// with per-gene heterogeneity, divided into partitions of partLen columns
// (the p1000/p5000/p10000 schemes). scale shrinks the column count for
// laptop-scale runs while preserving the partition COUNT — pass 1.0 for the
// paper-scale dataset.
func GridDataset(taxa, sites, partLen int, scale float64, seed int64) (*Dataset, error) {
	if partLen > sites {
		return nil, fmt.Errorf("seqsim: partition length %d exceeds %d sites (the paper skips these combinations)", partLen, sites)
	}
	nParts := sites / partLen
	if nParts < 1 {
		nParts = 1
	}
	scaledPart := partLen
	if scale > 0 && scale < 1 {
		scaledPart = int(math.Max(4, float64(partLen)*scale))
	}
	partLens := make([]int, nParts)
	for i := range partLens {
		partLens[i] = scaledPart
	}
	name := fmt.Sprintf("d%d_%d", taxa, sites)
	return generate(name, taxa, partLens, alignment.DNA, seed)
}

// MixedDataset generates a partitioned dataset that interleaves dnaParts DNA
// partitions with aaParts protein partitions, each of partLen columns (scaled
// like GridDataset). Per-pattern kernel cost differs by ~25x between the two
// data types, which makes this the reference workload for comparing
// pattern-to-worker scheduling strategies by cost rather than by count.
// Partition lengths are jittered deterministically (0.6..1.4x) so that the
// per-partition remainders modulo the worker count differ, as they do in real
// phylogenomic partition schemes.
func MixedDataset(taxa, dnaParts, aaParts, partLen int, scale float64, seed int64) (*Dataset, error) {
	if dnaParts < 1 || aaParts < 1 {
		return nil, fmt.Errorf("seqsim: mixed dataset needs both DNA (%d) and AA (%d) partitions", dnaParts, aaParts)
	}
	scaledPart := partLen
	if scale > 0 && scale < 1 {
		scaledPart = int(math.Max(6, float64(partLen)*scale))
	}
	n := dnaParts + aaParts
	rng := rand.New(rand.NewSource(seed + 11))
	partLens := make([]int, n)
	types := make([]alignment.DataType, n)
	for i := range partLens {
		jitter := 0.6 + 0.8*rng.Float64()
		partLens[i] = int(math.Max(4, float64(scaledPart)*jitter))
		types[i] = alignment.DNA
	}
	// Deterministic interleaving: spread AA partitions evenly across the list
	// so neither alphabet clusters at one end of the global pattern space.
	for k := 0; k < aaParts; k++ {
		pos := (k*n + n/2) / aaParts % n
		for types[pos] == alignment.AA {
			pos = (pos + 1) % n
		}
		types[pos] = alignment.AA
	}
	name := fmt.Sprintf("mix%d_%dd%da", taxa, dnaParts, aaParts)
	return generateTyped(name, taxa, partLens, types, seed, nil)
}

// RealWorldSpec describes the shape of one of the paper's real-world
// phylogenomic alignments.
type RealWorldSpec struct {
	Name        string
	Taxa        int
	Partitions  int
	TotalLen    int // distinct alignment patterns in the paper
	MinPart     int
	MaxPart     int
	Type        alignment.DataType
	GapFraction float64 // fraction of absent taxon-partition pairs (gappy data)
}

// The three real-world datasets of Section V, with the published geometry.
var (
	// R26Spec: viral protein alignment, 26 taxa, 26 partitions, 21,451
	// distinct patterns, partition lengths 173..2,695.
	R26Spec = RealWorldSpec{Name: "r26_21451", Taxa: 26, Partitions: 26,
		TotalLen: 21451, MinPart: 173, MaxPart: 2695, Type: alignment.AA, GapFraction: 0.15}
	// R24Spec: viral protein alignment, 24 taxa, 20 partitions, 16,916
	// distinct patterns.
	R24Spec = RealWorldSpec{Name: "r24_16916", Taxa: 24, Partitions: 20,
		TotalLen: 16916, MinPart: 173, MaxPart: 2695, Type: alignment.AA, GapFraction: 0.15}
	// R125Spec: mammalian DNA alignment, 125 taxa, 34 partitions, 19,839
	// distinct patterns, partition lengths 148..2,705.
	R125Spec = RealWorldSpec{Name: "r125_19839", Taxa: 125, Partitions: 34,
		TotalLen: 19839, MinPart: 148, MaxPart: 2705, Type: alignment.DNA, GapFraction: 0.2}
)

// RealWorldDataset generates a simulated stand-in with the published shape of
// one of the paper's real alignments (taxon count, partition count, min/max
// partition length, data type, gappy taxon sampling). scale shrinks all
// partition lengths proportionally (1.0 = full size).
func RealWorldDataset(spec RealWorldSpec, scale float64, seed int64) (*Dataset, error) {
	lens := partitionLengths(spec, seed)
	if scale > 0 && scale < 1 {
		for i := range lens {
			lens[i] = int(math.Max(4, float64(lens[i])*scale))
		}
	}
	ds, err := generate(spec.Name, spec.Taxa, lens, spec.Type, seed)
	if err != nil {
		return nil, err
	}
	if spec.GapFraction > 0 {
		// Regenerate with a gappy presence mask (Figure 2's data holes):
		// every partition keeps a random subset of taxa.
		rng := rand.New(rand.NewSource(seed + 7))
		presence := make([][]bool, len(lens))
		for pi := range presence {
			mask := make([]bool, spec.Taxa)
			for tx := range mask {
				mask[tx] = rng.Float64() >= spec.GapFraction
			}
			// Keep at least 4 taxa so every partition stays informative.
			count := 0
			for _, v := range mask {
				if v {
					count++
				}
			}
			for tx := 0; count < 4 && tx < spec.Taxa; tx++ {
				if !mask[tx] {
					mask[tx] = true
					count++
				}
			}
			presence[pi] = mask
		}
		ds, err = generateWithPresence(spec.Name, spec.Taxa, lens, spec.Type, seed, presence)
		if err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// partitionLengths samples a deterministic length vector honoring the spec's
// partition count, min/max lengths, and total.
func partitionLengths(spec RealWorldSpec, seed int64) []int {
	rng := rand.New(rand.NewSource(seed + 1))
	p := spec.Partitions
	lens := make([]float64, p)
	// Log-uniform between min and max, then pin the extremes and rescale the
	// interior to hit the published total.
	logMin, logMax := math.Log(float64(spec.MinPart)), math.Log(float64(spec.MaxPart))
	for i := range lens {
		lens[i] = math.Exp(logMin + rng.Float64()*(logMax-logMin))
	}
	lens[0] = float64(spec.MinPart)
	lens[1] = float64(spec.MaxPart)
	// Iteratively rescale the interior so the total matches.
	for iter := 0; iter < 60; iter++ {
		sum := 0.0
		for _, v := range lens {
			sum += v
		}
		if math.Abs(sum-float64(spec.TotalLen)) < 1 {
			break
		}
		f := (float64(spec.TotalLen) - lens[0] - lens[1]) / (sum - lens[0] - lens[1])
		for i := 2; i < p; i++ {
			lens[i] = math.Min(float64(spec.MaxPart), math.Max(float64(spec.MinPart), lens[i]*f))
		}
	}
	out := make([]int, p)
	total := 0
	for i, v := range lens {
		out[i] = int(math.Round(v))
		total += out[i]
	}
	// Exact integer fix-up on an interior partition.
	out[2] += spec.TotalLen - total
	if out[2] < spec.MinPart {
		out[2] = spec.MinPart
	}
	return out
}

func generate(name string, taxa int, partLens []int, dt alignment.DataType, seed int64) (*Dataset, error) {
	return generateWithPresence(name, taxa, partLens, dt, seed, nil)
}

func generateWithPresence(name string, taxa int, partLens []int, dt alignment.DataType, seed int64, presence [][]bool) (*Dataset, error) {
	types := make([]alignment.DataType, len(partLens))
	for i := range types {
		types[i] = dt
	}
	return generateTyped(name, taxa, partLens, types, seed, presence)
}

// generateTyped is the shared generator: one model per partition with the
// given data type, per-gene rate heterogeneity, and optional presence masks.
func generateTyped(name string, taxa int, partLens []int, types []alignment.DataType, seed int64, presence [][]bool) (*Dataset, error) {
	tr, err := tree.Random(TaxaNames(taxa), 1, tree.RandomOptions{Seed: seed, MeanBranchLength: 0.12})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 3))
	models := make([]*model.Model, len(partLens))
	allDNA := true
	for i := range models {
		alpha := 0.3 + rng.Float64()*1.5 // per-gene rate heterogeneity
		if types[i] == alignment.DNA {
			freqs := make([]float64, 4)
			for k := range freqs {
				freqs[k] = 0.15 + rng.Float64()*0.2
			}
			ex := make([]float64, 6)
			for k := range ex {
				ex[k] = 0.3 + rng.Float64()*3
			}
			ex[5] = 1
			m, err := model.GTR(freqs, ex, 4, alpha)
			if err != nil {
				return nil, err
			}
			models[i] = m
		} else {
			allDNA = false
			m, err := model.SYN20(4, alpha)
			if err != nil {
				return nil, err
			}
			models[i] = m
		}
	}
	// Unique columns are only enforced where the state space allows it (the
	// paper's simulated grid); tiny scaled partitions on few taxa could
	// otherwise exhaust the column space.
	unique := allDNA && taxa >= 10
	a, parts, err := Simulate(tr, models, partLens, Options{
		Seed:          seed + 5,
		UniqueColumns: unique,
		Presence:      presence,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: name, Alignment: a, Parts: parts, SeedTree: tr}, nil
}
