package seqsim

import (
	"context"
	"math"
	"testing"

	"phylo/internal/alignment"
	"phylo/internal/core"
	"phylo/internal/model"
	"phylo/internal/opt"
	"phylo/internal/parallel"
	"phylo/internal/tree"
)

func TestSimulateShapeAndDeterminism(t *testing.T) {
	tr, _ := tree.Random(TaxaNames(8), 1, tree.RandomOptions{Seed: 4})
	m1, _ := model.GTR(nil, nil, 4, 0.7)
	m2, _ := model.GTR(nil, nil, 4, 1.4)
	a1, parts, err := Simulate(tr, []*model.Model{m1, m2}, []int{100, 50}, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a1.NumTaxa() != 8 || a1.NumSites() != 150 {
		t.Fatalf("shape %dx%d, want 8x150", a1.NumTaxa(), a1.NumSites())
	}
	if len(parts) != 2 || len(parts[0].Sites) != 100 || len(parts[1].Sites) != 50 {
		t.Fatalf("partition shapes wrong: %v", parts)
	}
	a2, _, err := Simulate(tr, []*model.Model{m1, m2}, []int{100, 50}, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.Seqs {
		if string(a1.Seqs[i]) != string(a2.Seqs[i]) {
			t.Fatal("same seed must reproduce the alignment")
		}
	}
	a3, _, _ := Simulate(tr, []*model.Model{m1, m2}, []int{100, 50}, Options{Seed: 10})
	same := true
	for i := range a1.Seqs {
		if string(a1.Seqs[i]) != string(a3.Seqs[i]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestSimulateUniqueColumns(t *testing.T) {
	tr, _ := tree.Random(TaxaNames(10), 1, tree.RandomOptions{Seed: 2})
	m, _ := model.GTR(nil, nil, 4, 1)
	a, parts, err := Simulate(tr, []*model.Model{m}, []int{500}, Options{Seed: 3, UniqueColumns: true})
	if err != nil {
		t.Fatal(err)
	}
	d, err := alignment.Compress(a, parts, alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalPatterns != 500 {
		t.Errorf("unique-column simulation compressed to %d patterns, want 500 (m = m')", d.TotalPatterns)
	}
}

func TestSimulateValidationErrors(t *testing.T) {
	tr, _ := tree.Random(TaxaNames(5), 1, tree.RandomOptions{Seed: 1})
	m, _ := model.JC69(4, 1)
	if _, _, err := Simulate(tr, []*model.Model{m}, []int{10, 10}, Options{}); err == nil {
		t.Error("expected error for model/length count mismatch")
	}
	if _, _, err := Simulate(tr, []*model.Model{m}, []int{0}, Options{}); err == nil {
		t.Error("expected error for zero-length partition")
	}
	if _, _, err := Simulate(tr, []*model.Model{m}, []int{10}, Options{Presence: [][]bool{{true}, {false}}}); err == nil {
		t.Error("expected error for presence mask mismatch")
	}
}

func TestSimulatedFrequenciesMatchModel(t *testing.T) {
	// On a star-ish tree with long branches, tip states approach the
	// stationary distribution.
	tr, _ := tree.Random(TaxaNames(12), 1, tree.RandomOptions{Seed: 6, MeanBranchLength: 3})
	freqs := []float64{0.4, 0.1, 0.15, 0.35}
	m, _ := model.GTR(freqs, nil, 1, 1)
	a, parts, err := Simulate(tr, []*model.Model{m}, []int{4000}, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := alignment.Compress(a, parts, alignment.CompressOptions{})
	got := model.EmpiricalFreqs(d.Parts[0])
	for i := range freqs {
		if math.Abs(got[i]-freqs[i]) > 0.05 {
			t.Errorf("state %d frequency %v, want ~%v", i, got[i], freqs[i])
		}
	}
}

func TestGappyPresenceWritesGaps(t *testing.T) {
	tr, _ := tree.Random(TaxaNames(6), 1, tree.RandomOptions{Seed: 8})
	m, _ := model.JC69(2, 1)
	presence := [][]bool{{true, true, false, true, false, true}}
	a, parts, err := Simulate(tr, []*model.Model{m}, []int{30}, Options{Seed: 12, Presence: presence})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range a.Seqs[2] {
		if c != '-' {
			t.Fatal("absent taxon must be all gaps")
		}
	}
	for _, c := range a.Seqs[0] {
		if c == '-' {
			t.Fatal("present taxon must have data")
		}
	}
	d, _ := alignment.Compress(a, parts, alignment.CompressOptions{})
	if d.Parts[0].Present[2] || !d.Parts[0].Present[0] {
		t.Error("presence flags wrong after compression")
	}
}

func TestGridDataset(t *testing.T) {
	ds, err := GridDataset(10, 5000, 1000, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Alignment.NumTaxa() != 10 {
		t.Errorf("taxa = %d", ds.Alignment.NumTaxa())
	}
	if len(ds.Parts) != 5 {
		t.Errorf("partitions = %d, want 5 (5000/1000)", len(ds.Parts))
	}
	// Scaled partitions: 1000 * 0.02 = 20 columns each.
	if got := len(ds.Parts[0].Sites); got != 20 {
		t.Errorf("scaled partition length = %d, want 20", got)
	}
	if _, err := GridDataset(10, 5000, 10000, 1, 1); err == nil {
		t.Error("expected error for partLen > sites (the paper skips d10_5000+p10000)")
	}
}

func TestRealWorldDatasetShape(t *testing.T) {
	ds, err := RealWorldDataset(R125Spec, 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Alignment.NumTaxa() != 125 {
		t.Errorf("taxa = %d, want 125", ds.Alignment.NumTaxa())
	}
	if len(ds.Parts) != 34 {
		t.Errorf("partitions = %d, want 34", len(ds.Parts))
	}
	// The alignment must be gappy: some taxon is absent from some partition.
	d, err := alignment.Compress(ds.Alignment, ds.Parts, alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gappy := false
	for _, p := range d.Parts {
		for _, pr := range p.Present {
			if !pr {
				gappy = true
			}
		}
	}
	if !gappy {
		t.Error("real-world stand-in should contain data holes")
	}
}

func TestPartitionLengthsHonorSpec(t *testing.T) {
	lens := partitionLengths(R125Spec, 3)
	if len(lens) != 34 {
		t.Fatalf("got %d lengths", len(lens))
	}
	sum, min, max := 0, lens[0], lens[0]
	for _, l := range lens {
		sum += l
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if min != R125Spec.MinPart || max != R125Spec.MaxPart {
		t.Errorf("min/max = %d/%d, want %d/%d", min, max, R125Spec.MinPart, R125Spec.MaxPart)
	}
	if math.Abs(float64(sum-R125Spec.TotalLen)) > float64(R125Spec.TotalLen)/100 {
		t.Errorf("total = %d, want ~%d", sum, R125Spec.TotalLen)
	}
}

// Integration: parameters used for simulation are recoverable by the
// optimizer — alpha and branch scale come back near the truth.
func TestParameterRecovery(t *testing.T) {
	tr, _ := tree.Random(TaxaNames(12), 1, tree.RandomOptions{Seed: 14, MeanBranchLength: 0.15})
	trueAlpha := 0.5
	m, _ := model.GTR([]float64{0.3, 0.2, 0.25, 0.25}, nil, 4, trueAlpha)
	a, parts, err := Simulate(tr, []*model.Model{m}, []int{3000}, Options{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := alignment.Compress(a, parts, alignment.CompressOptions{})
	fit, _ := model.GTR([]float64{0.3, 0.2, 0.25, 0.25}, nil, 4, 1.0) // start away from truth
	// Reuse the generating topology but fresh default branch lengths.
	start, _ := tree.ParseNewick(tree.WriteNewick(tr, 0), TaxaNames(12), 1)
	for _, b := range start.Branches() {
		tree.SetBranchLength(b, 0, 0.1)
	}
	eng, err := core.New(d, start, []*model.Model{fit}, parallel.NewSequential(), core.Options{Specialize: true})
	if err != nil {
		t.Fatal(err)
	}
	o := opt.New(eng, opt.DefaultConfig(opt.NewPar))
	o.Cfg.OptimizeRates = false
	if _, rounds, _ := o.OptimizeModel(context.Background()); rounds < 1 {
		t.Fatal("no optimization rounds ran")
	}
	if got := eng.Models[0].Alpha; got < 0.3 || got > 0.8 {
		t.Errorf("recovered alpha %v, simulated with %v", got, trueAlpha)
	}
	// Recovered branch lengths correlate with the truth: compare totals.
	var trueTotal, gotTotal float64
	for _, b := range tr.Branches() {
		trueTotal += b.Z[0]
	}
	for _, b := range start.Branches() {
		gotTotal += b.Z[0]
	}
	if gotTotal < 0.5*trueTotal || gotTotal > 2*trueTotal {
		t.Errorf("recovered tree length %v vs true %v", gotTotal, trueTotal)
	}
}
