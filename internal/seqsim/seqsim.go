// Package seqsim is the reproduction's Seq-Gen equivalent: it simulates
// molecular sequence evolution along a phylogenetic tree under the same
// time-reversible models the likelihood kernel evaluates, and provides
// generators for every dataset of the paper's Section V — the 12 simulated
// DNA alignments (d10_5000 ... d100_50000) and shape-faithful stand-ins for
// the three real-world phylogenomic alignments (r26_21451, r24_16916,
// r125_19839), per DESIGN.md substitution #2.
//
// Simulation is a deterministic scope: equal seeds must yield equal
// alignments, so all randomness flows through a locally seeded *rand.Rand.
//
//plk:deterministic
package seqsim

import (
	"errors"
	"fmt"
	"math/rand"

	"phylo/internal/alignment"
	"phylo/internal/model"
	"phylo/internal/tree"
)

// Options configures a simulation.
type Options struct {
	// Seed drives all randomness; equal seeds give equal alignments.
	Seed int64
	// UniqueColumns resamples duplicate columns so that every column is a
	// distinct pattern (m = m'), as the paper ensures for its simulated
	// datasets. Duplicate detection is per partition.
	UniqueColumns bool
	// Presence optionally marks, per partition and taxon, whether the taxon
	// has data (false writes gaps) — the "gappy" phylogenomic structure of
	// Figure 2. nil means all present.
	Presence [][]bool
}

// Simulate evolves one partition of length sites along the tree under m,
// using branch-length slot `slot`, and writes characters into out
// (out[taxon][siteOffset+k]). Gamma categories are drawn uniformly per site.
func simulatePartition(tr *tree.Tree, m *model.Model, slot, sites, siteOffset int, out [][]byte, rng *rand.Rand, unique bool, present []bool) error {
	s := m.States
	dt := m.Type
	// Cache one P matrix per (record, category); records are identified by ID.
	type key struct{ id, cat int }
	pcache := make(map[key][]float64)
	pmat := func(rec *tree.Node, cat int) []float64 {
		k := key{rec.ID, cat}
		if pm, ok := pcache[k]; ok {
			return pm
		}
		pm := make([]float64, s*s)
		m.PMatrix(m.CatRates[cat]*rec.Z[slot], pm)
		pcache[k] = pm
		return pm
	}
	drawFrom := func(probs []float64) int {
		u := rng.Float64()
		acc := 0.0
		for i, p := range probs {
			acc += p
			if u < acc {
				return i
			}
		}
		return len(probs) - 1
	}
	step := func(state int, pm []float64) int {
		return drawFrom(pm[state*s : (state+1)*s])
	}

	root := tr.Tips[0].Back
	if root.IsTip() {
		return errors.New("seqsim: degenerate tree")
	}
	column := make([]byte, tr.NumTips())
	var evolve func(rec *tree.Node, state, cat int)
	evolve = func(rec *tree.Node, state, cat int) {
		// rec is a record of the current node; propagate into the subtrees
		// behind its other two records.
		for _, child := range []*tree.Node{rec.Next, rec.Next.Next} {
			cs := step(state, pmat(child, cat))
			b := child.Back
			if b.IsTip() {
				column[b.Index] = byte(cs)
			} else {
				evolve(b, cs, cat)
			}
		}
	}

	seen := make(map[string]bool, sites)
	const maxResample = 2000
	for site := 0; site < sites; site++ {
		ok := false
		for attempt := 0; attempt < maxResample; attempt++ {
			cat := rng.Intn(m.NumCats)
			state := drawFrom(m.Freqs)
			// The virtual root sits at the inner node `root`: evolve into
			// its three incident subtrees.
			t0 := step(state, pmat(tr.Tips[0], cat))
			column[0] = byte(t0)
			evolve(root, state, cat)
			if !unique {
				ok = true
				break
			}
			k := string(column)
			if !seen[k] {
				seen[k] = true
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("seqsim: could not generate %d unique columns (alphabet too small for %d taxa?)", sites, tr.NumTips())
		}
		for tx := 0; tx < tr.NumTips(); tx++ {
			if present != nil && !present[tx] {
				out[tx][siteOffset+site] = '-'
			} else {
				out[tx][siteOffset+site] = alignment.StateChar(dt, int(column[tx]))
			}
		}
	}
	return nil
}

// Simulate generates a partitioned alignment along tr: partition i has
// partLens[i] columns evolved under models[i] with branch-length slot
// min(i, tr.ZSlots-1). It returns the alignment and the partition scheme.
func Simulate(tr *tree.Tree, models []*model.Model, partLens []int, opts Options) (*alignment.Alignment, []alignment.Partition, error) {
	if len(models) != len(partLens) {
		return nil, nil, fmt.Errorf("seqsim: %d models for %d partitions", len(models), len(partLens))
	}
	if opts.Presence != nil && len(opts.Presence) != len(partLens) {
		return nil, nil, errors.New("seqsim: presence mask count mismatch")
	}
	total := 0
	for i, l := range partLens {
		if l <= 0 {
			return nil, nil, fmt.Errorf("seqsim: partition %d has non-positive length %d", i, l)
		}
		total += l
	}
	n := tr.NumTips()
	seqs := make([][]byte, n)
	for i := range seqs {
		seqs[i] = make([]byte, total)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	parts := make([]alignment.Partition, len(partLens))
	offset := 0
	for i, l := range partLens {
		slot := i
		if slot >= tr.ZSlots {
			slot = tr.ZSlots - 1
		}
		var present []bool
		if opts.Presence != nil {
			present = opts.Presence[i]
		}
		if err := simulatePartition(tr, models[i], slot, l, offset, seqs, rng, opts.UniqueColumns, present); err != nil {
			return nil, nil, err
		}
		sites := make([]int, l)
		for k := range sites {
			sites[k] = offset + k
		}
		parts[i] = alignment.Partition{
			Name:  fmt.Sprintf("gene%d", i),
			Type:  models[i].Type,
			Sites: sites,
		}
		offset += l
	}
	a, err := alignment.New(append([]string(nil), tr.Names...), seqs)
	if err != nil {
		return nil, nil, err
	}
	return a, parts, nil
}

// TaxaNames returns the canonical taxon labels used by the dataset
// generators ("taxon0", "taxon1", ...).
func TaxaNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("taxon%d", i)
	}
	return out
}
