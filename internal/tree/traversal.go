package tree

// TraversalStep is one newview operation: recompute the CLV of inner node P
// (oriented towards P.Back) from the CLVs/tips behind Q = P.Next.Back and
// R = P.Next.Next.Back, across branch lengths Q.Z and R.Z.
type TraversalStep struct {
	P, Q, R *Node
}

// ComputeTraversal returns the bottom-up list of newview steps required to
// make the CLV at record p valid. With partial == true, subtrees whose X
// orientation is already correct are not descended into — this implements the
// paper's partial traversals after local topology changes ("the worker
// threads will only need to update 3-4 inner likelihood vectors on average").
// With partial == false a full post-order traversal of the subtree behind p
// is produced (the fixed full-tree traversal lists used during model
// optimization).
//
// The X flags are updated eagerly: callers are expected to execute the
// returned steps immediately (the likelihood engine does).
func ComputeTraversal(p *Node, partial bool) []TraversalStep {
	var steps []TraversalStep
	appendTraversal(p, partial, &steps)
	return steps
}

func appendTraversal(p *Node, partial bool, steps *[]TraversalStep) {
	if p.IsTip() {
		return
	}
	if partial && p.X {
		return
	}
	q := p.Next.Back
	r := p.Next.Next.Back
	appendTraversal(q, partial, steps)
	appendTraversal(r, partial, steps)
	*steps = append(*steps, TraversalStep{P: p, Q: q, R: r})
	OrientX(p)
}

// RootTraversal produces the steps needed to evaluate the likelihood at the
// virtual root on branch (p, p.Back): both end CLVs must be valid and
// oriented towards the branch.
func RootTraversal(p *Node, partial bool) []TraversalStep {
	steps := ComputeTraversal(p, partial)
	return append(steps, ComputeTraversal(p.Back, partial)...)
}
