package tree

import (
	"strings"
	"testing"
)

// TestNNICandidates checks the NNI neighborhood: 2(n-3) candidates, every
// one structurally valid, exactly RF distance 2 from the origin (one split
// swapped), no candidate equal to the origin, the origin untouched, and the
// two variants of one branch distinct.
func TestNNICandidates(t *testing.T) {
	for _, n := range []int{4, 7, 12} {
		tr, err := Random(names(n), 1, RandomOptions{Seed: int64(10 + n)})
		if err != nil {
			t.Fatal(err)
		}
		before := WriteNewick(tr, 0)
		cands, err := tr.NNICandidates()
		if err != nil {
			t.Fatal(err)
		}
		if want := 2 * (n - 3); len(cands) != want {
			t.Fatalf("n=%d: %d NNI candidates, want %d", n, len(cands), want)
		}
		if WriteNewick(tr, 0) != before {
			t.Fatal("NNICandidates modified the origin tree")
		}
		for i, c := range cands {
			if err := c.Validate(); err != nil {
				t.Fatalf("candidate %d invalid: %v", i, err)
			}
			d, err := RobinsonFoulds(tr, c)
			if err != nil {
				t.Fatal(err)
			}
			if d != 2 {
				t.Fatalf("candidate %d at RF distance %d from origin, want 2", i, d)
			}
		}
		// The two variants across one branch must differ from each other.
		for i := 0; i+1 < len(cands); i += 2 {
			d, err := RobinsonFoulds(cands[i], cands[i+1])
			if err != nil {
				t.Fatal(err)
			}
			if d == 0 {
				t.Fatalf("branch %d: both NNI variants are the same topology", i/2)
			}
		}
	}
}

// TestNNIPreservesBranchLengths pins the "branch travels with the child"
// rule: the multiset of branch lengths is invariant under any NNI move.
func TestNNIPreservesBranchLengths(t *testing.T) {
	tr, err := Random(names(9), 1, RandomOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range tr.Branches() {
		SetBranchLength(b, 0, 0.01*float64(i+1))
	}
	lengths := func(x *Tree) map[float64]int {
		out := make(map[float64]int)
		for _, b := range x.Branches() {
			out[b.Z[0]]++
		}
		return out
	}
	want := lengths(tr)
	cands, err := tr.NNICandidates()
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cands {
		got := lengths(c)
		for v, k := range want {
			if got[v] != k {
				t.Fatalf("candidate %d: branch length %v occurs %d times, want %d", i, v, got[v], k)
			}
		}
	}
}

// TestSupportCounter feeds a known mix of topologies and checks the split
// fractions read back on a reference tree.
func TestSupportCounter(t *testing.T) {
	// ((t0,t1),(t2,t3),t4-ish shapes over 5 taxa: a and b share the {t0,t1}
	// split; c supports neither of a's splits.
	a, err := ParseNewick("((t0:1,t1:1):1,(t2:1,t3:1):1,t4:1);", names(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseNewick("((t0:1,t1:1):1,(t2:1,t4:1):1,t3:1);", names(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ParseNewick("((t0:1,t2:1):1,(t1:1,t3:1):1,t4:1);", names(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSupportCounter(5)
	for _, rep := range []*Tree{a, a, b, c} {
		if err := sc.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	if sc.Total() != 4 {
		t.Fatalf("total %d, want 4", sc.Total())
	}
	sup, err := sc.Support(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(sup) != 2 {
		t.Fatalf("%d supported splits on a 5-taxon reference, want 2", len(sup))
	}
	// {t0,t1} appears in a, a, b -> 3/4; {t2,t3} only in a, a -> 2/4.
	want := map[string]float64{"2,3": 0.5, "2,3,4": 0.75}
	for key, frac := range sup {
		w, ok := want[key]
		if !ok {
			t.Fatalf("unexpected split key %q", key)
		}
		if frac != w {
			t.Fatalf("split %q support %v, want %v", key, frac, w)
		}
	}
	// Mismatched taxon counts are rejected.
	six, _ := Random(names(6), 1, RandomOptions{Seed: 3})
	if err := sc.Add(six); err == nil {
		t.Fatal("6-taxon replicate accepted by 5-taxon counter")
	}
	if _, err := sc.Support(six); err == nil {
		t.Fatal("6-taxon reference accepted by 5-taxon counter")
	}
}

// TestWriteNewickSupport checks the annotated writer: labels land on internal
// nodes as integer percents, the output reparses to the same topology, and an
// empty support map degrades to the plain writer's shape.
func TestWriteNewickSupport(t *testing.T) {
	tr, err := ParseNewick("((t0:1,t1:1):1,(t2:1,t3:1):1,t4:1);", names(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSupportCounter(5)
	for i := 0; i < 4; i++ {
		if err := sc.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	sup, err := sc.Support(tr)
	if err != nil {
		t.Fatal(err)
	}
	s := WriteNewickSupport(tr, 0, sup)
	if !strings.Contains(s, ")100:") {
		t.Fatalf("expected 100%% support labels in %q", s)
	}
	back, err := ParseNewick(s, names(5), 1)
	if err != nil {
		t.Fatalf("support-annotated newick does not reparse: %v", err)
	}
	if d, _ := RobinsonFoulds(tr, back); d != 0 {
		t.Fatalf("support-annotated newick changed topology (RF %d)", d)
	}
	plain := WriteNewickSupport(tr, 0, nil)
	if plain != WriteNewick(tr, 0) {
		t.Fatalf("nil support map should match WriteNewick: %q vs %q", plain, WriteNewick(tr, 0))
	}
}

// TestCloneIndependence pins Clone's deep-copy contract: mutating the copy's
// branch lengths or topology leaves the original untouched.
func TestCloneIndependence(t *testing.T) {
	tr, err := Random(names(8), 1, RandomOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	before := WriteNewick(tr, 0)
	cp, err := tr.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if WriteNewick(cp, 0) != before {
		t.Fatal("clone differs from original")
	}
	for _, b := range cp.Branches() {
		SetBranchLength(b, 0, 7.5)
	}
	for _, b := range cp.Branches() {
		if !b.IsTip() && !b.Back.IsTip() {
			nniSwap(b, false)
			break
		}
	}
	if WriteNewick(tr, 0) != before {
		t.Fatal("mutating the clone changed the original")
	}
}
