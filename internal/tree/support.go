package tree

import (
	"fmt"
	"strings"
)

// Bootstrap support machinery: NNI candidate topologies, the split-frequency
// aggregator that turns replicate winner trees into per-branch support
// values, and the support-annotated Newick writer. The bootstrap pipeline
// (see phylo.Analysis.Bootstrap) scores a fixed candidate set — the ML tree
// plus its NNI neighborhood — under every replicate's weight vector in one
// batched sweep, feeds each replicate's winning topology to a SupportCounter,
// and reads the ML tree's per-branch support off the accumulated split
// frequencies.

// Clone returns a deep copy of the tree: same taxa and slot count, mirrored
// connections, independent branch-length slices, and copied X flags.
func (t *Tree) Clone() (*Tree, error) {
	c, err := New(t.Names, t.ZSlots)
	if err != nil {
		return nil, err
	}
	if err := c.CopyTopologyFrom(t); err != nil {
		return nil, err
	}
	return c, nil
}

// recordByID finds a record by its stable ID (records are allocated in the
// same order by New, so IDs correspond positionally across Clone copies).
func (t *Tree) recordByID(id int) *Node {
	for _, r := range t.records {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// nniSwap applies one nearest-neighbor interchange across the internal
// branch at record p (both ends must be inner): the subtree behind p.Next
// (or p.Next.Next when second is set) trades places with the subtree behind
// p.Back.Next. Each moved subtree keeps its own branch lengths — the branch
// travels with the child — so the move changes topology only.
func nniSwap(p *Node, second bool) {
	pn := p.Next
	if second {
		pn = p.Next.Next
	}
	qn := p.Back.Next
	a, za := pn.Back, pn.Z
	c, zc := qn.Back, qn.Z
	Connect(pn, c, zc)
	Connect(qn, a, za)
}

// NNICandidates returns copies of t with every nearest-neighbor interchange
// applied, two per internal branch — the 2(n-3) topologies one rearrangement
// away. Each candidate has all CLV orientation flags cleared (its likelihood
// state must be rebuilt from scratch). The receiver is never modified.
func (t *Tree) NNICandidates() ([]*Tree, error) {
	var out []*Tree
	for _, b := range t.Branches() {
		if b.IsTip() || b.Back.IsTip() {
			continue
		}
		for variant := 0; variant < 2; variant++ {
			c, err := t.Clone()
			if err != nil {
				return nil, err
			}
			p := c.recordByID(b.ID)
			if p == nil {
				return nil, fmt.Errorf("tree: record %d missing in clone", b.ID)
			}
			nniSwap(p, variant == 1)
			c.ClearX()
			if err := c.Validate(); err != nil {
				return nil, fmt.Errorf("tree: NNI across record %d produced an invalid tree: %w", b.ID, err)
			}
			out = append(out, c)
		}
	}
	return out, nil
}

// SupportCounter accumulates split frequencies over a stream of replicate
// trees and reads them back as per-branch support values on any reference
// tree over the same taxa. Splits are identified by the canonical SplitKey,
// so a replicate supports a reference branch exactly when its winning
// topology induces the same bipartition of the taxa.
type SupportCounter struct {
	numTips int
	total   int
	counts  map[string]int
}

// NewSupportCounter returns an empty counter for trees over numTips taxa.
func NewSupportCounter(numTips int) *SupportCounter {
	return &SupportCounter{numTips: numTips, counts: make(map[string]int)}
}

// Add counts one replicate tree's non-trivial splits. Trees over a different
// taxon count are rejected.
func (sc *SupportCounter) Add(t *Tree) error {
	if t.NumTips() != sc.numTips {
		return fmt.Errorf("tree: support counter is for %d taxa, replicate tree has %d", sc.numTips, t.NumTips())
	}
	for key := range t.Bipartitions() { //plk:allow(maprange) commutative int counts; order-free
		sc.counts[key]++
	}
	sc.total++
	return nil
}

// Total reports how many replicate trees have been added.
func (sc *SupportCounter) Total() int { return sc.total }

// Support maps the counter's accumulated frequencies onto a reference tree:
// for every non-trivial split of ref, the fraction of added replicates whose
// tree contained that split (keyed by canonical split key, values in [0, 1]).
// Zero replicates yields all-zero supports.
func (sc *SupportCounter) Support(ref *Tree) (map[string]float64, error) {
	if ref.NumTips() != sc.numTips {
		return nil, fmt.Errorf("tree: support counter is for %d taxa, reference tree has %d", sc.numTips, ref.NumTips())
	}
	out := make(map[string]float64, sc.numTips-3)
	for key := range ref.Bipartitions() { //plk:allow(maprange) fills a keyed map; no ordered output
		if sc.total == 0 {
			out[key] = 0
			continue
		}
		out[key] = float64(sc.counts[key]) / float64(sc.total)
	}
	return out, nil
}

// WriteNewickSupport serializes the tree like WriteNewick, additionally
// labelling every internal node with the integer-percent support of the
// branch above it (the conventional bootstrap annotation, e.g. ")87:0.012").
// support is keyed by canonical split key as returned by SupportCounter;
// branches without an entry are left unlabelled.
func WriteNewickSupport(t *Tree, k int, support map[string]float64) string {
	var b strings.Builder
	tip := t.Tips[0]
	root := tip.Back
	b.WriteByte('(')
	b.WriteString(t.Names[tip.Index])
	fmt.Fprintf(&b, ":%.8f", tip.Z[k])
	b.WriteByte(',')
	writeSubtreeSupport(&b, t, root.Next.Back, root.Next.Z[k], k, support)
	b.WriteByte(',')
	writeSubtreeSupport(&b, t, root.Next.Next.Back, root.Next.Next.Z[k], k, support)
	b.WriteString(");")
	return b.String()
}

func writeSubtreeSupport(b *strings.Builder, t *Tree, p *Node, z float64, k int, support map[string]float64) {
	if p.IsTip() {
		b.WriteString(t.Names[p.Index])
		fmt.Fprintf(b, ":%.8f", z)
		return
	}
	b.WriteByte('(')
	writeSubtreeSupport(b, t, p.Next.Back, p.Next.Z[k], k, support)
	b.WriteByte(',')
	writeSubtreeSupport(b, t, p.Next.Next.Back, p.Next.Next.Z[k], k, support)
	b.WriteByte(')')
	if key, ok := t.SplitKey(p); ok {
		if sup, have := support[key]; have {
			fmt.Fprintf(b, "%d", int(sup*100+0.5))
		}
	}
	fmt.Fprintf(b, ":%.8f", z)
}
