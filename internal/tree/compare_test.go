package tree

import (
	"testing"
	"testing/quick"
)

func TestBipartitionsCount(t *testing.T) {
	for _, n := range []int{4, 8, 20} {
		tr, _ := Random(names(n), 1, RandomOptions{Seed: int64(n)})
		got := len(tr.Bipartitions())
		if got != n-3 {
			t.Errorf("n=%d: %d bipartitions, want %d", n, got, n-3)
		}
	}
}

func TestRobinsonFouldsIdentity(t *testing.T) {
	tr, _ := Random(names(12), 1, RandomOptions{Seed: 4})
	// Same topology reparsed from newick (different record layout).
	back, err := ParseNewick(WriteNewick(tr, 0), names(12), 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RobinsonFoulds(tr, back)
	if err != nil || d != 0 {
		t.Errorf("RF(self) = %d, %v; want 0", d, err)
	}
}

func TestRobinsonFouldsKnown(t *testing.T) {
	// ((t0,t1),(t2,t3)) vs ((t0,t2),(t1,t3)): the single internal split
	// differs in both -> RF = 2.
	a, err := ParseNewick("((t0:1,t1:1):1,(t2:1,t3:1):1);", names(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseNewick("((t0:1,t2:1):1,(t1:1,t3:1):1);", names(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RobinsonFoulds(a, b)
	if err != nil || d != 2 {
		t.Errorf("RF = %d, %v; want 2", d, err)
	}
	// And the maximum possible distance equals 2(n-3) here.
	if max := 2 * (4 - 3); d != max {
		t.Errorf("4-taxon disagreement should be maximal (%d), got %d", max, d)
	}
}

func TestRobinsonFouldsErrors(t *testing.T) {
	a, _ := Random(names(5), 1, RandomOptions{Seed: 1})
	b, _ := Random(names(6), 1, RandomOptions{Seed: 1})
	if _, err := RobinsonFoulds(a, b); err == nil {
		t.Error("expected error for unequal taxon counts")
	}
	c, _ := New([]string{"x0", "x1", "x2", "x3", "x4"}, 1)
	cc, _ := Random([]string{"x0", "x1", "x2", "x3", "x4"}, 1, RandomOptions{Seed: 2})
	_ = c
	if _, err := RobinsonFoulds(a, cc); err == nil {
		t.Error("expected error for different taxon names")
	}
}

// Property: RF is symmetric, bounded by 2(n-3), and zero iff the canonical
// newick forms match (for these rooted-at-tip-0 serializations).
func TestRobinsonFouldsQuick(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		n := 10
		a, err1 := Random(names(n), 1, RandomOptions{Seed: seedA})
		b, err2 := Random(names(n), 1, RandomOptions{Seed: seedB})
		if err1 != nil || err2 != nil {
			return false
		}
		dab, err3 := RobinsonFoulds(a, b)
		dba, err4 := RobinsonFoulds(b, a)
		if err3 != nil || err4 != nil {
			return false
		}
		if dab != dba || dab < 0 || dab > 2*(n-3) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
