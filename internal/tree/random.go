package tree

import (
	"fmt"
	"math/rand"
)

// RandomOptions configures random tree generation.
type RandomOptions struct {
	Seed int64
	// MeanBranchLength is the mean of the exponential branch-length
	// distribution; zero selects 0.1 (a realistic phylogenomic scale).
	MeanBranchLength float64
}

// Random generates an unrooted binary tree by stepwise random addition (the
// classic procedure used to produce RAxML starting trees and the paper's
// simulated "seed trees"): start from the unique 3-taxon topology, then
// attach each remaining taxon to a uniformly chosen existing branch. Branch
// lengths are exponentially distributed. The result is deterministic in the
// seed, which the paper relies on for reproducible experiments.
func Random(names []string, zSlots int, opts RandomOptions) (*Tree, error) {
	t, err := New(names, zSlots)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	mean := opts.MeanBranchLength
	if mean <= 0 {
		mean = 0.1
	}
	randZ := func() []float64 {
		z := make([]float64, zSlots)
		v := clampBL(rng.ExpFloat64() * mean)
		for k := range z {
			z[k] = v
		}
		return z
	}

	n := len(names)
	order := rng.Perm(n)
	center := t.Inner[0]
	Connect(center, t.Tips[order[0]], randZ())
	Connect(center.Next, t.Tips[order[1]], randZ())
	Connect(center.Next.Next, t.Tips[order[2]], randZ())

	for i := 3; i < n; i++ {
		branches := t.partialBranches(t.Tips[order[0]])
		target := branches[rng.Intn(len(branches))]
		v := t.Inner[i-2]
		// Split branch (target, target.Back): v.Next takes one side, ...
		a, b := target, target.Back
		zab := a.Z
		Connect(v.Next, a, zab)
		Connect(v.Next.Next, b, randZ())
		Connect(v, t.Tips[order[i]], randZ())
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("tree: random generation produced invalid tree: %w", err)
	}
	return t, nil
}

// partialBranches enumerates branches of the (possibly still growing)
// connected component containing start.
func (t *Tree) partialBranches(start *Node) []*Node {
	var out []*Node
	seen := make(map[int]bool)
	var walk func(p *Node)
	walk = func(p *Node) {
		if p.Back == nil || seen[p.ID] || seen[p.Back.ID] {
			return
		}
		seen[p.ID] = true
		out = append(out, p)
		q := p.Back
		if q.IsTip() {
			return
		}
		walk(q.Next)
		walk(q.Next.Next)
	}
	walk(start)
	return out
}
