// Package tree implements the unrooted binary tree substrate of the
// likelihood kernel using RAxML's "nodeptr triplet" representation: every
// inner node consists of three records arranged in a circular Next list, one
// per incident branch; Back links cross branches; branch lengths live in a
// slice shared by the two records of a branch (one slot per partition when
// per-partition branch lengths are in use, a single slot for joint estimates).
//
// The X flag marks, per inner node, the single record whose conditional
// likelihood vector (CLV) is currently valid: the CLV summarizes the subtree
// visible through the node's other two records, i.e. it is valid "towards"
// X's Back. Traversal descriptors (see traversal.go) list the newview
// operations needed to (re)establish validity for a chosen virtual root.
//
// Tree construction, traversal, and serialization are a deterministic scope:
// Newick output and traversal descriptors must be identical across runs.
//
//plk:deterministic
package tree

import (
	"errors"
	"fmt"
)

// DefaultBranchLength initializes new branches; it matches RAxML's default.
const DefaultBranchLength = 0.1

// Node is one record of the triplet representation. Tips have Next == nil
// and exactly one record; inner nodes have three records sharing an Index.
type Node struct {
	ID    int       // unique record id (stable across topology changes)
	Index int       // node index: tips 0..n-1, inner nodes n..2n-3
	Next  *Node     // circular triplet list (nil for tips)
	Back  *Node     // record at the far end of this record's branch
	Z     []float64 // branch lengths, one per slot; the same slice is shared with Back
	X     bool      // CLV orientation flag (meaningful on inner records only)
}

// IsTip reports whether the record belongs to a leaf.
func (n *Node) IsTip() bool { return n.Next == nil }

// Tree is an unrooted binary tree over NumTips labelled leaves.
type Tree struct {
	Names  []string // taxon names by tip index
	ZSlots int      // branch-length slots per branch (1 = joint, >=1 per-partition)

	Tips  []*Node // tip records, indexed by taxon
	Inner []*Node // first record of each inner node (use .Next to reach the others)

	records []*Node // every record, for iteration/validation
	nextID  int
}

// NumTips returns the leaf count.
func (t *Tree) NumTips() int { return len(t.Tips) }

// NumInner returns the inner-node count (n-2 when fully connected).
func (t *Tree) NumInner() int { return len(t.Inner) }

// NumBranches returns the branch count of a fully connected tree, 2n-3.
func (t *Tree) NumBranches() int { return 2*len(t.Tips) - 3 }

// New allocates an unconnected tree skeleton for the given taxa: one record
// per tip and three per inner node (n-2 inner nodes). Callers connect the
// records with Connect; RandomTree and ParseNewick do this for you.
func New(names []string, zSlots int) (*Tree, error) {
	n := len(names)
	if n < 3 {
		return nil, errors.New("tree: need at least 3 taxa")
	}
	if zSlots < 1 {
		return nil, errors.New("tree: need at least one branch-length slot")
	}
	t := &Tree{Names: append([]string(nil), names...), ZSlots: zSlots}
	for i := 0; i < n; i++ {
		tip := &Node{ID: t.nextID, Index: i}
		t.nextID++
		t.Tips = append(t.Tips, tip)
		t.records = append(t.records, tip)
	}
	for i := 0; i < n-2; i++ {
		idx := n + i
		a := &Node{ID: t.nextID + 0, Index: idx}
		b := &Node{ID: t.nextID + 1, Index: idx}
		c := &Node{ID: t.nextID + 2, Index: idx}
		t.nextID += 3
		a.Next, b.Next, c.Next = b, c, a
		t.Inner = append(t.Inner, a)
		t.records = append(t.records, a, b, c)
	}
	return t, nil
}

// NewZ allocates a branch-length slice with every slot at the default length.
func (t *Tree) NewZ() []float64 {
	z := make([]float64, t.ZSlots)
	for i := range z {
		z[i] = DefaultBranchLength
	}
	return z
}

// Connect joins two records with a branch carrying lengths z (one per slot);
// pass nil for default lengths. Both records share the same slice, so a
// branch-length update through either side is seen by both.
func Connect(a, b *Node, z []float64) {
	a.Back = b
	b.Back = a
	if z == nil {
		// The zero ZSlots case cannot occur on trees built via New.
		z = []float64{DefaultBranchLength}
	}
	a.Z = z
	b.Z = z
}

// ConnectDefault joins two records with a fresh default-length branch sized
// for this tree's slot count.
func (t *Tree) ConnectDefault(a, b *Node) { Connect(a, b, t.NewZ()) }

// SetBranchLength sets slot k of the branch at record p (both sides observe
// the update because the slice is shared).
func SetBranchLength(p *Node, k int, v float64) { p.Z[k] = v }

// OrientX marks p as the record holding the valid CLV of its node.
func OrientX(p *Node) {
	if p.IsTip() {
		return
	}
	p.X = true
	p.Next.X = false
	p.Next.Next.X = false
}

// ClearX invalidates all CLV orientation flags (e.g. after a model change
// that requires a full re-traversal).
func (t *Tree) ClearX() {
	for _, r := range t.records {
		r.X = false
	}
}

// Records returns all records (tips first, then inner triplets).
func (t *Tree) Records() []*Node { return t.records }

// Branches enumerates one record per branch of the connected component
// containing Tips[0], in deterministic depth-first order. For a valid tree it
// returns exactly 2n-3 records.
func (t *Tree) Branches() []*Node {
	var out []*Node
	start := t.Tips[0]
	if start.Back == nil {
		return nil
	}
	seen := make(map[int]bool) // record IDs already emitted (either side)
	var walk func(p *Node)
	walk = func(p *Node) {
		// branch between p and p.Back
		if seen[p.ID] || seen[p.Back.ID] {
			return
		}
		seen[p.ID] = true
		out = append(out, p)
		q := p.Back
		if q.IsTip() {
			return
		}
		walk(q.Next)
		walk(q.Next.Next)
	}
	walk(start)
	return out
}

// Validate checks structural invariants: symmetric Back links, shared branch
// slices, intact triplets, full connectivity, and the 2n-3 branch count.
func (t *Tree) Validate() error {
	for _, r := range t.records {
		if r.Back == nil {
			return fmt.Errorf("tree: record %d (node %d) disconnected", r.ID, r.Index)
		}
		if r.Back.Back != r {
			return fmt.Errorf("tree: record %d has asymmetric Back link", r.ID)
		}
		if len(r.Z) != t.ZSlots {
			return fmt.Errorf("tree: record %d has %d z-slots, want %d", r.ID, len(r.Z), t.ZSlots)
		}
		if &r.Z[0] != &r.Back.Z[0] {
			return fmt.Errorf("tree: record %d does not share branch slice with Back", r.ID)
		}
		if !r.IsTip() {
			if r.Next == nil || r.Next.Next == nil || r.Next.Next.Next != r {
				return fmt.Errorf("tree: node %d triplet broken", r.Index)
			}
			if r.Next.Index != r.Index || r.Next.Next.Index != r.Index {
				return fmt.Errorf("tree: node %d triplet indices inconsistent", r.Index)
			}
		}
	}
	if got, want := len(t.Branches()), t.NumBranches(); got != want {
		return fmt.Errorf("tree: %d branches reachable, want %d", got, want)
	}
	// Every tip must be reachable.
	reach := make(map[int]bool)
	var walk func(p *Node)
	walk = func(p *Node) {
		if reach[p.ID] {
			return
		}
		reach[p.ID] = true
		if !p.IsTip() {
			walk(p.Next.Back)
			walk(p.Next.Next.Back)
		}
	}
	walk(t.Tips[0])
	walk(t.Tips[0].Back)
	for _, tip := range t.Tips {
		if !reach[tip.ID] {
			return fmt.Errorf("tree: tip %d (%s) unreachable", tip.Index, t.Names[tip.Index])
		}
	}
	return nil
}

// CopyTopologyFrom replaces t's connections and branch lengths with a copy of
// src's (both trees must share taxa and slot counts). Used by the search to
// checkpoint and restore the best tree.
func (t *Tree) CopyTopologyFrom(src *Tree) error {
	if len(src.Tips) != len(t.Tips) || src.ZSlots != t.ZSlots {
		return errors.New("tree: CopyTopologyFrom shape mismatch")
	}
	// Map src record IDs to t records. Records were allocated in the same
	// order, so IDs correspond positionally.
	byID := make(map[int]*Node, len(t.records))
	for _, r := range t.records {
		byID[r.ID] = r
	}
	// Reset all Back links, then mirror src's.
	for _, r := range t.records {
		r.Back = nil
		r.X = false
	}
	done := make(map[int]bool)
	for _, sr := range src.records {
		if sr.Back == nil || done[sr.ID] || done[sr.Back.ID] {
			continue
		}
		done[sr.ID] = true
		a, b := byID[sr.ID], byID[sr.Back.ID]
		if a == nil || b == nil {
			return errors.New("tree: CopyTopologyFrom record mismatch")
		}
		Connect(a, b, append([]float64(nil), sr.Z...))
	}
	for _, sr := range src.records {
		if sr.X {
			byID[sr.ID].X = true
		}
	}
	return nil
}
