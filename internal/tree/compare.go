package tree

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Bipartitions returns the canonical string forms of the non-trivial splits
// (bipartitions) induced by the tree's internal branches. Each split is
// identified by the sorted taxon-index set on the side not containing taxon
// 0, so the representation is rooting-independent. An unrooted binary tree
// over n taxa has exactly n-3 non-trivial splits.
func (t *Tree) Bipartitions() map[string]bool {
	splits := make(map[string]bool, t.NumTips()-3)
	for _, b := range t.Branches() {
		if key, ok := t.SplitKey(b); ok {
			splits[key] = true
		}
	}
	return splits
}

// SplitKey returns the rooting-independent canonical key of the split the
// branch at record b induces — the sorted, comma-joined taxon indices of the
// side not containing taxon 0 — and whether the split is non-trivial (both
// branch ends inner). The same key scheme underlies Bipartitions,
// RobinsonFoulds, and the bootstrap SupportCounter, so split identities are
// directly comparable across all three.
func (t *Tree) SplitKey(b *Node) (string, bool) {
	if b.IsTip() || b.Back.IsTip() {
		return "", false // trivial split
	}
	var members []int
	collectTips(b.Back, &members)
	// Canonicalize: use the side that excludes taxon 0.
	has0 := false
	for _, m := range members {
		if m == 0 {
			has0 = true
			break
		}
	}
	if has0 {
		other := make([]int, 0, t.NumTips()-len(members))
		present := make(map[int]bool, len(members))
		for _, m := range members {
			present[m] = true
		}
		for i := 0; i < t.NumTips(); i++ {
			if !present[i] {
				other = append(other, i)
			}
		}
		members = other
	}
	sort.Ints(members)
	var sb strings.Builder
	for i, m := range members {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", m)
	}
	return sb.String(), true
}

// collectTips gathers the taxon indices of the subtree behind record p.
func collectTips(p *Node, out *[]int) {
	if p.IsTip() {
		*out = append(*out, p.Index)
		return
	}
	collectTips(p.Next.Back, out)
	collectTips(p.Next.Next.Back, out)
}

// RobinsonFoulds computes the Robinson-Foulds topological distance between
// two trees over the same taxa: the number of bipartitions present in
// exactly one of the two trees. Zero means identical topologies; the maximum
// for binary trees is 2(n-3).
func RobinsonFoulds(a, b *Tree) (int, error) {
	if a.NumTips() != b.NumTips() {
		return 0, errors.New("tree: RobinsonFoulds requires equal taxon sets")
	}
	for i, n := range a.Names {
		if b.Names[i] != n {
			return 0, fmt.Errorf("tree: taxon %d differs: %q vs %q", i, n, b.Names[i])
		}
	}
	sa := a.Bipartitions()
	sb := b.Bipartitions()
	d := 0
	for s := range sa { //plk:allow(maprange) commutative int count; order-free
		if !sb[s] {
			d++
		}
	}
	for s := range sb { //plk:allow(maprange) commutative int count; order-free
		if !sa[s] {
			d++
		}
	}
	return d, nil
}
