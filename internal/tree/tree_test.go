package tree

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%d", i)
	}
	return out
}

func TestNewSkeleton(t *testing.T) {
	tr, err := New(names(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTips() != 5 || tr.NumInner() != 3 || tr.NumBranches() != 7 {
		t.Errorf("counts: tips=%d inner=%d branches=%d", tr.NumTips(), tr.NumInner(), tr.NumBranches())
	}
	// Triplet wiring.
	for _, in := range tr.Inner {
		if in.Next.Next.Next != in {
			t.Error("triplet not circular")
		}
		if in.IsTip() {
			t.Error("inner node reports IsTip")
		}
	}
	for _, tip := range tr.Tips {
		if !tip.IsTip() {
			t.Error("tip misclassified")
		}
	}
	if _, err := New(names(2), 1); err == nil {
		t.Error("expected error for 2 taxa")
	}
	if _, err := New(names(4), 0); err == nil {
		t.Error("expected error for 0 z-slots")
	}
}

func TestRandomTreeValid(t *testing.T) {
	for _, n := range []int{3, 4, 5, 10, 50, 125} {
		tr, err := Random(names(n), 3, RandomOptions{Seed: int64(n)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := len(tr.Branches()); got != 2*n-3 {
			t.Errorf("n=%d: %d branches, want %d", n, got, 2*n-3)
		}
	}
}

func TestRandomTreeDeterministic(t *testing.T) {
	a, _ := Random(names(20), 1, RandomOptions{Seed: 7})
	b, _ := Random(names(20), 1, RandomOptions{Seed: 7})
	if WriteNewick(a, 0) != WriteNewick(b, 0) {
		t.Error("same seed must give the same tree")
	}
	c, _ := Random(names(20), 1, RandomOptions{Seed: 8})
	if WriteNewick(a, 0) == WriteNewick(c, 0) {
		t.Error("different seeds should give different trees (overwhelmingly)")
	}
}

func TestBranchSharingAndSetLength(t *testing.T) {
	tr, _ := Random(names(6), 4, RandomOptions{Seed: 1})
	br := tr.Branches()
	for _, p := range br {
		SetBranchLength(p, 2, 0.42)
		if p.Back.Z[2] != 0.42 {
			t.Fatal("branch length not shared with Back")
		}
	}
}

func TestNewickRoundTrip(t *testing.T) {
	for _, n := range []int{4, 7, 30} {
		tr, _ := Random(names(n), 1, RandomOptions{Seed: int64(n * 3)})
		s := WriteNewick(tr, 0)
		back, err := ParseNewick(s, names(n), 1)
		if err != nil {
			t.Fatalf("n=%d: parse failed: %v\n%s", n, err, s)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Round-trip again: serialized forms must agree (same splits, same
		// lengths, same canonical ordering from tip0 rooting).
		s2 := WriteNewick(back, 0)
		if s != s2 {
			t.Errorf("n=%d: newick round-trip mismatch:\n%s\n%s", n, s, s2)
		}
	}
}

func TestParseNewickRooted(t *testing.T) {
	// Rooted 4-taxon input gets unrooted; the two root branches fuse.
	s := "((t0:0.1,t1:0.2):0.05,(t2:0.3,t3:0.4):0.15);"
	tr, err := ParseNewick(s, names(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Branches()); got != 5 {
		t.Errorf("branches = %d, want 5", got)
	}
	// The fused central branch must have length 0.05+0.15 = 0.2.
	found := false
	for _, b := range tr.Branches() {
		if !b.IsTip() && !b.Back.IsTip() && abs(b.Z[0]-0.2) < 1e-12 {
			found = true
		}
	}
	if !found {
		t.Error("fused central branch with length 0.2 not found")
	}
}

func TestParseNewickTrifurcating(t *testing.T) {
	s := "(t0:0.1,t1:0.2,(t2:0.3,t3:0.4):0.5);"
	tr, err := ParseNewick(s, names(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Lengths replicate into all slots.
	for _, b := range tr.Branches() {
		if b.Z[0] != b.Z[1] {
			t.Error("parsed lengths must fill every slot")
		}
	}
}

func TestParseNewickErrors(t *testing.T) {
	cases := []string{
		"",                             // empty
		"t0:0.1;",                      // no parens
		"(t0:1,t1:1);",                 // unrooted pair fuses but then taxa missing
		"(t0:1,t1:1,t2:1,t3:1);",       // root with 4 children
		"((t0:1,t1:1,t2:1):1,t3:1);",   // internal multifurcation
		"(t0:1,t1:1,(t2:1,zz:1):1);",   // unknown taxon
		"(t0:1,t1:1,(t2:1,t0:1):1);",   // duplicate taxon
		"(t0:1,t1:1,(t2:1,t3:1):1)",    // missing semicolon
		"(t0:1,t1:1,(t2:1,t3:bad):1);", // bad length
		"(t0:1,t1:1,(t2:1,t3:1:1);",    // unbalanced
	}
	for _, s := range cases {
		if _, err := ParseNewick(s, names(4), 1); err == nil {
			t.Errorf("expected parse error for %q", s)
		}
	}
}

func TestComputeTraversalFull(t *testing.T) {
	tr, _ := Random(names(8), 1, RandomOptions{Seed: 3})
	tr.ClearX()
	start := tr.Tips[0].Back
	steps := ComputeTraversal(start, false)
	// Full traversal behind an inner node adjacent to a tip covers all n-2
	// inner nodes.
	if len(steps) != tr.NumInner() {
		t.Errorf("full traversal has %d steps, want %d", len(steps), tr.NumInner())
	}
	// Bottom-up: every step's children must be tips or already computed.
	seen := make(map[int]bool)
	for _, st := range steps {
		for _, ch := range []*Node{st.Q, st.R} {
			if !ch.IsTip() && !seen[ch.Index] {
				t.Fatal("traversal not bottom-up")
			}
		}
		seen[st.P.Index] = true
		if !st.P.X {
			t.Error("step target not oriented")
		}
	}
}

func TestComputeTraversalPartial(t *testing.T) {
	tr, _ := Random(names(8), 1, RandomOptions{Seed: 3})
	tr.ClearX()
	start := tr.Tips[0].Back
	ComputeTraversal(start, false)
	// Everything valid towards start: partial traversal is now empty.
	steps := ComputeTraversal(start, true)
	if len(steps) != 0 {
		t.Errorf("partial traversal after full should be empty, got %d", len(steps))
	}
	// Moving the virtual root one branch over requires only local updates:
	// the CLV at other is already valid, the far end needs one newview.
	other := start.Next.Back
	if !other.IsTip() {
		steps = RootTraversal(other, true)
		if len(steps) == 0 || len(steps) > 2 {
			t.Errorf("re-rooting one step away took %d newviews", len(steps))
		}
	}
	// RootTraversal covers both ends.
	tr.ClearX()
	steps = RootTraversal(tr.Tips[0].Back, false)
	if len(steps) != tr.NumInner() {
		t.Errorf("root traversal = %d steps, want %d", len(steps), tr.NumInner())
	}
}

func TestCopyTopologyFrom(t *testing.T) {
	src, _ := Random(names(12), 2, RandomOptions{Seed: 5})
	dst, _ := New(names(12), 2)
	if err := dst.CopyTopologyFrom(src); err != nil {
		t.Fatal(err)
	}
	if err := dst.Validate(); err != nil {
		t.Fatal(err)
	}
	if WriteNewick(src, 1) != WriteNewick(dst, 1) {
		t.Error("copied tree differs")
	}
	// Branch slices must be independent.
	srcBr := src.Branches()
	SetBranchLength(srcBr[0], 0, 0.777)
	for _, b := range dst.Branches() {
		if b.Z[0] == 0.777 {
			t.Error("CopyTopologyFrom must deep-copy branch lengths")
		}
	}
	bad, _ := New(names(5), 2)
	if err := bad.CopyTopologyFrom(src); err == nil {
		t.Error("expected shape mismatch error")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	tr, _ := Random(names(5), 1, RandomOptions{Seed: 1})
	// Break a Back link.
	b := tr.Branches()[0]
	saved := b.Back
	b.Back = nil
	if err := tr.Validate(); err == nil {
		t.Error("expected validation error for nil Back")
	}
	b.Back = saved
	// Unshare a Z slice.
	b.Z = append([]float64(nil), b.Z...)
	if err := tr.Validate(); err == nil {
		t.Error("expected validation error for unshared Z")
	}
}

func TestClearXAndOrient(t *testing.T) {
	tr, _ := Random(names(6), 1, RandomOptions{Seed: 2})
	in := tr.Inner[0]
	OrientX(in.Next)
	if !in.Next.X || in.X || in.Next.Next.X {
		t.Error("OrientX must set exactly one record")
	}
	tr.ClearX()
	for _, r := range tr.Records() {
		if r.X {
			t.Error("ClearX left a flag set")
		}
	}
	// OrientX on a tip is a no-op.
	OrientX(tr.Tips[0])
	if tr.Tips[0].X {
		t.Error("tips must not carry X")
	}
}

// Property: random trees of random size are structurally valid and their
// newick serialization parses back to the same canonical form.
func TestRandomTreeQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		tr, err := Random(names(n), 1, RandomOptions{Seed: seed})
		if err != nil || tr.Validate() != nil {
			return false
		}
		s := WriteNewick(tr, 0)
		back, err := ParseNewick(s, names(n), 1)
		if err != nil {
			return false
		}
		return WriteNewick(back, 0) == s && strings.Count(s, "(") == n-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
