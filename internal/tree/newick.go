package tree

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ParseNewick builds an unrooted tree over the given taxa from a Newick
// string. Binary trees are required; a bifurcating (rooted) top level is
// silently unrooted by fusing the two root branches, exactly as RAxML does
// when reading rooted input. Branch lengths fill every slot of the branch;
// missing lengths default to DefaultBranchLength.
func ParseNewick(s string, names []string, zSlots int) (*Tree, error) {
	t, err := New(names, zSlots)
	if err != nil {
		return nil, err
	}
	nameToTip := make(map[string]*Node, len(names))
	for i, n := range names {
		nameToTip[n] = t.Tips[i]
	}
	p := &newickParser{s: s, t: t, nameToTip: nameToTip}
	p.skipSpace()
	if p.pos >= len(p.s) || p.peek() != '(' {
		return nil, errors.New("newick: tree must start with '('")
	}
	children, lengths, err := p.parseChildren()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	// Optional root label/length are ignored.
	for p.pos < len(p.s) && p.peek() != ';' {
		p.pos++
	}
	if p.pos >= len(p.s) || p.peek() != ';' {
		return nil, errors.New("newick: missing terminating ';'")
	}
	switch len(children) {
	case 2:
		// Rooted input: fuse the two root-adjacent branches into one.
		z := t.NewZ()
		for k := range z {
			z[k] = clampBL(lengths[0][k] + lengths[1][k])
		}
		Connect(children[0], children[1], z)
	case 3:
		inner, err := p.takeInner()
		if err != nil {
			return nil, err
		}
		recs := [3]*Node{inner, inner.Next, inner.Next.Next}
		for i := 0; i < 3; i++ {
			Connect(recs[i], children[i], lengths[i])
		}
	default:
		return nil, fmt.Errorf("newick: root must have 2 or 3 children, got %d", len(children))
	}
	if p.usedTips != len(names) {
		return nil, fmt.Errorf("newick: tree names %d of %d taxa", p.usedTips, len(names))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

type newickParser struct {
	s         string
	pos       int
	t         *Tree
	nameToTip map[string]*Node
	usedTips  int
	usedInner int
	seenTips  map[string]bool
}

func (p *newickParser) peek() byte { return p.s[p.pos] }
func (p *newickParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t' || p.s[p.pos] == '\n' || p.s[p.pos] == '\r') {
		p.pos++
	}
}

func (p *newickParser) takeInner() (*Node, error) {
	if p.usedInner >= len(p.t.Inner) {
		return nil, errors.New("newick: more internal nodes than an unrooted binary tree allows")
	}
	n := p.t.Inner[p.usedInner]
	p.usedInner++
	return n, nil
}

// parseChildren parses "(" subtree ("," subtree)* ")" and returns the
// dangling records with their branch lengths.
func (p *newickParser) parseChildren() (children []*Node, lengths [][]float64, err error) {
	p.pos++ // consume '('
	for {
		child, z, err := p.parseSubtree()
		if err != nil {
			return nil, nil, err
		}
		children = append(children, child)
		lengths = append(lengths, z)
		p.skipSpace()
		if p.pos >= len(p.s) {
			return nil, nil, errors.New("newick: unexpected end of input")
		}
		switch p.peek() {
		case ',':
			p.pos++
			continue
		case ')':
			p.pos++
			return children, lengths, nil
		default:
			return nil, nil, fmt.Errorf("newick: unexpected character %q at %d", string(p.peek()), p.pos)
		}
	}
}

// parseSubtree parses one subtree and returns its dangling record (Back not
// yet set) plus the branch length slice connecting it upward.
func (p *newickParser) parseSubtree() (*Node, []float64, error) {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return nil, nil, errors.New("newick: unexpected end of input")
	}
	if p.peek() == '(' {
		children, lengths, err := p.parseChildren()
		if err != nil {
			return nil, nil, err
		}
		if len(children) != 2 {
			return nil, nil, fmt.Errorf("newick: internal node with %d children; only binary trees are supported", len(children))
		}
		inner, err := p.takeInner()
		if err != nil {
			return nil, nil, err
		}
		Connect(inner.Next, children[0], lengths[0])
		Connect(inner.Next.Next, children[1], lengths[1])
		// Optional internal label ignored.
		p.parseLabel()
		z, err := p.parseLength()
		if err != nil {
			return nil, nil, err
		}
		return inner, z, nil
	}
	name := p.parseLabel()
	if name == "" {
		return nil, nil, fmt.Errorf("newick: expected taxon name at position %d", p.pos)
	}
	tip, ok := p.nameToTip[name]
	if !ok {
		return nil, nil, fmt.Errorf("newick: unknown taxon %q", name)
	}
	if p.seenTips == nil {
		p.seenTips = make(map[string]bool)
	}
	if p.seenTips[name] {
		return nil, nil, fmt.Errorf("newick: taxon %q appears twice", name)
	}
	p.seenTips[name] = true
	p.usedTips++
	z, err := p.parseLength()
	if err != nil {
		return nil, nil, err
	}
	return tip, z, nil
}

func (p *newickParser) parseLabel() string {
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == ',' || c == ')' || c == '(' || c == ':' || c == ';' || c == ' ' || c == '\n' || c == '\t' {
			break
		}
		p.pos++
	}
	return p.s[start:p.pos]
}

func (p *newickParser) parseLength() ([]float64, error) {
	z := p.t.NewZ()
	p.skipSpace()
	if p.pos >= len(p.s) || p.peek() != ':' {
		return z, nil
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	v, err := strconv.ParseFloat(p.s[start:p.pos], 64)
	if err != nil {
		return nil, fmt.Errorf("newick: bad branch length %q", p.s[start:p.pos])
	}
	v = clampBL(v)
	for k := range z {
		z[k] = v
	}
	return z, nil
}

func clampBL(v float64) float64 {
	const min, max = 1e-8, 64.0
	if v < min {
		return min
	}
	if v > max {
		return max
	}
	return v
}

// WriteNewick serializes the tree with branch lengths from slot k, rooted for
// display at the inner node adjacent to tip 0 (the conventional unrooted
// Newick form with a top-level trifurcation).
func WriteNewick(t *Tree, k int) string {
	var b strings.Builder
	tip := t.Tips[0]
	root := tip.Back
	b.WriteByte('(')
	b.WriteString(t.Names[tip.Index])
	fmt.Fprintf(&b, ":%.8f", tip.Z[k])
	b.WriteByte(',')
	writeSubtree(&b, t, root.Next.Back, root.Next.Z[k], k)
	b.WriteByte(',')
	writeSubtree(&b, t, root.Next.Next.Back, root.Next.Next.Z[k], k)
	b.WriteString(");")
	return b.String()
}

func writeSubtree(b *strings.Builder, t *Tree, p *Node, z float64, k int) {
	if p.IsTip() {
		b.WriteString(t.Names[p.Index])
		fmt.Fprintf(b, ":%.8f", z)
		return
	}
	b.WriteByte('(')
	writeSubtree(b, t, p.Next.Back, p.Next.Z[k], k)
	b.WriteByte(',')
	writeSubtree(b, t, p.Next.Next.Back, p.Next.Next.Z[k], k)
	fmt.Fprintf(b, "):%.8f", z)
}
