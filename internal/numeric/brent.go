package numeric

import "math"

// BrentResult reports the outcome of a Brent minimization.
type BrentResult struct {
	X          float64 // abscissa of the minimum
	F          float64 // function value at X
	Iterations int     // iterations consumed
	Converged  bool    // whether the tolerance was met within the budget
}

const (
	brentGolden = 0.3819660112501051 // (3 - sqrt(5)) / 2
	brentZeps   = 1e-12
)

// BrentMinimize locates a local minimum of f inside [lo, hi] using Brent's
// method (parabolic interpolation with golden-section fallback), the same
// scheme RAxML uses for optimizing the alpha shape parameter and the GTR
// exchangeability rates. guess must lie inside [lo, hi]; tol is the relative
// x tolerance; maxIter caps the iteration count.
func BrentMinimize(f func(float64) float64, lo, guess, hi, tol float64, maxIter int) BrentResult {
	if lo > hi {
		lo, hi = hi, lo
	}
	if guess < lo || guess > hi {
		guess = 0.5 * (lo + hi)
	}
	st := NewBrentState(lo, guess, hi, tol)
	fx := f(guess)
	st.Seed(fx)
	for i := 0; i < maxIter; i++ {
		x, done := st.Next()
		if done {
			return BrentResult{X: st.X, F: st.FX, Iterations: i, Converged: true}
		}
		st.Observe(x, f(x))
	}
	return BrentResult{X: st.X, F: st.FX, Iterations: maxIter, Converged: false}
}

// BrentState is an *inverted-control* Brent minimizer: instead of calling the
// objective itself, it proposes evaluation points via Next and receives values
// via Observe. This formulation is what makes the paper's newPAR strategy
// possible: the optimizer driver advances one Brent iteration for *every*
// partition, batches all proposed points into a single parallel likelihood
// evaluation over the full alignment width, and feeds the per-partition
// results back — instead of running one complete, sequential Brent loop per
// partition (oldPAR).
type BrentState struct {
	A, B       float64 // current bracket
	X, W, V    float64 // best, second best, previous second best
	FX, FW, FV float64
	D, E       float64 // current and previous step
	Tol        float64
	seeded     bool
	pending    float64 // abscissa proposed by Next, consumed by Observe
	hasPending bool
}

// NewBrentState prepares a Brent iteration over bracket [lo, hi] starting at
// guess (which must satisfy lo <= guess <= hi).
func NewBrentState(lo, guess, hi, tol float64) *BrentState {
	return &BrentState{A: lo, B: hi, X: guess, W: guess, V: guess, Tol: tol}
}

// Seed supplies f(guess) and must be called once before the first Next.
func (s *BrentState) Seed(fGuess float64) {
	s.FX, s.FW, s.FV = fGuess, fGuess, fGuess
	s.seeded = true
}

// Next returns the next abscissa to evaluate, or done=true when the bracket
// has collapsed to the tolerance (the minimum is then (s.X, s.FX)).
func (s *BrentState) Next() (x float64, done bool) {
	if !s.seeded {
		panic("numeric: BrentState.Next called before Seed")
	}
	xm := 0.5 * (s.A + s.B)
	tol1 := s.Tol*math.Abs(s.X) + brentZeps
	tol2 := 2 * tol1
	if math.Abs(s.X-xm) <= tol2-0.5*(s.B-s.A) {
		return s.X, true
	}
	var d float64
	if math.Abs(s.E) > tol1 {
		// Attempt parabolic interpolation through (x, w, v).
		r := (s.X - s.W) * (s.FX - s.FV)
		q := (s.X - s.V) * (s.FX - s.FW)
		p := (s.X-s.V)*q - (s.X-s.W)*r
		q = 2 * (q - r)
		if q > 0 {
			p = -p
		}
		q = math.Abs(q)
		etemp := s.E
		s.E = s.D
		if math.Abs(p) >= math.Abs(0.5*q*etemp) || p <= q*(s.A-s.X) || p >= q*(s.B-s.X) {
			// Reject: golden-section step into the larger segment.
			if s.X >= xm {
				s.E = s.A - s.X
			} else {
				s.E = s.B - s.X
			}
			d = brentGolden * s.E
		} else {
			d = p / q
			u := s.X + d
			if u-s.A < tol2 || s.B-u < tol2 {
				d = math.Copysign(tol1, xm-s.X)
			}
		}
	} else {
		if s.X >= xm {
			s.E = s.A - s.X
		} else {
			s.E = s.B - s.X
		}
		d = brentGolden * s.E
	}
	s.D = d
	var u float64
	if math.Abs(d) >= tol1 {
		u = s.X + d
	} else {
		u = s.X + math.Copysign(tol1, d)
	}
	s.pending = u
	s.hasPending = true
	return u, false
}

// Observe records f(x) for the abscissa returned by the last Next call and
// updates the bracket state.
func (s *BrentState) Observe(x, fx float64) {
	if !s.hasPending {
		panic("numeric: BrentState.Observe without a pending Next")
	}
	s.hasPending = false
	u, fu := x, fx
	if fu <= s.FX {
		if u >= s.X {
			s.A = s.X
		} else {
			s.B = s.X
		}
		s.V, s.FV = s.W, s.FW
		s.W, s.FW = s.X, s.FX
		s.X, s.FX = u, fu
		return
	}
	if u < s.X {
		s.A = u
	} else {
		s.B = u
	}
	if fu <= s.FW || s.W == s.X {
		s.V, s.FV = s.W, s.FW
		s.W, s.FW = u, fu
	} else if fu <= s.FV || s.V == s.X || s.V == s.W {
		s.V, s.FV = u, fu
	}
}
