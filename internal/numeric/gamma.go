package numeric

import "math"

// IncompleteGammaP computes the regularized lower incomplete gamma function
//
//	P(a, x) = gamma(a, x) / Gamma(a) = 1/Gamma(a) * Int_0^x t^(a-1) e^-t dt
//
// for a > 0, x >= 0, using the series expansion for x < a+1 and the
// continued-fraction expansion otherwise (Numerical Recipes gser/gcf scheme,
// re-derived). Accuracy is ~1e-14 over the parameter ranges used by discrete
// gamma rates (a in [0.005, 500]).
func IncompleteGammaP(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if math.IsInf(x, 1) {
		return 1
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

// IncompleteGammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func IncompleteGammaQ(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if math.IsInf(x, 1) {
		return 0
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaContinuedFraction(a, x)
}

// gammaSeries evaluates P(a,x) by its power series; converges fast for x < a+1.
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < 1000; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-16 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedFraction evaluates Q(a,x) by the Lentz continued fraction;
// converges fast for x >= a+1.
func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 1000; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// GammaQuantile returns x such that P(shape, x) = p for the standard gamma
// distribution with the given shape and unit rate. The root is located in
// log space (which stays well-conditioned even for the astronomically small
// quantiles that arise at shape << 1) by Newton steps with a bisection
// bracket as safeguard. Used to obtain the per-category boundaries of the
// discrete Gamma model of rate heterogeneity (Yang 1994).
func GammaQuantile(p, shape float64) float64 {
	if math.IsNaN(p) || math.IsNaN(shape) || shape <= 0 || p < 0 || p > 1 {
		return math.NaN()
	}
	if p == 0 {
		return 0
	}
	if p == 1 {
		return math.Inf(1)
	}
	lg, _ := math.Lgamma(shape)
	lg1, _ := math.Lgamma(shape + 1)
	// Small-x expansion P(a,x) ~ x^a / Gamma(a+1) gives an excellent guess in
	// log space whenever the quantile is far below the mode; otherwise use the
	// Wilson-Hilferty normal approximation.
	lx := (math.Log(p) + lg1) / shape
	if lx > math.Log(0.1*(shape+1)) {
		z := normalQuantile(p)
		wh := shape * math.Pow(1-1/(9*shape)+z/(3*math.Sqrt(shape)), 3)
		if wh > 0 && !math.IsNaN(wh) {
			lx = math.Log(wh)
		}
	}
	// Bracket in log space: llo with P <= p, lhi with P >= p.
	llo, lhi := lx, lx
	for i := 0; i < 200 && IncompleteGammaP(shape, math.Exp(llo)) > p; i++ {
		llo -= 2
	}
	for i := 0; i < 200 && IncompleteGammaP(shape, math.Exp(lhi)) < p; i++ {
		lhi += 2
	}
	if lx < llo || lx > lhi {
		lx = 0.5 * (llo + lhi)
	}
	for i := 0; i < 200; i++ {
		x := math.Exp(lx)
		f := IncompleteGammaP(shape, x) - p
		if f > 0 {
			lhi = lx
		} else {
			llo = lx
		}
		// d/d(ln x) P(a, e^(ln x)) = pdf(x) * x = exp(a ln x - x - lgamma(a)).
		dfdlx := math.Exp(shape*lx - x - lg)
		var next float64
		if dfdlx > 0 && !math.IsInf(dfdlx, 0) {
			next = lx - f/dfdlx
		} else {
			next = 0.5 * (llo + lhi)
		}
		if next <= llo || next >= lhi || math.IsNaN(next) {
			next = 0.5 * (llo + lhi)
		}
		if math.Abs(next-lx) < 1e-14 {
			return math.Exp(next)
		}
		lx = next
	}
	return math.Exp(lx)
}

// normalQuantile is the inverse standard normal CDF (Peter Acklam's rational
// approximation, |relative error| < 1.15e-9), adequate as a Newton starting
// point for GammaQuantile.
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// DiscreteGammaRates fills rates with the k category rates of Yang's (1994)
// discrete Gamma model of among-site rate heterogeneity for shape parameter
// alpha, using the mean of each equal-probability quantile slice. The rates
// average exactly 1 so branch lengths keep their expected-substitutions
// interpretation. k must be >= 1.
//
// For X ~ Gamma(shape=alpha, rate=alpha) (mean 1), the mean of X restricted to
// quantile slice (c_j, c_{j+1}) times k is
//
//	r_j = k * [ P(alpha+1, alpha*c_{j+1}) - P(alpha+1, alpha*c_j) ]
//
// where P is the regularized lower incomplete gamma and the c_j are the
// (j/k)-quantiles of X.
func DiscreteGammaRates(alpha float64, rates []float64) {
	k := len(rates)
	if k == 0 {
		return
	}
	if k == 1 {
		rates[0] = 1
		return
	}
	// Quantile boundaries of Gamma(alpha, rate alpha): the (j/k)-quantile of X
	// equals quantile_gamma(shape=alpha, rate=1, j/k) / alpha.
	prev := 0.0 // P(alpha+1, alpha*c_0) with c_0 = 0
	for j := 1; j <= k; j++ {
		var cur float64
		if j == k {
			cur = 1
		} else {
			q := GammaQuantile(float64(j)/float64(k), alpha) // rate-1 quantile = alpha * c_j
			cur = IncompleteGammaP(alpha+1, q)
		}
		rates[j-1] = float64(k) * (cur - prev)
		prev = cur
	}
	// Guard against tiny negative values from cancellation at extreme alpha,
	// then renormalize the mean to exactly 1.
	sum := 0.0
	for j := range rates {
		if rates[j] < 1e-12 {
			rates[j] = 1e-12
		}
		sum += rates[j]
	}
	scale := float64(k) / sum
	for j := range rates {
		rates[j] *= scale
	}
}
