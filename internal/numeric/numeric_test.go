package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJacobiEigenIdentity(t *testing.T) {
	n := 4
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 1
	}
	vals, vecs, err := JacobiEigen(a, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if math.Abs(v-1) > 1e-14 {
			t.Errorf("eigenvalue %d = %v, want 1", i, v)
		}
	}
	// Eigenvectors must be orthonormal.
	checkOrthonormal(t, vecs, n)
}

func TestJacobiEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := []float64{2, 1, 1, 2}
	vals, _, err := JacobiEigen(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Errorf("got eigenvalues %v, want [1 3]", vals)
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{3, 4, 8, 20} {
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a[i*n+j] = v
				a[j*n+i] = v
			}
		}
		vals, vecs, err := JacobiEigen(a, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkOrthonormal(t, vecs, n)
		// Reconstruct V diag(vals) V^T and compare.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += vecs[i*n+k] * vals[k] * vecs[j*n+k]
				}
				if math.Abs(s-a[i*n+j]) > 1e-9 {
					t.Fatalf("n=%d: reconstruction (%d,%d) = %v, want %v", n, i, j, s, a[i*n+j])
				}
			}
		}
		// Eigenvalues sorted ascending.
		for k := 1; k < n; k++ {
			if vals[k] < vals[k-1] {
				t.Fatalf("n=%d: eigenvalues not sorted: %v", n, vals)
			}
		}
	}
}

func TestJacobiEigenRejectsAsymmetric(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if _, _, err := JacobiEigen(a, 2); err == nil {
		t.Fatal("expected error for asymmetric input")
	}
	if _, _, err := JacobiEigen([]float64{1, 2}, 2); err == nil {
		t.Fatal("expected error for bad length")
	}
}

func checkOrthonormal(t *testing.T, v []float64, n int) {
	t.Helper()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += v[i*n+a] * v[i*n+b]
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-10 {
				t.Fatalf("eigenvector columns %d,%d: dot = %v, want %v", a, b, dot, want)
			}
		}
	}
}

func TestMatVecMatMulTranspose(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	x := []float64{1, 1}
	y := MatVec(a, x, 2)
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MatVec = %v, want [3 7]", y)
	}
	c := MatMul(a, a, 2)
	want := []float64{7, 10, 15, 22}
	for i := range want {
		if c[i] != want[i] {
			t.Errorf("MatMul[%d] = %v, want %v", i, c[i], want[i])
		}
	}
	tr := Transpose(a, 2)
	if tr[0] != 1 || tr[1] != 3 || tr[2] != 2 || tr[3] != 4 {
		t.Errorf("Transpose = %v", tr)
	}
}

func TestIncompleteGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^-x.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		got := IncompleteGammaP(1, x)
		want := 1 - math.Exp(-x)
		if math.Abs(got-want) > 1e-13 {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(a, 0) = 0, P(a, inf) = 1.
	if IncompleteGammaP(2.5, 0) != 0 {
		t.Error("P(a,0) != 0")
	}
	if IncompleteGammaP(2.5, math.Inf(1)) != 1 {
		t.Error("P(a,inf) != 1")
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.01, 0.25, 1, 4} {
		got := IncompleteGammaP(0.5, x)
		want := math.Erf(math.Sqrt(x))
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(0.5,%v) = %v, want erf=%v", x, got, want)
		}
	}
	// Q = 1 - P across the series/fraction switchover.
	for _, a := range []float64{0.3, 1.7, 8, 80} {
		for _, x := range []float64{0.2, a, a + 2, 3 * a} {
			p, q := IncompleteGammaP(a, x), IncompleteGammaQ(a, x)
			if math.Abs(p+q-1) > 1e-12 {
				t.Errorf("P+Q != 1 at a=%v x=%v: %v", a, x, p+q)
			}
		}
	}
	if !math.IsNaN(IncompleteGammaP(-1, 1)) || !math.IsNaN(IncompleteGammaP(1, -1)) {
		t.Error("expected NaN for invalid arguments")
	}
}

func TestGammaQuantileRoundTrip(t *testing.T) {
	for _, shape := range []float64{0.05, 0.3, 0.5, 1, 2.7, 10, 100} {
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			x := GammaQuantile(p, shape)
			back := IncompleteGammaP(shape, x)
			if math.Abs(back-p) > 1e-10 {
				t.Errorf("shape=%v p=%v: quantile=%v, P(quantile)=%v", shape, p, x, back)
			}
		}
	}
	if GammaQuantile(0, 1) != 0 {
		t.Error("quantile at p=0 should be 0")
	}
	if !math.IsInf(GammaQuantile(1, 1), 1) {
		t.Error("quantile at p=1 should be +inf")
	}
	// Exponential special case: quantile(p, 1) = -ln(1-p).
	for _, p := range []float64{0.1, 0.5, 0.9} {
		got := GammaQuantile(p, 1)
		want := -math.Log(1 - p)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("exponential quantile p=%v: got %v want %v", p, got, want)
		}
	}
}

func TestDiscreteGammaRatesMeanOne(t *testing.T) {
	for _, alpha := range []float64{0.05, 0.2, 0.5, 1, 2, 5, 50} {
		for _, k := range []int{1, 2, 4, 8} {
			rates := make([]float64, k)
			DiscreteGammaRates(alpha, rates)
			sum := 0.0
			for i, r := range rates {
				if r <= 0 {
					t.Fatalf("alpha=%v k=%d: non-positive rate %v", alpha, k, r)
				}
				if i > 0 && rates[i] < rates[i-1] {
					t.Fatalf("alpha=%v k=%d: rates not monotone: %v", alpha, k, rates)
				}
				sum += r
			}
			if math.Abs(sum/float64(k)-1) > 1e-9 {
				t.Errorf("alpha=%v k=%d: mean = %v, want 1", alpha, k, sum/float64(k))
			}
		}
	}
}

func TestDiscreteGammaRatesLimits(t *testing.T) {
	// Large alpha: rates approach 1 (homogeneous).
	rates := make([]float64, 4)
	DiscreteGammaRates(500, rates)
	for _, r := range rates {
		if math.Abs(r-1) > 0.1 {
			t.Errorf("alpha=500: rate %v should be near 1", r)
		}
	}
	// Small alpha: strong heterogeneity, lowest category near 0.
	DiscreteGammaRates(0.1, rates)
	if rates[0] > 0.01 {
		t.Errorf("alpha=0.1: lowest rate %v should be near 0", rates[0])
	}
	if rates[3] < 2 {
		t.Errorf("alpha=0.1: highest rate %v should be large", rates[3])
	}
	// Known reference values for alpha = 0.5, k = 4 (Yang 1994 Table; widely
	// reproduced): approximately {0.0334, 0.2519, 0.8203, 2.8944}.
	DiscreteGammaRates(0.5, rates)
	want := []float64{0.0334, 0.2519, 0.8203, 2.8944}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 5e-4 {
			t.Errorf("alpha=0.5 rate[%d] = %v, want ~%v", i, rates[i], want[i])
		}
	}
}

func TestBrentMinimizeQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 3.25) * (x - 3.25) }
	res := BrentMinimize(f, 0, 1, 10, 1e-10, 100)
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(res.X-3.25) > 1e-6 {
		t.Errorf("minimum at %v, want 3.25", res.X)
	}
}

func TestBrentMinimizeHard(t *testing.T) {
	// Asymmetric function with minimum at x = 2: f = x + 4/x, f' = 1 - 4/x^2.
	f := func(x float64) float64 { return x + 4/x }
	res := BrentMinimize(f, 0.001, 0.01, 100, 1e-12, 200)
	if !res.Converged || math.Abs(res.X-2) > 1e-6 {
		t.Errorf("got x=%v converged=%v, want 2", res.X, res.Converged)
	}
	// Minimum at a boundary.
	g := func(x float64) float64 { return x }
	res = BrentMinimize(g, 1, 5, 10, 1e-9, 200)
	if math.Abs(res.X-1) > 1e-6 {
		t.Errorf("boundary minimum: got %v, want 1", res.X)
	}
}

func TestBrentStateMatchesDriver(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(x) + 0.1*x }
	st := NewBrentState(0, 2, 6, 1e-10)
	st.Seed(f(2))
	iter := 0
	for {
		x, done := st.Next()
		if done {
			break
		}
		st.Observe(x, f(x))
		iter++
		if iter > 500 {
			t.Fatal("BrentState failed to converge")
		}
	}
	// d/dx (cos x + 0.1 x) = -sin x + 0.1 = 0 -> x = pi - asin(0.1) in [2,6].
	want := math.Pi - math.Asin(0.1)
	if math.Abs(st.X-want) > 1e-6 {
		t.Errorf("minimum at %v, want %v", st.X, want)
	}
}

func TestBrentPanicsOnMisuse(t *testing.T) {
	st := NewBrentState(0, 1, 2, 1e-8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Next before Seed should panic")
			}
		}()
		st.Next()
	}()
	st.Seed(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Observe without pending Next should panic")
			}
		}()
		st.Observe(1, 1)
	}()
}

func TestNewtonStateConcave(t *testing.T) {
	// Maximize -(x-1.5)^2: d1 = -2(x-1.5), d2 = -2. One Newton step suffices.
	st := NewNewtonState(0.1, 1e-8, 100, 1e-10)
	for i := 0; i < 50 && !st.Converged; i++ {
		x := st.Point()
		st.Observe(-2*(x-1.5), -2)
	}
	if !st.Converged || math.Abs(st.X-1.5) > 1e-8 {
		t.Errorf("x=%v converged=%v, want 1.5", st.X, st.Converged)
	}
}

func TestNewtonStateBoundary(t *testing.T) {
	// Monotonically increasing objective: should pin at Max and converge.
	st := NewNewtonState(1, 1e-8, 8, 1e-10)
	for i := 0; i < 100 && !st.Converged; i++ {
		st.Observe(1, -0.0) // positive gradient, flat curvature -> uphill moves
	}
	if !st.Converged || st.X != 8 {
		t.Errorf("x=%v converged=%v, want pinned at 8", st.X, st.Converged)
	}
	// Monotonically decreasing: pins at Min.
	st = NewNewtonState(1, 1e-6, 8, 1e-10)
	for i := 0; i < 100 && !st.Converged; i++ {
		st.Observe(-1, 0)
	}
	if !st.Converged || st.X != 1e-6 {
		t.Errorf("x=%v converged=%v, want pinned at 1e-6", st.X, st.Converged)
	}
}

func TestNewtonStateNaNRecovery(t *testing.T) {
	st := NewNewtonState(4, 1e-8, 100, 1e-10)
	st.Observe(math.NaN(), math.NaN())
	if st.X >= 4 {
		t.Errorf("NaN derivatives should shrink x, got %v", st.X)
	}
	if st.Converged {
		t.Error("should not converge on NaN")
	}
}

// Property: for random concave quadratics the Newton state converges to the
// clamped optimum.
func TestNewtonStateQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opt := 0.01 + 10*rng.Float64()
		curv := -(0.1 + 5*rng.Float64())
		st := NewNewtonState(0.5, 1e-8, 50, 1e-12)
		for i := 0; i < 200 && !st.Converged; i++ {
			x := st.Point()
			st.Observe(curv*(x-opt), curv)
		}
		return st.Converged && math.Abs(st.X-opt) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: gamma quantile is monotone in p.
func TestGammaQuantileMonotoneQuick(t *testing.T) {
	f := func(a, b uint8, shapeBits uint8) bool {
		p1 := (float64(a) + 1) / 258
		p2 := (float64(b) + 1) / 258
		shape := 0.05 + float64(shapeBits)/16
		q1 := GammaQuantile(p1, shape)
		q2 := GammaQuantile(p2, shape)
		if p1 == p2 {
			return q1 == q2
		}
		if p1 > p2 {
			p1, p2 = p2, p1
			q1, q2 = q2, q1
		}
		return q1 <= q2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
