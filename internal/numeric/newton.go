package numeric

import "math"

// NewtonState is an inverted-control, safeguarded Newton-Raphson iteration for
// maximizing a one-dimensional concave objective (the log likelihood as a
// function of one branch length). The caller asks for the next abscissa with
// Point, evaluates the first and second derivative of the objective there, and
// reports them with Observe.
//
// As with BrentState, the inverted formulation is the enabler for the paper's
// newPAR strategy: the branch-length optimizer keeps one NewtonState per
// partition and drives all of them forward in lockstep, evaluating the
// derivatives for every non-converged partition inside a single parallel
// region that spans the whole alignment, instead of running one complete
// Newton loop per partition over a narrow column range (oldPAR).
type NewtonState struct {
	X         float64 // current abscissa (branch length)
	Min, Max  float64 // hard clamp interval
	Tol       float64 // relative step tolerance for convergence
	Converged bool
	Steps     int
}

// NewNewtonState starts a Newton iteration at x0 confined to [min, max].
func NewNewtonState(x0, min, max, tol float64) *NewtonState {
	if x0 < min {
		x0 = min
	}
	if x0 > max {
		x0 = max
	}
	return &NewtonState{X: x0, Min: min, Max: max, Tol: tol}
}

// Point returns the abscissa at which the caller must evaluate d/dx and
// d2/dx2 of the objective.
func (s *NewtonState) Point() float64 { return s.X }

// Observe consumes the derivatives at the current point and advances one
// safeguarded Newton step. It returns true when the iteration has converged.
func (s *NewtonState) Observe(d1, d2 float64) bool {
	if s.Converged {
		return true
	}
	s.Steps++
	x := s.X
	var next float64
	switch {
	case math.IsNaN(d1) || math.IsNaN(d2):
		// Numerical trouble: shrink toward the lower bound, which for branch
		// lengths is always a safe, well-conditioned region.
		next = math.Max(s.Min, 0.5*x)
	case d2 < 0:
		// Proper concave region: standard Newton step.
		next = x - d1/d2
	default:
		// Convex or flat: move uphill along the gradient with a bounded
		// multiplicative step, mirroring RAxML's makenewz safeguards.
		if d1 > 0 {
			next = x * 4
		} else {
			next = x * 0.25
		}
	}
	if next < s.Min {
		next = s.Min
	}
	if next > s.Max {
		next = s.Max
	}
	// Convergence: small relative movement, or pinned at a boundary while the
	// gradient keeps pushing outward.
	if math.Abs(next-x) <= s.Tol*math.Max(x, 1e-8) {
		s.X = next
		s.Converged = true
		return true
	}
	if (next == s.Min && x == s.Min && d1 < 0) || (next == s.Max && x == s.Max && d1 > 0) {
		s.Converged = true
		return true
	}
	s.X = next
	return false
}
