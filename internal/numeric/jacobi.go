// Package numeric provides the numerical substrate for the phylogenetic
// likelihood kernel: a symmetric eigensolver (cyclic Jacobi), Brent's
// derivative-free minimizer, the regularized incomplete gamma function,
// gamma-distribution quantiles, and a safeguarded Newton-Raphson driver.
//
// Everything is implemented from scratch on top of the standard library so
// that the library remains dependency-free.
package numeric

import (
	"errors"
	"math"
)

// ErrNoConvergence is returned by iterative routines that exceed their
// iteration budget without meeting their tolerance.
var ErrNoConvergence = errors.New("numeric: iteration limit reached without convergence")

// JacobiEigen computes the eigendecomposition of the dense symmetric n x n
// matrix a (row-major, length n*n) using the cyclic Jacobi rotation method.
// It returns the eigenvalues and the matrix of column eigenvectors v
// (row-major, v[i*n+k] is component i of eigenvector k) such that
//
//	a = v * diag(values) * v^T
//
// The input slice is not modified. Eigenpairs are sorted by ascending
// eigenvalue. Jacobi is slow for large n but extremely robust; phylogenetic
// models need n = 4 or n = 20, where it is both fast and accurate.
func JacobiEigen(a []float64, n int) (values []float64, v []float64, err error) {
	if len(a) != n*n {
		return nil, nil, errors.New("numeric: JacobiEigen: matrix length does not match n*n")
	}
	// Work on a copy; verify symmetry as we go.
	w := make([]float64, n*n)
	copy(w, a)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := math.Abs(w[i*n+j] - w[j*n+i])
			scale := math.Max(math.Abs(w[i*n+j]), math.Abs(w[j*n+i]))
			if d > 1e-9*math.Max(1, scale) {
				return nil, nil, errors.New("numeric: JacobiEigen: matrix is not symmetric")
			}
		}
	}

	v = make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w[i*n+i]
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w[i*n+j] * w[i*n+j]
			}
		}
		if off < 1e-300 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w[p*n+q]
				if apq == 0 {
					continue
				}
				app := w[p*n+p]
				aqq := w[q*n+q]
				// Skip rotations that cannot change anything at double
				// precision; this is the classic convergence guard.
				if math.Abs(apq) < 1e-18*(math.Abs(app)+math.Abs(aqq)+1e-300) {
					w[p*n+q] = 0
					w[q*n+p] = 0
					continue
				}
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e15 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				tau := s / (1 + c)

				w[p*n+p] = app - t*apq
				w[q*n+q] = aqq + t*apq
				w[p*n+q] = 0
				w[q*n+p] = 0
				for i := 0; i < n; i++ {
					if i != p && i != q {
						aip := w[i*n+p]
						aiq := w[i*n+q]
						w[i*n+p] = aip - s*(aiq+tau*aip)
						w[i*n+q] = aiq + s*(aip-tau*aiq)
						w[p*n+i] = w[i*n+p]
						w[q*n+i] = w[i*n+q]
					}
					vip := v[i*n+p]
					viq := v[i*n+q]
					v[i*n+p] = vip - s*(viq+tau*vip)
					v[i*n+q] = viq + s*(vip-tau*viq)
				}
			}
		}
		if sweep == maxSweeps-1 {
			return nil, nil, ErrNoConvergence
		}
	}
	for i := 0; i < n; i++ {
		values[i] = w[i*n+i]
	}
	sortEigenAscending(values, v, n)
	return values, v, nil
}

// sortEigenAscending sorts eigenvalues ascending and permutes the eigenvector
// columns accordingly (simple insertion sort; n is 4 or 20 in practice).
func sortEigenAscending(values []float64, v []float64, n int) {
	for i := 1; i < n; i++ {
		val := values[i]
		col := make([]float64, n)
		for r := 0; r < n; r++ {
			col[r] = v[r*n+i]
		}
		j := i - 1
		for j >= 0 && values[j] > val {
			values[j+1] = values[j]
			for r := 0; r < n; r++ {
				v[r*n+j+1] = v[r*n+j]
			}
			j--
		}
		values[j+1] = val
		for r := 0; r < n; r++ {
			v[r*n+j+1] = col[r]
		}
	}
}

// MatVec computes y = A x for a dense row-major n x n matrix.
func MatVec(a []float64, x []float64, n int) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		row := a[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			s += row[j] * x[j]
		}
		y[i] = s
	}
	return y
}

// MatMul computes C = A B for dense row-major n x n matrices.
func MatMul(a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			if aik == 0 {
				continue
			}
			brow := b[k*n : (k+1)*n]
			crow := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += aik * brow[j]
			}
		}
	}
	return c
}

// Transpose returns the transpose of a dense row-major n x n matrix.
func Transpose(a []float64, n int) []float64 {
	t := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			t[j*n+i] = a[i*n+j]
		}
	}
	return t
}
