package alignment

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mkAlign(t *testing.T, names []string, rows []string) *Alignment {
	t.Helper()
	seqs := make([][]byte, len(rows))
	for i, r := range rows {
		seqs[i] = []byte(r)
	}
	a, err := New(names, seqs)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]string{"a", "b"}, [][]byte{[]byte("AC"), []byte("AC")}); err == nil {
		t.Error("expected error for <3 taxa")
	}
	if _, err := New([]string{"a", "b", "a"}, [][]byte{[]byte("AC"), []byte("AC"), []byte("AC")}); err == nil {
		t.Error("expected error for duplicate names")
	}
	if _, err := New([]string{"a", "b", "c"}, [][]byte{[]byte("AC"), []byte("ACG"), []byte("AC")}); err == nil {
		t.Error("expected error for ragged rows")
	}
	if _, err := New([]string{"a", "b", "c"}, [][]byte{{}, {}, {}}); err == nil {
		t.Error("expected error for empty sequences")
	}
	if _, err := New([]string{"a", "", "c"}, [][]byte{[]byte("A"), []byte("A"), []byte("A")}); err == nil {
		t.Error("expected error for empty name")
	}
	a := mkAlign(t, []string{"a", "b", "c"}, []string{"ACGT", "ACGT", "ACGT"})
	if a.NumTaxa() != 3 || a.NumSites() != 4 {
		t.Errorf("shape = %d x %d, want 3 x 4", a.NumTaxa(), a.NumSites())
	}
	if a.TaxonIndex("b") != 1 || a.TaxonIndex("zz") != -1 {
		t.Error("TaxonIndex wrong")
	}
}

func TestEncodeDNA(t *testing.T) {
	cases := map[byte]byte{
		'A': 1, 'C': 2, 'G': 4, 'T': 8, 'U': 8,
		'a': 1, 't': 8,
		'R': 5, 'Y': 10, 'N': 15, '-': 15, '?': 15,
		'W': 9, 'S': 6, 'K': 12, 'M': 3, 'B': 14, 'D': 13, 'H': 11, 'V': 7,
	}
	for c, want := range cases {
		got, err := EncodeChar(DNA, c)
		if err != nil || got != want {
			t.Errorf("EncodeChar(DNA, %q) = %d, %v; want %d", string(rune(c)), got, err, want)
		}
	}
	if _, err := EncodeChar(DNA, 'J'); err == nil {
		t.Error("expected error for invalid DNA char")
	}
}

func TestEncodeAA(t *testing.T) {
	for i, c := range "ARNDCQEGHILKMFPSTWYV" {
		got, err := EncodeChar(AA, byte(c))
		if err != nil || got != byte(i) {
			t.Errorf("EncodeChar(AA, %q) = %d, %v; want %d", string(c), got, err, i)
		}
	}
	for _, c := range "X-?*" {
		got, err := EncodeChar(AA, byte(c))
		if err != nil || got != AAGap {
			t.Errorf("EncodeChar(AA, %q) = %d, %v; want gap %d", string(c), got, err, AAGap)
		}
	}
	b, _ := EncodeChar(AA, 'B')
	if AATipVectors[b][2] != 1 || AATipVectors[b][3] != 1 || AATipVectors[b][0] != 0 {
		t.Error("AA ambiguity code B should allow exactly N and D")
	}
	if _, err := EncodeChar(AA, 'J'); err == nil {
		t.Error("expected error for invalid AA char")
	}
}

func TestTipVectors(t *testing.T) {
	// DNA code 5 = A|G.
	v := TipVector(DNA, 5)
	want := []float64{1, 0, 1, 0}
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("DNA tip vector for R: %v", v)
			break
		}
	}
	// Gap codes allow everything.
	for _, s := range TipVector(DNA, GapCode(DNA)) {
		if s != 1 {
			t.Error("DNA gap tip vector must be all ones")
		}
	}
	for _, s := range TipVector(AA, GapCode(AA)) {
		if s != 1 {
			t.Error("AA gap tip vector must be all ones")
		}
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	for s := 0; s < 4; s++ {
		c := StateChar(DNA, s)
		code, err := EncodeChar(DNA, c)
		if err != nil || code != StateToCode(DNA, s) {
			t.Errorf("DNA state %d roundtrip failed", s)
		}
		if DecodeChar(DNA, code) != c {
			t.Errorf("DecodeChar(DNA, %d) = %q, want %q", code, DecodeChar(DNA, code), c)
		}
	}
	for s := 0; s < 20; s++ {
		c := StateChar(AA, s)
		code, err := EncodeChar(AA, c)
		if err != nil || code != StateToCode(AA, s) {
			t.Errorf("AA state %d roundtrip failed", s)
		}
		if DecodeChar(AA, code) != c {
			t.Errorf("DecodeChar(AA, %d) = %q, want %q", code, DecodeChar(AA, code), c)
		}
	}
}

func TestCompressBasics(t *testing.T) {
	a := mkAlign(t, []string{"t1", "t2", "t3"}, []string{
		"AACCA",
		"AACCT",
		"AAGGA",
	})
	d, err := Compress(a, SinglePartition(a, DNA, ""), CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Columns: AAA, AAA, CCG, CCG, ATA -> 3 distinct patterns.
	if d.TotalPatterns != 3 {
		t.Fatalf("TotalPatterns = %d, want 3", d.TotalPatterns)
	}
	p := d.Parts[0]
	if p.SiteCount != 5 {
		t.Errorf("SiteCount = %d, want 5", p.SiteCount)
	}
	sum := 0.0
	for _, w := range p.Weights {
		sum += w
	}
	if sum != 5 {
		t.Errorf("weights sum to %v, want 5", sum)
	}
	if p.Weights[0] != 2 || p.Weights[1] != 2 || p.Weights[2] != 1 {
		t.Errorf("weights = %v, want [2 2 1]", p.Weights)
	}
	// KeepDuplicates keeps m patterns.
	d2, err := Compress(a, SinglePartition(a, DNA, ""), CompressOptions{KeepDuplicates: true})
	if err != nil {
		t.Fatal(err)
	}
	if d2.TotalPatterns != 5 {
		t.Errorf("KeepDuplicates: TotalPatterns = %d, want 5", d2.TotalPatterns)
	}
}

func TestCompressPartitionsSeparateNamespaces(t *testing.T) {
	// Identical columns in different partitions must not merge.
	a := mkAlign(t, []string{"t1", "t2", "t3"}, []string{
		"AA",
		"CC",
		"GG",
	})
	parts := []Partition{
		{Name: "g0", Type: DNA, Sites: []int{0}},
		{Name: "g1", Type: DNA, Sites: []int{1}},
	}
	d, err := Compress(a, parts, CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalPatterns != 2 || len(d.Parts) != 2 {
		t.Fatalf("got %d patterns in %d parts, want 2 in 2", d.TotalPatterns, len(d.Parts))
	}
	if d.Parts[0].Offset != 0 || d.Parts[1].Offset != 1 {
		t.Errorf("offsets = %d,%d want 0,1", d.Parts[0].Offset, d.Parts[1].Offset)
	}
	if d.PartitionOf(0) != d.Parts[0] || d.PartitionOf(1) != d.Parts[1] || d.PartitionOf(2) != nil {
		t.Error("PartitionOf wrong")
	}
}

func TestCompressGappyPresence(t *testing.T) {
	a := mkAlign(t, []string{"t1", "t2", "t3"}, []string{
		"AC--",
		"AC-A",
		"ACGA",
	})
	parts := []Partition{
		{Name: "g0", Type: DNA, Sites: []int{0, 1}},
		{Name: "g1", Type: DNA, Sites: []int{2, 3}},
	}
	d, err := Compress(a, parts, CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Parts[0].Present[0] || !d.Parts[0].Present[1] || !d.Parts[0].Present[2] {
		t.Error("all taxa present in partition 0")
	}
	if d.Parts[1].Present[0] {
		t.Error("taxon t1 is all-gap in partition 1, Present must be false")
	}
	if !d.Parts[1].Present[1] || !d.Parts[1].Present[2] {
		t.Error("t2/t3 present in partition 1")
	}
}

func TestCompressErrors(t *testing.T) {
	a := mkAlign(t, []string{"t1", "t2", "t3"}, []string{"AC", "AC", "AC"})
	if _, err := Compress(a, nil, CompressOptions{}); err == nil {
		t.Error("expected error for no partitions")
	}
	if _, err := Compress(a, []Partition{{Name: "x", Type: DNA}}, CompressOptions{}); err == nil {
		t.Error("expected error for empty partition")
	}
	if _, err := Compress(a, []Partition{{Name: "x", Type: DNA, Sites: []int{9}}}, CompressOptions{}); err == nil {
		t.Error("expected error for out-of-range site")
	}
	bad := mkAlign(t, []string{"t1", "t2", "t3"}, []string{"AJ", "AC", "AC"})
	if _, err := Compress(bad, SinglePartition(bad, DNA, ""), CompressOptions{}); err == nil {
		t.Error("expected error for invalid character")
	}
}

func TestUniformPartitions(t *testing.T) {
	a := mkAlign(t, []string{"t1", "t2", "t3"}, []string{
		strings.Repeat("A", 2500), strings.Repeat("C", 2500), strings.Repeat("G", 2500),
	})
	parts, err := UniformPartitions(a, DNA, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// 2500/1000 -> 1000, 1000, 500; 500 >= 1000/2 so it stays separate.
	if len(parts) != 3 || len(parts[2].Sites) != 500 {
		t.Fatalf("got %d parts, last %d sites", len(parts), len(parts[len(parts)-1].Sites))
	}
	a2 := mkAlign(t, []string{"t1", "t2", "t3"}, []string{
		strings.Repeat("A", 2300), strings.Repeat("C", 2300), strings.Repeat("G", 2300),
	})
	parts, err = UniformPartitions(a2, DNA, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// 1000, 1000, 300 -> stub 300 < 500 merges into predecessor.
	if len(parts) != 2 || len(parts[1].Sites) != 1300 {
		t.Fatalf("stub merge failed: %d parts, last %d sites", len(parts), len(parts[len(parts)-1].Sites))
	}
	if _, err := UniformPartitions(a, DNA, 0); err == nil {
		t.Error("expected error for partLen 0")
	}
	if _, err := UniformPartitions(a, DNA, 99999); err == nil {
		t.Error("expected error for partLen > sites")
	}
}

func TestParsePartitionFile(t *testing.T) {
	src := `
# comment
DNA, gene0 = 1-10
WAG, gene1 = 11-20, 25-30
DNA, gene2 = 21-24\2
`
	parts, err := ParsePartitionFile(strings.NewReader(src), 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("got %d partitions", len(parts))
	}
	if parts[0].Type != DNA || parts[1].Type != AA || parts[2].Type != DNA {
		t.Error("types wrong")
	}
	if len(parts[0].Sites) != 10 || len(parts[1].Sites) != 16 || len(parts[2].Sites) != 2 {
		t.Errorf("site counts: %d %d %d", len(parts[0].Sites), len(parts[1].Sites), len(parts[2].Sites))
	}
	if parts[2].Sites[0] != 20 || parts[2].Sites[1] != 22 {
		t.Errorf("stride parse wrong: %v", parts[2].Sites)
	}

	for _, bad := range []string{
		"DNA gene = 1-10",             // missing comma
		"DNA, gene 1-10",              // missing =
		"FOO, gene = 1-10",            // unknown model
		"DNA, g = 0-10",               // out of range
		"DNA, g = 5-2",                // inverted
		"DNA, g = 1-10\nDNA, h = 5-8", // overlap
		"DNA, g = ",                   // empty
	} {
		if _, err := ParsePartitionFile(strings.NewReader(bad), 30); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestPartitionFileRoundTrip(t *testing.T) {
	parts := []Partition{
		{Name: "g0", Type: DNA, Sites: []int{0, 1, 2, 5, 6}},
		{Name: "g1", Type: AA, Sites: []int{3, 4, 7}},
	}
	var buf bytes.Buffer
	if err := WritePartitionFile(&buf, parts); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePartitionFile(&buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range parts {
		if back[i].Type != parts[i].Type || len(back[i].Sites) != len(parts[i].Sites) {
			t.Fatalf("roundtrip mismatch at %d: %+v vs %+v", i, back[i], parts[i])
		}
		for j := range parts[i].Sites {
			if back[i].Sites[j] != parts[i].Sites[j] {
				t.Fatalf("site mismatch %d/%d", i, j)
			}
		}
	}
}

func TestPhylipRoundTrip(t *testing.T) {
	a := mkAlign(t, []string{"alpha", "b", "gamma3"}, []string{"ACGTAC", "CCGTAA", "TTGTAC"})
	var buf bytes.Buffer
	if err := WritePhylip(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPhylip(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Names {
		if back.Names[i] != a.Names[i] || string(back.Seqs[i]) != string(a.Seqs[i]) {
			t.Fatalf("roundtrip row %d mismatch", i)
		}
	}
}

func TestReadPhylipMultiline(t *testing.T) {
	src := "3 8\nt1 ACGT\nACGT\nt2 CCCC CCCC\nt3\nGGGGGGGG\n"
	a, err := ReadPhylip(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Seqs[0]) != "ACGTACGT" || string(a.Seqs[1]) != "CCCCCCCC" || string(a.Seqs[2]) != "GGGGGGGG" {
		t.Errorf("parsed %q %q %q", a.Seqs[0], a.Seqs[1], a.Seqs[2])
	}
	for _, bad := range []string{
		"", "x y\n", "2 4\nt1 ACGT\n", "3 4\nt1 ACGT\nt2 AC\nt3 ACGT\n",
		"3 2\nt1 AC\nt2 AC\nt3 AC\nGG\n",
	} {
		if _, err := ReadPhylip(strings.NewReader(bad)); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestReadFasta(t *testing.T) {
	src := ">t1 description\nACGT\nACGT\n>t2\nCCCCCCCC\n>t3\nGGGGGGGG\n"
	a, err := ReadFasta(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTaxa() != 3 || a.NumSites() != 8 || a.Names[0] != "t1" {
		t.Errorf("parsed %d taxa %d sites", a.NumTaxa(), a.NumSites())
	}
	if _, err := ReadFasta(strings.NewReader("ACGT\n>t1\nACGT\n")); err == nil {
		t.Error("expected error for data before header")
	}
}

func TestStatsSummary(t *testing.T) {
	a := mkAlign(t, []string{"t1", "t2", "t3"}, []string{
		"ACGTACGTAA", "ACGTACGTCC", "ACGTACGTGG",
	})
	parts := []Partition{
		{Name: "g0", Type: DNA, Sites: []int{0, 1, 2, 3, 4, 5}},
		{Name: "g1", Type: DNA, Sites: []int{6, 7, 8, 9}},
	}
	d, err := Compress(a, parts, CompressOptions{KeepDuplicates: true})
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.NumPartitions != 2 || st.MinPatterns != 4 || st.MaxPatterns != 6 || st.TotalPatterns != 10 {
		t.Errorf("stats = %+v", st)
	}
	if d.MaxStates() != 4 {
		t.Errorf("MaxStates = %d", d.MaxStates())
	}
}

// Property: compression preserves total site count and weight sums, and
// deduplication never increases the pattern count.
func TestCompressQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		m := 1 + rng.Intn(40)
		names := make([]string, n)
		seqs := make([][]byte, n)
		const chars = "ACGT-N"
		for i := 0; i < n; i++ {
			names[i] = string(rune('a' + i))
			row := make([]byte, m)
			for j := range row {
				row[j] = chars[rng.Intn(len(chars))]
			}
			seqs[i] = row
		}
		a, err := New(names, seqs)
		if err != nil {
			return false
		}
		d, err := Compress(a, SinglePartition(a, DNA, ""), CompressOptions{})
		if err != nil {
			return false
		}
		sum := 0.0
		for _, w := range d.Parts[0].Weights {
			sum += w
		}
		return int(sum) == m && d.TotalPatterns <= m && d.Parts[0].SiteCount == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
