package alignment

import (
	"fmt"
)

// CompressedPartition holds one partition's data after site-pattern
// compression: distinct column patterns with multiplicities (weights), plus
// per-taxon encoded tip states per pattern. Patterns of all partitions are
// laid out consecutively in a single global pattern index space; Offset is
// this partition's first global pattern index. This layout is what
// internal/schedule assigns to workers (cyclically by default).
type CompressedPartition struct {
	Name         string
	Type         DataType
	Offset       int       // first global pattern index
	PatternCount int       // m' for this partition
	SiteCount    int       // uncompressed site count (sum of weights)
	Weights      []float64 // pattern multiplicities
	Tips         [][]byte  // [taxon][pattern] encoded tip codes
	Present      []bool    // [taxon] true if the taxon has any non-gap site here
}

// End returns one past the partition's last global pattern index.
func (p *CompressedPartition) End() int { return p.Offset + p.PatternCount }

// CompressedData is a fully encoded, pattern-compressed, partitioned dataset:
// the direct input of the likelihood kernel.
type CompressedData struct {
	TaxaNames     []string
	Parts         []*CompressedPartition
	TotalPatterns int // sum over partitions of PatternCount
	TotalSites    int // sum over partitions of SiteCount
}

// NumTaxa returns the number of sequences in the dataset.
func (d *CompressedData) NumTaxa() int { return len(d.TaxaNames) }

// PartitionOf returns the partition owning the global pattern index i.
func (d *CompressedData) PartitionOf(i int) *CompressedPartition {
	for _, p := range d.Parts {
		if i >= p.Offset && i < p.End() {
			return p
		}
	}
	return nil
}

// MaxStates returns the widest alphabet across partitions (4 or 20); the
// kernel sizes its conditional likelihood vectors with it.
func (d *CompressedData) MaxStates() int {
	s := 0
	for _, p := range d.Parts {
		if st := p.Type.States(); st > s {
			s = st
		}
	}
	return s
}

// CompressOptions controls pattern compression.
type CompressOptions struct {
	// KeepDuplicates disables deduplication, so every column becomes its own
	// weight-1 pattern (m = m'); the paper's simulated datasets are generated
	// with all-unique columns, making the two equivalent there.
	KeepDuplicates bool
}

// Compress encodes and pattern-compresses an alignment under a partition
// scheme. Identical columns *within the same partition* are merged and
// weighted; columns are never merged across partitions because partitions
// have distinct model parameters.
func Compress(a *Alignment, parts []Partition, opts CompressOptions) (*CompressedData, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("alignment: no partitions")
	}
	n := a.NumTaxa()
	d := &CompressedData{TaxaNames: append([]string(nil), a.Names...)}
	offset := 0
	for pi := range parts {
		part := &parts[pi]
		if len(part.Sites) == 0 {
			return nil, fmt.Errorf("alignment: partition %q is empty", part.Name)
		}
		cp := &CompressedPartition{
			Name:      part.Name,
			Type:      part.Type,
			Offset:    offset,
			SiteCount: len(part.Sites),
			Present:   make([]bool, n),
		}
		// Encode columns taxon-major for cache-friendly kernel access.
		col := make([]byte, n)
		index := make(map[string]int)
		var patterns [][]byte // pattern-major first, transposed below
		var weights []float64
		for _, site := range part.Sites {
			if site < 0 || site >= a.NumSites() {
				return nil, fmt.Errorf("alignment: partition %q references column %d outside alignment", part.Name, site)
			}
			for t := 0; t < n; t++ {
				code, err := EncodeChar(part.Type, a.Seqs[t][site])
				if err != nil {
					return nil, fmt.Errorf("taxon %q column %d: %v", a.Names[t], site+1, err)
				}
				col[t] = code
				if !IsGapCode(part.Type, code) {
					cp.Present[t] = true
				}
			}
			if opts.KeepDuplicates {
				patterns = append(patterns, append([]byte(nil), col...))
				weights = append(weights, 1)
				continue
			}
			key := string(col)
			if at, ok := index[key]; ok {
				weights[at]++
			} else {
				index[key] = len(patterns)
				patterns = append(patterns, append([]byte(nil), col...))
				weights = append(weights, 1)
			}
		}
		cp.PatternCount = len(patterns)
		cp.Weights = weights
		cp.Tips = make([][]byte, n)
		for t := 0; t < n; t++ {
			row := make([]byte, len(patterns))
			for i, pat := range patterns {
				row[i] = pat[t]
			}
			cp.Tips[t] = row
		}
		offset += cp.PatternCount
		d.TotalSites += cp.SiteCount
		d.Parts = append(d.Parts, cp)
	}
	d.TotalPatterns = offset
	return d, nil
}

// PartitionStats summarizes partition geometry (the quantities the paper
// reports for its datasets: partition count, min/max pattern counts).
type PartitionStats struct {
	NumPartitions int
	MinPatterns   int
	MaxPatterns   int
	TotalPatterns int
}

// Stats computes the partition geometry summary.
func (d *CompressedData) Stats() PartitionStats {
	st := PartitionStats{NumPartitions: len(d.Parts), TotalPatterns: d.TotalPatterns}
	for i, p := range d.Parts {
		if i == 0 || p.PatternCount < st.MinPatterns {
			st.MinPatterns = p.PatternCount
		}
		if p.PatternCount > st.MaxPatterns {
			st.MaxPatterns = p.PatternCount
		}
	}
	return st
}
