package alignment

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Partition describes one gene/partition of a phylogenomic alignment: a name,
// a data type, and the set of alignment columns it owns (0-based indices into
// the uncompressed alignment).
type Partition struct {
	Name  string
	Type  DataType
	Sites []int
}

// SinglePartition covers every column of a with one DNA or AA partition.
func SinglePartition(a *Alignment, t DataType, name string) []Partition {
	sites := make([]int, a.NumSites())
	for i := range sites {
		sites[i] = i
	}
	if name == "" {
		name = "all"
	}
	return []Partition{{Name: name, Type: t, Sites: sites}}
}

// UniformPartitions splits the alignment into contiguous partitions of
// partLen columns each (the paper's p1000/p5000/p10000 schemes); the final
// partition absorbs any remainder shorter than partLen/2, matching how the
// paper's partition files were generated from fixed-length genes.
func UniformPartitions(a *Alignment, t DataType, partLen int) ([]Partition, error) {
	m := a.NumSites()
	if partLen <= 0 || partLen > m {
		return nil, fmt.Errorf("alignment: partition length %d invalid for %d sites", partLen, m)
	}
	var parts []Partition
	for start := 0; start < m; start += partLen {
		end := start + partLen
		if end > m {
			end = m
		}
		sites := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			sites = append(sites, i)
		}
		parts = append(parts, Partition{
			Name:  fmt.Sprintf("p%d", len(parts)),
			Type:  t,
			Sites: sites,
		})
	}
	// Merge a trailing stub into its predecessor to keep partition geometry
	// close to the nominal length.
	if n := len(parts); n >= 2 && len(parts[n-1].Sites) < partLen/2 {
		parts[n-2].Sites = append(parts[n-2].Sites, parts[n-1].Sites...)
		parts = parts[:n-1]
	}
	return parts, nil
}

// ParsePartitionFile reads a RAxML-style partition file:
//
//	DNA, gene0 = 1-1000
//	WAG, gene1 = 1001-2000, 2501-2600
//	DNA, gene2 = 2001-2500\3
//
// Model names map onto data types: DNA-family names to DNA, protein-matrix
// names (WAG, JTT, LG, DAYHOFF, PROT*) to AA. Ranges are 1-based inclusive,
// "\k" denotes a stride (every k-th column).
func ParsePartitionFile(r io.Reader, numSites int) ([]Partition, error) {
	var parts []Partition
	used := make([]int, numSites) // detects overlaps: 0 = free, else partition index+1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		comma := strings.Index(line, ",")
		if comma < 0 {
			return nil, fmt.Errorf("partition file line %d: missing model separator ','", lineNo)
		}
		model := strings.TrimSpace(line[:comma])
		rest := line[comma+1:]
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, fmt.Errorf("partition file line %d: missing '='", lineNo)
		}
		name := strings.TrimSpace(rest[:eq])
		if name == "" {
			name = fmt.Sprintf("part%d", len(parts))
		}
		dt, err := modelNameToType(model)
		if err != nil {
			return nil, fmt.Errorf("partition file line %d: %v", lineNo, err)
		}
		sites, err := parseRanges(rest[eq+1:], numSites)
		if err != nil {
			return nil, fmt.Errorf("partition file line %d: %v", lineNo, err)
		}
		for _, s := range sites {
			if used[s] != 0 {
				return nil, fmt.Errorf("partition file line %d: column %d already assigned to partition %d", lineNo, s+1, used[s]-1)
			}
			used[s] = len(parts) + 1
		}
		parts = append(parts, Partition{Name: name, Type: dt, Sites: sites})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, errors.New("partition file: no partitions found")
	}
	return parts, nil
}

// WritePartitionFile emits the RAxML-style partition description for parts,
// compressing consecutive site runs into ranges.
func WritePartitionFile(w io.Writer, parts []Partition) error {
	for _, p := range parts {
		model := "DNA"
		if p.Type == AA {
			model = "WAG"
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s, %s = ", model, p.Name)
		first := true
		i := 0
		for i < len(p.Sites) {
			j := i
			for j+1 < len(p.Sites) && p.Sites[j+1] == p.Sites[j]+1 {
				j++
			}
			if !first {
				b.WriteString(", ")
			}
			first = false
			if i == j {
				fmt.Fprintf(&b, "%d", p.Sites[i]+1)
			} else {
				fmt.Fprintf(&b, "%d-%d", p.Sites[i]+1, p.Sites[j]+1)
			}
			i = j + 1
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func modelNameToType(model string) (DataType, error) {
	m := strings.ToUpper(model)
	switch {
	case m == "DNA" || m == "GTR" || m == "NUC" || strings.HasPrefix(m, "GTR"):
		return DNA, nil
	case m == "WAG" || m == "JTT" || m == "LG" || m == "DAYHOFF" || m == "AA" ||
		m == "SYN20" || strings.HasPrefix(m, "PROT"):
		return AA, nil
	default:
		return 0, fmt.Errorf("unknown model name %q", model)
	}
}

func parseRanges(spec string, numSites int) ([]int, error) {
	var sites []int
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		stride := 1
		if bs := strings.Index(tok, "\\"); bs >= 0 {
			s, err := strconv.Atoi(strings.TrimSpace(tok[bs+1:]))
			if err != nil || s <= 0 {
				return nil, fmt.Errorf("bad stride in %q", tok)
			}
			stride = s
			tok = strings.TrimSpace(tok[:bs])
		}
		lo, hi := 0, 0
		if dash := strings.Index(tok, "-"); dash >= 0 {
			a, err1 := strconv.Atoi(strings.TrimSpace(tok[:dash]))
			b, err2 := strconv.Atoi(strings.TrimSpace(tok[dash+1:]))
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad range %q", tok)
			}
			lo, hi = a, b
		} else {
			a, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("bad column %q", tok)
			}
			lo, hi = a, a
		}
		if lo < 1 || hi < lo || hi > numSites {
			return nil, fmt.Errorf("range %q out of bounds 1..%d", tok, numSites)
		}
		for c := lo; c <= hi; c += stride {
			sites = append(sites, c-1)
		}
	}
	if len(sites) == 0 {
		return nil, errors.New("empty site specification")
	}
	return sites, nil
}
