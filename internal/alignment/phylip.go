package alignment

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadPhylip parses a (relaxed, sequential or interleaved) PHYLIP alignment:
// a header line "ntax nsites" followed by taxon blocks. Relaxed means taxon
// names are whitespace-delimited rather than fixed-width. Sequence data may
// span multiple lines and contain spaces.
func ReadPhylip(r io.Reader) (*Alignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("phylip: empty input")
	}
	fields := strings.Fields(sc.Text())
	if len(fields) < 2 {
		return nil, fmt.Errorf("phylip: bad header %q", sc.Text())
	}
	ntax, err1 := strconv.Atoi(fields[0])
	nsites, err2 := strconv.Atoi(fields[1])
	if err1 != nil || err2 != nil || ntax <= 0 || nsites <= 0 {
		return nil, fmt.Errorf("phylip: bad header %q", sc.Text())
	}
	names := make([]string, 0, ntax)
	seqs := make([][]byte, 0, ntax)
	cur := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if len(names) < ntax && (cur < 0 || len(seqs[cur]) >= nsites) {
			// New taxon record: first token is the name.
			fs := strings.Fields(line)
			names = append(names, fs[0])
			seq := make([]byte, 0, nsites)
			for _, f := range fs[1:] {
				seq = append(seq, []byte(f)...)
			}
			seqs = append(seqs, seq)
			cur = len(seqs) - 1
			continue
		}
		// Continuation (sequential) or interleaved block line: append to the
		// first still-short sequence.
		target := -1
		for i := range seqs {
			if len(seqs[i]) < nsites {
				target = i
				break
			}
		}
		if target < 0 {
			return nil, fmt.Errorf("phylip: extra data after all sequences complete: %q", line)
		}
		for _, f := range strings.Fields(line) {
			seqs[target] = append(seqs[target], []byte(f)...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(names) != ntax {
		return nil, fmt.Errorf("phylip: found %d taxa, header says %d", len(names), ntax)
	}
	for i := range seqs {
		if len(seqs[i]) != nsites {
			return nil, fmt.Errorf("phylip: taxon %q has %d sites, header says %d", names[i], len(seqs[i]), nsites)
		}
	}
	return New(names, seqs)
}

// WritePhylip emits the alignment in relaxed sequential PHYLIP format.
func WritePhylip(w io.Writer, a *Alignment) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", a.NumTaxa(), a.NumSites())
	width := 0
	for _, n := range a.Names {
		if len(n) > width {
			width = len(n)
		}
	}
	for i, n := range a.Names {
		fmt.Fprintf(bw, "%-*s  ", width, n)
		bw.Write(a.Seqs[i])
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadFasta parses a FASTA alignment (all records must share one length).
func ReadFasta(r io.Reader) (*Alignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	var names []string
	var seqs [][]byte
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			names = append(names, strings.Fields(line[1:])[0])
			seqs = append(seqs, nil)
			continue
		}
		if len(seqs) == 0 {
			return nil, fmt.Errorf("fasta: sequence data before first header")
		}
		seqs[len(seqs)-1] = append(seqs[len(seqs)-1], []byte(strings.ReplaceAll(line, " ", ""))...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(names, seqs)
}
