package alignment

import "fmt"

// DNA tip states are 4-bit presence masks over {A, C, G, T}; the full IUPAC
// ambiguity alphabet maps onto masks, and gaps/unknowns map onto the all-set
// mask (15), which contributes a constant factor to the likelihood exactly as
// in RAxML.
const (
	dnaA = 1
	dnaC = 2
	dnaG = 4
	dnaT = 8
	// DNAGap is the encoded value of a DNA gap/unknown character.
	DNAGap = 15
)

// AA tip states are indices 0..19 in the canonical one-letter order
// ARNDCQEGHILKMFPSTWYV; the ambiguity codes B (N or D), Z (Q or E) and the
// gap/unknown class get dedicated codes so tip vectors stay table-driven.
const (
	aaB = 20
	aaZ = 21
	// AAGap is the encoded value of an AA gap/unknown character.
	AAGap = 22
	// NumAACodes is the size of the AA tip-code alphabet.
	NumAACodes = 23
)

const aaOrder = "ARNDCQEGHILKMFPSTWYV"

var (
	dnaCode [256]byte
	aaCode  [256]byte
	// DNATipVectors[code][state] is 1 if the (possibly ambiguous) observed
	// character `code` is compatible with the model state.
	DNATipVectors [16][4]float64
	// AATipVectors is the 20-state analogue over the 23 AA tip codes.
	AATipVectors [NumAACodes][20]float64
)

func init() {
	for i := range dnaCode {
		dnaCode[i] = 0xFF // invalid
	}
	set := func(chars string, code byte) {
		for _, c := range chars {
			dnaCode[byte(c)] = code
			// also lowercase
			if c >= 'A' && c <= 'Z' {
				dnaCode[byte(c)+'a'-'A'] = code
			}
		}
	}
	set("A", dnaA)
	set("C", dnaC)
	set("G", dnaG)
	set("TU", dnaT)
	set("M", dnaA|dnaC)
	set("R", dnaA|dnaG)
	set("W", dnaA|dnaT)
	set("S", dnaC|dnaG)
	set("Y", dnaC|dnaT)
	set("K", dnaG|dnaT)
	set("V", dnaA|dnaC|dnaG)
	set("H", dnaA|dnaC|dnaT)
	set("D", dnaA|dnaG|dnaT)
	set("B", dnaC|dnaG|dnaT)
	set("NX?-.O", DNAGap)

	for code := 1; code < 16; code++ {
		for s := 0; s < 4; s++ {
			if code&(1<<uint(s)) != 0 {
				DNATipVectors[code][s] = 1
			}
		}
	}

	for i := range aaCode {
		aaCode[i] = 0xFF
	}
	for idx, c := range aaOrder {
		aaCode[byte(c)] = byte(idx)
		aaCode[byte(c)+'a'-'A'] = byte(idx)
	}
	aaCode['B'], aaCode['b'] = aaB, aaB
	aaCode['Z'], aaCode['z'] = aaZ, aaZ
	for _, c := range "X?-.*" {
		aaCode[byte(c)] = AAGap
	}
	aaCode['x'] = AAGap

	for idx := 0; idx < 20; idx++ {
		AATipVectors[idx][idx] = 1
	}
	AATipVectors[aaB][2] = 1 // N
	AATipVectors[aaB][3] = 1 // D
	AATipVectors[aaZ][5] = 1 // Q
	AATipVectors[aaZ][6] = 1 // E
	for s := 0; s < 20; s++ {
		AATipVectors[AAGap][s] = 1
	}
}

// EncodeChar maps one raw character onto its tip code for the data type.
func EncodeChar(t DataType, c byte) (byte, error) {
	var code byte
	switch t {
	case DNA:
		code = dnaCode[c]
	case AA:
		code = aaCode[c]
	default:
		return 0, fmt.Errorf("alignment: unknown data type %v", t)
	}
	if code == 0xFF {
		return 0, fmt.Errorf("alignment: invalid %v character %q", t, string(rune(c)))
	}
	return code, nil
}

// GapCode returns the all-states (gap/unknown) tip code for the data type.
func GapCode(t DataType) byte {
	if t == DNA {
		return DNAGap
	}
	return AAGap
}

// IsGapCode reports whether an encoded state carries no information.
func IsGapCode(t DataType, code byte) bool { return code == GapCode(t) }

// DecodeChar maps a tip code back to a representative character (used by the
// sequence simulator and writers). Ambiguous DNA masks map to IUPAC letters.
func DecodeChar(t DataType, code byte) byte {
	if t == DNA {
		const iupac = "-ACMGRSVTWYHKDBN"
		if int(code) < len(iupac) {
			return iupac[code]
		}
		return 'N'
	}
	if int(code) < len(aaOrder) {
		return aaOrder[code]
	}
	switch code {
	case aaB:
		return 'B'
	case aaZ:
		return 'Z'
	default:
		return 'X'
	}
}

// StateChar returns the character of a concrete (non-ambiguous) model state
// index: 0..3 for DNA, 0..19 for AA.
func StateChar(t DataType, state int) byte {
	if t == DNA {
		return "ACGT"[state]
	}
	return aaOrder[state]
}

// StateToCode converts a concrete model state index into a tip code.
func StateToCode(t DataType, state int) byte {
	if t == DNA {
		return byte(1 << uint(state))
	}
	return byte(state)
}

// NumCodes returns the size of the tip-code alphabet for a data type: 16
// DNA presence masks or the 23 AA codes (20 states + B + Z + gap). The
// tip-case kernel specialization sizes its per-code lookup tables with it.
func NumCodes(t DataType) int {
	if t == DNA {
		return 16
	}
	return NumAACodes
}

// TipVector returns the 0/1 compatibility vector of a tip code.
func TipVector(t DataType, code byte) []float64 {
	if t == DNA {
		return DNATipVectors[code][:]
	}
	return AATipVectors[code][:]
}
