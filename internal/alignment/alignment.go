// Package alignment implements the input-data substrate of the phylogenetic
// likelihood kernel: multiple sequence alignments of DNA or protein data,
// site-pattern compression, partitioned (multi-gene) layouts with support for
// "gappy" phylogenomic alignments, and PHYLIP/FASTA/partition-file I/O.
package alignment

import (
	"errors"
	"fmt"
)

// DataType identifies the character alphabet of a partition.
type DataType int

const (
	// DNA is 4-state nucleotide data.
	DNA DataType = iota
	// AA is 20-state amino-acid (protein) data.
	AA
)

// States returns the number of character states of the alphabet.
func (d DataType) States() int {
	switch d {
	case DNA:
		return 4
	case AA:
		return 20
	default:
		return 0
	}
}

// String names the data type using the RAxML partition-file vocabulary.
func (d DataType) String() string {
	switch d {
	case DNA:
		return "DNA"
	case AA:
		return "AA"
	default:
		return fmt.Sprintf("DataType(%d)", int(d))
	}
}

// Alignment is an uncompressed multiple sequence alignment: n taxa (rows)
// by m columns of raw characters. Mixed-type phylogenomic alignments carry a
// single character matrix; the per-column data type is assigned later by the
// partition scheme.
type Alignment struct {
	Names []string // taxon labels, unique
	Seqs  [][]byte // raw sequence characters; all rows have equal length
}

// New constructs an alignment and validates its shape.
func New(names []string, seqs [][]byte) (*Alignment, error) {
	if len(names) != len(seqs) {
		return nil, errors.New("alignment: name/sequence count mismatch")
	}
	if len(names) < 3 {
		return nil, errors.New("alignment: need at least 3 taxa for an unrooted tree")
	}
	m := len(seqs[0])
	if m == 0 {
		return nil, errors.New("alignment: empty sequences")
	}
	seen := make(map[string]bool, len(names))
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("alignment: taxon %d has an empty name", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("alignment: duplicate taxon name %q", name)
		}
		seen[name] = true
		if len(seqs[i]) != m {
			return nil, fmt.Errorf("alignment: taxon %q has length %d, want %d", name, len(seqs[i]), m)
		}
	}
	return &Alignment{Names: names, Seqs: seqs}, nil
}

// NumTaxa returns the number of sequences.
func (a *Alignment) NumTaxa() int { return len(a.Names) }

// NumSites returns the number of alignment columns.
func (a *Alignment) NumSites() int {
	if len(a.Seqs) == 0 {
		return 0
	}
	return len(a.Seqs[0])
}

// TaxonIndex returns the row of the named taxon, or -1.
func (a *Alignment) TaxonIndex(name string) int {
	for i, n := range a.Names {
		if n == name {
			return i
		}
	}
	return -1
}
