package opt

import (
	"context"
	"math"

	"phylo/internal/core"
	"phylo/internal/numeric"
	"phylo/internal/tree"
)

// Optimizer drives branch-length and model-parameter optimization over one
// engine.
type Optimizer struct {
	E   *core.Engine
	Cfg Config

	// ctx is the cancellation context bound by the last top-level entry
	// point (OptimizeModel, SmoothAll); the iterative loops poll it at
	// synchronization-region boundaries and wind down promptly when it is
	// cancelled, always leaving the tree and models in a consistent state.
	ctx context.Context

	// scratch
	zvec  []float64
	d1    []float64
	d2    []float64
	mask  []bool
	newts []*numeric.NewtonState
}

// New creates an optimizer for the engine.
func New(e *core.Engine, cfg Config) *Optimizer {
	n := e.NumPartitions()
	return &Optimizer{
		E:     e,
		Cfg:   cfg,
		zvec:  make([]float64, n),
		d1:    make([]float64, n),
		d2:    make([]float64, n),
		mask:  make([]bool, n),
		newts: make([]*numeric.NewtonState, n),
	}
}

// bind installs the cancellation context for subsequent loop checks (a nil
// ctx means "never cancelled") and, when Cfg.Weights is set, installs the
// replicate weight override on the engine so every region the optimizer
// issues scores the weighted objective (the shared-branch-length bootstrap
// mode; see Config.Weights).
func (o *Optimizer) bind(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	o.ctx = ctx
	if o.Cfg.Weights != nil {
		if err := o.E.SetWeightOverride(o.Cfg.Weights); err != nil {
			panic("opt: invalid Cfg.Weights: " + err.Error())
		}
	}
}

// cancelled reports whether the bound context has been cancelled. It is
// polled between parallel regions, never inside one.
//
//plk:regionboundary
func (o *Optimizer) cancelled() bool {
	return o.ctx != nil && o.ctx.Err() != nil
}

// ctxErr returns the bound context's cancellation cause, or nil.
//
//plk:regionboundary
func (o *Optimizer) ctxErr() error {
	if o.ctx == nil {
		return nil
	}
	return o.ctx.Err()
}

// OptimizeBranch optimizes the branch (p, p.Back) to its ML length(s) and
// returns the largest relative length change. With per-partition branch
// lengths the two strategies differ exactly as in the paper:
//
//	oldPAR: for each partition: one narrow sumtable region, then one narrow
//	        derivative region per Newton iteration of that partition.
//	newPAR: one full-width sumtable region, then one derivative region per
//	        *lockstep* iteration covering all unconverged partitions.
//
// With a joint branch length the strategies coincide (a single Newton
// iteration already spans all partitions), matching the paper's observation
// that joint-estimate analyses see only ~5% improvement.
func (o *Optimizer) OptimizeBranch(p *tree.Node) float64 {
	if o.cancelled() {
		// Leave the branch as-is: no region is issued and the tree stays
		// exactly as the last completed iteration left it.
		return 0
	}
	e := o.E
	// Lazily re-establish CLVs at both ends (the partial traversals that,
	// per the paper, touch 3-4 inner vectors on average during search).
	e.TraverseRoot(p, true, nil)
	if !e.PerPartitionBL {
		return o.optimizeBranchJoint(p)
	}
	if o.Cfg.Strategy == NewPar {
		return o.optimizeBranchNewPar(p)
	}
	return o.optimizeBranchOldPar(p)
}

// optimizeBranchJoint optimizes a single shared branch length by summing the
// per-partition derivatives.
func (o *Optimizer) optimizeBranchJoint(p *tree.Node) float64 {
	e := o.E
	n := e.NumPartitions()
	e.PrepareSumtable(p, nil)
	z0 := p.Z[0]
	st := numeric.NewNewtonState(z0, o.Cfg.MinBranch, o.Cfg.MaxBranch, o.Cfg.BranchTol)
	for it := 0; it < o.Cfg.MaxNewtonIter && !st.Converged && !o.cancelled(); it++ {
		for ip := 0; ip < n; ip++ {
			o.zvec[ip] = st.Point()
		}
		e.BranchDerivatives(o.zvec, nil, o.d1, o.d2)
		sd1, sd2 := 0.0, 0.0
		for ip := 0; ip < n; ip++ {
			sd1 += o.d1[ip]
			sd2 += o.d2[ip]
		}
		st.Observe(sd1, sd2)
	}
	tree.SetBranchLength(p, 0, st.X)
	return relDelta(z0, st.X)
}

// optimizeBranchNewPar runs the paper's simultaneous Newton-Raphson: one
// NewtonState per partition advanced in lockstep, with the convergence
// boolean vector shrinking the active region as partitions finish.
func (o *Optimizer) optimizeBranchNewPar(p *tree.Node) float64 {
	e := o.E
	n := e.NumPartitions()
	e.PrepareSumtable(p, nil) // one full-width region
	maxDelta := 0.0
	remaining := n
	for ip := 0; ip < n; ip++ {
		slot := e.BranchSlot(ip)
		o.newts[ip] = numeric.NewNewtonState(p.Z[slot], o.Cfg.MinBranch, o.Cfg.MaxBranch, o.Cfg.BranchTol)
		o.mask[ip] = true
	}
	converged := make([]bool, n)
	for it := 0; it < o.Cfg.MaxNewtonIter && remaining > 0 && !o.cancelled(); it++ {
		for ip := 0; ip < n; ip++ {
			if o.mask[ip] {
				o.zvec[ip] = o.newts[ip].Point()
			}
		}
		e.BranchDerivatives(o.zvec, o.mask, o.d1, o.d2) // one wide region
		for ip := 0; ip < n; ip++ {
			if !o.mask[ip] || converged[ip] {
				continue
			}
			if o.newts[ip].Observe(o.d1[ip], o.d2[ip]) {
				converged[ip] = true
				remaining--
				// The convergence boolean vector: retire the partition from
				// subsequent regions (unless the ablation keeps it in).
				if !o.Cfg.DisableConvergenceMask {
					o.mask[ip] = false
				}
			}
		}
	}
	for ip := 0; ip < n; ip++ {
		slot := e.BranchSlot(ip)
		maxDelta = math.Max(maxDelta, relDelta(p.Z[slot], o.newts[ip].X))
		tree.SetBranchLength(p, slot, o.newts[ip].X)
	}
	return maxDelta
}

// optimizeBranchOldPar runs the original scheme: each partition's Newton
// iteration is a separate narrow parallel region over that partition only.
func (o *Optimizer) optimizeBranchOldPar(p *tree.Node) float64 {
	e := o.E
	n := e.NumPartitions()
	maxDelta := 0.0
	for ip := 0; ip < n && !o.cancelled(); ip++ {
		for k := range o.mask {
			o.mask[k] = false
		}
		o.mask[ip] = true
		e.PrepareSumtable(p, o.mask) // narrow region
		slot := e.BranchSlot(ip)
		z0 := p.Z[slot]
		st := numeric.NewNewtonState(z0, o.Cfg.MinBranch, o.Cfg.MaxBranch, o.Cfg.BranchTol)
		for it := 0; it < o.Cfg.MaxNewtonIter && !st.Converged && !o.cancelled(); it++ {
			o.zvec[ip] = st.Point()
			e.BranchDerivatives(o.zvec, o.mask, o.d1, o.d2) // narrow region
			st.Observe(o.d1[ip], o.d2[ip])
		}
		tree.SetBranchLength(p, slot, st.X)
		maxDelta = math.Max(maxDelta, relDelta(z0, st.X))
	}
	return maxDelta
}

// SmoothAll sweeps branch optimization over every branch of the tree until
// the largest relative change in a pass falls below 10x BranchTol or the
// pass budget is exhausted, then returns the resulting log likelihood (the
// RAxML treeEvaluate equivalent). If ctx is cancelled the sweep winds down
// at the next region boundary and the returned log likelihood is still the
// exact score of the tree in its current (partially smoothed, fully
// consistent) state.
func (o *Optimizer) SmoothAll(ctx context.Context) float64 {
	o.bind(ctx)
	e := o.E
	start := e.Tree.Tips[0].Back
	for pass := 0; pass < o.Cfg.SmoothPasses && !o.cancelled(); pass++ {
		maxDelta := o.smoothRec(start)
		if maxDelta < 10*o.Cfg.BranchTol {
			break
		}
	}
	if o.cancelled() {
		// The wind-down skipped trailing newviews, so discard all CLV
		// orientations and recompute from scratch: one extra full-width
		// region pair buys an exact score for the partially smoothed tree.
		e.InvalidateCLVs()
	}
	e.TraverseRoot(start, true, nil)
	lnl, _ := e.Evaluate(start, nil)
	return lnl
}

// smoothRec optimizes the branch at p, then recursively all branches behind
// p.Back, restoring the upward CLV on exit so siblings and ancestors see
// fresh values (RAxML's smooth()).
func (o *Optimizer) smoothRec(p *tree.Node) float64 {
	maxDelta := o.OptimizeBranch(p)
	q := p.Back
	if q.IsTip() {
		return maxDelta
	}
	maxDelta = math.Max(maxDelta, o.smoothRec(q.Next.Back))
	maxDelta = math.Max(maxDelta, o.smoothRec(q.Next.Next.Back))
	if o.cancelled() {
		// Skip the trailing newview; SmoothAll's closing full traversal
		// re-establishes every CLV before the final evaluation.
		return maxDelta
	}
	// Restore the upward CLV at q with a single newview (RAxML's trailing
	// newviewGeneric); the children were just refreshed by the recursion.
	o.E.ExecuteSteps([]tree.TraversalStep{{P: q, Q: q.Next.Back, R: q.Next.Next.Back}}, nil)
	return maxDelta
}

func relDelta(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), 1e-8)
	return d / scale
}
