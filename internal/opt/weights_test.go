package opt

import (
	"context"
	"math"
	"testing"

	"phylo/internal/core"
	"phylo/internal/parallel"
)

// TestWeightedUniformMatchesUnweighted pins the override plumbing: optimizing
// under a width-1 uniform WeightSet (the dataset's own weights, re-expressed
// as an override) must reproduce the unweighted optimization bit for bit —
// same values flow through the same reductions.
func TestWeightedUniformMatchesUnweighted(t *testing.T) {
	plain := buildFixture(t, 8, 120, 40, true, parallel.NewSequential(), 31)
	want, _, err := New(plain.eng, DefaultConfig(NewPar)).OptimizeModel(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	weighted := buildFixture(t, 8, 120, 40, true, parallel.NewSequential(), 31)
	cfg := DefaultConfig(NewPar)
	uni, err := core.UniformWeightSet(weighted.d, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Weights = uni
	got, _, err := New(weighted.eng, cfg).OptimizeModel(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("uniform-weighted optimum %v != unweighted optimum %v", got, want)
	}
}

// TestWeightedAggregateIdentity exercises the shared-branch-length bootstrap
// mode end to end: optimize branch lengths once against the batch's aggregate
// weights, then check the weighted score equals the sum of the per-replicate
// batched scores — the aggregate identity the mode rests on.
func TestWeightedAggregateIdentity(t *testing.T) {
	fx := buildFixture(t, 8, 120, 40, false, parallel.NewSequential(), 32)
	ws, err := core.NewWeightSet(fx.d, 5, 77)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(NewPar)
	cfg.Weights = ws.Aggregate()
	o := New(fx.eng, cfg)
	weighted := o.SmoothAll(context.Background())

	lanes, err := fx.eng.LogLikelihoodBatch(ws)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, l := range lanes {
		sum += l
	}
	if rel := math.Abs(sum-weighted) / math.Abs(weighted); rel > 1e-10 {
		t.Fatalf("sum of per-replicate lnLs %v vs aggregate-weighted lnL %v (rel %v)", sum, weighted, rel)
	}
	// The aggregate weights total R times the site count, so the weighted
	// objective is far from the unweighted one — make sure the override
	// really was in force.
	fx.eng.SetWeightOverride(nil)
	plain := fx.eng.LogLikelihood()
	if math.Abs(plain-weighted) < 1 {
		t.Fatalf("weighted lnL %v suspiciously close to unweighted %v; override not applied?", weighted, plain)
	}
}

// TestWeightedInvalidPanics pins the bind-time contract for structurally
// impossible weight sets (width != 1).
func TestWeightedInvalidPanics(t *testing.T) {
	fx := buildFixture(t, 6, 60, 60, false, parallel.NewSequential(), 33)
	cfg := DefaultConfig(NewPar)
	wide, err := core.UniformWeightSet(fx.d, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Weights = wide
	o := New(fx.eng, cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("width-2 Cfg.Weights did not panic at bind")
		}
	}()
	o.SmoothAll(context.Background())
}
