// Package opt implements the iterative ML parameter optimizers of the
// likelihood kernel — Newton-Raphson for branch lengths, Brent for the Gamma
// shape parameter alpha and the GTR exchangeability rates — in the two
// parallelization strategies the paper compares:
//
//   - OldPar optimizes one partition at a time: every optimizer iteration
//     becomes a parallel region spanning only that partition's alignment
//     patterns. With many short partitions and many threads, each worker
//     receives a handful of columns (or none at all) per synchronization
//     event, which is the load-balance problem the paper describes.
//
//   - NewPar (the paper's contribution) advances the iterative procedures of
//     *all* partitions simultaneously, tracking per-partition convergence in
//     a boolean vector, so that every parallel region spans the full width of
//     all not-yet-converged partitions and synchronization cost is amortized
//     across the whole alignment.
//
// Both strategies produce the same optima; they differ only in how the work
// is cut into parallel regions, which the parallel.Stats counters expose.
//
// The package is region-structured: cancellation is consulted only at
// synchronization-region boundaries (//plk:regionboundary functions), never
// inside an optimizer iteration's kernel spans.
//
//plk:regions
package opt

import (
	"phylo/internal/core"
	"phylo/internal/model"
)

// Strategy selects the parallelization of the iterative optimizers.
type Strategy int

const (
	// OldPar is the original per-partition-at-a-time scheme.
	OldPar Strategy = iota
	// NewPar is the simultaneous all-partitions scheme (the paper's fix).
	NewPar
)

// String names the strategy as in the paper.
func (s Strategy) String() string {
	if s == NewPar {
		return "newPAR"
	}
	return "oldPAR"
}

// Config tunes the optimizers. The zero value is not usable; call
// DefaultConfig.
type Config struct {
	Strategy Strategy

	// BranchTol is the relative branch-length convergence tolerance of
	// Newton-Raphson.
	BranchTol float64
	// MaxNewtonIter caps Newton iterations per branch and partition.
	MaxNewtonIter int
	// SmoothPasses caps the branch-smoothing sweeps over the whole tree.
	SmoothPasses int

	// BrentTol is the relative x tolerance of Brent iterations.
	BrentTol float64
	// MaxBrentIter caps Brent iterations per parameter and partition.
	MaxBrentIter int

	// ModelEps ends the outer model-optimization loop once a full round
	// improves the log likelihood by less than this.
	ModelEps float64
	// MaxModelRounds caps outer rounds.
	MaxModelRounds int

	// OptimizeRates enables GTR exchangeability optimization (DNA
	// partitions); alpha is always optimized.
	OptimizeRates bool

	// Progress, if non-nil, is called after every completed outer
	// model-optimization round with the 1-based round number and the round's
	// final log likelihood. It runs on the optimizing goroutine between
	// parallel regions, so it must be fast and must not call back into the
	// engine.
	Progress func(round int, lnl float64)

	// RoundEnd, if non-nil, is called after every completed outer round,
	// after Progress. Unlike Progress it is a maintenance hook: it runs on
	// the optimizing goroutine at a region boundary and MAY call back into
	// the engine's between-region entry points — the session facade uses it
	// to trigger measured-schedule rebalancing (Engine.MaybeRebalance).
	RoundEnd func()

	// DisableConvergenceMask is an ablation switch: under newPAR, keep
	// already-converged partitions inside every parallel region instead of
	// retiring them through the boolean convergence vector the paper
	// describes. Results are unchanged; regions just stay full width.
	DisableConvergenceMask bool

	// MinBranch/MaxBranch clamp branch lengths.
	MinBranch, MaxBranch float64

	// Weights, if non-nil, makes every optimizer entry point run against this
	// replicate weight vector instead of the dataset's own pattern weights:
	// the width-1 WeightSet is installed on the engine (SetWeightOverride) the
	// moment OptimizeModel or SmoothAll binds, and stays installed afterwards
	// so the caller's follow-up evaluations score the same weighted objective.
	// This is the shared-branch-length bootstrap mode: pass the batch's
	// WeightSet.Aggregate() and one optimization prices branch lengths against
	// the exact sum of all R replicate objectives (the aggregate identity
	// Σ_r Σ_p w_r[p]·log l_p = Σ_p W[p]·log l_p holds exactly because weights
	// are integer column counts), after which EvaluateBatch splits the score
	// back into per-replicate terms. A nil Weights leaves whatever override
	// the engine already carries untouched — clearing is always the explicit
	// SetWeightOverride(nil). The WeightSet must have batch width 1 and match
	// the engine's pattern space; an invalid one panics at bind time, like any
	// other structurally impossible configuration.
	Weights *core.WeightSet
}

// DefaultConfig returns production defaults close to RAxML's.
func DefaultConfig(strategy Strategy) Config {
	return Config{
		Strategy:       strategy,
		BranchTol:      1e-6,
		MaxNewtonIter:  64,
		SmoothPasses:   16,
		BrentTol:       1e-4,
		MaxBrentIter:   100,
		ModelEps:       0.1,
		MaxModelRounds: 10,
		OptimizeRates:  true,
		MinBranch:      model.MinBranchLen,
		MaxBranch:      model.MaxBranchLen,
	}
}
