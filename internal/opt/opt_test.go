package opt

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"phylo/internal/alignment"
	"phylo/internal/core"
	"phylo/internal/model"
	"phylo/internal/parallel"
	"phylo/internal/tree"
)

// fixture builds a partitioned random dataset plus an engine.
type fixture struct {
	eng *core.Engine
	tr  *tree.Tree
	d   *alignment.CompressedData
}

func taxaNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%d", i)
	}
	return out
}

func buildFixture(t *testing.T, nTaxa, nSites, partLen int, perPartBL bool, exec parallel.Executor, seed int64) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const chars = "ACGT"
	names := taxaNames(nTaxa)
	seqs := make([][]byte, nTaxa)
	for i := range seqs {
		row := make([]byte, nSites)
		for j := range row {
			row[j] = chars[rng.Intn(4)]
		}
		seqs[i] = row
	}
	a, err := alignment.New(names, seqs)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := alignment.UniformPartitions(a, alignment.DNA, partLen)
	if err != nil {
		t.Fatal(err)
	}
	d, err := alignment.Compress(a, parts, alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	models := make([]*model.Model, len(d.Parts))
	for i := range models {
		m, err := model.GTR(nil, nil, 4, 0.4+0.4*float64(i%4))
		if err != nil {
			t.Fatal(err)
		}
		models[i] = m
	}
	zSlots := 1
	if perPartBL && len(d.Parts) > 1 {
		zSlots = len(d.Parts)
	}
	tr, err := tree.Random(names, zSlots, tree.RandomOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(d, tr, models, exec, core.Options{Specialize: true})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{eng: eng, tr: tr, d: d}
}

func TestOptimizeBranchImprovesAndZeroesGradient(t *testing.T) {
	for _, perPart := range []bool{false, true} {
		fx := buildFixture(t, 8, 60, 20, perPart, parallel.NewSequential(), 11)
		o := New(fx.eng, DefaultConfig(NewPar))
		before := fx.eng.LogLikelihood()
		root := fx.tr.Tips[0].Back
		o.OptimizeBranch(root)
		after, _ := fx.eng.Evaluate(root, nil)
		if after < before-1e-9 {
			t.Errorf("perPart=%v: lnL decreased %v -> %v", perPart, before, after)
		}
		// At the optimum the gradient must vanish for every partition.
		fx.eng.PrepareSumtable(root, nil)
		n := fx.eng.NumPartitions()
		zs := make([]float64, n)
		for ip := 0; ip < n; ip++ {
			zs[ip] = root.Z[fx.eng.BranchSlot(ip)]
		}
		d1 := make([]float64, n)
		d2 := make([]float64, n)
		fx.eng.BranchDerivatives(zs, nil, d1, d2)
		if perPart {
			for ip := 0; ip < n; ip++ {
				if math.Abs(d1[ip]) > 1e-2 && zs[ip] > o.Cfg.MinBranch*2 && zs[ip] < o.Cfg.MaxBranch/2 {
					t.Errorf("perPart=%v partition %d: gradient %v not ~0 at z=%v", perPart, ip, d1[ip], zs[ip])
				}
			}
		} else {
			sum := 0.0
			for _, v := range d1 {
				sum += v
			}
			if math.Abs(sum) > 1e-2 && zs[0] > o.Cfg.MinBranch*2 && zs[0] < o.Cfg.MaxBranch/2 {
				t.Errorf("joint: total gradient %v not ~0", sum)
			}
		}
	}
}

func TestOldParNewParSameOptimum(t *testing.T) {
	// The two strategies must find the same branch lengths and likelihood;
	// they differ only in region decomposition.
	seqA := parallel.NewSequential()
	seqB := parallel.NewSequential()
	fxOld := buildFixture(t, 10, 80, 20, true, seqA, 23)
	fxNew := buildFixture(t, 10, 80, 20, true, seqB, 23)
	oOld := New(fxOld.eng, DefaultConfig(OldPar))
	oNew := New(fxNew.eng, DefaultConfig(NewPar))
	lOld := oOld.SmoothAll(context.Background())
	lNew := oNew.SmoothAll(context.Background())
	if math.Abs(lOld-lNew) > 1e-4*math.Abs(lOld) {
		t.Errorf("smoothed lnL differs: oldPAR %v vs newPAR %v", lOld, lNew)
	}
	// Branch lengths agree.
	bOld := fxOld.tr.Branches()
	bNew := fxNew.tr.Branches()
	for i := range bOld {
		for k := range bOld[i].Z {
			if math.Abs(bOld[i].Z[k]-bNew[i].Z[k]) > 1e-3*(bOld[i].Z[k]+1e-6) {
				t.Errorf("branch %d slot %d: %v vs %v", i, k, bOld[i].Z[k], bNew[i].Z[k])
			}
		}
	}
}

func TestNewParUsesFarFewerRegions(t *testing.T) {
	// The paper's central claim, in miniature: with per-partition branch
	// lengths and many partitions, newPAR needs dramatically fewer
	// synchronization events than oldPAR for the same optimization.
	simOld, _ := parallel.NewSim(8)
	simNew, _ := parallel.NewSim(8)
	fxOld := buildFixture(t, 10, 120, 12, true, simOld, 31) // 10 partitions
	fxNew := buildFixture(t, 10, 120, 12, true, simNew, 31)
	oOld := New(fxOld.eng, DefaultConfig(OldPar))
	oNew := New(fxNew.eng, DefaultConfig(NewPar))
	oOld.SmoothAll(context.Background())
	oNew.SmoothAll(context.Background())
	rOld := simOld.Stats().Regions
	rNew := simNew.Stats().Regions
	if rNew*2 >= rOld {
		t.Errorf("newPAR regions %d not substantially fewer than oldPAR %d", rNew, rOld)
	}
	// And the oldPAR critical path carries more idle-worker imbalance.
	if simOld.Stats().Imbalance(8) < simNew.Stats().Imbalance(8) {
		t.Logf("note: imbalance old=%v new=%v (informational)",
			simOld.Stats().Imbalance(8), simNew.Stats().Imbalance(8))
	}
}

func TestJointBLStrategiesIdentical(t *testing.T) {
	// With a joint branch-length estimate the branch optimizer takes the
	// same code path under both strategies (the paper's ~5% case: only the
	// model-optimization phase differs).
	seqA := parallel.NewSequential()
	seqB := parallel.NewSequential()
	fxOld := buildFixture(t, 8, 60, 20, false, seqA, 7)
	fxNew := buildFixture(t, 8, 60, 20, false, seqB, 7)
	lOld := New(fxOld.eng, DefaultConfig(OldPar)).SmoothAll(context.Background())
	lNew := New(fxNew.eng, DefaultConfig(NewPar)).SmoothAll(context.Background())
	if lOld != lNew {
		t.Errorf("joint-BL smoothing must be identical: %v vs %v", lOld, lNew)
	}
}

func TestSmoothAllMonotone(t *testing.T) {
	fx := buildFixture(t, 12, 100, 25, true, parallel.NewSequential(), 3)
	o := New(fx.eng, DefaultConfig(NewPar))
	prev := fx.eng.LogLikelihood()
	for pass := 0; pass < 3; pass++ {
		cur := o.SmoothAll(context.Background())
		if cur < prev-1e-6 {
			t.Fatalf("pass %d: lnL decreased %v -> %v", pass, prev, cur)
		}
		prev = cur
	}
}

func TestOptimizeAlphasImproves(t *testing.T) {
	for _, strat := range []Strategy{OldPar, NewPar} {
		fx := buildFixture(t, 8, 80, 40, true, parallel.NewSequential(), 17)
		o := New(fx.eng, DefaultConfig(strat))
		before := fx.eng.LogLikelihood()
		o.OptimizeAlphas()
		after := fx.eng.LogLikelihood()
		if after < before-1e-9 {
			t.Errorf("%v: alpha optimization decreased lnL %v -> %v", strat, before, after)
		}
	}
}

func TestOptimizeAlphasStrategiesAgree(t *testing.T) {
	fxOld := buildFixture(t, 8, 80, 20, true, parallel.NewSequential(), 29)
	fxNew := buildFixture(t, 8, 80, 20, true, parallel.NewSequential(), 29)
	oOld := New(fxOld.eng, DefaultConfig(OldPar))
	oNew := New(fxNew.eng, DefaultConfig(NewPar))
	oOld.OptimizeAlphas()
	oNew.OptimizeAlphas()
	for ip := 0; ip < fxOld.eng.NumPartitions(); ip++ {
		aOld := fxOld.eng.Models[ip].Alpha
		aNew := fxNew.eng.Models[ip].Alpha
		if math.Abs(aOld-aNew) > 0.02*(aOld+0.1) {
			t.Errorf("partition %d: alpha oldPAR %v vs newPAR %v", ip, aOld, aNew)
		}
	}
}

func TestOptimizeRatesImprovesAndAgrees(t *testing.T) {
	fxOld := buildFixture(t, 8, 60, 30, true, parallel.NewSequential(), 41)
	fxNew := buildFixture(t, 8, 60, 30, true, parallel.NewSequential(), 41)
	oOld := New(fxOld.eng, DefaultConfig(OldPar))
	oNew := New(fxNew.eng, DefaultConfig(NewPar))
	before := fxOld.eng.LogLikelihood()
	oOld.OptimizeRatesAll()
	oNew.OptimizeRatesAll()
	afterOld := fxOld.eng.LogLikelihood()
	afterNew := fxNew.eng.LogLikelihood()
	if afterOld < before-1e-9 {
		t.Errorf("rate optimization decreased lnL %v -> %v", before, afterOld)
	}
	if math.Abs(afterOld-afterNew) > 1e-3*math.Abs(afterOld) {
		t.Errorf("strategies disagree after rate optimization: %v vs %v", afterOld, afterNew)
	}
}

func TestOptimizeModelConverges(t *testing.T) {
	fx := buildFixture(t, 8, 80, 40, true, parallel.NewSequential(), 53)
	o := New(fx.eng, DefaultConfig(NewPar))
	before := fx.eng.LogLikelihood()
	lnl, rounds, _ := o.OptimizeModel(context.Background())
	if lnl < before {
		t.Errorf("model optimization decreased lnL %v -> %v", before, lnl)
	}
	if rounds < 1 || rounds > o.Cfg.MaxModelRounds {
		t.Errorf("rounds = %d out of range", rounds)
	}
	// A second run from the converged state must improve almost nothing.
	lnl2, _, _ := o.OptimizeModel(context.Background())
	if lnl2-lnl > 5*o.Cfg.ModelEps {
		t.Errorf("second optimization found %v more lnL; first did not converge", lnl2-lnl)
	}
}

func TestOptimizeModelParallelMatchesSequential(t *testing.T) {
	pool, err := parallel.NewPool(3)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	fxSeq := buildFixture(t, 8, 60, 20, true, parallel.NewSequential(), 67)
	fxPar := buildFixture(t, 8, 60, 20, true, pool, 67)
	lSeq, _, _ := New(fxSeq.eng, DefaultConfig(NewPar)).OptimizeModel(context.Background())
	lPar, _, _ := New(fxPar.eng, DefaultConfig(NewPar)).OptimizeModel(context.Background())
	if math.Abs(lSeq-lPar) > 1e-6*math.Abs(lSeq) {
		t.Errorf("parallel model optimization diverged: %v vs %v", lSeq, lPar)
	}
}

func TestConvergenceMaskShrinksWork(t *testing.T) {
	// Verify the boolean convergence vector actually reduces per-region
	// work over the course of a newPAR branch optimization: total ops of
	// derivative regions must be well below (iterations x full width).
	sim, _ := parallel.NewSim(4)
	fx := buildFixture(t, 8, 120, 12, true, sim, 71)
	o := New(fx.eng, DefaultConfig(NewPar))
	root := fx.tr.Tips[0].Back
	fx.eng.TraverseRoot(root, false, nil)
	sim.Stats().Reset()
	o.OptimizeBranch(root)
	st := sim.Stats()
	derivRegions := st.KindRegions[parallel.RegionDerivative]
	if derivRegions < 2 {
		t.Skip("branch converged immediately; nothing to check")
	}
	// Upper bound if every region had processed every pattern:
	fullWidth := opsFullDerivWidth(fx)
	if st.KindCritical[parallel.RegionDerivative] >= float64(derivRegions)*fullWidth {
		t.Errorf("convergence mask did not reduce work: %v critical ops across %d regions (full width %v)",
			st.KindCritical[parallel.RegionDerivative], derivRegions, fullWidth)
	}
}

func opsFullDerivWidth(fx *fixture) float64 {
	// Mirror of opsDerivative x per-worker share; a loose upper bound on the
	// critical path of one full-width derivative region.
	total := 0.0
	for _, p := range fx.d.Parts {
		total += float64(p.PatternCount) * float64(4*p.Type.States()*3+10)
	}
	return total
}

// TestOptimizeModelCancellation: cancelling the context stops the optimizer
// at a region boundary with a finite, consistent partial result, and the
// cancellation error is propagated (the silent-discard bug fixed in the
// Dataset/session redesign).
func TestOptimizeModelCancellation(t *testing.T) {
	fx := buildFixture(t, 8, 200, 50, true, parallel.NewSequential(), 23)
	o := New(fx.eng, DefaultConfig(NewPar))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	lnl, rounds, err := o.OptimizeModel(ctx)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if rounds != 0 {
		t.Errorf("pre-cancelled context still ran %d rounds", rounds)
	}
	if math.IsNaN(lnl) || math.IsInf(lnl, 0) || lnl >= 0 {
		t.Errorf("partial lnl = %v, want finite negative", lnl)
	}
	// The engine stays consistent: a fresh uncancelled run completes and
	// can only improve on the partial score.
	full, _, err := o.OptimizeModel(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if full < lnl-1e-9 {
		t.Errorf("post-cancel optimization got worse: %v -> %v", lnl, full)
	}
}

// TestProgressCallback: one event per completed outer round, with the
// round's log likelihood.
func TestProgressCallback(t *testing.T) {
	fx := buildFixture(t, 6, 120, 40, false, parallel.NewSequential(), 29)
	cfg := DefaultConfig(NewPar)
	var rounds []int
	var lnls []float64
	cfg.Progress = func(round int, lnl float64) {
		rounds = append(rounds, round)
		lnls = append(lnls, lnl)
	}
	o := New(fx.eng, cfg)
	final, n, err := o.OptimizeModel(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != n {
		t.Fatalf("%d progress events for %d rounds", len(rounds), n)
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Errorf("event %d carries round %d", i, r)
		}
	}
	if lnls[len(lnls)-1] != final {
		t.Errorf("last event lnl %v != final %v", lnls[len(lnls)-1], final)
	}
}
