package opt

import (
	"context"

	"phylo/internal/alignment"
	"phylo/internal/model"
	"phylo/internal/numeric"
	"phylo/internal/tree"
)

// OptimizeAlphas optimizes the Gamma shape parameter of every partition by
// Brent's method. Changing alpha requires a full tree traversal to recompute
// the partition's CLVs (the paper's model-optimization phase), so each Brent
// iteration costs one full-traversal region plus one evaluation region:
//
//	oldPAR: the Brent loops run one partition after another; every iteration
//	        is a pair of regions restricted to that partition's patterns.
//	newPAR: one Brent iteration of *every* unconverged partition is bundled
//	        into a single full-width traversal + evaluation pair, with the
//	        convergence boolean vector retiring finished partitions.
func (o *Optimizer) OptimizeAlphas() {
	if o.Cfg.Strategy == NewPar {
		o.brentSimultaneous(o.alphaParam())
		return
	}
	o.brentPerPartition(o.alphaParam())
}

// OptimizeRatesAll optimizes the free GTR exchangeability rates of all DNA
// partitions (protein partitions keep their fixed empirical-style matrix,
// as in RAxML). Rates are optimized one index at a time, all partitions
// simultaneously under newPAR.
func (o *Optimizer) OptimizeRatesAll() {
	nRates := 0
	for ip := 0; ip < o.E.NumPartitions(); ip++ {
		if o.E.Models[ip].Type == alignment.DNA {
			if r := len(o.E.Models[ip].ExRates) - 1; r > nRates {
				nRates = r
			}
		}
	}
	for ri := 0; ri < nRates && !o.cancelled(); ri++ {
		if o.Cfg.Strategy == NewPar {
			o.brentSimultaneous(o.rateParam(ri))
		} else {
			o.brentPerPartition(o.rateParam(ri))
		}
	}
}

// brentParam abstracts one per-partition scalar model parameter for the
// shared Brent drivers.
type brentParam struct {
	name     string
	eligible func(ip int) bool
	get      func(ip int) float64
	set      func(ip int, v float64) // also refreshes dependent model state
	lo, hi   float64
}

func (o *Optimizer) alphaParam() brentParam {
	return brentParam{
		name:     "alpha",
		eligible: func(int) bool { return true },
		get:      func(ip int) float64 { return o.E.Models[ip].Alpha },
		set: func(ip int, v float64) {
			if err := o.E.Models[ip].SetAlpha(v); err != nil {
				panic("opt: alpha proposal out of bounds: " + err.Error())
			}
		},
		lo: model.MinAlpha,
		hi: model.MaxAlpha,
	}
}

func (o *Optimizer) rateParam(ri int) brentParam {
	return brentParam{
		name: "rate",
		eligible: func(ip int) bool {
			m := o.E.Models[ip]
			return m.Type == alignment.DNA && ri < len(m.ExRates)-1
		},
		get: func(ip int) float64 { return o.E.Models[ip].ExRates[ri] },
		set: func(ip int, v float64) {
			m := o.E.Models[ip]
			if err := m.SetExRate(ri, v); err != nil {
				panic("opt: rate proposal out of bounds: " + err.Error())
			}
			if err := m.UpdateEigen(); err != nil {
				panic("opt: eigendecomposition failed during rate optimization: " + err.Error())
			}
		},
		lo: model.MinRate,
		hi: model.MaxRate,
	}
}

// evalPartitions re-traverses and evaluates the masked partitions at the
// canonical root and returns per-partition log likelihoods. This is the
// region pair whose width distinguishes the two strategies.
func (o *Optimizer) evalPartitions(mask []bool) []float64 {
	root := o.E.Tree.Tips[0].Back
	// The tree topology and root are fixed during model optimization, so the
	// full traversal list is fixed too; only the masked partitions' CLV
	// slices are recomputed.
	o.E.ExecuteSteps(tree.RootTraversal(root, false), mask)
	_, per := o.E.Evaluate(root, mask)
	return per
}

// brentSimultaneous is the newPAR driver: one BrentState per eligible
// partition, all advanced in lockstep.
func (o *Optimizer) brentSimultaneous(par brentParam) {
	n := o.E.NumPartitions()
	states := make([]*numeric.BrentState, n)
	active := make([]bool, n)
	anyActive := false
	for ip := 0; ip < n; ip++ {
		if par.eligible(ip) {
			active[ip] = true
			anyActive = true
		}
	}
	if !anyActive {
		return
	}
	// Seed every state with the likelihood at the current parameter value
	// (one wide region pair).
	per := o.evalPartitions(active)
	for ip := 0; ip < n; ip++ {
		if !active[ip] {
			continue
		}
		states[ip] = numeric.NewBrentState(par.lo, par.get(ip), par.hi, o.Cfg.BrentTol)
		states[ip].Seed(-per[ip])
	}
	proposals := make([]float64, n)
	remaining := countTrue(active)
	for it := 0; it < o.Cfg.MaxBrentIter && remaining > 0 && !o.cancelled(); it++ {
		// Collect one proposal per active partition; retire the converged.
		for ip := 0; ip < n; ip++ {
			if !active[ip] {
				continue
			}
			x, done := states[ip].Next()
			if done {
				par.set(ip, states[ip].X)
				active[ip] = false
				remaining--
				continue
			}
			proposals[ip] = x
		}
		if remaining == 0 {
			break
		}
		for ip := 0; ip < n; ip++ {
			if active[ip] {
				par.set(ip, proposals[ip])
			}
		}
		per = o.evalPartitions(active) // ONE wide region pair for all partitions
		for ip := 0; ip < n; ip++ {
			if active[ip] {
				states[ip].Observe(proposals[ip], -per[ip])
			}
		}
	}
	// Pin any stragglers to their best-seen value.
	final := make([]bool, n)
	for ip := 0; ip < n; ip++ {
		if par.eligible(ip) {
			par.set(ip, states[ip].X)
			final[ip] = true
		}
	}
	o.evalPartitions(final)
}

// brentPerPartition is the oldPAR driver: a complete Brent loop per
// partition, each iteration a narrow region pair.
func (o *Optimizer) brentPerPartition(par brentParam) {
	n := o.E.NumPartitions()
	mask := make([]bool, n)
	for ip := 0; ip < n && !o.cancelled(); ip++ {
		if !par.eligible(ip) {
			continue
		}
		for k := range mask {
			mask[k] = false
		}
		mask[ip] = true
		per := o.evalPartitions(mask)
		st := numeric.NewBrentState(par.lo, par.get(ip), par.hi, o.Cfg.BrentTol)
		st.Seed(-per[ip])
		for it := 0; it < o.Cfg.MaxBrentIter && !o.cancelled(); it++ {
			x, done := st.Next()
			if done {
				break
			}
			par.set(ip, x)
			per = o.evalPartitions(mask) // narrow region pair
			st.Observe(x, -per[ip])
		}
		par.set(ip, st.X)
		o.evalPartitions(mask)
	}
}

// OptimizeModel runs the full model-optimization loop on a fixed topology:
// alternating branch-length smoothing, alpha optimization, and (optionally)
// GTR rate optimization until a round improves the log likelihood by less
// than ModelEps. It returns the final log likelihood, the rounds used, and
// the context's cancellation error if ctx was cancelled mid-run — in which
// case the log likelihood is still the exact, usable score of the tree and
// models as the wind-down left them. This is the paper's "optimization of
// ML model parameters (without tree search) on a fixed input tree"
// experiment.
func (o *Optimizer) OptimizeModel(ctx context.Context) (float64, int, error) {
	o.bind(ctx)
	prev := o.SmoothAll(ctx)
	rounds := 0
	for r := 0; r < o.Cfg.MaxModelRounds && !o.cancelled(); r++ {
		rounds++
		if o.Cfg.OptimizeRates {
			o.OptimizeRatesAll()
		}
		o.OptimizeAlphas()
		cur := o.SmoothAll(ctx)
		if o.Cfg.Progress != nil {
			o.Cfg.Progress(rounds, cur)
		}
		if o.Cfg.RoundEnd != nil {
			o.Cfg.RoundEnd()
		}
		if cur-prev < o.Cfg.ModelEps {
			prev = cur
			break
		}
		prev = cur
	}
	return prev, rounds, o.ctxErr()
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}
