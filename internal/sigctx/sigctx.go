// Package sigctx implements the two-stage interrupt protocol shared by the
// repository's long-running commands (plkrun, plkbench, plkd): the first
// SIGINT/SIGTERM cancels a context so the command can drain at the next safe
// boundary (a synchronization-region boundary for analyses, a graceful HTTP
// drain for the daemon), and a second signal hard-exits the process with a
// non-zero status instead of hanging behind a slow drain.
package sigctx

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// exitCodeInterrupted is the conventional 128+SIGINT exit status reported on
// a second (hard-exit) signal.
const exitCodeInterrupted = 130

// Notify returns a child of parent that is cancelled on the first
// SIGINT/SIGTERM. A second signal prints a note to stderr and exits the
// process immediately with status 130 — the escape hatch when a drain is
// slower than the operator's patience. name prefixes the stderr notes.
// The returned stop function releases the signal handler (like
// signal.NotifyContext's); after stop, signals regain their default
// disposition.
func Notify(parent context.Context, name string) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
			return
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "%s: %v — draining (signal again to exit immediately)\n", name, s)
			cancel()
		}
		select {
		case <-done:
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "%s: second %v — exiting\n", name, s)
			os.Exit(exitCodeInterrupted)
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(sig)
			close(done)
		})
		cancel()
	}
	return ctx, stop
}
