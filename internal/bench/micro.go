package bench

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"phylo/internal/alignment"
	"phylo/internal/core"
	"phylo/internal/model"
	"phylo/internal/obs"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/seqsim"
	"phylo/internal/tree"
)

// MicrobenchObs optionally attaches observability to the kernel timing loop:
// the pool of each thread count reports region/worker/kernel families into
// Metrics and (when set) per-worker spans into Tracer. nil (or a nil-field
// struct) measures bare — the two are interchangeable by construction, since
// the flush-at-region-boundary collector adds no hot-path work; the CI
// allocs gate (core.TestMetricsZeroAllocsOnNewviewRegion) pins that claim.
type MicrobenchObs struct {
	Metrics *obs.Registry
	Tracer  *obs.Tracer
}

// collector resolves the attachment to one RegionObserver (nil = none).
func (o *MicrobenchObs) collector(backend string, threads int) parallel.RegionObserver {
	if o == nil || (o.Metrics == nil && o.Tracer == nil) {
		return nil
	}
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return parallel.NewMetricsCollector(reg, "pool", backend, threads, o.Tracer)
}

// KernelTiming is the measured ns/op of the two hot kernels at one thread
// count: one full evaluate region at the canonical root, and one full
// newview traversal (every inner CLV recomputed).
type KernelTiming struct {
	Threads      int     `json:"threads"`
	EvaluateNsOp float64 `json:"evaluate_ns_op"`
	NewviewNsOp  float64 `json:"newview_ns_op"`
}

// TipCaseTiming compares the tip-specialized newview path against the fully
// generic kernels on a tip-heavy dataset (few taxa, so most newview children
// are tips and every worker share clears the lookup-table threshold) at one
// thread count.
type TipCaseTiming struct {
	Threads         int     `json:"threads"`
	SpecializedNsOp float64 `json:"specialized_ns_op"`
	GenericNsOp     float64 `json:"generic_ns_op"`
	Speedup         float64 `json:"speedup"`
}

// BackendTiming compares the fused kernel backend (cat-major CLV layout,
// unrolled 4-state kernels) against the generic pattern-major oracle on one
// full newview traversal of a DNA dataset deep enough that inner/inner
// P-matrix applications dominate, at one thread count.
type BackendTiming struct {
	Threads     int     `json:"threads"`
	GenericNsOp float64 `json:"generic_ns_op"`
	FusedNsOp   float64 `json:"fused_ns_op"`
	Speedup     float64 `json:"speedup"`
}

// MicrobenchReport is the machine-readable kernel benchmark summary the CI
// perf-trajectory job serializes into BENCH_plk.json and gates against
// BENCH_baseline.json (see CompareReports).
type MicrobenchReport struct {
	Dataset    string `json:"dataset"`
	Taxa       int    `json:"taxa"`
	Sites      int    `json:"sites"`
	Partitions int    `json:"partitions"`
	Patterns   int    `json:"patterns"`
	// Backend is the resolved kernel backend the Timings ran under (the
	// session default: PLK_BACKEND or fused).
	Backend string `json:"backend,omitempty"`
	// DatasetBytes is the benchmark dataset's memory footprint (shared state
	// plus one session's buffers; see core.Shared.MemoryFootprint) — the
	// figure the serving layer's cache evicts against. Informational; never
	// gated.
	DatasetBytes int64          `json:"dataset_bytes,omitempty"`
	Timings      []KernelTiming `json:"timings"`
	// BackendDataset and BackendCase cover the generic-vs-fused newview
	// microbenchmark: same dataset, same schedule, both kernel backends on
	// the same commit. CompareReports enforces an absolute speedup floor at
	// one thread (see backendSpeedupFloor) on top of the usual trajectory
	// check.
	BackendDataset string          `json:"backend_dataset,omitempty"`
	BackendCase    []BackendTiming `json:"backend_case,omitempty"`
	// TipDataset and TipCase cover the tip-heavy newview microbenchmark:
	// specialized vs generic kernels on the same commit.
	TipDataset string          `json:"tip_dataset,omitempty"`
	TipCase    []TipCaseTiming `json:"tip_case,omitempty"`
	// ScheduleComparison is the adaptive-vs-weighted end-state imbalance
	// comparison on the mispriced mixed DNA+AA workload (see
	// AdaptiveComparison). Informational in the artifact; the hard gate for
	// it lives in the bench package's acceptance test.
	ScheduleComparison *AdaptiveComparison `json:"schedule_comparison,omitempty"`
	// Steal records the work-stealing microbenchmark on the honestly priced
	// small-grid workload: per-worker steal-count distribution and the
	// fraction of processed patterns that migrated, per thread count. On a
	// well-priced pack migration should be modest; CompareReports flags
	// >50% migration at thread counts the host can actually run in parallel
	// as a stealing pathology (the static pack is mispriced, not noisy).
	Steal []StealMicrobench `json:"steal,omitempty"`
	// StealComparison is the steal-vs-static end-state time-imbalance
	// comparison on the mispriced mixed workload (see StealComparison);
	// informational here, hard-gated by the bench acceptance test.
	StealComparison *StealComparison `json:"steal_comparison,omitempty"`
	// BootstrapDataset and Bootstrap cover the batched-bootstrap experiment:
	// replicates/sec of one R-wide batched session versus R independent
	// single-replicate sessions on the same dataset and topology.
	// CompareReports runs the usual trajectory check on the batched ns/rep
	// and holds the batched-vs-independent speedup at one thread to an
	// absolute floor (see bootstrapSpeedupFloor).
	BootstrapDataset string            `json:"bootstrap_dataset,omitempty"`
	Bootstrap        []BootstrapTiming `json:"bootstrap,omitempty"`
}

// StealMicrobench is the per-thread-count stealing fingerprint of the
// kernel microbenchmark workload (weighted schedule, honest analytic
// costs): how much work migrated and to whom.
type StealMicrobench struct {
	Threads int `json:"threads"`
	// Cores is runtime.NumCPU() at measurement time. With Threads > Cores
	// the workers time-share processors and migration is dominated by OS
	// scheduling, not by pack quality, so the pathology gate only fires for
	// Threads <= Cores.
	Cores             int       `json:"cores"`
	TimeImbalance     float64   `json:"time_imbalance"`
	StealCount        float64   `json:"steal_count"`
	StolenPatterns    float64   `json:"stolen_patterns"`
	ProcessedPatterns float64   `json:"processed_patterns"`
	MigratedFraction  float64   `json:"migrated_fraction"`
	WorkerSteals      []float64 `json:"worker_steals"`
}

// Microbench times the evaluate and newview kernels of a small-grid dataset
// (d20_20000 with 1000-column partitions at the given scale) on the real
// goroutine pool at each requested thread count. One immutable core.Shared
// is reused across sessions per thread count, exactly as the public
// Dataset/Analysis API does. Uses testing.Benchmark, so each timing is
// iterated until statistically stable. Cancelling ctx stops the run between
// sections (each individual timing is short); the error is ctx's. o attaches
// optional observability to the timing loop (nil = bare).
func Microbench(ctx context.Context, threadCounts []int, scale float64, seed int64, o *MicrobenchObs) (*MicrobenchReport, error) {
	ds, err := seqsim.GridDataset(20, 20000, 1000, scale, seed)
	if err != nil {
		return nil, err
	}
	d, err := alignment.Compress(ds.Alignment, ds.Parts, alignment.CompressOptions{})
	if err != nil {
		return nil, err
	}
	models := make([]*model.Model, len(d.Parts))
	for i, p := range d.Parts {
		if models[i], err = model.DefaultFor(p, 4, 1.0); err != nil {
			return nil, err
		}
	}
	rep := &MicrobenchReport{
		Dataset:    ds.Name,
		Taxa:       d.NumTaxa(),
		Sites:      d.TotalSites,
		Partitions: len(d.Parts),
		Patterns:   d.TotalPatterns,
	}
	for _, t := range threadCounts {
		if t < 1 {
			return nil, fmt.Errorf("bench: thread count %d must be positive", t)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pool, err := parallel.NewPool(t)
		if err != nil {
			return nil, err
		}
		sh, err := core.NewShared(d, 4, t)
		if err != nil {
			pool.Close()
			return nil, err
		}
		if rep.DatasetBytes == 0 {
			rep.DatasetBytes = sh.MemoryFootprint().TotalBytes()
		}
		tr, err := tree.Random(ds.Alignment.Names, len(d.Parts), tree.RandomOptions{Seed: seed + 1})
		if err != nil {
			pool.Close()
			return nil, err
		}
		eng, err := core.NewSession(sh, tr, models, pool.Session(), core.Options{Specialize: true})
		if err != nil {
			pool.Close()
			return nil, err
		}
		rep.Backend = eng.Backend().String()
		if c := o.collector(rep.Backend, t); c != nil {
			pool.SetObserver(c)
		}
		root := eng.Tree.Tips[0].Back
		eng.Traverse(root, false, nil) // warm the CLVs once
		evalRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng.Evaluate(root, nil)
			}
		})
		nvRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng.InvalidateCLVs()
				eng.Traverse(root, false, nil)
			}
		})
		pool.Close()
		rep.Timings = append(rep.Timings, KernelTiming{
			Threads:      t,
			EvaluateNsOp: float64(evalRes.NsPerOp()),
			NewviewNsOp:  float64(nvRes.NsPerOp()),
		})
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := tipCaseBench(rep, threadCounts, seed); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := backendBench(rep, threadCounts, seed); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := stealBench(rep, threadCounts, scale, seed); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := bootstrapBench(rep, threadCounts, scale, seed); err != nil {
		return nil, err
	}
	// The feedback-loop comparison rides along in the same artifact: cyclic
	// vs weighted vs adaptive end-state imbalance on the mispriced mixed
	// workload, at the caller's scale (the experiment itself is defined at 8
	// virtual workers, like the paper's 8-thread figures).
	comp, _, err := adaptiveComparisonRun(ctx, FigureConfig{Scale: scale, Seed: seed})
	if err != nil {
		return nil, err
	}
	rep.ScheduleComparison = comp
	// And the stealing counterpart: static weighted vs weighted+steal
	// end-state time imbalance on the same mispriced workload.
	stealComp, _, err := stealComparisonRun(ctx, FigureConfig{Scale: scale, Seed: seed})
	if err != nil {
		return nil, err
	}
	rep.StealComparison = stealComp
	return rep, nil
}

// stealBench fingerprints the stealing runtime on the honestly priced
// small-grid dataset: a few full traversal+evaluate passes per thread count
// under weighted+steal, recording the per-worker steal distribution and the
// migrated pattern fraction that the CompareReports pathology gate inspects.
func stealBench(rep *MicrobenchReport, threadCounts []int, scale float64, seed int64) error {
	ds, err := seqsim.GridDataset(20, 20000, 1000, scale, seed)
	if err != nil {
		return err
	}
	d, err := alignment.Compress(ds.Alignment, ds.Parts, alignment.CompressOptions{})
	if err != nil {
		return err
	}
	models := make([]*model.Model, len(d.Parts))
	for i, p := range d.Parts {
		if models[i], err = model.DefaultFor(p, 4, 1.0); err != nil {
			return err
		}
	}
	const passes = 4
	for _, t := range threadCounts {
		pool, err := parallel.NewPool(t)
		if err != nil {
			return err
		}
		sh, err := core.NewShared(d, 4, t)
		if err != nil {
			pool.Close()
			return err
		}
		tr, err := tree.Random(ds.Alignment.Names, len(d.Parts), tree.RandomOptions{Seed: seed + 1})
		if err != nil {
			pool.Close()
			return err
		}
		ms := make([]*model.Model, len(models))
		for i, m := range models {
			ms[i] = m.Clone()
		}
		eng, err := core.NewSession(sh, tr, ms, pool.Session(), core.Options{
			Specialize: true, Schedule: schedule.Weighted, Steal: true,
		})
		if err != nil {
			pool.Close()
			return err
		}
		root := eng.Tree.Tips[0].Back
		eng.Traverse(root, false, nil) // warm the CLVs and caches
		eng.Exec.Stats().Reset()
		for i := 0; i < passes; i++ {
			eng.InvalidateCLVs()
			eng.Traverse(root, false, nil)
			eng.Evaluate(root, nil)
		}
		st := eng.Exec.Stats()
		processed := probeProcessedPatterns(passes, d.NumTaxa(), d.TotalPatterns)
		sm := StealMicrobench{
			Threads:           t,
			Cores:             runtime.NumCPU(),
			TimeImbalance:     st.TimeImbalance(),
			StealCount:        st.StealCount,
			StolenPatterns:    st.StolenPatterns,
			ProcessedPatterns: processed,
			WorkerSteals:      append([]float64(nil), st.WorkerSteals...),
		}
		if processed > 0 {
			sm.MigratedFraction = sm.StolenPatterns / processed
		}
		rep.Steal = append(rep.Steal, sm)
		pool.Close()
	}
	return nil
}

// backendBench times one full newview traversal on a 4-state dataset under
// the generic (pattern-major oracle) and fused (cat-major, unrolled) kernel
// backends at each thread count. The dataset is fixed-size like the tip-case
// benchmark — large enough that the traversal is kernel-bound — and uses
// enough taxa that inner/inner P applications (the case the fused unrolling
// targets) carry roughly half the child slots of the traversal.
func backendBench(rep *MicrobenchReport, threadCounts []int, seed int64) error {
	const bTaxa, bSites = 48, 8192
	ds, err := seqsim.GridDataset(bTaxa, bSites, bSites, 1.0, seed+29)
	if err != nil {
		return err
	}
	d, err := alignment.Compress(ds.Alignment, ds.Parts, alignment.CompressOptions{})
	if err != nil {
		return err
	}
	models := make([]*model.Model, len(d.Parts))
	for i, p := range d.Parts {
		if models[i], err = model.DefaultFor(p, 4, 1.0); err != nil {
			return err
		}
	}
	rep.BackendDataset = fmt.Sprintf("%s (%d patterns)", ds.Name, d.TotalPatterns)
	for _, t := range threadCounts {
		pool, err := parallel.NewPool(t)
		if err != nil {
			return err
		}
		timing := BackendTiming{Threads: t}
		for _, backend := range []core.Backend{core.BackendGeneric, core.BackendFused} {
			sh, err := core.NewSharedWith(d, 4, t, backend)
			if err != nil {
				pool.Close()
				return err
			}
			tr, err := tree.Random(ds.Alignment.Names, len(d.Parts), tree.RandomOptions{Seed: seed + 1})
			if err != nil {
				pool.Close()
				return err
			}
			ms := make([]*model.Model, len(models))
			for i, m := range models {
				ms[i] = m.Clone()
			}
			eng, err := core.NewSession(sh, tr, ms, pool.Session(), core.Options{Specialize: true})
			if err != nil {
				pool.Close()
				return err
			}
			root := eng.Tree.Tips[0].Back
			eng.Traverse(root, false, nil)
			// Best of three: the speedup ratio feeds an absolute CI floor
			// (see backendSpeedupFloor), so take the minimum ns/op of three
			// benchmark runs per backend — the standard robust estimator
			// against one-sided scheduler/frequency noise.
			best := 0.0
			for attempt := 0; attempt < 3; attempt++ {
				res := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						eng.InvalidateCLVs()
						eng.Traverse(root, false, nil)
					}
				})
				if ns := float64(res.NsPerOp()); best == 0 || ns < best {
					best = ns
				}
			}
			if backend == core.BackendFused {
				timing.FusedNsOp = best
			} else {
				timing.GenericNsOp = best
			}
		}
		pool.Close()
		if timing.FusedNsOp > 0 {
			timing.Speedup = timing.GenericNsOp / timing.FusedNsOp
		}
		rep.BackendCase = append(rep.BackendCase, timing)
	}
	return nil
}

// tipCaseBench times one full newview traversal on a tip-heavy dataset (6
// taxa: 5 of the 8 child slots are tips) with the tip-case specialization on
// and off, at each thread count. The column count is fixed rather than
// scaled so every worker share stays above the lookup-table threshold — the
// point is to measure the table path, not the generic fallback.
func tipCaseBench(rep *MicrobenchReport, threadCounts []int, seed int64) error {
	const tipTaxa, tipSites = 6, 2048
	ds, err := seqsim.GridDataset(tipTaxa, tipSites, tipSites, 1.0, seed+17)
	if err != nil {
		return err
	}
	d, err := alignment.Compress(ds.Alignment, ds.Parts, alignment.CompressOptions{})
	if err != nil {
		return err
	}
	models := make([]*model.Model, len(d.Parts))
	for i, p := range d.Parts {
		if models[i], err = model.DefaultFor(p, 4, 1.0); err != nil {
			return err
		}
	}
	rep.TipDataset = fmt.Sprintf("%s (tip-heavy, %d patterns)", ds.Name, d.TotalPatterns)
	for _, t := range threadCounts {
		pool, err := parallel.NewPool(t)
		if err != nil {
			return err
		}
		sh, err := core.NewShared(d, 4, t)
		if err != nil {
			pool.Close()
			return err
		}
		timing := TipCaseTiming{Threads: t}
		for _, specialize := range []bool{true, false} {
			tr, err := tree.Random(ds.Alignment.Names, len(d.Parts), tree.RandomOptions{Seed: seed + 1})
			if err != nil {
				pool.Close()
				return err
			}
			eng, err := core.NewSession(sh, tr, models, pool.Session(), core.Options{Specialize: specialize})
			if err != nil {
				pool.Close()
				return err
			}
			root := eng.Tree.Tips[0].Back
			eng.Traverse(root, false, nil)
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					eng.InvalidateCLVs()
					eng.Traverse(root, false, nil)
				}
			})
			if specialize {
				timing.SpecializedNsOp = float64(res.NsPerOp())
			} else {
				timing.GenericNsOp = float64(res.NsPerOp())
			}
		}
		pool.Close()
		if timing.SpecializedNsOp > 0 {
			timing.Speedup = timing.GenericNsOp / timing.SpecializedNsOp
		}
		rep.TipCase = append(rep.TipCase, timing)
	}
	return nil
}
