package bench

import "fmt"

// CompareReports is the CI perf-regression gate: it checks a freshly
// measured microbenchmark report against a stored baseline
// (BENCH_baseline.json) and returns one message per regression — any kernel
// ns/op more than tol fractionally above the baseline value at the same
// thread count (tol 0.20 = fail on >20% slowdown). Thread counts present in
// only one of the two reports are skipped (nothing to compare), as is the
// tip-case section when the baseline predates it. Getting *faster* never
// fails; refresh the baseline to ratchet the trajectory (one command, run on
// the machine class the gate compares on):
//
//	go run ./cmd/plkbench -scale 0.01 -threads 1,4,8 -out BENCH_baseline.json
func CompareReports(baseline, fresh *MicrobenchReport, tol float64) []string {
	var regressions []string
	check := func(kernel string, threads int, base, now float64) {
		if base <= 0 || now <= 0 {
			return
		}
		if now > base*(1+tol) {
			regressions = append(regressions,
				fmt.Sprintf("%s @ %d threads: %.0f ns/op vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
					kernel, threads, now, base, 100*(now/base-1), 100*tol))
		}
	}
	baseTimings := make(map[int]KernelTiming, len(baseline.Timings))
	for _, kt := range baseline.Timings {
		baseTimings[kt.Threads] = kt
	}
	for _, kt := range fresh.Timings {
		b, ok := baseTimings[kt.Threads]
		if !ok {
			continue
		}
		check("evaluate", kt.Threads, b.EvaluateNsOp, kt.EvaluateNsOp)
		check("newview", kt.Threads, b.NewviewNsOp, kt.NewviewNsOp)
	}
	baseTip := make(map[int]TipCaseTiming, len(baseline.TipCase))
	for _, tc := range baseline.TipCase {
		baseTip[tc.Threads] = tc
	}
	for _, tc := range fresh.TipCase {
		b, ok := baseTip[tc.Threads]
		if !ok {
			continue
		}
		check("newview-tip(specialized)", tc.Threads, b.SpecializedNsOp, tc.SpecializedNsOp)
	}
	// Kernel backend: the fused timing rides the usual trajectory check
	// against the baseline, and the generic-vs-fused speedup at one thread is
	// additionally held to an absolute floor — an intra-run ratio, so it needs
	// no baseline entry and is immune to machine-class drift. The floor only
	// fires when both backends were actually measured.
	baseBackend := make(map[int]BackendTiming, len(baseline.BackendCase))
	for _, bt := range baseline.BackendCase {
		baseBackend[bt.Threads] = bt
	}
	for _, bt := range fresh.BackendCase {
		if b, ok := baseBackend[bt.Threads]; ok {
			check("newview-backend(fused)", bt.Threads, b.FusedNsOp, bt.FusedNsOp)
		}
		if bt.Threads == 1 && bt.GenericNsOp > 0 && bt.FusedNsOp > 0 && bt.Speedup < backendSpeedupFloor {
			regressions = append(regressions,
				fmt.Sprintf("backend @ 1 thread: fused newview speedup %.2fx below the %.1fx floor (generic %.0f ns/op, fused %.0f ns/op)",
					bt.Speedup, backendSpeedupFloor, bt.GenericNsOp, bt.FusedNsOp))
		}
	}
	// Bootstrap batching: the batched per-replicate cost rides the usual
	// trajectory check, and the batched-vs-R-independent-sessions speedup at
	// one thread is held to an absolute floor — like the backend floor, an
	// intra-run ratio immune to machine-class drift. Only fires when both
	// modes were measured.
	baseBoot := make(map[int]BootstrapTiming, len(baseline.Bootstrap))
	for _, bt := range baseline.Bootstrap {
		baseBoot[bt.Threads] = bt
	}
	for _, bt := range fresh.Bootstrap {
		if b, ok := baseBoot[bt.Threads]; ok {
			check("bootstrap(batched, per replicate)", bt.Threads, b.BatchedNsPerRep, bt.BatchedNsPerRep)
		}
		if bt.Threads == 1 && bt.BatchedNsPerRep > 0 && bt.IndependentNsPerRep > 0 && bt.Speedup < bootstrapSpeedupFloor {
			regressions = append(regressions,
				fmt.Sprintf("bootstrap @ 1 thread: batched speedup %.2fx below the %.1fx floor (batched %.0f ns/rep, independent %.0f ns/rep)",
					bt.Speedup, bootstrapSpeedupFloor, bt.BatchedNsPerRep, bt.IndependentNsPerRep))
		}
	}
	// Stealing pathology: on the honestly priced microbenchmark workload,
	// more than half of all patterns migrating means the static pack is
	// systematically mispriced — stealing is papering over a scheduling bug,
	// not absorbing noise. Requires no baseline entry (it is an absolute
	// property of the fresh run) but only fires when the workers actually
	// ran in parallel: with Threads > Cores the OS time-shares workers and
	// whichever runs first legitimately swallows the stragglers' deques.
	for _, sm := range fresh.Steal {
		if sm.Threads <= sm.Cores && sm.MigratedFraction > stealMigrationCeiling {
			regressions = append(regressions,
				fmt.Sprintf("steal @ %d threads (%d cores): %.0f%% of patterns migrated (ceiling %.0f%%) — the static pack is mispriced, rebalance the cost model",
					sm.Threads, sm.Cores, 100*sm.MigratedFraction, 100*stealMigrationCeiling))
		}
	}
	return regressions
}

// stealMigrationCeiling is the migrated-pattern fraction above which the
// perf gate treats stealing as a symptom rather than a cure.
const stealMigrationCeiling = 0.5

// backendSpeedupFloor is the minimum generic-vs-fused newview speedup at one
// thread: the fused backend's cat-major layout and unrolled 4-state kernels
// must at least halve the oracle's traversal time (measured best-of-three per
// backend; the ratio sits around 2.15x on current hardware).
const backendSpeedupFloor = 2.0

// bootstrapSpeedupFloor is the minimum batched-vs-independent bootstrap
// throughput ratio at one thread: scoring R replicates in one R-wide batched
// session must be at least twice as fast per replicate as running R dedicated
// single-replicate sessions (the ratio sits far above that in practice —
// the batched sweep pays one newview traversal for all R replicates).
const bootstrapSpeedupFloor = 2.0
