package bench

import (
	"context"
	"math"
	"testing"
)

// TestStealingBoundsIntraRegionTailLatency is the acceptance gate for the
// work-stealing subsystem: on the mixed DNA+AA dataset with a deliberately
// 100x-mispriced cost model, the steal-enabled run's end-state measured
// per-worker time imbalance (probed under the final schedule on the real
// goroutine pool) must not exceed the static weighted pack's, stealing must
// actually have fired, and the likelihood must agree with the static run to
// reassociation tolerance.
func TestStealingBoundsIntraRegionTailLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("full model optimization runs on a real pool")
	}
	if raceEnabled {
		// The gate compares measured wall time per worker; race-detector
		// instrumentation distorts the per-chunk costs the comparison relies
		// on. The stealing concurrency itself is race-tested in
		// internal/steal and internal/core.
		t.Skip("timing-driven acceptance gate is not meaningful under the race detector")
	}
	cfg := FigureConfig{Scale: 0.02, Seed: 42}
	comp, results, err := stealComparisonRun(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The imbalance clause is only meaningful when the workers genuinely run
	// in parallel: per-worker *work* time (barrier waits excluded) on an
	// oversubscribed host reflects which goroutines the OS happened to run,
	// not load balance — the same reason the migrated-fraction gate in
	// CompareReports exempts Threads > Cores. The remaining clauses
	// (determinism, steal activity, metric sanity) hold everywhere.
	gateImbalance := comp.Threads <= comp.Cores
	// Wall-clock per-worker times on a shared CI box are noisy; a spurious
	// loss must reproduce on a fresh comparison before it fails the gate
	// (same shield as the adaptive acceptance test).
	const slack = 1.02
	if gateImbalance && comp.StealTimeImbalance > comp.WeightedTimeImbalance*slack {
		t.Logf("steal %v above static %v on the first run; re-measuring once",
			comp.StealTimeImbalance, comp.WeightedTimeImbalance)
		if comp, results, err = stealComparisonRun(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("end-state time imbalance: weighted-static %.4f, weighted+steal %.4f (%.0f steals, %.0f patterns, %.1f%% migrated; %d workers / %d cores)",
		comp.WeightedTimeImbalance, comp.StealTimeImbalance, comp.StealCount, comp.StolenPatterns, 100*comp.MigratedFraction, comp.Threads, comp.Cores)
	if !gateImbalance {
		t.Logf("imbalance clause skipped: %d workers time-share %d cores", comp.Threads, comp.Cores)
	} else if comp.StealTimeImbalance > comp.WeightedTimeImbalance*slack {
		t.Errorf("steal-enabled end-state time imbalance %v exceeds static weighted %v — stealing failed to bound the intra-region tail",
			comp.StealTimeImbalance, comp.WeightedTimeImbalance)
	}
	if comp.StealCount == 0 {
		t.Error("the probe never stole on a 100x-mispriced pack")
	}
	if comp.StealTimeImbalance < 1 || comp.WeightedTimeImbalance < 1 {
		t.Errorf("imbalance below 1: %+v", comp)
	}
	static := results[false]
	if comp.LnLAbsDiff > 1e-9*math.Abs(static.LnL) {
		t.Errorf("stealing changed the optimum: |dlnL| = %v on lnL %v", comp.LnLAbsDiff, static.LnL)
	}
	if comp.MigratedFraction < 0 || comp.MigratedFraction > 1 {
		t.Errorf("migrated fraction %v outside [0, 1]", comp.MigratedFraction)
	}
	// Steal totals must match the per-worker distribution.
	sum := 0.0
	for _, v := range comp.WorkerSteals {
		sum += v
	}
	if math.Abs(sum-comp.StealCount) > 1e-9 {
		t.Errorf("per-worker steals %v do not sum to total %v", sum, comp.StealCount)
	}
}
