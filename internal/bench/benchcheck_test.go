package bench

import (
	"context"
	"strings"
	"testing"
)

func checkReport() *MicrobenchReport {
	return &MicrobenchReport{
		Dataset: "d20_20000",
		Timings: []KernelTiming{
			{Threads: 1, EvaluateNsOp: 1000, NewviewNsOp: 4000},
			{Threads: 4, EvaluateNsOp: 400, NewviewNsOp: 1500},
		},
		TipCase: []TipCaseTiming{
			{Threads: 1, SpecializedNsOp: 2000, GenericNsOp: 5000, Speedup: 2.5},
		},
		BackendCase: []BackendTiming{
			{Threads: 1, GenericNsOp: 34000, FusedNsOp: 16000, Speedup: 2.125},
		},
		Bootstrap: []BootstrapTiming{
			{Threads: 1, Replicates: 32, BatchedNsPerRep: 30000, IndependentNsPerRep: 1000000,
				BatchedRepsPerSec: 33333, IndependentRepsPerSec: 1000, Speedup: 33.3},
		},
	}
}

// TestCompareReportsGate demonstrates the CI perf gate: identical reports
// pass, a synthetic 20%+ regression on any kernel at any thread count fails,
// and speedups never fail.
func TestCompareReportsGate(t *testing.T) {
	base := checkReport()
	if regs := CompareReports(base, checkReport(), 0.20); len(regs) != 0 {
		t.Fatalf("identical reports must pass the gate, got %v", regs)
	}

	// Inject a synthetic 25% newview regression at 4 threads (the scenario
	// the acceptance criteria require the bench job to fail on).
	slow := checkReport()
	slow.Timings[1].NewviewNsOp *= 1.25
	regs := CompareReports(base, slow, 0.20)
	if len(regs) != 1 {
		t.Fatalf("want exactly one regression, got %v", regs)
	}
	if !strings.Contains(regs[0], "newview @ 4 threads") {
		t.Errorf("regression message %q should name kernel and thread count", regs[0])
	}

	// A regression on the tip-specialized kernel is caught too.
	slowTip := checkReport()
	slowTip.TipCase[0].SpecializedNsOp *= 1.3
	if regs := CompareReports(base, slowTip, 0.20); len(regs) != 1 ||
		!strings.Contains(regs[0], "newview-tip(specialized) @ 1 threads") {
		t.Errorf("tip-case regression not caught: %v", regs)
	}

	// Exactly at the tolerance boundary passes; just above fails.
	edge := checkReport()
	edge.Timings[0].EvaluateNsOp = 1200
	if regs := CompareReports(base, edge, 0.20); len(regs) != 0 {
		t.Errorf("+20%% at 20%% tolerance must pass, got %v", regs)
	}
	edge.Timings[0].EvaluateNsOp = 1201
	if regs := CompareReports(base, edge, 0.20); len(regs) != 1 {
		t.Errorf("+20.1%% at 20%% tolerance must fail, got %v", regs)
	}

	// Getting faster never fails.
	fast := checkReport()
	for i := range fast.Timings {
		fast.Timings[i].EvaluateNsOp /= 2
		fast.Timings[i].NewviewNsOp /= 2
	}
	if regs := CompareReports(base, fast, 0.20); len(regs) != 0 {
		t.Errorf("speedups must pass the gate, got %v", regs)
	}

	// Thread counts or sections missing from the baseline are skipped, so a
	// baseline from before the tip-case bench still gates the core kernels.
	old := checkReport()
	old.TipCase = nil
	old.BackendCase = nil
	old.Timings = old.Timings[:1]
	if regs := CompareReports(old, slow, 0.20); len(regs) != 0 {
		t.Errorf("thread counts absent from the baseline must be skipped, got %v", regs)
	}
}

// TestCompareReportsBackendColumn covers the kernel-backend arm of the perf
// gate: a synthetic regression of the fused timing against the baseline
// fails the trajectory check, and a fused backend that loses its 2x edge
// over the generic oracle trips the absolute speedup floor even when the
// baseline has no backend entries at all.
func TestCompareReportsBackendColumn(t *testing.T) {
	base := checkReport()
	if regs := CompareReports(base, checkReport(), 0.20); len(regs) != 0 {
		t.Fatalf("identical backend timings must pass, got %v", regs)
	}

	// Synthetic 30% fused-kernel slowdown: trajectory regression (the
	// speedup stays above the floor because generic slowed down too).
	slow := checkReport()
	slow.BackendCase[0].FusedNsOp *= 1.3
	slow.BackendCase[0].GenericNsOp *= 1.3
	regs := CompareReports(base, slow, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "newview-backend(fused) @ 1 threads") {
		t.Errorf("fused trajectory regression not caught: %v", regs)
	}

	// Fused edge eroded to 1.4x: the absolute floor fires, baseline or not.
	eroded := checkReport()
	eroded.BackendCase[0].FusedNsOp = eroded.BackendCase[0].GenericNsOp / 1.4
	eroded.BackendCase[0].Speedup = 1.4
	for _, baseline := range []*MicrobenchReport{base, {Dataset: "no-backend-column"}} {
		regs := CompareReports(baseline, eroded, 0.50) // wide tol: isolate the floor
		found := false
		for _, r := range regs {
			if strings.Contains(r, "below the 2.0x floor") {
				found = true
			}
		}
		if !found {
			t.Errorf("eroded 1.4x speedup must trip the floor (baseline %q): %v", baseline.Dataset, regs)
		}
	}

	// At the floor exactly passes; the floor is a minimum, not a target band.
	atFloor := checkReport()
	atFloor.BackendCase[0].FusedNsOp = atFloor.BackendCase[0].GenericNsOp / 2
	atFloor.BackendCase[0].Speedup = 2.0
	if regs := CompareReports(base, atFloor, 0.20); len(regs) != 0 {
		t.Errorf("exactly 2.0x must pass the floor, got %v", regs)
	}

	// The floor only applies at one thread (parallel timings are gated by the
	// trajectory check alone — barrier effects make cross-backend ratios at
	// higher thread counts a scheduling property, not a kernel property).
	mt := checkReport()
	mt.BackendCase = append(mt.BackendCase, BackendTiming{Threads: 4, GenericNsOp: 9000, FusedNsOp: 8000, Speedup: 1.125})
	if regs := CompareReports(base, mt, 0.20); len(regs) != 0 {
		t.Errorf("sub-floor speedup at 4 threads must not trip the 1-thread floor, got %v", regs)
	}
}

// TestCompareReportsBootstrapColumn covers the batched-bootstrap arm of the
// perf gate: a synthetic regression of the batched per-replicate cost fails
// the trajectory check, and a batched path that loses its 2x edge over R
// independent sessions trips the absolute speedup floor even against a
// baseline from before the bootstrap column existed.
func TestCompareReportsBootstrapColumn(t *testing.T) {
	base := checkReport()
	if regs := CompareReports(base, checkReport(), 0.20); len(regs) != 0 {
		t.Fatalf("identical bootstrap timings must pass, got %v", regs)
	}

	// Synthetic 30% batched slowdown: trajectory regression (the speedup
	// stays far above the floor).
	slow := checkReport()
	slow.Bootstrap[0].BatchedNsPerRep *= 1.3
	regs := CompareReports(base, slow, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "bootstrap(batched, per replicate) @ 1 threads") {
		t.Errorf("batched trajectory regression not caught: %v", regs)
	}

	// Batched edge eroded to 1.5x: the absolute floor fires, baseline or not.
	eroded := checkReport()
	eroded.Bootstrap[0].BatchedNsPerRep = eroded.Bootstrap[0].IndependentNsPerRep / 1.5
	eroded.Bootstrap[0].Speedup = 1.5
	for _, baseline := range []*MicrobenchReport{base, {Dataset: "no-bootstrap-column"}} {
		regs := CompareReports(baseline, eroded, 0.50) // wide tol: isolate the floor
		found := false
		for _, r := range regs {
			if strings.Contains(r, "bootstrap @ 1 thread") && strings.Contains(r, "below the 2.0x floor") {
				found = true
			}
		}
		if !found {
			t.Errorf("eroded 1.5x bootstrap speedup must trip the floor (baseline %q): %v", baseline.Dataset, regs)
		}
	}

	// The floor only applies at one thread.
	mt := checkReport()
	mt.Bootstrap = append(mt.Bootstrap, BootstrapTiming{Threads: 4, Replicates: 32,
		BatchedNsPerRep: 9000, IndependentNsPerRep: 10000, Speedup: 1.11})
	if regs := CompareReports(base, mt, 0.20); len(regs) != 0 {
		t.Errorf("sub-floor bootstrap speedup at 4 threads must not trip the 1-thread floor, got %v", regs)
	}
}

// TestCompareReportsFlagsStealPathology covers the stealing arm of the perf
// gate: >50% of patterns migrating at a genuinely parallel thread count is a
// mispriced static pack and must fail, while the same fraction on an
// oversubscribed host (workers time-sharing cores) is a scheduling artifact
// and must pass.
func TestCompareReportsFlagsStealPathology(t *testing.T) {
	base := checkReport()
	healthy := checkReport()
	healthy.Steal = []StealMicrobench{
		{Threads: 4, Cores: 8, MigratedFraction: 0.12, StealCount: 40, StolenPatterns: 4000, ProcessedPatterns: 33000},
	}
	if regs := CompareReports(base, healthy, 0.20); len(regs) != 0 {
		t.Fatalf("modest migration must pass, got %v", regs)
	}

	sick := checkReport()
	sick.Steal = []StealMicrobench{
		{Threads: 4, Cores: 8, MigratedFraction: 0.62, StealCount: 900, StolenPatterns: 20000, ProcessedPatterns: 33000},
	}
	regs := CompareReports(base, sick, 0.20)
	if len(regs) != 1 {
		t.Fatalf("want exactly one steal pathology, got %v", regs)
	}
	if !strings.Contains(regs[0], "steal @ 4 threads") || !strings.Contains(regs[0], "mispriced") {
		t.Errorf("pathology message %q should name the thread count and the diagnosis", regs[0])
	}

	// Same migration with 8 workers on 1 core: oversubscription, not a
	// mispriced pack — whichever worker the OS runs first legitimately
	// swallows the deques of workers that have not started yet.
	oversub := checkReport()
	oversub.Steal = []StealMicrobench{
		{Threads: 8, Cores: 1, MigratedFraction: 0.85, StealCount: 5000, StolenPatterns: 50000, ProcessedPatterns: 60000},
	}
	if regs := CompareReports(base, oversub, 0.20); len(regs) != 0 {
		t.Errorf("oversubscribed migration must be skipped, got %v", regs)
	}

	// Exactly at the ceiling passes; just above fails.
	edge := checkReport()
	edge.Steal = []StealMicrobench{{Threads: 2, Cores: 2, MigratedFraction: 0.5}}
	if regs := CompareReports(base, edge, 0.20); len(regs) != 0 {
		t.Errorf("50%% migration at the 50%% ceiling must pass, got %v", regs)
	}
	edge.Steal[0].MigratedFraction = 0.51
	if regs := CompareReports(base, edge, 0.20); len(regs) != 1 {
		t.Errorf("51%% migration must fail, got %v", regs)
	}
}

// TestTipCaseSpeedupRecorded guards the acceptance criterion: the microbench
// report must carry tip-case entries with a computed speedup, and at one
// thread — where the kernel is arithmetic-bound and the measured margin is
// wide (~3.5x locally) — the specialized path must clear the 1.25x floor.
func TestTipCaseSpeedupRecorded(t *testing.T) {
	if testing.Short() {
		t.Skip("microbenchmark run in -short mode")
	}
	rep, err := Microbench(context.Background(), []int{1}, 0.01, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TipCase) != 1 {
		t.Fatalf("want one tip-case timing, got %d", len(rep.TipCase))
	}
	tc := rep.TipCase[0]
	if tc.SpecializedNsOp <= 0 || tc.GenericNsOp <= 0 || tc.Speedup <= 0 {
		t.Fatalf("tip-case timing not populated: %+v", tc)
	}
	if tc.Speedup < 1.25 {
		t.Errorf("tip-heavy newview speedup %.2fx below the 1.25x acceptance floor", tc.Speedup)
	}
	if rep.TipDataset == "" {
		t.Error("tip dataset description missing")
	}
	// The backend column rides in the same report: both backends measured,
	// the active session backend recorded, and the fused speedup at one
	// thread clearing the CompareReports floor (the acceptance criterion).
	if rep.Backend == "" {
		t.Error("active kernel backend missing from report")
	}
	if len(rep.BackendCase) != 1 {
		t.Fatalf("want one backend timing, got %d", len(rep.BackendCase))
	}
	bt := rep.BackendCase[0]
	if bt.GenericNsOp <= 0 || bt.FusedNsOp <= 0 || bt.Speedup <= 0 {
		t.Fatalf("backend timing not populated: %+v", bt)
	}
	if bt.Speedup < backendSpeedupFloor {
		t.Errorf("fused newview speedup %.2fx below the %.1fx acceptance floor", bt.Speedup, backendSpeedupFloor)
	}
	if rep.BackendDataset == "" {
		t.Error("backend dataset description missing")
	}
}
