package bench

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"phylo/internal/opt"
	"phylo/internal/seqsim"
)

// tinyDataset builds a very small but structurally faithful dataset: many
// short partitions, per-partition models.
func tinyDataset(t *testing.T) *seqsim.Dataset {
	t.Helper()
	ds, err := seqsim.GridDataset(10, 5000, 1000, 0.01, 7) // 5 partitions x 10 cols
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRunModelOptBothStrategies(t *testing.T) {
	ds := tinyDataset(t)
	var lnls [2]float64
	var regions [2]int64
	for i, strat := range []opt.Strategy{opt.OldPar, opt.NewPar} {
		m, err := Run(context.Background(), RunSpec{
			Dataset:        ds,
			Partitioned:    true,
			PerPartitionBL: true,
			Strategy:       strat,
			Threads:        8,
			Mode:           ModeModelOpt,
			Backend:        BackendSim,
			TreeSeed:       99,
		})
		if err != nil {
			t.Fatal(err)
		}
		lnls[i] = m.LnL
		regions[i] = m.Stats.Regions
		if len(m.PlatformSeconds) != 4 {
			t.Errorf("expected 4 platform prices, got %d", len(m.PlatformSeconds))
		}
		for name, s := range m.PlatformSeconds {
			if s <= 0 || math.IsNaN(s) {
				t.Errorf("platform %s priced at %v", name, s)
			}
		}
	}
	// Same optimum, fewer synchronizations for newPAR.
	if math.Abs(lnls[0]-lnls[1]) > 1e-2*math.Abs(lnls[0]) {
		t.Errorf("strategies disagree on lnL: %v vs %v", lnls[0], lnls[1])
	}
	if regions[1] >= regions[0] {
		t.Errorf("newPAR regions %d not fewer than oldPAR %d", regions[1], regions[0])
	}
}

func TestRunSearchProducesImprovement(t *testing.T) {
	ds := tinyDataset(t)
	m, err := Run(context.Background(), RunSpec{
		Dataset:        ds,
		Partitioned:    true,
		PerPartitionBL: true,
		Strategy:       opt.NewPar,
		Threads:        4,
		Mode:           ModeSearch,
		Backend:        BackendSim,
		TreeSeed:       99,
		SearchRounds:   1,
		SearchRadius:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.LnL >= 0 || math.IsNaN(m.LnL) {
		t.Errorf("search lnL = %v", m.LnL)
	}
}

func TestRunUnpartitionedAndPoolBackend(t *testing.T) {
	ds := tinyDataset(t)
	m, err := Run(context.Background(), RunSpec{
		Dataset:     ds,
		Partitioned: false,
		Strategy:    opt.NewPar,
		Threads:     2,
		Mode:        ModeModelOpt,
		Backend:     BackendPool,
		TreeSeed:    99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.WallSeconds <= 0 {
		t.Error("wall-clock not measured")
	}
}

func TestOldParSlowdownShapeAt16Threads(t *testing.T) {
	// The paper's headline phenomenon in miniature: on a 16-core platform
	// profile, oldPAR at 16 threads must not be meaningfully faster than at
	// 8 threads (the paper observed a slowdown), while newPAR keeps scaling.
	ds, err := seqsim.GridDataset(20, 20000, 1000, 0.02, 11) // 20 partitions x 20 cols
	if err != nil {
		t.Fatal(err)
	}
	get := func(strat opt.Strategy, threads int) float64 {
		m, err := Run(context.Background(), RunSpec{
			Dataset:        ds,
			Partitioned:    true,
			PerPartitionBL: true,
			Strategy:       strat,
			Threads:        threads,
			Mode:           ModeModelOpt,
			Backend:        BackendSim,
			TreeSeed:       5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.PlatformSeconds["Barcelona"]
	}
	old8, old16 := get(opt.OldPar, 8), get(opt.OldPar, 16)
	new8, new16 := get(opt.NewPar, 8), get(opt.NewPar, 16)
	if old16 < old8*0.8 {
		t.Errorf("oldPAR sped up markedly from 8 (%v) to 16 (%v) threads; expected stagnation/slowdown", old8, old16)
	}
	if new16 > new8*1.1 {
		t.Errorf("newPAR slowed down from 8 (%v) to 16 (%v) threads", new8, new16)
	}
	if old8/new8 < 1.05 {
		t.Errorf("newPAR improvement at 8 threads only %.2fx", old8/new8)
	}
}

func TestWidthMicrobenchRuns(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultFigureConfig(&buf)
	cfg.Scale = 0.01
	cfg.SearchRounds = 1
	cfg.SearchRadius = 2
	if err := WidthMicrobench(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "imbalance") || !strings.Contains(out, "T=16") {
		t.Errorf("unexpected microbench output:\n%s", out)
	}
}

func TestFigure6SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	var buf bytes.Buffer
	cfg := DefaultFigureConfig(&buf)
	cfg.Scale = 0.005
	cfg.SearchRounds = 1
	cfg.SearchRadius = 1
	if err := Figure6(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Unpartitioned") {
		t.Errorf("figure 6 output malformed:\n%s", buf.String())
	}
}

// TestMicrobenchSmoke: the kernel microbench used for the CI perf
// trajectory produces sane, positive timings.
func TestMicrobenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("microbench iterates testing.Benchmark; skipped in -short")
	}
	rep, err := Microbench(context.Background(), []int{1}, 0.002, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Patterns <= 0 || rep.Partitions <= 0 {
		t.Fatalf("report shape: %+v", rep)
	}
	if len(rep.Timings) != 1 {
		t.Fatalf("want 1 timing, got %d", len(rep.Timings))
	}
	kt := rep.Timings[0]
	if kt.Threads != 1 || kt.EvaluateNsOp <= 0 || kt.NewviewNsOp <= 0 {
		t.Errorf("timing: %+v", kt)
	}
	comp := rep.ScheduleComparison
	if comp == nil {
		t.Fatal("report misses the adaptive-vs-weighted schedule comparison")
	}
	if comp.CyclicImbalance < 1 || comp.WeightedImbalance < 1 || comp.AdaptiveImbalance < 1 {
		t.Errorf("comparison imbalances below 1: %+v", comp)
	}
	if comp.LnLMaxAbsDiff > 1e-6 {
		t.Errorf("schedule comparison likelihoods diverged: %+v", comp)
	}
	if _, err := Microbench(context.Background(), []int{0}, 0.002, 7, nil); err == nil {
		t.Error("expected error for zero thread count")
	}
}
