package bench

import (
	"context"
	"math"
	"testing"

	"phylo/internal/opt"
	"phylo/internal/schedule"
)

// mixedRun executes the schedule-comparison workload (mixed DNA+AA
// partitioned model optimization on 8 virtual workers) under one strategy.
func mixedRun(tb testing.TB, strat schedule.Strategy) *Measurement {
	tb.Helper()
	cfg := FigureConfig{Scale: 0.02, Seed: 42}
	ds, err := MixedScheduleDataset(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	m, err := Run(context.Background(), RunSpec{
		Dataset:        ds,
		Partitioned:    true,
		PerPartitionBL: true,
		Strategy:       opt.NewPar,
		Schedule:       strat,
		Threads:        8,
		Mode:           ModeModelOpt,
		Backend:        BackendSim,
		TreeSeed:       142,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// TestWeightedScheduleBeatsCyclicOnMixedData is the acceptance check for the
// weighted strategy: on a mixed DNA+AA partitioned dataset, the max/avg
// cumulative per-worker op imbalance under Weighted must not exceed Cyclic's,
// and both must compute the identical likelihood.
func TestWeightedScheduleBeatsCyclicOnMixedData(t *testing.T) {
	if testing.Short() {
		t.Skip("full model optimization run")
	}
	cyc := mixedRun(t, schedule.Cyclic)
	wtd := mixedRun(t, schedule.Weighted)
	// Reduction order differs between assignments, so agreement is up to
	// floating-point reassociation, not bit-for-bit.
	if diff := math.Abs(wtd.LnL - cyc.LnL); diff > 1e-9*math.Abs(cyc.LnL) {
		t.Errorf("schedule changed the optimum: weighted lnL %v, cyclic %v", wtd.LnL, cyc.LnL)
	}
	t.Logf("worker imbalance: cyclic %.5f, weighted %.5f", cyc.Stats.WorkerImbalance(), wtd.Stats.WorkerImbalance())
	if wtd.Stats.WorkerImbalance() > cyc.Stats.WorkerImbalance()+1e-9 {
		t.Errorf("weighted worker imbalance %v exceeds cyclic %v on mixed DNA+AA data",
			wtd.Stats.WorkerImbalance(), cyc.Stats.WorkerImbalance())
	}
	if cyc.Stats.WorkerImbalance() < 1 || wtd.Stats.WorkerImbalance() < 1 {
		t.Errorf("imbalance below 1: cyclic %v, weighted %v", cyc.Stats.WorkerImbalance(), wtd.Stats.WorkerImbalance())
	}
}

// benchmarkSchedule reports the per-strategy imbalance as benchmark metrics
// (run with `go test -bench=ScheduleMixed ./internal/bench/`).
func benchmarkSchedule(b *testing.B, strat schedule.Strategy) {
	var imbal, critical float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mixedRun(b, strat)
		imbal = m.Stats.WorkerImbalance()
		critical = m.Stats.CriticalOps
	}
	b.ReportMetric(imbal, "worker-imbalance")
	b.ReportMetric(critical, "criticalOps")
}

func BenchmarkScheduleMixedCyclic(b *testing.B)   { benchmarkSchedule(b, schedule.Cyclic) }
func BenchmarkScheduleMixedBlock(b *testing.B)    { benchmarkSchedule(b, schedule.Block) }
func BenchmarkScheduleMixedWeighted(b *testing.B) { benchmarkSchedule(b, schedule.Weighted) }
