package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"

	"phylo/internal/opt"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/seqsim"
)

// FigureConfig scales the experiment suite. The paper's runs take 10^3-10^4
// seconds per configuration on 2009 hardware; Scale shrinks the column count
// of every dataset proportionally (partition COUNT is preserved, which is
// what drives the load-balance behaviour) so the suite finishes on a laptop.
// Set Scale to 1.0 to regenerate at paper scale.
type FigureConfig struct {
	Scale        float64
	SearchRounds int
	SearchRadius int
	Seed         int64
	// Schedule applies a pattern-to-worker strategy to every figure run
	// (default Cyclic, the paper's distribution); ScheduleExperiment compares
	// all strategies regardless of this setting.
	Schedule schedule.Strategy
	Out      io.Writer
}

// DefaultFigureConfig returns laptop-scale defaults.
func DefaultFigureConfig(out io.Writer) FigureConfig {
	return FigureConfig{
		Scale:        0.04,
		SearchRounds: 1,
		SearchRadius: 3,
		Seed:         42,
		Out:          out,
	}
}

// figureConfigs are the five bars of Figures 3-5: Sequential, Old 8, New 8,
// Old 16, New 16.
type barSpec struct {
	label    string
	threads  int
	strategy opt.Strategy
}

var figureBars = []barSpec{
	{"Sequential", 1, opt.NewPar},
	{"Old 8", 8, opt.OldPar},
	{"New 8", 8, opt.NewPar},
	{"Old 16", 16, opt.OldPar},
	{"New 16", 16, opt.NewPar},
}

// runtimeFigure runs one runtime-bars figure (the template of Figures 3-5):
// a full ML tree search with per-partition branch lengths on the given
// dataset, measured sequentially and with both strategies on 8 and 16
// threads, priced on the paper's four platforms.
func runtimeFigure(ctx context.Context, cfg FigureConfig, title string, ds *seqsim.Dataset) error {
	fmt.Fprintf(cfg.Out, "=== %s ===\n", title)
	st := ds.Stats()
	fmt.Fprintf(cfg.Out, "dataset %s: %d taxa, %d partitions, %d..%d patterns/partition, %d total patterns (scale %.3g)\n",
		ds.Name, ds.Alignment.NumTaxa(), st.NumPartitions, st.MinPatterns, st.MaxPatterns, st.TotalPatterns, cfg.Scale)

	results := make([]*Measurement, len(figureBars))
	for i, bar := range figureBars {
		m, err := Run(ctx, RunSpec{
			Dataset:        ds,
			Partitioned:    true,
			PerPartitionBL: true,
			Strategy:       bar.strategy,
			Schedule:       cfg.Schedule,
			Threads:        bar.threads,
			Mode:           ModeSearch,
			Backend:        BackendSim,
			TreeSeed:       cfg.Seed + 100,
			SearchRounds:   cfg.SearchRounds,
			SearchRadius:   cfg.SearchRadius,
		})
		if err != nil {
			return err
		}
		results[i] = m
		fmt.Fprintf(cfg.Out, "  ran %-10s  lnL=%.2f  regions=%-8d criticalOps=%.3g  host=%.1fs\n",
			bar.label, m.LnL, m.Stats.Regions, m.Stats.CriticalOps, m.WallSeconds)
	}

	fmt.Fprintf(cfg.Out, "\nvirtual runtime [s] per platform (trace-priced; see DESIGN.md substitution #1):\n")
	fmt.Fprintf(cfg.Out, "%-12s", "platform")
	for _, bar := range figureBars {
		fmt.Fprintf(cfg.Out, " %12s", bar.label)
	}
	fmt.Fprintln(cfg.Out)
	for _, p := range parallel.Platforms {
		fmt.Fprintf(cfg.Out, "%-12s", p.Name)
		for i, bar := range figureBars {
			if bar.threads > p.MaxThreads {
				fmt.Fprintf(cfg.Out, " %12s", "n/a")
				continue
			}
			fmt.Fprintf(cfg.Out, " %12.1f", results[i].PlatformSeconds[p.Name])
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintf(cfg.Out, "\nimprovement factor old/new (the paper reports up to 8x):\n")
	for _, p := range parallel.Platforms {
		o8, n8 := results[1].PlatformSeconds[p.Name], results[2].PlatformSeconds[p.Name]
		line := fmt.Sprintf("%-12s 8 threads: %.2fx", p.Name, o8/n8)
		if p.MaxThreads >= 16 {
			o16, n16 := results[3].PlatformSeconds[p.Name], results[4].PlatformSeconds[p.Name]
			line += fmt.Sprintf("   16 threads: %.2fx", o16/n16)
			if o16 > o8 {
				line += "   (oldPAR slows DOWN from 8 to 16 threads, as in the paper)"
			}
		}
		fmt.Fprintln(cfg.Out, line)
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

// Figure3 regenerates Figure 3: runtimes for d50_50000 with 50 partitions of
// 1,000 columns each.
func Figure3(ctx context.Context, cfg FigureConfig) error {
	ds, err := seqsim.GridDataset(50, 50000, 1000, cfg.Scale, cfg.Seed)
	if err != nil {
		return err
	}
	return runtimeFigure(ctx, cfg, "Figure 3: d50_50000, 50 partitions x 1000 columns, full ML tree search, per-partition branch lengths", ds)
}

// Figure4 regenerates Figure 4: runtimes for d100_50000, 50 partitions.
func Figure4(ctx context.Context, cfg FigureConfig) error {
	ds, err := seqsim.GridDataset(100, 50000, 1000, cfg.Scale, cfg.Seed+1)
	if err != nil {
		return err
	}
	return runtimeFigure(ctx, cfg, "Figure 4: d100_50000, 50 partitions x 1000 columns, full ML tree search, per-partition branch lengths", ds)
}

// Figure5 regenerates Figure 5: runtimes for the real-world mammalian
// dataset r125_19839 (34 partitions of 148..2705 patterns).
func Figure5(ctx context.Context, cfg FigureConfig) error {
	ds, err := seqsim.RealWorldDataset(seqsim.R125Spec, cfg.Scale, cfg.Seed+2)
	if err != nil {
		return err
	}
	return runtimeFigure(ctx, cfg, "Figure 5: r125_19839 (mammalian DNA stand-in), 34 variable-length partitions, full ML tree search, per-partition branch lengths", ds)
}

// Figure6 regenerates Figure 6: speedups on the Intel Nehalem for
// d50_50000/p1000 — unpartitioned analysis vs newPAR vs oldPAR partitioned
// analyses on 2, 4, and 8 threads.
func Figure6(ctx context.Context, cfg FigureConfig) error {
	fmt.Fprintln(cfg.Out, "=== Figure 6: speedup on Nehalem, d50_50000 p1000 — Unpartitioned vs New vs Old ===")
	ds, err := seqsim.GridDataset(50, 50000, 1000, cfg.Scale, cfg.Seed)
	if err != nil {
		return err
	}
	type series struct {
		label       string
		partitioned bool
		strategy    opt.Strategy
	}
	all := []series{
		{"Unpartitioned", false, opt.NewPar},
		{"New", true, opt.NewPar},
		{"Old", true, opt.OldPar},
	}
	threads := []int{1, 2, 4, 8}
	neh := parallel.Nehalem
	fmt.Fprintf(cfg.Out, "%-14s %8s %8s %8s\n", "series", "T=2", "T=4", "T=8")
	for _, s := range all {
		times := make(map[int]float64, len(threads))
		for _, t := range threads {
			m, err := Run(ctx, RunSpec{
				Dataset:        ds,
				Partitioned:    s.partitioned,
				PerPartitionBL: s.partitioned,
				Strategy:       s.strategy,
				Schedule:       cfg.Schedule,
				Threads:        t,
				Mode:           ModeSearch,
				Backend:        BackendSim,
				TreeSeed:       cfg.Seed + 100,
				SearchRounds:   cfg.SearchRounds,
				SearchRadius:   cfg.SearchRadius,
			})
			if err != nil {
				return err
			}
			times[t] = neh.EvalSeconds(&m.Stats, t)
		}
		fmt.Fprintf(cfg.Out, "%-14s", s.label)
		for _, t := range threads[1:] {
			fmt.Fprintf(cfg.Out, " %8.2f", times[1]/times[t])
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintln(cfg.Out, "(paper: New nearly matches the Unpartitioned speedup; Old falls far behind)")
	fmt.Fprintln(cfg.Out)
	return nil
}

// JointBLExperiment regenerates the text result that analyses with a JOINT
// branch-length estimate see only ~5% improvement from newPAR (both for tree
// searches and stand-alone model optimization).
func JointBLExperiment(ctx context.Context, cfg FigureConfig) error {
	fmt.Fprintln(cfg.Out, "=== Text result: joint branch-length estimate, old vs new (paper: ~5%) ===")
	ds, err := seqsim.GridDataset(50, 20000, 1000, cfg.Scale, cfg.Seed+3)
	if err != nil {
		return err
	}
	for _, mode := range []Mode{ModeSearch, ModeModelOpt} {
		var times [2]float64
		for i, strat := range []opt.Strategy{opt.OldPar, opt.NewPar} {
			m, err := Run(ctx, RunSpec{
				Dataset:        ds,
				Partitioned:    true,
				PerPartitionBL: false, // joint estimate
				Strategy:       strat,
				Schedule:       cfg.Schedule,
				Threads:        8,
				Mode:           mode,
				Backend:        BackendSim,
				TreeSeed:       cfg.Seed + 100,
				SearchRounds:   cfg.SearchRounds,
				SearchRadius:   cfg.SearchRadius,
				OptimizeRates:  mode == ModeModelOpt,
			})
			if err != nil {
				return err
			}
			times[i] = m.PlatformSeconds[parallel.Barcelona.Name]
		}
		fmt.Fprintf(cfg.Out, "%-12s Barcelona 8T: oldPAR %.1fs, newPAR %.1fs, improvement %.1f%%\n",
			mode, times[0], times[1], 100*(times[0]-times[1])/times[0])
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

// ModelOptExperiment regenerates the text result for model parameter
// optimization on a fixed tree with per-partition branch lengths (paper:
// 5-10% improvement, smaller than tree search because a full traversal gives
// every thread more work per synchronization).
func ModelOptExperiment(ctx context.Context, cfg FigureConfig) error {
	fmt.Fprintln(cfg.Out, "=== Text result: model-parameter optimization on fixed tree, per-partition BL (paper: 5-10%) ===")
	ds, err := seqsim.GridDataset(50, 20000, 1000, cfg.Scale, cfg.Seed+4)
	if err != nil {
		return err
	}
	var times [2]float64
	for i, strat := range []opt.Strategy{opt.OldPar, opt.NewPar} {
		m, err := Run(ctx, RunSpec{
			Dataset:        ds,
			Partitioned:    true,
			PerPartitionBL: true,
			Strategy:       strat,
			Threads:        8,
			Mode:           ModeModelOpt,
			Backend:        BackendSim,
			TreeSeed:       cfg.Seed + 100,
			OptimizeRates:  true,
		})
		if err != nil {
			return err
		}
		times[i] = m.PlatformSeconds[parallel.Barcelona.Name]
	}
	fmt.Fprintf(cfg.Out, "model-opt Barcelona 8T: oldPAR %.1fs, newPAR %.1fs, improvement %.1f%%\n\n",
		times[0], times[1], 100*(times[0]-times[1])/times[0])
	return nil
}

// ProteinExperiment regenerates the text result on the two viral protein
// datasets (paper: only 5-10% speedup difference, because the 20x20 kernels
// do ~25x more work per column, masking the load imbalance).
func ProteinExperiment(ctx context.Context, cfg FigureConfig) error {
	fmt.Fprintln(cfg.Out, "=== Text result: protein datasets r26_21451 / r24_16916 (paper: 5-10%) ===")
	for _, spec := range []seqsim.RealWorldSpec{seqsim.R26Spec, seqsim.R24Spec} {
		ds, err := seqsim.RealWorldDataset(spec, cfg.Scale, cfg.Seed+5)
		if err != nil {
			return err
		}
		var times [2]float64
		for i, strat := range []opt.Strategy{opt.OldPar, opt.NewPar} {
			m, err := Run(ctx, RunSpec{
				Dataset:        ds,
				Partitioned:    true,
				PerPartitionBL: true,
				Strategy:       strat,
				Schedule:       cfg.Schedule,
				Threads:        8,
				Mode:           ModeSearch,
				Backend:        BackendSim,
				TreeSeed:       cfg.Seed + 100,
				SearchRounds:   cfg.SearchRounds,
				SearchRadius:   cfg.SearchRadius,
			})
			if err != nil {
				return err
			}
			times[i] = m.PlatformSeconds[parallel.Barcelona.Name]
		}
		fmt.Fprintf(cfg.Out, "%-12s Barcelona 8T: oldPAR %.1fs, newPAR %.1fs, improvement %.1f%%\n",
			ds.Name, times[0], times[1], 100*(times[0]-times[1])/times[0])
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

// WidthMicrobench quantifies Section IV's worst case — "more threads
// available than distinct patterns in a specific partition" — by reporting
// idle workers and per-region imbalance for one branch-length optimization.
func WidthMicrobench(ctx context.Context, cfg FigureConfig) error {
	fmt.Fprintln(cfg.Out, "=== Microbench: region width vs thread count (Sec. IV worst case) ===")
	ds, err := seqsim.GridDataset(50, 20000, 1000, cfg.Scale, cfg.Seed+6)
	if err != nil {
		return err
	}
	for _, threads := range []int{8, 16, 32} {
		for i, strat := range []opt.Strategy{opt.OldPar, opt.NewPar} {
			m, err := Run(ctx, RunSpec{
				Dataset:        ds,
				Partitioned:    true,
				PerPartitionBL: true,
				Strategy:       strat,
				Schedule:       cfg.Schedule,
				Threads:        threads,
				Mode:           ModeModelOpt,
				Backend:        BackendSim,
				TreeSeed:       cfg.Seed + 100,
			})
			if err != nil {
				return err
			}
			_ = i
			fmt.Fprintf(cfg.Out, "T=%-3d %-7s regions=%-9d imbalance=%.2f\n",
				threads, strat, m.Stats.Regions, m.Stats.Imbalance(threads))
		}
	}
	st := ds.Stats()
	fmt.Fprintf(cfg.Out, "smallest partition has %d patterns: with more threads than patterns, workers idle per oldPAR region\n\n", st.MinPatterns)
	return nil
}

// MixedScheduleDataset is the reference workload for comparing scheduling
// strategies: 24 taxa, 12 DNA + 6 protein partitions with jittered lengths,
// so per-pattern cost varies ~25x across the global pattern space.
func MixedScheduleDataset(cfg FigureConfig) (*seqsim.Dataset, error) {
	return seqsim.MixedDataset(24, 12, 6, 1000, cfg.Scale, cfg.Seed+8)
}

// ScheduleExperiment compares the pattern-to-worker scheduling strategies
// (cyclic, block, weighted) on a mixed DNA+AA partitioned workload. The
// quantity under test is the max/avg cumulative per-worker op imbalance: the
// cyclic distribution balances every partition by pattern COUNT, so the ±1
// remainder patterns — worth ~25x more in the protein partitions — land on
// arithmetically determined workers, while the weighted LPT assignment
// places them by accumulated COST. Block is the paper's negative control.
func ScheduleExperiment(ctx context.Context, cfg FigureConfig) error {
	fmt.Fprintln(cfg.Out, "=== Schedule strategies: mixed DNA+AA partitioned workload, model-opt 8T ===")
	ds, err := MixedScheduleDataset(cfg)
	if err != nil {
		return err
	}
	st := ds.Stats()
	fmt.Fprintf(cfg.Out, "dataset %s: %d taxa, %d partitions, %d..%d columns/partition (scale %.3g)\n",
		ds.Name, ds.Alignment.NumTaxa(), st.NumPartitions, st.MinPatterns, st.MaxPatterns, cfg.Scale)
	imbal := map[schedule.Strategy]float64{}
	for _, strat := range []schedule.Strategy{schedule.Cyclic, schedule.Block, schedule.Weighted} {
		m, err := Run(ctx, RunSpec{
			Dataset:        ds,
			Partitioned:    true,
			PerPartitionBL: true,
			Strategy:       opt.NewPar,
			Schedule:       strat,
			Threads:        8,
			Mode:           ModeModelOpt,
			Backend:        BackendSim,
			TreeSeed:       cfg.Seed + 100,
		})
		if err != nil {
			return err
		}
		imbal[strat] = m.Stats.WorkerImbalance()
		fmt.Fprintf(cfg.Out, "%-9s worker-imbalance=%.4f criticalOps=%.4g regions=%-8d Barcelona=%.1fs lnL=%.2f\n",
			strat, m.Stats.WorkerImbalance(), m.Stats.CriticalOps, m.Stats.Regions,
			m.PlatformSeconds[parallel.Barcelona.Name], m.LnL)
	}
	fmt.Fprintf(cfg.Out, "weighted/cyclic imbalance ratio: %.4f (<= 1 means the cost-aware assignment wins)\n\n",
		imbal[schedule.Weighted]/imbal[schedule.Cyclic])
	return nil
}

// AdaptiveComparison is the machine-readable outcome of the feedback-loop
// experiment: end-state per-worker op imbalance (true work, probed under the
// final schedule) for the cyclic, weighted, and measured strategies on the
// mixed DNA+AA dataset with a deliberately mispriced analytic cost model.
// CI serializes it into BENCH_plk.json next to the kernel timings.
type AdaptiveComparison struct {
	Dataset               string  `json:"dataset"`
	SkewCosts             float64 `json:"skew_costs"`
	CyclicImbalance       float64 `json:"cyclic_imbalance"`
	WeightedImbalance     float64 `json:"weighted_imbalance"`
	AdaptiveImbalance     float64 `json:"adaptive_imbalance"`
	AdaptiveTimeImbalance float64 `json:"adaptive_time_imbalance"`
	AdaptiveRebalances    int     `json:"adaptive_rebalances"`
	// LnLMaxAbsDiff is the largest |lnL - cyclic lnL| across strategies —
	// strategies must agree up to floating-point reassociation.
	LnLMaxAbsDiff float64 `json:"lnl_max_abs_diff"`
}

// adaptiveSkewFactor deliberately misprices the analytic model for the
// adaptive experiment: DNA span costs are multiplied by this factor, so the
// static weighted pack places the expensive remainder patterns blindly while
// the measured strategy re-derives honest costs from wall time.
const adaptiveSkewFactor = 100

// adaptiveComparisonRun executes the three-strategy comparison on the mixed
// DNA+AA workload: a model optimization per strategy under a skewed cost
// model, with per-round measured rebalancing for the measured strategy, then
// an identical end-state probe (full traversals + evaluations under each
// final schedule) whose per-worker op totals are the ground-truth work
// distribution.
func adaptiveComparisonRun(ctx context.Context, cfg FigureConfig) (*AdaptiveComparison, map[schedule.Strategy]*Measurement, error) {
	ds, err := MixedScheduleDataset(cfg)
	if err != nil {
		return nil, nil, err
	}
	out := &AdaptiveComparison{Dataset: ds.Name, SkewCosts: adaptiveSkewFactor}
	results := make(map[schedule.Strategy]*Measurement, 3)
	for _, strat := range []schedule.Strategy{schedule.Cyclic, schedule.Weighted, schedule.Measured} {
		m, err := Run(ctx, RunSpec{
			Dataset:            ds,
			Partitioned:        true,
			PerPartitionBL:     true,
			Strategy:           opt.NewPar,
			Schedule:           strat,
			Threads:            8,
			Mode:               ModeModelOpt,
			Backend:            BackendSim,
			TreeSeed:           cfg.Seed + 100,
			SkewCosts:          adaptiveSkewFactor,
			RebalanceThreshold: 1.01,
			ProbeRegions:       6,
		})
		if err != nil {
			return nil, nil, err
		}
		results[strat] = m
	}
	cyc, wtd, adp := results[schedule.Cyclic], results[schedule.Weighted], results[schedule.Measured]
	out.CyclicImbalance = cyc.EndStats.WorkerImbalance()
	out.WeightedImbalance = wtd.EndStats.WorkerImbalance()
	out.AdaptiveImbalance = adp.EndStats.WorkerImbalance()
	out.AdaptiveTimeImbalance = adp.EndStats.TimeImbalance()
	out.AdaptiveRebalances = adp.Rebalances
	for _, m := range []*Measurement{wtd, adp} {
		if d := math.Abs(m.LnL - cyc.LnL); d > out.LnLMaxAbsDiff {
			out.LnLMaxAbsDiff = d
		}
	}
	return out, results, nil
}

// AdaptiveExperiment is the feedback-loop demonstration: on a mixed DNA+AA
// workload whose analytic cost model is deliberately wrong (DNA mispriced
// 100x), the static weighted pack distributes the real work badly, while the
// measured strategy — observing per-worker wall time and rebalancing between
// optimizer rounds — must end at a per-worker imbalance no worse than the
// static pack, without changing any likelihood.
func AdaptiveExperiment(ctx context.Context, cfg FigureConfig) error {
	fmt.Fprintln(cfg.Out, "=== Adaptive (measured) schedule: mispriced mixed DNA+AA workload, model-opt 8T ===")
	comp, results, err := adaptiveComparisonRun(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "dataset %s (scale %.3g): DNA span costs deliberately mispriced %.0fx; end-state probe under each final schedule\n",
		comp.Dataset, cfg.Scale, comp.SkewCosts)
	for _, strat := range []schedule.Strategy{schedule.Cyclic, schedule.Weighted, schedule.Measured} {
		m := results[strat]
		fmt.Fprintf(cfg.Out, "%-9s end-state worker-imbalance=%.4f time-imbalance=%.4f rebalances=%-3d lnL=%.2f\n",
			strat, m.EndStats.WorkerImbalance(), m.EndStats.TimeImbalance(), m.Rebalances, m.LnL)
	}
	fmt.Fprintf(cfg.Out, "adaptive/weighted end-state imbalance ratio: %.4f (<= 1 means the feedback loop recovered from the wrong model)\n",
		comp.AdaptiveImbalance/comp.WeightedImbalance)
	fmt.Fprintf(cfg.Out, "max |lnL - cyclic|: %.3g (schedules must never change results)\n\n", comp.LnLMaxAbsDiff)
	return nil
}

// StealComparison is the machine-readable outcome of the work-stealing
// experiment: end-state measured per-worker time imbalance of the static
// weighted pack vs the same pack with intra-region stealing, on the mixed
// DNA+AA workload whose analytic cost model is deliberately mispriced (so
// the static pack places the expensive narrow-partition remainder patterns
// blindly and stealing has real skew to absorb). CI serializes it into
// BENCH_plk.json next to the kernel timings.
type StealComparison struct {
	Dataset   string  `json:"dataset"`
	SkewCosts float64 `json:"skew_costs"`
	Threads   int     `json:"threads"`
	// Cores is runtime.NumCPU() at measurement time. Per-worker *work* time
	// (barrier waits excluded) only reflects load balance when the workers
	// actually run in parallel: with Threads > Cores the OS decides which
	// worker executes the stolen work, so the acceptance gate skips the
	// imbalance clause on such hosts (the comparison is still recorded).
	Cores int `json:"cores"`
	// End-state probe TimeImbalance (max/avg measured per-worker seconds)
	// under the final schedule, without and with stealing.
	WeightedTimeImbalance float64 `json:"weighted_time_imbalance"`
	StealTimeImbalance    float64 `json:"steal_time_imbalance"`
	// Probe steal activity: operations, migrated patterns, the per-worker
	// steal-count distribution, and the migrated fraction of all patterns
	// the probe processed.
	StealCount       float64   `json:"steal_count"`
	StolenPatterns   float64   `json:"stolen_patterns"`
	WorkerSteals     []float64 `json:"worker_steals"`
	MigratedFraction float64   `json:"migrated_fraction"`
	// LnLAbsDiff is |lnL(steal) - lnL(static)| — stealing must never change
	// results beyond floating-point reassociation of the reductions.
	LnLAbsDiff float64 `json:"lnl_abs_diff"`
}

// stealProbeRegions is the end-state probe length of the steal comparison:
// enough full traversal+evaluate passes to average region-level scheduling
// noise out of the measured per-worker seconds. The static pack's skew is
// deterministic and accumulates coherently across passes, while on an
// oversubscribed host the steal side's work placement is
// scheduler-randomized per region and averages toward uniform — so a longer
// probe widens the gate's margin exactly where it is noisiest.
const stealProbeRegions = 24

// probeProcessedPatterns is the pattern-execution count of `passes` full
// traversal+evaluate probe passes on an n-taxon dataset: each pass touches
// every pattern once per newview step (taxa-2 steps in a full traversal to
// the canonical root) and once more in the evaluate region. It is the
// denominator of every migrated-pattern fraction, shared so the probe shape
// and the metric cannot drift apart.
func probeProcessedPatterns(passes, taxa, patterns int) float64 {
	return float64(passes) * float64(taxa-1) * float64(patterns)
}

// stealComparisonRun executes the two-sided comparison on the mispriced
// mixed DNA+AA workload at 8 real pool workers: a model optimization under
// the static weighted schedule, and the same configuration with chunked
// work stealing, both followed by an identical end-state probe whose
// measured per-worker seconds are the quantity under test. Unlike the
// adaptive comparison (virtual workers, op counters), this one needs real
// concurrency — stealing exists to keep real workers busy while a real
// straggler finishes — so it runs on BackendPool and is gated on wall-clock
// time imbalance.
func stealComparisonRun(ctx context.Context, cfg FigureConfig) (*StealComparison, map[bool]*Measurement, error) {
	ds, err := MixedScheduleDataset(cfg)
	if err != nil {
		return nil, nil, err
	}
	// Use as many workers as the host can genuinely run in parallel (up to
	// the paper's 8), but at least 2 so stealing exists at all; see the
	// Cores field for why oversubscription would invalidate the metric.
	threads := runtime.NumCPU()
	if threads > 8 {
		threads = 8
	}
	if threads < 2 {
		threads = 2
	}
	out := &StealComparison{Dataset: ds.Name, SkewCosts: adaptiveSkewFactor, Threads: threads, Cores: runtime.NumCPU()}
	results := make(map[bool]*Measurement, 2)
	for _, stealOn := range []bool{false, true} {
		m, err := Run(ctx, RunSpec{
			Dataset:        ds,
			Partitioned:    true,
			PerPartitionBL: true,
			Strategy:       opt.NewPar,
			Schedule:       schedule.Weighted,
			Threads:        threads,
			Mode:           ModeModelOpt,
			Backend:        BackendPool,
			TreeSeed:       cfg.Seed + 100,
			SkewCosts:      adaptiveSkewFactor,
			ProbeRegions:   stealProbeRegions,
			Steal:          stealOn,
			MinChunk:       16,
		})
		if err != nil {
			return nil, nil, err
		}
		results[stealOn] = m
	}
	static, stolen := results[false], results[true]
	out.WeightedTimeImbalance = static.EndStats.TimeImbalance()
	out.StealTimeImbalance = stolen.EndStats.TimeImbalance()
	out.StealCount = stolen.EndStats.StealCount
	out.StolenPatterns = stolen.EndStats.StolenPatterns
	out.WorkerSteals = append([]float64(nil), stolen.EndStats.WorkerSteals...)
	st := ds.Stats()
	processed := probeProcessedPatterns(stealProbeRegions, ds.Alignment.NumTaxa(), st.TotalPatterns)
	if processed > 0 {
		out.MigratedFraction = out.StolenPatterns / processed
	}
	out.LnLAbsDiff = math.Abs(stolen.LnL - static.LnL)
	return out, results, nil
}

// StealExperiment is the intra-region work-stealing demonstration: on the
// mispriced mixed DNA+AA workload, the static weighted pack leaves real
// per-worker skew inside every region (the remainder patterns of ~20
// narrow partitions land blindly), so the end-state measured time imbalance
// of the stolen-work run must not exceed the static pack's — while the
// likelihood stays put.
func StealExperiment(ctx context.Context, cfg FigureConfig) error {
	fmt.Fprintln(cfg.Out, "=== Intra-region work stealing: mispriced mixed DNA+AA workload, model-opt (real pool) ===")
	comp, results, err := stealComparisonRun(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "dataset %s (scale %.3g): %d workers on %d cores; DNA span costs deliberately mispriced %.0fx; end-state probe of %d passes\n",
		comp.Dataset, cfg.Scale, comp.Threads, comp.Cores, comp.SkewCosts, stealProbeRegions)
	if comp.Threads > comp.Cores {
		fmt.Fprintf(cfg.Out, "note: %d workers time-share %d cores, so per-worker work time reflects OS scheduling, not load balance\n",
			comp.Threads, comp.Cores)
	}
	fmt.Fprintf(cfg.Out, "%-16s end-state time-imbalance=%.4f lnL=%.2f\n",
		"weighted-static", comp.WeightedTimeImbalance, results[false].LnL)
	fmt.Fprintf(cfg.Out, "%-16s end-state time-imbalance=%.4f lnL=%.2f steals=%.0f stolenPatterns=%.0f (%.1f%% migrated)\n",
		"weighted+steal", comp.StealTimeImbalance, results[true].LnL,
		comp.StealCount, comp.StolenPatterns, 100*comp.MigratedFraction)
	fmt.Fprintf(cfg.Out, "steal/static time-imbalance ratio: %.4f (<= 1 means stealing bounded the intra-region tail)\n",
		comp.StealTimeImbalance/comp.WeightedTimeImbalance)
	fmt.Fprintf(cfg.Out, "|lnL difference|: %.3g (stealing must never change results)\n\n", comp.LnLAbsDiff)
	return nil
}

// RunAll regenerates every figure and text result in paper order, then the
// reproduction's own schedule-strategy comparisons.
func RunAll(ctx context.Context, cfg FigureConfig) error {
	steps := []func(context.Context, FigureConfig) error{
		Figure3, Figure4, Figure5, Figure6,
		JointBLExperiment, ModelOptExperiment, ProteinExperiment, WidthMicrobench,
		ScheduleExperiment, AdaptiveExperiment, StealExperiment,
	}
	for _, f := range steps {
		if err := f(ctx, cfg); err != nil {
			return err
		}
	}
	return nil
}
