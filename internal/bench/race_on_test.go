//go:build race

package bench

// raceEnabled reports that this test binary was built with the race
// detector, whose ~10x instrumentation overhead distorts the wall-clock
// measurements the adaptive-schedule acceptance gate depends on.
const raceEnabled = true
