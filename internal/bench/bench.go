// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section V). A run executes a full
// analysis (model optimization on a fixed tree, or an ML tree search) on a
// generated dataset under a chosen parallelization strategy and thread
// count, using either the real goroutine pool (host wall-clock numbers) or
// the virtual-platform executor, whose recorded region trace is priced on
// the paper's four machines (see DESIGN.md substitution #1).
package bench

import (
	"context"
	"fmt"
	"time"

	"phylo/internal/alignment"
	"phylo/internal/core"
	"phylo/internal/model"
	"phylo/internal/opt"
	"phylo/internal/parallel"
	"phylo/internal/schedule"
	"phylo/internal/search"
	"phylo/internal/seqsim"
	"phylo/internal/tree"
)

// Mode selects the analysis the paper benchmarks.
type Mode int

const (
	// ModeModelOpt optimizes ML model parameters on the fixed input tree
	// (no tree search).
	ModeModelOpt Mode = iota
	// ModeSearch runs the full ML tree search.
	ModeSearch
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeSearch {
		return "tree-search"
	}
	return "model-opt"
}

// Backend selects the executor.
type Backend int

const (
	// BackendSim runs T virtual workers serially and records the region
	// trace for platform pricing (identical numerics to a real pool).
	BackendSim Backend = iota
	// BackendPool runs a real goroutine pool and measures host wall-clock.
	BackendPool
)

// RunSpec describes one benchmark configuration.
type RunSpec struct {
	Dataset        *seqsim.Dataset
	Partitioned    bool // false collapses everything into one partition
	PerPartitionBL bool // per-partition vs joint branch-length estimate
	Strategy       opt.Strategy
	Schedule       schedule.Strategy // pattern-to-worker assignment (default Cyclic)
	Threads        int
	Mode           Mode
	Backend        Backend
	TreeSeed       int64 // fixed input tree (identical across configurations)
	SearchRounds   int   // SPR rounds for ModeSearch (0 = default)
	SearchRadius   int   // rearrangement radius (0 = default)
	OptimizeRates  bool  // include GTR rate optimization in ModeModelOpt

	// SkewCosts multiplies the analytic span cost of 4-state (DNA)
	// partitions by this factor before any schedule is built — a
	// deliberately *wrong* cost model for the adaptive experiments, which
	// show the measured strategy recovering from a mispriced prior. 0 or 1
	// disables the skew. Runtime op counters are unaffected (they always
	// charge the true per-case costs), so Stats.WorkerImbalance() keeps
	// measuring the real work distribution.
	SkewCosts float64
	// RebalanceThreshold is the measured-strategy hysteresis applied at
	// every optimizer/search round boundary (<= 1 selects the engine
	// default of 1.1). Ignored unless Schedule is schedule.Measured.
	RebalanceThreshold float64
	// ProbeRegions, when > 0, appends an end-state probe after the
	// analysis: the statistics are reset and this many full
	// traversal+evaluate passes run under the FINAL schedule, so
	// Measurement.EndStats isolates the end-state assignment quality from
	// the pre-rebalance history.
	ProbeRegions int

	// Steal runs the analysis on the chunked work-stealing execution path:
	// workers that drain their scheduled share steal the largest remaining
	// half from the most loaded victim instead of idling at each region
	// barrier. Results are bit-for-bit identical to the same chunked run
	// without thieving and within reassociation tolerance of the
	// precomputed-assignment path; Stats/EndStats carry the steal counters.
	Steal bool
	// MinChunk is the minimum stealable chunk size in patterns (0 = the
	// engine default of 64). Only meaningful with Steal.
	MinChunk int

	// KernelBackend selects the likelihood kernel backend (the CLV layout
	// and kernel bodies, see core.Backend — distinct from Backend above,
	// which picks the executor). The zero value resolves through PLK_BACKEND
	// to the fused default; results are bit-identical across backends.
	KernelBackend core.Backend
}

// Measurement is the outcome of one run. Stats carries the cumulative
// per-worker op totals; Stats.WorkerImbalance() is the max/avg load measure
// the schedule comparisons report, and Stats.TimeImbalance() its measured
// wall-clock counterpart.
type Measurement struct {
	Label           string
	LnL             float64
	WallSeconds     float64
	Stats           parallel.Stats
	Threads         int
	PlatformSeconds map[string]float64 // virtual seconds per paper platform
	Rebalances      int                // measured-schedule rebuilds performed
	EndStats        parallel.Stats     // end-state probe stats (zero unless ProbeRegions > 0)
}

// Run executes one configuration. ctx cancels the analysis at the next
// synchronization-region boundary; the returned Measurement then carries the
// partial result alongside ctx's error.
func Run(ctx context.Context, spec RunSpec) (*Measurement, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ds := spec.Dataset
	parts := ds.Parts
	if !spec.Partitioned {
		parts = alignment.SinglePartition(ds.Alignment, ds.Parts[0].Type, "all")
	}
	d, err := alignment.Compress(ds.Alignment, parts, alignment.CompressOptions{})
	if err != nil {
		return nil, err
	}
	models := make([]*model.Model, len(d.Parts))
	for i, p := range d.Parts {
		m, err := model.DefaultFor(p, 4, 1.0)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	zSlots := 1
	if spec.PerPartitionBL && len(d.Parts) > 1 {
		zSlots = len(d.Parts)
	}
	// The fixed input tree: the paper runs every configuration on the same
	// starting tree for reproducibility, so that oldPAR and newPAR perform
	// identical algorithmic work.
	tr, err := tree.Random(ds.Alignment.Names, zSlots, tree.RandomOptions{Seed: spec.TreeSeed})
	if err != nil {
		return nil, err
	}
	var exec parallel.Executor
	switch spec.Backend {
	case BackendPool:
		exec, err = parallel.NewPool(spec.Threads)
	default:
		exec, err = parallel.NewSim(spec.Threads)
	}
	if err != nil {
		return nil, err
	}
	defer exec.Close()
	sh, err := core.NewSharedWith(d, models[0].NumCats, spec.Threads, spec.KernelBackend)
	if err != nil {
		return nil, err
	}
	if spec.SkewCosts > 0 && spec.SkewCosts != 1 {
		costs := sh.SpanCosts()
		for i, p := range d.Parts {
			if p.Type.States() == 4 {
				costs[i] *= spec.SkewCosts
			}
		}
		if err := sh.OverrideSpanCosts(costs); err != nil {
			return nil, err
		}
	}
	eng, err := core.NewSession(sh, tr, models, exec, core.Options{
		Specialize: true,
		Schedule:   spec.Schedule,
		Steal:      spec.Steal,
		MinChunk:   spec.MinChunk,
		Backend:    spec.KernelBackend,
	})
	if err != nil {
		return nil, err
	}
	var roundEnd func()
	if spec.Schedule == schedule.Measured {
		roundEnd = func() { _, _ = eng.MaybeRebalance(spec.RebalanceThreshold) }
	}

	start := time.Now()
	var lnl float64
	var runErr error
	switch spec.Mode {
	case ModeSearch:
		cfg := search.DefaultConfig(spec.Strategy)
		if spec.SearchRounds > 0 {
			cfg.MaxRounds = spec.SearchRounds
		}
		if spec.SearchRadius > 0 {
			cfg.Radius = spec.SearchRadius
		}
		cfg.RoundEnd = roundEnd
		var res search.Result
		res, runErr = search.New(eng, cfg).Run(ctx)
		lnl = res.LnL
	default:
		cfg := opt.DefaultConfig(spec.Strategy)
		cfg.OptimizeRates = spec.OptimizeRates
		cfg.RoundEnd = roundEnd
		lnl, _, runErr = opt.New(eng, cfg).OptimizeModel(ctx)
	}
	wall := time.Since(start).Seconds()

	m := &Measurement{
		Label:       fmt.Sprintf("%s %s/%s T=%d", ds.Name, spec.Strategy, spec.Schedule, spec.Threads),
		LnL:         lnl,
		WallSeconds: wall,
		Stats:       *exec.Stats(),
		Threads:     spec.Threads,
		Rebalances:  eng.Rebalances(),
	}
	if spec.ProbeRegions > 0 && runErr == nil {
		// End-state probe: measure the final schedule alone. One last
		// rebalance opportunity first, so a window accumulated since the
		// final round (e.g. the closing smoothing pass) can still be acted
		// on before the probe pins the end state.
		if roundEnd != nil {
			roundEnd()
			m.Rebalances = eng.Rebalances()
		}
		exec.Stats().Reset()
		root := eng.Tree.Tips[0].Back
		for i := 0; i < spec.ProbeRegions; i++ {
			eng.InvalidateCLVs()
			eng.Traverse(root, false, nil)
			eng.Evaluate(root, nil)
		}
		m.EndStats = *exec.Stats()
	}
	m.PlatformSeconds = make(map[string]float64, len(parallel.Platforms))
	for _, p := range parallel.Platforms {
		m.PlatformSeconds[p.Name] = p.EvalSeconds(&m.Stats, spec.Threads)
	}
	return m, runErr
}
